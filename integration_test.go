package wsncover

import (
	"testing"

	"wsncover/internal/deploy"
	"wsncover/internal/randx"
	"wsncover/internal/sim"
)

// TestDynamicFailuresDuringRecovery injects fresh node failures while SR
// is still cascading. The controller must keep the network registries
// consistent (Audit) and eventually repair everything repairable.
func TestDynamicFailuresDuringRecovery(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 12, Rows: 12, Spares: 80, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(123)
	if _, err := sc.CreateHoles(4); err != nil {
		t.Fatal(err)
	}
	// Interleave stepping with random damage for a while.
	for round := 0; round < 40; round++ {
		if err := sc.Step(); err != nil {
			t.Fatal(err)
		}
		if round%7 == 3 {
			deploy.FailRandom(sc.Network(), 2, rng)
		}
		if bad := sc.Network().Audit(); len(bad) != 0 {
			t.Fatalf("round %d: audit violations: %v", round, bad)
		}
	}
	// Let the system settle completely.
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("coverage incomplete after settling: %+v holes=%v", res, sc.Holes())
	}
	if bad := sc.Network().Audit(); len(bad) != 0 {
		t.Errorf("final audit: %v", bad)
	}
}

// TestRepeatedAttacksDrainSparesGracefully keeps jamming until the spare
// pool is gone; SR must repair while spares last and degrade to explicit
// failures (never silent corruption) afterwards.
func TestRepeatedAttacksDrainSparesGracefully(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 10, Rows: 10, Spares: 25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := sc.GridSystem().Bounds()
	rng := randx.New(9)
	for attack := 0; attack < 8; attack++ {
		x := b.Min.X + rng.Float64()*b.Width()
		y := b.Min.Y + rng.Float64()*b.Height()
		sc.FailRegion(x, y, 7)
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if bad := sc.Network().Audit(); len(bad) != 0 {
			t.Fatalf("attack %d: audit: %v", attack, bad)
		}
		if sc.Spares() > 0 && !res.Complete {
			// With spares remaining every hole must have been repaired
			// (Theorem 1 via the cycle: all spares reachable).
			t.Fatalf("attack %d: %d spares left but %d holes remain",
				attack, sc.Spares(), res.Holes)
		}
	}
}

// TestSchemeComparisonSameLayout runs all three schemes on identical
// layouts and checks the documented ordering of movement costs at high
// density: shortcut <= SR < AR.
func TestSchemeComparisonSameLayout(t *testing.T) {
	moves := map[Scheme]int{}
	for _, scheme := range []Scheme{SR, SRShortcut, AR} {
		total := 0
		for trial := 0; trial < 15; trial++ {
			sc, err := NewScenario(Options{
				Cols: 12, Rows: 12, Spares: 120, Scheme: scheme, Seed: int64(300 + trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.CreateHoles(2); err != nil {
				t.Fatal(err)
			}
			res, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += res.Summary.Moves
		}
		moves[scheme] = total
	}
	if moves[SRShortcut] > moves[SR] {
		t.Errorf("shortcut moves %d should not exceed SR %d", moves[SRShortcut], moves[SR])
	}
	if moves[SR] >= moves[AR] {
		t.Errorf("SR moves %d should be below AR %d at high density", moves[SR], moves[AR])
	}
}

// TestCoverageAndConnectivityRestoredOnAllGridShapes sweeps grid shapes
// (cycle and dual-path) end-to-end through the facade.
func TestCoverageAndConnectivityRestoredOnAllGridShapes(t *testing.T) {
	shapes := [][2]int{{4, 4}, {4, 5}, {5, 5}, {7, 3}, {3, 8}, {9, 9}}
	for _, sh := range shapes {
		sc, err := NewScenario(Options{Cols: sh[0], Rows: sh[1], Spares: 6, Seed: 8})
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if _, err := sc.CreateHoles(2); err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if !res.Complete || !res.Connected {
			t.Errorf("%v: result %+v", sh, res)
		}
	}
}

// TestSweepConsistencyAcrossEntryPoints cross-checks the facade against
// the sim harness: identical seeds and layouts must agree on metrics.
func TestSweepConsistencyAcrossEntryPoints(t *testing.T) {
	res, err := sim.RunTrial(sim.TrialConfig{
		Cols: 8, Rows: 8, Scheme: sim.SR, Spares: 12, Holes: 1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Initiated != 1 || res.Summary.Converged != 1 {
		t.Fatalf("trial summary = %v", res.Summary)
	}
	// The converged process's move count must sit within the possible
	// range: at least 1, at most the Hamilton path length.
	if res.Summary.Moves < 1 || res.Summary.Moves > 63 {
		t.Errorf("moves = %d out of [1, 63]", res.Summary.Moves)
	}
}
