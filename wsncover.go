// Package wsncover reproduces "Mobility Control for Complete Coverage in
// Wireless Sensor Networks" (Jiang, Wu, Kline, Krantz; ICDCS 2008
// Workshops): a virtual-grid wireless sensor network in which coverage
// holes are repaired by a snake-like cascading replacement process
// synchronized along a directed Hamilton cycle (the SR scheme), compared
// against the unsynchronized 1-hop baseline AR.
//
// This package is the high-level facade. A Scenario bundles a grid
// system, a node population, a Hamilton topology, and a control scheme:
//
//	sc, err := wsncover.NewScenario(wsncover.Options{
//		Cols: 16, Rows: 16, Spares: 100, Seed: 1,
//	})
//	sc.CreateHoles(3)
//	res, err := sc.Run()
//	fmt.Println(res.Summary, res.Complete)
//
// The full machinery (deployment strategies, failure injectors, analytic
// model, figure generators) lives in the internal packages and is
// exercised by the cmd/ tools and the examples/ programs.
package wsncover

import (
	"fmt"

	"wsncover/internal/ar"
	"wsncover/internal/core"
	"wsncover/internal/coverage"
	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
	"wsncover/internal/sim"
	"wsncover/internal/visual"
)

// Scheme selects a hole-recovery control scheme.
type Scheme int

// Available schemes. Enums start at 1 so the zero value is invalid; the
// Options default is SR.
const (
	// SR is the paper's synchronized replacement along the directed
	// Hamilton cycle (Algorithms 1 and 2).
	SR Scheme = iota + 1
	// SRShortcut is SR plus the future-work 1-hop shortcut.
	SRShortcut
	// AR is the unsynchronized 1-hop baseline of [3].
	AR
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SR:
		return "SR"
	case SRShortcut:
		return "SR+shortcut"
	case AR:
		return "AR"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Workload names a damage model with parameters, the facade form of the
// simulator's workload spec. Kind is required; the remaining fields
// parameterize it and must stay zero when the kind does not use them:
//
//	Workload{Kind: "churn", Holes: 2, Every: 5, Waves: 3}
//	Workload{Kind: "depletion", Budget: 40}
//
// Kinds: "holes" (random vacant cells before round 0), "jam" (disc
// attack, Radius), "churn" (waves of Holes fresh holes every Every
// rounds, Waves times), "depletion" (nodes die once their movement
// energy exceeds Budget, checked every Every rounds; PerMeter/PerMove
// configure the energy model when the trial has none — that applies to
// Sweep, which deploys per trial; a Scenario fixes its energy model at
// construction, so RunSchedule rejects them).
type Workload struct {
	Kind     string
	Holes    int
	Every    int
	Waves    int
	Radius   float64
	Budget   float64
	PerMeter float64
	PerMove  float64
}

// spec converts to the simulator's workload spec.
func (w Workload) spec() sim.WorkloadSpec {
	return sim.WorkloadSpec{
		Kind:     w.Kind,
		Holes:    w.Holes,
		Every:    w.Every,
		Waves:    w.Waves,
		Radius:   w.Radius,
		Budget:   w.Budget,
		PerMeter: w.PerMeter,
		PerMove:  w.PerMove,
	}
}

// Options configures a Scenario.
type Options struct {
	// Cols and Rows size the virtual grid (paper: 16x16). Required.
	Cols, Rows int
	// CommRange is the node communication range R; the cell size is
	// derived as r = R/sqrt(5). Zero means the paper's 10 m.
	CommRange float64
	// Spares is the number of spare nodes N scattered uniformly over the
	// field in addition to one node per cell.
	Spares int
	// Scheme selects the controller; zero means SR.
	Scheme Scheme
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// EnergyPerMeter and EnergyPerMove configure the movement energy
	// model (zero disables energy accounting).
	EnergyPerMeter float64
	EnergyPerMove  float64
}

// Result reports a recovery run.
type Result struct {
	// Summary aggregates the replacement processes (movements, distance,
	// success rate, messages).
	Summary metrics.Summary
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Holes is the number of vacant cells remaining.
	Holes int
	// Complete reports whether every grid has a head (the paper's
	// complete-coverage condition).
	Complete bool
	// Connected reports head-overlay connectivity.
	Connected bool
}

// Scenario is a live simulation: a deployed network plus a control scheme.
// It is not safe for concurrent use.
type Scenario struct {
	opts Options
	rng  *randx.Rand
	sys  *grid.System
	net  *network.Network
	topo *hamilton.Topology
	ctrl sim.Scheme
}

// NewScenario deploys a network per Options: one node per cell plus
// Spares spare nodes uniformly at random, heads elected, topology built,
// controller attached. The network starts with complete coverage; use
// CreateHoles / FailRegion / FailRandom to damage it.
func NewScenario(opts Options) (*Scenario, error) {
	if opts.CommRange == 0 {
		opts.CommRange = sim.PaperCommRange
	}
	if opts.Scheme == 0 {
		opts.Scheme = SR
	}
	sys, err := grid.NewForCommRange(opts.Cols, opts.Rows, opts.CommRange, geom.Pt(0, 0))
	if err != nil {
		return nil, err
	}
	rng := randx.New(opts.Seed)
	net := network.New(sys, node.EnergyModel{
		PerMeter: opts.EnergyPerMeter,
		PerMove:  opts.EnergyPerMove,
	})
	if err := deploy.Controlled(net, opts.Spares, nil, rng.Split(1)); err != nil {
		return nil, err
	}
	sc := &Scenario{opts: opts, rng: rng, sys: sys, net: net}
	if err := sc.attachScheme(); err != nil {
		return nil, err
	}
	return sc, nil
}

func (sc *Scenario) attachScheme() error {
	switch sc.opts.Scheme {
	case SR, SRShortcut:
		topo, err := hamilton.Build(sc.sys)
		if err != nil {
			return err
		}
		sc.topo = topo
		ctrl, err := core.New(sc.net, core.Config{
			Topology:         topo,
			RNG:              sc.rng.Split(2),
			NeighborShortcut: sc.opts.Scheme == SRShortcut,
		})
		if err != nil {
			return err
		}
		sc.ctrl = ctrl
		return nil
	case AR:
		sc.ctrl = ar.New(sc.net, ar.Config{RNG: sc.rng.Split(2)})
		return nil
	default:
		return fmt.Errorf("wsncover: unknown scheme %v", sc.opts.Scheme)
	}
}

// CreateHoles empties count randomly chosen, mutually non-adjacent cells
// and returns their addresses.
func (sc *Scenario) CreateHoles(count int) ([]grid.Coord, error) {
	cells, err := deploy.PickHoleCells(sc.sys, count, true, sc.rng.Split(3))
	if err != nil {
		return nil, err
	}
	deploy.FailCells(sc.net, cells)
	return cells, nil
}

// CreateHoleAt empties one specific cell.
func (sc *Scenario) CreateHoleAt(c grid.Coord) error {
	if !sc.sys.Contains(c) {
		return fmt.Errorf("wsncover: cell %v outside grid", c)
	}
	sc.net.DisableAllInCell(c)
	return nil
}

// FailRandom disables count random enabled nodes (node failures or
// misbehavior exclusion), returning how many were disabled.
func (sc *Scenario) FailRandom(count int) int {
	return deploy.FailRandom(sc.net, count, sc.rng.Split(4))
}

// FailRegion disables every enabled node within radius of the point
// (x, y) — the jamming-attack model — and returns how many were hit.
func (sc *Scenario) FailRegion(x, y, radius float64) int {
	return deploy.FailRegion(sc.net, geom.Pt(x, y), radius)
}

// Run executes the control scheme until it converges (or a generous round
// budget elapses) and reports the outcome. It can be called repeatedly as
// new damage is injected; metrics accumulate across calls.
func (sc *Scenario) Run() (Result, error) {
	// Allow retries of previously failed holes: new spares may have
	// arrived since.
	if ctrl, ok := sc.ctrl.(*core.Controller); ok {
		ctrl.ResetFailed()
	}
	rounds, err := sim.RunToConvergence(sc.ctrl, 2*sc.sys.NumCells()+16)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Summary:   sc.ctrl.Collector().Summarize(),
		Rounds:    rounds,
		Holes:     coverage.HoleCount(sc.net),
		Complete:  coverage.Complete(sc.net),
		Connected: sc.net.HeadGraphConnected(),
	}, nil
}

// RunSchedule drives the scenario through a workload's damage timeline:
// the workload's schedule events (churn waves, depletion checks)
// interleave with controller rounds until the schedule is exhausted and
// the scheme converges. The scenario's existing deployment is kept —
// only the schedule's events run, so workloads whose damage is entirely
// part of the initial deployment (holes, jam) schedule nothing and
// RunSchedule behaves like Run over damage injected with CreateHoles /
// FailRegion. Like Run, it can be called repeatedly; metrics accumulate.
func (sc *Scenario) RunSchedule(w Workload) (Result, error) {
	wl, err := sim.BuildWorkload(w.spec())
	if err != nil {
		return Result{}, err
	}
	// Parameters that only act at deploy time cannot take effect on an
	// already-deployed scenario; reject them so the caller does not
	// silently measure the wrong thing.
	switch w.Kind {
	case sim.WorkloadHoles:
		if w.Holes != 0 {
			return Result{}, fmt.Errorf(
				"wsncover: the holes workload's damage is part of deployment; use CreateHoles(%d) instead", w.Holes)
		}
	case sim.WorkloadJam:
		if w.Radius != 0 {
			return Result{}, fmt.Errorf(
				"wsncover: the jam workload's damage is part of deployment; use FailRegion instead")
		}
	case sim.WorkloadDepletion:
		if w.PerMeter != 0 || w.PerMove != 0 {
			return Result{}, fmt.Errorf(
				"wsncover: the scenario's energy model is fixed at construction; set Options.EnergyPerMeter/EnergyPerMove")
		}
		if sc.net.EnergyModel() == (node.EnergyModel{}) {
			return Result{}, fmt.Errorf(
				"wsncover: the depletion workload needs an energy model; set Options.EnergyPerMeter")
		}
	}
	maxRounds := 2*sc.sys.NumCells() + 16
	cfg := sim.TrialConfig{
		Cols:        sc.opts.Cols,
		Rows:        sc.opts.Rows,
		CommRange:   sc.opts.CommRange,
		Spares:      sc.opts.Spares,
		Holes:       1,
		Workload:    w.spec(),
		MaxRounds:   maxRounds,
		EnergyModel: sc.net.EnergyModel(),
	}
	sched, err := wl.Schedule(&cfg)
	if err != nil {
		return Result{}, err
	}
	if ctrl, ok := sc.ctrl.(*core.Controller); ok {
		ctrl.ResetFailed()
	}
	rounds, err := sim.RunSchedule(sc.ctrl, sc.net, sched, sc.rng.Split(5), maxRounds)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Summary:   sc.ctrl.Collector().Summarize(),
		Rounds:    rounds,
		Holes:     coverage.HoleCount(sc.net),
		Complete:  coverage.Complete(sc.net),
		Connected: sc.net.HeadGraphConnected(),
	}, nil
}

// Step advances the simulation a single round, for callers interleaving
// damage and recovery.
func (sc *Scenario) Step() error { return sc.ctrl.Step() }

// SchemeName returns the attached controller's name.
func (sc *Scenario) SchemeName() string { return sc.ctrl.Name() }

// Holes returns the current vacant cells.
func (sc *Scenario) Holes() []grid.Coord { return sc.net.VacantCells(nil) }

// Spares returns the current number of spare nodes in the network.
func (sc *Scenario) Spares() int { return sc.net.TotalSpares() }

// TotalMoves returns all node movements performed so far.
func (sc *Scenario) TotalMoves() int { return sc.net.TotalMoves() }

// TotalDistance returns the total moving distance so far.
func (sc *Scenario) TotalDistance() float64 { return sc.net.TotalDistance() }

// Render returns an ASCII picture of the grid occupancy.
func (sc *Scenario) Render() string { return visual.Network(sc.net) }

// RenderTopology returns an ASCII picture of the Hamilton structure (SR
// schemes only; empty for AR).
func (sc *Scenario) RenderTopology() string {
	if sc.topo == nil {
		return ""
	}
	return visual.Cycle(sc.topo)
}

// GridSystem exposes the underlying grid for advanced callers.
func (sc *Scenario) GridSystem() *grid.System { return sc.sys }

// Network exposes the underlying network for advanced callers.
func (sc *Scenario) Network() *network.Network { return sc.net }
