package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean")
	}
	if !almost(Sum([]float64{1, 2, 3}), 6) {
		t.Error("Sum")
	}
	if Sum(nil) != 0 {
		t.Error("Sum(nil)")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("StdDev degenerate cases")
	}
	// Sample sd of {2,4,4,4,5,5,7,9} is ~2.138 (n-1 denominator).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Error("constant sample should have sd 0")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("single sample CI should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 1.96 * StdDev(xs) / math.Sqrt(8)
	if !almost(CI95(xs), want) {
		t.Errorf("CI95 = %v, want %v", CI95(xs), want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("Min/Max")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil)")
	}
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Error("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median")
	}
	// Median must not mutate the input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated input")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 10 {
		t.Error("extreme percentiles")
	}
	if Percentile(xs, 50) != 5 {
		t.Errorf("P50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 90) != 9 {
		t.Errorf("P90 = %v", Percentile(xs, 90))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{1, 2, 3}
	d := Describe(xs)
	if d.N != 3 || !almost(d.Mean, 2) || !almost(d.Median, 2) || d.Min != 1 || d.Max != 3 {
		t.Errorf("Describe = %+v", d)
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		med := Median(xs)
		return med >= Min(xs)-1e-9 && med <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDescriptionMerge(t *testing.T) {
	all := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5}
	for _, split := range []int{0, 1, 3, 5, 10} {
		a := Describe(all[:split])
		b := Describe(all[split:])
		m := a.Merge(b)
		want := Describe(all)
		if m.N != want.N || m.Min != want.Min || m.Max != want.Max {
			t.Errorf("split %d: N/min/max (%d,%g,%g), want (%d,%g,%g)",
				split, m.N, m.Min, m.Max, want.N, want.Min, want.Max)
		}
		if math.Abs(m.Mean-want.Mean) > 1e-12 {
			t.Errorf("split %d: mean %g, want %g", split, m.Mean, want.Mean)
		}
		if math.Abs(m.StdDev-want.StdDev) > 1e-12 {
			t.Errorf("split %d: stddev %g, want %g", split, m.StdDev, want.StdDev)
		}
		if math.Abs(m.CI95-want.CI95) > 1e-12 {
			t.Errorf("split %d: ci95 %g, want %g", split, m.CI95, want.CI95)
		}
	}
	// Empty merges are identities.
	d := Describe(all)
	if got := (Description{}).Merge(d); got != d {
		t.Errorf("empty.Merge(d) = %+v, want %+v", got, d)
	}
	if got := d.Merge(Description{}); got != d {
		t.Errorf("d.Merge(empty) = %+v, want %+v", got, d)
	}
}

// TestMergeMedianHonesty pins the merge-statistics bugfix: the merged
// median is a count-weighted mean of the input medians, which on a
// skewed split demonstrably diverges from the median of the pooled
// samples, so Merge must mark it approximate instead of presenting it
// as exact.
func TestMergeMedianHonesty(t *testing.T) {
	left := []float64{1, 2, 3}  // median 2
	right := []float64{4, 1000} // median 502
	pooled := append(append([]float64{}, left...), right...)

	a, b := Describe(left), Describe(right)
	if a.MedianApprox || b.MedianApprox {
		t.Fatal("Describe over retained samples must report an exact median")
	}
	m := a.Merge(b)
	if !m.MedianApprox {
		t.Error("Merge of two non-empty descriptions must mark the median approximate")
	}
	exact := Median(pooled) // 3
	if !almost(exact, 3) {
		t.Fatalf("pooled median = %g, fixture expects 3", exact)
	}
	// The divergence the flag exists for: the weighted formula lands two
	// orders of magnitude away from the pooled median on this split.
	weighted := (2.0*3 + 502.0*2) / 5 // 202
	if !almost(m.Median, weighted) {
		t.Errorf("merged median = %g, want the weighted estimate %g", m.Median, weighted)
	}
	if math.Abs(m.Median-exact) < 100 {
		t.Errorf("fixture not skewed enough: estimate %g vs pooled %g", m.Median, exact)
	}

	// Merging with an empty side is an identity and stays exact.
	if got := m.Merge(Description{}); got != m {
		t.Errorf("m.Merge(empty) = %+v, want %+v", got, m)
	}
	if got := (Description{}).Merge(a); got != a || got.MedianApprox {
		t.Errorf("empty.Merge(exact) = %+v, want exact %+v", got, a)
	}
	// Approximation is sticky: once a side is approximate, further merges
	// cannot launder it back to exact.
	if got := (Description{}).Merge(m); !got.MedianApprox {
		t.Error("identity merge dropped MedianApprox")
	}
	if got := m.Merge(Describe([]float64{7})); !got.MedianApprox {
		t.Error("merging an approximate description must stay approximate")
	}
}

// TestDescriptionStringMarksApproxMedian: the human rendering
// distinguishes exact from estimated medians.
func TestDescriptionStringMarksApproxMedian(t *testing.T) {
	d := Describe([]float64{1, 2, 3})
	if s := d.String(); !strings.Contains(s, "med=2") || strings.Contains(s, "med~=") {
		t.Errorf("exact String() = %q", s)
	}
	d.MedianApprox = true
	if s := d.String(); !strings.Contains(s, "med~=2") {
		t.Errorf("approx String() = %q", s)
	}
}
