// Package stats supplies the small descriptive-statistics toolkit used to
// aggregate simulation trials: mean, standard deviation, confidence
// intervals, and order statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// when fewer than two samples exist.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean: 1.96 * s / sqrt(n).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central order
// statistics for even lengths), or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy; it returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Description bundles the descriptive statistics of one sample.
type Description struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
	Median float64
}

// Describe computes all descriptive statistics of xs at once.
func Describe(xs []float64) Description {
	return Description{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		CI95:   CI95(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// String implements fmt.Stringer.
func (d Description) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g sd=%.4g min=%.4g med=%.4g max=%.4g",
		d.N, d.Mean, d.CI95, d.StdDev, d.Min, d.Median, d.Max)
}
