// Package stats supplies the small descriptive-statistics toolkit used to
// aggregate simulation trials: mean, standard deviation, confidence
// intervals, and order statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// when fewer than two samples exist.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean: 1.96 * s / sqrt(n).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central order
// statistics for even lengths), or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy; it returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Description bundles the descriptive statistics of one sample.
type Description struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
	Median float64
	// MedianApprox marks Median as an estimate rather than the exact
	// order statistic of the described sample: true after merging
	// summaries (Merge cannot see the underlying samples) and for the
	// streaming P-squared median beyond five observations. Exact
	// descriptions — Describe over retained samples, streaming cells of
	// at most five observations — leave it false, so a manifest reader
	// can tell an honest median from a reconstruction.
	MedianApprox bool `json:"median_approx,omitempty"`
}

// Merge combines two descriptions of disjoint samples into the
// description of their union. Count, mean, min, and max merge exactly;
// the standard deviation uses the parallel-variance formula of Chan et
// al. (means and sums of squared deviations combine exactly, up to
// floating-point reassociation) and CI95 is re-derived from it. The
// median cannot be reconstructed from summaries alone, so when both
// sides are non-empty the merge reports the count-weighted mean of the
// two medians and sets MedianApprox — the weighted mean is NOT the
// median of the pooled samples and can diverge arbitrarily on skewed
// shards, so the flag travels with the value into manifests. Merging
// with an empty description is an identity and stays exact. Campaign
// shard manifests are stitched with this (cmd/sweep -merge); callers
// that retained the raw samples should recompute the median with
// Median or Describe instead of merging summaries.
func (d Description) Merge(o Description) Description {
	switch {
	case d.N == 0:
		return o
	case o.N == 0:
		return d
	}
	n := d.N + o.N
	nf, df, of := float64(n), float64(d.N), float64(o.N)
	delta := o.Mean - d.Mean
	mean := d.Mean + delta*of/nf
	m2 := d.StdDev*d.StdDev*(df-1) + o.StdDev*o.StdDev*(of-1) + delta*delta*df*of/nf
	out := Description{
		N:            n,
		Mean:         mean,
		Min:          math.Min(d.Min, o.Min),
		Max:          math.Max(d.Max, o.Max),
		Median:       (d.Median*df + o.Median*of) / nf,
		MedianApprox: true,
	}
	if n >= 2 {
		out.StdDev = math.Sqrt(m2 / (nf - 1))
		out.CI95 = 1.96 * out.StdDev / math.Sqrt(nf)
	}
	return out
}

// Describe computes all descriptive statistics of xs at once.
func Describe(xs []float64) Description {
	return Description{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		CI95:   CI95(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// String implements fmt.Stringer. An approximate median renders as
// "med~=" instead of "med=".
func (d Description) String() string {
	med := "med="
	if d.MedianApprox {
		med = "med~="
	}
	return fmt.Sprintf("n=%d mean=%.4g±%.2g sd=%.4g min=%.4g %s%.4g max=%.4g",
		d.N, d.Mean, d.CI95, d.StdDev, d.Min, med, d.Median, d.Max)
}
