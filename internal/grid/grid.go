// Package grid implements the virtual grid model of Xu and Heidemann
// (GAF, MOBICOM'01) as used by the paper: the surveillance area is
// partitioned into an n x m system of square cells of side r, and with
// communication range R = sqrt(5) * r a node anywhere in a cell can talk to
// a node anywhere in each of the four edge-adjacent cells. One enabled node
// per cell (the grid head) suffices for connectivity and coverage.
package grid

import (
	"fmt"
	"math"

	"wsncover/internal/geom"
)

// Sqrt5 is the communication-range factor of the virtual grid model:
// R = Sqrt5 * r guarantees head-to-head links between neighboring cells.
const Sqrt5 = 2.2360679774997896964091736687747

// Direction identifies one of the four edge-adjacent neighbor relations of
// a cell. Enums start at 1 so that the zero value is invalid.
type Direction int

// The four grid directions. North is +Y, East is +X.
const (
	North Direction = iota + 1
	East
	South
	West
)

// Directions lists all four directions in clockwise order starting north.
var Directions = [4]Direction{North, East, South, West}

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case East:
		return West
	case South:
		return North
	case West:
		return East
	default:
		return d
	}
}

// Delta returns the coordinate offset of one step in direction d.
func (d Direction) Delta() Coord {
	switch d {
	case North:
		return Coord{X: 0, Y: 1}
	case East:
		return Coord{X: 1, Y: 0}
	case South:
		return Coord{X: 0, Y: -1}
	case West:
		return Coord{X: -1, Y: 0}
	default:
		return Coord{}
	}
}

// Coord addresses a cell of the grid system by its column X (0..Cols-1,
// west to east) and row Y (0..Rows-1, south to north), exactly the (x, y)
// addressing of the paper's Figure 1.
type Coord struct {
	X int
	Y int
}

// C is shorthand for Coord{x, y}.
func C(x, y int) Coord { return Coord{X: x, Y: y} }

// Add returns c displaced by d.
func (c Coord) Add(d Coord) Coord { return Coord{X: c.X + d.X, Y: c.Y + d.Y} }

// Step returns the cell one step from c in direction dir.
func (c Coord) Step(dir Direction) Coord { return c.Add(dir.Delta()) }

// ManhattanDist returns |dx| + |dy| between c and o.
func (c Coord) ManhattanDist(o Coord) int {
	dx := c.X - o.X
	if dx < 0 {
		dx = -dx
	}
	dy := c.Y - o.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// IsNeighbor reports whether c and o are edge-adjacent cells, i.e. their
// addresses differ by exactly one in exactly one dimension.
func (c Coord) IsNeighbor(o Coord) bool { return c.ManhattanDist(o) == 1 }

// DirTo returns the direction from c to the edge-adjacent cell o. The
// second result is false when o is not a neighbor of c.
func (c Coord) DirTo(o Coord) (Direction, bool) {
	switch {
	case o.X == c.X && o.Y == c.Y+1:
		return North, true
	case o.X == c.X+1 && o.Y == c.Y:
		return East, true
	case o.X == c.X && o.Y == c.Y-1:
		return South, true
	case o.X == c.X-1 && o.Y == c.Y:
		return West, true
	default:
		return 0, false
	}
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// System is an n x m virtual grid partition of a rectangular surveillance
// field anchored at Origin, with square cells of side CellSize (the paper's
// r). The zero value is not usable; construct with New.
type System struct {
	cols     int
	rows     int
	cellSize float64
	origin   geom.Point
}

// New builds a grid system of cols x rows cells of side cellSize anchored
// with its south-west corner at origin. It returns an error for
// non-positive dimensions.
func New(cols, rows int, cellSize float64, origin geom.Point) (*System, error) {
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("grid: dimensions %dx%d must be at least 1x1", cols, rows)
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("grid: cell size %v must be positive", cellSize)
	}
	return &System{cols: cols, rows: rows, cellSize: cellSize, origin: origin}, nil
}

// NewForCommRange builds a grid system whose cell size is derived from the
// node communication range R via r = R / sqrt(5), the largest cell size for
// which the virtual grid model guarantees neighbor-cell connectivity. This
// reproduces the paper's experimental setup: R = 10 m yields cells of
// 4.4721 m x 4.4721 m.
func NewForCommRange(cols, rows int, commRange float64, origin geom.Point) (*System, error) {
	if commRange <= 0 {
		return nil, fmt.Errorf("grid: communication range %v must be positive", commRange)
	}
	return New(cols, rows, commRange/Sqrt5, origin)
}

// Cols returns the number of columns (the paper's n).
func (s *System) Cols() int { return s.cols }

// Rows returns the number of rows (the paper's m).
func (s *System) Rows() int { return s.rows }

// CellSize returns the side length of each square cell (the paper's r).
func (s *System) CellSize() float64 { return s.cellSize }

// Origin returns the south-west corner of the field.
func (s *System) Origin() geom.Point { return s.origin }

// NumCells returns the total number of cells, n x m.
func (s *System) NumCells() int { return s.cols * s.rows }

// Bounds returns the rectangle of the whole surveillance field.
func (s *System) Bounds() geom.Rect {
	return geom.RectFromSize(s.origin, float64(s.cols)*s.cellSize, float64(s.rows)*s.cellSize)
}

// CommRange returns the minimum communication range sqrt(5)*r under which
// heads of neighboring cells are guaranteed to be directly connected.
func (s *System) CommRange() float64 { return Sqrt5 * s.cellSize }

// Contains reports whether c addresses a cell of the system.
func (s *System) Contains(c Coord) bool {
	return c.X >= 0 && c.X < s.cols && c.Y >= 0 && c.Y < s.rows
}

// Index maps a cell address to a dense index in [0, NumCells). The caller
// must ensure Contains(c).
func (s *System) Index(c Coord) int { return c.Y*s.cols + c.X }

// CoordAt is the inverse of Index.
func (s *System) CoordAt(index int) Coord {
	return Coord{X: index % s.cols, Y: index / s.cols}
}

// CellRect returns the half-open square occupied by cell c.
func (s *System) CellRect(c Coord) geom.Rect {
	min := geom.Point{
		X: s.origin.X + float64(c.X)*s.cellSize,
		Y: s.origin.Y + float64(c.Y)*s.cellSize,
	}
	return geom.RectFromSize(min, s.cellSize, s.cellSize)
}

// Center returns the center point of cell c.
func (s *System) Center(c Coord) geom.Point { return s.CellRect(c).Center() }

// CentralArea returns the central (r/2) x (r/2) square of cell c. The
// paper's mobility control sends each moving node to a random point of the
// target cell's central area; with this definition the per-hop moving
// distance ranges from r/4 (adjacent cells, nearest points) to
// sqrt(58)/4*r (far corner to far corner), matching the bounds in Section 4.
func (s *System) CentralArea(c Coord) geom.Rect {
	return s.CellRect(c).Inset(s.cellSize / 4)
}

// CoordOf returns the cell containing point p, or ok=false when p lies
// outside the field. Points on shared cell edges belong to the cell to the
// north-east, except on the field's outer north and east edges, which are
// folded into the outermost cells so that the whole closed field maps to a
// cell.
func (s *System) CoordOf(p geom.Point) (Coord, bool) {
	b := s.Bounds()
	if !b.ContainsClosed(p) {
		return Coord{}, false
	}
	x := int(math.Floor((p.X - s.origin.X) / s.cellSize))
	y := int(math.Floor((p.Y - s.origin.Y) / s.cellSize))
	if x == s.cols {
		x--
	}
	if y == s.rows {
		y--
	}
	return Coord{X: x, Y: y}, true
}

// Neighbors appends to dst the cells edge-adjacent to c within the system
// (up to four) and returns the extended slice.
func (s *System) Neighbors(dst []Coord, c Coord) []Coord {
	for _, d := range Directions {
		n := c.Step(d)
		if s.Contains(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// NeighborCount returns the number of in-bounds edge neighbors of c:
// 2 at corners, 3 on edges, 4 in the interior.
func (s *System) NeighborCount(c Coord) int {
	n := 0
	for _, d := range Directions {
		if s.Contains(c.Step(d)) {
			n++
		}
	}
	return n
}

// AllCoords returns every cell address in index order.
func (s *System) AllCoords() []Coord {
	out := make([]Coord, 0, s.NumCells())
	for y := 0; y < s.rows; y++ {
		for x := 0; x < s.cols; x++ {
			out = append(out, Coord{X: x, Y: y})
		}
	}
	return out
}

// MaxNeighborDistance returns the largest possible distance between a point
// in cell a and a point in an edge-adjacent cell b, which is sqrt(5)*r.
// This is the worst case the communication range must cover for the
// virtual-grid connectivity guarantee.
func (s *System) MaxNeighborDistance() float64 {
	// Opposite corners of a 1 x 2 cell domino: sqrt(r^2 + (2r)^2).
	return s.cellSize * Sqrt5
}

// MaxDiagonalNeighborDistance returns the largest distance between points
// of two diagonally adjacent cells, 2*sqrt(2)*r. The paper notes that
// monitoring diagonal neighbors would require this larger range, which is
// why the scheme restricts surveillance to edge neighbors.
func (s *System) MaxDiagonalNeighborDistance() float64 {
	return s.cellSize * 2 * math.Sqrt2
}

// String implements fmt.Stringer.
func (s *System) String() string {
	return fmt.Sprintf("grid %dx%d r=%.4g origin=%v", s.cols, s.rows, s.cellSize, s.origin)
}
