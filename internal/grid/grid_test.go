package grid

import (
	"math"
	"testing"
	"testing/quick"

	"wsncover/internal/geom"
)

func mustNew(t *testing.T, cols, rows int, cell float64) *System {
	t.Helper()
	s, err := New(cols, rows, cell, geom.Pt(0, 0))
	if err != nil {
		t.Fatalf("New(%d, %d, %v): %v", cols, rows, cell, err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name       string
		cols, rows int
		cell       float64
		wantErr    bool
	}{
		{"valid", 4, 5, 1, false},
		{"single cell", 1, 1, 1, false},
		{"zero cols", 0, 5, 1, true},
		{"negative rows", 4, -1, 1, true},
		{"zero cell size", 4, 5, 0, true},
		{"negative cell size", 4, 5, -2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cols, tt.rows, tt.cell, geom.Pt(0, 0))
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewForCommRangePaperSetup(t *testing.T) {
	// The paper: R = 10 m gives 4.4721 m cells.
	s, err := NewForCommRange(16, 16, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.CellSize()-4.4721) > 1e-3 {
		t.Errorf("cell size = %v, want 4.4721", s.CellSize())
	}
	if math.Abs(s.CommRange()-10) > 1e-9 {
		t.Errorf("CommRange = %v, want 10", s.CommRange())
	}
	if _, err := NewForCommRange(4, 4, 0, geom.Pt(0, 0)); err == nil {
		t.Error("zero comm range should fail")
	}
}

func TestDirectionBasics(t *testing.T) {
	for _, d := range Directions {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: double opposite is not identity", d)
		}
		sum := d.Delta().Add(d.Opposite().Delta())
		if sum != (Coord{}) {
			t.Errorf("%v: delta + opposite delta = %v, want origin", d, sum)
		}
		if d.String() == "" {
			t.Errorf("%v: empty String", d)
		}
	}
	if Direction(99).Opposite() != Direction(99) {
		t.Error("invalid direction Opposite should be identity")
	}
	if Direction(99).Delta() != (Coord{}) {
		t.Error("invalid direction Delta should be zero")
	}
}

func TestCoordNeighbors(t *testing.T) {
	c := C(2, 3)
	if got := c.Step(North); got != C(2, 4) {
		t.Errorf("north = %v", got)
	}
	if got := c.Step(East); got != C(3, 3) {
		t.Errorf("east = %v", got)
	}
	if got := c.Step(South); got != C(2, 2) {
		t.Errorf("south = %v", got)
	}
	if got := c.Step(West); got != C(1, 3) {
		t.Errorf("west = %v", got)
	}
	if !c.IsNeighbor(C(2, 4)) || c.IsNeighbor(C(3, 4)) || c.IsNeighbor(c) {
		t.Error("IsNeighbor misclassifies")
	}
}

func TestDirTo(t *testing.T) {
	c := C(5, 5)
	for _, d := range Directions {
		got, ok := c.DirTo(c.Step(d))
		if !ok || got != d {
			t.Errorf("DirTo(step %v) = %v, %v", d, got, ok)
		}
	}
	if _, ok := c.DirTo(C(6, 6)); ok {
		t.Error("diagonal should not have a direction")
	}
	if _, ok := c.DirTo(c); ok {
		t.Error("self should not have a direction")
	}
}

func TestManhattanDist(t *testing.T) {
	tests := []struct {
		a, b Coord
		want int
	}{
		{C(0, 0), C(0, 0), 0},
		{C(0, 0), C(3, 4), 7},
		{C(3, 4), C(0, 0), 7},
		{C(-2, 1), C(1, -1), 5},
	}
	for _, tt := range tests {
		if got := tt.a.ManhattanDist(tt.b); got != tt.want {
			t.Errorf("ManhattanDist(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	s := mustNew(t, 7, 3, 1)
	seen := make(map[int]bool)
	for _, c := range s.AllCoords() {
		i := s.Index(c)
		if i < 0 || i >= s.NumCells() {
			t.Fatalf("Index(%v) = %d out of range", c, i)
		}
		if seen[i] {
			t.Fatalf("Index(%v) = %d duplicated", c, i)
		}
		seen[i] = true
		if back := s.CoordAt(i); back != c {
			t.Fatalf("CoordAt(Index(%v)) = %v", c, back)
		}
	}
	if len(seen) != 21 {
		t.Errorf("visited %d cells, want 21", len(seen))
	}
}

func TestCellRectAndCenter(t *testing.T) {
	s, err := New(4, 5, 2, geom.Pt(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	r := s.CellRect(C(1, 2))
	if r.Min != geom.Pt(12, 24) || r.Max != geom.Pt(14, 26) {
		t.Errorf("CellRect = %v", r)
	}
	if got := s.Center(C(1, 2)); !got.Eq(geom.Pt(13, 25)) {
		t.Errorf("Center = %v", got)
	}
	b := s.Bounds()
	if b.Min != geom.Pt(10, 20) || b.Max != geom.Pt(18, 30) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestCentralAreaGeometry(t *testing.T) {
	s := mustNew(t, 3, 3, 4)
	ca := s.CentralArea(C(1, 1))
	cell := s.CellRect(C(1, 1))
	if ca.Width() != 2 || ca.Height() != 2 {
		t.Errorf("central area should be r/2 square, got %v x %v", ca.Width(), ca.Height())
	}
	if !ca.Center().Eq(cell.Center()) {
		t.Error("central area should be concentric with the cell")
	}
}

// TestMovementDistanceBounds verifies the paper's Section 4 claim: a node
// moving from anywhere in a cell to a point of a neighboring cell's central
// area travels at least r/4 and at most sqrt(58)/4*r.
func TestMovementDistanceBounds(t *testing.T) {
	const r = 10.0
	s := mustNew(t, 2, 1, r)
	src := s.CellRect(C(0, 0))
	dst := s.CentralArea(C(1, 0))

	minWant := r / 4
	maxWant := math.Sqrt(58) / 4 * r

	// Extremes are attained at corner configurations; scan a fine lattice
	// of both rectangles including corners.
	const steps = 8
	minGot, maxGot := math.Inf(1), math.Inf(-1)
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			a := geom.Pt(
				src.Min.X+src.Width()*float64(i)/steps,
				src.Min.Y+src.Height()*float64(j)/steps,
			)
			for k := 0; k <= steps; k++ {
				for l := 0; l <= steps; l++ {
					b := geom.Pt(
						dst.Min.X+dst.Width()*float64(k)/steps,
						dst.Min.Y+dst.Height()*float64(l)/steps,
					)
					d := a.Dist(b)
					minGot = math.Min(minGot, d)
					maxGot = math.Max(maxGot, d)
				}
			}
		}
	}
	if math.Abs(minGot-minWant) > 1e-9 {
		t.Errorf("min distance = %v, want %v", minGot, minWant)
	}
	if math.Abs(maxGot-maxWant) > 1e-9 {
		t.Errorf("max distance = %v, want %v", maxGot, maxWant)
	}
}

func TestCoordOf(t *testing.T) {
	s := mustNew(t, 4, 5, 2)
	tests := []struct {
		p    geom.Point
		want Coord
		ok   bool
	}{
		{geom.Pt(0, 0), C(0, 0), true},
		{geom.Pt(1.9, 1.9), C(0, 0), true},
		{geom.Pt(2, 0), C(1, 0), true},  // shared edge goes east
		{geom.Pt(0, 2), C(0, 1), true},  // shared edge goes north
		{geom.Pt(8, 10), C(3, 4), true}, // far corner folds into last cell
		{geom.Pt(7.5, 9.5), C(3, 4), true},
		{geom.Pt(-0.1, 0), Coord{}, false},
		{geom.Pt(8.1, 5), Coord{}, false},
	}
	for _, tt := range tests {
		got, ok := s.CoordOf(tt.p)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("CoordOf(%v) = %v, %v; want %v, %v", tt.p, got, ok, tt.want, tt.ok)
		}
	}
}

func TestCoordOfRoundTripProperty(t *testing.T) {
	s := mustNew(t, 9, 7, 3.5)
	f := func(xi, yi uint16, fx, fy float64) bool {
		c := C(int(xi)%9, int(yi)%7)
		// A point strictly inside the cell must map back to the cell.
		fx = math.Mod(math.Abs(fx), 1)
		fy = math.Mod(math.Abs(fy), 1)
		rect := s.CellRect(c)
		p := geom.Pt(
			rect.Min.X+0.001+fx*(rect.Width()-0.002),
			rect.Min.Y+0.001+fy*(rect.Height()-0.002),
		)
		got, ok := s.CoordOf(p)
		return ok && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	s := mustNew(t, 4, 5, 1)
	tests := []struct {
		c    Coord
		want int
	}{
		{C(0, 0), 2}, // corner
		{C(3, 4), 2}, // corner
		{C(0, 2), 3}, // west edge
		{C(2, 0), 3}, // south edge
		{C(1, 1), 4}, // interior
	}
	for _, tt := range tests {
		got := s.Neighbors(nil, tt.c)
		if len(got) != tt.want {
			t.Errorf("Neighbors(%v) = %v (%d), want %d", tt.c, got, len(got), tt.want)
		}
		if n := s.NeighborCount(tt.c); n != tt.want {
			t.Errorf("NeighborCount(%v) = %d, want %d", tt.c, n, tt.want)
		}
		for _, nb := range got {
			if !s.Contains(nb) {
				t.Errorf("neighbor %v of %v out of bounds", nb, tt.c)
			}
			if !tt.c.IsNeighbor(nb) {
				t.Errorf("neighbor %v of %v not adjacent", nb, tt.c)
			}
		}
	}
}

func TestNeighborsAppendsToDst(t *testing.T) {
	s := mustNew(t, 3, 3, 1)
	buf := make([]Coord, 0, 8)
	buf = append(buf, C(9, 9))
	out := s.Neighbors(buf, C(1, 1))
	if len(out) != 5 || out[0] != C(9, 9) {
		t.Errorf("Neighbors should append, got %v", out)
	}
}

func TestRangeConstants(t *testing.T) {
	s := mustNew(t, 4, 4, 3)
	if got, want := s.MaxNeighborDistance(), 3*math.Sqrt(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxNeighborDistance = %v, want %v", got, want)
	}
	if got, want := s.MaxDiagonalNeighborDistance(), 3*2*math.Sqrt2; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDiagonalNeighborDistance = %v, want %v", got, want)
	}
	// The paper's observation: monitoring diagonal neighbors needs a
	// strictly larger communication range (2*sqrt(2) > sqrt(5)).
	if s.MaxDiagonalNeighborDistance() <= s.MaxNeighborDistance() {
		t.Error("diagonal surveillance range should exceed edge surveillance range")
	}
}

// TestCommRangeCoversNeighborCells verifies the virtual-grid guarantee the
// whole scheme rests on: two nodes anywhere within edge-adjacent cells are
// within R = sqrt(5)*r of each other.
func TestCommRangeCoversNeighborCells(t *testing.T) {
	s := mustNew(t, 2, 1, 7)
	a := s.CellRect(C(0, 0))
	b := s.CellRect(C(1, 0))
	R := s.CommRange()
	worst := 0.0
	const steps = 10
	for i := 0; i <= steps; i++ {
		for j := 0; j <= steps; j++ {
			p := geom.Pt(a.Min.X+a.Width()*float64(i)/steps, a.Min.Y+a.Height()*float64(j)/steps)
			for k := 0; k <= steps; k++ {
				for l := 0; l <= steps; l++ {
					q := geom.Pt(b.Min.X+b.Width()*float64(k)/steps, b.Min.Y+b.Height()*float64(l)/steps)
					worst = math.Max(worst, p.Dist(q))
				}
			}
		}
	}
	if worst > R+1e-9 {
		t.Errorf("worst-case neighbor distance %v exceeds comm range %v", worst, R)
	}
	if math.Abs(worst-R) > 1e-9 {
		t.Errorf("bound should be tight: worst %v vs R %v", worst, R)
	}
}

func TestAllCoordsOrder(t *testing.T) {
	s := mustNew(t, 3, 2, 1)
	want := []Coord{C(0, 0), C(1, 0), C(2, 0), C(0, 1), C(1, 1), C(2, 1)}
	got := s.AllCoords()
	if len(got) != len(want) {
		t.Fatalf("AllCoords len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AllCoords[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStringers(t *testing.T) {
	s := mustNew(t, 4, 5, 1.5)
	if s.String() == "" {
		t.Error("System String empty")
	}
	if C(1, 2).String() != "(1,2)" {
		t.Errorf("Coord String = %q", C(1, 2).String())
	}
}
