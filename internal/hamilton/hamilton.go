// Package hamilton constructs the directed Hamilton cycles that thread the
// virtual grid and drive the paper's synchronized replacement scheme.
//
// For an n x m grid system with n*m even, a true directed Hamilton cycle is
// built (Section 4, Figure 1(b)). When both n and m are odd no Hamilton
// cycle exists (the grid graph is bipartite with unequal color classes), so
// the paper's dual-path construction is used instead (Section 4, Figure 4):
// two directed Hamilton paths, path one A -> D -> ... -> C -> B and path
// two B -> D -> ... -> C -> A, sharing the middle n*m-2 grids. C is the
// common predecessor of A and B; D is their common successor.
//
// The package exposes the monitoring relation (which head watches which
// grid for vacancy) and the backward walk a cascading replacement follows,
// including the special routing rules of Algorithm 2 at grids C and D.
package hamilton

import (
	"fmt"

	"wsncover/internal/grid"
)

// Kind distinguishes the two constructions.
type Kind int

// Topology kinds. Enums start at 1 so the zero value is invalid.
const (
	// KindCycle is a single directed Hamilton cycle (n*m even).
	KindCycle Kind = iota + 1
	// KindDualPath is the dual-path construction for odd x odd grids.
	KindDualPath
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCycle:
		return "cycle"
	case KindDualPath:
		return "dual-path"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Topology is the directed Hamilton structure over a grid system. It is
// immutable after construction and safe for concurrent readers.
type Topology struct {
	sys  *grid.System
	kind Kind

	// Single-cycle state: succ and pred are dense-index maps around the
	// cycle. Only set for KindCycle.
	succ []int
	pred []int

	// Dual-path state. sharedOrder runs from D to C and covers every grid
	// except a and b; sharedNext/sharedPrev are dense-index maps along it
	// (-1 where undefined). Only set for KindDualPath.
	a, b, c, d  grid.Coord
	sharedOrder []grid.Coord
	sharedNext  []int
	sharedPrev  []int

	// monitor is the precomputed reverse monitoring relation: for every
	// grid index, the dense index of the unique grid whose head watches it
	// for vacancy. monitorRank is the grid's position within its monitor's
	// Monitored list (only grid B of the dual-path construction has rank
	// 1: C watches A first, then B). Together they give event-driven hole
	// detection an O(1) "who detects this hole, and in what scan order"
	// lookup. Set for both kinds.
	monitor     []int
	monitorRank []uint8
}

// Build constructs the appropriate topology for the grid system: a single
// directed Hamilton cycle when n*m is even, the dual-path construction when
// both dimensions are odd. Grids smaller than 2x2 have no usable topology
// and yield an error.
func Build(sys *grid.System) (*Topology, error) {
	n, m := sys.Cols(), sys.Rows()
	if n < 2 || m < 2 {
		return nil, fmt.Errorf("hamilton: no Hamilton structure on a %dx%d grid (need at least 2x2)", n, m)
	}
	var (
		t   *Topology
		err error
	)
	if n*m%2 == 0 {
		t, err = buildCycle(sys)
	} else {
		t, err = buildDualPath(sys)
	}
	if err != nil {
		return nil, err
	}
	t.buildMonitorIndex()
	return t, nil
}

// buildMonitorIndex precomputes the reverse monitoring relation from the
// forward Monitored lists, so MonitorOf is a single slice lookup.
func (t *Topology) buildMonitorIndex() {
	n := t.sys.NumCells()
	t.monitor = make([]int, n)
	t.monitorRank = make([]uint8, n)
	var buf []grid.Coord
	for idx := 0; idx < n; idx++ {
		g := t.sys.CoordAt(idx)
		buf = t.Monitored(buf[:0], g)
		for rank, s := range buf {
			t.monitor[t.sys.Index(s)] = idx
			t.monitorRank[t.sys.Index(s)] = uint8(rank)
		}
	}
}

// Kind returns the construction kind.
func (t *Topology) Kind() Kind { return t.kind }

// System returns the underlying grid system.
func (t *Topology) System() *grid.System { return t.sys }

// ABCD returns the special grids of the dual-path construction. It must
// only be called on a KindDualPath topology; ok is false otherwise.
func (t *Topology) ABCD() (a, b, c, d grid.Coord, ok bool) {
	if t.kind != KindDualPath {
		return grid.Coord{}, grid.Coord{}, grid.Coord{}, grid.Coord{}, false
	}
	return t.a, t.b, t.c, t.d, true
}

// CycleOrder returns the cells in cycle order starting from (0,0). For a
// dual-path topology it returns nil.
func (t *Topology) CycleOrder() []grid.Coord {
	if t.kind != KindCycle {
		return nil
	}
	out := make([]grid.Coord, 0, t.sys.NumCells())
	start := grid.C(0, 0)
	cur := start
	for {
		out = append(out, cur)
		cur = t.sys.CoordAt(t.succ[t.sys.Index(cur)])
		if cur == start {
			break
		}
	}
	return out
}

// SharedOrder returns a copy of the shared segment from D to C for a
// dual-path topology, or nil for a cycle.
func (t *Topology) SharedOrder() []grid.Coord {
	if t.kind != KindDualPath {
		return nil
	}
	out := make([]grid.Coord, len(t.sharedOrder))
	copy(out, t.sharedOrder)
	return out
}

// Succ returns the successor of cell g around a single Hamilton cycle. It
// must only be called on a KindCycle topology.
func (t *Topology) Succ(g grid.Coord) grid.Coord {
	return t.sys.CoordAt(t.succ[t.sys.Index(g)])
}

// Pred returns the predecessor of cell g around a single Hamilton cycle. It
// must only be called on a KindCycle topology.
func (t *Topology) Pred(g grid.Coord) grid.Coord {
	return t.sys.CoordAt(t.pred[t.sys.Index(g)])
}

// MonitorOf returns the unique grid whose head is responsible for
// detecting a vacancy of g and initiating its replacement process:
//
//   - single cycle: the cycle predecessor of g;
//   - dual path: C for holes at A or B, B for a hole at D (the paper's
//     "only B will initiate"), and the shared-segment predecessor for every
//     other grid.
//
// The relation is precomputed at Build time; the call is a single slice
// lookup, suitable for per-event hot paths.
func (t *Topology) MonitorOf(g grid.Coord) grid.Coord {
	return t.sys.CoordAt(t.monitor[t.sys.Index(g)])
}

// MonitorRank returns g's position within MonitorOf(g)'s Monitored list.
// It is 0 for every grid except B of the dual-path construction, whose
// monitor C watches A at rank 0 and B at rank 1. Detection schemes use
// (monitor index, rank) as the scan-order key that reproduces a full
// index-order sweep over monitors.
func (t *Topology) MonitorRank(g grid.Coord) int {
	return int(t.monitorRank[t.sys.Index(g)])
}

// Monitored appends to dst the grids whose vacancy the head of g must
// watch for, and returns the extended slice. Every grid has exactly one
// monitor; in the dual-path construction C watches both A and B, while A
// watches nothing (only B initiates for D).
func (t *Topology) Monitored(dst []grid.Coord, g grid.Coord) []grid.Coord {
	if t.kind == KindCycle {
		return append(dst, t.Succ(g))
	}
	switch g {
	case t.c:
		return append(dst, t.a, t.b)
	case t.b:
		return append(dst, t.d)
	case t.a:
		return dst
	default:
		next := t.sharedNext[t.sys.Index(g)]
		if next < 0 {
			return dst
		}
		return append(dst, t.sys.CoordAt(next))
	}
}

// PathLength returns the length L (in hops) of the directed Hamilton path
// a replacement for a hole at g can stretch along, as analyzed in the
// paper: n*m-1 for a single cycle and for holes at A or B of the dual-path
// construction, and n*m-2 for every other dual-path hole.
func (t *Topology) PathLength(g grid.Coord) int {
	nm := t.sys.NumCells()
	if t.kind == KindCycle {
		return nm - 1
	}
	if g == t.a || g == t.b {
		return nm - 1
	}
	return nm - 2
}

// SpareProbe reports whether a grid currently holds at least one spare
// node. It is consulted only at the dual-path decision points (grid D
// choosing between A and B, and grid C preferring A in the hole-at-D
// case), which the paper permits because A and B are 1-hop neighbors of
// both C and D.
type SpareProbe func(grid.Coord) bool

// Walk iterates the backward route a cascading replacement follows for a
// particular hole: the sequence of grids successively asked to supply a
// node. Current starts at the initiator (MonitorOf the hole) and Advance
// steps backward along the topology, applying the Algorithm 2 preferences
// at C and D.
type Walk struct {
	topo    *Topology
	origin  grid.Coord
	cur     grid.Coord
	hops    int
	done    bool
	started bool
}

// NewWalk returns the walk for a hole at origin. The walk's first grid is
// the initiator.
func (t *Topology) NewWalk(origin grid.Coord) *Walk {
	w := t.WalkFrom(origin)
	return &w
}

// WalkFrom is NewWalk by value, for callers that embed walks inside
// pooled process tables instead of boxing one per process. The returned
// Walk must be stored in addressable memory before Advance is called.
func (t *Topology) WalkFrom(origin grid.Coord) Walk {
	return Walk{topo: t, origin: origin, cur: t.MonitorOf(origin)}
}

// Origin returns the hole grid this walk serves.
func (w *Walk) Origin() grid.Coord { return w.origin }

// Current returns the grid currently asked to supply a node.
func (w *Walk) Current() grid.Coord { return w.cur }

// Hops returns the number of grids visited so far, counting the initiator
// as hop 1.
func (w *Walk) Hops() int {
	if w.done {
		return w.hops
	}
	return w.hops + 1
}

// Exhausted reports whether the walk has run out of grids to ask.
func (w *Walk) Exhausted() bool { return w.done }

// Advance moves the walk to the next grid to notify, applying the
// dual-path preference rules with probe at decision points. It returns
// false when the walk is exhausted (the next grid would be the hole
// itself, i.e. the whole structure has been traversed).
func (w *Walk) Advance(probe SpareProbe) bool {
	if w.done {
		return false
	}
	w.hops++
	next, ok := w.topo.nextBack(w.origin, w.cur, probe)
	if !ok || w.hops >= 2*w.topo.sys.NumCells() {
		w.done = true
		return false
	}
	w.cur = next
	return true
}

// nextBack computes the grid notified after cur donates its head for a
// cascade serving a hole at origin.
func (t *Topology) nextBack(origin, cur grid.Coord, probe SpareProbe) (grid.Coord, bool) {
	if probe == nil {
		probe = func(grid.Coord) bool { return false }
	}
	var next grid.Coord
	if t.kind == KindCycle {
		next = t.sys.CoordAt(t.pred[t.sys.Index(cur)])
	} else {
		switch cur {
		case t.a:
			if origin == t.b {
				// A is the start of path one: walking backward for a hole
				// at B ends here.
				return grid.Coord{}, false
			}
			next = t.c
		case t.b:
			if origin == t.a {
				// B is the start of path two: walking backward for a hole
				// at A ends here.
				return grid.Coord{}, false
			}
			next = t.c
		case t.c:
			if origin == t.d && probe(t.a) {
				// Algorithm 2 case two: at C, grid A with spare nodes is
				// always preferred before stretching along path one.
				next = t.a
			} else {
				next = t.sys.CoordAt(t.sharedPrev[t.sys.Index(t.c)])
			}
		case t.d:
			switch origin {
			case t.a:
				// Walking backward along path two: pred(D) is B.
				next = t.b
			case t.b:
				// Walking backward along path one: pred(D) is A.
				next = t.a
			default:
				// Algorithm 2 case three: from D, A or B is notified when
				// one of them has a spare; otherwise cascade through A.
				switch {
				case probe(t.a):
					next = t.a
				case probe(t.b):
					next = t.b
				default:
					next = t.a
				}
			}
		default:
			prev := t.sharedPrev[t.sys.Index(cur)]
			if prev < 0 {
				return grid.Coord{}, false
			}
			next = t.sys.CoordAt(prev)
		}
	}
	if next == origin {
		return grid.Coord{}, false
	}
	return next, true
}

// buildCycle constructs the single directed Hamilton cycle. At least one
// dimension is even. With even column count the cycle uses row 0 as the
// return highway and serpentines over the rows above it; otherwise the
// transposed construction is used.
func buildCycle(sys *grid.System) (*Topology, error) {
	n, m := sys.Cols(), sys.Rows()
	var order []grid.Coord
	switch {
	case n%2 == 0:
		order = cycleOrderEvenCols(n, m)
	case m%2 == 0:
		order = transpose(cycleOrderEvenCols(m, n))
	default:
		return nil, fmt.Errorf("hamilton: internal: buildCycle on odd x odd %dx%d", n, m)
	}
	t := &Topology{
		sys:  sys,
		kind: KindCycle,
		succ: make([]int, sys.NumCells()),
		pred: make([]int, sys.NumCells()),
	}
	for i, g := range order {
		nxt := order[(i+1)%len(order)]
		t.succ[sys.Index(g)] = sys.Index(nxt)
		t.pred[sys.Index(nxt)] = sys.Index(g)
	}
	return t, nil
}

// cycleOrderEvenCols builds the cycle order for an n x m grid with n even:
// (0,0) up column 0, serpentine columns 1..n-1 over rows 1..m-1 ending at
// (n-1,1), then down to (n-1,0) and west along row 0 back to the start.
func cycleOrderEvenCols(n, m int) []grid.Coord {
	order := make([]grid.Coord, 0, n*m)
	order = append(order, grid.C(0, 0))
	// Column 0 upward over rows 1..m-1.
	for y := 1; y < m; y++ {
		order = append(order, grid.C(0, y))
	}
	// Serpentine columns 1..n-1 over rows 1..m-1; odd columns descend,
	// even columns ascend, so column n-1 (odd, n even) ends at row 1.
	for x := 1; x < n; x++ {
		if x%2 == 1 {
			for y := m - 1; y >= 1; y-- {
				order = append(order, grid.C(x, y))
			}
		} else {
			for y := 1; y < m; y++ {
				order = append(order, grid.C(x, y))
			}
		}
	}
	// Row 0 highway from (n-1,0) back west to (1,0).
	for x := n - 1; x >= 1; x-- {
		order = append(order, grid.C(x, 0))
	}
	return order
}

// transpose mirrors a cycle order across the diagonal, turning a
// construction for (cols, rows) into one for (rows, cols).
func transpose(order []grid.Coord) []grid.Coord {
	out := make([]grid.Coord, len(order))
	for i, g := range order {
		out[i] = grid.C(g.Y, g.X)
	}
	return out
}

// buildDualPath constructs the dual-path topology for odd x odd grids.
// The special 2x2 block sits in the north-east corner:
//
//	A = (n-1, m-1)   the corner itself
//	B = (n-2, m-2)
//	C = (n-2, m-1)   common predecessor of A and B
//	D = (n-1, m-2)   common successor of A and B
//
// The shared segment is a Hamilton path from D to C over every grid except
// A and B.
func buildDualPath(sys *grid.System) (*Topology, error) {
	n, m := sys.Cols(), sys.Rows()
	if n < 3 || m < 3 {
		return nil, fmt.Errorf("hamilton: dual-path needs at least 3x3, got %dx%d", n, m)
	}
	t := &Topology{
		sys:  sys,
		kind: KindDualPath,
		a:    grid.C(n-1, m-1),
		b:    grid.C(n-2, m-2),
		c:    grid.C(n-2, m-1),
		d:    grid.C(n-1, m-2),
	}
	t.sharedOrder = dualSharedOrder(n, m)
	t.sharedNext = make([]int, sys.NumCells())
	t.sharedPrev = make([]int, sys.NumCells())
	for i := range t.sharedNext {
		t.sharedNext[i] = -1
		t.sharedPrev[i] = -1
	}
	for i, g := range t.sharedOrder {
		if i+1 < len(t.sharedOrder) {
			t.sharedNext[sys.Index(g)] = sys.Index(t.sharedOrder[i+1])
			t.sharedPrev[sys.Index(t.sharedOrder[i+1])] = sys.Index(g)
		}
	}
	return t, nil
}

// dualSharedOrder builds the shared Hamilton path from D=(n-1,m-2) to
// C=(n-2,m-1) over all grids except A=(n-1,m-1) and B=(n-2,m-2), for odd
// n,m >= 3. The route is:
//
//  1. D steps south to (n-1, m-3);
//  2. a Hamilton path over the full-width block of rows 0..m-3 from its
//     north-east corner to its north-west corner (column pairs swept
//     east to west, finishing with a 3-column zigzag);
//  3. north to (0, m-2), then a 2-row zigzag east over rows m-2 and m-1
//     (columns 0..n-3) ending at C.
func dualSharedOrder(n, m int) []grid.Coord {
	order := make([]grid.Coord, 0, n*m-2)
	order = append(order, grid.C(n-1, m-2)) // D
	h := m - 2                              // rows 0..m-3 span h rows, h odd >= 1
	top := h - 1                            // = m-3

	// Block rows 0..m-3, from (n-1, top) to (0, top).
	// Column pairs x, x-1 for x = n-1, n-3, ..., 3: down column x, west,
	// up column x-1, west to the next pair.
	x := n - 1
	for ; x >= 3; x -= 2 {
		for y := top; y >= 0; y-- {
			order = append(order, grid.C(x, y))
		}
		for y := 0; y <= top; y++ {
			order = append(order, grid.C(x-1, y))
		}
	}
	// Final three columns 2,1,0: down column 2, west along row 0, then a
	// 2-wide zigzag up rows 1..top ending at (0, top).
	for y := top; y >= 0; y-- {
		order = append(order, grid.C(2, y))
	}
	order = append(order, grid.C(1, 0), grid.C(0, 0))
	for y := 1; y <= top; y++ {
		if y%2 == 1 {
			order = append(order, grid.C(0, y), grid.C(1, y))
		} else {
			order = append(order, grid.C(1, y), grid.C(0, y))
		}
	}
	// Step north to row m-2, then zigzag east over rows m-2 and m-1 for
	// columns 0..n-3; even columns ascend, odd columns descend, so column
	// n-3 (even) exits at the top row next to C.
	for xx := 0; xx <= n-3; xx++ {
		if xx%2 == 0 {
			order = append(order, grid.C(xx, m-2), grid.C(xx, m-1))
		} else {
			order = append(order, grid.C(xx, m-1), grid.C(xx, m-2))
		}
	}
	order = append(order, grid.C(n-2, m-1)) // C
	return order
}
