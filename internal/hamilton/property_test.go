package hamilton

import (
	"testing"
	"testing/quick"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
)

// TestBuildPropertyRandomDims drives the constructions over random
// dimensions with testing/quick: every buildable topology must satisfy
// the full structural contract.
func TestBuildPropertyRandomDims(t *testing.T) {
	f := func(cu, ru uint8) bool {
		cols := int(cu)%14 + 2 // 2..15
		rows := int(ru)%14 + 2
		sys, err := grid.New(cols, rows, 1, geom.Pt(0, 0))
		if err != nil {
			return false
		}
		topo, err := Build(sys)
		if err != nil {
			return false
		}
		switch topo.Kind() {
		case KindCycle:
			order := topo.CycleOrder()
			if len(order) != cols*rows {
				return false
			}
			seen := make(map[grid.Coord]bool, len(order))
			for i, g := range order {
				if seen[g] || !g.IsNeighbor(order[(i+1)%len(order)]) {
					return false
				}
				seen[g] = true
			}
		case KindDualPath:
			a, b, c, d, ok := topo.ABCD()
			if !ok {
				return false
			}
			if !c.IsNeighbor(a) || !c.IsNeighbor(b) || !d.IsNeighbor(a) || !d.IsNeighbor(b) {
				return false
			}
			shared := topo.SharedOrder()
			if len(shared) != cols*rows-2 {
				return false
			}
		default:
			return false
		}
		// Monitoring relation is a bijection-with-one-monitor everywhere.
		count := map[grid.Coord]int{}
		for _, g := range sys.AllCoords() {
			for _, watched := range topo.Monitored(nil, g) {
				count[watched]++
			}
		}
		for _, g := range sys.AllCoords() {
			if count[g] != 1 {
				return false
			}
			if !topo.MonitorOf(g).IsNeighbor(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWalkCoverageProperty checks the walk contract over random dims and
// random hole positions: no revisits, full reach (modulo the one skipped
// special grid on dual paths), neighbor-adjacent steps.
func TestWalkCoverageProperty(t *testing.T) {
	f := func(cu, ru, hu uint16) bool {
		cols := int(cu)%10 + 2
		rows := int(ru)%10 + 2
		sys, err := grid.New(cols, rows, 1, geom.Pt(0, 0))
		if err != nil {
			return false
		}
		topo, err := Build(sys)
		if err != nil {
			return false
		}
		origin := sys.CoordAt(int(hu) % sys.NumCells())
		w := topo.NewWalk(origin)
		seen := map[grid.Coord]bool{origin: true}
		prev := origin
		visited := 1 // the initiator
		if seen[w.Current()] {
			return false
		}
		seen[w.Current()] = true
		if !prev.IsNeighbor(w.Current()) {
			return false
		}
		prev = w.Current()
		for w.Advance(nil) {
			if seen[w.Current()] || !prev.IsNeighbor(w.Current()) {
				return false
			}
			seen[w.Current()] = true
			prev = w.Current()
			visited++
		}
		want := sys.NumCells() - 1
		if topo.Kind() == KindDualPath {
			a, b, _, _, _ := topo.ABCD()
			if origin != a && origin != b {
				want = sys.NumCells() - 2
			}
		}
		return len(seen)-1 == want && visited+1 == want+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestBigGrids smoke-tests construction at simulator-untypical scale.
func TestBigGrids(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {63, 65}, {31, 33}, {33, 33}} {
		sys, err := grid.New(dims[0], dims[1], 1, geom.Pt(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		topo, err := Build(sys)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		// Every walk from the four corners terminates with full coverage.
		for _, origin := range []grid.Coord{
			grid.C(0, 0), grid.C(dims[0]-1, 0), grid.C(0, dims[1]-1), grid.C(dims[0]-1, dims[1]-1),
		} {
			w := topo.NewWalk(origin)
			n := 1
			for w.Advance(nil) {
				n++
			}
			if n < sys.NumCells()-2 {
				t.Errorf("%v origin %v: walk covers only %d grids", dims, origin, n)
			}
		}
	}
}
