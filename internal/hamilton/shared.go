package hamilton

import (
	"sync"

	"wsncover/internal/grid"
)

// topoKey identifies the grid geometry a topology is built over. Two
// grid.System instances with equal geometry have interchangeable
// Hamilton structures: every table in a Topology is a pure function of
// these fields.
type topoKey struct {
	cols, rows       int
	cellSize         float64
	originX, originY float64
}

// sharedTopos caches one immutable Topology per grid geometry for the
// lifetime of the process. The number of distinct geometries a campaign
// touches is the size of its grid dimension (a handful), so the cache is
// effectively bounded; entries are never evicted.
var sharedTopos sync.Map // topoKey -> *Topology

// Shared returns the process-wide cached topology for sys's geometry,
// building and memoizing it on first use. A Topology is immutable after
// Build and safe for concurrent readers, so one instance serves every
// trial worker; pooled replicate engines use Shared to stop paying the
// O(cells) construction (succ/pred/monitor tables) once per trial.
//
// The returned topology's System() is the *grid.System it was first
// built over — geometry-equal to sys but not necessarily the same
// pointer. Consumers (core, async) compare grids by geometry, never by
// identity. Errors (grids with no Hamilton structure) are not cached.
func Shared(sys *grid.System) (*Topology, error) {
	key := topoKey{
		cols:     sys.Cols(),
		rows:     sys.Rows(),
		cellSize: sys.CellSize(),
		originX:  sys.Origin().X,
		originY:  sys.Origin().Y,
	}
	if t, ok := sharedTopos.Load(key); ok {
		return t.(*Topology), nil
	}
	t, err := Build(sys)
	if err != nil {
		return nil, err
	}
	// Two racing first users may both build; LoadOrStore keeps exactly
	// one winner so every later caller shares the same instance.
	actual, _ := sharedTopos.LoadOrStore(key, t)
	return actual.(*Topology), nil
}
