package hamilton

import (
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
)

func TestSharedCachesPerGeometry(t *testing.T) {
	sysA, err := grid.New(6, 6, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := grid.New(6, 6, 10, geom.Pt(0, 0)) // equal geometry, new instance
	if err != nil {
		t.Fatal(err)
	}
	a, err := Shared(sysA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(sysB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equal geometries must share one topology instance")
	}

	sysC, err := grid.New(6, 6, 5, geom.Pt(0, 0)) // different cell size
	if err != nil {
		t.Fatal(err)
	}
	c, err := Shared(sysC)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different geometries must not share a topology")
	}

	// The cached instance must agree with a direct Build everywhere.
	ref, err := Build(sysA)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < sysA.NumCells(); idx++ {
		g := sysA.CoordAt(idx)
		if a.MonitorOf(g) != ref.MonitorOf(g) || a.MonitorRank(g) != ref.MonitorRank(g) {
			t.Fatalf("cached topology diverges from Build at %v", g)
		}
	}
}

func TestSharedErrorNotCached(t *testing.T) {
	sys, err := grid.New(1, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(sys); err == nil {
		t.Fatal("1x5 grid should have no Hamilton structure")
	}
}
