package hamilton

import (
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
)

func sysOf(t *testing.T, cols, rows int) *grid.System {
	t.Helper()
	s, err := grid.New(cols, rows, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildOf(t *testing.T, cols, rows int) *Topology {
	t.Helper()
	topo, err := Build(sysOf(t, cols, rows))
	if err != nil {
		t.Fatalf("Build(%dx%d): %v", cols, rows, err)
	}
	return topo
}

func TestBuildRejectsDegenerateGrids(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {7, 1}, {2, 1}} {
		if _, err := Build(sysOf(t, dims[0], dims[1])); err == nil {
			t.Errorf("Build(%dx%d) should fail", dims[0], dims[1])
		}
	}
}

func TestBuildKindSelection(t *testing.T) {
	tests := []struct {
		cols, rows int
		want       Kind
	}{
		{4, 5, KindCycle}, // paper Figure 1(b)
		{16, 16, KindCycle},
		{2, 2, KindCycle},
		{3, 4, KindCycle},
		{5, 5, KindDualPath}, // paper Figure 4
		{3, 3, KindDualPath},
		{7, 9, KindDualPath},
	}
	for _, tt := range tests {
		topo := buildOf(t, tt.cols, tt.rows)
		if topo.Kind() != tt.want {
			t.Errorf("Build(%dx%d).Kind = %v, want %v", tt.cols, tt.rows, topo.Kind(), tt.want)
		}
	}
	if KindCycle.String() != "cycle" || KindDualPath.String() != "dual-path" {
		t.Error("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Error("invalid Kind should still render")
	}
}

// verifyCycle checks that the successor relation of a KindCycle topology is
// a single Hamilton cycle over all cells with grid-adjacent consecutive
// cells and consistent pred/succ.
func verifyCycle(t *testing.T, topo *Topology) {
	t.Helper()
	sys := topo.System()
	order := topo.CycleOrder()
	if len(order) != sys.NumCells() {
		t.Fatalf("cycle visits %d cells, want %d", len(order), sys.NumCells())
	}
	seen := make(map[grid.Coord]bool, len(order))
	for i, g := range order {
		if seen[g] {
			t.Fatalf("cell %v visited twice", g)
		}
		seen[g] = true
		next := order[(i+1)%len(order)]
		if !g.IsNeighbor(next) {
			t.Fatalf("consecutive cycle cells %v -> %v are not grid neighbors", g, next)
		}
		if topo.Succ(g) != next {
			t.Fatalf("Succ(%v) = %v, want %v", g, topo.Succ(g), next)
		}
		if topo.Pred(next) != g {
			t.Fatalf("Pred(%v) = %v, want %v", next, topo.Pred(next), g)
		}
	}
}

func TestCycleConstructionSweep(t *testing.T) {
	for cols := 2; cols <= 9; cols++ {
		for rows := 2; rows <= 9; rows++ {
			if cols*rows%2 == 1 {
				continue
			}
			topo := buildOf(t, cols, rows)
			if topo.Kind() != KindCycle {
				t.Fatalf("%dx%d: kind %v", cols, rows, topo.Kind())
			}
			verifyCycle(t, topo)
		}
	}
}

func TestCycleLargeGrid(t *testing.T) {
	verifyCycle(t, buildOf(t, 16, 16))
	verifyCycle(t, buildOf(t, 16, 17)) // odd rows, even cols
	verifyCycle(t, buildOf(t, 17, 16)) // odd cols, even rows
}

func TestCyclePathLength(t *testing.T) {
	// Paper: L=19 on 4x5, L=255 on 16x16.
	if got := buildOf(t, 4, 5).PathLength(grid.C(2, 2)); got != 19 {
		t.Errorf("4x5 PathLength = %d, want 19", got)
	}
	if got := buildOf(t, 16, 16).PathLength(grid.C(0, 0)); got != 255 {
		t.Errorf("16x16 PathLength = %d, want 255", got)
	}
}

// verifyDualPath checks the structural invariants of the dual-path
// construction: the shared order is a Hamilton path from D to C over all
// cells except A and B, and the A/B/C/D adjacency relations hold.
func verifyDualPath(t *testing.T, topo *Topology) {
	t.Helper()
	sys := topo.System()
	a, b, c, d, ok := topo.ABCD()
	if !ok {
		t.Fatal("ABCD not available")
	}
	// C is the common predecessor (neighbor) of A and B; D the common
	// successor.
	for _, pair := range []struct {
		x, y grid.Coord
		name string
	}{
		{c, a, "C-A"}, {c, b, "C-B"}, {d, a, "D-A"}, {d, b, "D-B"},
	} {
		if !pair.x.IsNeighbor(pair.y) {
			t.Errorf("%s not adjacent: %v, %v", pair.name, pair.x, pair.y)
		}
	}
	shared := topo.SharedOrder()
	if len(shared) != sys.NumCells()-2 {
		t.Fatalf("shared order has %d cells, want %d", len(shared), sys.NumCells()-2)
	}
	if shared[0] != d {
		t.Errorf("shared order starts at %v, want D=%v", shared[0], d)
	}
	if shared[len(shared)-1] != c {
		t.Errorf("shared order ends at %v, want C=%v", shared[len(shared)-1], c)
	}
	seen := make(map[grid.Coord]bool, len(shared))
	for i, g := range shared {
		if g == a || g == b {
			t.Fatalf("shared order contains excluded cell %v", g)
		}
		if seen[g] {
			t.Fatalf("shared order visits %v twice", g)
		}
		seen[g] = true
		if i+1 < len(shared) && !g.IsNeighbor(shared[i+1]) {
			t.Fatalf("shared cells %v -> %v not adjacent", g, shared[i+1])
		}
	}
}

func TestDualPathConstructionSweep(t *testing.T) {
	for cols := 3; cols <= 11; cols += 2 {
		for rows := 3; rows <= 11; rows += 2 {
			topo := buildOf(t, cols, rows)
			if topo.Kind() != KindDualPath {
				t.Fatalf("%dx%d: kind %v", cols, rows, topo.Kind())
			}
			verifyDualPath(t, topo)
		}
	}
}

func TestDualPathPaper5x5(t *testing.T) {
	topo := buildOf(t, 5, 5)
	verifyDualPath(t, topo)
	// L = m*n-1 = 24 for holes at A and B; m*n-2 = 23 elsewhere.
	a, b, _, d, _ := topo.ABCD()
	if got := topo.PathLength(a); got != 24 {
		t.Errorf("PathLength(A) = %d, want 24", got)
	}
	if got := topo.PathLength(b); got != 24 {
		t.Errorf("PathLength(B) = %d, want 24", got)
	}
	if got := topo.PathLength(d); got != 23 {
		t.Errorf("PathLength(D) = %d, want 23", got)
	}
	if got := topo.PathLength(grid.C(0, 0)); got != 23 {
		t.Errorf("PathLength(shared) = %d, want 23", got)
	}
}

func TestCycleABCDUnavailable(t *testing.T) {
	topo := buildOf(t, 4, 4)
	if _, _, _, _, ok := topo.ABCD(); ok {
		t.Error("ABCD should be unavailable on a cycle")
	}
	if topo.SharedOrder() != nil {
		t.Error("SharedOrder should be nil on a cycle")
	}
	if buildOf(t, 3, 3).CycleOrder() != nil {
		t.Error("CycleOrder should be nil on a dual path")
	}
}

func TestMonitorOfCycle(t *testing.T) {
	topo := buildOf(t, 4, 5)
	for _, g := range topo.System().AllCoords() {
		mon := topo.MonitorOf(g)
		if topo.Succ(mon) != g {
			t.Errorf("MonitorOf(%v) = %v but its successor is %v", g, mon, topo.Succ(mon))
		}
	}
}

func TestMonitoredIsInverseOfMonitorOf(t *testing.T) {
	for _, dims := range [][2]int{{4, 5}, {16, 16}, {3, 3}, {5, 5}, {7, 5}} {
		topo := buildOf(t, dims[0], dims[1])
		count := make(map[grid.Coord]int)
		for _, g := range topo.System().AllCoords() {
			for _, watched := range topo.Monitored(nil, g) {
				count[watched]++
				if topo.MonitorOf(watched) != g {
					t.Errorf("%dx%d: %v watches %v but MonitorOf(%v) = %v",
						dims[0], dims[1], g, watched, watched, topo.MonitorOf(watched))
				}
			}
		}
		// Every grid has exactly one monitor.
		for _, g := range topo.System().AllCoords() {
			if count[g] != 1 {
				t.Errorf("%dx%d: grid %v monitored by %d heads, want 1", dims[0], dims[1], g, count[g])
			}
		}
	}
}

func TestMonitorRankMatchesMonitoredPosition(t *testing.T) {
	for _, dims := range [][2]int{{4, 5}, {16, 16}, {3, 3}, {5, 5}, {7, 5}} {
		topo := buildOf(t, dims[0], dims[1])
		ranked := 0
		for _, g := range topo.System().AllCoords() {
			for rank, watched := range topo.Monitored(nil, g) {
				if got := topo.MonitorRank(watched); got != rank {
					t.Errorf("%dx%d: MonitorRank(%v) = %d, want %d",
						dims[0], dims[1], watched, got, rank)
				}
				if rank > 0 {
					ranked++
				}
			}
		}
		// Only grid B of a dual path sits at rank 1; cycles have none.
		wantRanked := 0
		if topo.Kind() == KindDualPath {
			wantRanked = 1
			_, b, _, _, _ := topo.ABCD()
			if topo.MonitorRank(b) != 1 {
				t.Errorf("%dx%d: MonitorRank(B) = %d, want 1", dims[0], dims[1], topo.MonitorRank(b))
			}
		}
		if ranked != wantRanked {
			t.Errorf("%dx%d: %d grids at rank > 0, want %d", dims[0], dims[1], ranked, wantRanked)
		}
	}
}

func TestMonitorAdjacency(t *testing.T) {
	// The monitor must be a 1-hop grid neighbor of the monitored grid so
	// that R = sqrt(5)*r surveillance suffices.
	for _, dims := range [][2]int{{4, 5}, {5, 5}, {16, 16}, {9, 7}} {
		topo := buildOf(t, dims[0], dims[1])
		for _, g := range topo.System().AllCoords() {
			if mon := topo.MonitorOf(g); !mon.IsNeighbor(g) {
				t.Errorf("%dx%d: MonitorOf(%v) = %v not adjacent", dims[0], dims[1], g, mon)
			}
		}
	}
}

// collectWalk runs a walk to exhaustion with a static probe and returns the
// visited grids in order.
func collectWalk(topo *Topology, origin grid.Coord, probe SpareProbe) []grid.Coord {
	w := topo.NewWalk(origin)
	out := []grid.Coord{w.Current()}
	for w.Advance(probe) {
		out = append(out, w.Current())
	}
	return out
}

func TestWalkCycleCoversEverythingOnce(t *testing.T) {
	for _, dims := range [][2]int{{4, 5}, {2, 2}, {16, 16}, {6, 3}} {
		topo := buildOf(t, dims[0], dims[1])
		for _, origin := range topo.System().AllCoords() {
			visited := collectWalk(topo, origin, nil)
			if len(visited) != topo.System().NumCells()-1 {
				t.Fatalf("%dx%d walk from %v: %d grids, want %d",
					dims[0], dims[1], origin, len(visited), topo.System().NumCells()-1)
			}
			seen := map[grid.Coord]bool{origin: true}
			for _, g := range visited {
				if seen[g] {
					t.Fatalf("walk from %v revisits %v", origin, g)
				}
				seen[g] = true
			}
		}
	}
}

func TestWalkCycleMatchesPathLength(t *testing.T) {
	topo := buildOf(t, 4, 5)
	origin := grid.C(1, 1)
	visited := collectWalk(topo, origin, nil)
	if len(visited) != topo.PathLength(origin) {
		t.Errorf("walk length %d != PathLength %d", len(visited), topo.PathLength(origin))
	}
}

func TestWalkDualPathHoleAtA(t *testing.T) {
	topo := buildOf(t, 5, 5)
	a, b, c, d, _ := topo.ABCD()
	visited := collectWalk(topo, a, nil)
	// Backward along path two: C, shared reversed to D, then B.
	if visited[0] != c {
		t.Errorf("first grid = %v, want C=%v", visited[0], c)
	}
	if visited[len(visited)-1] != b {
		t.Errorf("last grid = %v, want B=%v", visited[len(visited)-1], b)
	}
	if len(visited) != topo.System().NumCells()-1 {
		t.Errorf("walk covers %d grids, want %d", len(visited), topo.System().NumCells()-1)
	}
	for _, g := range visited {
		if g == a {
			t.Error("walk must not revisit the hole A")
		}
		if g == d {
			return // D must be visited (second to last before B)
		}
	}
	_ = d
}

func TestWalkDualPathHoleAtB(t *testing.T) {
	topo := buildOf(t, 5, 5)
	a, b, c, _, _ := topo.ABCD()
	visited := collectWalk(topo, b, nil)
	if visited[0] != c {
		t.Errorf("first grid = %v, want C=%v", visited[0], c)
	}
	if visited[len(visited)-1] != a {
		t.Errorf("last grid = %v, want A=%v", visited[len(visited)-1], a)
	}
	if len(visited) != topo.System().NumCells()-1 {
		t.Errorf("walk covers %d grids, want %d", len(visited), topo.System().NumCells()-1)
	}
}

func TestWalkDualPathHoleAtD(t *testing.T) {
	topo := buildOf(t, 5, 5)
	a, b, c, d, _ := topo.ABCD()

	// Without spares anywhere: B initiates, then C, then continues along
	// path one (shared backward), skipping A per the preference rule.
	visited := collectWalk(topo, d, nil)
	if visited[0] != b {
		t.Errorf("initiator = %v, want B=%v", visited[0], b)
	}
	if visited[1] != c {
		t.Errorf("second = %v, want C=%v", visited[1], c)
	}
	for _, g := range visited {
		if g == a {
			t.Errorf("walk should skip A when A has no spares")
		}
	}
	// Covers everything except A and the hole D itself.
	if len(visited) != topo.System().NumCells()-2 {
		t.Errorf("walk covers %d grids, want %d", len(visited), topo.System().NumCells()-2)
	}

	// With a spare at A: the walk detours to A right after C.
	probeA := func(g grid.Coord) bool { return g == a }
	visited = collectWalk(topo, d, probeA)
	if visited[0] != b || visited[1] != c || visited[2] != a {
		t.Errorf("walk with spare at A = %v..., want B,C,A prefix", visited[:3])
	}
}

func TestWalkDualPathHoleAtSharedGrid(t *testing.T) {
	topo := buildOf(t, 5, 5)
	a, b, _, d, _ := topo.ABCD()
	origin := grid.C(0, 0)

	// No spares: cascade goes backward along the shared part to D, then
	// unconditionally through A, then C, then back along the shared part.
	visited := collectWalk(topo, origin, nil)
	seen := map[grid.Coord]bool{}
	for _, g := range visited {
		seen[g] = true
	}
	if !seen[d] || !seen[a] {
		t.Error("walk should pass through D and A")
	}
	if seen[b] {
		t.Error("walk should skip B when B has no spares")
	}
	if seen[origin] {
		t.Error("walk must not revisit the hole")
	}
	// Everything except B and the hole.
	if len(visited) != topo.System().NumCells()-2 {
		t.Errorf("walk covers %d grids, want %d", len(visited), topo.System().NumCells()-2)
	}

	// Spare at B only: from D the walk detours to B.
	probeB := func(g grid.Coord) bool { return g == b }
	visited = collectWalk(topo, origin, probeB)
	var afterD grid.Coord
	for i, g := range visited {
		if g == d && i+1 < len(visited) {
			afterD = visited[i+1]
		}
	}
	if afterD != b {
		t.Errorf("after D the walk went to %v, want B=%v", afterD, b)
	}
}

func TestWalkDualPathHoleAtC(t *testing.T) {
	topo := buildOf(t, 5, 5)
	a, b, c, _, _ := topo.ABCD()
	visited := collectWalk(topo, c, nil)
	seen := map[grid.Coord]bool{}
	for _, g := range visited {
		if g == c {
			t.Fatal("walk revisits hole C")
		}
		seen[g] = true
	}
	if !seen[a] {
		t.Error("walk for hole at C should cascade through A")
	}
	if seen[b] {
		t.Error("walk for hole at C should skip spare-less B")
	}
	// Terminates when the next grid would be the hole C itself: A's
	// predecessor in path two is C, so A is the last grid.
	if visited[len(visited)-1] != a {
		t.Errorf("last grid = %v, want A=%v", visited[len(visited)-1], a)
	}
}

func TestWalkDualPathSweepCoverage(t *testing.T) {
	// For every odd x odd size and every hole, the no-spare walk visits
	// n*m-1 grids (holes at A or B) or n*m-2 grids (all other holes,
	// where exactly one of A/B is skipped), with no repeats.
	for _, dims := range [][2]int{{3, 3}, {5, 5}, {3, 7}, {9, 5}} {
		topo := buildOf(t, dims[0], dims[1])
		a, b, _, _, _ := topo.ABCD()
		for _, origin := range topo.System().AllCoords() {
			visited := collectWalk(topo, origin, nil)
			want := topo.System().NumCells() - 2
			if origin == a || origin == b {
				want = topo.System().NumCells() - 1
			}
			if len(visited) != want {
				t.Fatalf("%dx%d hole %v: walk covers %d, want %d",
					dims[0], dims[1], origin, len(visited), want)
			}
			seen := map[grid.Coord]bool{origin: true}
			for _, g := range visited {
				if seen[g] {
					t.Fatalf("%dx%d hole %v: walk revisits %v", dims[0], dims[1], origin, g)
				}
				seen[g] = true
			}
		}
	}
}

func TestWalkStepsAreGridNeighborsOrProtocolHops(t *testing.T) {
	// Each consecutive pair of walk grids must be 1-hop grid neighbors:
	// the notification travels between adjacent grids and the moving node
	// crosses a single cell boundary.
	for _, dims := range [][2]int{{4, 5}, {5, 5}, {3, 3}, {16, 16}} {
		topo := buildOf(t, dims[0], dims[1])
		for _, origin := range topo.System().AllCoords() {
			w := topo.NewWalk(origin)
			if !w.Current().IsNeighbor(origin) {
				t.Fatalf("%dx%d: initiator %v not adjacent to hole %v",
					dims[0], dims[1], w.Current(), origin)
			}
			prev := w.Current()
			for w.Advance(nil) {
				if !prev.IsNeighbor(w.Current()) {
					t.Fatalf("%dx%d hole %v: walk step %v -> %v not adjacent",
						dims[0], dims[1], origin, prev, w.Current())
				}
				prev = w.Current()
			}
		}
	}
}

func TestWalkHopsAccounting(t *testing.T) {
	topo := buildOf(t, 4, 5)
	w := topo.NewWalk(grid.C(0, 0))
	if w.Hops() != 1 {
		t.Errorf("initial Hops = %d, want 1", w.Hops())
	}
	w.Advance(nil)
	if w.Hops() != 2 {
		t.Errorf("after one Advance Hops = %d, want 2", w.Hops())
	}
	for w.Advance(nil) {
	}
	if !w.Exhausted() {
		t.Error("walk should be exhausted")
	}
	if w.Advance(nil) {
		t.Error("Advance after exhaustion should return false")
	}
	if w.Origin() != grid.C(0, 0) {
		t.Errorf("Origin = %v", w.Origin())
	}
}
