package plotdata

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func table(t *testing.T) *Table {
	t.Helper()
	tb, err := NewTable("Fig X", "N", "moves",
		[]float64{10, 20, 30},
		Series{Label: "SR", Y: []float64{5, 3, 2}},
		Series{Label: "AR", Y: []float64{9, 7, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewTableValidation(t *testing.T) {
	_, err := NewTable("bad", "x", "y", []float64{1, 2},
		Series{Label: "s", Y: []float64{1}})
	if err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := table(t).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "N,SR,AR\n10,5,9\n20,3,7\n30,2,6\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestWriteGnuplot(t *testing.T) {
	var b strings.Builder
	if err := table(t).WriteGnuplot(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "# Fig X\n# N\tSR\tAR\n") {
		t.Errorf("header wrong:\n%s", got)
	}
	if !strings.Contains(got, "10\t5\t9\n") {
		t.Errorf("rows wrong:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 {
		t.Errorf("line count = %d", len(lines))
	}
}

func TestSaveAll(t *testing.T) {
	dir := t.TempDir()
	paths, err := table(t).SaveAll(filepath.Join(dir, "out"), "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestASCII(t *testing.T) {
	chart := table(t).ASCII(40, 10)
	if !strings.Contains(chart, "Fig X") {
		t.Error("missing title")
	}
	if !strings.Contains(chart, "*=SR") || !strings.Contains(chart, "+=AR") {
		t.Error("missing legend")
	}
	if !strings.Contains(chart, "*") || !strings.Contains(chart, "+") {
		t.Error("missing data marks")
	}
	// Degenerate inputs must not panic.
	empty, err := NewTable("empty", "x", "y", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.ASCII(2, 2), "no data") {
		t.Error("empty table should render a placeholder")
	}
	flat, err := NewTable("flat", "x", "y", []float64{1, 2},
		Series{Label: "s", Y: []float64{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if flat.ASCII(20, 6) == "" {
		t.Error("flat series should render")
	}
}

func TestIntsToFloats(t *testing.T) {
	got := IntsToFloats([]int{1, 2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("IntsToFloats = %v", got)
	}
}
