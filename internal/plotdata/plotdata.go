// Package plotdata emits experiment series as CSV / gnuplot-ready data
// files and renders quick ASCII charts for terminal inspection. The weak
// plotting ecosystem of a stdlib-only build is bridged by writing the
// exact rows each paper figure plots; any external tool can render them.
package plotdata

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Table is a shared-X collection of named series, one per figure curve.
type Table struct {
	// Title names the figure (used in headers and chart captions).
	Title string
	// XLabel and YLabel name the axes.
	XLabel string
	YLabel string
	// X holds the shared abscissae.
	X []float64
	// Series holds the curves; every Y slice must match len(X).
	Series []Series
}

// Series is one named curve.
type Series struct {
	Label string
	Y     []float64
}

// NewTable builds a table and validates series lengths.
func NewTable(title, xlabel, ylabel string, x []float64, series ...Series) (*Table, error) {
	for _, s := range series {
		if len(s.Y) != len(x) {
			return nil, fmt.Errorf("plotdata: series %q has %d points, x has %d",
				s.Label, len(s.Y), len(x))
		}
	}
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel, X: x, Series: series}, nil
}

// WriteCSV writes the table as a comma-separated file with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	for _, s := range t.Series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := range t.X {
		row := make([]string, 0, len(t.Series)+1)
		row = append(row, strconv.FormatFloat(t.X[i], 'g', -1, 64))
		for _, s := range t.Series {
			row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteGnuplot writes the table as a whitespace-separated .dat file with a
// commented header, the format gnuplot's `plot "file" using 1:2` expects.
func (t *Table) WriteGnuplot(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n# %s", t.Title, t.XLabel); err != nil {
		return err
	}
	for _, s := range t.Series {
		if _, err := fmt.Fprintf(w, "\t%s", s.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := range t.X {
		if _, err := fmt.Fprintf(w, "%g", t.X[i]); err != nil {
			return err
		}
		for _, s := range t.Series {
			if _, err := fmt.Fprintf(w, "\t%g", s.Y[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// SaveAll writes <name>.csv and <name>.dat under dir, creating dir when
// needed, and returns the written paths.
func (t *Table) SaveAll(dir, name string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plotdata: %w", err)
	}
	var paths []string
	csvPath := filepath.Join(dir, name+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return nil, fmt.Errorf("plotdata: %w", err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	paths = append(paths, csvPath)

	datPath := filepath.Join(dir, name+".dat")
	f, err = os.Create(datPath)
	if err != nil {
		return nil, fmt.Errorf("plotdata: %w", err)
	}
	if err := t.WriteGnuplot(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return append(paths, datPath), nil
}

// markers are assigned to series in order for ASCII charts.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCII renders the table as a fixed-size terminal chart with linear axes.
func (t *Table) ASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := rangeOf(t.X)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		lo, hi := rangeOf(s.Y)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if len(t.X) == 0 || math.IsInf(ymin, 1) {
		return t.Title + " (no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.Series {
		mark := markers[si%len(markers)]
		for i := range t.X {
			cx := int((t.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			cells[row][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	legend := make([]string, len(t.Series))
	for i, s := range t.Series {
		legend[i] = fmt.Sprintf("%c=%s", markers[i%len(markers)], s.Label)
	}
	fmt.Fprintf(&b, "[%s]  y: %.4g..%.4g\n", strings.Join(legend, " "), ymin, ymax)
	for _, row := range cells {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " %s: %.4g..%.4g\n", t.XLabel, xmin, xmax)
	return b.String()
}

func rangeOf(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// IntsToFloats converts an int slice for use as table axes.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
