package localview

import (
	"testing"
	"testing/quick"

	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// newNet builds a test network; it panics on bad dimensions, which only
// indicates a broken test, so it is usable from property functions too.
func newNet(cols, rows int, cell float64) *network.Network {
	sys, err := grid.New(cols, rows, cell, geom.Pt(0, 0))
	if err != nil {
		panic(err)
	}
	return network.New(sys, node.EnergyModel{})
}

func TestLossFreeConvergesInOneRound(t *testing.T) {
	w := newNet(4, 4, 2)
	if err := deploy.PerGrid(w, 3, randx.New(1)); err != nil {
		t.Fatal(err)
	}
	e := New(w, Config{})
	rounds, ok := e.Run(10)
	if !ok {
		t.Fatal("loss-free election should converge")
	}
	if rounds > 1 {
		t.Errorf("rounds = %d, want 1 (everyone hears everyone)", rounds)
	}
	if bad := e.Verify(); len(bad) != 0 {
		t.Errorf("verify: %v", bad)
	}
}

func TestWinnerMatchesNetworkElection(t *testing.T) {
	// The network's own ElectHeads picks the center-closest node; the
	// loss-free protocol must agree cell by cell.
	w := newNet(5, 5, 2)
	if err := deploy.Uniform(w, 80, randx.New(2)); err != nil {
		t.Fatal(err)
	}
	w.ElectHeads()
	e := New(w, Config{})
	if _, ok := e.Run(10); !ok {
		t.Fatal("no convergence")
	}
	for _, c := range w.System().AllCoords() {
		if w.IsVacant(c) {
			if got := e.Winner(c); got != node.Invalid {
				t.Errorf("empty cell %v has winner %v", c, got)
			}
			continue
		}
		if got, want := e.Winner(c), w.HeadOf(c); got != want {
			t.Errorf("cell %v: protocol winner %v, network head %v", c, got, want)
		}
	}
}

func TestConvergesUnderMessageLoss(t *testing.T) {
	for _, loss := range []float64{0.1, 0.3, 0.5} {
		w := newNet(4, 4, 2)
		if err := deploy.PerGrid(w, 4, randx.New(3)); err != nil {
			t.Fatal(err)
		}
		e := New(w, Config{RNG: randx.New(4), LossProb: loss})
		rounds, ok := e.Run(500)
		if !ok {
			t.Fatalf("loss=%v: no convergence in 500 rounds", loss)
		}
		if bad := e.Verify(); len(bad) != 0 {
			t.Errorf("loss=%v: %v", loss, bad)
		}
		t.Logf("loss=%v converged in %d rounds", loss, rounds)
	}
}

func TestSingleNodeCells(t *testing.T) {
	w := newNet(3, 3, 1)
	if err := deploy.PerGrid(w, 1, randx.New(5)); err != nil {
		t.Fatal(err)
	}
	e := New(w, Config{})
	if _, ok := e.Run(5); !ok {
		t.Fatal("single-node cells must converge")
	}
	for _, c := range w.System().AllCoords() {
		if e.Winner(c) == node.Invalid {
			t.Errorf("cell %v has no winner", c)
		}
	}
}

func TestEmptyNetworkConvergesTrivially(t *testing.T) {
	w := newNet(3, 3, 1)
	e := New(w, Config{})
	rounds, ok := e.Run(5)
	if !ok || rounds != 0 {
		t.Errorf("empty election: rounds=%d ok=%v", rounds, ok)
	}
}

func TestPhaseAccounting(t *testing.T) {
	w := newNet(1, 1, 2)
	a, err := w.AddNodeAt(geom.Pt(1, 1)) // center: the winner
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddNodeAt(geom.Pt(0.1, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	e := New(w, Config{})
	if e.PhaseOf(a) != Candidate || e.PhaseOf(b) != Candidate {
		t.Error("all nodes start as candidates")
	}
	e.Step()
	if e.PhaseOf(a) != Claimant {
		t.Errorf("center node phase = %v, want claimant", e.PhaseOf(a))
	}
	if e.PhaseOf(b) != Yielded {
		t.Errorf("far node phase = %v, want yielded", e.PhaseOf(b))
	}
	if e.PhaseOf(node.ID(99)) != Yielded {
		t.Error("unknown id should read yielded")
	}
	if Candidate.String() == "" || Claimant.String() == "" || Yielded.String() == "" ||
		Phase(9).String() == "" {
		t.Error("phase strings")
	}
}

func TestBestNodeNeverDemotesProperty(t *testing.T) {
	// Liveness core: under any loss rate and any population, the
	// best-ranked node of every occupied cell ends as the unique
	// claimant.
	f := func(seed int64, lossU, popU uint8) bool {
		loss := float64(lossU%80) / 100
		pop := int(popU)%6 + 1
		w := newNet(3, 3, 2)
		if err := deploy.PerGrid(w, pop, randx.New(seed)); err != nil {
			return false
		}
		e := New(w, Config{RNG: randx.New(seed + 1), LossProb: loss})
		_, ok := e.Run(2000)
		if !ok {
			return false
		}
		return len(e.Verify()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
