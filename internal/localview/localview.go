// Package localview implements the localized head-election protocol the
// paper's system model presupposes (Section 2): using only 1-hop
// information, the enabled nodes of each grid cell elect exactly one grid
// head among themselves. Within a cell every pair of nodes is within
// communication range (the cell diagonal sqrt(2)*r is below R=sqrt(5)*r),
// so a cell-local broadcast protocol suffices.
//
// The protocol is a ranked back-off election in the style of GAF's leader
// election:
//
//  1. Every node starts as a candidate with rank (distance to the cell
//     center, node id) — lower is better.
//  2. Each round, candidates broadcast an announcement within their cell.
//     A candidate that hears a better-ranked candidate yields and becomes
//     a spare.
//  3. A candidate that hears no better rank for one full round claims the
//     head role. Message loss can create duplicate claimants; claimants
//     keep announcing, and a claimant hearing a better claim demotes
//     itself, so the protocol converges to a single head per cell with
//     probability 1.
//
// The election is simulated against a read-only view of the network; it
// never mutates network state. Verify reconciles the outcome with the
// network's own head registry.
package localview

import (
	"fmt"

	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Phase is a node's protocol state.
type Phase int

// Protocol phases. Enums start at 1 so the zero value is invalid.
const (
	// Candidate nodes are still competing.
	Candidate Phase = iota + 1
	// Claimant nodes have announced themselves head.
	Claimant
	// Yielded nodes have deferred to a better-ranked node.
	Yielded
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Candidate:
		return "candidate"
	case Claimant:
		return "claimant"
	case Yielded:
		return "yielded"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Config parameterizes the election.
type Config struct {
	// RNG drives message-loss sampling; required when LossProb > 0.
	RNG *randx.Rand
	// LossProb is the probability that any single intra-cell broadcast is
	// lost by a particular receiver.
	LossProb float64
}

// rank orders candidates: closer to the cell center wins; ties break on
// the lower id.
type rank struct {
	dist2 float64
	id    node.ID
}

func (r rank) better(o rank) bool {
	if r.dist2 != o.dist2 {
		return r.dist2 < o.dist2
	}
	return r.id < o.id
}

// Election is a running instance of the protocol over a network snapshot.
type Election struct {
	net *network.Network
	cfg Config

	// members lists the participating nodes of each cell index.
	members [][]node.ID
	ranks   map[node.ID]rank
	phase   map[node.ID]Phase
	rounds  int
}

// New snapshots the enabled nodes of the network and prepares the
// election. Nodes added or disabled afterwards are not seen.
func New(net *network.Network, cfg Config) *Election {
	if cfg.RNG == nil {
		cfg.RNG = randx.New(1)
	}
	sys := net.System()
	e := &Election{
		net:     net,
		cfg:     cfg,
		members: make([][]node.ID, sys.NumCells()),
		ranks:   make(map[node.ID]rank),
		phase:   make(map[node.ID]Phase),
	}
	for id := node.ID(0); int(id) < net.NumNodes(); id++ {
		nd := net.Node(id)
		if !nd.Valid() || !nd.Enabled() {
			continue
		}
		c, ok := sys.CoordOf(nd.Location())
		if !ok {
			continue
		}
		idx := sys.Index(c)
		e.members[idx] = append(e.members[idx], id)
		e.ranks[id] = rank{dist2: nd.Location().Dist2(sys.Center(c)), id: id}
		e.phase[id] = Candidate
	}
	return e
}

// Rounds returns the number of protocol rounds executed.
func (e *Election) Rounds() int { return e.rounds }

// PhaseOf returns a node's current phase (Yielded for unknown ids).
func (e *Election) PhaseOf(id node.ID) Phase {
	if p, ok := e.phase[id]; ok {
		return p
	}
	return Yielded
}

// Step executes one protocol round: per cell, every non-yielded node
// broadcasts, each receiver independently loses the message with
// LossProb, and nodes update their phase from what they heard.
func (e *Election) Step() {
	e.rounds++
	for _, cell := range e.members {
		if len(cell) == 0 {
			continue
		}
		// Collect this round's broadcasts.
		var speakers []node.ID
		for _, id := range cell {
			if e.phase[id] != Yielded {
				speakers = append(speakers, id)
			}
		}
		// Deliver per receiver with independent loss, then update.
		type update struct {
			id    node.ID
			phase Phase
		}
		var updates []update
		for _, id := range cell {
			if e.phase[id] == Yielded {
				continue
			}
			heardBetter := false
			heardBetterClaim := false
			for _, sp := range speakers {
				if sp == id {
					continue
				}
				if e.cfg.LossProb > 0 && e.cfg.RNG.Bool(e.cfg.LossProb) {
					continue // this receiver missed the broadcast
				}
				if e.ranks[sp].better(e.ranks[id]) {
					heardBetter = true
					if e.phase[sp] == Claimant {
						heardBetterClaim = true
					}
				}
			}
			switch e.phase[id] {
			case Candidate:
				if heardBetter {
					updates = append(updates, update{id, Yielded})
				} else {
					updates = append(updates, update{id, Claimant})
				}
			case Claimant:
				if heardBetterClaim || heardBetter {
					// A better node is still alive: demote.
					updates = append(updates, update{id, Yielded})
				}
			}
		}
		for _, u := range updates {
			e.phase[u.id] = u.phase
		}
	}
}

// Converged reports whether every occupied cell has exactly one claimant
// and no remaining candidates.
func (e *Election) Converged() bool {
	for _, cell := range e.members {
		if len(cell) == 0 {
			continue
		}
		claimants := 0
		for _, id := range cell {
			switch e.phase[id] {
			case Candidate:
				return false
			case Claimant:
				claimants++
			}
		}
		if claimants != 1 {
			return false
		}
	}
	return true
}

// Run steps the protocol until convergence or maxRounds, returning the
// rounds used and whether it converged.
func (e *Election) Run(maxRounds int) (int, bool) {
	for r := 0; r < maxRounds; r++ {
		if e.Converged() {
			return e.rounds, true
		}
		e.Step()
	}
	return e.rounds, e.Converged()
}

// Winner returns the elected head of cell c, or node.Invalid when the
// cell is empty or not yet converged to a single claimant.
func (e *Election) Winner(c grid.Coord) node.ID {
	idx := e.net.System().Index(c)
	winner := node.Invalid
	for _, id := range e.members[idx] {
		if e.phase[id] == Claimant {
			if winner != node.Invalid {
				return node.Invalid // duplicate claimants
			}
			winner = id
		}
	}
	return winner
}

// Verify cross-checks a converged election against the network's own head
// registry: every occupied cell must have exactly one winner, and with a
// loss-free protocol the winner matches the network's center-closest
// choice. It returns violations (empty when consistent).
func (e *Election) Verify() []string {
	var bad []string
	sys := e.net.System()
	for idx, cell := range e.members {
		c := sys.CoordAt(idx)
		if len(cell) == 0 {
			continue
		}
		w := e.Winner(c)
		if w == node.Invalid {
			bad = append(bad, fmt.Sprintf("cell %v: no unique winner", c))
			continue
		}
		best := cell[0]
		for _, id := range cell[1:] {
			if e.ranks[id].better(e.ranks[best]) {
				best = id
			}
		}
		if e.cfg.LossProb == 0 && w != best {
			bad = append(bad, fmt.Sprintf("cell %v: winner %d is not the best-ranked %d", c, w, best))
		}
	}
	return bad
}
