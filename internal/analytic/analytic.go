// Package analytic implements the paper's analytical cost model for a
// single snake-like replacement process (Theorem 2 and Corollary 2) and
// the moving-distance estimate of Section 4.
//
// Model: a hole turns the directed Hamilton cycle into a directed Hamilton
// path of length L hops; N spare nodes are distributed uniformly and
// independently over the L grids of that path. The replacement cascades
// backward from the hole and converges at the first grid holding a spare.
// P(i) is the probability that this happens at hop i, so the expected
// number of node movements is M = sum_i i*P(i): i-1 cascading head moves
// plus the final spare move.
package analytic

import (
	"fmt"
	"math"
)

// MeanHopDistanceFactor is the paper's estimate of the average distance of
// one movement between neighboring grids, as a multiple of the grid size
// r: each mover travels from its current position to a random point in the
// central area of the target grid, averaging 1.08*r.
const MeanHopDistanceFactor = 1.08

// MinHopDistanceFactor is the minimum per-movement distance, r/4: from the
// shared cell edge to the nearest face of the target's central area.
const MinHopDistanceFactor = 0.25

// MaxHopDistanceFactor is the maximum per-movement distance,
// sqrt(58)/4 * r: from the far corner of the source cell to the far corner
// of the target's central area.
var MaxHopDistanceFactor = math.Sqrt(58) / 4

// P returns the probability that a replacement process converges at hop i
// of a directed Hamilton path of length L when N spare nodes are placed
// uniformly at random over the path's L grids (Theorem 2, equation 1).
//
// The formula telescopes: P(i) = ((L-i+1)/L)^N - ((L-i)/L)^N for i < L and
// P(L) = (1/L)^N, so sum_{i=1..L} P(i) = 1 for every N >= 1.
//
// P panics on out-of-range arguments; use Moves for validated evaluation.
func P(i, l, n int) float64 {
	if l <= 1 || i < 1 || i > l || n < 0 {
		panic(fmt.Sprintf("analytic: P(%d, %d, %d) out of domain", i, l, n))
	}
	lf, nf := float64(l), float64(n)
	switch i {
	case 1:
		return 1 - math.Pow((lf-1)/lf, nf)
	case l:
		// prod_{k=1..L-1} ((L-k)/(L-k+1))^N telescopes to (1/L)^N.
		return math.Pow(1/lf, nf)
	default:
		head := 1 - math.Pow((lf-float64(i))/(lf-float64(i)+1), nf)
		// prod_{k=1..i-1} ((L-k)/(L-k+1))^N telescopes to ((L-i+1)/L)^N.
		tail := math.Pow((lf-float64(i)+1)/lf, nf)
		return head * tail
	}
}

// Moves returns M = sum_{i=1..L} i*P(i), the expected number of node
// movements for one converged replacement process along a Hamilton path of
// length L with N spares (Theorem 2). It returns an error when L <= 1 or
// N < 0, the domain excluded by the theorem.
func Moves(n, l int) (float64, error) {
	if l <= 1 {
		return 0, fmt.Errorf("analytic: path length L=%d must exceed 1", l)
	}
	if n < 0 {
		return 0, fmt.Errorf("analytic: spare count N=%d must be non-negative", n)
	}
	if n == 0 {
		// No spares: the process cannot converge; the theorem's sum
		// degenerates (every grid fails), so report the full path length
		// as the exhaustive walk cost.
		return float64(l), nil
	}
	m := 0.0
	for i := 1; i <= l; i++ {
		m += float64(i) * P(i, l, n)
	}
	return m, nil
}

// MovesDualPath returns the Corollary 2 estimate for a grid system of
// cols x rows cells threaded by the dual-path Hamilton cycle:
// M ~= M(cols*rows - 2).
func MovesDualPath(n, cols, rows int) (float64, error) {
	return Moves(n, cols*rows-2)
}

// Distance returns the estimated total moving distance of one converged
// replacement: the expected movement count times the mean per-hop distance
// 1.08*r (Section 4, Figure 5).
func Distance(n, l int, r float64) (float64, error) {
	m, err := Moves(n, l)
	if err != nil {
		return 0, err
	}
	return m * MeanHopDistanceFactor * r, nil
}

// HopDistanceBounds returns the minimum and maximum distance of a single
// movement between neighboring grids of size r.
func HopDistanceBounds(r float64) (min, max float64) {
	return MinHopDistanceFactor * r, MaxHopDistanceFactor * r
}

// Series evaluates Moves over a sweep of spare counts, returning one value
// per element of ns. It is the generator behind Figure 3.
func Series(ns []int, l int) ([]float64, error) {
	out := make([]float64, len(ns))
	for i, n := range ns {
		m, err := Moves(n, l)
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// DistanceSeries evaluates Distance over a sweep of spare counts. It is
// the generator behind Figure 5.
func DistanceSeries(ns []int, l int, r float64) ([]float64, error) {
	out := make([]float64, len(ns))
	for i, n := range ns {
		d, err := Distance(n, l, r)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// SpareDensityForTargetMoves returns the smallest spare count N at which
// the expected movement count drops to at most target on a path of length
// L. It reproduces the paper's observation that a density of about 1.68
// enabled nodes per grid holds M at 2 in the 16x16 system.
func SpareDensityForTargetMoves(target float64, l int) (int, error) {
	if target < 1 {
		return 0, fmt.Errorf("analytic: target %v below 1 movement is unattainable", target)
	}
	lo, hi := 1, 1
	for {
		m, err := Moves(hi, l)
		if err != nil {
			return 0, err
		}
		if m <= target {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<26 {
			return 0, fmt.Errorf("analytic: target %v not reached below N=%d", target, hi)
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		m, err := Moves(mid, l)
		if err != nil {
			return 0, err
		}
		if m <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}
