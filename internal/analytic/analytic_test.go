package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPSumsToOne(t *testing.T) {
	for _, l := range []int{2, 5, 19, 255} {
		for _, n := range []int{1, 2, 10, 100, 1000} {
			sum := 0.0
			for i := 1; i <= l; i++ {
				p := P(i, l, n)
				if p < 0 || p > 1 {
					t.Fatalf("P(%d, %d, %d) = %v out of [0,1]", i, l, n, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("sum P(i, %d, %d) = %v, want 1", l, n, sum)
			}
		}
	}
}

func TestPTelescopesProperty(t *testing.T) {
	// P(i) must equal ((L-i+1)/L)^N - ((L-i)/L)^N, the closed form the
	// paper's product expression telescopes to.
	f := func(li, ni, ii uint8) bool {
		l := int(li%60) + 2
		n := int(ni%80) + 1
		i := int(ii)%l + 1
		want := math.Pow(float64(l-i+1)/float64(l), float64(n)) -
			math.Pow(float64(l-i)/float64(l), float64(n))
		return math.Abs(P(i, l, n)-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPanicsOutOfDomain(t *testing.T) {
	for _, args := range [][3]int{{0, 5, 1}, {6, 5, 1}, {1, 1, 1}, {1, 5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("P(%v) should panic", args)
				}
			}()
			P(args[0], args[1], args[2])
		}()
	}
}

func TestMovesPaperAnchor(t *testing.T) {
	// The paper: 12 spares in the 4x5 grid system (L=19) give 2.0139
	// movements on average.
	m, err := Moves(12, 19)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-2.0139) > 5e-4 {
		t.Errorf("Moves(12, 19) = %v, want 2.0139", m)
	}
}

func TestMovesPaperDensityObservation(t *testing.T) {
	// The paper: with enabled-node density >= 1.68 per grid in the 16x16
	// system (256 heads + N spares, so N >= (1.68-1)*256 ~ 174), the
	// movement count stays around 2.
	n := 174 // (1.68 - 1) * 256 rounded
	m, err := Moves(n, 255)
	if err != nil {
		t.Fatal(err)
	}
	if m > 2.05 {
		t.Errorf("Moves(%d, 255) = %v, want <= ~2", n, m)
	}
}

func TestMovesMonotoneInN(t *testing.T) {
	for _, l := range []int{19, 255} {
		prev := math.Inf(1)
		for n := 1; n <= 1400; n += 7 {
			m, err := Moves(n, l)
			if err != nil {
				t.Fatal(err)
			}
			if m > prev+1e-9 {
				t.Fatalf("Moves not non-increasing at N=%d, L=%d: %v > %v", n, l, m, prev)
			}
			prev = m
		}
	}
}

func TestMovesBounds(t *testing.T) {
	f := func(ni, li uint16) bool {
		n := int(ni%2000) + 1
		l := int(li%300) + 2
		m, err := Moves(n, l)
		if err != nil {
			return false
		}
		return m >= 1-1e-9 && m <= float64(l)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovesLimits(t *testing.T) {
	// N -> infinity: the first grid almost surely has a spare, M -> 1.
	m, err := Moves(1_000_000, 19)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 1e-3 {
		t.Errorf("Moves(1e6, 19) = %v, want ~1", m)
	}
	// N = 1: single spare uniform over L grids, M = (L+1)/2.
	m, err = Moves(1, 19)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-10) > 1e-9 {
		t.Errorf("Moves(1, 19) = %v, want 10", m)
	}
}

func TestMovesZeroSpares(t *testing.T) {
	m, err := Moves(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	if m != 19 {
		t.Errorf("Moves(0, 19) = %v, want full path length 19", m)
	}
}

func TestMovesErrors(t *testing.T) {
	if _, err := Moves(5, 1); err == nil {
		t.Error("L=1 should fail")
	}
	if _, err := Moves(-1, 19); err == nil {
		t.Error("negative N should fail")
	}
}

func TestMovesDualPath(t *testing.T) {
	// Corollary 2: M ~= M(m*n-2).
	got, err := MovesDualPath(12, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Moves(12, 23)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("MovesDualPath = %v, want %v", got, want)
	}
}

func TestDistance(t *testing.T) {
	// Figure 5 setting: r = 10, so distance = 10.8 * M.
	m, err := Moves(12, 19)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(12, 19, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-m*10.8) > 1e-9 {
		t.Errorf("Distance = %v, want %v", d, m*10.8)
	}
	if _, err := Distance(1, 1, 10); err == nil {
		t.Error("Distance with L=1 should fail")
	}
}

func TestHopDistanceBounds(t *testing.T) {
	min, max := HopDistanceBounds(10)
	if math.Abs(min-2.5) > 1e-12 {
		t.Errorf("min = %v, want 2.5", min)
	}
	if math.Abs(max-math.Sqrt(58)/4*10) > 1e-12 {
		t.Errorf("max = %v, want sqrt(58)/4*10", max)
	}
	// The 1.08 mean factor must sit inside the bounds.
	if MeanHopDistanceFactor < MinHopDistanceFactor || MeanHopDistanceFactor > MaxHopDistanceFactor {
		t.Error("mean hop factor outside [min, max]")
	}
}

func TestSeries(t *testing.T) {
	ns := []int{1, 10, 100}
	s, err := Series(ns, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			t.Errorf("series not decreasing: %v", s)
		}
	}
	if _, err := Series(ns, 0); err == nil {
		t.Error("invalid L should fail")
	}

	d, err := DistanceSeries(ns, 19, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if math.Abs(d[i]-s[i]*10.8) > 1e-9 {
			t.Errorf("distance series mismatch at %d: %v vs %v", i, d[i], s[i]*10.8)
		}
	}
	if _, err := DistanceSeries(ns, 0, 10); err == nil {
		t.Error("invalid L should fail")
	}
}

func TestSpareDensityForTargetMoves(t *testing.T) {
	n, err := SpareDensityForTargetMoves(2, 255)
	if err != nil {
		t.Fatal(err)
	}
	// Verify minimality: Moves(n) <= 2 < Moves(n-1).
	m, err := Moves(n, 255)
	if err != nil {
		t.Fatal(err)
	}
	if m > 2 {
		t.Errorf("Moves(%d, 255) = %v > 2", n, m)
	}
	if n > 1 {
		mPrev, err := Moves(n-1, 255)
		if err != nil {
			t.Fatal(err)
		}
		if mPrev <= 2 {
			t.Errorf("N=%d not minimal: Moves(N-1) = %v", n, mPrev)
		}
	}
	// The paper's observation: total density ~1.68 per grid, i.e.
	// N ~ 0.68*256 ~ 174 spares. Accept the ballpark.
	if n < 100 || n > 260 {
		t.Errorf("threshold N = %d, expected within [100, 260] (paper: ~174)", n)
	}
	if _, err := SpareDensityForTargetMoves(0.5, 255); err == nil {
		t.Error("target below 1 should fail")
	}
}
