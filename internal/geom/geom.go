// Package geom provides the 2-D geometry primitives used throughout the
// sensor-network simulator: points, vectors, rectangles, and uniform
// sampling helpers.
//
// The surveillance field is modelled as a subset of the Euclidean plane
// with the X axis growing east and the Y axis growing north, matching the
// grid-coordinate convention of the paper (grid (x, y) with 0 <= x <= n-1,
// 0 <= y <= m-1).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. It doubles as a displacement vector;
// the Add/Sub/Scale methods treat it as such.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{X: p.X * s, Y: p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in hot paths.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// AlmostEq reports whether p and q agree within eps in both coordinates.
func (p Point) AlmostEq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the south-west corner and Max
// the north-east corner; a valid Rect has Min.X <= Max.X and Min.Y <= Max.Y.
type Rect struct {
	Min Point
	Max Point
}

// RectFromSize builds the rectangle with south-west corner at min spanning
// w horizontally and h vertically.
func RectFromSize(min Point, w, h float64) Rect {
	return Rect{Min: min, Max: Point{X: min.X + w, Y: min.Y + h}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r. The south and west edges are
// inclusive and the north and east edges exclusive, so adjacent cells of a
// partition claim each point exactly once.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// ContainsClosed reports whether p lies inside r with all edges inclusive.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Inset shrinks r by d on every side. An inset larger than half the extent
// collapses the rectangle onto its center.
func (r Rect) Inset(d float64) Rect {
	out := Rect{
		Min: Point{X: r.Min.X + d, Y: r.Min.Y + d},
		Max: Point{X: r.Max.X - d, Y: r.Max.Y - d},
	}
	if out.Min.X > out.Max.X {
		c := (r.Min.X + r.Max.X) / 2
		out.Min.X, out.Max.X = c, c
	}
	if out.Min.Y > out.Max.Y {
		c := (r.Min.Y + r.Max.Y) / 2
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// Intersects reports whether r and s share interior area.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X < s.Max.X && s.Min.X < r.Max.X &&
		r.Min.Y < s.Max.Y && s.Min.Y < r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, s.Min.X), Y: math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, s.Max.X), Y: math.Max(r.Max.Y, s.Max.Y)},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v - %v]", r.Min, r.Max) }

// Circle is a disc with the given center and radius, used for the sensing
// model: a node senses every point within its sensing range.
type Circle struct {
	Center Point
	Radius float64
}

// Contains reports whether p lies within the closed disc c.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= c.Radius*c.Radius
}

// IntersectsRect reports whether the disc c and rectangle r overlap.
func (c Circle) IntersectsRect(r Rect) bool {
	return c.Center.Dist2(r.Clamp(c.Center)) <= c.Radius*c.Radius
}

// CoversRect reports whether the disc c fully covers the rectangle r, which
// holds exactly when all four corners lie inside the disc.
func (c Circle) CoversRect(r Rect) bool {
	corners := [4]Point{
		r.Min,
		{X: r.Max.X, Y: r.Min.Y},
		{X: r.Min.X, Y: r.Max.Y},
		r.Max,
	}
	for _, p := range corners {
		if !c.Contains(p) {
			return false
		}
	}
	return true
}
