package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, -2)

	if got := p.Add(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Add = %v, want (4, 2)", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Sub = %v, want (2, 6)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(6, 8)) {
		t.Errorf("Scale = %v, want (6, 8)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 1), Pt(1, 1), 0},
		{"axis aligned", Pt(0, 0), Pt(3, 0), 3},
		{"pythagorean", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-12 {
				t.Errorf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		// math.Hypot is exactly symmetric (also for Inf results).
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); !got.Eq(p) {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); !got.Eq(q) {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v, want (5, 10)", got)
	}
}

func TestAlmostEq(t *testing.T) {
	if !Pt(1, 1).AlmostEq(Pt(1+1e-10, 1-1e-10), 1e-9) {
		t.Error("AlmostEq should accept tiny perturbations")
	}
	if Pt(1, 1).AlmostEq(Pt(1.1, 1), 1e-9) {
		t.Error("AlmostEq should reject large perturbations")
	}
}

func TestRectBasics(t *testing.T) {
	r := RectFromSize(Pt(1, 2), 4, 6)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 6 {
		t.Errorf("Height = %v, want 6", got)
	}
	if got := r.Area(); got != 24 {
		t.Errorf("Area = %v, want 24", got)
	}
	if got := r.Center(); !got.Eq(Pt(3, 5)) {
		t.Errorf("Center = %v, want (3, 5)", got)
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := RectFromSize(Pt(0, 0), 1, 1)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},     // south-west corner inclusive
		{Pt(0.5, 0.5), true}, // interior
		{Pt(1, 0.5), false},  // east edge exclusive
		{Pt(0.5, 1), false},  // north edge exclusive
		{Pt(-0.1, 0.5), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !r.ContainsClosed(Pt(1, 1)) {
		t.Error("ContainsClosed should include the north-east corner")
	}
}

func TestRectPartitionClaimsPointOnce(t *testing.T) {
	// Two adjacent half-open cells claim a boundary point exactly once.
	left := RectFromSize(Pt(0, 0), 1, 1)
	right := RectFromSize(Pt(1, 0), 1, 1)
	boundary := Pt(1, 0.5)
	n := 0
	if left.Contains(boundary) {
		n++
	}
	if right.Contains(boundary) {
		n++
	}
	if n != 1 {
		t.Errorf("boundary point claimed by %d cells, want 1", n)
	}
}

func TestRectClamp(t *testing.T) {
	r := RectFromSize(Pt(0, 0), 2, 2)
	tests := []struct {
		p, want Point
	}{
		{Pt(1, 1), Pt(1, 1)},
		{Pt(-1, 1), Pt(0, 1)},
		{Pt(3, 3), Pt(2, 2)},
		{Pt(1, -5), Pt(1, 0)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.p); !got.Eq(tt.want) {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectInset(t *testing.T) {
	r := RectFromSize(Pt(0, 0), 4, 4)
	in := r.Inset(1)
	if in.Min != Pt(1, 1) || in.Max != Pt(3, 3) {
		t.Errorf("Inset(1) = %v", in)
	}
	// Over-large insets collapse to the center rather than inverting.
	collapsed := r.Inset(10)
	if collapsed.Width() != 0 || collapsed.Height() != 0 {
		t.Errorf("Inset(10) should collapse, got %v", collapsed)
	}
	if !collapsed.Min.Eq(r.Center()) {
		t.Errorf("collapsed rect should sit at center, got %v", collapsed.Min)
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := RectFromSize(Pt(0, 0), 2, 2)
	b := RectFromSize(Pt(1, 1), 2, 2)
	c := RectFromSize(Pt(5, 5), 1, 1)
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	// Touching rectangles share no interior area.
	d := RectFromSize(Pt(2, 0), 2, 2)
	if a.Intersects(d) {
		t.Error("touching rects should not count as intersecting")
	}
	u := a.Union(c)
	if u.Min != Pt(0, 0) || u.Max != Pt(6, 6) {
		t.Errorf("Union = %v", u)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{Center: Pt(0, 0), Radius: 5}
	if !c.Contains(Pt(3, 4)) {
		t.Error("boundary point should be inside (closed disc)")
	}
	if c.Contains(Pt(3.1, 4)) {
		t.Error("point just outside should be excluded")
	}
}

func TestCircleIntersectsRect(t *testing.T) {
	c := Circle{Center: Pt(0, 0), Radius: 1}
	tests := []struct {
		r    Rect
		want bool
	}{
		{RectFromSize(Pt(-0.5, -0.5), 1, 1), true}, // circle center inside
		{RectFromSize(Pt(0.9, -0.5), 1, 1), true},  // overlaps edge
		{RectFromSize(Pt(2, 2), 1, 1), false},      // far away
		{RectFromSize(Pt(0.8, 0.8), 1, 1), false},  // corner just outside radius
		{RectFromSize(Pt(0.6, 0.6), 1, 1), true},   // corner inside
		{RectFromSize(Pt(-3, -0.5), 10, 1), true},  // rect spans circle
	}
	for _, tt := range tests {
		if got := c.IntersectsRect(tt.r); got != tt.want {
			t.Errorf("IntersectsRect(%v) = %v, want %v", tt.r, got, tt.want)
		}
	}
}

func TestCircleCoversRect(t *testing.T) {
	c := Circle{Center: Pt(0, 0), Radius: math.Sqrt2 + 1e-9}
	covered := RectFromSize(Pt(-1, -1), 2, 2)
	if !c.CoversRect(covered) {
		t.Error("disc of radius sqrt(2) should cover unit-centered 2x2 rect")
	}
	small := Circle{Center: Pt(0, 0), Radius: 1.4}
	if small.CoversRect(covered) {
		t.Error("disc of radius 1.4 should not cover 2x2 rect")
	}
}

func TestCoversRectImpliesIntersects(t *testing.T) {
	f := func(cx, cy int8, radius uint8, rx, ry int8, w, h uint8) bool {
		c := Circle{Center: Pt(float64(cx), float64(cy)), Radius: float64(radius%50) + 0.5}
		r := RectFromSize(Pt(float64(rx), float64(ry)), float64(w%20)+0.1, float64(h%20)+0.1)
		if c.CoversRect(r) && !c.IntersectsRect(r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
