package ar

import (
	"testing"

	"wsncover/internal/coverage"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// scenario builds a network with one head per cell except holes, plus one
// spare per listed cell.
func scenario(t *testing.T, cols, rows int, holes, spares []grid.Coord) *network.Network {
	t.Helper()
	sys, err := grid.New(cols, rows, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(sys, node.EnergyModel{})
	holeSet := map[grid.Coord]bool{}
	for _, h := range holes {
		holeSet[h] = true
	}
	for _, c := range sys.AllCoords() {
		if !holeSet[c] {
			if _, err := net.AddNodeAt(sys.Center(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := randx.New(77)
	for _, c := range spares {
		if _, err := net.AddNodeAt(rng.InRect(sys.CellRect(c))); err != nil {
			t.Fatal(err)
		}
	}
	net.ElectHeads()
	return net
}

func run(t *testing.T, c *Controller, maxRounds int) {
	t.Helper()
	idle := 0
	for r := 0; r < maxRounds; r++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.Done() {
			idle++
			if idle >= 3 {
				return
			}
		} else {
			idle = 0
		}
	}
	c.Finalize()
}

func TestDefaults(t *testing.T) {
	net := scenario(t, 4, 4, nil, nil)
	c := New(net, Config{})
	if c.Name() != "AR" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.initProb != DefaultInitProb || c.maxHops != DefaultMaxHops {
		t.Error("defaults not applied")
	}
	if c.ActiveProcesses() != 0 || !c.Done() {
		t.Error("fresh controller should be idle")
	}
}

func TestNoHolesNoProcesses(t *testing.T) {
	net := scenario(t, 4, 4, nil, nil)
	c := New(net, Config{RNG: randx.New(1)})
	run(t, c, 10)
	if got := c.Collector().Summarize().Initiated; got != 0 {
		t.Errorf("initiated = %d", got)
	}
}

func TestRedundantInitiators(t *testing.T) {
	// With InitProb = 1 every head-neighbor of the hole initiates: an
	// interior hole gets 4 concurrent processes — the paper's redundancy.
	hole := grid.C(4, 4)
	spares := []grid.Coord{grid.C(3, 4), grid.C(5, 4), grid.C(4, 3), grid.C(4, 5)}
	net := scenario(t, 8, 8, []grid.Coord{hole}, spares)
	c := New(net, Config{RNG: randx.New(1), InitProb: 1})
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Initiated != 4 {
		t.Errorf("initiated = %d, want 4", s.Initiated)
	}
	if s.Converged != 4 {
		t.Errorf("converged = %d, want 4 (each found its neighbor spare)", s.Converged)
	}
	// Redundancy: 4 movements for a single hole (3 wasted).
	if s.Moves != 4 {
		t.Errorf("moves = %d, want 4", s.Moves)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
	// The extra movers ended up as spares of the hole cell.
	if got := net.SpareCount(hole); got != 3 {
		t.Errorf("hole cell spare count = %d, want 3", got)
	}
}

func TestAtLeastOneInitiator(t *testing.T) {
	// Even with a tiny InitProb, a hole with head-neighbors is always
	// detected by at least one process.
	net := scenario(t, 6, 6, []grid.Coord{grid.C(3, 3)}, []grid.Coord{grid.C(2, 3)})
	c := New(net, Config{RNG: randx.New(2), InitProb: 1e-9})
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Initiated != 1 {
		t.Errorf("initiated = %d, want exactly 1 (forced minimum)", s.Initiated)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
}

func TestCascadePullsDistantSpare(t *testing.T) {
	// Hole in a corner, single spare 3 cells away in the same row: the
	// greedy walk must cascade along the row.
	hole := grid.C(0, 0)
	net := scenario(t, 8, 1, []grid.Coord{hole}, []grid.Coord{grid.C(4, 0)})
	c := New(net, Config{RNG: randx.New(3), InitProb: 1, MaxHops: 8})
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Initiated != 1 { // only one neighbor exists in a 1-row corner
		t.Fatalf("initiated = %d", s.Initiated)
	}
	if s.Converged != 1 {
		t.Fatalf("summary = %v", s)
	}
	if s.Moves != 4 {
		t.Errorf("moves = %d, want 4 (3 cascades + spare)", s.Moves)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
}

func TestMaxHopsBudgetFails(t *testing.T) {
	// Spare beyond the hop budget: the localized search gives up.
	hole := grid.C(0, 0)
	net := scenario(t, 8, 1, []grid.Coord{hole}, []grid.Coord{grid.C(7, 0)})
	c := New(net, Config{RNG: randx.New(4), InitProb: 1, MaxHops: 3})
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Failed != 1 {
		t.Errorf("summary = %v, want 1 failure", s)
	}
	if coverage.Complete(net) {
		t.Error("hole should remain")
	}
	// Movements were still spent before giving up (the paper's point
	// about wasted work in AR).
	if s.Moves == 0 {
		t.Error("failed process should still have moved heads")
	}
}

func TestStuckWalkFails(t *testing.T) {
	// 2x2 grid, hole at one corner, no spares anywhere: each process
	// exhausts its unvisited neighbors and fails.
	net := scenario(t, 2, 2, []grid.Coord{grid.C(0, 0)}, nil)
	c := New(net, Config{RNG: randx.New(5), InitProb: 1, MaxHops: 10})
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Converged != 0 {
		t.Errorf("no spare exists; summary = %v", s)
	}
	if s.Failed != s.Initiated {
		t.Errorf("all processes should fail: %v", s)
	}
}

func TestPrefersSpareNeighbor(t *testing.T) {
	// The greedy step prefers a neighbor with a spare over one with only
	// a head: repair in exactly 2 moves via the spare-holding neighbor.
	hole := grid.C(2, 2)
	// Initiator will be (1,2) (forced single neighbor choice below);
	// spare sits at (1,3), adjacent to the initiator.
	net := scenario(t, 5, 5, []grid.Coord{hole}, []grid.Coord{grid.C(1, 3)})
	c := New(net, Config{RNG: randx.New(6), InitProb: 1, MaxHops: 4})
	run(t, c, 100)
	s := c.Collector().Summarize()
	// With a single spare and four redundant processes, only one can
	// converge; the others fail — AR's documented redundancy cost.
	if s.Converged < 1 {
		t.Errorf("summary = %v", s)
	}
	if net.IsVacant(hole) {
		t.Error("original hole should be filled")
	}
	// The converging process must have used the greedy spare preference:
	// short cascade, not a wander.
	for _, p := range c.Collector().Processes() {
		if p.Outcome == metrics.Converged && p.Hops > 4 {
			t.Errorf("process %d took %d hops; greedy spare preference suspect", p.ID, p.Hops)
		}
	}
}

func TestMultipleHolesConcurrent(t *testing.T) {
	holes := []grid.Coord{grid.C(1, 1), grid.C(6, 6), grid.C(1, 6)}
	var spares []grid.Coord
	// Plenty of spares everywhere.
	for x := 0; x < 8; x += 2 {
		for y := 0; y < 8; y += 2 {
			c := grid.C(x, y)
			if c != holes[0] && c != holes[1] && c != holes[2] {
				spares = append(spares, c)
			}
		}
	}
	net := scenario(t, 8, 8, holes, spares)
	c := New(net, Config{RNG: randx.New(7)})
	run(t, c, 200)
	// Every original hole must be filled (at least one process per hole
	// delivers), though failed redundant processes may abandon displaced
	// vacancies elsewhere — AR's robustness gap.
	for _, h := range holes {
		if net.IsVacant(h) {
			t.Errorf("original hole %v not filled", h)
		}
	}
	s := c.Collector().Summarize()
	if s.Initiated < 3 {
		t.Errorf("initiated = %d, want >= 3", s.Initiated)
	}
	if s.Converged < 3 {
		t.Errorf("converged = %d, want >= 3 (one per hole)", s.Converged)
	}
}

func TestMoreProcessesThanSR(t *testing.T) {
	// The comparison the paper's Figure 6a makes: AR initiates more than
	// one process per hole on average.
	total := 0
	for seed := int64(0); seed < 10; seed++ {
		net := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(3, 4)})
		c := New(net, Config{RNG: randx.New(seed)})
		run(t, c, 100)
		total += c.Collector().Summarize().Initiated
	}
	if total <= 15 { // average must exceed 1.5 processes per hole
		t.Errorf("total initiated over 10 seeds = %d, want > 15", total)
	}
}

func TestFinalizeFailsActive(t *testing.T) {
	net := scenario(t, 8, 1, []grid.Coord{grid.C(0, 0)}, []grid.Coord{grid.C(6, 0)})
	c := New(net, Config{RNG: randx.New(8), InitProb: 1, MaxHops: 8})
	// Run one round only: the process is mid-cascade.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.Done() {
		t.Skip("converged too fast to test Finalize")
	}
	c.Finalize()
	if !c.Done() {
		t.Error("Finalize should drain processes")
	}
	s := c.Collector().Summarize()
	if s.Active != 0 || s.Failed == 0 {
		t.Errorf("summary = %v", s)
	}
}
