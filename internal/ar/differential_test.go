package ar

import (
	"fmt"
	"reflect"
	"testing"

	"wsncover/internal/coverage"
	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// arDiffScenario describes one lockstep comparison between the
// event-driven detector and the reference full scan.
type arDiffScenario struct {
	cols, rows int
	holes      int
	adjacent   bool
	spares     int
	// churnRound > 0 vacates churnCells at that round, exercising
	// journal-driven detection of holes arriving while cascades run —
	// including re-vacated cells, which must be re-detected after a fill.
	churnRound int
	churnCells []grid.Coord
}

// buildARDiffNet deploys one network for the scenario with the given
// seed. Both arms call it with equal seeds, so they face identical
// layouts.
func buildARDiffNet(t *testing.T, sc arDiffScenario, seed int64) *network.Network {
	t.Helper()
	sys, err := grid.New(sc.cols, sc.rows, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(sys, node.EnergyModel{})
	rng := randx.New(seed)
	holes, err := deploy.PickHoleCells(sys, sc.holes, !sc.adjacent, rng.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := deploy.Controlled(net, sc.spares, holes, rng.Split(2)); err != nil {
		t.Fatal(err)
	}
	return net
}

// arFingerprint summarizes the externally observable network state; any
// behavioral divergence between the detectors changes it within a round
// or two (positions feed off the shared RNG stream).
func arFingerprint(net *network.Network) string {
	sum := 0.0
	for id := 0; id < net.NumNodes(); id++ {
		nd := net.Node(node.ID(id))
		p := nd.Location()
		sum += p.X*1e-3 + p.Y
		if nd.Enabled() {
			sum += 17
		}
	}
	return fmt.Sprintf("moves=%d dist=%.9g msgs=%d vacant=%d heads=%v pos=%.9g",
		net.TotalMoves(), net.TotalDistance(), net.MessagesSent(),
		net.VacantCount(), net.AllHeadsPresent(), sum)
}

// TestARDetectorsBitIdentical drives both AR detectors in lockstep —
// scattered and adjacent holes, spare droughts, redundant-process races,
// and mid-run churn — and requires identical observable state after
// every round, plus identical process accounting at the end.
func TestARDetectorsBitIdentical(t *testing.T) {
	scenarios := []arDiffScenario{
		{cols: 4, rows: 4, holes: 1, spares: 3},
		{cols: 8, rows: 8, holes: 4, spares: 12},
		{cols: 8, rows: 8, holes: 6, adjacent: true, spares: 4},
		{cols: 8, rows: 8, holes: 3, spares: 0}, // no spares: cascades fail
		{cols: 16, rows: 16, holes: 8, spares: 40},
		{cols: 8, rows: 8, holes: 2, spares: 20,
			churnRound: 3, churnCells: []grid.Coord{grid.C(6, 6), grid.C(1, 5)}},
		{cols: 8, rows: 8, holes: 3, spares: 6, adjacent: true,
			churnRound: 5, churnCells: []grid.Coord{grid.C(0, 0), grid.C(7, 7), grid.C(3, 4)}},
	}
	for i, sc := range scenarios {
		t.Run(fmt.Sprintf("scenario%02d_%dx%d", i, sc.cols, sc.rows), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				runARDiff(t, sc, seed)
			}
		})
	}
}

func runARDiff(t *testing.T, sc arDiffScenario, seed int64) {
	t.Helper()
	netEvent := buildARDiffNet(t, sc, seed)
	netScan := buildARDiffNet(t, sc, seed)
	event := New(netEvent, Config{RNG: randx.New(seed * 31)})
	scan := New(netScan, Config{RNG: randx.New(seed * 31), FullScanDetect: true})

	maxRounds := 2*sc.cols*sc.rows + 16
	idle := 0
	for r := 0; r < maxRounds; r++ {
		if sc.churnRound > 0 && r == sc.churnRound {
			for _, cell := range sc.churnCells {
				netEvent.DisableAllInCell(cell)
				netScan.DisableAllInCell(cell)
			}
		}
		if err := event.Step(); err != nil {
			t.Fatalf("seed %d round %d: event: %v", seed, r, err)
		}
		if err := scan.Step(); err != nil {
			t.Fatalf("seed %d round %d: scan: %v", seed, r, err)
		}
		if a, b := arFingerprint(netEvent), arFingerprint(netScan); a != b {
			t.Fatalf("seed %d: diverged at round %d:\nevent: %s\nscan:  %s", seed, r, a, b)
		}
		if event.ActiveProcesses() != scan.ActiveProcesses() {
			t.Fatalf("seed %d round %d: procs %d vs %d",
				seed, r, event.ActiveProcesses(), scan.ActiveProcesses())
		}
		if event.Done() && scan.Done() {
			idle++
			if idle >= 3 {
				break
			}
		} else {
			idle = 0
		}
	}

	if !reflect.DeepEqual(event.Collector().Processes(), scan.Collector().Processes()) {
		t.Fatalf("seed %d: process logs differ:\n%+v\nvs\n%+v",
			seed, event.Collector().Processes(), scan.Collector().Processes())
	}
	if a, b := event.Collector().Summarize(), scan.Collector().Summarize(); a != b {
		t.Fatalf("seed %d: summaries differ: %+v vs %+v", seed, a, b)
	}
	if a, b := coverage.Complete(netEvent), coverage.Complete(netScan); a != b {
		t.Fatalf("seed %d: completion differs: %v vs %v", seed, a, b)
	}
	if bad := netEvent.Audit(); len(bad) > 0 {
		t.Fatalf("seed %d: event-arm audit: %v", seed, bad)
	}
}

// TestARRedetectsRevacatedCell pins the churn-readiness property the
// detected-set clearing buys: a hole that was repaired and is then
// vacated again by external damage triggers a fresh replacement process
// under both detectors.
func TestARRedetectsRevacatedCell(t *testing.T) {
	for _, fullScan := range []bool{false, true} {
		sc := arDiffScenario{cols: 6, rows: 6, holes: 1, spares: 12}
		net := buildARDiffNet(t, sc, 3)
		c := New(net, Config{RNG: randx.New(5), FullScanDetect: fullScan})
		stepUntilIdle := func() {
			idle := 0
			for r := 0; r < 200 && idle < 3; r++ {
				if err := c.Step(); err != nil {
					t.Fatal(err)
				}
				if c.Done() {
					idle++
				} else {
					idle = 0
				}
			}
		}
		stepUntilIdle()
		if !net.AllHeadsPresent() {
			t.Fatalf("fullScan=%v: initial hole not repaired", fullScan)
		}
		before := c.Collector().Summarize().Initiated
		// Vacate a previously repaired (or at least previously occupied)
		// cell and require new processes.
		net.DisableAllInCell(grid.C(2, 2))
		stepUntilIdle()
		after := c.Collector().Summarize().Initiated
		if after <= before {
			t.Errorf("fullScan=%v: no process initiated for re-vacated cell (%d -> %d)",
				fullScan, before, after)
		}
		if !net.AllHeadsPresent() {
			t.Errorf("fullScan=%v: re-vacated cell not repaired", fullScan)
		}
	}
}
