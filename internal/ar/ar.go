// Package ar implements the AR baseline: the localized, 1-hop
// replacement scheme of Jiang et al. [3] ("Topology control for secured
// coverage in WSNs", WSNS'07), the best previously known movement-assisted
// hole-repair method and the paper's comparison target.
//
// AR detects holes with 1-hop monitoring only, without the Hamilton-cycle
// synchronization of SR. Consequences reproduced here, as described in the
// paper's Sections 1 and 5:
//
//   - Redundant processes: every head neighboring a hole may initiate its
//     own snake-like replacement, so a single hole typically triggers
//     several concurrent processes (SR needs fewer than half as many).
//   - Bounded local search: each cascade is a greedy self-avoiding walk
//     over 1-hop knowledge that prefers neighbors with spares; it gives up
//     when stuck or past its hop budget, so 10-20% of processes fail in
//     sparse networks, where SR still succeeds.
//   - Unnecessary movements: processes racing for the same hole all
//     complete their movements; later arrivals are wasted.
//   - Abandoned vacancies: a failed process has already moved heads along
//     its cascade; the vacancy it was carrying stays behind, so AR can end
//     with the original hole filled but a displaced hole elsewhere — the
//     robustness gap the paper reports for sparse networks.
//
// The exact pseudo-code of [3] is not reproduced in the paper, so this
// model is calibrated to the behavior the paper reports for AR; see
// DESIGN.md ("Substitutions") and the calibration tests in the sim
// package.
package ar

import (
	"fmt"
	"slices"

	"wsncover/internal/grid"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// MsgCascade is the AR cascade notification kind. It is distinct from the
// SR kind so traces can interleave.
const MsgCascade = 2

// DefaultInitProb is the default probability that a head neighboring a
// freshly observed hole starts its own replacement process. Values near
// 0.65 reproduce the paper's report that SR needs fewer than 50% of AR's
// processes (AR averages well over two initiators per hole, counting
// boundary holes with fewer neighbors).
const DefaultInitProb = 0.65

// DefaultMaxHops is the default cascade hop budget, the "localized"
// search horizon of AR. Six hops reproduces the paper's low-density
// failure band (10-20% for N < 55 on the 16x16 grid).
const DefaultMaxHops = 6

// Config parameterizes the AR controller.
type Config struct {
	// RNG drives initiator sampling, tie-breaking, and destination
	// sampling. Required for reproducibility; defaults to seed 1.
	RNG *randx.Rand
	// InitProb is the per-neighbor initiation probability; at least one
	// neighbor always initiates. Zero means DefaultInitProb.
	InitProb float64
	// MaxHops is the cascade hop budget. Zero means DefaultMaxHops.
	MaxHops int
	// FullScanDetect selects the reference O(cells) per-round vacancy
	// scan instead of the event-driven detector fed by the network's
	// vacancy journal. The two are bit-identical (enforced by a lockstep
	// differential test); the full scan exists as the executable
	// specification and for benchmarking.
	FullScanDetect bool
	// Collector, when non-nil, is adopted as the metrics store after
	// being Reset; nil allocates a fresh one. Pooled trial arenas pass
	// their per-worker collector so replicates reuse its capacity.
	Collector *metrics.Collector
}

// proc is one AR replacement process.
type proc struct {
	id      int
	hole    grid.Coord
	cur     grid.Coord
	hops    int
	visited map[grid.Coord]bool
}

type departure struct {
	pid     int
	nodeID  node.ID
	from    grid.Coord
	vacancy grid.Coord
}

// Controller runs the AR scheme over a network. It is not safe for
// concurrent use.
type Controller struct {
	net *network.Network
	rng *randx.Rand
	col *metrics.Collector

	initProb float64
	maxHops  int

	procs map[int]*proc
	// detected marks holes whose initiator set has been sampled.
	detected map[grid.Coord]bool
	// claims marks travelling cascade vacancies owned by a process, the
	// within-process suppression of [3] (a departing head tells its
	// neighbors its grid is being refilled).
	claims    map[grid.Coord]int
	departing map[grid.Coord]bool
	pending   []departure

	// fullScan selects the reference O(cells) detector.
	fullScan bool
	// holes is the event-driven detector's standing set of vacant cells:
	// seeded from a one-time scan at construction, then maintained from
	// the network's vacancy journal, so per-round detection is O(holes)
	// instead of O(cells).
	holes map[grid.Coord]struct{}

	// Scratch buffers reused across rounds so the hot loop does not
	// allocate: the inbox snapshot, the vacant-cell candidates (scanned
	// or journal-fed), the journal drain, and the neighbor-classification
	// lists of pickNext.
	inboxBuf []network.Message
	vacBuf   []grid.Coord
	eventBuf []grid.Coord
	nbrBuf   []grid.Coord
	spareBuf []grid.Coord
	headBuf  []grid.Coord
	initsBuf []grid.Coord
	headsBuf []grid.Coord
}

// New creates an AR controller for the network.
func New(net *network.Network, cfg Config) *Controller {
	rng := cfg.RNG
	if rng == nil {
		rng = randx.New(1)
	}
	initProb := cfg.InitProb
	if initProb == 0 {
		initProb = DefaultInitProb
	}
	maxHops := cfg.MaxHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	col := cfg.Collector
	if col == nil {
		col = metrics.NewCollector()
	} else {
		col.Reset()
	}
	c := &Controller{
		net:       net,
		rng:       rng,
		col:       col,
		initProb:  initProb,
		maxHops:   maxHops,
		fullScan:  cfg.FullScanDetect,
		procs:     make(map[int]*proc),
		detected:  make(map[grid.Coord]bool),
		claims:    make(map[grid.Coord]int),
		departing: make(map[grid.Coord]bool),
	}
	if !c.fullScan {
		// Seed the standing hole set from the network as handed over:
		// damage injected before the controller existed never produced
		// journal events this consumer saw. Stale pre-construction
		// events are discarded unseen (deployment journals one event per
		// cell — materializing them would dominate a pooled trial's
		// allocation); from here on the journal is authoritative.
		c.holes = make(map[grid.Coord]struct{})
		c.net.DiscardVacancyEvents()
		c.eventBuf = c.net.VacantCells(c.eventBuf[:0])
		for _, g := range c.eventBuf {
			c.holes[g] = struct{}{}
		}
	}
	return c
}

// Name identifies the scheme in experiment output.
func (c *Controller) Name() string { return "AR" }

// Collector exposes the metrics collected so far.
func (c *Controller) Collector() *metrics.Collector { return c.col }

// Done reports whether no replacement process is active.
func (c *Controller) Done() bool { return len(c.procs) == 0 }

// ActiveProcesses returns the number of processes still cascading.
func (c *Controller) ActiveProcesses() int { return len(c.procs) }

// Step runs one synchronous round.
func (c *Controller) Step() error {
	c.net.StepRound()
	if err := c.executeDepartures(); err != nil {
		return err
	}
	if err := c.serveInbox(); err != nil {
		return err
	}
	return c.detect()
}

func (c *Controller) executeDepartures() error {
	pending := c.pending
	c.pending = c.pending[:0]
	for _, d := range pending {
		delete(c.departing, d.from)
		if nd := c.net.Node(d.nodeID); nd == nil || !nd.Enabled() {
			// The committed head died before its scheduled move (mid-run
			// damage: a churn wave, depletion); the cascade cannot
			// continue and the process fails. Release the outstanding
			// vacancy — its claim and, for a first-hop death, its
			// detected mark — so detection samples it afresh.
			if owner, claimed := c.claims[d.vacancy]; claimed && owner == d.pid {
				delete(c.claims, d.vacancy)
			}
			delete(c.detected, d.vacancy)
			if p, ok := c.procs[d.pid]; ok {
				c.finish(p, metrics.Failed)
			}
			continue
		}
		if err := c.moveInto(d.pid, d.nodeID, d.vacancy); err != nil {
			return err
		}
		if !c.net.IsVacant(d.from) {
			// The departed cell re-elected a head on the spot: a node that
			// arrived after the hand-off was committed (resupply) got
			// promoted when the old head left. Nothing is left to refill —
			// the cascade completes here instead of claiming an occupied
			// cell (a leak if the cascade later stalled).
			if p, ok := c.procs[d.pid]; ok {
				c.finish(p, metrics.Converged)
			}
			continue
		}
		c.claims[d.from] = d.pid
	}
	return nil
}

// moveInto relocates a node into the vacancy cell. Unlike SR, the cell may
// already have been refilled by a rival process: the move still happens
// (redundant movement, the mover arrives as a spare).
func (c *Controller) moveInto(pid int, id node.ID, vacancy grid.Coord) error {
	nd := c.net.Node(id)
	if nd == nil {
		return fmt.Errorf("ar: process %d references unknown node %d", pid, id)
	}
	target := c.net.CentralTarget(vacancy, c.rng)
	dist, err := c.net.MoveNodeDist(id, target)
	if err != nil {
		return fmt.Errorf("ar: process %d move: %w", pid, err)
	}
	c.col.RecordMove(pid, dist)
	if owner, ok := c.claims[vacancy]; ok && owner == pid {
		delete(c.claims, vacancy)
	}
	// The refilled cell is no longer a sampled hole: if external damage
	// (a churn wave, depletion) vacates it again later, its initiator
	// set is sampled afresh. In a single-shot trial this is a no-op —
	// any cascade re-vacancy carries a claim, which shields it first.
	delete(c.detected, vacancy)
	return nil
}

func (c *Controller) serveInbox() error {
	// Snapshot into a controller-owned buffer: serving may enqueue
	// (requeue) into the network's queues.
	c.inboxBuf = append(c.inboxBuf[:0], c.net.Inbox()...)
	for _, m := range c.inboxBuf {
		if m.Kind != MsgCascade {
			continue
		}
		p, ok := c.procs[m.Process]
		if !ok {
			continue
		}
		cur := m.To
		if c.net.HeadOf(cur) == node.Invalid || c.departing[cur] {
			c.net.RequeueMessage(m)
			continue
		}
		p.cur = cur
		p.visited[cur] = true
		p.hops++
		c.col.RecordHop(p.id)
		if err := c.serveRequest(p, m.From); err != nil {
			return err
		}
	}
	return nil
}

// serveRequest lets the process's current grid supply a node for vacancy.
func (c *Controller) serveRequest(p *proc, vacancy grid.Coord) error {
	target := c.net.System().Center(vacancy)
	if donor := c.net.SpareNearest(p.cur, target); donor != node.Invalid {
		if err := c.moveInto(p.id, donor, vacancy); err != nil {
			return err
		}
		c.finish(p, metrics.Converged)
		return nil
	}
	if p.hops >= c.maxHops {
		// Localized search horizon exceeded: AR gives up.
		c.finish(p, metrics.Failed)
		return nil
	}
	next, ok := c.pickNext(p)
	if !ok {
		// Self-avoiding walk is stuck: no unvisited occupied neighbor.
		c.finish(p, metrics.Failed)
		return nil
	}
	head := c.net.HeadOf(p.cur)
	if head == node.Invalid {
		return fmt.Errorf("ar: cascade at vacant grid %v", p.cur)
	}
	msg := network.Message{
		From:    p.cur,
		To:      next,
		Kind:    MsgCascade,
		Process: p.id,
		Hops:    p.hops,
		Origin:  p.hole,
	}
	if err := c.net.Send(msg); err != nil {
		return fmt.Errorf("ar: cascade notify: %w", err)
	}
	c.col.RecordMessage()
	c.departing[p.cur] = true
	c.pending = append(c.pending, departure{
		pid:     p.id,
		nodeID:  head,
		from:    p.cur,
		vacancy: vacancy,
	})
	return nil
}

// pickNext chooses the cascade's next grid among the unvisited occupied
// neighbors of the current grid, preferring grids with spares; ties break
// uniformly at random. It is the greedy self-avoiding step of AR's
// snake-like search.
func (c *Controller) pickNext(p *proc) (grid.Coord, bool) {
	withSpare, withHead := c.spareBuf[:0], c.headBuf[:0]
	c.nbrBuf = c.net.System().Neighbors(c.nbrBuf[:0], p.cur)
	for _, nb := range c.nbrBuf {
		if p.visited[nb] || nb == p.hole {
			continue
		}
		if c.net.HeadOf(nb) == node.Invalid || c.departing[nb] {
			continue
		}
		if c.net.HasSpare(nb) {
			withSpare = append(withSpare, nb)
		} else {
			withHead = append(withHead, nb)
		}
	}
	c.spareBuf, c.headBuf = withSpare, withHead
	if len(withSpare) > 0 {
		return withSpare[c.rng.Intn(len(withSpare))], true
	}
	if len(withHead) > 0 {
		return withHead[c.rng.Intn(len(withHead))], true
	}
	return grid.Coord{}, false
}

// detect finds fresh holes and samples the initiator set of each: every
// neighboring head flips a coin, with at least one initiator forced (the
// redundancy of unsynchronized 1-hop detection).
//
// The candidate holes come either from the reference full scan or from
// the standing set maintained off the network's vacancy journal; the two
// visit the same cells in the same order (cell index), with every
// eligibility condition evaluated lazily at visit time, so the arms are
// bit-identical — enforced by the lockstep differential test.
func (c *Controller) detect() error {
	c.vacBuf = c.vacantCandidates()
	for _, v := range c.vacBuf {
		if c.detected[v] {
			continue
		}
		if _, cascading := c.claims[v]; cascading {
			continue
		}
		heads := c.headsBuf[:0]
		c.nbrBuf = c.net.System().Neighbors(c.nbrBuf[:0], v)
		for _, nb := range c.nbrBuf {
			if c.net.HeadOf(nb) != node.Invalid && !c.departing[nb] {
				heads = append(heads, nb)
			}
		}
		c.headsBuf = heads
		if len(heads) == 0 {
			continue // no observer yet; retry next round
		}
		initiators := c.initsBuf[:0]
		for _, h := range heads {
			if c.rng.Bool(c.initProb) {
				initiators = append(initiators, h)
			}
		}
		if len(initiators) == 0 {
			initiators = append(initiators, heads[c.rng.Intn(len(heads))])
		}
		c.initsBuf = initiators
		c.detected[v] = true
		for _, g := range initiators {
			if c.departing[g] {
				continue
			}
			if err := c.initiate(g, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// vacantCandidates returns the current vacant cells in cell-index order.
// The full scan recomputes them from the cell registry, O(cells); the
// event-driven path folds the vacancy journal into the standing hole set
// and sorts it by index — the same order at O(holes) per round.
func (c *Controller) vacantCandidates() []grid.Coord {
	if c.fullScan {
		return c.net.VacantCells(c.vacBuf[:0])
	}
	c.eventBuf = c.net.DrainVacancyEvents(c.eventBuf[:0])
	for _, g := range c.eventBuf {
		if c.net.IsVacant(g) {
			c.holes[g] = struct{}{}
		} else {
			delete(c.holes, g)
		}
	}
	buf := c.vacBuf[:0]
	for g := range c.holes {
		buf = append(buf, g)
	}
	sys := c.net.System()
	slices.SortFunc(buf, func(a, b grid.Coord) int { return sys.Index(a) - sys.Index(b) })
	return buf
}

// initiate starts one AR process for the hole at v from the neighboring
// head grid g.
func (c *Controller) initiate(g, v grid.Coord) error {
	pid := c.col.StartProcess(v, c.net.Round())
	p := &proc{
		id:      pid,
		hole:    v,
		cur:     g,
		hops:    1,
		visited: map[grid.Coord]bool{g: true},
	}
	c.procs[pid] = p
	c.col.RecordHop(pid)
	return c.serveRequest(p, v)
}

func (c *Controller) finish(p *proc, outcome metrics.Outcome) {
	c.col.Finish(p.id, outcome, c.net.Round())
	delete(c.procs, p.id)
}

// Finalize marks all still-active processes failed; call it when a run
// hits its round budget.
func (c *Controller) Finalize() {
	for _, p := range c.procs {
		c.finish(p, metrics.Failed)
	}
}

// ResetFailed clears the claims of dead processes and the detected marks
// of still-vacant cells, so holes AR gave up on are sampled afresh —
// e.g. after new spares arrive in a dynamic scenario.
func (c *Controller) ResetFailed() {
	for g, pid := range c.claims {
		if _, alive := c.procs[pid]; !alive {
			delete(c.claims, g)
		}
	}
	for g := range c.detected {
		if c.net.IsVacant(g) {
			delete(c.detected, g)
		}
	}
}

// AuditClaims checks AR's bookkeeping invariants and returns sorted
// human-readable violations (empty = clean), for a converged controller:
// a claim owned by a dead process must sit on a vacant cell (the
// abandoned travelling vacancy the paper reports as AR's robustness
// gap — on an occupied cell it would be a leak), and the event-driven
// detector's standing hole set must agree with a full vacancy scan.
func (c *Controller) AuditClaims() []string {
	var bad []string
	for g, pid := range c.claims {
		if _, alive := c.procs[pid]; !alive && !c.net.IsVacant(g) {
			bad = append(bad, fmt.Sprintf(
				"ar: claim on occupied cell %v owned by dead process %d", g, pid))
		}
	}
	if !c.fullScan {
		// Cells with undrained journal flips are lag, not disagreement: a
		// mover filled them during the final detect pass, after its drain;
		// the next drain would resync. See core.Controller.AuditClaims.
		for g := range c.holes {
			if !c.net.IsVacant(g) && !c.net.VacancyFlipPending(g) {
				bad = append(bad, fmt.Sprintf(
					"ar: standing hole set contains occupied cell %v", g))
			}
		}
		for _, g := range c.net.VacantCells(nil) {
			if _, ok := c.holes[g]; ok || c.net.VacancyFlipPending(g) {
				continue
			}
			bad = append(bad, fmt.Sprintf(
				"ar: vacant cell %v missing from standing hole set", g))
		}
	}
	slices.Sort(bad)
	return bad
}
