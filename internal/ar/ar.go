// Package ar implements the AR baseline: the localized, 1-hop
// replacement scheme of Jiang et al. [3] ("Topology control for secured
// coverage in WSNs", WSNS'07), the best previously known movement-assisted
// hole-repair method and the paper's comparison target.
//
// AR detects holes with 1-hop monitoring only, without the Hamilton-cycle
// synchronization of SR. Consequences reproduced here, as described in the
// paper's Sections 1 and 5:
//
//   - Redundant processes: every head neighboring a hole may initiate its
//     own snake-like replacement, so a single hole typically triggers
//     several concurrent processes (SR needs fewer than half as many).
//   - Bounded local search: each cascade is a greedy self-avoiding walk
//     over 1-hop knowledge that prefers neighbors with spares; it gives up
//     when stuck or past its hop budget, so 10-20% of processes fail in
//     sparse networks, where SR still succeeds.
//   - Unnecessary movements: processes racing for the same hole all
//     complete their movements; later arrivals are wasted.
//   - Abandoned vacancies: a failed process has already moved heads along
//     its cascade; the vacancy it was carrying stays behind, so AR can end
//     with the original hole filled but a displaced hole elsewhere — the
//     robustness gap the paper reports for sparse networks.
//
// The exact pseudo-code of [3] is not reproduced in the paper, so this
// model is calibrated to the behavior the paper reports for AR; see
// DESIGN.md ("Substitutions") and the calibration tests in the sim
// package.
//
// Controller state is struct-of-arrays, mirroring the core package:
// processes live in a dense pid-indexed table whose visited sets share
// one flat arena (each process visits at most MaxHops grids), and the
// claim, detected, departing, and standing-hole registries are per-cell
// columns and bitsets. A Scratch pools everything across trials.
package ar

import (
	"fmt"
	"math/bits"
	"slices"

	"wsncover/internal/dense"
	"wsncover/internal/grid"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// MsgCascade is the AR cascade notification kind. It is distinct from the
// SR kind so traces can interleave.
const MsgCascade = 2

// DefaultInitProb is the default probability that a head neighboring a
// freshly observed hole starts its own replacement process. Values near
// 0.65 reproduce the paper's report that SR needs fewer than 50% of AR's
// processes (AR averages well over two initiators per hole, counting
// boundary holes with fewer neighbors).
const DefaultInitProb = 0.65

// DefaultMaxHops is the default cascade hop budget, the "localized"
// search horizon of AR. Six hops reproduces the paper's low-density
// failure band (10-20% for N < 55 on the 16x16 grid).
const DefaultMaxHops = 6

// Config parameterizes the AR controller.
type Config struct {
	// RNG drives initiator sampling, tie-breaking, and destination
	// sampling. Required for reproducibility; defaults to seed 1.
	RNG *randx.Rand
	// InitProb is the per-neighbor initiation probability; at least one
	// neighbor always initiates. Zero means DefaultInitProb.
	InitProb float64
	// MaxHops is the cascade hop budget. Zero means DefaultMaxHops.
	MaxHops int
	// FullScanDetect selects the reference O(cells) per-round vacancy
	// scan instead of the event-driven detector fed by the network's
	// vacancy journal. The two are bit-identical (enforced by a lockstep
	// differential test); the full scan exists as the executable
	// specification and for benchmarking.
	FullScanDetect bool
	// Collector, when non-nil, is adopted as the metrics store after
	// being Reset; nil allocates a fresh one. Pooled trial arenas pass
	// their per-worker collector so replicates reuse its capacity.
	Collector *metrics.Collector
	// Scratch, when non-nil, supplies the controller's pooled state: New
	// reuses the scratch-held tables (cleared) instead of allocating, and
	// the returned controller aliases the scratch. At most one live
	// controller per scratch; building a new one invalidates the old.
	Scratch *Scratch
}

// Scratch pools one controller's dense state across trials. The zero
// value is ready to use.
type Scratch struct{ ctrl Controller }

// proc is one AR replacement process. Records live in a dense
// pid-indexed table; done marks finished entries. The self-avoiding
// walk's visited set lives in the controller's flat arena at stride
// MaxHops (a process visits one grid per hop and dies at the budget), so
// starting a process allocates nothing.
type proc struct {
	id   int
	hole grid.Coord
	cur  grid.Coord
	hops int
	nvis int32
	done bool
}

type departure struct {
	pid     int
	nodeID  node.ID
	from    grid.Coord
	vacancy grid.Coord
}

// Controller runs the AR scheme over a network. It is not safe for
// concurrent use.
type Controller struct {
	net *network.Network
	sys *grid.System
	rng *randx.Rand
	col *metrics.Collector

	initProb float64
	maxHops  int

	// procs is the dense process table, indexed by pid (the collector
	// hands out pids sequentially from zero per trial and the controller
	// is its only caller). active counts unfinished entries; visited is
	// the flat per-process visited arena, stride maxHops.
	procs   []proc
	active  int
	visited []grid.Coord

	// detected marks holes whose initiator set has been sampled.
	detected []uint64
	// claimPID marks travelling cascade vacancies owned by a process
	// (pid+1; 0 = unclaimed), the within-process suppression of [3] (a
	// departing head tells its neighbors its grid is being refilled).
	claimPID  []int32
	departing []uint64
	pending   []departure

	// fullScan selects the reference O(cells) detector.
	fullScan bool
	// holeList/holePos are the event-driven detector's standing set of
	// vacant cells: holeList the members (unordered; candidates are
	// sorted per round), holePos each cell's position+1 (0 = absent).
	// Seeded from a one-time scan at construction, then maintained from
	// the network's vacancy journal, so per-round detection is O(holes)
	// instead of O(cells).
	holeList []grid.Coord
	holePos  []int32

	// Scratch buffers reused across rounds so the hot loop does not
	// allocate: the inbox snapshot, the vacant-cell candidates (scanned
	// or journal-fed), the journal drain, and the neighbor-classification
	// lists of pickNext.
	inboxBuf []network.Message
	vacBuf   []grid.Coord
	eventBuf []grid.Coord
	nbrBuf   []grid.Coord
	spareBuf []grid.Coord
	headBuf  []grid.Coord
	initsBuf []grid.Coord
	headsBuf []grid.Coord
}

// New creates an AR controller for the network.
func New(net *network.Network, cfg Config) *Controller {
	rng := cfg.RNG
	if rng == nil {
		rng = randx.New(1)
	}
	initProb := cfg.InitProb
	if initProb == 0 {
		initProb = DefaultInitProb
	}
	maxHops := cfg.MaxHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	col := cfg.Collector
	if col == nil {
		col = metrics.NewCollector()
	} else {
		col.Reset()
	}
	var c *Controller
	if cfg.Scratch != nil {
		c = &cfg.Scratch.ctrl
	} else {
		c = new(Controller)
	}
	n := net.System().NumCells()
	// Field-by-field reinit: slices keep their backing arrays (truncated
	// or cleared), everything else is overwritten, so a pooled controller
	// starts byte-identical to a fresh one.
	*c = Controller{
		net:      net,
		sys:      net.System(),
		rng:      rng,
		col:      col,
		initProb: initProb,
		maxHops:  maxHops,
		fullScan: cfg.FullScanDetect,

		procs:   c.procs[:0],
		visited: c.visited[:0],

		detected:  dense.Bits(c.detected, n),
		claimPID:  dense.Int32s(c.claimPID, n),
		departing: dense.Bits(c.departing, n),
		pending:   c.pending[:0],

		holeList: c.holeList[:0],
		holePos:  dense.Int32s(c.holePos, n),

		inboxBuf: c.inboxBuf[:0],
		vacBuf:   c.vacBuf[:0],
		eventBuf: c.eventBuf[:0],
		nbrBuf:   c.nbrBuf[:0],
		spareBuf: c.spareBuf[:0],
		headBuf:  c.headBuf[:0],
		initsBuf: c.initsBuf[:0],
		headsBuf: c.headsBuf[:0],
	}
	if !c.fullScan {
		// Seed the standing hole set from the network as handed over:
		// damage injected before the controller existed never produced
		// journal events this consumer saw. Stale pre-construction
		// events are discarded unseen (deployment journals one event per
		// cell — materializing them would dominate a pooled trial's
		// allocation); from here on the journal is authoritative.
		c.net.DiscardVacancyEvents()
		c.eventBuf = c.net.VacantCells(c.eventBuf[:0])
		for _, g := range c.eventBuf {
			c.holeAdd(g)
		}
	}
	return c
}

// Name identifies the scheme in experiment output.
func (c *Controller) Name() string { return "AR" }

// Collector exposes the metrics collected so far.
func (c *Controller) Collector() *metrics.Collector { return c.col }

// Done reports whether no replacement process is active.
func (c *Controller) Done() bool { return c.active == 0 }

// ActiveProcesses returns the number of processes still cascading.
func (c *Controller) ActiveProcesses() int { return c.active }

// alive reports whether pid names a still-running process.
func (c *Controller) alive(pid int) bool {
	return pid >= 0 && pid < len(c.procs) && !c.procs[pid].done
}

// liveProc returns the record of a still-running process.
func (c *Controller) liveProc(pid int) (*proc, bool) {
	if !c.alive(pid) {
		return nil, false
	}
	return &c.procs[pid], true
}

// visitedHas reports whether the process has already walked through g.
func (c *Controller) visitedHas(p *proc, g grid.Coord) bool {
	base := p.id * c.maxHops
	for _, v := range c.visited[base : base+int(p.nvis)] {
		if v == g {
			return true
		}
	}
	return false
}

// markVisited records g in the process's visited set. pickNext only
// yields unvisited grids, so the set never exceeds its maxHops stride.
func (c *Controller) markVisited(p *proc, g grid.Coord) {
	c.visited[p.id*c.maxHops+int(p.nvis)] = g
	p.nvis++
}

// holeAdd inserts g into the standing hole set (no-op when present).
func (c *Controller) holeAdd(g grid.Coord) {
	idx := c.sys.Index(g)
	if c.holePos[idx] != 0 {
		return
	}
	c.holeList = append(c.holeList, g)
	c.holePos[idx] = int32(len(c.holeList))
}

// holeRemove deletes g from the standing hole set by swap-removal.
func (c *Controller) holeRemove(g grid.Coord) {
	idx := c.sys.Index(g)
	pos := c.holePos[idx]
	if pos == 0 {
		return
	}
	last := len(c.holeList) - 1
	moved := c.holeList[last]
	c.holeList[int(pos)-1] = moved
	c.holePos[c.sys.Index(moved)] = pos
	c.holeList = c.holeList[:last]
	c.holePos[idx] = 0
}

// isDeparting reports whether the head of g is committed to a move.
func (c *Controller) isDeparting(g grid.Coord) bool { return dense.Has(c.departing, c.sys.Index(g)) }

// Step runs one synchronous round.
func (c *Controller) Step() error {
	c.net.StepRound()
	if err := c.executeDepartures(); err != nil {
		return err
	}
	if err := c.serveInbox(); err != nil {
		return err
	}
	return c.detect()
}

func (c *Controller) executeDepartures() error {
	pending := c.pending
	c.pending = c.pending[:0]
	for _, d := range pending {
		dense.Clear(c.departing, c.sys.Index(d.from))
		if nd := c.net.Node(d.nodeID); !nd.Valid() || !nd.Enabled() {
			// The committed head died before its scheduled move (mid-run
			// damage: a churn wave, depletion); the cascade cannot
			// continue and the process fails. Release the outstanding
			// vacancy — its claim and, for a first-hop death, its
			// detected mark — so detection samples it afresh.
			vidx := c.sys.Index(d.vacancy)
			if owner := c.claimPID[vidx]; owner != 0 && int(owner-1) == d.pid {
				c.claimPID[vidx] = 0
			}
			dense.Clear(c.detected, vidx)
			if p, ok := c.liveProc(d.pid); ok {
				c.finish(p, metrics.Failed)
			}
			continue
		}
		if err := c.moveInto(d.pid, d.nodeID, d.vacancy); err != nil {
			return err
		}
		if !c.net.IsVacant(d.from) {
			// The departed cell re-elected a head on the spot: a node that
			// arrived after the hand-off was committed (resupply) got
			// promoted when the old head left. Nothing is left to refill —
			// the cascade completes here instead of claiming an occupied
			// cell (a leak if the cascade later stalled).
			if p, ok := c.liveProc(d.pid); ok {
				c.finish(p, metrics.Converged)
			}
			continue
		}
		c.claimPID[c.sys.Index(d.from)] = int32(d.pid) + 1
	}
	return nil
}

// moveInto relocates a node into the vacancy cell. Unlike SR, the cell may
// already have been refilled by a rival process: the move still happens
// (redundant movement, the mover arrives as a spare).
func (c *Controller) moveInto(pid int, id node.ID, vacancy grid.Coord) error {
	nd := c.net.Node(id)
	if !nd.Valid() {
		return fmt.Errorf("ar: process %d references unknown node %d", pid, id)
	}
	target := c.net.CentralTarget(vacancy, c.rng)
	dist, err := c.net.MoveNodeDist(id, target)
	if err != nil {
		return fmt.Errorf("ar: process %d move: %w", pid, err)
	}
	c.col.RecordMove(pid, dist)
	vidx := c.sys.Index(vacancy)
	if owner := c.claimPID[vidx]; owner != 0 && int(owner-1) == pid {
		c.claimPID[vidx] = 0
	}
	// The refilled cell is no longer a sampled hole: if external damage
	// (a churn wave, depletion) vacates it again later, its initiator
	// set is sampled afresh. In a single-shot trial this is a no-op —
	// any cascade re-vacancy carries a claim, which shields it first.
	dense.Clear(c.detected, vidx)
	return nil
}

func (c *Controller) serveInbox() error {
	// Snapshot into a controller-owned buffer: serving may enqueue
	// (requeue) into the network's queues.
	c.inboxBuf = append(c.inboxBuf[:0], c.net.Inbox()...)
	for _, m := range c.inboxBuf {
		if m.Kind != MsgCascade {
			continue
		}
		p, ok := c.liveProc(m.Process)
		if !ok {
			continue
		}
		cur := m.To
		if c.net.HeadOf(cur) == node.Invalid || c.isDeparting(cur) {
			c.net.RequeueMessage(m)
			continue
		}
		p.cur = cur
		c.markVisited(p, cur)
		p.hops++
		c.col.RecordHop(p.id)
		if err := c.serveRequest(p, m.From); err != nil {
			return err
		}
	}
	return nil
}

// serveRequest lets the process's current grid supply a node for vacancy.
func (c *Controller) serveRequest(p *proc, vacancy grid.Coord) error {
	target := c.sys.Center(vacancy)
	if donor := c.net.SpareNearest(p.cur, target); donor != node.Invalid {
		if err := c.moveInto(p.id, donor, vacancy); err != nil {
			return err
		}
		c.finish(p, metrics.Converged)
		return nil
	}
	if p.hops >= c.maxHops {
		// Localized search horizon exceeded: AR gives up.
		c.finish(p, metrics.Failed)
		return nil
	}
	next, ok := c.pickNext(p)
	if !ok {
		// Self-avoiding walk is stuck: no unvisited occupied neighbor.
		c.finish(p, metrics.Failed)
		return nil
	}
	head := c.net.HeadOf(p.cur)
	if head == node.Invalid {
		return fmt.Errorf("ar: cascade at vacant grid %v", p.cur)
	}
	msg := network.Message{
		From:    p.cur,
		To:      next,
		Kind:    MsgCascade,
		Process: p.id,
		Hops:    p.hops,
		Origin:  p.hole,
	}
	if err := c.net.Send(msg); err != nil {
		return fmt.Errorf("ar: cascade notify: %w", err)
	}
	c.col.RecordMessage()
	dense.Set(c.departing, c.sys.Index(p.cur))
	c.pending = append(c.pending, departure{
		pid:     p.id,
		nodeID:  head,
		from:    p.cur,
		vacancy: vacancy,
	})
	return nil
}

// pickNext chooses the cascade's next grid among the unvisited occupied
// neighbors of the current grid, preferring grids with spares; ties break
// uniformly at random. It is the greedy self-avoiding step of AR's
// snake-like search.
func (c *Controller) pickNext(p *proc) (grid.Coord, bool) {
	withSpare, withHead := c.spareBuf[:0], c.headBuf[:0]
	c.nbrBuf = c.sys.Neighbors(c.nbrBuf[:0], p.cur)
	for _, nb := range c.nbrBuf {
		if c.visitedHas(p, nb) || nb == p.hole {
			continue
		}
		if c.net.HeadOf(nb) == node.Invalid || c.isDeparting(nb) {
			continue
		}
		if c.net.HasSpare(nb) {
			withSpare = append(withSpare, nb)
		} else {
			withHead = append(withHead, nb)
		}
	}
	c.spareBuf, c.headBuf = withSpare, withHead
	if len(withSpare) > 0 {
		return withSpare[c.rng.Intn(len(withSpare))], true
	}
	if len(withHead) > 0 {
		return withHead[c.rng.Intn(len(withHead))], true
	}
	return grid.Coord{}, false
}

// detect finds fresh holes and samples the initiator set of each: every
// neighboring head flips a coin, with at least one initiator forced (the
// redundancy of unsynchronized 1-hop detection).
//
// The candidate holes come either from the reference full scan or from
// the standing set maintained off the network's vacancy journal; the two
// visit the same cells in the same order (cell index), with every
// eligibility condition evaluated lazily at visit time, so the arms are
// bit-identical — enforced by the lockstep differential test.
func (c *Controller) detect() error {
	c.vacBuf = c.vacantCandidates()
	for _, v := range c.vacBuf {
		vidx := c.sys.Index(v)
		if dense.Has(c.detected, vidx) {
			continue
		}
		if c.claimPID[vidx] != 0 {
			continue
		}
		heads := c.headsBuf[:0]
		c.nbrBuf = c.sys.Neighbors(c.nbrBuf[:0], v)
		for _, nb := range c.nbrBuf {
			if c.net.HeadOf(nb) != node.Invalid && !c.isDeparting(nb) {
				heads = append(heads, nb)
			}
		}
		c.headsBuf = heads
		if len(heads) == 0 {
			continue // no observer yet; retry next round
		}
		initiators := c.initsBuf[:0]
		for _, h := range heads {
			if c.rng.Bool(c.initProb) {
				initiators = append(initiators, h)
			}
		}
		if len(initiators) == 0 {
			initiators = append(initiators, heads[c.rng.Intn(len(heads))])
		}
		c.initsBuf = initiators
		dense.Set(c.detected, vidx)
		for _, g := range initiators {
			if c.isDeparting(g) {
				continue
			}
			if err := c.initiate(g, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// vacantCandidates returns the current vacant cells in cell-index order.
// The full scan recomputes them from the cell registry, O(cells); the
// event-driven path folds the vacancy journal into the standing hole set
// and sorts it by index — the same order at O(holes) per round.
func (c *Controller) vacantCandidates() []grid.Coord {
	if c.fullScan {
		return c.net.VacantCells(c.vacBuf[:0])
	}
	c.eventBuf = c.net.DrainVacancyEvents(c.eventBuf[:0])
	for _, g := range c.eventBuf {
		if c.net.IsVacant(g) {
			c.holeAdd(g)
		} else {
			c.holeRemove(g)
		}
	}
	buf := append(c.vacBuf[:0], c.holeList...)
	slices.SortFunc(buf, func(a, b grid.Coord) int { return c.sys.Index(a) - c.sys.Index(b) })
	return buf
}

// initiate starts one AR process for the hole at v from the neighboring
// head grid g.
func (c *Controller) initiate(g, v grid.Coord) error {
	pid := c.col.StartProcess(v, c.net.Round())
	// Grow the flat visited arena by one process's stride; stale
	// contents past nvis are never read.
	need := (pid + 1) * c.maxHops
	if cap(c.visited) < need {
		c.visited = slices.Grow(c.visited, need-len(c.visited))
	}
	c.visited = c.visited[:need]
	c.procs = append(c.procs, proc{id: pid, hole: v, cur: g, hops: 1})
	c.active++
	p := &c.procs[pid]
	c.markVisited(p, g)
	c.col.RecordHop(pid)
	return c.serveRequest(p, v)
}

func (c *Controller) finish(p *proc, outcome metrics.Outcome) {
	c.col.Finish(p.id, outcome, c.net.Round())
	p.done = true
	c.active--
}

// Finalize marks all still-active processes failed; call it when a run
// hits its round budget.
func (c *Controller) Finalize() {
	for i := range c.procs {
		if p := &c.procs[i]; !p.done {
			c.finish(p, metrics.Failed)
		}
	}
}

// ResetFailed clears the claims of dead processes and the detected marks
// of still-vacant cells, so holes AR gave up on are sampled afresh —
// e.g. after new spares arrive in a dynamic scenario.
func (c *Controller) ResetFailed() {
	for idx, pid := range c.claimPID {
		if pid != 0 && !c.alive(int(pid-1)) {
			c.claimPID[idx] = 0
		}
	}
	for w, word := range c.detected {
		for word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if c.net.IsVacant(c.sys.CoordAt(idx)) {
				dense.Clear(c.detected, idx)
			}
		}
	}
}

// AuditClaims checks AR's bookkeeping invariants and returns sorted
// human-readable violations (empty = clean), for a converged controller:
// a claim owned by a dead process must sit on a vacant cell (the
// abandoned travelling vacancy the paper reports as AR's robustness
// gap — on an occupied cell it would be a leak), and the event-driven
// detector's standing hole set must agree with a full vacancy scan.
func (c *Controller) AuditClaims() []string {
	var bad []string
	for idx, pid := range c.claimPID {
		if pid == 0 {
			continue
		}
		if g := c.sys.CoordAt(idx); !c.alive(int(pid-1)) && !c.net.IsVacant(g) {
			bad = append(bad, fmt.Sprintf(
				"ar: claim on occupied cell %v owned by dead process %d", g, int(pid-1)))
		}
	}
	if !c.fullScan {
		// Cells with undrained journal flips are lag, not disagreement: a
		// mover filled them during the final detect pass, after its drain;
		// the next drain would resync. See core.Controller.AuditClaims.
		for _, g := range c.holeList {
			if !c.net.IsVacant(g) && !c.net.VacancyFlipPending(g) {
				bad = append(bad, fmt.Sprintf(
					"ar: standing hole set contains occupied cell %v", g))
			}
		}
		for _, g := range c.net.VacantCells(nil) {
			if c.holePos[c.sys.Index(g)] != 0 || c.net.VacancyFlipPending(g) {
				continue
			}
			bad = append(bad, fmt.Sprintf(
				"ar: vacant cell %v missing from standing hole set", g))
		}
	}
	slices.Sort(bad)
	return bad
}
