package figures

import (
	"math"
	"testing"

	"wsncover/internal/analytic"
	"wsncover/internal/plotdata"
)

func TestFig3Shapes(t *testing.T) {
	a, b, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.X) != 140 {
		t.Errorf("fig3a points = %d, want 140", len(a.X))
	}
	if a.X[0] != 1 || a.X[len(a.X)-1] != 140 {
		t.Errorf("fig3a x range = %v..%v", a.X[0], a.X[len(a.X)-1])
	}
	if b.X[0] != 10 || b.X[len(b.X)-1] != 1400 {
		t.Errorf("fig3b x range = %v..%v", b.X[0], b.X[len(b.X)-1])
	}
	// Monotone decreasing curves.
	for _, tb := range []*plotdata.Table{a, b} {
		y := tb.Series[0].Y
		for i := 1; i < len(y); i++ {
			if y[i] > y[i-1]+1e-9 {
				t.Fatalf("%s: not non-increasing at %d", tb.Title, i)
			}
		}
	}
	// Anchor: N=12 on 4x5 gives 2.0139.
	if got := a.Series[0].Y[11]; math.Abs(got-2.0139) > 5e-4 {
		t.Errorf("fig3a anchor = %v, want 2.0139", got)
	}
}

func TestFig5IsScaledFig3(t *testing.T) {
	f3a, _, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	f5a, _, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// Distance = moves * 1.08 * 10.
	for i := range f5a.X {
		want := f3a.Series[0].Y[i] * analytic.MeanHopDistanceFactor * 10
		if math.Abs(f5a.Series[0].Y[i]-want) > 1e-9 {
			t.Fatalf("fig5a[%d] = %v, want %v", i, f5a.Series[0].Y[i], want)
		}
	}
}

func TestRunExperimentalSmall(t *testing.T) {
	exp, err := RunExperimental(Config{
		Trials: 6,
		Seed:   42,
		Ns:     []int{20, 200},
		Cols:   8, Rows: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	tables := []*plotdata.Table{exp.Fig6a, exp.Fig6b, exp.Fig7a, exp.Fig7b, exp.Fig8a, exp.Fig8b}
	for _, tb := range tables {
		if tb == nil {
			t.Fatal("missing table")
		}
		if len(tb.X) != 2 {
			t.Errorf("%s: x points = %d", tb.Title, len(tb.X))
		}
		for _, s := range tb.Series {
			if len(s.Y) != 2 {
				t.Errorf("%s/%s: y points = %d", tb.Title, s.Label, len(s.Y))
			}
		}
	}
	// Fig6a: SR initiates exactly Trials processes; AR strictly more.
	srProcs := exp.Fig6a.Series[1]
	arProcs := exp.Fig6a.Series[0]
	for i := range srProcs.Y {
		if srProcs.Y[i] != 6 {
			t.Errorf("SR processes = %v, want 6", srProcs.Y[i])
		}
		if arProcs.Y[i] <= srProcs.Y[i] {
			t.Errorf("AR processes %v should exceed SR %v", arProcs.Y[i], srProcs.Y[i])
		}
	}
	// Fig6b: SR success is 100 everywhere.
	for _, v := range exp.Fig6b.Series[1].Y {
		if v != 100 {
			t.Errorf("SR success = %v", v)
		}
	}
	// Fig7b analytical uses L=63 for 8x8; spot-check the first point.
	m, err := analytic.Moves(20, 63)
	if err != nil {
		t.Fatal(err)
	}
	if got := exp.Fig7b.Series[0].Y[0]; math.Abs(got-6*m) > 1e-9 {
		t.Errorf("fig7b[0] = %v, want %v", got, 6*m)
	}
	// Fig8b = fig7b * 1.08 * r.
	r := 10.0 / math.Sqrt(5)
	want := exp.Fig7b.Series[0].Y[0] * 1.08 * r
	if got := exp.Fig8b.Series[0].Y[0]; math.Abs(got-want) > 1e-6 {
		t.Errorf("fig8b[0] = %v, want %v", got, want)
	}
}

func TestRunExperimentalDualPathUsesCorollary2(t *testing.T) {
	exp, err := RunExperimental(Config{
		Trials: 3,
		Seed:   7,
		Ns:     []int{10},
		Cols:   5, Rows: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := analytic.Moves(10, 23) // L = 5*5-2 per Corollary 2
	if err != nil {
		t.Fatal(err)
	}
	if got := exp.Fig7b.Series[0].Y[0]; math.Abs(got-3*m) > 1e-9 {
		t.Errorf("dual-path analytic = %v, want %v", got, 3*m)
	}
}

func TestAllSmall(t *testing.T) {
	tables, err := All(Config{Trials: 2, Seed: 1, Ns: []int{30}, Cols: 6, Rows: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig3a", "fig3b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b"}
	for _, k := range want {
		if tables[k] == nil {
			t.Errorf("missing table %s", k)
		}
	}
	if len(tables) != len(want) {
		t.Errorf("tables = %d, want %d", len(tables), len(want))
	}
}

func TestRangeInts(t *testing.T) {
	got := rangeInts(2, 10, 3)
	want := []int{2, 5, 8}
	if len(got) != len(want) {
		t.Fatalf("rangeInts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rangeInts = %v, want %v", got, want)
		}
	}
}
