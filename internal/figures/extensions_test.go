package figures

import "testing"

func TestScalabilitySmall(t *testing.T) {
	tb, err := Scalability(ScalabilityConfig{
		Sizes:        []int{6, 8},
		SpareDensity: 0.8,
		Trials:       6,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 2 || len(tb.Series) != 2 {
		t.Fatalf("table shape: %d x %d", len(tb.X), len(tb.Series))
	}
	// At constant density, SR's per-replacement cost must stay bounded:
	// the 8x8 cost must not blow up versus 6x6 (Theorem 2 predicts near
	// flatness; allow 2x slack for small-sample noise).
	sr := tb.Series[0].Y
	if sr[1] > 2*sr[0]+2 {
		t.Errorf("SR moves grew from %v to %v; scalability suspect", sr[0], sr[1])
	}
	for _, y := range sr {
		if y < 1 {
			t.Errorf("SR moves per replacement %v below 1", y)
		}
	}
}

func TestScalabilityDefaultsApplied(t *testing.T) {
	// Tiny trial count keeps the default-size sweep fast enough.
	tb, err := Scalability(ScalabilityConfig{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 5 {
		t.Errorf("default sizes = %d points", len(tb.X))
	}
}

func TestMultiHoleSmall(t *testing.T) {
	tb, err := MultiHole(MultiHoleConfig{
		Holes:  []int{1, 4},
		Spares: 40,
		Trials: 8,
		Seed:   13,
	})
	if err != nil {
		t.Fatal(err)
	}
	sr := tb.Series[0].Y
	ar := tb.Series[1].Y
	// SR with 40 spares covers 1 and 4 holes in every trial.
	for i, v := range sr {
		if v != 100 {
			t.Errorf("SR recovery at point %d = %v%%, want 100", i, v)
		}
	}
	// AR must not beat SR anywhere.
	for i := range ar {
		if ar[i] > sr[i] {
			t.Errorf("AR recovery %v%% above SR %v%% at point %d", ar[i], sr[i], i)
		}
	}
}
