// Package figures regenerates the data series behind every evaluation
// figure of the paper (Figures 3, 5, 6, 7, 8). Analytical figures come
// from the Theorem 2 model; experimental figures come from seeded
// simulation sweeps over the spare count N on the paper's 16x16 grid.
//
// Figure index (see DESIGN.md and EXPERIMENTS.md):
//
//	fig3a / fig3b : analytical E[moves] per replacement, 4x5 (L=19) and
//	                16x16 (L=255) grid systems
//	fig5a / fig5b : estimated total moving distance per replacement, r=10
//	fig6a         : replacement processes initiated, AR vs SR
//	fig6b         : process success rate (%), AR vs SR
//	fig7a / fig7b : experimental vs analytical number of node movements
//	fig8a / fig8b : experimental vs analytical total moving distance (m)
package figures

import (
	"fmt"

	"wsncover/internal/analytic"
	"wsncover/internal/plotdata"
	"wsncover/internal/sim"
)

// Config parameterizes the experimental sweeps.
type Config struct {
	// Trials per (scheme, N) point; the paper aggregates on the order of
	// a hundred runs per point. Zero means 100.
	Trials int
	// Seed anchors all trials; trial t uses Seed+t for both schemes so
	// they face identical layouts.
	Seed int64
	// Ns overrides the swept spare counts; nil means sim.PaperNs().
	Ns []int
	// Cols and Rows override the grid; zero means the paper's 16x16.
	Cols, Rows int
	// Holes per trial; zero means 1.
	Holes int
	// Workers sizes the trial worker pool of the underlying experiment
	// engine; values below 1 mean GOMAXPROCS. Figure data is
	// bit-identical for any worker count.
	Workers int
}

func (c *Config) normalize() {
	if c.Trials == 0 {
		c.Trials = 100
	}
	if len(c.Ns) == 0 {
		c.Ns = sim.PaperNs()
	}
	if c.Cols == 0 {
		c.Cols = 16
	}
	if c.Rows == 0 {
		c.Rows = 16
	}
	if c.Holes == 0 {
		c.Holes = 1
	}
}

// Fig3 produces the analytical movement-count curves of Figure 3:
// (a) the 4x5 grid system (L=19), N from 1 to 140;
// (b) the 16x16 grid system (L=255), N from 10 to 1400.
func Fig3() (a, b *plotdata.Table, err error) {
	nsA := rangeInts(1, 140, 1)
	ya, err := analytic.Series(nsA, 19)
	if err != nil {
		return nil, nil, err
	}
	a, err = plotdata.NewTable(
		"Fig 3(a): analytical #moves per replacement, 4x5 grid (L=19)",
		"N", "# of moves",
		plotdata.IntsToFloats(nsA),
		plotdata.Series{Label: "Analytical", Y: ya},
	)
	if err != nil {
		return nil, nil, err
	}
	nsB := rangeInts(10, 1400, 10)
	yb, err := analytic.Series(nsB, 255)
	if err != nil {
		return nil, nil, err
	}
	b, err = plotdata.NewTable(
		"Fig 3(b): analytical #moves per replacement, 16x16 grid (L=255)",
		"N", "# of moves",
		plotdata.IntsToFloats(nsB),
		plotdata.Series{Label: "Analytical", Y: yb},
	)
	return a, b, err
}

// Fig5 produces the moving-distance estimates of Figure 5 with r = 10.
func Fig5() (a, b *plotdata.Table, err error) {
	const r = 10.0
	nsA := rangeInts(1, 140, 1)
	ya, err := analytic.DistanceSeries(nsA, 19, r)
	if err != nil {
		return nil, nil, err
	}
	a, err = plotdata.NewTable(
		"Fig 5(a): estimated total moving distance per replacement, 4x5 grid (r=10)",
		"N", "total moving distance",
		plotdata.IntsToFloats(nsA),
		plotdata.Series{Label: "Estimate", Y: ya},
	)
	if err != nil {
		return nil, nil, err
	}
	nsB := rangeInts(10, 1000, 10)
	yb, err := analytic.DistanceSeries(nsB, 255, r)
	if err != nil {
		return nil, nil, err
	}
	b, err = plotdata.NewTable(
		"Fig 5(b): estimated total moving distance per replacement, 16x16 grid (r=10)",
		"N", "total moving distance",
		plotdata.IntsToFloats(nsB),
		plotdata.Series{Label: "Estimate", Y: yb},
	)
	return a, b, err
}

// Experimental bundles the tables of Figures 6, 7, and 8, which share the
// same pair of simulation sweeps (one per scheme).
type Experimental struct {
	Fig6a *plotdata.Table // replacement processes initiated
	Fig6b *plotdata.Table // success rate (%)
	Fig7a *plotdata.Table // experimental #moves, AR vs SR
	Fig7b *plotdata.Table // analytical #moves, SR
	Fig8a *plotdata.Table // experimental total distance, AR vs SR
	Fig8b *plotdata.Table // analytical total distance, SR
}

// RunExperimental executes the SR and AR sweeps on the parallel
// experiment engine and assembles Figures 6-8.
func RunExperimental(cfg Config) (*Experimental, error) {
	cfg.normalize()
	sweep := func(kind sim.SchemeKind) ([]sim.SweepPoint, error) {
		return sim.RunSweep(sim.SweepConfig{
			Template: sim.TrialConfig{
				Cols: cfg.Cols, Rows: cfg.Rows, Scheme: kind, Holes: cfg.Holes,
			},
			Ns:       cfg.Ns,
			Trials:   cfg.Trials,
			BaseSeed: cfg.Seed,
			Workers:  cfg.Workers,
		})
	}
	srPts, err := sweep(sim.SR)
	if err != nil {
		return nil, fmt.Errorf("figures: SR sweep: %w", err)
	}
	arPts, err := sweep(sim.AR)
	if err != nil {
		return nil, fmt.Errorf("figures: AR sweep: %w", err)
	}

	x := plotdata.IntsToFloats(cfg.Ns)
	pick := func(pts []sim.SweepPoint, f func(sim.SweepPoint) float64) []float64 {
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = f(p)
		}
		return out
	}

	out := &Experimental{}
	out.Fig6a, err = plotdata.NewTable(
		fmt.Sprintf("Fig 6(a): replacement processes initiated (%d trials/point)", cfg.Trials),
		"N", "# of replacement processes",
		x,
		plotdata.Series{Label: "AR", Y: pick(arPts, func(p sim.SweepPoint) float64 { return float64(p.Summary.Initiated) })},
		plotdata.Series{Label: "SR", Y: pick(srPts, func(p sim.SweepPoint) float64 { return float64(p.Summary.Initiated) })},
	)
	if err != nil {
		return nil, err
	}
	out.Fig6b, err = plotdata.NewTable(
		"Fig 6(b): replacement success rate (%)",
		"N", "percentage",
		x,
		plotdata.Series{Label: "AR", Y: pick(arPts, func(p sim.SweepPoint) float64 { return p.Summary.SuccessRate() })},
		plotdata.Series{Label: "SR", Y: pick(srPts, func(p sim.SweepPoint) float64 { return p.Summary.SuccessRate() })},
	)
	if err != nil {
		return nil, err
	}
	out.Fig7a, err = plotdata.NewTable(
		"Fig 7(a): number of node movements (experimental)",
		"N", "# of node moves",
		x,
		plotdata.Series{Label: "AR", Y: pick(arPts, func(p sim.SweepPoint) float64 { return float64(p.Summary.Moves) })},
		plotdata.Series{Label: "SR", Y: pick(srPts, func(p sim.SweepPoint) float64 { return float64(p.Summary.Moves) })},
	)
	if err != nil {
		return nil, err
	}

	l := cfg.Cols*cfg.Rows - 1
	if cfg.Cols%2 == 1 && cfg.Rows%2 == 1 {
		l = cfg.Cols*cfg.Rows - 2 // Corollary 2
	}
	anMoves := make([]float64, len(cfg.Ns))
	for i, n := range cfg.Ns {
		m, err := analytic.Moves(n, l)
		if err != nil {
			return nil, err
		}
		anMoves[i] = m * float64(cfg.Trials) * float64(cfg.Holes)
	}
	out.Fig7b, err = plotdata.NewTable(
		"Fig 7(b): number of node movements (analytical SR)",
		"N", "# of node moves",
		x,
		plotdata.Series{Label: "SR", Y: anMoves},
	)
	if err != nil {
		return nil, err
	}

	out.Fig8a, err = plotdata.NewTable(
		"Fig 8(a): total moving distance of nodes, meters (experimental)",
		"N", "total moving distance",
		x,
		plotdata.Series{Label: "AR", Y: pick(arPts, func(p sim.SweepPoint) float64 { return p.Summary.Distance })},
		plotdata.Series{Label: "SR", Y: pick(srPts, func(p sim.SweepPoint) float64 { return p.Summary.Distance })},
	)
	if err != nil {
		return nil, err
	}

	r := sim.PaperCommRange / 2.2360679774997896964091736687747
	anDist := make([]float64, len(anMoves))
	for i := range anMoves {
		anDist[i] = anMoves[i] * analytic.MeanHopDistanceFactor * r
	}
	out.Fig8b, err = plotdata.NewTable(
		"Fig 8(b): total moving distance of nodes, meters (analytical SR)",
		"N", "total moving distance",
		x,
		plotdata.Series{Label: "SR", Y: anDist},
	)
	return out, err
}

// All returns every figure table keyed by its id, running the experimental
// sweep with cfg.
func All(cfg Config) (map[string]*plotdata.Table, error) {
	f3a, f3b, err := Fig3()
	if err != nil {
		return nil, err
	}
	f5a, f5b, err := Fig5()
	if err != nil {
		return nil, err
	}
	exp, err := RunExperimental(cfg)
	if err != nil {
		return nil, err
	}
	return map[string]*plotdata.Table{
		"fig3a": f3a, "fig3b": f3b,
		"fig5a": f5a, "fig5b": f5b,
		"fig6a": exp.Fig6a, "fig6b": exp.Fig6b,
		"fig7a": exp.Fig7a, "fig7b": exp.Fig7b,
		"fig8a": exp.Fig8a, "fig8b": exp.Fig8b,
	}, nil
}

// rangeInts returns lo, lo+step, ..., capped at hi.
func rangeInts(lo, hi, step int) []int {
	var out []int
	for n := lo; n <= hi; n += step {
		out = append(out, n)
	}
	return out
}
