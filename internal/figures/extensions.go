package figures

import (
	"fmt"

	"wsncover/internal/plotdata"
	"wsncover/internal/sim"
)

// Extension experiments beyond the paper's figures: scalability in the
// grid size and robustness under simultaneous holes. These back the
// ablation discussion in EXPERIMENTS.md.

// ScalabilityConfig parameterizes the grid-size sweep.
type ScalabilityConfig struct {
	// Sizes lists square grid side lengths to evaluate.
	Sizes []int
	// SpareDensity is the spare count per cell (N = density * cells).
	SpareDensity float64
	// Trials per point; zero means 30.
	Trials int
	// Seed anchors the trials.
	Seed int64
	// Workers sizes the trial worker pool; below 1 means GOMAXPROCS.
	Workers int
}

// Scalability sweeps the grid size at constant spare density and reports
// mean movements per replacement for SR and AR. Under Theorem 2, constant
// density keeps SR's per-replacement cost nearly flat while the field
// grows — the scheme's scalability argument.
func Scalability(cfg ScalabilityConfig) (*plotdata.Table, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{8, 12, 16, 20, 24}
	}
	if cfg.SpareDensity == 0 {
		cfg.SpareDensity = 0.75
	}
	if cfg.Trials == 0 {
		cfg.Trials = 30
	}
	x := make([]float64, len(cfg.Sizes))
	srY := make([]float64, len(cfg.Sizes))
	arY := make([]float64, len(cfg.Sizes))
	for i, size := range cfg.Sizes {
		x[i] = float64(size)
		n := int(cfg.SpareDensity * float64(size*size))
		for _, kind := range []sim.SchemeKind{sim.SR, sim.AR} {
			pts, err := sim.RunSweep(sim.SweepConfig{
				Template: sim.TrialConfig{Cols: size, Rows: size, Scheme: kind},
				Ns:       []int{n},
				Trials:   cfg.Trials,
				BaseSeed: cfg.Seed,
				Workers:  cfg.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("figures: scalability %dx%d: %w", size, size, err)
			}
			mean := pts[0].MeanMovesPerTrial()
			if kind == sim.SR {
				srY[i] = mean
			} else {
				arY[i] = mean
			}
		}
	}
	return plotdata.NewTable(
		fmt.Sprintf("Extension: moves per replacement vs grid size (density %.2f spares/cell)",
			cfg.SpareDensity),
		"grid side", "moves per replacement",
		x,
		plotdata.Series{Label: "SR", Y: srY},
		plotdata.Series{Label: "AR", Y: arY},
	)
}

// MultiHoleConfig parameterizes the simultaneous-hole sweep.
type MultiHoleConfig struct {
	// Holes lists the simultaneous hole counts to evaluate.
	Holes []int
	// Spares is the fixed spare budget.
	Spares int
	// Trials per point; zero means 30.
	Trials int
	// Seed anchors the trials.
	Seed int64
	// Workers sizes the trial worker pool; below 1 means GOMAXPROCS.
	Workers int
}

// MultiHole sweeps the number of simultaneous holes on the paper's 16x16
// grid and reports the recovery rate (trials ending with complete
// coverage) for SR and AR. SR's conflict-free processes keep recovering
// as long as spares outnumber holes; AR's redundant processes waste
// spares and abandon displaced vacancies.
func MultiHole(cfg MultiHoleConfig) (*plotdata.Table, error) {
	if len(cfg.Holes) == 0 {
		cfg.Holes = []int{1, 2, 4, 8, 12}
	}
	if cfg.Spares == 0 {
		cfg.Spares = 60
	}
	if cfg.Trials == 0 {
		cfg.Trials = 30
	}
	x := make([]float64, len(cfg.Holes))
	srY := make([]float64, len(cfg.Holes))
	arY := make([]float64, len(cfg.Holes))
	for i, h := range cfg.Holes {
		x[i] = float64(h)
		for _, kind := range []sim.SchemeKind{sim.SR, sim.AR} {
			pts, err := sim.RunSweep(sim.SweepConfig{
				Template: sim.TrialConfig{
					Cols: 16, Rows: 16, Scheme: kind, Holes: h,
				},
				Ns:       []int{cfg.Spares},
				Trials:   cfg.Trials,
				BaseSeed: cfg.Seed,
				Workers:  cfg.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("figures: multihole h=%d: %w", h, err)
			}
			rate := 100 * float64(pts[0].Recovered) / float64(pts[0].Trials)
			if kind == sim.SR {
				srY[i] = rate
			} else {
				arY[i] = rate
			}
		}
	}
	return plotdata.NewTable(
		fmt.Sprintf("Extension: full-recovery rate vs simultaneous holes (N=%d)", cfg.Spares),
		"simultaneous holes", "recovered trials (%)",
		x,
		plotdata.Series{Label: "SR", Y: srY},
		plotdata.Series{Label: "AR", Y: arY},
	)
}
