package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/telemetry"
)

// smallSpec is a campaign quick enough for request/response tests.
func smallSpec() sim.CampaignSpec {
	return sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR},
		Grids:      []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares:     []int{4, 8},
		Replicates: 2,
		BaseSeed:   11,
	}
}

// multiCellSpec has several (group, N) cells, so a run held mid-way by
// testTrialHook has some cells checkpointed and some outstanding:
// 2 schemes x 3 spares = 6 cells of 4 replicates, 24 trials. Workers
// is pinned to 1 so the single engine worker stops at the very trial
// the hook blocks on — no other goroutine can run ahead.
func multiCellSpec() sim.CampaignSpec {
	return sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR, sim.AR},
		Grids:      []sim.GridSize{{Cols: 12, Rows: 12}},
		Spares:     []int{5, 10, 15},
		Replicates: 4,
		BaseSeed:   2008,
		Workers:    1,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestDaemon builds a daemon over a temp store and registers
// cleanup; opts.Store is filled in.
func newTestDaemon(t *testing.T, opts Options) (*Daemon, *Store) {
	t.Helper()
	store, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = store
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Drain)
	return d, store
}

// postSpec submits a spec and decodes the campaign view.
func postSpec(t *testing.T, ts *httptest.Server, spec sim.CampaignSpec, name string) (View, int) {
	t.Helper()
	url := ts.URL + "/api/v1/campaigns"
	if name != "" {
		url += "?name=" + name
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(mustJSON(t, spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding submit response (status %d): %v", resp.StatusCode, err)
	}
	return v, resp.StatusCode
}

// getJSON fetches a URL and decodes its JSON body into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s (status %d): %v", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// waitStatus polls a campaign until it reaches want (or any terminal
// status, which then fails the test if it is not want).
func waitStatus(t *testing.T, ts *httptest.Server, id int, want string) View {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var v View
		getJSON(t, fmt.Sprintf("%s/api/v1/campaigns/%d", ts.URL, id), &v)
		if v.Status == want {
			return v
		}
		switch v.Status {
		case StatusCompleted, StatusFailed, StatusAborted, StatusCached:
			t.Fatalf("campaign %d ended %q (err %q), want %q", id, v.Status, v.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %d never reached %q", id, want)
	return View{}
}

// referenceManifest runs the campaign in-process the way cmd/sweep
// does and serializes the manifest — the byte-level oracle stored
// manifests must match.
func referenceManifest(t *testing.T, spec sim.CampaignSpec, name string) []byte {
	t.Helper()
	spec = spec.Normalized()
	acc := experiment.NewAccumulator()
	err := sim.RunCampaignStream(context.Background(), spec, experiment.Options{Workers: spec.Workers},
		func(_ sim.TrialJob, s experiment.Sample) error {
			acc.Add(s)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	m, err := experiment.NewManifest(name, spec, spec.NumJobs(), spec.Workers, acc.Points())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	d, _ := newTestDaemon(t, Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":      "{",
		"unknown field": `{"schemes":["SR"],"turbo":true}`,
		"shard pinned":  `{"replicates":10,"shard_first":2,"shard_count":4}`,
		"bad workload":  `{"workloads":[{"kind":"earthquake"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if _, _, err := d.Submit([]byte(`{"replicates":10,"shard_first":2,"shard_count":4}`), ""); !errors.Is(err, ErrBadSpec) {
		t.Errorf("Submit(shard spec) = %v, want ErrBadSpec", err)
	}
}

// TestSubmitUnknownWorkloadNamesKind pins the 400 body: a spec naming
// an unregistered workload kind is refused with an error that echoes
// the kind and lists the registered ones, so the caller can see which
// entry was wrong without consulting the server's source.
func TestSubmitUnknownWorkloadNamesKind(t *testing.T) {
	d, _ := newTestDaemon(t, Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"schemes":["SR"],"workloads":[{"kind":"meteor"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, `"meteor"`) {
		t.Errorf("error body %q does not name the unknown kind", body.Error)
	}
	if !strings.Contains(body.Error, "registered:") {
		t.Errorf("error body %q does not list the registered kinds", body.Error)
	}
}

// TestServiceEndToEnd drives the whole happy path over HTTP: submit,
// stream progress, fetch the stored manifest, verify it byte-matches a
// direct in-process run, then prove the second submission — including
// one with a different worker count — is served from the store without
// executing a trial.
func TestServiceEndToEnd(t *testing.T) {
	d, store := newTestDaemon(t, Options{})
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz = %d", code)
	}

	spec := smallSpec()
	v, code := postSpec(t, ts, spec, "e2e")
	if code != http.StatusAccepted {
		t.Fatalf("first submission: status %d, want 202", code)
	}
	if v.ID == 0 || v.SpecHash == "" || v.Name != "e2e" {
		t.Fatalf("submission view = %+v", v)
	}

	// Stream the NDJSON progress feed until the hub closes; the stream
	// must deliver at least one frame and end on a final snapshot with
	// done == total. (A fast campaign may close the hub before we
	// connect — the late-joiner fallback still serves the final frame.)
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/campaigns/%d/events?format=ndjson", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	var frames []telemetry.Snapshot
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad NDJSON frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, snap)
	}
	resp.Body.Close()
	if len(frames) == 0 {
		t.Fatal("event stream delivered no frames")
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Fleet.Done != last.Fleet.Total || last.Fleet.Total != spec.NumJobs() {
		t.Fatalf("last frame = %+v, want final with done == total == %d", last, spec.NumJobs())
	}

	done := waitStatus(t, ts, v.ID, StatusCompleted)
	if done.Manifest == "" || done.ManifestURL == "" {
		t.Fatalf("completed view = %+v, want manifest paths", done)
	}

	// The served manifest must byte-match both the stored file and a
	// direct in-process run of the same campaign — the differential
	// guarantee that makes the store a cache.
	httpResp, err := http.Get(ts.URL + done.ManifestURL)
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil || httpResp.StatusCode != 200 {
		t.Fatalf("GET manifest: status %d, err %v", httpResp.StatusCode, err)
	}
	stored, err := os.ReadFile(done.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, stored) {
		t.Error("served manifest differs from the stored file")
	}
	if ref := referenceManifest(t, spec, "e2e"); !bytes.Equal(stored, ref) {
		t.Error("stored manifest is not byte-identical to a direct in-process run")
	}

	// SSE flavor: a late joiner still sees the final frame.
	sseResp, err := http.Get(fmt.Sprintf("%s/api/v1/campaigns/%d/events", ts.URL, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	sse, _ := io.ReadAll(sseResp.Body)
	sseResp.Body.Close()
	if !strings.Contains(string(sse), "data: {") || !strings.Contains(string(sse), `"final":true`) {
		t.Errorf("SSE replay = %q, want a final data frame", sse)
	}

	// Second submission of the identical spec: served from the store,
	// no trials run, still exactly one run record in the ledger.
	v2, code := postSpec(t, ts, spec, "e2e")
	if code != http.StatusOK || !v2.Cached || v2.Status != StatusCached {
		t.Fatalf("duplicate submission = %+v (status %d), want a cache hit", v2, code)
	}
	if v2.ID == v.ID {
		t.Error("cache hit should register its own campaign identity")
	}
	// A different worker count is execution detail, not science: same
	// hash, same cache entry.
	reworked := spec
	reworked.Workers = 4
	v3, code := postSpec(t, ts, reworked, "e2e-w4")
	if code != http.StatusOK || !v3.Cached || v3.SpecHash != v.SpecHash {
		t.Fatalf("workers=4 submission = %+v (status %d), want the same cache entry", v3, code)
	}
	recs, err := telemetry.ReadLedger(store.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, r := range recs {
		if r.Mode == "sweepd" && r.Status == telemetry.StatusCompleted {
			ran++
		}
	}
	if ran != 1 || len(recs) != 1 {
		t.Errorf("ledger has %d records (%d completed), want exactly 1", len(recs), ran)
	}

	// The cached campaign's event stream ends cleanly and empty.
	evResp, err := http.Get(fmt.Sprintf("%s/api/v1/campaigns/%d/events?format=ndjson", ts.URL, v2.ID))
	if err != nil {
		t.Fatal(err)
	}
	evBody, _ := io.ReadAll(evResp.Body)
	evResp.Body.Close()
	if len(bytes.TrimSpace(evBody)) != 0 {
		t.Errorf("cached campaign event stream = %q, want empty", evBody)
	}

	// Store listing and the self-diff both ride the same store.
	var entries []Entry
	getJSON(t, ts.URL+"/api/v1/manifests", &entries)
	if len(entries) != 1 || entries[0].SpecHash != v.SpecHash || entries[0].Record == nil {
		t.Errorf("manifest listing = %+v", entries)
	}
	var diff struct {
		Equivalent  bool     `json:"equivalent"`
		Differences []string `json:"differences"`
	}
	short := strings.TrimPrefix(v.SpecHash, "sha256:")[:12]
	getJSON(t, ts.URL+"/api/v1/diff?a="+v.SpecHash+"&b="+short, &diff)
	if !diff.Equivalent {
		t.Errorf("self-diff = %+v, want equivalent", diff)
	}

	var all []View
	getJSON(t, ts.URL+"/api/v1/campaigns", &all)
	if len(all) != 3 {
		t.Errorf("campaign list has %d entries, want 3", len(all))
	}
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/999", nil); code != 404 {
		t.Errorf("unknown campaign = %d, want 404", code)
	}
}

// TestDrainAbortsAndResumes exercises the production shutdown path: a
// drain mid-campaign leaves a resumable checkpoint and honest aborted
// ledger records (the running campaign and the queued one), refuses
// new submissions, and a fresh daemon over the same store resumes from
// the checkpoint instead of starting over — finishing with a manifest
// byte-identical to an uninterrupted run.
func TestDrainAbortsAndResumes(t *testing.T) {
	storeDir := filepath.Join(t.TempDir(), "store")
	store, err := OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(Options{Store: store, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Drain)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	// Hold the campaign after its 8th trial — two of six cells complete
	// and checkpointed — until the drain cancels the daemon context.
	// Campaigns run far too fast (tens of milliseconds) for wall-clock
	// racing; the hook makes the mid-run window deterministic.
	held := make(chan struct{})
	testTrialHook = func(_ *Campaign, ran int) {
		if ran == 8 {
			close(held)
			<-d.ctx.Done()
		}
	}
	t.Cleanup(func() { testTrialHook = nil })

	spec := multiCellSpec()
	v, code := postSpec(t, ts, spec, "drainee")
	if code != http.StatusAccepted {
		t.Fatalf("submission: status %d", code)
	}
	<-held

	// With the runner held mid-campaign, a second campaign fills the
	// depth-1 queue and a third bounces with 429.
	queued, code := postSpec(t, ts, smallSpec(), "queued")
	if code != http.StatusAccepted || queued.Status != StatusQueued {
		t.Fatalf("queued submission = %+v (status %d)", queued, code)
	}
	third := smallSpec()
	third.BaseSeed = 999
	if _, code := postSpec(t, ts, third, "bounced"); code != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d, want 429", code)
	}

	d.Drain()

	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while drained = %d, want 503", code)
	}
	if _, code := postSpec(t, ts, third, "refused"); code != http.StatusServiceUnavailable {
		t.Errorf("submission while drained: status %d, want 503", code)
	}
	var aborted View
	getJSON(t, fmt.Sprintf("%s/api/v1/campaigns/%d", ts.URL, v.ID), &aborted)
	if aborted.Status != StatusAborted {
		t.Fatalf("drained campaign status = %q, want aborted", aborted.Status)
	}
	var neverRan View
	getJSON(t, fmt.Sprintf("%s/api/v1/campaigns/%d", ts.URL, queued.ID), &neverRan)
	if neverRan.Status != StatusAborted {
		t.Fatalf("queued campaign status = %q, want aborted", neverRan.Status)
	}

	recs, err := telemetry.ReadLedger(store.LedgerPath())
	if err != nil {
		t.Fatal(err)
	}
	abortedRecs := 0
	for _, r := range recs {
		if r.Status == telemetry.StatusAborted {
			abortedRecs++
		}
	}
	if abortedRecs != 2 {
		t.Fatalf("ledger has %d aborted records, want 2 (running + queued): %+v", abortedRecs, recs)
	}

	// The checkpoint is exactly the two cells the hook allowed: a
	// strict prefix of the campaign.
	runDir, err := store.RunDir(v.SpecHash)
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(runDir, "checkpoint.json")
	var ck experiment.Manifest
	ckData, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(ckData, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Jobs != 8 {
		t.Fatalf("checkpoint records %d of %d jobs, want the 8 the hook admitted", ck.Jobs, spec.NumJobs())
	}

	// A fresh daemon over the same store resumes: the campaign's event
	// total is only the remaining work, and the finished manifest is
	// byte-identical to an uninterrupted run. The hook must not carry
	// over — the resumed run re-crosses ran == 8.
	testTrialHook = nil
	d2, err := New(Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Drain()
	ts2 := httptest.NewServer(d2.Handler())
	defer ts2.Close()
	v2, code := postSpec(t, ts2, spec, "drainee")
	if code != http.StatusAccepted {
		t.Fatalf("resubmission: status %d", code)
	}
	finished := waitStatus(t, ts2, v2.ID, StatusCompleted)

	evResp, err := http.Get(fmt.Sprintf("%s/api/v1/campaigns/%d/events?format=ndjson", ts2.URL, v2.ID))
	if err != nil {
		t.Fatal(err)
	}
	evData, _ := io.ReadAll(evResp.Body)
	evResp.Body.Close()
	lines := bytes.Split(bytes.TrimSpace(evData), []byte("\n"))
	var lastSnap telemetry.Snapshot
	if err := json.Unmarshal(lines[len(lines)-1], &lastSnap); err != nil {
		t.Fatalf("last event frame %q: %v", lines[len(lines)-1], err)
	}
	if want := spec.NumJobs() - 8; lastSnap.Fleet.Total != want {
		t.Errorf("resumed run's total = %d, want %d (checkpointed cells skipped)",
			lastSnap.Fleet.Total, want)
	}

	stored, err := os.ReadFile(finished.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if ref := referenceManifest(t, spec, "drainee"); !bytes.Equal(stored, ref) {
		t.Error("resumed manifest is not byte-identical to an uninterrupted run")
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint should be cleared after completion (stat err %v)", err)
	}
}

// TestSubmitCoalescesInflight pins the dedupe between queue and cache:
// an identical spec submitted while the first is queued or running
// coalesces onto it instead of double-executing.
func TestSubmitCoalescesInflight(t *testing.T) {
	// Hold the first campaign after its first trial so the duplicate
	// submission provably arrives while it is in flight.
	started := make(chan struct{})
	gate := make(chan struct{})
	var release sync.Once
	testTrialHook = func(_ *Campaign, ran int) {
		if ran == 1 {
			close(started)
			<-gate
		}
	}
	t.Cleanup(func() { testTrialHook = nil })

	d, _ := newTestDaemon(t, Options{})
	t.Cleanup(func() { release.Do(func() { close(gate) }) })
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	spec := smallSpec()
	v1, code1 := postSpec(t, ts, spec, "first")
	if code1 != http.StatusAccepted {
		t.Fatalf("first submission: %d", code1)
	}
	<-started
	v2, code2 := postSpec(t, ts, spec, "second")
	if code2 != http.StatusOK || v2.ID != v1.ID {
		t.Fatalf("second submission = id %d status %d, want coalesced onto id %d with 200",
			v2.ID, code2, v1.ID)
	}
	release.Do(func() { close(gate) })
	waitStatus(t, ts, v1.ID, StatusCompleted)
}

func TestNewValidatesFleetOptions(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Store: store, FleetSlots: 4}); err == nil {
		t.Error("FleetSlots without WorkerBin must be rejected")
	}
	if _, err := New(Options{}); err == nil {
		t.Error("nil store must be rejected")
	}
}
