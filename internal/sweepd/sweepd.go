package sweepd

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"wsncover/internal/sim"
	"wsncover/internal/telemetry"
)

// Campaign lifecycle statuses, as served by the API.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
	StatusAborted   = "aborted"
	// StatusCached marks a submission answered straight from the store:
	// no trials ran, the manifest was already content-addressed.
	StatusCached = "cached"
)

// Sentinel errors Submit returns; the HTTP layer maps them to status
// codes (400, 503, 429).
var (
	// ErrBadSpec wraps spec decode and validation failures.
	ErrBadSpec = errors.New("sweepd: bad campaign spec")
	// ErrDraining rejects submissions while the daemon shuts down.
	ErrDraining = errors.New("sweepd: draining, not accepting campaigns")
	// ErrQueueFull rejects submissions when the FIFO queue is at depth.
	ErrQueueFull = errors.New("sweepd: job queue full")
)

// Options configures a Daemon.
type Options struct {
	// Store is the content-addressed manifest store (required).
	Store *Store
	// Concurrency is how many campaigns run at once; the default is 1 —
	// a campaign already saturates the box via its own worker pool.
	Concurrency int
	// QueueDepth bounds the FIFO of accepted-but-not-started campaigns
	// (default 32). A full queue rejects with ErrQueueFull rather than
	// buffering without bound.
	QueueDepth int
	// FleetSlots > 1 executes each campaign as a dispatch fleet of that
	// many worker subprocesses instead of in-process; it requires
	// WorkerBin, the sweep binary to launch (the daemon must not re-exec
	// itself — it is not a worker).
	FleetSlots int
	WorkerBin  string
	// Pprof opts the /debug/pprof endpoints into the API mux; off by
	// default because the service port is often reachable by more than
	// the operator.
	Pprof bool
	// Logger receives lifecycle events; nil discards them.
	Logger *slog.Logger
}

// Campaign is one submitted campaign's full state. Fields are guarded
// by the daemon's mutex; View snapshots them for serving.
type Campaign struct {
	ID       int
	Name     string
	SpecHash string
	Spec     sim.CampaignSpec

	Status       string
	Cached       bool
	Err          string
	ManifestPath string
	Submitted    time.Time
	Started      time.Time
	Finished     time.Time

	// hub streams the campaign's live progress snapshots; nil for
	// cache-hit campaigns, which never run.
	hub *telemetry.Hub
	// done closes when the campaign reaches a terminal status.
	done chan struct{}
}

// View is the JSON shape of one campaign in API responses.
type View struct {
	ID        int       `json:"id"`
	Name      string    `json:"name"`
	SpecHash  string    `json:"spec_hash"`
	Status    string    `json:"status"`
	Cached    bool      `json:"cached,omitempty"`
	Error     string    `json:"error,omitempty"`
	Manifest  string    `json:"manifest,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// ManifestURL and EventsURL are the campaign's API affordances.
	ManifestURL string `json:"manifest_url,omitempty"`
	EventsURL   string `json:"events_url,omitempty"`
}

// Daemon is the campaign service: it owns the store, the job queue,
// and the runner goroutines. Create with New, serve its Handler, stop
// with Drain.
type Daemon struct {
	opts    Options
	store   *Store
	log     *slog.Logger
	started time.Time

	// ctx cancels in-flight campaigns on Drain.
	ctx    context.Context
	cancel context.CancelFunc

	queue chan *Campaign
	wg    sync.WaitGroup

	mu       sync.Mutex
	byID     map[int]*Campaign
	order    []*Campaign
	inflight map[string]*Campaign // spec hash → queued or running campaign
	draining bool
	nextID   int
}

// New starts a daemon's runner goroutines over the given store.
func New(opts Options) (*Daemon, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("sweepd: Options.Store is required")
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 32
	}
	if opts.FleetSlots > 1 && opts.WorkerBin == "" {
		return nil, fmt.Errorf("sweepd: FleetSlots > 1 requires WorkerBin (the daemon is not a sweep worker and must not re-exec itself)")
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		opts:     opts,
		store:    opts.Store,
		log:      opts.Logger,
		started:  time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *Campaign, opts.QueueDepth),
		byID:     make(map[int]*Campaign),
		inflight: make(map[string]*Campaign),
	}
	for i := 0; i < opts.Concurrency; i++ {
		d.wg.Add(1)
		go d.runnerLoop()
	}
	return d, nil
}

// Submit accepts one campaign spec (strict JSON; unknown fields are an
// error), dedupes it against the store and the in-flight set, and
// queues it. It returns the campaign's view and whether a new run was
// actually created: false means the submission was answered by the
// cache or coalesced onto an identical queued/running campaign.
func (d *Daemon) Submit(specJSON []byte, name string) (View, bool, error) {
	var spec sim.CampaignSpec
	if err := sim.UnmarshalSpecJSON(specJSON, &spec); err != nil {
		return View{}, false, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	spec = spec.Normalized()
	if err := spec.ValidateUnsharded(); err != nil {
		return View{}, false, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	hash, err := telemetry.SpecHash(spec)
	if err != nil {
		return View{}, false, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if name == "" {
		name = "campaign-" + strings8(hash)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return View{}, false, ErrDraining
	}
	// Coalesce onto an identical campaign already queued or running: the
	// submitter polls (or streams) the one in flight.
	if c, ok := d.inflight[hash]; ok {
		d.log.Info("submission coalesced onto in-flight campaign",
			"id", c.ID, "spec_hash", hash, "status", c.Status)
		return d.viewLocked(c), false, nil
	}
	// Cache hit: the store already holds this campaign's manifest.
	// Register a terminal "cached" campaign so the submission still has
	// a pollable identity, but run nothing.
	if path, ok := d.store.Get(hash); ok {
		c := d.registerLocked(name, hash, spec)
		// The campaign is born terminal: it never occupies the in-flight
		// slot, so the next identical submission registers its own
		// cache-hit identity instead of coalescing onto this one.
		delete(d.inflight, hash)
		c.Status = StatusCached
		c.Cached = true
		c.ManifestPath = path
		c.Finished = c.Submitted
		close(c.done)
		d.log.Info("submission served from manifest store",
			"id", c.ID, "spec_hash", hash, "manifest", path)
		return d.viewLocked(c), false, nil
	}
	c := d.registerLocked(name, hash, spec)
	c.hub = telemetry.NewHub()
	select {
	case d.queue <- c:
	default:
		// Undo the registration: a rejected submission must not occupy
		// an ID or shadow a later retry in the in-flight set.
		delete(d.byID, c.ID)
		delete(d.inflight, hash)
		d.order = d.order[:len(d.order)-1]
		return View{}, false, ErrQueueFull
	}
	d.log.Info("campaign queued", "id", c.ID, "name", name, "spec_hash", hash,
		"jobs", spec.NumJobs(), "queue_len", len(d.queue))
	return d.viewLocked(c), true, nil
}

// registerLocked allocates and indexes a campaign; callers hold d.mu.
func (d *Daemon) registerLocked(name, hash string, spec sim.CampaignSpec) *Campaign {
	d.nextID++
	c := &Campaign{
		ID:        d.nextID,
		Name:      name,
		SpecHash:  hash,
		Spec:      spec,
		Status:    StatusQueued,
		Submitted: time.Now().UTC(),
		done:      make(chan struct{}),
	}
	d.byID[c.ID] = c
	d.order = append(d.order, c)
	d.inflight[hash] = c
	return c
}

// strings8 is the short-hash suffix for default campaign names.
func strings8(hash string) string {
	hex := hash
	if h, err := hashHex(hash); err == nil {
		hex = h
	}
	if len(hex) > 8 {
		hex = hex[:8]
	}
	return hex
}

// Campaign returns one campaign's view by ID.
func (d *Daemon) Campaign(id int) (View, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.byID[id]
	if !ok {
		return View{}, false
	}
	return d.viewLocked(c), true
}

// Campaigns lists every campaign in submission order.
func (d *Daemon) Campaigns() []View {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]View, len(d.order))
	for i, c := range d.order {
		out[i] = d.viewLocked(c)
	}
	return out
}

// Hub returns the campaign's progress hub (nil for cached campaigns).
func (d *Daemon) Hub(id int) (*telemetry.Hub, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.byID[id]
	if !ok {
		return nil, false
	}
	return c.hub, true
}

// Draining reports whether Drain has begun (readiness goes false).
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Wait blocks until the campaign reaches a terminal status; it returns
// false for an unknown ID. Tests and synchronous clients use it.
func (d *Daemon) Wait(ctx context.Context, id int) bool {
	d.mu.Lock()
	c, ok := d.byID[id]
	d.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-c.done:
		return true
	case <-ctx.Done():
		return false
	}
}

func (d *Daemon) viewLocked(c *Campaign) View {
	v := View{
		ID:        c.ID,
		Name:      c.Name,
		SpecHash:  c.SpecHash,
		Status:    c.Status,
		Cached:    c.Cached,
		Error:     c.Err,
		Manifest:  c.ManifestPath,
		Submitted: c.Submitted,
		Started:   c.Started,
		Finished:  c.Finished,
	}
	if c.ManifestPath != "" {
		v.ManifestURL = "/api/v1/manifests/" + c.SpecHash
	}
	if c.hub != nil {
		v.EventsURL = fmt.Sprintf("/api/v1/campaigns/%d/events", c.ID)
	}
	return v
}

// runnerLoop is one execution slot: dequeue, run, record, repeat. It
// exits when Drain closes the queue; campaigns still queued at that
// point are recorded aborted without running (their checkpoint-free
// state means a resubmission after restart starts clean).
func (d *Daemon) runnerLoop() {
	defer d.wg.Done()
	for c := range d.queue {
		if d.ctx.Err() != nil {
			d.finish(c, StatusAborted, "", 0, fmt.Errorf("queued campaign aborted by drain"))
			continue
		}
		d.mu.Lock()
		c.Status = StatusRunning
		c.Started = time.Now().UTC()
		d.mu.Unlock()
		d.log.Info("campaign started", "id", c.ID, "name", c.Name, "spec_hash", c.SpecHash)
		path, ran, err := d.execute(c)
		switch {
		case err == nil:
			d.finish(c, StatusCompleted, path, ran, nil)
		case errors.Is(err, context.Canceled):
			d.finish(c, StatusAborted, "", ran, err)
		default:
			d.finish(c, StatusFailed, "", ran, err)
		}
	}
}

// finish moves a campaign to its terminal status, releases its
// in-flight slot, closes its hub and done channel, and appends the
// ledger record. The ledger gets every outcome — completed, failed,
// aborted — so the store's run history shows unhealthy runs too; ran
// is the trial count this run actually executed (a resumed run is not
// credited with checkpointed cells, an aborted one records its partial
// progress honestly).
func (d *Daemon) finish(c *Campaign, status, manifestPath string, ran int, runErr error) {
	d.mu.Lock()
	c.Status = status
	c.Finished = time.Now().UTC()
	if manifestPath != "" {
		c.ManifestPath = manifestPath
	}
	if runErr != nil {
		c.Err = runErr.Error()
	}
	delete(d.inflight, c.SpecHash)
	d.mu.Unlock()
	if c.hub != nil {
		c.hub.Close()
	}
	close(c.done)

	wall := 0.0
	if !c.Started.IsZero() {
		wall = c.Finished.Sub(c.Started).Seconds()
	}
	rec := telemetry.Record{
		Time:     c.Finished,
		Name:     c.Name,
		Mode:     "sweepd",
		Status:   status,
		SpecHash: c.SpecHash,
		Manifest: c.ManifestPath,
		Jobs:     ran,
		Workers:  c.Spec.Workers,
		WallS:    wall,
	}
	if status == StatusCompleted {
		// Like cmd/sweep: a completed manifest accounts for the whole
		// campaign, resumed-over cells included; the rate credits only
		// the trials this run executed.
		rec.Jobs = c.Spec.NumJobs()
		cells := make(map[cellKey]struct{})
		c.Spec.ExecutedJobs(nil, func(j sim.TrialJob) {
			cells[cellKey{j.Group(), float64(j.Spares)}] = struct{}{}
		})
		rec.Points = len(cells)
	}
	if wall > 0 && ran > 0 {
		rec.TrialsPerS = float64(ran) / wall
	}
	if err := telemetry.AppendRecord(d.store.LedgerPath(), rec); err != nil {
		d.log.Error("ledger append failed", "path", d.store.LedgerPath(), "err", err)
	}
	switch status {
	case StatusCompleted:
		d.log.Info("campaign completed", "id", c.ID, "name", c.Name, "manifest", c.ManifestPath, "wall_s", wall)
	default:
		d.log.Warn("campaign ended unhealthy", "id", c.ID, "name", c.Name, "status", status, "err", c.Err)
	}
}

// Drain shuts the daemon down gracefully: new submissions are refused,
// queued campaigns are recorded aborted, and in-flight campaigns are
// cancelled — their engines stop at the next trial boundary and their
// checkpoints stay in the store's runs/ directory, so resubmitting the
// same spec after a restart resumes instead of starting over. Drain
// blocks until every runner has exited.
func (d *Daemon) Drain() {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.draining = true
	// Sends into d.queue happen under mu (Submit), so closing it here —
	// after draining flips — can never race a send.
	close(d.queue)
	d.mu.Unlock()
	d.log.Info("draining: refusing new campaigns, cancelling in-flight runs")
	d.cancel()
	d.wg.Wait()
}
