package sweepd

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"

	"wsncover/internal/dispatch"
	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/telemetry"
)

// execute runs one campaign to a manifest installed in the store. It
// returns the stored manifest path and how many trials this run
// executed (for the ledger; a resumed run is not credited with cells
// its checkpoint already carried). Cancellation (drain) surfaces as
// context.Canceled; the checkpoint left in the campaign's run
// directory seeds the next submission of the same spec.
func (d *Daemon) execute(c *Campaign) (string, int, error) {
	runDir, err := d.store.RunDir(c.SpecHash)
	if err != nil {
		return "", 0, err
	}
	if d.opts.FleetSlots > 1 {
		return d.executeFleet(c, runDir)
	}
	return d.executeInProcess(c, runDir)
}

// testTrialHook, when non-nil, observes every completed trial of an
// in-process campaign after its checkpoint lands. Tests block in it to
// hold a campaign mid-run deterministically — trials are far too fast
// for wall-clock racing.
var testTrialHook func(c *Campaign, ran int)

// cellKey identifies one aggregated campaign cell (group, X).
type cellKey struct {
	group string
	x     float64
}

// ckpt rewrites the campaign's checkpoint manifest atomically after
// every completed cell — the same contract cmd/sweep -checkpoint
// honors, so a drained daemon run and a killed CLI run leave
// indistinguishable resume state.
type ckpt struct {
	path      string
	name      string
	spec      sim.CampaignSpec
	prior     []experiment.Point
	priorJobs int
	acc       *experiment.Accumulator
	cellTotal map[cellKey]int
	cellDone  map[cellKey]int
	completed map[cellKey]bool
	doneJobs  int
}

func (k *ckpt) trialDone(key cellKey) error {
	k.cellDone[key]++
	if k.cellDone[key] < k.cellTotal[key] {
		return nil
	}
	k.completed[key] = true
	k.doneJobs += k.cellTotal[key]
	pts := make([]experiment.Point, 0, len(k.completed))
	for _, p := range k.acc.Points() {
		if k.completed[cellKey{p.Group, p.X}] {
			pts = append(pts, p)
		}
	}
	pts = mergePoints(k.prior, pts)
	manifest, err := experiment.NewManifest(k.name, k.spec, k.priorJobs+k.doneJobs, k.spec.Workers, pts)
	if err != nil {
		return err
	}
	return manifest.WriteAtomic(k.path)
}

// mergePoints combines retained prior points with fresh ones in the
// canonical (group, X) order; the resume filter keeps them disjoint.
func mergePoints(prior, fresh []experiment.Point) []experiment.Point {
	merged := make([]experiment.Point, 0, len(prior)+len(fresh))
	merged = append(merged, prior...)
	merged = append(merged, fresh...)
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Group != merged[j].Group {
			return merged[i].Group < merged[j].Group
		}
		return merged[i].X < merged[j].X
	})
	return merged
}

// loadCheckpoint reads a prior checkpoint manifest for this campaign,
// verifying that its embedded spec re-hashes to the campaign's hash (a
// stale or foreign file is ignored rather than merged), and returns
// its points and completed-cell set.
func (d *Daemon) loadCheckpoint(path, wantHash string, cellTotal map[cellKey]int) ([]experiment.Point, map[cellKey]bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil
	}
	gotHash, err := readManifestSpecHash(path)
	if err != nil || gotHash != wantHash {
		d.log.Warn("ignoring checkpoint with mismatched spec", "path", path, "got", gotHash, "want", wantHash)
		return nil, nil
	}
	var prior experiment.Manifest
	if err := json.Unmarshal(data, &prior); err != nil {
		d.log.Warn("ignoring unreadable checkpoint", "path", path, "err", err)
		return nil, nil
	}
	done := make(map[cellKey]bool, len(prior.Points))
	var points []experiment.Point
	for _, p := range prior.Points {
		k := cellKey{p.Group, p.X}
		if _, ok := cellTotal[k]; !ok {
			continue // a cell outside this spec's job space
		}
		points = append(points, p)
		done[k] = true
	}
	if len(done) > 0 {
		d.log.Info("resuming from checkpoint", "path", path, "cells", len(done))
	}
	return points, done
}

// executeInProcess runs the campaign on the embedded engine — no
// subprocess, the daemon is the worker. The manifest construction
// mirrors cmd/sweep exactly (same name, spec, NumJobs accounting, and
// worker count), so the stored manifest is byte-identical to what the
// CLI writes for the same submission.
func (d *Daemon) executeInProcess(c *Campaign, runDir string) (string, int, error) {
	spec := c.Spec
	ckPath := filepath.Join(runDir, "checkpoint.json")

	cellTotal := make(map[cellKey]int)
	spec.ExecutedJobs(nil, func(j sim.TrialJob) {
		cellTotal[cellKey{j.Group(), float64(j.Spares)}]++
	})
	priorPoints, done := d.loadCheckpoint(ckPath, c.SpecHash, cellTotal)
	var keep func(sim.TrialJob) bool
	if len(done) > 0 {
		keep = func(j sim.TrialJob) bool {
			return !done[cellKey{j.Group(), float64(j.Spares)}]
		}
	}
	priorJobs := 0
	for k := range done {
		priorJobs += cellTotal[k]
	}

	executed := 0
	groupTotal := make(map[string]int)
	var groupOrder []string
	spec.ExecutedJobs(keep, func(j sim.TrialJob) {
		executed++
		g := j.Group()
		if _, ok := groupTotal[g]; !ok {
			groupOrder = append(groupOrder, g)
		}
		groupTotal[g]++
	})

	pub := telemetry.NewPublisher(c.hub)
	tracker := telemetry.NewTracker(pub, executed, groupOrder, groupTotal)
	acc := experiment.NewAccumulator()
	ck := &ckpt{
		path:      ckPath,
		name:      c.Name,
		spec:      spec,
		prior:     priorPoints,
		priorJobs: priorJobs,
		acc:       acc,
		cellTotal: cellTotal,
		cellDone:  make(map[cellKey]int, len(cellTotal)),
		completed: make(map[cellKey]bool, len(cellTotal)),
	}

	ran := 0
	err := sim.RunCampaignSubset(d.ctx, spec, experiment.Options{Workers: spec.Workers}, keep,
		func(j sim.TrialJob, s experiment.Sample) error {
			acc.Add(s)
			ran++
			tracker.TrialDone(j.Group())
			if err := ck.trialDone(cellKey{j.Group(), float64(j.Spares)}); err != nil {
				return err
			}
			if testTrialHook != nil {
				testTrialHook(c, ran)
			}
			return nil
		})
	tracker.Final()
	if err != nil {
		return "", ran, err
	}

	points := mergePoints(priorPoints, acc.Points())
	manifest, err := experiment.NewManifest(c.Name, spec, spec.NumJobs(), spec.Workers, points)
	if err != nil {
		return "", ran, err
	}
	local, err := manifest.Save(runDir)
	if err != nil {
		return "", ran, err
	}
	stored, err := d.store.Install(c.SpecHash, local)
	if err != nil {
		return "", ran, err
	}
	os.Remove(ckPath)
	return stored, ran, nil
}

// executeFleet runs the campaign as a dispatch fleet of WorkerBin
// subprocesses, bridging the fleet's progress snapshots onto the
// campaign's hub. Shard artifacts and checkpoints land in the
// campaign's run directory; Resume is always on, so a drained fleet's
// surviving shards seed the next submission.
func (d *Daemon) executeFleet(c *Campaign, runDir string) (string, int, error) {
	pub := telemetry.NewPublisher(c.hub)
	opts := dispatch.Options{
		Slots:  d.opts.FleetSlots,
		OutDir: runDir,
		Name:   c.Name,
		Resume: true,
		Worker: []string{d.opts.WorkerBin},
		Logger: d.log.With("campaign", c.ID),
		OnProgress: func(s dispatch.FleetSnapshot) {
			final := s.Terminal()
			if !pub.Due(final) {
				return
			}
			pub.Publish(s.Fleet, fleetShardViews(s.Shards), fleetGroupViews(s.Groups), final)
		},
	}
	manifest, _, err := dispatch.Run(d.ctx, c.Spec, opts)
	if err != nil {
		return "", 0, err
	}
	local, err := manifest.Save(runDir)
	if err != nil {
		return "", 0, err
	}
	stored, err := d.store.Install(c.SpecHash, local)
	if err != nil {
		return "", 0, err
	}
	return stored, manifest.Jobs, nil
}

// fleetShardViews and fleetGroupViews convert dispatch snapshot
// vectors to telemetry wire shapes — duplicated from cmd/sweep because
// telemetry must not import dispatch; this package may import both.
func fleetShardViews(shards []dispatch.ShardStatus) []telemetry.ShardView {
	now := time.Now()
	out := make([]telemetry.ShardView, len(shards))
	for i, s := range shards {
		out[i] = telemetry.ShardView{
			Shard:    s.Shard,
			State:    s.State.String(),
			Done:     s.Progress.Done,
			Total:    s.Progress.Total,
			Attempts: s.Attempts,
			Slot:     s.Slot,
			Leases:   s.Leases,
			BeatAgeS: -1,
		}
		if s.Attempts > 1 {
			out[i].Retries = s.Attempts - 1
		}
		if !s.LastBeat.IsZero() {
			out[i].BeatAgeS = now.Sub(s.LastBeat).Seconds()
		}
	}
	return out
}

func fleetGroupViews(groups []dispatch.GroupProgress) []telemetry.GroupView {
	out := make([]telemetry.GroupView, len(groups))
	for i, g := range groups {
		out[i] = telemetry.GroupView{Group: g.Group, Done: g.Done, Total: g.Total}
	}
	return out
}
