// Package sweepd is the always-on campaign service: a daemon that
// accepts campaign specs over HTTP, executes them through the same
// engine cmd/sweep drives, and serves the resulting manifests from a
// content-addressed store keyed by telemetry.SpecHash. Determinism is
// what makes the store a cache: the spec hash ignores execution-only
// fields (worker count, shard layout), and a campaign's manifest is
// byte-identical however it was parallelized, so one stored manifest
// answers every future submission of the same science.
//
// The package splits along the same seams as the rest of the repo:
// store.go is the artifact store, sweepd.go the daemon (submission,
// dedupe, the bounded FIFO job queue, drain), run.go the campaign
// runner (in-process engine or a dispatch fleet), and server.go the
// HTTP surface. cmd/sweepd wires it to flags and signals.
package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wsncover/internal/telemetry"
)

// Store is a content-addressed campaign-manifest store rooted at one
// directory:
//
//	<dir>/manifests/sha256-<hex>.json   completed campaign manifests
//	<dir>/runs/<hex>/                   per-campaign working directories
//	<dir>/ledger.ndjson                 the run ledger (telemetry.Record)
//
// Keys are telemetry.SpecHash values ("sha256:<64 hex>"). Only full,
// unsharded campaign manifests are installed — Daemon.Submit enforces
// that with sim.CampaignSpec.ValidateUnsharded, because the hash
// deliberately ignores shard layout and a partial manifest stored
// under the full campaign's key would poison every later cache hit.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "manifests"), filepath.Join(dir, "runs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("sweepd: store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// LedgerPath is the store's run-ledger file (telemetry NDJSON records).
func (s *Store) LedgerPath() string { return filepath.Join(s.dir, "ledger.ndjson") }

// RunDir returns (creating if needed) the working directory for the
// campaign with the given spec hash — checkpoints and in-flight
// manifests live here, outside the manifests/ namespace, so a crashed
// run never pollutes the store with a partial artifact.
func (s *Store) RunDir(hash string) (string, error) {
	hex, err := hashHex(hash)
	if err != nil {
		return "", err
	}
	dir := filepath.Join(s.dir, "runs", hex)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sweepd: store: %w", err)
	}
	return dir, nil
}

// hashHex validates a spec hash and returns its hex digest — the only
// component that ever reaches a file name, so a malicious "hash" can
// not traverse out of the store.
func hashHex(hash string) (string, error) {
	hex, ok := strings.CutPrefix(hash, "sha256:")
	if !ok || len(hex) != 64 {
		return "", fmt.Errorf("sweepd: malformed spec hash %q (want sha256:<64 hex>)", hash)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("sweepd: malformed spec hash %q (want sha256:<64 hex>)", hash)
		}
	}
	return hex, nil
}

// manifestPath maps a validated spec hash to its store location.
func (s *Store) manifestPath(hex string) string {
	return filepath.Join(s.dir, "manifests", "sha256-"+hex+".json")
}

// Get returns the stored manifest path for hash and whether it exists.
func (s *Store) Get(hash string) (string, bool) {
	hex, err := hashHex(hash)
	if err != nil {
		return "", false
	}
	path := s.manifestPath(hex)
	if _, err := os.Stat(path); err != nil {
		return "", false
	}
	return path, true
}

// Install copies the manifest at src into the store under hash,
// atomically (temp + rename), and returns the stored path. Installing
// the same hash twice is fine: determinism guarantees the bytes match,
// and the rename just replaces like with like.
func (s *Store) Install(hash, src string) (string, error) {
	hex, err := hashHex(hash)
	if err != nil {
		return "", err
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return "", fmt.Errorf("sweepd: store install: %w", err)
	}
	dst := s.manifestPath(hex)
	if err := writeFileAtomic(dst, data); err != nil {
		return "", fmt.Errorf("sweepd: store install: %w", err)
	}
	return dst, nil
}

// Resolve finds the unique stored manifest whose hash starts with ref
// (with or without the "sha256:" prefix), git-style. It returns the
// full hash and path; an unknown or ambiguous ref errors.
func (s *Store) Resolve(ref string) (hash, path string, err error) {
	prefix := strings.TrimPrefix(strings.TrimSpace(ref), "sha256:")
	if prefix == "" {
		return "", "", fmt.Errorf("sweepd: empty manifest ref")
	}
	entries, err := s.List()
	if err != nil {
		return "", "", err
	}
	var matches []Entry
	for _, e := range entries {
		if strings.HasPrefix(strings.TrimPrefix(e.SpecHash, "sha256:"), prefix) {
			matches = append(matches, e)
		}
	}
	switch len(matches) {
	case 0:
		return "", "", fmt.Errorf("sweepd: no stored manifest matches %q", ref)
	case 1:
		return matches[0].SpecHash, matches[0].Path, nil
	}
	return "", "", fmt.Errorf("sweepd: ref %q is ambiguous (%d matches)", ref, len(matches))
}

// Entry is one stored manifest joined with its newest ledger record
// (nil when the ledger has none — e.g. a manifest installed by hand).
type Entry struct {
	SpecHash string            `json:"spec_hash"`
	Path     string            `json:"path"`
	Bytes    int64             `json:"bytes"`
	Record   *telemetry.Record `json:"record,omitempty"`
}

// List scans the store's manifests, sorted by hash, each joined with
// the latest ledger record carrying its spec hash.
func (s *Store) List() ([]Entry, error) {
	names, err := os.ReadDir(filepath.Join(s.dir, "manifests"))
	if err != nil {
		return nil, fmt.Errorf("sweepd: store: %w", err)
	}
	latest := make(map[string]*telemetry.Record)
	if recs, err := telemetry.ReadLedger(s.LedgerPath()); err == nil {
		for i := range recs {
			latest[recs[i].SpecHash] = &recs[i]
		}
	}
	var out []Entry
	for _, de := range names {
		name := de.Name()
		hex, ok := strings.CutPrefix(name, "sha256-")
		hex, ok2 := strings.CutSuffix(hex, ".json")
		if !ok || !ok2 || len(hex) != 64 {
			continue
		}
		e := Entry{SpecHash: "sha256:" + hex, Path: s.manifestPath(hex)}
		if info, err := de.Info(); err == nil {
			e.Bytes = info.Size()
		}
		e.Record = latest[e.SpecHash]
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SpecHash < out[j].SpecHash })
	return out, nil
}

// writeFileAtomic lands data at path via temp-file-and-rename, so a
// reader never observes a torn manifest.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readManifestSpecHash re-derives the spec hash of the manifest at
// path from its embedded spec — the integrity check the runner applies
// to a checkpoint before resuming from it.
func readManifestSpecHash(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var m struct {
		Spec json.RawMessage `json:"spec"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return "", fmt.Errorf("sweepd: manifest %s: %w", path, err)
	}
	return telemetry.SpecHash(m.Spec)
}
