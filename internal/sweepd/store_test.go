package sweepd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsncover/internal/telemetry"
)

func TestHashHexRejectsMalformedAndTraversal(t *testing.T) {
	good := "sha256:" + strings.Repeat("ab", 32)
	if hex, err := hashHex(good); err != nil || len(hex) != 64 {
		t.Fatalf("hashHex(%q) = %q, %v", good, hex, err)
	}
	for _, bad := range []string{
		"",
		"sha256:",
		"sha256:short",
		strings.Repeat("ab", 32),             // missing prefix
		"sha256:" + strings.Repeat("AB", 32), // uppercase
		"sha256:../../../../etc/passwd00000000000000000000000000", // traversal shape
		"sha256:" + strings.Repeat("zz", 32),                      // non-hex
	} {
		if _, err := hashHex(bad); err == nil {
			t.Errorf("hashHex(%q) accepted a malformed hash", bad)
		}
	}
}

func TestStoreInstallGetResolveList(t *testing.T) {
	store, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	hashA := "sha256:" + strings.Repeat("aa", 32)
	hashB := "sha256:" + strings.Repeat("ab", 32)
	if _, ok := store.Get(hashA); ok {
		t.Fatal("empty store reported a hit")
	}

	src := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(src, []byte(`{"name":"x","jobs":1,"workers":0,"points":[]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pathA, err := store.Install(hashA, src)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := store.Get(hashA); !ok || got != pathA {
		t.Fatalf("Get(%s) = %q, %v; want %q, true", hashA, got, ok, pathA)
	}
	if _, err := store.Install(hashB, src); err != nil {
		t.Fatal(err)
	}

	// Prefix resolution, git-style; ambiguous and unknown refs fail.
	if h, p, err := store.Resolve("aaaa"); err != nil || h != hashA || p != pathA {
		t.Errorf("Resolve(aaaa) = %q, %q, %v", h, p, err)
	}
	if h, _, err := store.Resolve(hashB); err != nil || h != hashB {
		t.Errorf("Resolve(full) = %q, %v", h, err)
	}
	if _, _, err := store.Resolve("a"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Resolve(a) = %v, want ambiguous", err)
	}
	if _, _, err := store.Resolve("ffff"); err == nil {
		t.Error("Resolve of an unknown ref should fail")
	}

	// List joins the ledger's newest record per hash.
	for _, rec := range []telemetry.Record{
		{Name: "old", Mode: "sweepd", SpecHash: hashA, Status: telemetry.StatusFailed},
		{Name: "new", Mode: "sweepd", SpecHash: hashA, Status: telemetry.StatusCompleted},
	} {
		if err := telemetry.AppendRecord(store.LedgerPath(), rec); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("List() = %d entries, want 2", len(entries))
	}
	if entries[0].SpecHash != hashA || entries[1].SpecHash != hashB {
		t.Errorf("List order: %s, %s", entries[0].SpecHash, entries[1].SpecHash)
	}
	if entries[0].Record == nil || entries[0].Record.Name != "new" {
		t.Errorf("entry A record = %+v, want the newest ledger record", entries[0].Record)
	}
	if entries[1].Record != nil {
		t.Errorf("entry B record = %+v, want nil (no ledger line)", entries[1].Record)
	}
	if entries[0].Bytes == 0 {
		t.Error("entry A should report its size")
	}
}

func TestRunDirIsolatesPerCampaign(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash := "sha256:" + strings.Repeat("cd", 32)
	dir, err := store.RunDir(hash)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dir, filepath.Join(store.Dir(), "runs")) {
		t.Errorf("run dir %q escaped the store", dir)
	}
	if _, err := store.RunDir("sha256:nope"); err == nil {
		t.Error("RunDir must reject malformed hashes")
	}
}
