package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"wsncover/internal/dispatch"
	"wsncover/internal/telemetry"
)

// maxSpecBytes bounds a submitted spec body; campaign specs are small,
// so anything past this is a mistake or an attack, not a campaign.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/campaigns?name=n        submit a spec (JSON body)
//	GET  /api/v1/campaigns               list campaigns
//	GET  /api/v1/campaigns/{id}          one campaign's state
//	GET  /api/v1/campaigns/{id}/events   live progress (SSE; ?format=ndjson)
//	GET  /api/v1/manifests               list stored manifests + ledger info
//	GET  /api/v1/manifests/{hash}        serve a stored manifest (prefix ok)
//	GET  /api/v1/diff?a=ref&b=ref        differential-compare two manifests
//	GET  /healthz                        liveness
//	GET  /readyz                         readiness (503 while draining)
//	GET  /debug/pprof/...                profiling, when Options.Pprof
//
// Submission responses: 202 for a newly queued campaign, 200 when the
// submission was answered from the store or coalesced onto an
// identical in-flight campaign, 400 for a bad spec, 429 when the queue
// is full, 503 while draining.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", d.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", d.handleCampaigns)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", d.handleCampaign)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /api/v1/manifests", d.handleManifests)
	mux.HandleFunc("GET /api/v1/manifests/{hash}", d.handleManifest)
	mux.HandleFunc("GET /api/v1/diff", d.handleDiff)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	if d.opts.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	// The spec decode is strict (unknown fields error), so the name
	// rides the query string, not the body.
	view, created, err := d.Submit(body, r.URL.Query().Get("name"))
	switch {
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case created:
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

func (d *Daemon) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Campaigns())
}

// campaignID resolves the {id} path value; a nil pointer return means
// the response was already written.
func (d *Daemon) campaignID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad campaign id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (d *Daemon) handleCampaign(w http.ResponseWriter, r *http.Request) {
	id, ok := d.campaignID(w, r)
	if !ok {
		return
	}
	view, ok := d.Campaign(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %d", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := d.campaignID(w, r)
	if !ok {
		return
	}
	hub, ok := d.Hub(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %d", id))
		return
	}
	if hub == nil {
		// A cache-hit campaign never ran, so it has no progress stream;
		// an empty, well-formed stream beats a 404 for generic clients.
		if r.URL.Query().Get("format") == "ndjson" {
			w.Header().Set("Content-Type", "application/x-ndjson")
		} else {
			w.Header().Set("Content-Type", "text/event-stream")
		}
		return
	}
	telemetry.ServeHubEvents(w, r, hub)
}

func (d *Daemon) handleManifests(w http.ResponseWriter, r *http.Request) {
	entries, err := d.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if entries == nil {
		entries = []Entry{}
	}
	writeJSON(w, http.StatusOK, entries)
}

func (d *Daemon) handleManifest(w http.ResponseWriter, r *http.Request) {
	_, path, err := d.store.Resolve(r.PathValue("hash"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleDiff runs the manifest differ over two stored manifests —
// the same merge-contract comparison cmd/manifestdiff applies, so
// "equivalent" here means equivalent there.
func (d *Daemon) handleDiff(w http.ResponseWriter, r *http.Request) {
	refA, refB := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if refA == "" || refB == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("diff needs ?a= and ?b= manifest refs"))
		return
	}
	hashA, pathA, err := d.store.Resolve(refA)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	hashB, pathB, err := d.store.Resolve(refB)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	diffs, err := dispatch.DiffManifests(pathA, pathB, 1e-9)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if diffs == nil {
		diffs = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"a":           hashA,
		"b":           hashB,
		"equivalent":  len(diffs) == 0,
		"differences": diffs,
	})
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(d.started).Seconds(),
	})
}

// handleReadyz reports readiness: a draining daemon answers 503 so a
// load balancer stops routing submissions to it while in-flight
// campaigns finish checkpointing.
func (d *Daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if d.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
