package visual

import (
	"strings"
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/network"
	"wsncover/internal/node"
)

func netWith(t *testing.T, cols, rows int, fill map[grid.Coord]int) *network.Network {
	t.Helper()
	sys, err := grid.New(cols, rows, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	w := network.New(sys, node.EnergyModel{})
	for c, n := range fill {
		for i := 0; i < n; i++ {
			if _, err := w.AddNodeAt(sys.Center(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.ElectHeads()
	return w
}

func TestNetworkRender(t *testing.T) {
	w := netWith(t, 3, 2, map[grid.Coord]int{
		grid.C(0, 0): 1,
		grid.C(1, 0): 3,
		grid.C(2, 1): 12,
	})
	out := Network(w)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Top row (y=1): two holes then 12 nodes rendered as '+'.
	if lines[1] != " . . +" {
		t.Errorf("row y=1 = %q", lines[1])
	}
	// Bottom row (y=0): 1, 3, hole.
	if lines[2] != " 1 3 ." {
		t.Errorf("row y=0 = %q", lines[2])
	}
}

func TestRolesRender(t *testing.T) {
	w := netWith(t, 3, 1, map[grid.Coord]int{
		grid.C(0, 0): 1,
		grid.C(1, 0): 2,
	})
	out := strings.TrimSpace(Roles(w))
	if out != "H S ." {
		t.Errorf("Roles = %q", out)
	}
}

func TestCycleRenderSingle(t *testing.T) {
	sys, err := grid.New(4, 4, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	out := Cycle(topo)
	if !strings.Contains(out, "cycle") {
		t.Error("missing kind")
	}
	// Every cell renders as one of the four arrows (none unknown).
	if strings.Contains(out, "?") {
		t.Errorf("unknown direction in render:\n%s", out)
	}
	arrows := strings.Count(out, "^") + strings.Count(out, "v") +
		strings.Count(out, "<") + strings.Count(out, ">")
	if arrows != 16 {
		t.Errorf("arrow count = %d, want 16", arrows)
	}
}

func TestCycleRenderDualPath(t *testing.T) {
	sys, err := grid.New(5, 5, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	out := Cycle(topo)
	for _, mark := range []string{"A", "B", "C", "D"} {
		if strings.Count(out, mark) < 1 {
			t.Errorf("missing %s marker:\n%s", mark, out)
		}
	}
	if !strings.Contains(out, "dual-path") {
		t.Error("missing kind")
	}
}

func TestHeatmapRendering(t *testing.T) {
	rows := []HeatRow{
		{Label: "SR 16x16", Done: 16, Total: 32},
		{Label: "AR", Done: 32, Total: 32},
		{Label: "pending", Done: 0, Total: 0},
	}
	out := Heatmap(rows, 16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Labels pad to the widest, so the bars align.
	for _, l := range lines {
		if !strings.Contains(l, "[") || len(l) < len("SR 16x16  [") {
			t.Errorf("misaligned row %q", l)
		}
	}
	if !strings.Contains(lines[0], "50%") || strings.Count(lines[0], "█") != 8 {
		t.Errorf("half-done row %q, want 8 full cells of 16 and 50%%", lines[0])
	}
	if !strings.Contains(lines[1], "100%") || strings.Count(lines[1], "█") != 16 {
		t.Errorf("full row %q, want a solid 16-cell bar", lines[1])
	}
	// A zero total renders a dashed bar, never a division by zero.
	if !strings.Contains(lines[2], strings.Repeat("-", 16)) {
		t.Errorf("zero-total row %q, want a dashed bar", lines[2])
	}
}

func TestHeatmapPartialCellAndDefaults(t *testing.T) {
	// 3/8 of a 4-cell bar = 1.5 cells: one full cell, one half shade.
	out := Heatmap([]HeatRow{{Label: "g", Done: 3, Total: 8}}, 4)
	if !strings.Contains(out, "█▒") {
		t.Errorf("partial fill %q, want a graded edge (█ then ▒)", out)
	}
	if !strings.Contains(out, "38%") { // 37.5 rounds up
		t.Errorf("row %q lacks the rounded percentage", out)
	}
	// width <= 0 falls back to 24 cells.
	def := Heatmap([]HeatRow{{Label: "g", Done: 0, Total: 1}}, 0)
	if got := strings.Count(def, " "); !strings.Contains(def, "["+strings.Repeat(" ", 24)+"]") {
		t.Errorf("default width row %q (spaces %d), want a 24-cell empty bar", def, got)
	}
	if Heatmap(nil, 10) != "" {
		t.Error("no rows renders nothing")
	}
}
