// Package visual renders networks and Hamilton topologies as ASCII art
// for terminal inspection and the example programs.
package visual

import (
	"fmt"
	"strings"

	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/network"
)

// Network renders the grid occupancy: each cell shows its enabled node
// count, with '.' for a vacant cell (hole). Row 0 is drawn at the bottom,
// matching the paper's coordinate convention.
func Network(w *network.Network) string {
	sys := w.System()
	var b strings.Builder
	fmt.Fprintf(&b, "%s  holes=%d spares=%d\n", sys, w.VacantCount(), w.TotalSpares())
	for y := sys.Rows() - 1; y >= 0; y-- {
		for x := 0; x < sys.Cols(); x++ {
			c := grid.C(x, y)
			if w.IsVacant(c) {
				b.WriteString(" .")
				continue
			}
			n := w.SpareCount(c) + 1
			if n > 9 {
				b.WriteString(" +")
			} else {
				fmt.Fprintf(&b, " %d", n)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Roles renders head/spare/vacant state: 'H' for a cell with only a head,
// 'S' for a head plus spares, '.' for a hole.
func Roles(w *network.Network) string {
	sys := w.System()
	var b strings.Builder
	for y := sys.Rows() - 1; y >= 0; y-- {
		for x := 0; x < sys.Cols(); x++ {
			c := grid.C(x, y)
			switch {
			case w.IsVacant(c):
				b.WriteString(" .")
			case w.HasSpare(c):
				b.WriteString(" S")
			default:
				b.WriteString(" H")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// arrowFor maps a step direction to an arrow rune.
func arrowFor(from, to grid.Coord) byte {
	d, ok := from.DirTo(to)
	if !ok {
		return '?'
	}
	switch d {
	case grid.North:
		return '^'
	case grid.South:
		return 'v'
	case grid.East:
		return '>'
	case grid.West:
		return '<'
	}
	return '?'
}

// Cycle renders a single Hamilton cycle as a field of direction arrows:
// each cell shows the direction of its successor. Dual-path topologies are
// rendered via the shared segment with A and B marked.
func Cycle(t *hamilton.Topology) string {
	sys := t.System()
	var b strings.Builder
	fmt.Fprintf(&b, "%v Hamilton structure on %s\n", t.Kind(), sys)
	switch t.Kind() {
	case hamilton.KindCycle:
		for y := sys.Rows() - 1; y >= 0; y-- {
			for x := 0; x < sys.Cols(); x++ {
				c := grid.C(x, y)
				b.WriteByte(' ')
				b.WriteByte(arrowFor(c, t.Succ(c)))
			}
			b.WriteString("\n")
		}
	case hamilton.KindDualPath:
		a, bb, cc, d, _ := t.ABCD()
		shared := t.SharedOrder()
		next := make(map[grid.Coord]grid.Coord, len(shared))
		for i := 0; i+1 < len(shared); i++ {
			next[shared[i]] = shared[i+1]
		}
		for y := sys.Rows() - 1; y >= 0; y-- {
			for x := 0; x < sys.Cols(); x++ {
				c := grid.C(x, y)
				b.WriteByte(' ')
				switch c {
				case a:
					b.WriteByte('A')
				case bb:
					b.WriteByte('B')
				case cc:
					b.WriteByte('C')
				case d:
					b.WriteByte('D')
				default:
					if nx, ok := next[c]; ok {
						b.WriteByte(arrowFor(c, nx))
					} else {
						b.WriteByte('?')
					}
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
