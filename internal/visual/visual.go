// Package visual renders networks, Hamilton topologies, and campaign
// progress as ASCII art for terminal inspection, the example programs,
// and the telemetry dashboard.
package visual

import (
	"fmt"
	"strings"

	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/network"
)

// Network renders the grid occupancy: each cell shows its enabled node
// count, with '.' for a vacant cell (hole). Row 0 is drawn at the bottom,
// matching the paper's coordinate convention.
func Network(w *network.Network) string {
	sys := w.System()
	var b strings.Builder
	fmt.Fprintf(&b, "%s  holes=%d spares=%d\n", sys, w.VacantCount(), w.TotalSpares())
	for y := sys.Rows() - 1; y >= 0; y-- {
		for x := 0; x < sys.Cols(); x++ {
			c := grid.C(x, y)
			if w.IsVacant(c) {
				b.WriteString(" .")
				continue
			}
			n := w.SpareCount(c) + 1
			if n > 9 {
				b.WriteString(" +")
			} else {
				fmt.Fprintf(&b, " %d", n)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Roles renders head/spare/vacant state: 'H' for a cell with only a head,
// 'S' for a head plus spares, '.' for a hole.
func Roles(w *network.Network) string {
	sys := w.System()
	var b strings.Builder
	for y := sys.Rows() - 1; y >= 0; y-- {
		for x := 0; x < sys.Cols(); x++ {
			c := grid.C(x, y)
			switch {
			case w.IsVacant(c):
				b.WriteString(" .")
			case w.HasSpare(c):
				b.WriteString(" S")
			default:
				b.WriteString(" H")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// HeatRow is one labeled completion fraction for Heatmap: a campaign
// group (curve) with its completed and total trial counts.
type HeatRow struct {
	Label string
	Done  int
	Total int
}

// heatShades are the partial-cell fill levels of a heatmap bar, lightest
// to darkest. A cell's shade is its own completion fraction, so the bar
// reads as a smooth gradient instead of snapping whole cells.
var heatShades = []rune{' ', '░', '▒', '▓', '█'}

// Heatmap renders per-group completion as an aligned strip chart, one
// row per group in the given order:
//
//	SR 12x12 churn(2@5x3)  [███████▓░       ]  14/ 32  44%
//	AR 12x12 churn(2@5x3)  [████████████████]  32/ 32 100%
//
// width is the bar's cell count (<= 0 means 24). Rows with a zero total
// render a dashed bar instead of dividing by zero, so the chart is safe
// on fleets whose totals are not known yet.
func Heatmap(rows []HeatRow, width int) string {
	if width <= 0 {
		width = 24
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  [", labelW, r.Label)
		if r.Total <= 0 {
			b.WriteString(strings.Repeat("-", width))
			fmt.Fprintf(&b, "]  %3d/%3d   –\n", r.Done, r.Total)
			continue
		}
		frac := float64(r.Done) / float64(r.Total)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		filled := frac * float64(width)
		for i := 0; i < width; i++ {
			cell := filled - float64(i)
			if cell < 0 {
				cell = 0
			}
			if cell > 1 {
				cell = 1
			}
			b.WriteRune(heatShades[int(cell*float64(len(heatShades)-1)+0.5)])
		}
		fmt.Fprintf(&b, "]  %3d/%3d %3.0f%%\n", r.Done, r.Total, 100*frac)
	}
	return b.String()
}

// arrowFor maps a step direction to an arrow rune.
func arrowFor(from, to grid.Coord) byte {
	d, ok := from.DirTo(to)
	if !ok {
		return '?'
	}
	switch d {
	case grid.North:
		return '^'
	case grid.South:
		return 'v'
	case grid.East:
		return '>'
	case grid.West:
		return '<'
	}
	return '?'
}

// Cycle renders a single Hamilton cycle as a field of direction arrows:
// each cell shows the direction of its successor. Dual-path topologies are
// rendered via the shared segment with A and B marked.
func Cycle(t *hamilton.Topology) string {
	sys := t.System()
	var b strings.Builder
	fmt.Fprintf(&b, "%v Hamilton structure on %s\n", t.Kind(), sys)
	switch t.Kind() {
	case hamilton.KindCycle:
		for y := sys.Rows() - 1; y >= 0; y-- {
			for x := 0; x < sys.Cols(); x++ {
				c := grid.C(x, y)
				b.WriteByte(' ')
				b.WriteByte(arrowFor(c, t.Succ(c)))
			}
			b.WriteString("\n")
		}
	case hamilton.KindDualPath:
		a, bb, cc, d, _ := t.ABCD()
		shared := t.SharedOrder()
		next := make(map[grid.Coord]grid.Coord, len(shared))
		for i := 0; i+1 < len(shared); i++ {
			next[shared[i]] = shared[i+1]
		}
		for y := sys.Rows() - 1; y >= 0; y-- {
			for x := 0; x < sys.Cols(); x++ {
				c := grid.C(x, y)
				b.WriteByte(' ')
				switch c {
				case a:
					b.WriteByte('A')
				case bb:
					b.WriteByte('B')
				case cc:
					b.WriteByte('C')
				case d:
					b.WriteByte('D')
				default:
					if nx, ok := next[c]; ok {
						b.WriteByte(arrowFor(c, nx))
					} else {
						b.WriteByte('?')
					}
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
