// Package telemetry is the observability layer of the campaign fleet:
// a broadcast hub that fans live progress snapshots out to any number
// of subscribers, the HTTP dashboard server that serves them as SSE /
// NDJSON plus a single-file HTML page (server.go), the append-only
// NDJSON run ledger recording every completed campaign (ledger.go), and
// the env-var-configured slog construction every command shares
// (log.go).
//
// The package only observes: it subscribes to the same ordered progress
// stream the terminal meters ride (experiment.Progress events and the
// dispatch driver's fleet snapshots) and never touches trial execution,
// so a campaign run with a dashboard attached writes a byte-identical
// manifest to one run dark — the differential tests in cmd/sweep pin
// that. The per-trial hook (Tracker.TrialDone) is allocation-free in
// the steady state: publication is throttled, so between publishes a
// trial costs two map updates and a clock read.
package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/visual"
)

// Throttle is the minimum interval between non-final snapshot
// publications, matching the terminal meters: a fast campaign must
// never bottleneck on telemetry.
const Throttle = 200 * time.Millisecond

// Snapshot is one serialized observation of a running campaign — the
// payload of the dashboard's /events stream. Fleet always carries the
// aggregate done/total; Shards and Groups are present when the run
// tracks them (a dispatched fleet, a campaign with more than one
// curve).
type Snapshot struct {
	// Fleet is the aggregate progress of the whole run.
	Fleet experiment.Progress `json:"fleet"`
	// Shards is the per-shard state vector of a dispatched fleet, in
	// shard order; nil for single-process runs.
	Shards []ShardView `json:"shards,omitempty"`
	// Groups is the per-group (curve) completion breakdown in job-space
	// order; nil when the run has a single group or does not track it.
	Groups []GroupView `json:"groups,omitempty"`
	// ElapsedS is seconds since the run started.
	ElapsedS float64 `json:"elapsed_s"`
	// TrialsPerS is the aggregate completion rate so far (0 until the
	// first trial lands).
	TrialsPerS float64 `json:"trials_per_s"`
	// ETAS estimates seconds to completion; negative means unknown (no
	// rate yet, or nothing left to do).
	ETAS float64 `json:"eta_s"`
	// Heatmap is the per-group completion strip chart pre-rendered by
	// internal/visual, empty when Groups is.
	Heatmap string `json:"heatmap,omitempty"`
	// Final marks the run's last snapshot.
	Final bool `json:"final,omitempty"`
}

// ShardView is one shard's state in a Snapshot.
type ShardView struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Attempts int    `json:"attempts,omitempty"`
	// Slot is the worker slot holding the newest live lease (0 = none);
	// Leases counts live attempts (2 while a speculative duplicate races
	// a straggler); Retries counts relaunches after the first attempt.
	Slot    int `json:"slot,omitempty"`
	Leases  int `json:"leases,omitempty"`
	Retries int `json:"retries,omitempty"`
	// BeatAgeS is seconds since the shard's last heartbeat (a valid
	// progress event from a live attempt); negative when no live attempt
	// has reported yet.
	BeatAgeS float64 `json:"beat_age_s,omitempty"`
}

// GroupView is one group's completion in a Snapshot.
type GroupView struct {
	Group string `json:"group"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// heatRows converts the group views for rendering.
func heatRows(groups []GroupView) []visual.HeatRow {
	rows := make([]visual.HeatRow, len(groups))
	for i, g := range groups {
		rows[i] = visual.HeatRow{Label: g.Group, Done: g.Done, Total: g.Total}
	}
	return rows
}

// Subscriber is one registered consumer of a Hub's event stream.
type Subscriber struct {
	ch chan []byte
}

// Events delivers marshaled snapshots, one JSON object per element (no
// trailing newline). The channel closes when the hub closes.
func (s *Subscriber) Events() <-chan []byte { return s.ch }

// Hub broadcasts marshaled snapshots to every subscriber. Publication
// never blocks: a slow subscriber's buffer drops its oldest event to
// make room, so the newest state always gets through — a dashboard
// wants the present, not a backlog. The zero value is not usable; call
// NewHub.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	last   []byte
	closed bool
}

// subscriberBuffer bounds each subscriber's unread backlog.
const subscriberBuffer = 16

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Publish marshals the snapshot and broadcasts it. The marshaled form
// is retained as the hub's last event, delivered immediately to future
// subscribers so a late-joining dashboard renders without waiting for
// the next publication.
func (h *Hub) Publish(snap Snapshot) {
	b, err := json.Marshal(snap)
	if err != nil {
		return // no Snapshot field can fail to marshal
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.last = b
	for s := range h.subs {
		h.pushLocked(s, b)
	}
}

// pushLocked enqueues b on s, dropping the oldest buffered event when
// the subscriber is full.
func (h *Hub) pushLocked(s *Subscriber, b []byte) {
	for {
		select {
		case s.ch <- b:
			return
		default:
			select {
			case <-s.ch:
			default:
			}
		}
	}
}

// Subscribe registers a consumer. The hub's last published event, if
// any, is already enqueued on return.
func (h *Hub) Subscribe() *Subscriber {
	s := &Subscriber{ch: make(chan []byte, subscriberBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(s.ch)
		return s
	}
	h.subs[s] = struct{}{}
	if h.last != nil {
		h.pushLocked(s, h.last)
	}
	return s
}

// Unsubscribe removes a consumer and closes its channel (idempotent;
// harmless after Close).
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	close(s.ch)
}

// Last returns the most recently published marshaled snapshot (nil
// before the first publication).
func (h *Hub) Last() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Close closes every subscriber channel after its buffered events; the
// hub accepts no further publications or subscriptions. Events already
// published are still drained by their subscribers, so a final snapshot
// published before Close always reaches connected clients.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}

// Publisher stamps snapshots with elapsed/rate/ETA from an injectable
// clock, renders the group heatmap, and publishes onto a hub — shared
// by the single-process Tracker and the dispatch-fleet adapter in
// cmd/sweep. Callers are expected to be serialized (the engine's
// ordered sink, the dispatcher's serialized progress callback); the
// Publisher itself does not lock.
type Publisher struct {
	hub   *Hub
	now   func() time.Time
	start time.Time
	last  time.Time
}

// NewPublisher returns a publisher anchored at the current time.
func NewPublisher(hub *Hub) *Publisher {
	p := &Publisher{hub: hub, now: time.Now}
	p.start = p.now()
	return p
}

// SetClock replaces the time source (tests); call before the first
// Publish. It re-anchors the start and throttle times.
func (p *Publisher) SetClock(now func() time.Time) {
	p.now = now
	p.start = now()
	p.last = time.Time{}
}

// Due reports whether a publication would go out now — final snapshots
// always, others at most every Throttle. Hot paths check Due before
// building snapshot views so a throttled trial allocates nothing.
func (p *Publisher) Due(final bool) bool {
	return final || p.now().Sub(p.last) >= Throttle
}

// ForceDue lets the next publication bypass the throttle — used at
// group boundaries so a finished curve renders at 100% immediately.
func (p *Publisher) ForceDue() { p.last = time.Time{} }

// Publish stamps and publishes one snapshot, subject to the throttle;
// it returns whether the snapshot went out. fleet/shards/groups are
// taken as-is; elapsed, rate, ETA, and the heatmap are computed here.
func (p *Publisher) Publish(fleet experiment.Progress, shards []ShardView, groups []GroupView, final bool) bool {
	if !p.Due(final) {
		return false
	}
	now := p.now()
	p.last = now
	snap := Snapshot{
		Fleet:    fleet,
		Shards:   shards,
		Groups:   groups,
		ElapsedS: now.Sub(p.start).Seconds(),
		ETAS:     -1,
		Final:    final,
	}
	if snap.ElapsedS > 0 {
		snap.TrialsPerS = float64(fleet.Done) / snap.ElapsedS
	}
	if snap.TrialsPerS > 0 && fleet.Total > fleet.Done {
		snap.ETAS = float64(fleet.Total-fleet.Done) / snap.TrialsPerS
	}
	if len(groups) > 0 {
		snap.Heatmap = visual.Heatmap(heatRows(groups), 24)
	}
	p.hub.Publish(snap)
	return true
}

// GroupTimer records wall-clock spans per group: the first and last
// observation of each group's activity. The campaign sink feeds it per
// trial; the ledger records its Seconds. Observations are
// allocation-free once a group's entries exist.
type GroupTimer struct {
	now   func() time.Time
	first map[string]time.Time
	last  map[string]time.Time
}

// NewGroupTimer returns an empty timer on the real clock.
func NewGroupTimer() *GroupTimer {
	return &GroupTimer{now: time.Now, first: make(map[string]time.Time), last: make(map[string]time.Time)}
}

// Observe records activity in group at the current time.
func (g *GroupTimer) Observe(group string) {
	now := g.now()
	if _, ok := g.first[group]; !ok {
		g.first[group] = now
	}
	g.last[group] = now
}

// Seconds returns each observed group's active span in seconds. A group
// seen once spans zero; ordering is the map's (callers sort).
func (g *GroupTimer) Seconds() map[string]float64 {
	if len(g.first) == 0 {
		return nil
	}
	out := make(map[string]float64, len(g.first))
	for group, f := range g.first {
		out[group] = g.last[group].Sub(f).Seconds()
	}
	return out
}

// Tracker folds a single-process campaign's ordered trial stream into
// dashboard snapshots: aggregate done/total, per-group completion in
// job-space order, and per-group wall timing for the ledger. It is
// driven from the engine's serialized sink, so it does not lock; the
// steady-state per-trial cost (TrialDone between publications) is
// allocation-free.
type Tracker struct {
	pub        *Publisher
	timer      *GroupTimer
	total      int
	done       int
	order      []string
	groupTotal map[string]int
	groupDone  map[string]int
	cur        string
}

// NewTracker sizes a tracker for total trials across the given groups
// (job-space order; totals per group). Group accounting is skipped when
// order is empty.
func NewTracker(pub *Publisher, total int, order []string, groupTotal map[string]int) *Tracker {
	t := &Tracker{
		pub:        pub,
		timer:      NewGroupTimer(),
		total:      total,
		order:      order,
		groupTotal: groupTotal,
		groupDone:  make(map[string]int, len(groupTotal)),
	}
	t.timer.now = pub.now
	return t
}

// TrialDone records one finished trial of the given group and publishes
// a snapshot when one is due. A group completing forces a publication,
// so the heatmap never sticks below 100% on a finished curve.
func (t *Tracker) TrialDone(group string) {
	t.done++
	t.cur = group
	t.timer.Observe(group)
	boundary := false
	if len(t.order) > 0 {
		t.groupDone[group]++
		boundary = t.groupDone[group] == t.groupTotal[group]
	}
	final := t.done == t.total
	if !final && !boundary && !t.pub.Due(false) {
		return
	}
	if boundary {
		t.pub.ForceDue()
	}
	t.publish(final)
}

// Final publishes the terminal snapshot; call once after the campaign
// completes (even when done < total, e.g. an aborted run).
func (t *Tracker) Final() { t.publish(true) }

// GroupSeconds returns per-group wall timing for the ledger.
func (t *Tracker) GroupSeconds() map[string]float64 { return t.timer.Seconds() }

func (t *Tracker) publish(final bool) {
	var groups []GroupView
	if len(t.order) > 0 {
		groups = make([]GroupView, len(t.order))
		for i, g := range t.order {
			groups[i] = GroupView{Group: g, Done: t.groupDone[g], Total: t.groupTotal[g]}
		}
	}
	fleet := experiment.Progress{Done: t.done, Total: t.total}
	if !final && t.cur != "" {
		fleet.Group = t.cur
		fleet.GroupDone = t.groupDone[t.cur]
	}
	t.pub.Publish(fleet, nil, groups, final)
}
