package telemetry

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

//go:embed dash.html
var dashHTML []byte

// Server is the live campaign dashboard: an HTTP server over a Hub.
//
//	GET /                 single-file HTML dashboard
//	GET /events           SSE stream of Snapshot JSON (one per publish)
//	GET /events?format=ndjson
//	                      the same stream as newline-delimited JSON
//	GET /healthz          liveness: {"status":"ok","uptime_s":...}
//	GET /debug/pprof/...  net/http/pprof, only when built with Pprof
//
// cmd/sweep starts one under -dash; the future sweepd embeds the same
// server, which is why it lives here and not in the command.
type Server struct {
	hub *Hub
	// Pprof opts the profiling endpoints in; off by default because a
	// dashboard port is often reachable by more than the operator.
	Pprof bool

	srv   *http.Server
	ln    net.Listener
	start time.Time
}

// NewServer wraps hub; call Start to serve.
func NewServer(hub *Hub) *Server {
	return &Server{hub: hub}
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in the background. It returns the bound address, so callers can
// advertise the real port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: dashboard listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.ln = ln
	s.start = time.Now()
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the server down: the hub closes first, so connected event
// streams drain their buffered snapshots (the final one included) and
// end, then the listener stops. Safe to call without Start.
func (s *Server) Close() error {
	s.hub.Close()
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashHTML)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleEvents streams the hub to one client until the client leaves or
// the hub closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ServeHubEvents(w, r, s.hub)
}

// ServeHubEvents streams one hub to one HTTP client until the client
// leaves or the hub closes. SSE frames by default ("data: {...}\n\n");
// NDJSON with ?format=ndjson for curl/jq and programmatic consumers.
// A hub that closed before the client subscribed still serves its last
// published snapshot, so a late joiner to a finished run sees the final
// state instead of an empty stream. Shared by the -dash Server and
// sweepd's per-campaign event endpoints.
func ServeHubEvents(w http.ResponseWriter, r *http.Request, hub *Hub) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	writeFrame := func(b []byte) error {
		var err error
		if ndjson {
			_, err = fmt.Fprintf(w, "%s\n", b)
		} else {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		}
		if err == nil {
			flusher.Flush()
		}
		return err
	}
	sub := hub.Subscribe()
	defer hub.Unsubscribe(sub)
	wrote := false
	for {
		select {
		case b, open := <-sub.Events():
			if !open {
				if !wrote {
					if last := hub.Last(); last != nil {
						writeFrame(last)
					}
				}
				return
			}
			if err := writeFrame(b); err != nil {
				return
			}
			wrote = true
		case <-r.Context().Done():
			return
		}
	}
}
