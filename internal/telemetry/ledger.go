package telemetry

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Run outcomes recorded in Record.Status. Ledgers written before the
// field existed have it empty, which readers treat as completed (only
// successful runs were recorded then).
const (
	StatusCompleted = "completed"
	StatusFailed    = "failed"
	StatusAborted   = "aborted"
)

// Record is one campaign run in the ledger — the append-only NDJSON
// run-history file cmd/sweep writes when a run ends (successfully or
// not) and cmd/runlog queries. One line, one run; the spec is keyed by
// content hash so identical campaigns are recognizable across runs,
// names, and machines (determinism makes the hash a result key too).
type Record struct {
	// Time is the completion time (UTC).
	Time time.Time `json:"time"`
	// Name is the campaign name (the manifest's base name).
	Name string `json:"name"`
	// Mode says how the run executed: "run" (single process), "shard"
	// (one replicate block of a larger campaign), or "dispatch" (a
	// supervised fleet).
	Mode string `json:"mode"`
	// Status says how the run ended: StatusCompleted, StatusFailed (a
	// worker or the engine errored), or StatusAborted (drained on
	// SIGINT/SIGTERM). Empty means completed (pre-status ledgers).
	Status string `json:"status,omitempty"`
	// SpecHash is SpecHash() of the normalized campaign spec — the same
	// spec the manifest embeds, so re-marshaling a manifest's spec
	// reproduces it.
	SpecHash string `json:"spec_hash"`
	// Manifest is the path of the written campaign manifest.
	Manifest string `json:"manifest"`
	// Jobs and Points mirror the manifest's accounting.
	Jobs   int `json:"jobs"`
	Points int `json:"points"`
	// Workers is the per-process pool size (0 = all cores); Shards the
	// fleet size of a dispatch run; Retries the number of worker
	// relaunches the fleet needed.
	Workers int `json:"workers,omitempty"`
	Shards  int `json:"shards,omitempty"`
	Retries int `json:"retries,omitempty"`
	// ShardFirst/ShardCount echo a shard run's replicate range.
	ShardFirst int `json:"shard_first,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// WallS is the run's wall-clock seconds, CPUS the process (and
	// reaped children's) CPU seconds, TrialsPerS the executed-trial
	// rate over the wall clock.
	WallS      float64 `json:"wall_s"`
	CPUS       float64 `json:"cpu_s,omitempty"`
	TrialsPerS float64 `json:"trials_per_s,omitempty"`
	// GroupSeconds is each group's active wall span (first to last
	// completed trial; snapshot-granular for dispatch runs).
	GroupSeconds map[string]float64 `json:"group_s,omitempty"`
}

// execOnlySpecKeys are the top-level campaign-spec JSON fields that
// change how a run executes — parallelism, memory pooling, which slice
// of the replicate range a process computes — but never what the full
// campaign computes. The spec hash strips them so it identifies the
// science alone: a campaign run with -workers 1, -workers 8, or split
// across a dispatch fleet hashes to the same key, and the
// content-addressed manifest store dedupes them to one entry.
var execOnlySpecKeys = []string{"workers", "fresh_build", "shard_first", "shard_count"}

// SpecHash content-addresses a campaign spec: "sha256:" plus the hex
// digest of its JSON form with execution-only fields removed. The
// stripped object re-marshals with sorted keys and the original raw
// field values, so equal science hashes equal regardless of where, how
// parallel, or in which field order it ran.
func SpecHash(spec any) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("telemetry: marshal spec for hashing: %w", err)
	}
	// Strip at the JSON layer rather than on a concrete spec type so the
	// package stays agnostic of what a spec is. Non-object specs hash
	// their raw form.
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(b, &fields); err == nil && fields != nil {
		for _, k := range execOnlySpecKeys {
			delete(fields, k)
		}
		if nb, err := json.Marshal(fields); err == nil {
			b = nb
		}
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b)), nil
}

// AppendRecord appends one record to the ledger at path (created if
// missing), stamping Time with the current UTC time when unset. The
// record is written as a single line, so concurrent appenders (shards
// sharing an out directory) interleave whole records.
func AppendRecord(path string, r Record) error {
	if r.Time.IsZero() {
		r.Time = time.Now().UTC()
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("telemetry: marshal ledger record: %w", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: ledger: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: ledger append: %w", err)
	}
	return f.Close()
}

// ReadLedger loads every record of the ledger at path in append order.
// Blank lines are skipped; a malformed line fails with its line number,
// because a silently dropped record would falsify the run history.
func ReadLedger(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: ledger: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(text, &r); err != nil {
			return nil, fmt.Errorf("telemetry: ledger %s line %d: %w", path, line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: ledger %s: %w", path, err)
	}
	return out, nil
}
