//go:build unix

package telemetry

import "syscall"

// CPUSeconds returns the user+system CPU time consumed by this process
// and its reaped children — for a dispatch driver, the supervised
// worker subprocesses it has already waited on.
func CPUSeconds() float64 {
	total := 0.0
	for _, who := range []int{syscall.RUSAGE_SELF, syscall.RUSAGE_CHILDREN} {
		var ru syscall.Rusage
		if err := syscall.Getrusage(who, &ru); err != nil {
			continue
		}
		total += tvSeconds(ru.Utime) + tvSeconds(ru.Stime)
	}
	return total
}

func tvSeconds(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}
