package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"wsncover/internal/experiment"
)

func startTestServer(t *testing.T, pprof bool) (*Server, *Hub, string) {
	t.Helper()
	hub := NewHub()
	srv := NewServer(hub)
	srv.Pprof = pprof
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, hub, "http://" + addr
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestServerIndexAndHealthz(t *testing.T) {
	_, _, base := startTestServer(t, false)
	resp, body := get(t, base+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "wsncover fleet") {
		t.Errorf("index: status %d, body %.80q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("index content type %q", ct)
	}
	resp, body = get(t, base+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, body %q", resp.StatusCode, body)
	}
	resp, body = get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status  string  `json:"status"`
		UptimeS float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.UptimeS < 0 {
		t.Errorf("healthz = %+v", health)
	}
}

func TestServerPprofGating(t *testing.T) {
	_, _, base := startTestServer(t, false)
	resp, _ := get(t, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}
	_, _, base = startTestServer(t, true)
	resp, body := get(t, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("pprof on: status %d", resp.StatusCode)
	}
}

// readSSEEvent scans one "data: {...}" frame off an SSE stream.
func readSSEEvent(t *testing.T, r *bufio.Reader) Snapshot {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if payload, ok := strings.CutPrefix(strings.TrimSpace(line), "data: "); ok {
			var s Snapshot
			if err := json.Unmarshal([]byte(payload), &s); err != nil {
				t.Fatalf("bad SSE payload %q: %v", payload, err)
			}
			return s
		}
	}
}

func TestServerEventsSSE(t *testing.T) {
	srv, hub, base := startTestServer(t, false)
	hub.Publish(Snapshot{Fleet: experiment.Progress{Done: 1, Total: 8}})

	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Errorf("SSE content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	// The pre-subscribe publication replays immediately.
	if s := readSSEEvent(t, r); s.Fleet.Done != 1 {
		t.Errorf("replayed event = %+v", s)
	}
	hub.Publish(Snapshot{Fleet: experiment.Progress{Done: 8, Total: 8}, Final: true})
	if s := readSSEEvent(t, r); !s.Final || s.Fleet.Done != 8 {
		t.Errorf("live event = %+v", s)
	}
	// Closing the server ends the stream after draining.
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(r)
		done <- err
	}()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("stream should end cleanly, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after Close")
	}
}

func TestServerEventsNDJSON(t *testing.T) {
	_, hub, base := startTestServer(t, false)
	hub.Publish(Snapshot{Fleet: experiment.Progress{Done: 3, Total: 9}})
	resp, err := http.Get(base + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("NDJSON content type %q", ct)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(line), &s); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
	if s.Fleet.Done != 3 || s.Fleet.Total != 9 {
		t.Errorf("event = %+v", s)
	}
}

func TestServerCloseWithoutStart(t *testing.T) {
	srv := NewServer(NewHub())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func ExampleSnapshot_marshaling() {
	b, _ := json.Marshal(Snapshot{
		Fleet:      experiment.Progress{Done: 2, Total: 4, Group: "SR", GroupDone: 2},
		ElapsedS:   1,
		TrialsPerS: 2,
		ETAS:       1,
	})
	fmt.Println(string(b))
	// Output: {"fleet":{"done":2,"total":4,"group":"SR","group_done":2},"elapsed_s":1,"trials_per_s":2,"eta_s":1}
}
