package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Environment variables configuring every command's structured logging.
// WSNSWEEP_LOG sets the level (debug, info, warn, error; default info);
// WSNSWEEP_LOG_FORMAT selects text (default) or json, the latter making
// worker-retry and checkpoint-resume events machine-parseable in
// aggregated fleet logs.
const (
	LogLevelEnv  = "WSNSWEEP_LOG"
	LogFormatEnv = "WSNSWEEP_LOG_FORMAT"
)

// ParseLogLevel maps a WSNSWEEP_LOG value onto a slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: bad %s %q (want debug, info, warn, or error)", LogLevelEnv, s)
}

// NewLogger builds the slog.Logger shared by cmd/sweep and the dispatch
// driver, writing to w (normally stderr, so stdout protocols stay
// clean). Level and format come from the environment; an unparseable
// level falls back to info and is reported on the logger itself rather
// than failing a run over a typo.
func NewLogger(w io.Writer) *slog.Logger {
	level, levelErr := ParseLogLevel(os.Getenv(LogLevelEnv))
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(strings.TrimSpace(os.Getenv(LogFormatEnv)), "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	logger := slog.New(h)
	if levelErr != nil {
		logger.Warn("ignoring bad log level", "err", levelErr)
	}
	return logger
}
