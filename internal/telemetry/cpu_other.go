//go:build !unix

package telemetry

// CPUSeconds is unavailable off unix; ledger records carry zero and
// omit the field.
func CPUSeconds() float64 { return 0 }
