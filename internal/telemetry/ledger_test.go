package telemetry

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wsncover/internal/sim"
)

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	recs := []Record{
		{
			Time: time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC),
			Name: "churn", Mode: "run", SpecHash: "sha256:0011", Manifest: "out/churn.json",
			Jobs: 96, Points: 12, WallS: 3.5, TrialsPerS: 27.4,
			GroupSeconds: map[string]float64{"SR": 1.2, "AR": 2.1},
		},
		{
			Name: "churn", Mode: "dispatch", SpecHash: "sha256:0011", Manifest: "out/churn.json",
			Jobs: 96, Points: 12, Shards: 4, Retries: 1, WallS: 1.1,
		},
	}
	for _, r := range recs {
		if err := AppendRecord(path, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	if got[0].Time != recs[0].Time || got[0].GroupSeconds["AR"] != 2.1 {
		t.Errorf("record 0 = %+v", got[0])
	}
	// A zero Time is stamped at append, so the history is always ordered.
	if got[1].Time.IsZero() {
		t.Error("AppendRecord should stamp a zero Time")
	}
	if got[1].Shards != 4 || got[1].Retries != 1 {
		t.Errorf("record 1 = %+v", got[1])
	}
}

func TestReadLedgerRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	content := `{"name":"ok","mode":"run"}` + "\n\n" + "{broken\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadLedger(path)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want a line-3 parse failure (blank lines skipped but counted)", err)
	}
}

func TestSpecHashDeterministicAndDiscriminating(t *testing.T) {
	spec := sim.CampaignSpec{
		Schemes: []sim.SchemeKind{sim.SR, sim.AR},
		Grids:   []sim.GridSize{{Cols: 16, Rows: 16}},
		Spares:  []int{8, 16}, Replicates: 10, BaseSeed: 42,
	}.Normalized()
	h1, err := SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := SpecHash(spec)
	if h1 != h2 {
		t.Errorf("hash not deterministic: %s vs %s", h1, h2)
	}
	if !strings.HasPrefix(h1, "sha256:") || len(h1) != len("sha256:")+64 {
		t.Errorf("hash format %q", h1)
	}
	other := spec
	other.BaseSeed = 43
	if h3, _ := SpecHash(other); h3 == h1 {
		t.Error("different specs must hash differently")
	}
}

// TestSpecHashIgnoresExecutionOnlyFields pins the cache-key contract:
// two differently-parallelized submissions of the same science must
// collide to one content-addressed store entry. Worker pool size,
// arena pooling, and shard layout change wall clock or which process
// computes which slice — never the merged campaign results.
func TestSpecHashIgnoresExecutionOnlyFields(t *testing.T) {
	base := sim.CampaignSpec{
		Schemes: []sim.SchemeKind{sim.SR, sim.AR},
		Grids:   []sim.GridSize{{Cols: 12, Rows: 12}},
		Spares:  []int{15, 60}, Replicates: 8, BaseSeed: 2008,
	}.Normalized()
	want, err := SpecHash(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*sim.CampaignSpec){
		"workers=1":    func(s *sim.CampaignSpec) { s.Workers = 1 },
		"workers=8":    func(s *sim.CampaignSpec) { s.Workers = 8 },
		"fresh_build":  func(s *sim.CampaignSpec) { s.FreshBuild = true },
		"shard layout": func(s *sim.CampaignSpec) { s.ShardFirst, s.ShardCount = 2, 4 },
	}
	for name, mutate := range variants {
		v := base
		mutate(&v)
		got, err := SpecHash(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: hash %s, want the base spec's %s (execution-only fields must not affect the cache key)",
				name, got, want)
		}
	}
	// The science itself still discriminates.
	science := base
	science.Spares = []int{15, 61}
	if got, _ := SpecHash(science); got == want {
		t.Error("a different spare list must change the hash")
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"DEBUG":   slog.LevelDebug,
		" warn ":  slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Error("bad level should error")
	}
}

func TestNewLoggerEnvConfig(t *testing.T) {
	t.Setenv(LogLevelEnv, "debug")
	t.Setenv(LogFormatEnv, "json")
	var buf bytes.Buffer
	log := NewLogger(&buf)
	log.Debug("fleet event", "shard", 3)
	out := buf.String()
	if !strings.Contains(out, `"shard":3`) || !strings.Contains(out, "fleet event") {
		t.Errorf("json debug output = %q", out)
	}

	// Default: text at info — debug is filtered.
	t.Setenv(LogLevelEnv, "")
	t.Setenv(LogFormatEnv, "")
	buf.Reset()
	log = NewLogger(&buf)
	log.Debug("hidden")
	log.Info("shown", "attempt", 2)
	out = buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "attempt=2") {
		t.Errorf("text info output = %q", out)
	}

	// A typo'd level degrades to info with a warning, not a failure.
	t.Setenv(LogLevelEnv, "loud")
	buf.Reset()
	log = NewLogger(&buf)
	if !strings.Contains(buf.String(), "ignoring bad log level") {
		t.Errorf("bad level should warn on the logger itself, got %q", buf.String())
	}
	log.Info("still works")
	if !strings.Contains(buf.String(), "still works") {
		t.Error("logger should stay usable after a bad level")
	}
}
