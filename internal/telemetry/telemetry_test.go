package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"wsncover/internal/experiment"
)

func drain(sub *Subscriber) []Snapshot {
	var out []Snapshot
	for {
		select {
		case b, open := <-sub.Events():
			if !open {
				return out
			}
			var s Snapshot
			if err := json.Unmarshal(b, &s); err != nil {
				panic(err)
			}
			out = append(out, s)
		default:
			return out
		}
	}
}

func TestHubBroadcastAndReplay(t *testing.T) {
	hub := NewHub()
	early := hub.Subscribe()
	hub.Publish(Snapshot{Fleet: experiment.Progress{Done: 1, Total: 10}})
	hub.Publish(Snapshot{Fleet: experiment.Progress{Done: 2, Total: 10}})

	got := drain(early)
	if len(got) != 2 || got[0].Fleet.Done != 1 || got[1].Fleet.Done != 2 {
		t.Fatalf("early subscriber got %+v", got)
	}
	// A late joiner replays the last event immediately.
	late := hub.Subscribe()
	got = drain(late)
	if len(got) != 1 || got[0].Fleet.Done != 2 {
		t.Fatalf("late subscriber got %+v, want the last event", got)
	}
	if hub.Last() == nil {
		t.Error("Last should hold the latest marshaled snapshot")
	}
	hub.Unsubscribe(early)
	hub.Unsubscribe(late)
}

func TestHubDropsOldestWhenSlow(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe()
	// Overflow the buffer without draining; the newest events survive.
	for i := 1; i <= subscriberBuffer+5; i++ {
		hub.Publish(Snapshot{Fleet: experiment.Progress{Done: i, Total: 100}})
	}
	got := drain(sub)
	if len(got) != subscriberBuffer {
		t.Fatalf("buffered %d events, want %d", len(got), subscriberBuffer)
	}
	if last := got[len(got)-1].Fleet.Done; last != subscriberBuffer+5 {
		t.Errorf("newest buffered event done = %d, want %d (oldest dropped, not newest)",
			last, subscriberBuffer+5)
	}
}

func TestHubCloseDrainsBufferedEvents(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe()
	hub.Publish(Snapshot{Final: true})
	hub.Close()
	// The final event published before Close is still delivered.
	b, open := <-sub.Events()
	if !open {
		t.Fatal("channel closed before draining the final snapshot")
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil || !s.Final {
		t.Fatalf("drained %s, want the final snapshot", b)
	}
	if _, open := <-sub.Events(); open {
		t.Error("channel should be closed after the drain")
	}
	// Post-close operations are inert.
	hub.Publish(Snapshot{})
	if got := hub.Subscribe(); got == nil {
		t.Error("Subscribe after Close should return a closed subscriber, not nil")
	} else if _, open := <-got.Events(); open {
		t.Error("post-close subscriber should be closed")
	}
	hub.Close() // idempotent
}

func TestPublisherThrottleAndStamps(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe()
	pub := NewPublisher(hub)
	clock := time.Unix(1000, 0)
	pub.SetClock(func() time.Time { return clock })

	fleet := experiment.Progress{Done: 10, Total: 40}
	clock = clock.Add(2 * time.Second)
	if !pub.Publish(fleet, nil, nil, false) {
		t.Fatal("first publication should go out")
	}
	// Within the throttle window, non-final publications are suppressed
	// and Due pre-reports it so hot paths skip building views.
	clock = clock.Add(Throttle / 2)
	if pub.Due(false) {
		t.Error("Due inside the throttle window")
	}
	if pub.Publish(fleet, nil, nil, false) {
		t.Error("throttled publication went out")
	}
	if !pub.Due(true) {
		t.Error("final is always due")
	}
	if !pub.Publish(experiment.Progress{Done: 40, Total: 40}, nil, nil, true) {
		t.Error("final publication suppressed")
	}

	got := drain(sub)
	if len(got) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(got))
	}
	first := got[0]
	if first.ElapsedS != 2 {
		t.Errorf("elapsed = %v, want 2", first.ElapsedS)
	}
	if first.TrialsPerS != 5 {
		t.Errorf("rate = %v, want 5", first.TrialsPerS)
	}
	if first.ETAS != 6 { // 30 remaining / 5 per second
		t.Errorf("eta = %v, want 6", first.ETAS)
	}
	final := got[1]
	if !final.Final {
		t.Error("final snapshot unmarked")
	}
	if final.ETAS >= 0 {
		t.Errorf("completed run eta = %v, want negative (unknown/none)", final.ETAS)
	}
}

func TestPublisherZeroElapsedNoDivideByZero(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe()
	pub := NewPublisher(hub)
	now := time.Unix(0, 0)
	pub.SetClock(func() time.Time { return now })
	// Zero elapsed, zero done: rate 0, ETA unknown.
	pub.Publish(experiment.Progress{Done: 0, Total: 0}, nil, nil, false)
	got := drain(sub)
	if len(got) != 1 {
		t.Fatal("want one snapshot")
	}
	if got[0].TrialsPerS != 0 || got[0].ETAS != -1 {
		t.Errorf("zero-state snapshot = %+v, want rate 0 and eta -1", got[0])
	}
}

func TestTrackerGroupBoundariesAndFinal(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe()
	pub := NewPublisher(hub)
	clock := time.Unix(0, 0)
	pub.SetClock(func() time.Time { return clock })

	order := []string{"SR", "AR"}
	tr := NewTracker(pub, 4, order, map[string]int{"SR": 2, "AR": 2})
	clock = clock.Add(time.Second)
	tr.TrialDone("SR") // due (first since anchor): publishes
	tr.TrialDone("SR") // group boundary: forces a publication
	tr.TrialDone("AR") // throttled
	clock = clock.Add(time.Second)
	tr.TrialDone("AR") // final

	got := drain(sub)
	if len(got) != 3 {
		t.Fatalf("got %d snapshots, want 3 (due, boundary, final): %+v", len(got), got)
	}
	boundary := got[1]
	if boundary.Fleet.Group != "SR" || boundary.Fleet.GroupDone != 2 {
		t.Errorf("boundary fleet = %+v, want group SR done 2", boundary.Fleet)
	}
	if len(boundary.Groups) != 2 || boundary.Groups[0].Group != "SR" || boundary.Groups[0].Done != 2 {
		t.Errorf("boundary groups = %+v", boundary.Groups)
	}
	if boundary.Heatmap == "" || !strings.Contains(boundary.Heatmap, "SR") {
		t.Errorf("boundary heatmap = %q", boundary.Heatmap)
	}
	final := got[2]
	if !final.Final || final.Fleet.Done != 4 || final.Fleet.Group != "" {
		t.Errorf("final = %+v, want groupless 4/4 final", final)
	}
	secs := tr.GroupSeconds()
	if len(secs) != 2 {
		t.Fatalf("group seconds = %v", secs)
	}
	if secs["AR"] != 1 { // first AR trial at t=1s, last at t=2s
		t.Errorf("AR span = %v, want 1", secs["AR"])
	}
}

func TestGroupTimerSpans(t *testing.T) {
	g := NewGroupTimer()
	clock := time.Unix(0, 0)
	g.now = func() time.Time { return clock }
	if g.Seconds() != nil {
		t.Error("empty timer should report nil")
	}
	g.Observe("a")
	clock = clock.Add(3 * time.Second)
	g.Observe("a")
	g.Observe("b")
	secs := g.Seconds()
	if secs["a"] != 3 || secs["b"] != 0 {
		t.Errorf("spans = %v", secs)
	}
}
