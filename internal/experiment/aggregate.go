package experiment

import (
	"fmt"
	"math"
	"sort"

	"wsncover/internal/plotdata"
	"wsncover/internal/stats"
)

// Sample is one replicate's measurements at one sweep point. Group names
// the curve the point belongs to (typically scheme + configuration), X
// is the abscissa (typically the spare count N), and Values holds the
// named metrics observed in this replicate.
type Sample struct {
	Group  string             `json:"group"`
	X      float64            `json:"x"`
	Values map[string]float64 `json:"values"`
}

// Point is the aggregate of every replicate that shares one (Group, X)
// cell: each metric summarized by stats.Describe (mean, CI95, order
// statistics).
type Point struct {
	Group   string                       `json:"group"`
	X       float64                      `json:"x"`
	Metrics map[string]stats.Description `json:"metrics"`
}

// Mean returns the mean of the named metric, or 0 when absent.
func (p Point) Mean(metric string) float64 { return p.Metrics[metric].Mean }

// Aggregate groups samples by (Group, X) and computes the descriptive
// statistics of every metric across the group's replicates. Points come
// back sorted by group then X, and metric values are accumulated in
// sample order, so equal inputs aggregate to bit-identical outputs.
func Aggregate(samples []Sample) []Point {
	type cell struct {
		group  string
		x      float64
		values map[string][]float64
	}
	type key struct {
		group string
		x     float64
	}
	cells := make(map[key]*cell)
	order := make([]key, 0)
	for _, s := range samples {
		k := key{s.Group, s.X}
		c, ok := cells[k]
		if !ok {
			c = &cell{group: s.Group, x: s.X, values: make(map[string][]float64)}
			cells[k] = c
			order = append(order, k)
		}
		for name, v := range s.Values {
			c.values[name] = append(c.values[name], v)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].group != order[j].group {
			return order[i].group < order[j].group
		}
		return order[i].x < order[j].x
	})
	out := make([]Point, 0, len(order))
	for _, k := range order {
		c := cells[k]
		metrics := make(map[string]stats.Description, len(c.values))
		for name, xs := range c.values {
			metrics[name] = stats.Describe(xs)
		}
		out = append(out, Point{Group: c.group, X: c.x, Metrics: metrics})
	}
	return out
}

// Table assembles one metric of an aggregated point set into a plotdata
// table: the shared X axis is the sorted union of every point's X, and
// each group becomes one series of metric means. Cells a group never
// visited are NaN so sparse sweeps still export.
func Table(points []Point, metric, title, xlabel, ylabel string) (*plotdata.Table, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("experiment: no points to tabulate")
	}
	xSet := make(map[float64]bool)
	groupOrder := make([]string, 0)
	seenGroup := make(map[string]bool)
	for _, p := range points {
		xSet[p.X] = true
		if !seenGroup[p.Group] {
			seenGroup[p.Group] = true
			groupOrder = append(groupOrder, p.Group)
		}
	}
	xs := make([]float64, 0, len(xSet))
	for x := range xSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	xIndex := make(map[float64]int, len(xs))
	for i, x := range xs {
		xIndex[x] = i
	}
	series := make([]plotdata.Series, 0, len(groupOrder))
	byGroup := make(map[string][]float64, len(groupOrder))
	for _, g := range groupOrder {
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = math.NaN()
		}
		byGroup[g] = ys
	}
	found := false
	for _, p := range points {
		d, ok := p.Metrics[metric]
		if !ok {
			continue
		}
		found = true
		byGroup[p.Group][xIndex[p.X]] = d.Mean
	}
	if !found {
		return nil, fmt.Errorf("experiment: metric %q absent from all points", metric)
	}
	for _, g := range groupOrder {
		series = append(series, plotdata.Series{Label: g, Y: byGroup[g]})
	}
	return plotdata.NewTable(title, xlabel, ylabel, xs, series...)
}

// MetricNames returns the sorted union of metric names across points.
func MetricNames(points []Point) []string {
	seen := make(map[string]bool)
	for _, p := range points {
		for name := range p.Metrics {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
