package experiment

import (
	"fmt"
	"sort"

	"wsncover/internal/stats"
)

// MergeShardPoints stitches the aggregated points of campaign shards —
// runs of the same spec over disjoint replicate subranges — into the
// point set of the combined campaign. Every shard must cover exactly
// the same (group, X) cells with the same metric names: shards differ
// only in which replicates they ran, never in which curves they
// produced, so any asymmetry is a sharding mistake and fails loudly.
// Per-cell statistics combine with stats.Description.Merge (exact for
// count/mean/min/max, pooled variance, estimated median); the output is
// sorted like Aggregate's.
func MergeShardPoints(shards ...[]Point) ([]Point, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("experiment: no shards to merge")
	}
	type key struct {
		group string
		x     float64
	}
	merged := make(map[key]Point, len(shards[0]))
	order := make([]key, 0, len(shards[0]))
	for _, p := range shards[0] {
		k := key{p.Group, p.X}
		if _, dup := merged[k]; dup {
			return nil, fmt.Errorf("experiment: duplicate cell (%s, %g) in shard 0", p.Group, p.X)
		}
		metrics := make(map[string]stats.Description, len(p.Metrics))
		for name, d := range p.Metrics {
			metrics[name] = d
		}
		merged[k] = Point{Group: p.Group, X: p.X, Metrics: metrics}
		order = append(order, k)
	}
	for si, shard := range shards[1:] {
		if len(shard) != len(merged) {
			return nil, fmt.Errorf("experiment: shard %d has %d cells, shard 0 has %d",
				si+1, len(shard), len(merged))
		}
		seen := make(map[key]bool, len(shard))
		for _, p := range shard {
			k := key{p.Group, p.X}
			if seen[k] {
				return nil, fmt.Errorf("experiment: duplicate cell (%s, %g) in shard %d",
					p.Group, p.X, si+1)
			}
			seen[k] = true
			base, ok := merged[k]
			if !ok {
				return nil, fmt.Errorf("experiment: shard %d cell (%s, %g) absent from shard 0",
					si+1, p.Group, p.X)
			}
			if len(p.Metrics) != len(base.Metrics) {
				return nil, fmt.Errorf("experiment: shard %d cell (%s, %g) has %d metrics, shard 0 has %d",
					si+1, p.Group, p.X, len(p.Metrics), len(base.Metrics))
			}
			for name, d := range p.Metrics {
				bd, ok := base.Metrics[name]
				if !ok {
					return nil, fmt.Errorf("experiment: shard %d cell (%s, %g) metric %q absent from shard 0",
						si+1, p.Group, p.X, name)
				}
				base.Metrics[name] = bd.Merge(d)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].group != order[j].group {
			return order[i].group < order[j].group
		}
		return order[i].x < order[j].x
	})
	out := make([]Point, 0, len(order))
	for _, k := range order {
		out = append(out, merged[k])
	}
	return out, nil
}
