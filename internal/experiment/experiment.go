// Package experiment is the deterministic parallel experiment engine.
// It executes batches of independent jobs — simulation trials, parameter
// points, replicates — across a pool of worker goroutines and returns
// their results in job order, so the output is bit-identical regardless
// of the worker count or the order in which jobs happen to finish.
//
// The engine is deliberately domain-agnostic: a job is just an index and
// a function. Domain layers (internal/sim's sweeps and campaigns, the
// figure generators, cmd/sweep) enumerate their job space up front, fix
// every job's random seed before dispatch (see Seeds), and fold the
// ordered results afterwards. Determinism therefore never depends on
// scheduling.
//
// On top of the runner the package supplies an aggregation layer:
// Sample/Aggregate group replicate measurements into stats.Describe
// summaries with 95% confidence intervals, Table exports any metric as a
// plotdata table, and Manifest serializes a whole campaign as JSON.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a Run.
type Options struct {
	// Workers is the size of the goroutine pool; values below 1 mean
	// runtime.GOMAXPROCS(0). The pool never exceeds the job count.
	Workers int
	// Progress, when non-nil, is called after every completed job with
	// the number of jobs done so far and the total. Calls are serialized
	// but may come from any worker goroutine; keep it fast.
	Progress func(done, total int)
}

// workerCount resolves the effective pool size for total jobs.
func (o Options) workerCount(total int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > total {
		w = total
	}
	return w
}

// Run executes fn(ctx, i) for every index i in [0, total) on a worker
// pool and returns the results ordered by index. The result slice is
// identical for any worker count because each job is a pure function of
// its index: jobs must draw randomness only from state fixed before the
// call (for example a per-index seed from Seeds).
//
// The first failing job cancels the context passed to in-flight jobs,
// stops unstarted work, and is returned. The reported error is
// deterministic as well: jobs are claimed in index order and in-flight
// jobs always finish, so the lowest failing index always runs and wins
// ties. Jobs interrupted by the cancellation should return ctx.Err();
// such echoes are not mistaken for the root cause. When the parent
// context is cancelled first, Run returns its error.
func Run[T any](ctx context.Context, total int, opts Options, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	if total < 0 {
		return nil, fmt.Errorf("experiment: negative job count %d", total)
	}
	if fn == nil {
		return nil, fmt.Errorf("experiment: nil job function")
	}
	results := make([]T, total)
	if total == 0 {
		return results, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next job index to claim
		mu       sync.Mutex   // guards done, firstErr, errIndex, Progress
		done     int
		firstErr error
		errIndex = total // lowest failing index seen so far
	)
	var wg sync.WaitGroup
	for w := opts.workerCount(total); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || ctx.Err() != nil {
					return
				}
				res, err := fn(ctx, i)
				if err != nil {
					// A job unwinding with the cancellation error after
					// another job already failed is an echo, not a cause.
					echo := ctx.Err() != nil && errors.Is(err, ctx.Err())
					mu.Lock()
					if i < errIndex && !echo {
						firstErr = fmt.Errorf("experiment: job %d: %w", i, err)
						errIndex = i
					}
					mu.Unlock()
					cancel()
					return
				}
				results[i] = res
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The deferred cancel has not run yet, so a non-nil error here means
	// the parent context was cancelled mid-run.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
