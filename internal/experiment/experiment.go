// Package experiment is the deterministic parallel experiment engine.
// It executes batches of independent jobs — simulation trials, parameter
// points, replicates — across a pool of worker goroutines and returns
// their results in job order, so the output is bit-identical regardless
// of the worker count or the order in which jobs happen to finish.
//
// The engine is deliberately domain-agnostic: a job is just an index and
// a function. Domain layers (internal/sim's sweeps and campaigns, the
// figure generators, cmd/sweep) enumerate their job space up front, fix
// every job's random seed before dispatch (see Seeds), and fold the
// ordered results afterwards. Determinism therefore never depends on
// scheduling.
//
// On top of the runner the package supplies an aggregation layer:
// Sample/Aggregate group replicate measurements into stats.Describe
// summaries with 95% confidence intervals, Table exports any metric as a
// plotdata table, and Manifest serializes a whole campaign as JSON. For
// campaigns too large to hold in memory, RunStream delivers results to a
// sink in job order and Accumulator folds the sample stream into online
// (Welford) per-group statistics, keeping memory independent of the
// replicate count.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a Run.
type Options struct {
	// Workers is the size of the goroutine pool; values below 1 mean
	// runtime.GOMAXPROCS(0). The pool never exceeds the job count.
	Workers int
	// Progress, when non-nil, is called after every completed job with
	// the number of jobs done so far and the total. Calls are serialized
	// but may come from any worker goroutine; keep it fast.
	Progress func(done, total int)
}

// WorkerCount resolves the effective pool size for total jobs: the
// Workers field, defaulted to GOMAXPROCS and capped at the job count.
// Callers sizing per-worker state (sim's trial arenas) use it to
// allocate exactly one slot per goroutine the run will start.
func (o Options) WorkerCount(total int) int {
	w := o.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > total {
		w = total
	}
	return w
}

// Run executes fn(ctx, i) for every index i in [0, total) on a worker
// pool and returns the results ordered by index. The result slice is
// identical for any worker count because each job is a pure function of
// its index: jobs must draw randomness only from state fixed before the
// call (for example a per-index seed from Seeds).
//
// The first failing job cancels the context passed to in-flight jobs,
// stops unstarted work, and is returned. The reported error is
// deterministic as well: jobs are claimed in index order and in-flight
// jobs always finish, so the lowest failing index always runs and wins
// ties. Jobs interrupted by the cancellation should return ctx.Err();
// such echoes are not mistaken for the root cause. When the parent
// context is cancelled first, Run returns its error.
func Run[T any](ctx context.Context, total int, opts Options, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	if total < 0 {
		return nil, fmt.Errorf("experiment: negative job count %d", total)
	}
	results := make([]T, total)
	err := RunStream(ctx, total, opts, fn, func(i int, res T) error {
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunStream is Run without result retention: each completed job's result
// is handed to sink exactly once, in strictly increasing index order, and
// then dropped. Out-of-order completions are buffered until the gap
// closes, and a worker about to start a job too far ahead of the flush
// point blocks until the gap narrows (the window is a small multiple of
// the pool size), so the buffer is genuinely O(workers), not O(jobs) —
// even when one early job is pathologically slow and the rest are fast —
// which is what lets million-trial campaigns aggregate online.
//
// sink calls are serialized (no locking needed inside) but may come from
// any worker goroutine. Because delivery order is the job order, a
// deterministic fold over the stream (for example the streaming
// Accumulator) is bit-identical at any worker count, exactly like Run's
// ordered slice. A sink error stops the run like a failing job. On any
// error, sink has received some prefix of the job space; no result after
// the failing index is ever delivered.
func RunStream[T any](ctx context.Context, total int, opts Options, fn func(ctx context.Context, index int) (T, error), sink func(index int, result T) error) error {
	if fn == nil {
		return fmt.Errorf("experiment: nil job function")
	}
	return RunStreamWorkers(ctx, total, opts,
		func(ctx context.Context, _, index int) (T, error) { return fn(ctx, index) }, sink)
}

// RunStreamWorkers is RunStream with worker identity: fn additionally
// receives the index of the pool goroutine executing the job, a stable
// id in [0, Options.WorkerCount(total)). Jobs must remain pure functions
// of their job index — worker-local state may only carry caches whose
// contents never change results (pooled arenas, scratch buffers), which
// is exactly what keeps the output bit-identical at any worker count.
// Each worker id is used by one goroutine for the whole run, so fn may
// mutate its worker slot without synchronization.
func RunStreamWorkers[T any](ctx context.Context, total int, opts Options, fn func(ctx context.Context, worker, index int) (T, error), sink func(index int, result T) error) error {
	if fn == nil {
		return fmt.Errorf("experiment: nil job function")
	}
	if total < 0 {
		return fmt.Errorf("experiment: negative job count %d", total)
	}
	if sink == nil {
		return fmt.Errorf("experiment: nil sink")
	}
	if total == 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64 // next job index to claim
		mu        sync.Mutex   // guards everything below, Progress, sink
		done      int
		pending   = make(map[int]T) // completed but not yet flushed
		nextFlush int               // lowest index not yet handed to sink
		firstErr  error
		errIndex  = total // lowest failing index seen so far
	)
	// Backpressure window: a worker holding index i waits until
	// i < nextFlush + window before starting the job, bounding pending to
	// the window size. The claimer of nextFlush itself never waits, so the
	// flush point always advances and the wait cannot deadlock.
	workers := opts.WorkerCount(total)
	window := 32 * workers
	if window < 64 {
		window = 64
	}
	gate := sync.NewCond(&mu)
	go func() {
		// Wake waiters when the run is cancelled (error or parent ctx).
		<-ctx.Done()
		mu.Lock()
		gate.Broadcast()
		mu.Unlock()
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || ctx.Err() != nil {
					return
				}
				mu.Lock()
				for i >= nextFlush+window && ctx.Err() == nil {
					gate.Wait()
				}
				mu.Unlock()
				if ctx.Err() != nil {
					return
				}
				res, err := fn(ctx, worker, i)
				if err != nil {
					// A job unwinding with the cancellation error after
					// another job already failed is an echo, not a cause.
					echo := ctx.Err() != nil && errors.Is(err, ctx.Err())
					mu.Lock()
					if i < errIndex && !echo {
						firstErr = fmt.Errorf("experiment: job %d: %w", i, err)
						errIndex = i
					}
					mu.Unlock()
					cancel()
					return
				}
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				pending[i] = res
				failed := false
				advanced := false
				for {
					r, ok := pending[nextFlush]
					if !ok || nextFlush >= errIndex {
						break
					}
					delete(pending, nextFlush)
					if err := sink(nextFlush, r); err != nil {
						firstErr = fmt.Errorf("experiment: sink at job %d: %w", nextFlush, err)
						errIndex = nextFlush
						failed = true
						break
					}
					nextFlush++
					advanced = true
				}
				if advanced {
					gate.Broadcast()
				}
				mu.Unlock()
				if failed {
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// The deferred cancel has not run yet, so a non-nil error here means
	// the parent context was cancelled mid-run.
	return ctx.Err()
}
