package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"wsncover/internal/randx"
)

// simulatedJob does seed-dependent pseudo-work, standing in for a trial.
func simulatedJob(seed int64) float64 {
	rng := randx.New(seed)
	s := 0.0
	for i := 0; i < 100; i++ {
		s += rng.Float64()
	}
	return s
}

func runBatch(t *testing.T, workers int) []float64 {
	t.Helper()
	seeds := Seeds(42, 64)
	out, err := Run(context.Background(), len(seeds), Options{Workers: workers},
		func(_ context.Context, i int) (float64, error) {
			return simulatedJob(seeds[i]), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	ref := runBatch(t, 1)
	for _, workers := range []int{2, 4, 8} {
		got := runBatch(t, workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: job %d = %v, want %v (bit-identical)",
					workers, i, got[i], ref[i])
			}
		}
	}
}

func TestRunResultsInJobOrder(t *testing.T) {
	out, err := Run(context.Background(), 100, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunFirstErrorCancelsInFlight(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Int32
	inFlight := make(chan struct{}, 1)
	_, err := Run(context.Background(), 32, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				// Fail only once another job is provably in flight.
				<-inFlight
				return 0, boom
			}
			// Other jobs park until the engine cancels them, proving
			// in-flight work observes the cancellation; their ctx.Err()
			// echoes must not displace the root cause.
			select {
			case inFlight <- struct{}{}:
			default:
			}
			<-ctx.Done()
			cancelled.Add(1)
			return 0, ctx.Err()
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("err %q should name the failing job", err)
	}
	if cancelled.Load() == 0 {
		t.Error("no in-flight job observed cancellation")
	}
}

func TestRunLowestIndexErrorWins(t *testing.T) {
	// Every job fails; the reported error must be job 0's regardless of
	// which worker lost the race.
	for trial := 0; trial < 10; trial++ {
		_, err := Run(context.Background(), 16, Options{Workers: 8},
			func(_ context.Context, i int) (int, error) {
				return 0, fmt.Errorf("fail-%d", i)
			})
		if err == nil || !strings.Contains(err.Error(), "job 0") {
			t.Fatalf("err = %v, want job 0's error", err)
		}
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, 8, Options{Workers: 2},
			func(ctx context.Context, i int) (int, error) {
				if once.CompareAndSwap(false, true) {
					close(started)
				}
				<-ctx.Done()
				return 0, nil
			})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunProgress(t *testing.T) {
	var calls []int
	last := 0
	_, err := Run(context.Background(), 20, Options{
		Workers: 4,
		Progress: func(done, total int) {
			if total != 20 {
				t.Errorf("total = %d", total)
			}
			if done != last+1 {
				t.Errorf("progress jumped %d -> %d", last, done)
			}
			last = done
			calls = append(calls, done)
		},
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 || calls[19] != 20 {
		t.Fatalf("progress calls = %v", calls)
	}
}

func TestRunEdgeCases(t *testing.T) {
	out, err := Run(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
	if _, err := Run(context.Background(), -1, Options{},
		func(_ context.Context, i int) (int, error) { return i, nil }); err == nil {
		t.Error("negative total should fail")
	}
	if _, err := Run[int](context.Background(), 3, Options{}, nil); err == nil {
		t.Error("nil fn should fail")
	}
	// More workers than jobs must still complete every job exactly once.
	out, err = Run(context.Background(), 3, Options{Workers: 64},
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil || len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("overprovisioned pool: out=%v err=%v", out, err)
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(7, 100)
	b := Seeds(7, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs across derivations", i)
		}
	}
	seen := make(map[int64]int)
	for i, s := range a {
		if j, dup := seen[s]; dup {
			t.Fatalf("seeds %d and %d collide (%d)", i, j, s)
		}
		seen[s] = i
	}
	c := Seeds(8, 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d seeds shared between different bases", same)
	}
}

func sampleFixture() []Sample {
	var out []Sample
	for _, g := range []string{"SR", "AR"} {
		for _, x := range []float64{10, 55} {
			for rep := 0; rep < 4; rep++ {
				out = append(out, Sample{
					Group: g,
					X:     x,
					Values: map[string]float64{
						"moves": x + float64(rep),
						"dist":  2*x + float64(rep),
					},
				})
			}
		}
	}
	return out
}

func TestAggregate(t *testing.T) {
	pts := Aggregate(sampleFixture())
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	// Sorted by group then X: AR/10, AR/55, SR/10, SR/55.
	if pts[0].Group != "AR" || pts[0].X != 10 || pts[3].Group != "SR" || pts[3].X != 55 {
		t.Fatalf("point order: %+v", pts)
	}
	d := pts[0].Metrics["moves"]
	if d.N != 4 || d.Mean != 11.5 || d.Min != 10 || d.Max != 13 {
		t.Errorf("AR/10 moves = %+v", d)
	}
	if d.CI95 == 0 {
		t.Error("CI95 should be positive for 4 distinct replicates")
	}
	if pts[0].Mean("dist") != 21.5 {
		t.Errorf("AR/10 dist mean = %v", pts[0].Mean("dist"))
	}
	if got := MetricNames(pts); len(got) != 2 || got[0] != "dist" || got[1] != "moves" {
		t.Errorf("metric names = %v", got)
	}
}

func TestTable(t *testing.T) {
	pts := Aggregate(sampleFixture())
	tb, err := Table(pts, "moves", "title", "N", "moves")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 2 || tb.X[0] != 10 || tb.X[1] != 55 {
		t.Fatalf("x axis = %v", tb.X)
	}
	if len(tb.Series) != 2 || tb.Series[0].Label != "AR" || tb.Series[1].Label != "SR" {
		t.Fatalf("series = %+v", tb.Series)
	}
	if tb.Series[0].Y[0] != 11.5 || tb.Series[1].Y[1] != 56.5 {
		t.Errorf("series values = %+v", tb.Series)
	}
	if _, err := Table(pts, "nope", "t", "x", "y"); err == nil {
		t.Error("unknown metric should fail")
	}
	if _, err := Table(nil, "moves", "t", "x", "y"); err == nil {
		t.Error("empty points should fail")
	}
	// A group missing one X cell yields NaN, not a length error.
	sparse := append(sampleFixture(), Sample{
		Group: "SRS", X: 55, Values: map[string]float64{"moves": 1},
	})
	tb, err = Table(Aggregate(sparse), "moves", "t", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	var srs *[]float64
	for i := range tb.Series {
		if tb.Series[i].Label == "SRS" {
			srs = &tb.Series[i].Y
		}
	}
	if srs == nil || !math.IsNaN((*srs)[0]) || (*srs)[1] != 1 {
		t.Errorf("sparse series = %v", srs)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	pts := Aggregate(sampleFixture())
	spec := map[string]any{"schemes": []string{"SR", "AR"}, "replicates": 4}
	m, err := NewManifest("unit", spec, 16, 4, pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "unit" || back.Jobs != 16 || back.Workers != 4 || len(back.Points) != 4 {
		t.Errorf("round trip = %+v", back)
	}
	if back.Points[0].Metrics["moves"].Mean != 11.5 {
		t.Errorf("metrics lost: %+v", back.Points[0])
	}

	dir := t.TempDir()
	path, err := m.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "unit.json") {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Error("saved manifest differs from written manifest")
	}
}
