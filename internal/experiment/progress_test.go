package experiment

import (
	"testing"

	"wsncover/internal/stats"
)

func TestProgressLineRoundTrip(t *testing.T) {
	p := Progress{Done: 12, Total: 40, Group: "SR 16x16"}
	line := p.MarshalLine()
	if line[len(line)-1] != '\n' {
		t.Fatalf("MarshalLine %q must end in newline", line)
	}
	got, ok := ParseProgressLine(line)
	if !ok || got != p {
		t.Errorf("round trip = %+v, %v; want %+v", got, ok, p)
	}
	if want := `{"done":12,"total":40,"group":"SR 16x16"}` + "\n"; string(line) != want {
		t.Errorf("wire form %q, want %q", line, want)
	}
	// The groupless form omits the group key entirely.
	bare := Progress{Done: 0, Total: 40}
	if want := `{"done":0,"total":40}` + "\n"; string(bare.MarshalLine()) != want {
		t.Errorf("bare wire form %q, want %q", bare.MarshalLine(), want)
	}
}

// TestParseProgressLineSkipsChatter: a supervisor scans the worker's
// whole stdout; anything that is not a well-formed event is ignored, not
// an error.
func TestParseProgressLineSkipsChatter(t *testing.T) {
	for _, line := range []string{
		"",
		"   ",
		"wrote out/shard1.json (4 jobs, 2 points)",
		"resume: 2 cells already in out/shard1.json, ran 2 new trials",
		"{not json",
		`{"done":5,"total":0}`,  // zero total: not a live event
		`{"done":-1,"total":4}`, // negative done
		`{"done":9,"total":4}`,  // done past total
	} {
		if p, ok := ParseProgressLine([]byte(line)); ok {
			t.Errorf("ParseProgressLine(%q) accepted %+v", line, p)
		}
	}
	if p, ok := ParseProgressLine([]byte("  {\"done\":4,\"total\":4}\r\n")); !ok || p.Done != 4 {
		t.Errorf("padded line = %+v, %v", p, ok)
	}
}

// TestClassifyProgressLine pins the heartbeat contract: chatter is
// ignorable, malformed near-protocol is distinguishable (it must burn
// the worker's lease, not renew it), and only valid events heartbeat.
func TestClassifyProgressLine(t *testing.T) {
	cases := []struct {
		line string
		want LineKind
	}{
		{"", LineChatter},
		{"wrote out/shard1.json (4 jobs, 2 points)", LineChatter},
		{"   ", LineChatter},
		{`{"done":2,"total":4}`, LineEvent},
		{"  {\"done\":4,\"total\":4}\r\n", LineEvent},
		{"{not json", LineMalformed},
		{`{"done":`, LineMalformed},             // truncated write
		{`{"done":5,"total":0}`, LineMalformed}, // invariant violation
		{`{"done":9,"total":4}`, LineMalformed}, // done past total
		{`{"done":2,"total":4,"group_done":-1}`, LineMalformed},
		{"{\"done\":2,\xff\xfe", LineMalformed}, // corrupted bytes
	}
	for _, c := range cases {
		p, kind := ClassifyProgressLine([]byte(c.line))
		if kind != c.want {
			t.Errorf("ClassifyProgressLine(%q) = %v, want %v", c.line, kind, c.want)
		}
		if kind != LineEvent && p != (Progress{}) {
			t.Errorf("ClassifyProgressLine(%q) leaked a payload %+v from a non-event", c.line, p)
		}
	}
}

func TestMergeProgress(t *testing.T) {
	fleet := MergeProgress(
		Progress{Done: 3, Total: 10, Group: "SR"},
		Progress{Done: 0, Total: 10},
		Progress{Done: 10, Total: 10, Group: "AR"},
	)
	if fleet.Done != 13 || fleet.Total != 30 || fleet.Group != "" {
		t.Errorf("fleet = %+v", fleet)
	}
	// Agreement across every reporting shard keeps the group.
	same := MergeProgress(Progress{Done: 1, Total: 2, Group: "SR"}, Progress{Done: 2, Total: 2, Group: "SR"})
	if same.Group != "SR" {
		t.Errorf("agreeing groups lost: %+v", same)
	}
	if got := MergeProgress(); got != (Progress{}) {
		t.Errorf("empty fold = %+v", got)
	}
	if f := (Progress{Done: 1, Total: 4}).Fraction(); f != 0.25 {
		t.Errorf("Fraction = %g", f)
	}
	if f := (Progress{}).Fraction(); f != 0 {
		t.Errorf("zero-total Fraction = %g", f)
	}
	if s := (Progress{Done: 1, Total: 4, Group: "g"}).String(); s != "1/4 [g]" {
		t.Errorf("String = %q", s)
	}
}

// TestProgressGroupDone pins the per-group extension of the protocol:
// the optional group_done count round-trips, is omitted when zero, and
// is validated like done.
func TestProgressGroupDone(t *testing.T) {
	p := Progress{Done: 12, Total: 40, Group: "SR 16x16", GroupDone: 3}
	line := p.MarshalLine()
	if want := `{"done":12,"total":40,"group":"SR 16x16","group_done":3}` + "\n"; string(line) != want {
		t.Errorf("wire form %q, want %q", line, want)
	}
	got, ok := ParseProgressLine(line)
	if !ok || got != p {
		t.Errorf("round trip = %+v, %v; want %+v", got, ok, p)
	}
	// Older emitters omit group_done; the parser must keep accepting them.
	if got, ok := ParseProgressLine([]byte(`{"done":2,"total":4,"group":"SR"}`)); !ok || got.GroupDone != 0 {
		t.Errorf("legacy event = %+v, %v", got, ok)
	}
	for _, line := range []string{
		`{"done":2,"total":4,"group":"SR","group_done":-1}`, // negative
		`{"done":2,"total":4,"group":"SR","group_done":5}`,  // past total
	} {
		if p, ok := ParseProgressLine([]byte(line)); ok {
			t.Errorf("ParseProgressLine(%q) accepted %+v", line, p)
		}
	}
}

// TestMergeProgressGroupDone: the fleet-wide per-group count sums over
// shards only while the merged event keeps its group label; a mixed or
// absent group zeroes it, because counts from different groups are
// incomparable.
func TestMergeProgressGroupDone(t *testing.T) {
	same := MergeProgress(
		Progress{Done: 3, Total: 10, Group: "SR", GroupDone: 3},
		Progress{Done: 5, Total: 10, Group: "SR", GroupDone: 5},
		Progress{Total: 10}, // a shard that has not reported a group yet
	)
	if same.Group != "SR" || same.GroupDone != 8 {
		t.Errorf("agreeing merge = %+v, want group SR done 8", same)
	}
	mixed := MergeProgress(
		Progress{Done: 3, Total: 10, Group: "SR", GroupDone: 3},
		Progress{Done: 5, Total: 10, Group: "AR", GroupDone: 5},
	)
	if mixed.Group != "" || mixed.GroupDone != 0 {
		t.Errorf("mixed merge = %+v, want groupless with zero GroupDone", mixed)
	}
	// Zero-total events (shards not yet started) fold harmlessly.
	cold := MergeProgress(Progress{}, Progress{}, Progress{Done: 1, Total: 4, Group: "SR", GroupDone: 1})
	if cold.Done != 1 || cold.Total != 4 || cold.GroupDone != 1 {
		t.Errorf("cold-fleet merge = %+v", cold)
	}
}

// TestAccumulatorMarksEstimatedMedians: the streaming fold is exact (and
// says so) through five observations, an estimate (and says so) beyond.
func TestAccumulatorMarksEstimatedMedians(t *testing.T) {
	feed := func(n int) stats.Description {
		acc := NewAccumulator()
		for i := 0; i < n; i++ {
			acc.Add(Sample{Group: "g", X: 1, Values: map[string]float64{"m": float64(i)}})
		}
		return acc.Points()[0].Metrics["m"]
	}
	if d := feed(5); d.MedianApprox || d.Median != 2 {
		t.Errorf("n=5: %+v, want exact median 2", d)
	}
	if d := feed(6); !d.MedianApprox {
		t.Errorf("n=6: %+v, want MedianApprox", d)
	}
}
