package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Manifest is the JSON artifact describing one aggregated campaign: the
// spec that produced it (opaque to this package), the job accounting,
// and every aggregated point. Map keys marshal sorted and points are
// pre-sorted by Aggregate, so the serialized form is deterministic.
type Manifest struct {
	// Name labels the campaign (used as the artifact base name).
	Name string `json:"name"`
	// Spec echoes the caller's sweep specification verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Jobs is the number of trials executed; Workers the pool size used.
	Jobs    int `json:"jobs"`
	Workers int `json:"workers"`
	// Points holds the aggregated results.
	Points []Point `json:"points"`
}

// NewManifest bundles aggregated points with a marshalled copy of spec.
func NewManifest(name string, spec any, jobs, workers int, points []Point) (*Manifest, error) {
	m := &Manifest{Name: name, Jobs: jobs, Workers: workers, Points: points}
	if spec != nil {
		raw, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("experiment: marshal spec: %w", err)
		}
		m.Spec = raw
	}
	return m, nil
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("experiment: encode manifest: %w", err)
	}
	return nil
}

// Save writes the manifest to dir/<name>.json, creating dir when needed,
// and returns the written path. The write is atomic — a uniquely named
// temp file in dir, renamed over the target — so a reader (or a process
// killed mid-save) never observes a torn manifest: the path holds either
// the previous complete manifest or the new one, nothing in between.
func (m *Manifest) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("experiment: %w", err)
	}
	path := filepath.Join(dir, m.Name+".json")
	return path, m.WriteAtomic(path)
}

// WriteAtomic atomically replaces path with the serialized manifest
// (unique temp file in the same directory + rename). Concurrent writers
// of identical content — duplicate attempts of a deterministic shard —
// are safe: each rename installs a complete manifest.
func (m *Manifest) WriteAtomic(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	tmp := f.Name()
	if err := m.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("experiment: %w", err)
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("experiment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}
