package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Manifest is the JSON artifact describing one aggregated campaign: the
// spec that produced it (opaque to this package), the job accounting,
// and every aggregated point. Map keys marshal sorted and points are
// pre-sorted by Aggregate, so the serialized form is deterministic.
type Manifest struct {
	// Name labels the campaign (used as the artifact base name).
	Name string `json:"name"`
	// Spec echoes the caller's sweep specification verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Jobs is the number of trials executed; Workers the pool size used.
	Jobs    int `json:"jobs"`
	Workers int `json:"workers"`
	// Points holds the aggregated results.
	Points []Point `json:"points"`
}

// NewManifest bundles aggregated points with a marshalled copy of spec.
func NewManifest(name string, spec any, jobs, workers int, points []Point) (*Manifest, error) {
	m := &Manifest{Name: name, Jobs: jobs, Workers: workers, Points: points}
	if spec != nil {
		raw, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("experiment: marshal spec: %w", err)
		}
		m.Spec = raw
	}
	return m, nil
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("experiment: encode manifest: %w", err)
	}
	return nil
}

// Save writes the manifest to dir/<name>.json, creating dir when needed,
// and returns the written path.
func (m *Manifest) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("experiment: %w", err)
	}
	path := filepath.Join(dir, m.Name+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("experiment: %w", err)
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
