package experiment

import (
	"strings"
	"testing"

	"wsncover/internal/stats"
)

func mergePt(group string, x float64, n int, mean float64) Point {
	return Point{Group: group, X: x, Metrics: map[string]stats.Description{
		"moves": {N: n, Mean: mean, Min: mean, Max: mean, Median: mean},
	}}
}

func TestMergeShardPointsRejectsDuplicateInLaterShard(t *testing.T) {
	shard0 := []Point{mergePt("SR", 10, 2, 3), mergePt("SR", 20, 2, 4)}
	// Same length as shard0 but cell (SR, 10) twice and (SR, 20) missing:
	// without per-shard duplicate detection this would silently
	// double-count one cell and drop the other.
	bad := []Point{mergePt("SR", 10, 2, 3), mergePt("SR", 10, 2, 5)}
	if _, err := MergeShardPoints(shard0, bad); err == nil ||
		!strings.Contains(err.Error(), "duplicate cell") {
		t.Errorf("MergeShardPoints = %v, want duplicate-cell error", err)
	}
	// Shard 0 duplicates are rejected too.
	if _, err := MergeShardPoints(bad, shard0); err == nil ||
		!strings.Contains(err.Error(), "duplicate cell") {
		t.Errorf("MergeShardPoints = %v, want duplicate-cell error", err)
	}
}

func TestMergeShardPointsCombines(t *testing.T) {
	a := []Point{mergePt("SR", 10, 2, 3)}
	b := []Point{mergePt("SR", 10, 3, 5)}
	got, err := MergeShardPoints(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d := got[0].Metrics["moves"]
	if d.N != 5 || d.Min != 3 || d.Max != 5 {
		t.Errorf("merged = %+v", d)
	}
	if want := (2.0*3 + 3.0*5) / 5; d.Mean != want {
		t.Errorf("mean = %g, want %g", d.Mean, want)
	}
}
