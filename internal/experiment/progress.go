package experiment

import (
	"encoding/json"
	"fmt"
)

// Progress is one campaign progress event: how many trials are done out
// of how many the run will execute, and (optionally) the group of the
// trial that just completed. It is the payload of the newline-delimited
// JSON protocol shard workers speak on stdout (cmd/sweep -progress=json)
// and the unit the dispatch driver folds into its fleet meter — one
// line, one event:
//
//	{"done":12,"total":40,"group":"SR 16x16","group_done":3}
type Progress struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Group string `json:"group,omitempty"`
	// GroupDone, when positive, is the emitter's completed-trial count
	// within Group — the fuel for per-group completion heatmaps. It is
	// optional (older emitters omit it) and scoped to the emitting
	// process: a shard worker reports its own shard's count, and the
	// fleet-wide count for a group is the sum over shards.
	GroupDone int `json:"group_done,omitempty"`
}

// MarshalLine renders the event as one newline-terminated JSON line.
func (p Progress) MarshalLine() []byte {
	b, _ := json.Marshal(p) // no marshalable-field can fail
	return append(b, '\n')
}

// LineKind classifies one line of a worker's stdout stream for the
// progress-as-heartbeat contract: every valid protocol event renews the
// worker's lease, chatter is ignored, and a malformed event — a line
// that claims to be protocol but does not parse or validate — is logged
// and skipped by the supervisor WITHOUT renewing the lease, so a worker
// emitting garbage (truncated writes, corrupted pipes, a chaos-injected
// fault) burns its heartbeat deadline instead of crashing the driver.
type LineKind int

const (
	// LineEvent: a valid Progress event (and a heartbeat).
	LineEvent LineKind = iota
	// LineChatter: not protocol at all — blank, or not JSON-shaped.
	// Supervisors ignore it silently.
	LineChatter
	// LineMalformed: JSON-shaped but unparseable or failing the protocol
	// invariants. Counts against the worker's heartbeat, never renews it.
	LineMalformed
)

// ClassifyProgressLine decodes one line of the progress protocol and
// says what the line was. Only LineEvent returns a usable Progress.
func ClassifyProgressLine(line []byte) (Progress, LineKind) {
	trimmed := bytesTrimSpace(line)
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return Progress{}, LineChatter
	}
	var p Progress
	if err := json.Unmarshal(trimmed, &p); err != nil || p.Total <= 0 || p.Done < 0 || p.Done > p.Total ||
		p.GroupDone < 0 || p.GroupDone > p.Total {
		return Progress{}, LineMalformed
	}
	return p, LineEvent
}

// ParseProgressLine decodes one line of the progress protocol. Lines
// that are not progress events — worker chatter, empty lines, malformed
// near-protocol — return ok=false rather than an error, so a supervisor
// can scan a mixed stdout stream and fold only the protocol lines.
// Supervisors that also track liveness use ClassifyProgressLine to tell
// malformed protocol from harmless chatter.
func ParseProgressLine(line []byte) (Progress, bool) {
	p, kind := ClassifyProgressLine(line)
	return p, kind == LineEvent
}

func bytesTrimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r' || b[len(b)-1] == '\n') {
		b = b[:len(b)-1]
	}
	return b
}

// MergeProgress folds per-shard progress events into fleet-wide totals:
// done and total sum, and the group is kept only when every non-empty
// input agrees on it (shards of one campaign usually disagree, so the
// fleet event is groupless). Events with a zero Total — shards that
// have not reported yet — contribute nothing to Done but may still
// carry their Total once known, so the fold is safe to run over a
// partially started fleet. GroupDone sums only when the merged event
// keeps a group — per-group counts from shards walking different groups
// are incomparable, so the merged count drops to zero with the label.
func MergeProgress(events ...Progress) Progress {
	var out Progress
	group, groupSet, groupMixed := "", false, false
	for _, e := range events {
		out.Done += e.Done
		out.Total += e.Total
		if e.Group == "" {
			continue
		}
		out.GroupDone += e.GroupDone
		if !groupSet {
			group, groupSet = e.Group, true
		} else if group != e.Group {
			groupMixed = true
		}
	}
	if groupSet && !groupMixed {
		out.Group = group
	} else {
		out.GroupDone = 0
	}
	return out
}

// Fraction returns completion in [0, 1]; a zero-total event is 0.
func (p Progress) Fraction() float64 {
	if p.Total <= 0 {
		return 0
	}
	return float64(p.Done) / float64(p.Total)
}

// String implements fmt.Stringer.
func (p Progress) String() string {
	if p.Group == "" {
		return fmt.Sprintf("%d/%d", p.Done, p.Total)
	}
	return fmt.Sprintf("%d/%d [%s]", p.Done, p.Total, p.Group)
}
