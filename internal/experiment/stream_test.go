package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wsncover/internal/stats"
)

func TestRunStreamDeliversInOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var got []int
		err := RunStream(context.Background(), 200, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * 3, nil },
			func(i, res int) error {
				if res != i*3 {
					t.Fatalf("sink(%d) = %d, want %d", i, res, i*3)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 200 {
			t.Fatalf("workers=%d: sink saw %d results", workers, len(got))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("workers=%d: sink order not increasing: %v", workers, got)
		}
	}
}

func TestRunStreamJobErrorStopsPrefix(t *testing.T) {
	boom := errors.New("boom")
	var delivered []int
	err := RunStream(context.Background(), 64, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) {
			if i == 10 {
				return 0, boom
			}
			return i, nil
		},
		func(i, _ int) error {
			delivered = append(delivered, i)
			return nil
		})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "job 10") {
		t.Fatalf("err = %v", err)
	}
	for _, i := range delivered {
		if i >= 10 {
			t.Fatalf("sink received job %d past the failure", i)
		}
	}
}

func TestRunStreamSinkErrorStopsRun(t *testing.T) {
	sinkErr := errors.New("sink full")
	err := RunStream(context.Background(), 64, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, _ int) error {
			if i == 5 {
				return sinkErr
			}
			return nil
		})
	if !errors.Is(err, sinkErr) || !strings.Contains(err.Error(), "sink at job 5") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunStreamEdgeCases(t *testing.T) {
	noop := func(int, int) error { return nil }
	job := func(_ context.Context, i int) (int, error) { return i, nil }
	if err := RunStream(context.Background(), 0, Options{}, job, noop); err != nil {
		t.Errorf("empty stream: %v", err)
	}
	if err := RunStream(context.Background(), -1, Options{}, job, noop); err == nil {
		t.Error("negative total should fail")
	}
	if err := RunStream[int](context.Background(), 3, Options{}, nil, noop); err == nil {
		t.Error("nil fn should fail")
	}
	if err := RunStream(context.Background(), 3, Options{}, job, nil); err == nil {
		t.Error("nil sink should fail")
	}
}

// TestRunStreamBackpressureBoundsSpread pins the O(workers) memory
// contract: while job 0 is stuck, no worker may start a job outside the
// flush window, no matter how many fast jobs the pool could otherwise
// race through.
func TestRunStreamBackpressureBoundsSpread(t *testing.T) {
	const workers = 4
	const window = 32 * workers // mirrors RunStream's window sizing
	release := make(chan struct{})
	var released atomic.Bool
	var maxEarly atomic.Int64
	go func() {
		time.Sleep(100 * time.Millisecond)
		released.Store(true)
		close(release)
	}()
	err := RunStream(context.Background(), 5000, Options{Workers: workers},
		func(_ context.Context, i int) (int, error) {
			if i == 0 {
				<-release
				return 0, nil
			}
			if !released.Load() {
				for {
					cur := maxEarly.Load()
					if int64(i) <= cur || maxEarly.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
			return i, nil
		},
		func(int, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := maxEarly.Load(); got >= window {
		t.Errorf("job %d started while job 0 held the flush point (window %d)", got, window)
	}
}

// TestRunStreamAccumulatorRace feeds a streaming Accumulator from a
// heavily parallel run; under -race this proves the serialized-sink
// contract makes unlocked accumulation safe, and the fold must be
// bit-identical to a single-worker run.
func TestRunStreamAccumulatorRace(t *testing.T) {
	build := func(workers int) []Point {
		acc := NewAccumulator()
		err := RunStream(context.Background(), 400, Options{Workers: workers},
			func(_ context.Context, i int) (Sample, error) {
				return Sample{
					Group: []string{"a", "b", "c"}[i%3],
					X:     float64(i % 5),
					Values: map[string]float64{
						"m": math.Sqrt(float64(i + 1)),
						"d": float64(i) / 7,
					},
				}, nil
			},
			func(_ int, s Sample) error { acc.Add(s); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return acc.Points()
	}
	ref := build(1)
	for _, workers := range []int{4, 16} {
		if got := build(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: streaming fold diverged", workers)
		}
	}
}

// TestAccumulatorMatchesAggregate checks the streaming fold against the
// batch reference on the shared fixture: exact agreement on N, min, max,
// and order; float agreement on mean/stddev/CI; exact medians at n <= 5.
func TestAccumulatorMatchesAggregate(t *testing.T) {
	samples := sampleFixture() // 4 replicates per cell: medians exact
	batch := Aggregate(samples)
	acc := NewAccumulator()
	for _, s := range samples {
		acc.Add(s)
	}
	if acc.Samples() != len(samples) {
		t.Fatalf("Samples = %d, want %d", acc.Samples(), len(samples))
	}
	stream := acc.Points()
	if len(stream) != len(batch) {
		t.Fatalf("points = %d, want %d", len(stream), len(batch))
	}
	for i := range batch {
		b, s := batch[i], stream[i]
		if b.Group != s.Group || b.X != s.X {
			t.Fatalf("point %d: (%s, %g) vs (%s, %g)", i, b.Group, b.X, s.Group, s.X)
		}
		for name, bd := range b.Metrics {
			sd, ok := s.Metrics[name]
			if !ok {
				t.Fatalf("point %d missing metric %s", i, name)
			}
			if bd.N != sd.N || bd.Min != sd.Min || bd.Max != sd.Max {
				t.Errorf("%s/%g %s: exact fields differ: %+v vs %+v", b.Group, b.X, name, bd, sd)
			}
			if math.Abs(bd.Mean-sd.Mean) > 1e-12*math.Max(1, math.Abs(bd.Mean)) {
				t.Errorf("%s/%g %s: mean %v vs %v", b.Group, b.X, name, bd.Mean, sd.Mean)
			}
			if math.Abs(bd.StdDev-sd.StdDev) > 1e-9 {
				t.Errorf("%s/%g %s: stddev %v vs %v", b.Group, b.X, name, bd.StdDev, sd.StdDev)
			}
			if bd.Median != sd.Median { // n=4: P-squared is still exact
				t.Errorf("%s/%g %s: median %v vs %v", b.Group, b.X, name, bd.Median, sd.Median)
			}
		}
	}
}

// TestP2MedianConverges checks the estimator against the exact median on
// larger streams from several distributions.
func TestP2MedianConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dists := map[string]func() float64{
		"uniform": rng.Float64,
		"normal":  rng.NormFloat64,
		"exp":     rng.ExpFloat64,
	}
	for name, draw := range dists {
		var m p2Median
		xs := make([]float64, 0, 5000)
		for i := 0; i < 5000; i++ {
			x := draw()
			m.add(x)
			xs = append(xs, x)
		}
		exact := stats.Median(xs)
		spread := stats.Percentile(xs, 75) - stats.Percentile(xs, 25)
		if math.Abs(m.value()-exact) > 0.05*spread {
			t.Errorf("%s: P2 median %v vs exact %v (IQR %v)", name, m.value(), exact, spread)
		}
	}
	// Exactness through five observations, both parities.
	for n := 1; n <= 5; n++ {
		var m p2Median
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := float64((i * 7) % 5)
			m.add(x)
			xs = append(xs, x)
		}
		if got, want := m.value(), stats.Median(xs); got != want {
			t.Errorf("n=%d: median %v, want %v", n, got, want)
		}
	}
	var empty p2Median
	if empty.value() != 0 {
		t.Error("empty median should be 0")
	}
}

// TestAccumulatorEmptyAndSingle covers degenerate cells.
func TestAccumulatorEmptyAndSingle(t *testing.T) {
	acc := NewAccumulator()
	if pts := acc.Points(); len(pts) != 0 {
		t.Fatalf("empty accumulator points = %v", pts)
	}
	acc.Add(Sample{Group: "g", X: 1, Values: map[string]float64{"m": 3}})
	pts := acc.Points()
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	d := pts[0].Metrics["m"]
	want := stats.Describe([]float64{3})
	if d != want {
		t.Errorf("single-sample description %+v, want %+v", d, want)
	}
}

func TestRunStreamManyGroupsStress(t *testing.T) {
	// A larger randomized cross-check: 2000 jobs, 12 groups, compared
	// against batch aggregation built from the same stream.
	var collected []Sample
	acc := NewAccumulator()
	err := RunStream(context.Background(), 2000, Options{Workers: 8},
		func(_ context.Context, i int) (Sample, error) {
			return Sample{
				Group:  fmt.Sprintf("g%02d", i%12),
				X:      float64(i % 4),
				Values: map[string]float64{"v": float64((i*2654435761)%1000) / 10},
			}, nil
		},
		func(_ int, s Sample) error {
			collected = append(collected, s)
			acc.Add(s)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	batch := Aggregate(collected)
	stream := acc.Points()
	if len(batch) != len(stream) {
		t.Fatalf("points %d vs %d", len(batch), len(stream))
	}
	for i := range batch {
		b, s := batch[i], stream[i]
		bd, sd := b.Metrics["v"], s.Metrics["v"]
		if b.Group != s.Group || b.X != s.X || bd.N != sd.N || bd.Min != sd.Min || bd.Max != sd.Max {
			t.Fatalf("cell %s/%g mismatch: %+v vs %+v", b.Group, b.X, bd, sd)
		}
		if math.Abs(bd.Mean-sd.Mean) > 1e-9 || math.Abs(bd.StdDev-sd.StdDev) > 1e-9 {
			t.Fatalf("cell %s/%g stats drifted: %+v vs %+v", b.Group, b.X, bd, sd)
		}
	}
}

// TestRunStreamWorkersIdentity checks the worker-id contract: ids lie in
// [0, WorkerCount), each id is owned by exactly one goroutine for the
// whole run, and results are delivered in job order regardless.
func TestRunStreamWorkersIdentity(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		opts := Options{Workers: workers}
		total := 400
		n := opts.WorkerCount(total)
		// jobsPerWorker[w] is written only by worker w — the race detector
		// verifies single-goroutine ownership of each id.
		jobsPerWorker := make([]int, n)
		next := 0
		err := RunStreamWorkers(context.Background(), total, opts,
			func(_ context.Context, w, i int) (int, error) {
				if w < 0 || w >= n {
					t.Errorf("worker id %d outside [0, %d)", w, n)
				}
				jobsPerWorker[w]++
				return i, nil
			},
			func(i, res int) error {
				if i != next || res != i {
					t.Fatalf("out-of-order delivery: got (%d,%d), want index %d", i, res, next)
				}
				next++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if next != total {
			t.Fatalf("delivered %d of %d", next, total)
		}
		sum := 0
		for _, c := range jobsPerWorker {
			sum += c
		}
		if sum != total {
			t.Fatalf("worker job counts sum to %d, want %d", sum, total)
		}
	}
}
