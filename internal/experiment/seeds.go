package experiment

import "wsncover/internal/randx"

// Seeds derives n trial seeds from one base seed using the simulator's
// stream-splitting discipline (randx.Rand.Split). The derivation walks
// the indices in order on a single root stream, so the slice depends
// only on (base, n) — never on worker count or scheduling — and each
// seed heads an uncorrelated child stream. Callers assign seeds[i] to
// job i before dispatching the batch to Run.
func Seeds(base int64, n int) []int64 {
	root := randx.New(base)
	out := make([]int64, n)
	for i := range out {
		out[i] = root.Split(int64(i + 1)).Int63()
	}
	return out
}
