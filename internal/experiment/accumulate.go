package experiment

import (
	"math"
	"sort"

	"wsncover/internal/stats"
)

// Accumulator folds a stream of Samples into per-(Group, X) online
// statistics without retaining the samples. Memory is O(groups x
// metrics) at any replicate count, which is what makes million-trial
// campaigns feasible; the batch Aggregate needs the whole sample slice.
//
// Mean and variance use Welford's online algorithm, min/max are exact,
// and the median is the P-squared streaming estimate (exact through five
// observations). Feeding samples in a fixed order — RunStream delivers
// results in job-index order — makes the fold bit-identical at any
// worker count. Relative to Aggregate, means match to within floating-
// point reassociation and medians beyond n=5 are estimates (flagged by
// stats.Description.MedianApprox); every other field agrees.
//
// The zero value is not usable; call NewAccumulator. An Accumulator is
// not safe for concurrent use — RunStream serializes sink calls, which
// is the intended feeding discipline.
type Accumulator struct {
	cells   map[accKey]*accCell
	samples int
}

type accKey struct {
	group string
	x     float64
}

type accCell struct {
	// names preserves first-seen metric order (diagnostics only; Points
	// sorts output by name via the map anyway).
	names   []string
	metrics map[string]*onlineStat
}

// NewAccumulator returns an empty streaming aggregator.
func NewAccumulator() *Accumulator {
	return &Accumulator{cells: make(map[accKey]*accCell)}
}

// Add folds one sample into its (Group, X) cell.
func (a *Accumulator) Add(s Sample) {
	k := accKey{s.Group, s.X}
	c, ok := a.cells[k]
	if !ok {
		c = &accCell{metrics: make(map[string]*onlineStat)}
		a.cells[k] = c
	}
	for name, v := range s.Values {
		st, ok := c.metrics[name]
		if !ok {
			st = &onlineStat{}
			c.metrics[name] = st
			c.names = append(c.names, name)
		}
		st.add(v)
	}
	a.samples++
}

// Samples returns the number of samples folded so far.
func (a *Accumulator) Samples() int { return a.samples }

// Points materializes the aggregate as the same sorted Point set
// Aggregate produces, ready for Table and Manifest.
func (a *Accumulator) Points() []Point {
	keys := make([]accKey, 0, len(a.cells))
	for k := range a.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].x < keys[j].x
	})
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		c := a.cells[k]
		metrics := make(map[string]stats.Description, len(c.metrics))
		for name, st := range c.metrics {
			metrics[name] = st.describe()
		}
		out = append(out, Point{Group: k.group, X: k.x, Metrics: metrics})
	}
	return out
}

// onlineStat maintains the descriptive statistics of one metric stream in
// O(1) space: count, Welford mean/M2, min, max, and a P-squared median.
type onlineStat struct {
	n        int
	mean, m2 float64
	min, max float64
	med      p2Median
}

func (o *onlineStat) add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	o.med.add(x)
}

func (o *onlineStat) describe() stats.Description {
	d := stats.Description{
		N:      o.n,
		Mean:   o.mean,
		Min:    o.min,
		Max:    o.max,
		Median: o.med.value(),
		// The P-squared median retains the first five observations
		// exactly; beyond that the center marker is an estimate, and the
		// description says so.
		MedianApprox: o.n > 5,
	}
	if o.n == 0 {
		// Mirror stats.Describe on an empty sample.
		d.Min, d.Max = math.Inf(1), math.Inf(-1)
	}
	if o.n >= 2 {
		d.StdDev = math.Sqrt(o.m2 / float64(o.n-1))
		d.CI95 = 1.96 * d.StdDev / math.Sqrt(float64(o.n))
	}
	return d
}

// p2Median is the P-squared quantile estimator of Jain and Chlamtac
// (CACM 1985) specialized to the median: five markers track the min, the
// quartile neighborhoods, and the max, adjusting heights by a piecewise-
// parabolic rule. It is exact for the first five observations and an
// O(1)-space estimate beyond.
type p2Median struct {
	n   int
	q   [5]float64 // marker heights
	pos [5]int     // marker positions, 1-based
}

func (m *p2Median) add(x float64) {
	if m.n < 5 {
		m.q[m.n] = x
		m.n++
		if m.n == 5 {
			sortFive(&m.q)
			m.pos = [5]int{1, 2, 3, 4, 5}
		}
		return
	}
	var k int
	switch {
	case x < m.q[0]:
		m.q[0] = x
		k = 0
	case x >= m.q[4]:
		m.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < m.q[k+1] {
				break
			}
		}
	}
	m.n++
	for i := k + 1; i < 5; i++ {
		m.pos[i]++
	}
	nf := float64(m.n)
	desired := [5]float64{1, (nf-1)/4 + 1, (nf-1)/2 + 1, 3*(nf-1)/4 + 1, nf}
	for i := 1; i <= 3; i++ {
		d := desired[i] - float64(m.pos[i])
		if (d >= 1 && m.pos[i+1]-m.pos[i] > 1) || (d <= -1 && m.pos[i-1]-m.pos[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			if qn := m.parabolic(i, s); m.q[i-1] < qn && qn < m.q[i+1] {
				m.q[i] = qn
			} else {
				m.q[i] = m.linear(i, s)
			}
			m.pos[i] += s
		}
	}
}

// parabolic is the P-squared piecewise-parabolic height adjustment for
// marker i moving by s.
func (m *p2Median) parabolic(i, s int) float64 {
	qi, qp, qn := m.q[i], m.q[i-1], m.q[i+1]
	ni := float64(m.pos[i])
	np := float64(m.pos[i-1])
	nn := float64(m.pos[i+1])
	sf := float64(s)
	return qi + sf/(nn-np)*((ni-np+sf)*(qn-qi)/(nn-ni)+(nn-ni-sf)*(qi-qp)/(ni-np))
}

// linear is the fallback height adjustment when the parabola leaves the
// bracketing markers.
func (m *p2Median) linear(i, s int) float64 {
	return m.q[i] + float64(s)*(m.q[i+s]-m.q[i])/float64(m.pos[i+s]-m.pos[i])
}

// value returns the current median estimate: exact below five
// observations (matching stats.Median), the center marker after.
func (m *p2Median) value() float64 {
	if m.n == 0 {
		return 0
	}
	if m.n < 5 {
		var buf [5]float64
		copy(buf[:], m.q[:m.n])
		s := buf[:m.n]
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 1 {
			return s[mid]
		}
		return (s[mid-1] + s[mid]) / 2
	}
	return m.q[2]
}

// sortFive sorts the five marker heights in place (insertion sort; no
// allocation).
func sortFive(q *[5]float64) {
	for i := 1; i < 5; i++ {
		for j := i; j > 0 && q[j] < q[j-1]; j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
}
