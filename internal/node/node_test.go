package node

import (
	"math"
	"testing"

	"wsncover/internal/geom"
)

// add is the test shorthand for growing a store to hold id and returning
// its handle.
func add(s *Store, loc geom.Point) Ref { return s.Ref(s.Add(loc)) }

func TestAddDefaults(t *testing.T) {
	var s Store
	s.Add(geom.Pt(9, 9))
	s.Add(geom.Pt(9, 9))
	s.Add(geom.Pt(9, 9))
	n := add(&s, geom.Pt(1, 2))
	if n.ID() != 3 {
		t.Errorf("ID = %v", n.ID())
	}
	if !n.Location().Eq(geom.Pt(1, 2)) {
		t.Errorf("Location = %v", n.Location())
	}
	if n.Status() != Enabled || !n.Enabled() {
		t.Errorf("Status = %v", n.Status())
	}
	if n.Role() != Spare {
		t.Errorf("Role = %v, want Spare", n.Role())
	}
	if n.IsHead() {
		t.Error("new node should not be head")
	}
	if n.Moves() != 0 || n.Traveled() != 0 || n.EnergySpent() != 0 {
		t.Error("odometer should start at zero")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestRefValidity(t *testing.T) {
	var zero Ref
	if zero.Valid() {
		t.Error("zero Ref must not be valid")
	}
	var s Store
	if s.Ref(0).Valid() || s.Ref(Invalid).Valid() {
		t.Error("empty store has no valid refs")
	}
	id := s.Add(geom.Pt(0, 0))
	if !s.Ref(id).Valid() {
		t.Error("added node must be valid")
	}
	if s.Ref(id + 1).Valid() {
		t.Error("out-of-range ref must not be valid")
	}
}

func TestRoleTransitions(t *testing.T) {
	var s Store
	n := add(&s, geom.Pt(0, 0))
	n.SetRole(Head)
	if !n.IsHead() {
		t.Error("should be head after SetRole(Head)")
	}
	n.Disable()
	if n.IsHead() {
		t.Error("disabled node must not count as head")
	}
	if n.Enabled() {
		t.Error("disabled node must not be enabled")
	}
	n.Enable()
	if !n.Enabled() || n.Role() != Spare {
		t.Error("re-enabled node should come back as spare")
	}
}

func TestMoveToAccounting(t *testing.T) {
	var s Store
	n := add(&s, geom.Pt(0, 0))
	em := EnergyModel{PerMeter: 2, PerMove: 1}
	d, err := n.MoveTo(geom.Pt(3, 4), em)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("MoveTo distance = %v, want 5", d)
	}
	if n.Moves() != 1 {
		t.Errorf("Moves = %d", n.Moves())
	}
	if math.Abs(n.Traveled()-5) > 1e-12 {
		t.Errorf("Traveled = %v, want 5", n.Traveled())
	}
	if math.Abs(n.EnergySpent()-11) > 1e-12 {
		t.Errorf("EnergySpent = %v, want 11", n.EnergySpent())
	}
	if _, err := n.MoveTo(geom.Pt(3, 5), em); err != nil {
		t.Fatal(err)
	}
	if n.Moves() != 2 || math.Abs(n.Traveled()-6) > 1e-12 {
		t.Errorf("after second move: moves=%d traveled=%v", n.Moves(), n.Traveled())
	}
}

func TestMoveDisabledFails(t *testing.T) {
	var s Store
	n := add(&s, geom.Pt(0, 0))
	n.Disable()
	if _, err := n.MoveTo(geom.Pt(1, 1), EnergyModel{}); err == nil {
		t.Error("moving a disabled node should fail")
	}
	if n.Moves() != 0 {
		t.Error("failed move must not charge the odometer")
	}
}

func TestTeleportDoesNotCharge(t *testing.T) {
	var s Store
	n := add(&s, geom.Pt(0, 0))
	n.Teleport(geom.Pt(100, 100))
	if !n.Location().Eq(geom.Pt(100, 100)) {
		t.Errorf("Location = %v", n.Location())
	}
	if n.Moves() != 0 || n.Traveled() != 0 {
		t.Error("teleport must not charge the odometer")
	}
}

// TestEnabledBitset drives the enabled words through add / disable /
// enable / reset cycles — including word-boundary ids and capacity reuse
// after Reset — and requires the popcount to agree with a brute-force
// status scan throughout.
func TestEnabledBitset(t *testing.T) {
	check := func(s *Store, what string) {
		t.Helper()
		brute := 0
		for id := ID(0); int(id) < s.Len(); id++ {
			if s.Ref(id).Enabled() {
				brute++
			}
		}
		if got := s.EnabledCount(); got != brute {
			t.Fatalf("%s: EnabledCount = %d, brute scan = %d", what, got, brute)
		}
		words := s.EnabledWords()
		if want := (s.Len() + 63) / 64; len(words) != want {
			t.Fatalf("%s: %d enabled words for %d nodes", what, len(words), s.Len())
		}
		for id := ID(0); int(id) < s.Len(); id++ {
			bit := words[int(id)>>6]&(1<<(uint(id)&63)) != 0
			if bit != s.Ref(id).Enabled() {
				t.Fatalf("%s: bit %d = %v, status %v", what, id, bit, s.Ref(id).Status())
			}
		}
	}
	var s Store
	for i := 0; i < 130; i++ { // crosses two word boundaries
		s.Add(geom.Pt(float64(i), 0))
	}
	check(&s, "after add")
	for id := ID(0); int(id) < s.Len(); id += 3 {
		s.Ref(id).Disable()
	}
	check(&s, "after disable")
	s.Ref(63).Disable()
	s.Ref(64).Disable()
	check(&s, "word-boundary disable")
	s.Ref(63).Enable()
	check(&s, "word-boundary enable")
	s.Reset()
	if s.Len() != 0 || s.EnabledCount() != 0 || len(s.EnabledWords()) != 0 {
		t.Fatal("reset store must be empty")
	}
	for i := 0; i < 70; i++ { // reuse capacity left by the larger first fill
		s.Add(geom.Pt(float64(i), 1))
	}
	check(&s, "after reset+refill")
	if s.EnabledCount() != 70 {
		t.Fatalf("refill EnabledCount = %d, want 70 (stale bits leaked)", s.EnabledCount())
	}
}

func TestEnergyModelCost(t *testing.T) {
	em := EnergyModel{PerMeter: 0.5, PerMove: 2}
	if got := em.Cost(10); got != 7 {
		t.Errorf("Cost(10) = %v, want 7", got)
	}
	var zero EnergyModel
	if got := zero.Cost(10); got != 0 {
		t.Errorf("zero model Cost = %v, want 0", got)
	}
}

func TestStringers(t *testing.T) {
	if Enabled.String() != "enabled" || Disabled.String() != "disabled" {
		t.Error("Status strings")
	}
	if Head.String() != "head" || Spare.String() != "spare" {
		t.Error("Role strings")
	}
	if Status(9).String() == "" || Role(9).String() == "" {
		t.Error("invalid enums should still render")
	}
	var s Store
	if add(&s, geom.Pt(0, 0)).String() == "" {
		t.Error("Ref String empty")
	}
	if (Ref{}).String() == "" {
		t.Error("invalid Ref String empty")
	}
}
