package node

import (
	"math"
	"testing"

	"wsncover/internal/geom"
)

func TestNewDefaults(t *testing.T) {
	n := New(3, geom.Pt(1, 2))
	if n.ID() != 3 {
		t.Errorf("ID = %v", n.ID())
	}
	if !n.Location().Eq(geom.Pt(1, 2)) {
		t.Errorf("Location = %v", n.Location())
	}
	if n.Status() != Enabled || !n.Enabled() {
		t.Errorf("Status = %v", n.Status())
	}
	if n.Role() != Spare {
		t.Errorf("Role = %v, want Spare", n.Role())
	}
	if n.IsHead() {
		t.Error("new node should not be head")
	}
	if n.Moves() != 0 || n.Traveled() != 0 || n.EnergySpent() != 0 {
		t.Error("odometer should start at zero")
	}
}

func TestRoleTransitions(t *testing.T) {
	n := New(0, geom.Pt(0, 0))
	n.SetRole(Head)
	if !n.IsHead() {
		t.Error("should be head after SetRole(Head)")
	}
	n.Disable()
	if n.IsHead() {
		t.Error("disabled node must not count as head")
	}
	if n.Enabled() {
		t.Error("disabled node must not be enabled")
	}
	n.Enable()
	if !n.Enabled() || n.Role() != Spare {
		t.Error("re-enabled node should come back as spare")
	}
}

func TestMoveToAccounting(t *testing.T) {
	n := New(0, geom.Pt(0, 0))
	em := EnergyModel{PerMeter: 2, PerMove: 1}
	d, err := n.MoveTo(geom.Pt(3, 4), em)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("MoveTo distance = %v, want 5", d)
	}
	if n.Moves() != 1 {
		t.Errorf("Moves = %d", n.Moves())
	}
	if math.Abs(n.Traveled()-5) > 1e-12 {
		t.Errorf("Traveled = %v, want 5", n.Traveled())
	}
	if math.Abs(n.EnergySpent()-11) > 1e-12 {
		t.Errorf("EnergySpent = %v, want 11", n.EnergySpent())
	}
	if _, err := n.MoveTo(geom.Pt(3, 5), em); err != nil {
		t.Fatal(err)
	}
	if n.Moves() != 2 || math.Abs(n.Traveled()-6) > 1e-12 {
		t.Errorf("after second move: moves=%d traveled=%v", n.Moves(), n.Traveled())
	}
}

func TestMoveDisabledFails(t *testing.T) {
	n := New(0, geom.Pt(0, 0))
	n.Disable()
	if _, err := n.MoveTo(geom.Pt(1, 1), EnergyModel{}); err == nil {
		t.Error("moving a disabled node should fail")
	}
	if n.Moves() != 0 {
		t.Error("failed move must not charge the odometer")
	}
}

func TestTeleportDoesNotCharge(t *testing.T) {
	n := New(0, geom.Pt(0, 0))
	n.Teleport(geom.Pt(100, 100))
	if !n.Location().Eq(geom.Pt(100, 100)) {
		t.Errorf("Location = %v", n.Location())
	}
	if n.Moves() != 0 || n.Traveled() != 0 {
		t.Error("teleport must not charge the odometer")
	}
}

func TestEnergyModelCost(t *testing.T) {
	em := EnergyModel{PerMeter: 0.5, PerMove: 2}
	if got := em.Cost(10); got != 7 {
		t.Errorf("Cost(10) = %v, want 7", got)
	}
	var zero EnergyModel
	if got := zero.Cost(10); got != 0 {
		t.Errorf("zero model Cost = %v, want 0", got)
	}
}

func TestStringers(t *testing.T) {
	if Enabled.String() != "enabled" || Disabled.String() != "disabled" {
		t.Error("Status strings")
	}
	if Head.String() != "head" || Spare.String() != "spare" {
		t.Error("Role strings")
	}
	if Status(9).String() == "" || Role(9).String() == "" {
		t.Error("invalid enums should still render")
	}
	if New(1, geom.Pt(0, 0)).String() == "" {
		t.Error("Node String empty")
	}
}
