// Package node models the individual mobile sensor devices: identity,
// location, enabled/disabled status, role within a grid (head or spare),
// and a movement odometer with a simple energy account.
package node

import (
	"fmt"

	"wsncover/internal/geom"
)

// ID identifies a node within a network. IDs are dense, starting at 0, and
// assigned by the network in creation order.
type ID int

// Invalid is the ID of no node.
const Invalid ID = -1

// Status is the life-cycle state of a node.
type Status int

// Node statuses. Enums start at 1 so the zero value is invalid.
const (
	// Enabled nodes participate in the WSN collaboration.
	Enabled Status = iota + 1
	// Disabled nodes have failed or misbehaved and are excluded from the
	// collaboration; they neither sense nor communicate nor move.
	Disabled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Enabled:
		return "enabled"
	case Disabled:
		return "disabled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Role is the function an enabled node performs within its grid.
type Role int

// Node roles. Enums start at 1 so the zero value is invalid.
const (
	// Spare nodes idle within a grid that already has a head; they are
	// the mobile resource the replacement process recruits.
	Spare Role = iota + 1
	// Head nodes monitor their grid's neighborhood and carry the
	// surveillance duty; one head per grid guarantees coverage.
	Head
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Spare:
		return "spare"
	case Head:
		return "head"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// EnergyModel converts movement into energy cost. The paper evaluates cost
// by total moving distance; the linear model mirrors that with an optional
// per-move fixed overhead (motor spin-up), enabling energy ablations.
type EnergyModel struct {
	// PerMeter is the energy drawn per meter moved.
	PerMeter float64
	// PerMove is the fixed energy drawn by each movement regardless of
	// distance.
	PerMove float64
}

// Cost returns the energy cost of a single movement of the given distance.
func (m EnergyModel) Cost(distance float64) float64 {
	return m.PerMeter*distance + m.PerMove
}

// Node is one sensor device. Nodes are mutated only through the methods of
// this package and of the owning network, never concurrently.
type Node struct {
	id       ID
	loc      geom.Point
	status   Status
	role     Role
	moves    int
	traveled float64
	energy   float64
}

// New creates an enabled spare node with the given identity and location.
func New(id ID, loc geom.Point) *Node {
	return &Node{id: id, loc: loc, status: Enabled, role: Spare}
}

// Reinit restores the node in place to the state New would produce:
// enabled, spare, odometer and energy account zeroed. The network's
// arena-backed node pool recycles node objects across trials with it.
func (n *Node) Reinit(id ID, loc geom.Point) {
	*n = Node{id: id, loc: loc, status: Enabled, role: Spare}
}

// ID returns the node's identity.
func (n *Node) ID() ID { return n.id }

// Location returns the node's current position.
func (n *Node) Location() geom.Point { return n.loc }

// Status returns the node's life-cycle state.
func (n *Node) Status() Status { return n.status }

// Enabled reports whether the node participates in the collaboration.
func (n *Node) Enabled() bool { return n.status == Enabled }

// Role returns the node's current role. The role of a disabled node is
// meaningless.
func (n *Node) Role() Role { return n.role }

// IsHead reports whether the node is an enabled grid head.
func (n *Node) IsHead() bool { return n.status == Enabled && n.role == Head }

// Moves returns how many movements the node has performed.
func (n *Node) Moves() int { return n.moves }

// Traveled returns the node's total moving distance.
func (n *Node) Traveled() float64 { return n.traveled }

// EnergySpent returns the accumulated movement energy under the models
// passed to MoveTo.
func (n *Node) EnergySpent() float64 { return n.energy }

// SetRole changes the node's role.
func (n *Node) SetRole(r Role) { n.role = r }

// Disable removes the node from the collaboration.
func (n *Node) Disable() { n.status = Disabled }

// Enable returns the node to the collaboration as a spare.
func (n *Node) Enable() {
	n.status = Enabled
	n.role = Spare
}

// MoveTo relocates the node to target, charging the odometer and the
// energy account, and returns the distance moved (0 on error). Disabled
// nodes cannot move. Returning the distance lets the network and the
// controllers share one computation per move instead of re-deriving it.
func (n *Node) MoveTo(target geom.Point, energy EnergyModel) (float64, error) {
	if n.status != Enabled {
		return 0, fmt.Errorf("node %d: cannot move while %v", n.id, n.status)
	}
	d := n.loc.Dist(target)
	n.loc = target
	n.moves++
	n.traveled += d
	n.energy += energy.Cost(d)
	return d, nil
}

// Teleport places the node at target without charging the odometer. It is
// used during deployment, before the simulation starts.
func (n *Node) Teleport(target geom.Point) { n.loc = target }

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("node %d %v %v at %v", n.id, n.status, n.role, n.loc)
}
