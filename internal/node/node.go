// Package node models the individual mobile sensor devices: identity,
// location, enabled/disabled status, role within a grid (head or spare),
// and a movement odometer with a simple energy account.
//
// Storage is struct-of-arrays: a Store holds one dense parallel array per
// attribute, indexed by ID, plus a bitset of enabled ids. A Ref is a
// value handle (store pointer + id) exposing the per-node API; it is what
// the rest of the system passes around instead of a heap object, so
// scans over one attribute touch contiguous memory and trial resets are
// slice truncations rather than object-graph rebuilds.
package node

import (
	"fmt"
	"math/bits"

	"wsncover/internal/geom"
)

// ID identifies a node within a network. IDs are dense, starting at 0, and
// assigned by the network in creation order.
type ID int

// Invalid is the ID of no node.
const Invalid ID = -1

// Status is the life-cycle state of a node.
type Status int

// Node statuses. Enums start at 1 so the zero value is invalid.
const (
	// Enabled nodes participate in the WSN collaboration.
	Enabled Status = iota + 1
	// Disabled nodes have failed or misbehaved and are excluded from the
	// collaboration; they neither sense nor communicate nor move.
	Disabled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Enabled:
		return "enabled"
	case Disabled:
		return "disabled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Role is the function an enabled node performs within its grid.
type Role int

// Node roles. Enums start at 1 so the zero value is invalid.
const (
	// Spare nodes idle within a grid that already has a head; they are
	// the mobile resource the replacement process recruits.
	Spare Role = iota + 1
	// Head nodes monitor their grid's neighborhood and carry the
	// surveillance duty; one head per grid guarantees coverage.
	Head
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Spare:
		return "spare"
	case Head:
		return "head"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// EnergyModel converts movement into energy cost. The paper evaluates cost
// by total moving distance; the linear model mirrors that with an optional
// per-move fixed overhead (motor spin-up), enabling energy ablations.
type EnergyModel struct {
	// PerMeter is the energy drawn per meter moved.
	PerMeter float64
	// PerMove is the fixed energy drawn by each movement regardless of
	// distance.
	PerMove float64
}

// Cost returns the energy cost of a single movement of the given distance.
func (m EnergyModel) Cost(distance float64) float64 {
	return m.PerMeter*distance + m.PerMove
}

// Store is the struct-of-arrays backing of a node population. One slice
// per attribute, all indexed by ID; statuses and roles pack one byte per
// node, and the enabled set is additionally mirrored as bitset words so
// enabled counts and enabled scans are word-parallel. Stores are mutated
// only through Ref and the owning network, never concurrently.
type Store struct {
	loc      []geom.Point
	status   []uint8 // Status, one byte per node
	role     []uint8 // Role, one byte per node
	moves    []int32
	traveled []float64
	energy   []float64
	enabled  []uint64 // bitset: bit id set iff status[id] == Enabled
}

// Len returns the number of nodes in the store.
func (s *Store) Len() int { return len(s.loc) }

// Reset empties the store in place, keeping capacity for reuse. Stale
// contents need no clearing: Add overwrites every attribute, and the
// word holding a new id's bit is rewritten whole when the id opens it.
func (s *Store) Reset() {
	s.loc = s.loc[:0]
	s.status = s.status[:0]
	s.role = s.role[:0]
	s.moves = s.moves[:0]
	s.traveled = s.traveled[:0]
	s.energy = s.energy[:0]
	s.enabled = s.enabled[:0]
}

// Add appends an enabled spare node at loc and returns its id (always
// the current Len, keeping ids dense and creation-ordered).
func (s *Store) Add(loc geom.Point) ID {
	id := ID(len(s.loc))
	s.loc = append(s.loc, loc)
	s.status = append(s.status, uint8(Enabled))
	s.role = append(s.role, uint8(Spare))
	s.moves = append(s.moves, 0)
	s.traveled = append(s.traveled, 0)
	s.energy = append(s.energy, 0)
	if int(id)&63 == 0 {
		// First id of a word: append writes the word whole, discarding
		// whatever a previous trial left in the reused capacity.
		s.enabled = append(s.enabled, 1)
	} else {
		s.enabled[int(id)>>6] |= 1 << (uint(id) & 63)
	}
	return id
}

// Ref returns the handle for id. The handle of an out-of-range id is not
// Valid; its accessors must not be called.
func (s *Store) Ref(id ID) Ref { return Ref{s: s, id: id} }

// EnabledCount returns the number of enabled nodes, popcounted from the
// bitset words.
func (s *Store) EnabledCount() int {
	n := 0
	for _, w := range s.enabled {
		n += bits.OnesCount64(w)
	}
	return n
}

// EnabledWords exposes the enabled bitset (bit id set iff node id is
// enabled; trailing bits of the last word are zero) for word-parallel
// scans. Callers must not modify the words.
func (s *Store) EnabledWords() []uint64 { return s.enabled }

// Ref is a value handle to one node in a Store: the unit the network and
// the controllers pass around. The zero Ref (and any out-of-range id) is
// not Valid.
type Ref struct {
	s  *Store
	id ID
}

// Valid reports whether the handle designates a node in its store.
func (r Ref) Valid() bool { return r.s != nil && r.id >= 0 && int(r.id) < len(r.s.loc) }

// ID returns the node's identity.
func (r Ref) ID() ID { return r.id }

// Location returns the node's current position.
func (r Ref) Location() geom.Point { return r.s.loc[r.id] }

// Status returns the node's life-cycle state.
func (r Ref) Status() Status { return Status(r.s.status[r.id]) }

// Enabled reports whether the node participates in the collaboration.
func (r Ref) Enabled() bool { return Status(r.s.status[r.id]) == Enabled }

// Role returns the node's current role. The role of a disabled node is
// meaningless.
func (r Ref) Role() Role { return Role(r.s.role[r.id]) }

// IsHead reports whether the node is an enabled grid head.
func (r Ref) IsHead() bool {
	return Status(r.s.status[r.id]) == Enabled && Role(r.s.role[r.id]) == Head
}

// Moves returns how many movements the node has performed.
func (r Ref) Moves() int { return int(r.s.moves[r.id]) }

// Traveled returns the node's total moving distance.
func (r Ref) Traveled() float64 { return r.s.traveled[r.id] }

// EnergySpent returns the accumulated movement energy under the models
// passed to MoveTo.
func (r Ref) EnergySpent() float64 { return r.s.energy[r.id] }

// SetRole changes the node's role.
func (r Ref) SetRole(ro Role) { r.s.role[r.id] = uint8(ro) }

// Disable removes the node from the collaboration.
func (r Ref) Disable() {
	r.s.status[r.id] = uint8(Disabled)
	r.s.enabled[int(r.id)>>6] &^= 1 << (uint(r.id) & 63)
}

// Enable returns the node to the collaboration as a spare.
func (r Ref) Enable() {
	r.s.status[r.id] = uint8(Enabled)
	r.s.role[r.id] = uint8(Spare)
	r.s.enabled[int(r.id)>>6] |= 1 << (uint(r.id) & 63)
}

// MoveTo relocates the node to target, charging the odometer and the
// energy account, and returns the distance moved (0 on error). Disabled
// nodes cannot move. Returning the distance lets the network and the
// controllers share one computation per move instead of re-deriving it.
func (r Ref) MoveTo(target geom.Point, energy EnergyModel) (float64, error) {
	if Status(r.s.status[r.id]) != Enabled {
		return 0, fmt.Errorf("node %d: cannot move while %v", r.id, Status(r.s.status[r.id]))
	}
	d := r.s.loc[r.id].Dist(target)
	r.s.loc[r.id] = target
	r.s.moves[r.id]++
	r.s.traveled[r.id] += d
	r.s.energy[r.id] += energy.Cost(d)
	return d, nil
}

// Teleport places the node at target without charging the odometer. It is
// used during deployment, before the simulation starts.
func (r Ref) Teleport(target geom.Point) { r.s.loc[r.id] = target }

// String implements fmt.Stringer.
func (r Ref) String() string {
	if !r.Valid() {
		return fmt.Sprintf("node %d (invalid)", r.id)
	}
	return fmt.Sprintf("node %d %v %v at %v", r.id, r.Status(), r.Role(), r.Location())
}
