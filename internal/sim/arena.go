package sim

import (
	"wsncover/internal/ar"
	"wsncover/internal/async"
	"wsncover/internal/core"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
)

// schemeScratch lazily holds one pooled state block per controller
// package. Each worker arena owns one, so consecutive trials of the same
// scheme reuse the controller's dense tables (procs, claims, bitsets,
// round buffers) instead of reallocating them.
type schemeScratch struct {
	sr    *core.Scratch
	ar    *ar.Scratch
	async *async.Scratch
}

func (s *schemeScratch) forSR() *core.Scratch {
	if s.sr == nil {
		s.sr = new(core.Scratch)
	}
	return s.sr
}

func (s *schemeScratch) forAR() *ar.Scratch {
	if s.ar == nil {
		s.ar = new(ar.Scratch)
	}
	return s.ar
}

func (s *schemeScratch) forAsync() *async.Scratch {
	if s.async == nil {
		s.async = new(async.Scratch)
	}
	return s.async
}

// TrialArena is the pooled replicate engine's per-worker world: it owns
// a Network (with its node storage and cell registries), the metrics
// collector, the controllers' dense scratch state, and — via the
// hamilton.Shared cache and the deploy package's scratch pool — every
// other piece of per-trial setup that does not depend on the seed. Consecutive trials with the same grid
// dimensions, communication range, and energy model Reset the network
// in place instead of rebuilding it, which removes the deployment
// allocations (~1.4 MB and ~9k objects per 64x64 trial) that dominated
// campaign cost after the round loop went allocation-free.
//
// Pooling is purely a memory optimization: an arena-run trial is
// byte-identical to the fresh-built RunTrial for the same TrialConfig —
// network.Reset restores the pristine post-construction state, and the
// differential tests compare whole campaign manifests across the two
// paths. The fresh path remains the executable specification.
//
// An arena is not safe for concurrent use; the experiment engine gives
// each worker goroutine its own (see RunCampaignStream). State exposed
// by a finished trial (Trial.Network, the scheme's Collector) is
// invalidated by the arena's next RunTrial.
type TrialArena struct {
	net *network.Network
	col *metrics.Collector
	scr schemeScratch

	// Geometry and physics the pooled network was built with; a trial
	// that differs in any of them rebuilds instead of resetting.
	cols, rows int
	commRange  float64
	energy     node.EnergyModel
}

// NewTrialArena returns an empty arena; the first trial populates it.
func NewTrialArena() *TrialArena {
	return &TrialArena{col: metrics.NewCollector()}
}

// networkFor returns a pristine network for the normalized trial
// configuration: the pooled one, Reset in place, when the geometry and
// energy model match; a fresh build otherwise (which then becomes the
// pooled one).
func (a *TrialArena) networkFor(cfg *TrialConfig) (*network.Network, error) {
	if a.net != nil && a.cols == cfg.Cols && a.rows == cfg.Rows &&
		a.commRange == cfg.CommRange && a.energy == cfg.EnergyModel {
		a.net.Reset()
		return a.net, nil
	}
	sys, err := grid.NewForCommRange(cfg.Cols, cfg.Rows, cfg.CommRange, geom.Pt(0, 0))
	if err != nil {
		return nil, err
	}
	a.net = network.New(sys, cfg.EnergyModel)
	a.cols, a.rows = cfg.Cols, cfg.Rows
	a.commRange = cfg.CommRange
	a.energy = cfg.EnergyModel
	return a.net, nil
}

// RunTrial executes one trial inside the arena, reusing pooled state
// where the configuration allows. Results are byte-identical to the
// package-level RunTrial. Configurations that force the reference
// assembly (LegacyAssembly) bypass the pool entirely — that path is the
// executable spec and stays verbatim.
func (a *TrialArena) RunTrial(cfg TrialConfig) (TrialResult, error) {
	if cfg.LegacyAssembly {
		return runTrialLegacy(cfg)
	}
	t, err := newTrial(cfg, a)
	if err != nil {
		return TrialResult{}, err
	}
	return t.Run()
}
