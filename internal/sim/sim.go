// Package sim is the experiment harness: it assembles networks in the
// paper's experimental configuration (Section 5), runs the SR and AR
// control schemes to convergence, and sweeps the spare-node count N to
// regenerate the data behind every evaluation figure.
package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"wsncover/internal/ar"
	"wsncover/internal/core"
	"wsncover/internal/deploy"
	"wsncover/internal/experiment"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Scheme is the common round-based interface of the replacement
// controllers (SR, SR+shortcut, AR).
type Scheme interface {
	// Name identifies the scheme in output.
	Name() string
	// Step runs one synchronous round.
	Step() error
	// Done reports whether no replacement process is active.
	Done() bool
	// Collector exposes the metrics collected so far.
	Collector() *metrics.Collector
	// Finalize fails all still-active processes at the round budget.
	Finalize()
}

// Statically verify the controllers satisfy the interface.
var (
	_ Scheme = (*core.Controller)(nil)
	_ Scheme = (*ar.Controller)(nil)
)

// SchemeKind selects a replacement scheme.
type SchemeKind int

// Available schemes. Enums start at 1 so the zero value is invalid.
const (
	// SR is the paper's synchronized Hamilton-cycle scheme.
	SR SchemeKind = iota + 1
	// SRShortcut is SR with the future-work 1-hop shortcut extension.
	SRShortcut
	// AR is the unsynchronized baseline of [3].
	AR
)

// String implements fmt.Stringer.
func (k SchemeKind) String() string {
	switch k {
	case SR:
		return "SR"
	case SRShortcut:
		return "SR+shortcut"
	case AR:
		return "AR"
	default:
		return fmt.Sprintf("SchemeKind(%d)", int(k))
	}
}

// ParseSchemeKind inverts String, accepting the spellings the CLIs use
// (case-insensitive; "SRS" abbreviates "SR+shortcut").
func ParseSchemeKind(s string) (SchemeKind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SR":
		return SR, nil
	case "SR+SHORTCUT", "SRS":
		return SRShortcut, nil
	case "AR":
		return AR, nil
	default:
		return 0, fmt.Errorf("sim: unknown scheme %q (want SR, SR+shortcut, or AR)", s)
	}
}

// MarshalJSON renders the scheme by name so sweep spec files stay
// readable.
func (k SchemeKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a scheme name.
func (k *SchemeKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseSchemeKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// PaperCommRange is the experimental communication range, R = 10 m.
const PaperCommRange = 10.0

// FailureMode selects how a trial damages the network before the scheme
// starts. The zero value is the paper's model.
//
// FailureMode is the legacy two-value damage enum, kept working for
// existing call sites and spec files. New code names its damage model
// with a WorkloadSpec ({Kind: "churn", ...}); the "holes" and "jam"
// workloads re-express this enum byte-identically.
type FailureMode int

const (
	// FailHoles vacates randomly chosen cells (the paper's Section 5
	// configuration): the chosen cells receive no nodes at all.
	FailHoles FailureMode = iota
	// FailJam deploys complete coverage first, then disables every node
	// within a jammed disc at a random center — the region-wide attack
	// of Xu et al. [8] cited in the paper's introduction. The hole count
	// is emergent from the jam radius rather than configured.
	FailJam
)

// String implements fmt.Stringer.
func (m FailureMode) String() string {
	switch m {
	case FailHoles:
		return "holes"
	case FailJam:
		return "jam"
	default:
		return fmt.Sprintf("FailureMode(%d)", int(m))
	}
}

// ParseFailureMode inverts String.
func ParseFailureMode(s string) (FailureMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "holes", "":
		return FailHoles, nil
	case "jam":
		return FailJam, nil
	default:
		return 0, fmt.Errorf("sim: unknown failure mode %q (want holes or jam)", s)
	}
}

// MarshalJSON renders the mode by name.
func (m FailureMode) MarshalJSON() ([]byte, error) { return json.Marshal(m.String()) }

// UnmarshalJSON parses a mode name.
func (m *FailureMode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseFailureMode(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// TrialConfig describes one simulation trial.
type TrialConfig struct {
	// Cols and Rows give the grid system size; the paper uses 16x16.
	Cols, Rows int
	// CommRange sets the communication range R from which the cell size
	// r = R/sqrt(5) is derived; zero means PaperCommRange (10 m, cells of
	// 4.4721 m).
	CommRange float64
	// Spares is the number of spare nodes N left in the network.
	Spares int
	// Holes is the number of simultaneous holes; the trial creates them
	// before the scheme starts. Zero means 1. Ignored under FailJam,
	// where the jammed disc determines the damage.
	Holes int
	// AdjacentHolesOK permits holes in adjacent cells (harder case:
	// monitors of holes may themselves be vacant).
	AdjacentHolesOK bool
	// Failure selects the damage model via the legacy enum; the zero
	// value (FailHoles) is the paper's random vacant cells. Ignored —
	// and required to stay zero — when Workload names a kind.
	Failure FailureMode
	// Workload selects the damage model as a named, parameterized spec
	// ({Kind: "churn", Every: 5, ...}). The zero value falls back to the
	// legacy Failure enum.
	Workload WorkloadSpec
	// Runner selects how the controller is stepped: synchronous global
	// rounds (the zero value, the paper's system model) or the
	// event-driven internal/async realization (SR only).
	Runner RunnerKind
	// JamRadius is the jammed-disc radius under FailJam; zero means 1.5
	// cell sizes (a handful of neighboring cells).
	JamRadius float64
	// Scheme selects the controller.
	Scheme SchemeKind
	// Seed makes the trial reproducible.
	Seed int64
	// MaxRounds bounds the run; zero means 2*cells+16.
	MaxRounds int
	// ARInitProb and ARMaxHops tune the AR baseline (zero = defaults).
	ARInitProb float64
	ARMaxHops  int
	// EnergyModel optionally charges movement energy.
	EnergyModel node.EnergyModel
	// ClaimTTL expires a replacement claim whose process has made no
	// progress for that many rounds, letting detection retry the hole.
	// Zero means claims never expire (the paper's reliable-radio model).
	// SR-family schemes, sync runner only; also a campaign dimension
	// (CampaignSpec.ClaimTTLs) and set by the lossy/byzantine workloads.
	ClaimTTL int
	// MessageLoss drops each delivered message with this probability
	// (lossy radio). Zero means reliable delivery. Sync runner only; set
	// by the lossy workload.
	MessageLoss float64
	// ByzantineFrac corrupts that fraction of monitor cells: their heads
	// lie about vacancies, spawning phantom replacement processes.
	// ByzantineProb is the per-round lie probability of a corrupted
	// monitor, ByzantineLies bounds the lies each tells (0 = unlimited).
	// SR-family schemes, sync runner only; set by the byzantine workload.
	ByzantineFrac float64
	ByzantineProb float64
	ByzantineLies int
	// LegacyDetect runs SR and AR with their reference O(cells)
	// full-scan hole detectors instead of the event-driven ones fed by
	// the network vacancy journal. Each pair is bit-identical; the flag
	// exists for differential testing and benchmarking.
	LegacyDetect bool
	// LegacyAssembly routes the trial through the pre-workload assembly
	// path (ApplyDamage + RunToConvergence), the executable reference
	// the workload schedule path is differential-tested against. Only
	// the holes and jam workloads with the sync runner exist there.
	LegacyAssembly bool
}

func (cfg *TrialConfig) normalize() error {
	if cfg.Cols < 2 || cfg.Rows < 2 {
		return fmt.Errorf("sim: grid %dx%d too small", cfg.Cols, cfg.Rows)
	}
	if cfg.CommRange == 0 {
		cfg.CommRange = PaperCommRange
	}
	if cfg.Holes == 0 {
		cfg.Holes = 1
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 2*cfg.Cols*cfg.Rows + 16
	}
	if cfg.Scheme != SR && cfg.Scheme != SRShortcut && cfg.Scheme != AR {
		return fmt.Errorf("sim: unknown scheme %v", cfg.Scheme)
	}
	if cfg.Spares < 0 {
		return fmt.Errorf("sim: negative spare count %d", cfg.Spares)
	}
	if cfg.Workload.IsZero() {
		if cfg.Failure != FailHoles && cfg.Failure != FailJam {
			return fmt.Errorf("sim: unknown failure mode %v", cfg.Failure)
		}
		cfg.Workload = WorkloadSpec{Kind: cfg.Failure.String()}
	} else {
		if cfg.Failure != FailHoles {
			return fmt.Errorf("sim: set Workload or Failure, not both")
		}
		if cfg.Workload.Kind == "" {
			// Parameters without a kind mean the default kind; the
			// builder then rejects parameters it does not take, so a
			// forgotten Kind fails loudly instead of being ignored.
			cfg.Workload.Kind = WorkloadHoles
		}
	}
	if cfg.Runner != RunSync && cfg.Runner != RunAsync {
		return fmt.Errorf("sim: unknown runner %v", cfg.Runner)
	}
	if cfg.Runner == RunAsync && cfg.Scheme != SR {
		return fmt.Errorf("sim: the async runner supports the SR scheme only, not %v", cfg.Scheme)
	}
	if cfg.JamRadius < 0 {
		return fmt.Errorf("sim: negative jam radius %g", cfg.JamRadius)
	}
	if cfg.ClaimTTL < 0 {
		return fmt.Errorf("sim: negative claim TTL %d", cfg.ClaimTTL)
	}
	if cfg.MessageLoss < 0 || cfg.MessageLoss >= 1 {
		return fmt.Errorf("sim: message loss %g outside [0,1)", cfg.MessageLoss)
	}
	if cfg.ByzantineFrac < 0 || cfg.ByzantineFrac > 1 {
		return fmt.Errorf("sim: byzantine fraction %g outside [0,1]", cfg.ByzantineFrac)
	}
	if cfg.ByzantineProb < 0 || cfg.ByzantineProb > 1 {
		return fmt.Errorf("sim: byzantine probability %g outside [0,1]", cfg.ByzantineProb)
	}
	if cfg.ByzantineLies < 0 {
		return fmt.Errorf("sim: negative byzantine lie budget %d", cfg.ByzantineLies)
	}
	return nil
}

// TrialResult reports one trial's outcome.
type TrialResult struct {
	// Summary aggregates the scheme's replacement processes.
	Summary metrics.Summary
	// Rounds is the number of rounds executed.
	Rounds int
	// HolesBefore and HolesAfter count vacant cells before the scheme
	// started and after it finished.
	HolesBefore int
	HolesAfter  int
	// Complete reports whether every grid had a head at the end.
	Complete bool
	// Connected reports head-overlay connectivity at the end.
	Connected bool
}

// RunTrial builds the experimental configuration and runs the selected
// scheme over the configured workload's damage timeline: the workload
// deploys the population (one node per non-hole cell plus Spares spare
// nodes), its schedule events interleave with controller rounds, and the
// trial converges once no process and no barrier event is outstanding.
func RunTrial(cfg TrialConfig) (TrialResult, error) {
	if cfg.LegacyAssembly {
		return runTrialLegacy(cfg)
	}
	t, err := NewTrial(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	return t.Run()
}

// DamageReport describes the failure a trial injected.
type DamageReport struct {
	// HoleCells are the vacated cells under FailHoles.
	HoleCells []grid.Coord
	// JamCenter, JamRadius, and Killed describe the FailJam disc: its
	// random center, the effective radius, and the nodes it disabled.
	JamCenter geom.Point
	JamRadius float64
	Killed    int
}

// ApplyDamage deploys the trial population on an empty network and
// injects cfg's failure, drawing from rng with a fixed stream-split
// discipline: equal seeds damage the network identically wherever the
// trial is assembled. It is the legacy enum-path damage step — the
// executable reference the holes and jam workloads are
// differential-tested against — and still serves CLIs that assemble
// networks by hand (cmd/coveragesim). cfg is taken as given — call
// sites must set Holes themselves.
func ApplyDamage(net *network.Network, cfg TrialConfig, rng *randx.Rand) (DamageReport, error) {
	sys := net.System()
	switch cfg.Failure {
	case FailJam:
		// Deploy complete coverage, then jam a disc at a random center:
		// every node inside it dies, heads included, and the vacated
		// cells become the holes the scheme must repair.
		damage := rng.Split(1)
		if err := deploy.Controlled(net, cfg.Spares, nil, rng.Split(2)); err != nil {
			return DamageReport{}, err
		}
		radius := cfg.JamRadius
		if radius == 0 {
			radius = 1.5 * sys.CellSize()
		}
		center := damage.InRect(sys.Bounds())
		return DamageReport{
			JamCenter: center,
			JamRadius: radius,
			Killed:    deploy.FailRegion(net, center, radius),
		}, nil
	default:
		holes, err := deploy.PickHoleCells(sys, cfg.Holes, !cfg.AdjacentHolesOK, rng.Split(1))
		if err != nil {
			return DamageReport{}, err
		}
		if err := deploy.Controlled(net, cfg.Spares, holes, rng.Split(2)); err != nil {
			return DamageReport{}, err
		}
		return DamageReport{HoleCells: holes}, nil
	}
}

// BuildScheme constructs the configured controller over an existing
// network. The Hamilton topology comes from the process-wide
// hamilton.Shared cache: it depends only on the grid geometry, so every
// trial of a campaign shares one instance instead of rebuilding the
// O(cells) tables per trial.
func BuildScheme(net *network.Network, cfg TrialConfig, rng *randx.Rand) (Scheme, error) {
	return buildScheme(net, cfg, rng, nil, nil)
}

// buildScheme is BuildScheme with an optional reusable metrics
// collector and controller scratch (the trial arena's; nil allocates
// fresh).
func buildScheme(net *network.Network, cfg TrialConfig, rng *randx.Rand, col *metrics.Collector, scr *schemeScratch) (Scheme, error) {
	switch cfg.Scheme {
	case SR, SRShortcut:
		topo, err := hamilton.Shared(net.System())
		if err != nil {
			return nil, err
		}
		var scratch *core.Scratch
		if scr != nil {
			scratch = scr.forSR()
		}
		return core.New(net, core.Config{
			Topology:         topo,
			RNG:              rng,
			NeighborShortcut: cfg.Scheme == SRShortcut,
			FullScanDetect:   cfg.LegacyDetect,
			ClaimTTL:         cfg.ClaimTTL,
			ByzantineFrac:    cfg.ByzantineFrac,
			ByzantineProb:    cfg.ByzantineProb,
			ByzantineLies:    cfg.ByzantineLies,
			Collector:        col,
			Scratch:          scratch,
		})
	case AR:
		if cfg.ClaimTTL != 0 {
			return nil, fmt.Errorf("sim: ClaimTTL is an SR-family knob; the AR baseline has no claim expiry")
		}
		if cfg.ByzantineFrac != 0 {
			return nil, fmt.Errorf("sim: the byzantine workload targets SR-family monitors; AR is unsupported")
		}
		var scratch *ar.Scratch
		if scr != nil {
			scratch = scr.forAR()
		}
		return ar.New(net, ar.Config{
			RNG:            rng,
			InitProb:       cfg.ARInitProb,
			MaxHops:        cfg.ARMaxHops,
			FullScanDetect: cfg.LegacyDetect,
			Collector:      col,
			Scratch:        scratch,
		}), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %v", cfg.Scheme)
	}
}

// RunToConvergence steps the scheme until it has been idle for a few
// consecutive rounds (detections can lag when a hole's monitor grid is
// itself vacant) or the round budget is exhausted, in which case
// still-active processes are failed. It returns the number of rounds run.
func RunToConvergence(s Scheme, maxRounds int) (int, error) {
	const idleGrace = 3
	idle := 0
	rounds := 0
	for rounds < maxRounds {
		if err := s.Step(); err != nil {
			return rounds, err
		}
		rounds++
		if s.Done() {
			idle++
			if idle >= idleGrace {
				return rounds, nil
			}
		} else {
			idle = 0
		}
	}
	s.Finalize()
	return rounds, nil
}

// SweepPoint aggregates the trials of one scheme at one spare count.
type SweepPoint struct {
	// N is the spare count (x axis of every figure).
	N int
	// Summary is the sum over trials, the unit of Figures 6a, 7a, 8a.
	Summary metrics.Summary
	// Trials is the number of trials aggregated.
	Trials int
	// Recovered counts trials that ended with complete coverage.
	Recovered int
}

// MeanMovesPerTrial returns average movements per trial.
func (p SweepPoint) MeanMovesPerTrial() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Summary.Moves) / float64(p.Trials)
}

// SweepConfig describes a parameter sweep over the spare count N.
type SweepConfig struct {
	// Template is the trial configuration; Spares and Seed are overridden
	// per point and trial.
	Template TrialConfig
	// Ns is the list of spare counts to evaluate.
	Ns []int
	// Trials is the number of independent trials per point.
	Trials int
	// BaseSeed derives per-trial seeds.
	BaseSeed int64
	// Workers sizes the trial worker pool; values below 1 mean
	// GOMAXPROCS. Any worker count produces bit-identical points.
	Workers int
}

// RunSweep evaluates the scheme over all spare counts, running trials on
// the parallel experiment engine. Trials at each point use seeds
// BaseSeed + trialIndex, shared across schemes so that SR and AR face
// identical hole/spare layouts.
func RunSweep(cfg SweepConfig) ([]SweepPoint, error) {
	return RunSweepContext(context.Background(), cfg)
}

// RunSweepContext is RunSweep with cancellation. It is a thin spec
// builder over the experiment engine: the (N, trial) job space is
// enumerated and seeded up front, trials execute in parallel — each
// worker running consecutive trials inside its own pooled TrialArena —
// and the ordered results fold into per-N points exactly as the
// sequential loop did, so sweep output does not depend on the worker
// count (and, by the arena's differential guarantee, not on pooling).
func RunSweepContext(ctx context.Context, cfg SweepConfig) ([]SweepPoint, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("sim: sweep needs at least 1 trial")
	}
	total := len(cfg.Ns) * cfg.Trials
	opts := experiment.Options{Workers: cfg.Workers}
	arenas := make([]*TrialArena, opts.WorkerCount(total))
	results := make([]TrialResult, total)
	err := experiment.RunStreamWorkers(ctx, total, opts,
		func(_ context.Context, w, i int) (TrialResult, error) {
			tc := cfg.Template
			tc.Spares = cfg.Ns[i/cfg.Trials]
			tc.Seed = cfg.BaseSeed + int64(i%cfg.Trials)
			if arenas[w] == nil {
				arenas[w] = NewTrialArena()
			}
			res, err := arenas[w].RunTrial(tc)
			if err != nil {
				return TrialResult{}, fmt.Errorf("sim: sweep N=%d trial %d: %w",
					tc.Spares, i%cfg.Trials, err)
			}
			return res, nil
		},
		func(i int, res TrialResult) error {
			results[i] = res
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(cfg.Ns))
	for ni, n := range cfg.Ns {
		pt := SweepPoint{N: n}
		for _, res := range results[ni*cfg.Trials : (ni+1)*cfg.Trials] {
			pt.Summary = pt.Summary.Add(res.Summary)
			pt.Trials++
			if res.Complete {
				pt.Recovered++
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// PaperNs returns the spare counts of the paper's x axis: 10 to 1000.
func PaperNs() []int {
	return []int{10, 25, 40, 55, 70, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
}
