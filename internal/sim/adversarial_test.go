package sim

import (
	"bytes"
	"strings"
	"testing"
)

// TestAdversarialManifestDeterminism: equal adversarial specs — every
// new zoo kind plus the combinators — must produce byte-identical
// manifests at any worker count. This is what keeps hostile scenarios
// shardable and mergeable like the benign ones.
func TestAdversarialManifestDeterminism(t *testing.T) {
	base := CampaignSpec{
		Schemes:    []SchemeKind{SR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{24},
		Replicates: 2,
	}
	workloads := []WorkloadSpec{
		{Kind: WorkloadMover, Every: 5, Waves: 2},
		{Kind: WorkloadByzantine, Holes: 2, Frac: 0.2, Prob: 0.5},
		{Kind: WorkloadResupply, Holes: 3, At: 5, Batch: 4, Count: 2},
		{Kind: WorkloadLossy, Holes: 2, Loss: 0.25},
		{Kind: WorkloadSequence, Every: 5, Children: []WorkloadSpec{
			{Kind: WorkloadHoles, Holes: 2},
			{Kind: WorkloadByzantine, Holes: 1, Frac: 0.2},
		}},
		{Kind: WorkloadOverlay, Children: []WorkloadSpec{
			{Kind: WorkloadJam},
			{Kind: WorkloadChurn, Holes: 1, Every: 3, Waves: 2},
		}},
		{Kind: WorkloadRandom, Pick: 7, Count: 2},
	}
	for i, wl := range workloads {
		spec := base
		spec.Workloads = []WorkloadSpec{wl}
		spec.BaseSeed = int64(100 + i)
		t.Run(wl.Kind, func(t *testing.T) {
			ref := campaignManifestBytes(t, spec, 1)
			if got := campaignManifestBytes(t, spec, 4); !bytes.Equal(got, ref) {
				t.Errorf("%s manifest differs at workers=4", wl)
			}
			if got := campaignManifestBytes(t, spec, 1); !bytes.Equal(got, ref) {
				t.Errorf("%s manifest not reproducible across runs", wl)
			}
		})
	}
}

// TestClaimTTLDimension: claim_ttls is a first-class campaign dimension —
// it multiplies the job space, labels groups, and sweeps byte-
// deterministically at any worker count.
func TestClaimTTLDimension(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{20},
		Workloads:  []WorkloadSpec{{Kind: WorkloadLossy, Holes: 2, Loss: 0.2}},
		ClaimTTLs:  []int{4, 12},
		Replicates: 2,
		BaseSeed:   61,
	}
	if got, want := spec.Normalized().NumJobs(), 2*2; got != want {
		t.Fatalf("NumJobs() = %d, want %d (2 ttls x 2 replicates)", got, want)
	}
	seen := map[string]bool{}
	spec.Normalized().ExecutedJobs(nil, func(j TrialJob) {
		seen[j.Group()] = true
		if j.ClaimTTL != 4 && j.ClaimTTL != 12 {
			t.Errorf("job carries ttl %d, want 4 or 12", j.ClaimTTL)
		}
	})
	if len(seen) != 2 {
		t.Errorf("ttl sweep produced %d groups, want 2: %v", len(seen), seen)
	}
	for g := range seen {
		if !strings.Contains(g, "ttl=") {
			t.Errorf("group label %q does not name its ttl", g)
		}
	}

	ref := campaignManifestBytes(t, spec, 1)
	if got := campaignManifestBytes(t, spec, 4); !bytes.Equal(got, ref) {
		t.Error("ttl-swept manifest differs at workers=4")
	}

	// The dimension is SR-family, sync-runner only.
	bad := spec
	bad.Schemes = []SchemeKind{AR}
	if err := bad.Validate(); err == nil {
		t.Error("claim_ttls with AR should fail Validate")
	}
	bad = spec
	bad.Runners = []RunnerKind{RunAsync}
	if err := bad.Validate(); err == nil {
		t.Error("claim_ttls with the async runner should fail Validate")
	}
	bad = spec
	bad.ClaimTTLs = []int{-1}
	if err := bad.Validate(); err == nil {
		t.Error("negative claim_ttls should fail Validate")
	}
}

// TestAdversarialSpecJSONRoundTrip: a composed spec survives the JSON
// round trip intact — the grammar is data, not code.
func TestAdversarialSpecJSONRoundTrip(t *testing.T) {
	in := `{
		"schemes": ["sr"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [16],
		"claim_ttls": [6],
		"replicates": 2,
		"seed": 5,
		"workloads": [{
			"kind": "sequence",
			"every": 8,
			"children": [
				{"kind": "byzantine", "holes": 2, "frac": 0.2},
				{"kind": "resupply", "holes": 2, "batch": 4},
				{"kind": "lossy", "holes": 1, "loss": 0.2}
			]
		}]
	}`
	var spec CampaignSpec
	if err := UnmarshalSpecJSON([]byte(in), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	wl := spec.Workloads[0]
	if wl.Kind != WorkloadSequence || len(wl.Children) != 3 ||
		wl.Children[0].Frac != 0.2 || wl.Children[2].Loss != 0.2 {
		t.Fatalf("spec did not round-trip: %+v", wl)
	}
	ref := campaignManifestBytes(t, spec, 1)
	if got := campaignManifestBytes(t, spec, 4); !bytes.Equal(got, ref) {
		t.Error("composed spec-file manifest differs at workers=4")
	}
}

// TestAdversarialWorkloadGuards: the zoo's scheme/runner restrictions
// fail at trial construction with errors naming the constraint.
func TestAdversarialWorkloadGuards(t *testing.T) {
	cases := []struct {
		name string
		cfg  TrialConfig
	}{
		{"byzantine/ar", TrialConfig{
			Cols: 8, Rows: 8, Scheme: AR, Spares: 10, Seed: 1,
			Workload: WorkloadSpec{Kind: WorkloadByzantine, Holes: 1},
		}},
		{"lossy/ar", TrialConfig{
			Cols: 8, Rows: 8, Scheme: AR, Spares: 10, Seed: 1,
			Workload: WorkloadSpec{Kind: WorkloadLossy, Holes: 1},
		}},
		{"byzantine/async", TrialConfig{
			Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Seed: 1, Runner: RunAsync,
			Workload: WorkloadSpec{Kind: WorkloadByzantine, Holes: 1},
		}},
		{"lossy/async", TrialConfig{
			Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Seed: 1, Runner: RunAsync,
			Workload: WorkloadSpec{Kind: WorkloadLossy, Holes: 1},
		}},
		{"resupply/async", TrialConfig{
			Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Seed: 1, Runner: RunAsync,
			Workload: WorkloadSpec{Kind: WorkloadResupply, Holes: 1},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewTrial(c.cfg); err == nil {
				t.Errorf("%s: NewTrial accepted an unsupported combination", c.name)
			}
		})
	}

	// Stray parameters on the new kinds fail loudly, like the old ones.
	for _, spec := range []WorkloadSpec{
		{Kind: WorkloadMover, Budget: 3},
		{Kind: WorkloadByzantine, Radius: 2},
		{Kind: WorkloadResupply, Loss: 0.1},
		{Kind: WorkloadLossy, Waves: 2},
		{Kind: WorkloadSequence, Pick: 3, Children: []WorkloadSpec{{Kind: WorkloadHoles}}},
		{Kind: WorkloadRandom, Children: []WorkloadSpec{{Kind: WorkloadHoles}}},
	} {
		if _, err := BuildWorkload(spec); err == nil {
			t.Errorf("stray parameter accepted: %+v", spec)
		}
	}
}
