package sim

import (
	"bytes"
	"context"
	"testing"

	"wsncover/internal/experiment"
)

// TestArenaTrialsBitIdenticalToFresh runs a heterogeneous sequence of
// configurations through one arena — forcing rebuilds, resets, scheme
// switches, grid switches, and energy-model switches — and requires
// every result to equal the fresh-built reference trial.
func TestArenaTrialsBitIdenticalToFresh(t *testing.T) {
	configs := []TrialConfig{
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Holes: 2, Seed: 1},
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Holes: 2, Seed: 2}, // reset reuse
		{Cols: 8, Rows: 8, Scheme: AR, Spares: 10, Holes: 2, Seed: 2}, // scheme switch, same net shape
		{Cols: 9, Rows: 9, Scheme: SR, Spares: 12, Holes: 3, Seed: 3}, // dual-path grid, rebuild
		{Cols: 9, Rows: 9, Scheme: SRShortcut, Spares: 0, Holes: 3, Seed: 4},
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Holes: 2, Seed: 1,
			Workload: WorkloadSpec{Kind: WorkloadChurn, Every: 3, Waves: 2}},
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Seed: 5,
			Workload: WorkloadSpec{Kind: WorkloadDepletion, Budget: 15}}, // installs an energy model
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Holes: 2, Seed: 6}, // back to no energy model
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 8, Seed: 7, Runner: RunAsync,
			Workload: WorkloadSpec{Kind: WorkloadJam}},
		{Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Holes: 2, Seed: 8, LegacyDetect: true},
	}
	arena := NewTrialArena()
	for i, cfg := range configs {
		pooled, err := arena.RunTrial(cfg)
		if err != nil {
			t.Fatalf("config %d pooled: %v", i, err)
		}
		fresh, err := RunTrial(cfg)
		if err != nil {
			t.Fatalf("config %d fresh: %v", i, err)
		}
		if pooled != fresh {
			t.Fatalf("config %d: pooled %+v differs from fresh %+v", i, pooled, fresh)
		}
	}
}

// pooledManifestBytes serializes a campaign manifest with pooling on or
// off. Mirrors manifestBytes (differential_test.go), but over the
// FreshBuild axis.
func pooledManifestBytes(t *testing.T, spec CampaignSpec, fresh bool, workers int) []byte {
	t.Helper()
	spec.FreshBuild = fresh
	samples, err := RunCampaignSamples(context.Background(), spec, experiment.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	points := experiment.Aggregate(samples)
	// The FreshBuild flag is execution strategy, not a result; pin it in
	// the echoed spec so the byte comparison covers results only.
	echo := spec.Normalized()
	echo.FreshBuild = false
	m, err := experiment.NewManifest("diff", echo, len(samples), 0, points)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignManifestsBitIdenticalAcrossPooling is the tentpole
// acceptance criterion: over schemes x workloads x runners, pooled and
// fresh campaign runs must produce byte-identical manifests at any
// worker count.
func TestCampaignManifestsBitIdenticalAcrossPooling(t *testing.T) {
	specs := []CampaignSpec{
		{
			Schemes: []SchemeKind{SR, SRShortcut, AR},
			Grids:   []GridSize{{8, 8}, {9, 9}}, // cycle and dual path
			Spares:  []int{4, 20},
			Holes:   []int{1, 3},
			Workloads: []WorkloadSpec{
				{Kind: WorkloadHoles},
				{Kind: WorkloadJam},
				{Kind: WorkloadChurn, Every: 3, Waves: 2},
				{Kind: WorkloadDepletion, Budget: 20},
			},
			Replicates: 2,
			BaseSeed:   404,
		},
		{
			// The async runner (SR only) alongside sync, plus a spare
			// drought so exhausted walks cross the pooling boundary too.
			Schemes:    []SchemeKind{SR},
			Grids:      []GridSize{{8, 8}},
			Spares:     []int{0, 10},
			Runners:    []RunnerKind{RunSync, RunAsync},
			Replicates: 3,
			BaseSeed:   505,
		},
	}
	for i, spec := range specs {
		ref := pooledManifestBytes(t, spec, true, 1)
		for _, workers := range []int{1, 4} {
			if got := pooledManifestBytes(t, spec, false, workers); !bytes.Equal(got, ref) {
				t.Errorf("spec %d: pooled manifest differs from fresh at workers=%d", i, workers)
			}
		}
		if got := pooledManifestBytes(t, spec, true, 4); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: fresh manifest not worker-invariant", i)
		}
	}
}

// TestSteadyStateReplicateAllocBudget pins the arena's steady state
// under a small fixed allocation budget per trial — the replicate-level
// companion of the 0-allocs/round pin. The budget admits the per-trial
// RNG streams, the controller's maps, and the workload closures; what
// it excludes is everything proportional to the world size (node
// objects, cell registries, topology tables, permutation buffers),
// which the arena, the topology cache, and the deploy scratch pool
// amortize across replicates. Since the controllers moved to pooled
// dense tables (core/ar Scratch), the budget no longer admits maps —
// what remains is the per-trial RNG stream split and the workload
// closures.
func TestSteadyStateReplicateAllocBudget(t *testing.T) {
	const budget = 40 // allocs/trial (measured 22 for both SR and AR; fresh 16x16 builds cost ~200)
	for _, scheme := range []SchemeKind{SR, AR} {
		arena := NewTrialArena()
		cfg := TrialConfig{Cols: 16, Rows: 16, Scheme: scheme, Spares: 40, Holes: 2}
		run := func(seed int64) {
			cfg.Seed = seed
			if _, err := arena.RunTrial(cfg); err != nil {
				t.Fatal(err)
			}
		}
		for s := int64(0); s < 8; s++ { // warm the pool across varied layouts
			run(s)
		}
		seed := int64(0)
		allocs := testing.AllocsPerRun(16, func() {
			run(seed % 8)
			seed++
		})
		if allocs > budget {
			t.Errorf("%v steady-state replicate allocates %.0f times, budget %d", scheme, allocs, budget)
		}
	}
}
