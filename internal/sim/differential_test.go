package sim

import (
	"bytes"
	"context"
	"testing"

	"wsncover/internal/experiment"
)

// manifestBytes runs the campaign with the given detector selection and
// serializes the aggregated manifest. Both arms use the same (batch)
// aggregation, so any byte difference is a detection divergence.
func manifestBytes(t *testing.T, spec CampaignSpec, legacy bool, workers int) []byte {
	t.Helper()
	spec.legacyDetect = legacy
	samples, err := RunCampaignSamples(context.Background(), spec, experiment.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	points := experiment.Aggregate(samples)
	// The worker count is execution metadata, not a result; pin it so the
	// byte comparison covers results only.
	m, err := experiment.NewManifest("diff", spec, len(samples), 0, points)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignManifestsBitIdenticalAcrossDetectors is the acceptance
// criterion at the campaign level: over schemes x grids x failure modes x
// seeds, the event-driven detector must produce byte-identical campaign
// manifests to the seed's full-scan implementation, at any worker count.
func TestCampaignManifestsBitIdenticalAcrossDetectors(t *testing.T) {
	specs := []CampaignSpec{
		{
			Schemes:    []SchemeKind{SR, SRShortcut, AR},
			Grids:      []GridSize{{8, 8}, {9, 9}}, // cycle and dual path
			Spares:     []int{4, 20},
			Holes:      []int{1, 3},
			Failures:   []FailureMode{FailHoles, FailJam},
			Replicates: 3,
			BaseSeed:   101,
		},
		{
			Schemes:         []SchemeKind{SR},
			Grids:           []GridSize{{12, 12}},
			Spares:          []int{0, 8}, // spare drought: exhausted walks
			Holes:           []int{4},
			AdjacentHolesOK: true,
			Replicates:      4,
			BaseSeed:        202,
		},
	}
	for i, spec := range specs {
		ref := manifestBytes(t, spec, true, 1)
		if got := manifestBytes(t, spec, false, 1); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: event-driven manifest differs from full-scan manifest (workers=1)", i)
		}
		if got := manifestBytes(t, spec, false, 8); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: event-driven manifest differs at workers=8", i)
		}
		if got := manifestBytes(t, spec, true, 8); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: full-scan manifest not worker-invariant", i)
		}
	}
}

// TestTrialLegacyDetectFlag spot-checks the TrialConfig plumbing: for
// every scheme — SR and, since the AR journal port, AR too — the
// full-scan and event-driven detectors must agree trial by trial.
func TestTrialLegacyDetectFlag(t *testing.T) {
	for _, scheme := range []SchemeKind{SR, SRShortcut, AR} {
		for seed := int64(0); seed < 4; seed++ {
			base := TrialConfig{
				Cols: 9, Rows: 9, Scheme: scheme, Spares: 12, Holes: 3, Seed: seed,
			}
			legacy := base
			legacy.LegacyDetect = true
			a, err := RunTrial(base)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunTrial(legacy)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%v seed %d: %+v vs %+v", scheme, seed, a, b)
			}
		}
	}
}
