package sim

import (
	"fmt"
	"sort"

	"wsncover/internal/async"
	"wsncover/internal/coverage"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/randx"
)

// asyncPollInterval is the nominal poll period of the async runner in
// seconds; one schedule round maps to one poll period, and the round
// budget maps to MaxRounds poll periods.
const asyncPollInterval = 0.5

// Trial is one assembled simulation: a deployed network, a controller,
// and the workload's damage schedule, interleaved by Run's event loop.
// A Trial is single-use: assemble with NewTrial, execute with Run.
type Trial struct {
	cfg   TrialConfig
	net   *network.Network
	sched Schedule

	// Exactly one of scheme (sync runner) and actrl (async runner) is set.
	scheme Scheme
	actrl  *async.Controller

	// evRNG is the stateful parent of the per-firing damage streams:
	// applyDue splits one child stream off it per event firing, in
	// firing order. The firing sequence is a pure function of the
	// schedule, so equal (spec, seed) trials see equal streams — but
	// reordering a schedule's firings reorders every subsequent stream.
	evRNG *randx.Rand
}

// NewTrial resolves the configured workload into its schedule, deploys
// the network, and attaches the controller, drawing from the seed with
// the fixed stream-split discipline (deployment streams first, then the
// scheme stream, then the event stream), so equal configurations
// assemble identical trials wherever they run.
func NewTrial(cfg TrialConfig) (*Trial, error) { return newTrial(cfg, nil) }

// newTrial is NewTrial with an optional arena. A nil arena builds every
// piece of the world fresh (the executable specification); a non-nil
// arena reuses its pooled network and collector where the configuration
// matches. The seed's stream-split discipline is identical on both
// paths, so the assembled trials are byte-identical.
func newTrial(cfg TrialConfig, arena *TrialArena) (*Trial, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	wl, err := BuildWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	sched, err := wl.Schedule(&cfg)
	if err != nil {
		return nil, err
	}
	if err := validateEvents(sched.Events); err != nil {
		return nil, err
	}
	// Checked after Schedule because workloads (lossy, byzantine) install
	// these knobs into cfg there.
	if cfg.Runner == RunAsync && (cfg.ClaimTTL != 0 || cfg.MessageLoss != 0 || cfg.ByzantineFrac != 0) {
		return nil, fmt.Errorf("sim: ClaimTTL, MessageLoss, and byzantine monitors require the sync runner")
	}
	rng := randx.New(cfg.Seed)
	var net *network.Network
	var col *metrics.Collector
	var scr *schemeScratch
	if arena != nil {
		scr = &arena.scr
		// The workload may have installed its energy model into cfg
		// above, so pool compatibility is decided on the resolved config.
		if net, err = arena.networkFor(&cfg); err != nil {
			return nil, err
		}
		col = arena.col
	} else {
		sys, err := grid.NewForCommRange(cfg.Cols, cfg.Rows, cfg.CommRange, geom.Pt(0, 0))
		if err != nil {
			return nil, err
		}
		net = network.New(sys, cfg.EnergyModel)
	}
	if sched.Deploy != nil {
		if err := sched.Deploy(net, rng); err != nil {
			return nil, err
		}
	}
	t := &Trial{cfg: cfg, net: net, sched: sched}
	if cfg.Runner == RunAsync {
		topo, err := hamilton.Shared(net.System())
		if err != nil {
			return nil, err
		}
		var scratch *async.Scratch
		if scr != nil {
			scratch = scr.forAsync()
		}
		t.actrl, err = async.New(net, async.Config{
			Topology:     topo,
			RNG:          rng.Split(3),
			PollInterval: asyncPollInterval,
			Collector:    col,
			Scratch:      scratch,
		})
		if err != nil {
			return nil, err
		}
	} else {
		t.scheme, err = buildScheme(net, cfg, rng.Split(3), col, scr)
		if err != nil {
			return nil, err
		}
	}
	t.evRNG = rng.Split(4)
	if cfg.MessageLoss > 0 {
		// The loss stream splits last, and only when the radio is lossy,
		// so reliable-radio trials keep their legacy stream shape.
		if err := net.SetMessageLoss(cfg.MessageLoss, rng.Split(5)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Network exposes the trial's network for inspection after Run.
func (t *Trial) Network() *network.Network { return t.net }

// collector returns the attached controller's metrics collector.
func (t *Trial) collector() *metrics.Collector {
	if t.actrl != nil {
		return t.actrl.Collector()
	}
	return t.scheme.Collector()
}

// Run executes the trial's event loop — schedule events interleaved with
// controller stepping — until the scheme converges with no barrier event
// outstanding, or the round budget is exhausted, in which case
// still-active processes are failed.
func (t *Trial) Run() (TrialResult, error) {
	var rounds, holesBefore int
	var err error
	if t.actrl != nil {
		rounds, holesBefore, err = t.runAsync()
	} else {
		rounds, holesBefore, err = t.runSync()
	}
	if err != nil {
		return TrialResult{}, err
	}
	return TrialResult{
		Summary:     t.collector().Summarize(),
		Rounds:      rounds,
		HolesBefore: holesBefore,
		HolesAfter:  coverage.HoleCount(t.net),
		Complete:    coverage.Complete(t.net),
		Connected:   t.net.HeadGraphConnected(),
	}, nil
}

// validateEvents rejects schedule shapes the event loop cannot honor.
func validateEvents(events []Event) error {
	for _, ev := range events {
		if ev.Round < 0 || ev.Every < 0 {
			return fmt.Errorf("sim: schedule event with negative round/every: %+v", ev)
		}
		if ev.Every > 0 && ev.Barrier {
			return fmt.Errorf("sim: recurring schedule events cannot be barriers")
		}
		if ev.Apply == nil {
			return fmt.Errorf("sim: schedule event without Apply")
		}
	}
	return nil
}

// eventCursor walks a schedule's events in firing order without
// mutating the schedule: one-shot events by (round, declaration order),
// recurring events re-arming themselves every Every rounds — O(1)
// memory for any trial length. Within a round, one-shots fire before
// recurring events.
type eventCursor struct {
	oneShot []Event
	next    int
	// lastBarrier is the index of the last barrier one-shot; the trial
	// must not converge before it has fired.
	lastBarrier int
	recur       []Event
	fire        []int // next firing round per recurring event
	fired       []int // most recent firing round per recurring event
}

func newEventCursor(events []Event) *eventCursor {
	c := &eventCursor{lastBarrier: -1}
	for _, ev := range events {
		if ev.Every > 0 {
			c.recur = append(c.recur, ev)
			c.fire = append(c.fire, ev.Round)
			c.fired = append(c.fired, -1)
		} else {
			c.oneShot = append(c.oneShot, ev)
		}
	}
	sort.SliceStable(c.oneShot, func(i, j int) bool {
		return c.oneShot[i].Round < c.oneShot[j].Round
	})
	for i, ev := range c.oneShot {
		if ev.Barrier {
			c.lastBarrier = i
		}
	}
	return c
}

// pop returns the next event due at or before round, if any.
func (c *eventCursor) pop(round int) (Event, bool) {
	if c.next < len(c.oneShot) && c.oneShot[c.next].Round <= round {
		ev := c.oneShot[c.next]
		c.next++
		return ev, true
	}
	for i := range c.recur {
		if c.fire[i] <= round {
			c.fired[i] = c.fire[i]
			c.fire[i] += c.recur[i].Every
			return c.recur[i], true
		}
	}
	return Event{}, false
}

// nextDue returns the earliest round any event is due at.
func (c *eventCursor) nextDue() (int, bool) {
	due, ok := 0, false
	if c.next < len(c.oneShot) {
		due, ok = c.oneShot[c.next].Round, true
	}
	for i := range c.fire {
		if !ok || c.fire[i] < due {
			due, ok = c.fire[i], true
		}
	}
	return due, ok
}

// barrierPending reports whether a barrier event has not fired yet.
func (c *eventCursor) barrierPending() bool { return c.next <= c.lastBarrier }

// quiescent reports whether every recurring event has fired at least
// once at or after the given round. Convergence requires quiescence
// relative to the scheme's last active round: a recurring probe (a
// depletion check) observes state the scheme's activity may have
// changed, so each must get one look at the settled network before the
// trial may end — after that, re-firing on an idle network is a no-op,
// which is what lets the sync and async runners agree on outcomes.
func (c *eventCursor) quiescent(since int) bool {
	for i := range c.fired {
		if c.fired[i] < since {
			return false
		}
	}
	return true
}

// applyDue fires every event due at or before round. The per-firing RNG
// streams derive from evRNG sequentially; the firing order is a pure
// function of the schedule, so equal trials see equal streams.
func (t *Trial) applyDue(cur *eventCursor, round int) error {
	for {
		ev, ok := cur.pop(round)
		if !ok {
			return nil
		}
		if err := ev.Apply(t.net, t.evRNG.Split(int64(round)), round); err != nil {
			return err
		}
		if ev.Rally {
			// Damage that restores resources (resupply) rallies the scheme:
			// holes it gave up on become eligible for detection again. A nil
			// or non-rallying scheme (async runner) fails the assertion and
			// the event degrades to plain damage.
			if r, ok := t.scheme.(interface{ ResetFailed() }); ok {
				r.ResetFailed()
			}
		}
	}
}

// runSync is the synchronous event loop. With an empty schedule it is
// exactly RunToConvergence over the deployed damage, which is what keeps
// the holes and jam workloads byte-identical to the pre-workload path.
func (t *Trial) runSync() (rounds, holesBefore int, err error) {
	const idleGrace = 3
	cur := newEventCursor(t.sched.Events)
	idle, lastActive := 0, 0
	for rounds < t.cfg.MaxRounds {
		if err := t.applyDue(cur, rounds); err != nil {
			return rounds, holesBefore, err
		}
		if rounds == 0 {
			// The initial damage: deployment shape plus round-0 events.
			holesBefore = coverage.HoleCount(t.net)
		}
		if err := t.scheme.Step(); err != nil {
			return rounds, holesBefore, err
		}
		rounds++
		// Mid-run damage flips the network's vacancy journal; the
		// event-driven detectors pick it up in the step above, so Done
		// flips false the round after a wave lands. Convergence further
		// requires every recurring probe to have seen the network since
		// it last changed (quiescence) — otherwise a depletion check due
		// just past the idle grace would be skipped and the sync runner
		// would disagree with the async one.
		if !t.scheme.Done() {
			lastActive = rounds
		}
		if t.scheme.Done() && !cur.barrierPending() && cur.quiescent(lastActive) {
			idle++
			if idle >= idleGrace {
				return rounds, holesBefore, nil
			}
		} else {
			idle = 0
		}
	}
	t.scheme.Finalize()
	return rounds, holesBefore, nil
}

// runAsync drives the async controller between schedule events: each
// event's round maps to round*pollInterval seconds of simulated time,
// and the round budget to MaxRounds poll periods.
func (t *Trial) runAsync() (rounds, holesBefore int, err error) {
	cur := newEventCursor(t.sched.Events)
	// Round-0 events are part of the initial damage and fire before any
	// simulated time elapses.
	if err := t.applyDue(cur, 0); err != nil {
		return 0, 0, err
	}
	holesBefore = coverage.HoleCount(t.net)
	for {
		due, ok := cur.nextDue()
		if !ok || due >= t.cfg.MaxRounds {
			break
		}
		if _, err := t.actrl.RunUntil(float64(due) * asyncPollInterval); err != nil {
			return t.asyncRounds(), holesBefore, err
		}
		if err := t.applyDue(cur, due); err != nil {
			return t.asyncRounds(), holesBefore, err
		}
	}
	if _, err := t.actrl.RunUntil(float64(t.cfg.MaxRounds) * asyncPollInterval); err != nil {
		return t.asyncRounds(), holesBefore, err
	}
	if !t.actrl.Done() {
		t.actrl.Finalize()
	}
	return t.asyncRounds(), holesBefore, nil
}

// asyncRounds converts the async controller's clock into nominal rounds
// for TrialResult, capped at the round budget.
func (t *Trial) asyncRounds() int {
	rounds := int(t.actrl.Now()/asyncPollInterval) + 1
	if rounds > t.cfg.MaxRounds {
		rounds = t.cfg.MaxRounds
	}
	return rounds
}

// RunSchedule steps an already-assembled scheme through a schedule's
// events until convergence: the event loop of Trial.Run exposed for
// callers that deployed their own network (the wsncover facade's
// Scenario). The schedule's Deploy is ignored — the caller's network is
// taken as already populated — and the schedule itself is not mutated.
// It returns the number of rounds run.
func RunSchedule(s Scheme, net *network.Network, sched Schedule, evRNG *randx.Rand, maxRounds int) (int, error) {
	if err := validateEvents(sched.Events); err != nil {
		return 0, err
	}
	t := &Trial{
		cfg:    TrialConfig{MaxRounds: maxRounds},
		net:    net,
		sched:  sched,
		scheme: s,
		evRNG:  evRNG,
	}
	rounds, _, err := t.runSync()
	return rounds, err
}

// runTrialLegacy is the pre-workload trial assembly, kept verbatim as the
// executable reference the workload path is differential-tested against:
// ApplyDamage's FailureMode switch followed by RunToConvergence.
func runTrialLegacy(cfg TrialConfig) (TrialResult, error) {
	if err := cfg.normalize(); err != nil {
		return TrialResult{}, err
	}
	switch cfg.Workload.Kind {
	case WorkloadHoles:
		cfg.Failure = FailHoles
	case WorkloadJam:
		cfg.Failure = FailJam
		if cfg.Workload.Radius != 0 {
			cfg.JamRadius = cfg.Workload.Radius
		}
	default:
		return TrialResult{}, fmt.Errorf("sim: legacy assembly supports workloads %q and %q, not %q",
			WorkloadHoles, WorkloadJam, cfg.Workload.Kind)
	}
	if cfg.Runner != RunSync {
		return TrialResult{}, fmt.Errorf("sim: legacy assembly supports the sync runner only")
	}
	rng := randx.New(cfg.Seed)
	sys, err := grid.NewForCommRange(cfg.Cols, cfg.Rows, cfg.CommRange, geom.Pt(0, 0))
	if err != nil {
		return TrialResult{}, err
	}
	net := network.New(sys, cfg.EnergyModel)
	if _, err := ApplyDamage(net, cfg, rng); err != nil {
		return TrialResult{}, err
	}
	scheme, err := BuildScheme(net, cfg, rng.Split(3))
	if err != nil {
		return TrialResult{}, err
	}
	res := TrialResult{HolesBefore: coverage.HoleCount(net)}
	res.Rounds, err = RunToConvergence(scheme, cfg.MaxRounds)
	if err != nil {
		return TrialResult{}, err
	}
	res.Summary = scheme.Collector().Summarize()
	res.HolesAfter = coverage.HoleCount(net)
	res.Complete = coverage.Complete(net)
	res.Connected = net.HeadGraphConnected()
	return res, nil
}
