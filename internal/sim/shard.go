package sim

import "fmt"

// ShardRange returns the contiguous replicate block [first, first+count)
// of shard i of n (1-based) when replicates are split as evenly as
// possible across n shards: the first replicates%n shards get one extra
// replicate. This is the single definition of the even split — cmd/sweep
// -shard i/n and the dispatch driver both use it, so a hand-launched
// shard and a dispatched one always cover identical ranges.
func ShardRange(i, n, replicates int) (first, count int, err error) {
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("sim: shard %d/%d outside 1..n", i, n)
	}
	if n > replicates {
		return 0, 0, fmt.Errorf("sim: cannot split %d replicates into %d shards", replicates, n)
	}
	base, rem := replicates/n, replicates%n
	first = (i-1)*base + min(i-1, rem)
	count = base
	if i <= rem {
		count++
	}
	return first, count, nil
}

// SplitShards splits the campaign into n shard specs covering the even
// replicate blocks of ShardRange, in shard order. Each returned spec is
// the normalized campaign with only ShardFirst/ShardCount set — seeds
// still derive from the full replicate range, so every shard computes
// byte-identical slices of the unsharded campaign and the shard
// manifests stitch back together through dispatch.MergeShardManifests
// (or cmd/sweep -merge). A spec that already pins a shard range cannot
// be split again.
func (s CampaignSpec) SplitShards(n int) ([]CampaignSpec, error) {
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.ShardCount != 0 {
		return nil, fmt.Errorf("sim: spec already pins shard range [%d, +%d); split the unsharded campaign",
			s.ShardFirst, s.ShardCount)
	}
	shards := make([]CampaignSpec, n)
	for i := 1; i <= n; i++ {
		first, count, err := ShardRange(i, n, s.Replicates)
		if err != nil {
			return nil, err
		}
		shard := s
		shard.ShardFirst, shard.ShardCount = first, count
		shards[i-1] = shard
	}
	return shards, nil
}
