// Scenario grammar: workload combinators that compose registered kinds
// into damage timelines, turning the registry into a scenario generator.
//
// A Composable workload can contribute its damage as events at a round
// offset, instead of owning the deployment. The combinators exploit
// that: sequence phases children apart in time, overlay stacks them at
// the same round, and random generates a seeded composition over the
// registered kinds. Specs nest recursively (Children), bounded by
// MaxCompositionDepth and MaxChildren so a spec file or a fuzzer cannot
// build unbounded schedules.
package sim

import (
	"fmt"

	"wsncover/internal/deploy"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Composable is implemented by workloads whose damage can be re-based to
// a round offset inside a composition. The combinator owns the
// deployment (complete coverage), so a composable's round-0 damage moves
// into an event at the offset; configuration-only workloads (byzantine,
// lossy) mutate cfg and inject their holes as an event.
type Composable interface {
	Workload
	// ComposeEvents returns the workload's damage timeline shifted to
	// start at round at. It may adjust cfg exactly as Schedule would.
	ComposeEvents(cfg *TrialConfig, at int) ([]Event, error)
}

// failHolesEvent vacates a fresh batch of randomly picked cells at the
// given round — the composed form of the holes deployment (cells already
// vacant stay as they are, exactly like a churn wave).
func failHolesEvent(holes int, avoidAdjacent bool, at int) Event {
	return Event{
		Round:   at,
		Barrier: true,
		Apply: func(net *network.Network, rng *randx.Rand, _ int) error {
			cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng)
			if err != nil {
				return err
			}
			deploy.FailCells(net, cells)
			return nil
		},
	}
}

// resolvedHoles is the spec's hole count with the trial fallback.
func resolvedHoles(spec WorkloadSpec, cfg *TrialConfig) int {
	if spec.Holes != 0 {
		return spec.Holes
	}
	return cfg.Holes
}

// ComposeEvents re-bases the holes deployment as a FailCells event.
func (w holesWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	return []Event{failHolesEvent(resolvedHoles(w.spec, cfg), !cfg.AdjacentHolesOK, at)}, nil
}

// ComposeEvents jams a disc at a random center at the offset round.
func (w jamWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	radius := w.spec.Radius
	if radius == 0 {
		radius = cfg.JamRadius
	}
	return []Event{{
		Round:   at,
		Barrier: true,
		Apply: func(net *network.Network, rng *randx.Rand, _ int) error {
			r := radius
			if r == 0 {
				r = 1.5 * net.System().CellSize()
			}
			deploy.FailRegion(net, rng.InRect(net.System().Bounds()), r)
			return nil
		},
	}}, nil
}

// ComposeEvents shifts the churn waves by the offset.
func (w churnWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	holes := resolvedHoles(w.spec, cfg)
	every := w.spec.Every
	if every == 0 {
		every = DefaultChurnEvery
	}
	waves := w.spec.Waves
	if waves == 0 {
		waves = DefaultChurnWaves
	}
	events := make([]Event, 0, waves)
	for i := 0; i < waves; i++ {
		events = append(events, failHolesEvent(holes, !cfg.AdjacentHolesOK, at+i*every))
	}
	return events, nil
}

// ComposeEvents installs the energy model, injects the depletion
// scenario's holes at the offset, and starts the recurring drain check.
func (w depletionWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	if cfg.EnergyModel == (node.EnergyModel{}) {
		perMeter := w.spec.PerMeter
		if perMeter == 0 {
			perMeter = 1
		}
		cfg.EnergyModel = node.EnergyModel{PerMeter: perMeter, PerMove: w.spec.PerMove}
	}
	every := w.spec.Every
	if every == 0 {
		every = DefaultDepletionEvery
	}
	budget := w.spec.Budget
	if budget == 0 {
		budget = DefaultDepletionBudget
	}
	return []Event{
		failHolesEvent(resolvedHoles(w.spec, cfg), !cfg.AdjacentHolesOK, at),
		{
			Round: at + every,
			Every: every,
			Apply: func(net *network.Network, _ *randx.Rand, _ int) error {
				deploy.FailDepleted(net, budget)
				return nil
			},
		},
	}, nil
}

// ComposeEvents shifts the mover's strikes by the offset.
func (w moverWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	return w.strikes(cfg, at), nil
}

// ComposeEvents installs the byzantine knobs and injects the scenario's
// holes at the offset; the lying itself is configuration, not events.
func (w byzantineWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	w.install(cfg)
	return []Event{failHolesEvent(resolvedHoles(w.spec, cfg), !cfg.AdjacentHolesOK, at)}, nil
}

// ComposeEvents injects the resupply scenario's holes at the offset,
// followed by the shifted arrivals.
func (w resupplyWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	if cfg.Runner == RunAsync {
		return nil, fmt.Errorf("sim: the resupply workload requires the sync runner")
	}
	events := []Event{failHolesEvent(resolvedHoles(w.spec, cfg), !cfg.AdjacentHolesOK, at)}
	return append(events, w.arrivals(at)...), nil
}

// ComposeEvents installs the lossy radio and injects the scenario's
// holes at the offset.
func (w lossyWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	w.install(cfg)
	return []Event{failHolesEvent(resolvedHoles(w.spec, cfg), !cfg.AdjacentHolesOK, at)}, nil
}

// specDepth measures combinator nesting: atoms are 1, a combinator is
// one more than its deepest child, and random counts its (atomic)
// generated children.
func specDepth(spec WorkloadSpec) int {
	depth := 1
	if spec.Kind == WorkloadRandom {
		depth = 2
	}
	for _, c := range spec.Children {
		if d := 1 + specDepth(c); d > depth {
			depth = d
		}
	}
	return depth
}

// validateComposition checks a combinator spec's children: present,
// bounded fan-out and depth, every child buildable and composable.
func validateComposition(spec WorkloadSpec) error {
	if len(spec.Children) == 0 {
		return fmt.Errorf("sim: workload %q needs children", spec.Kind)
	}
	if len(spec.Children) > MaxChildren {
		return fmt.Errorf("sim: workload %q has %d children (max %d)",
			spec.Kind, len(spec.Children), MaxChildren)
	}
	if d := specDepth(spec); d > MaxCompositionDepth {
		return fmt.Errorf("sim: workload %q nests %d deep (max %d)",
			spec.Kind, d, MaxCompositionDepth)
	}
	for i, c := range spec.Children {
		wl, err := BuildWorkload(c)
		if err != nil {
			return fmt.Errorf("sim: workload %q child %d: %w", spec.Kind, i, err)
		}
		if _, ok := wl.(Composable); !ok {
			return fmt.Errorf("sim: workload %q child %d: kind %q cannot be composed",
				spec.Kind, i, wl.Kind())
		}
	}
	return nil
}

// composeChildren builds every child and collects its events at the
// per-child offsets.
func composeChildren(children []WorkloadSpec, cfg *TrialConfig, offset func(i int) int) ([]Event, error) {
	var events []Event
	for i, child := range children {
		wl, err := BuildWorkload(child)
		if err != nil {
			return nil, err
		}
		comp, ok := wl.(Composable)
		if !ok {
			return nil, fmt.Errorf("sim: kind %q cannot be composed", wl.Kind())
		}
		evs, err := comp.ComposeEvents(cfg, offset(i))
		if err != nil {
			return nil, err
		}
		events = append(events, evs...)
	}
	return events, nil
}

// completeDeploy is the combinator deployment: complete coverage, all
// damage delivered by events. The rng.Split(2) discipline matches the
// jam/churn deployments, so composed trials share their stream shape.
func completeDeploy(spares int) func(*network.Network, *randx.Rand) error {
	return func(net *network.Network, rng *randx.Rand) error {
		return deploy.Controlled(net, spares, nil, rng.Split(2))
	}
}

// sequenceWorkload phases its children apart in time: child i's damage
// starts at i*gap rounds.
type sequenceWorkload struct{ spec WorkloadSpec }

func buildSequenceWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"children": true, "every": true})
	if err != nil {
		return nil, err
	}
	if spec.Every < 0 {
		return nil, fmt.Errorf("sim: negative sequence gap %d", spec.Every)
	}
	if err := validateComposition(spec); err != nil {
		return nil, err
	}
	return sequenceWorkload{spec}, nil
}

func (w sequenceWorkload) Kind() string { return WorkloadSequence }

func (w sequenceWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	events, err := w.ComposeEvents(cfg, 0)
	if err != nil {
		return Schedule{}, err
	}
	return Schedule{Deploy: completeDeploy(cfg.Spares), Events: events}, nil
}

func (w sequenceWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	gap := w.spec.Every
	if gap == 0 {
		gap = DefaultPhaseGap
	}
	return composeChildren(w.spec.Children, cfg, func(i int) int { return at + i*gap })
}

// overlayWorkload stacks its children's damage simultaneously.
type overlayWorkload struct{ spec WorkloadSpec }

func buildOverlayWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"children": true})
	if err != nil {
		return nil, err
	}
	if err := validateComposition(spec); err != nil {
		return nil, err
	}
	return overlayWorkload{spec}, nil
}

func (w overlayWorkload) Kind() string { return WorkloadOverlay }

func (w overlayWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	events, err := w.ComposeEvents(cfg, 0)
	if err != nil {
		return Schedule{}, err
	}
	return Schedule{Deploy: completeDeploy(cfg.Spares), Events: events}, nil
}

func (w overlayWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	return composeChildren(w.spec.Children, cfg, func(int) int { return at })
}

// randomWorkload generates a seeded composition over the registered
// kinds: Pick seeds a private generator (independent of the trial seed,
// so every replicate of a campaign group faces the same scenario) that
// draws Count child kinds and a combinator to wrap them in.
type randomWorkload struct{ spec WorkloadSpec }

func buildRandomWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"pick": true, "count": true})
	if err != nil {
		return nil, err
	}
	if spec.Count < 0 || spec.Count > MaxChildren {
		return nil, fmt.Errorf("sim: random child count %d outside [0,%d]", spec.Count, MaxChildren)
	}
	return randomWorkload{spec}, nil
}

func (w randomWorkload) Kind() string { return WorkloadRandom }

// generate draws the composition. Byzantine and lossy children are only
// eligible when the trial can host them (SR-family scheme, sync runner).
func (w randomWorkload) generate(cfg *TrialConfig) WorkloadSpec {
	count := w.spec.Count
	if count == 0 {
		count = DefaultRandomCount
	}
	rng := randx.New(w.spec.Pick)
	pool := []string{
		WorkloadHoles, WorkloadJam, WorkloadChurn,
		WorkloadDepletion, WorkloadMover,
	}
	if cfg.Runner == RunSync {
		pool = append(pool, WorkloadResupply)
	}
	if (cfg.Scheme == SR || cfg.Scheme == SRShortcut) && cfg.Runner == RunSync {
		pool = append(pool, WorkloadByzantine, WorkloadLossy)
	}
	children := make([]WorkloadSpec, 0, count)
	for i := 0; i < count; i++ {
		children = append(children, WorkloadSpec{Kind: pool[rng.Intn(len(pool))]})
	}
	kind := WorkloadOverlay
	if rng.Bool(0.5) {
		kind = WorkloadSequence
	}
	return WorkloadSpec{Kind: kind, Children: children}
}

func (w randomWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	wl, err := BuildWorkload(w.generate(cfg))
	if err != nil {
		return Schedule{}, err
	}
	return wl.Schedule(cfg)
}

func (w randomWorkload) ComposeEvents(cfg *TrialConfig, at int) ([]Event, error) {
	wl, err := BuildWorkload(w.generate(cfg))
	if err != nil {
		return nil, err
	}
	return wl.(Composable).ComposeEvents(cfg, at)
}
