// Workload API: damage models as first-class, composable campaign
// dimensions.
//
// A Workload owns a trial's damage timeline. It is constructed from a
// JSON-named WorkloadSpec ({"kind": "churn", "holes": 3, "every": 5}),
// resolves into a Schedule — a deployment plus round-indexed damage
// events — and round-trips through CampaignSpec, so every scenario is
// data in a spec file rather than a new code path. The registry lets
// later packages add kinds without touching trial assembly.
package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"wsncover/internal/deploy"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Built-in workload kinds. The two legacy kinds re-express the former
// FailureMode enum and are differential-tested byte-identical to it.
const (
	// WorkloadHoles vacates randomly chosen cells before round 0 (the
	// paper's Section 5 configuration).
	WorkloadHoles = "holes"
	// WorkloadJam deploys complete coverage, then disables every node
	// within a jammed disc at a random center (Xu et al. [8]).
	WorkloadJam = "jam"
	// WorkloadChurn delivers waves of fresh holes while recovery runs:
	// ongoing mobility control, the paper's premise, as a measurable
	// scenario.
	WorkloadChurn = "churn"
	// WorkloadDepletion drains the movement energy model until nodes die
	// (deploy.FailDepleted), turning recovery cost into network lifetime.
	WorkloadDepletion = "depletion"
)

// Default parameters of the recurring workloads.
const (
	// DefaultChurnEvery is the round period between churn waves.
	DefaultChurnEvery = 5
	// DefaultChurnWaves is the number of churn waves (the first fires at
	// round 0).
	DefaultChurnWaves = 3
	// DefaultDepletionEvery is the round period of depletion checks.
	DefaultDepletionEvery = 2
	// DefaultDepletionBudget is the per-node movement energy budget.
	DefaultDepletionBudget = 30
)

// WorkloadSpec is the JSON-named description of a workload: Kind selects
// a registered builder, the remaining fields parameterize it and must
// stay zero when the kind does not use them (builders reject stray
// parameters, catching spec-file typos). The flat, comparable shape is
// what keeps campaign manifests mergeable and shardable: two jobs belong
// to the same curve iff their specs are equal.
type WorkloadSpec struct {
	// Kind names the registered workload ("holes", "jam", "churn",
	// "depletion", or an externally registered kind).
	Kind string `json:"kind"`
	// Holes pins the workload's hole count per injection (the initial
	// batch for holes/depletion, each wave for churn), overriding the
	// campaign's swept holes dimension.
	Holes int `json:"holes,omitempty"`
	// Every is the round period of recurring injections: churn waves,
	// depletion checks.
	Every int `json:"every,omitempty"`
	// Waves is the churn wave count; the first wave fires at round 0.
	Waves int `json:"waves,omitempty"`
	// Radius is the jam disc radius in meters (0 = the trial's JamRadius,
	// then 1.5 cell sizes).
	Radius float64 `json:"radius,omitempty"`
	// Budget is the depletion energy budget per node; a node whose
	// movement energy account exceeds it dies at the next check.
	Budget float64 `json:"budget,omitempty"`
	// PerMeter and PerMove configure the depletion energy model when the
	// trial does not set one (0 = 1 energy/meter, no per-move cost).
	PerMeter float64 `json:"per_meter,omitempty"`
	PerMove  float64 `json:"per_move,omitempty"`
}

// String renders the spec compactly: the kind plus its non-zero
// parameters. Distinct specs of one kind render distinctly, so the label
// is usable as a group-name component.
func (w WorkloadSpec) String() string {
	var b strings.Builder
	b.WriteString(w.Kind)
	if w.Holes != 0 {
		fmt.Fprintf(&b, " h=%d", w.Holes)
	}
	if w.Every != 0 {
		fmt.Fprintf(&b, " e=%d", w.Every)
	}
	if w.Waves != 0 {
		fmt.Fprintf(&b, " w=%d", w.Waves)
	}
	if w.Radius != 0 {
		fmt.Fprintf(&b, " r=%g", w.Radius)
	}
	if w.Budget != 0 {
		fmt.Fprintf(&b, " b=%g", w.Budget)
	}
	if w.PerMeter != 0 {
		fmt.Fprintf(&b, " pm=%g", w.PerMeter)
	}
	if w.PerMove != 0 {
		fmt.Fprintf(&b, " pv=%g", w.PerMove)
	}
	return b.String()
}

// groupLabel names the workload inside a job's group label; empty for
// the legacy default (random holes labeled by the holes dimension
// alone). holes is the job's resolved holes-dimension value.
func (w WorkloadSpec) groupLabel(holes int) string {
	switch w.Kind {
	case "", WorkloadHoles:
		// A pinned hole count must label the curve even though the swept
		// dimension collapsed to 1, or distinct holes workloads would
		// silently aggregate into one group.
		if w.Holes != 0 {
			return fmt.Sprintf("holes=%d", w.Holes)
		}
		if holes != 1 {
			return fmt.Sprintf("holes=%d", holes)
		}
		return ""
	default:
		s := w.String()
		if w.usesHolesDim() && holes != 1 {
			s += fmt.Sprintf(" holes=%d", holes)
		}
		return s
	}
}

// usesHolesDim reports whether the workload's damage scales with the
// campaign's swept holes dimension. Jam ignores it (the disc decides),
// and any workload that pins its own hole count opts out, so the
// campaign does not replicate identical (config, seed) jobs.
func (w WorkloadSpec) usesHolesDim() bool {
	if w.Kind == WorkloadJam {
		return false
	}
	return w.Holes == 0
}

// Workload owns deterministic damage injection over a trial's timeline:
// it resolves a concrete TrialConfig into a Schedule. Implementations
// must draw randomness only from the streams their schedule functions
// are handed, so equal (spec, seed) pairs damage the network
// identically wherever the trial runs.
type Workload interface {
	// Kind returns the registered spec name.
	Kind() string
	// Schedule resolves the workload for one trial. It may adjust cfg
	// before the network is built (e.g. depletion installs its energy
	// model) and must validate its parameters.
	Schedule(cfg *TrialConfig) (Schedule, error)
}

// Schedule is a trial's resolved damage timeline.
type Schedule struct {
	// Deploy populates the empty network and applies the round-0 damage
	// that shapes the deployment itself (holes left vacant, jammed
	// discs). It is called exactly once, before the controller exists.
	Deploy func(net *network.Network, rng *randx.Rand) error
	// Events are the mid-run damage injections, ordered by round.
	Events []Event
}

// Event is one round-indexed damage injection of a schedule.
type Event struct {
	// Round is the controller round before whose step Apply fires;
	// round 0 fires before the first step.
	Round int
	// Every > 0 makes the event recurring: it re-fires at Round+Every,
	// Round+2*Every, ... for as long as the trial runs, at O(1) schedule
	// memory (depletion checks). Recurring events cannot be barriers —
	// they never drain.
	Every int
	// Barrier prevents trial convergence before the event has fired:
	// damage that arrives regardless of scheme state (churn waves) is a
	// barrier; probes that only observe state the scheme's own activity
	// changes (depletion checks reading energy spent by movement) are
	// not — the trial instead guarantees every recurring probe one
	// firing after the scheme's last activity, after which re-firing on
	// the idle network is a no-op.
	Barrier bool
	// Apply injects the damage. rng is a per-firing derived stream;
	// round is the current trial round.
	Apply func(net *network.Network, rng *randx.Rand, round int) error
}

// WorkloadBuilder constructs a workload from its validated spec.
type WorkloadBuilder func(WorkloadSpec) (Workload, error)

var workloadRegistry = map[string]WorkloadBuilder{}

// RegisterWorkload adds a workload kind to the registry. It panics on an
// empty or duplicate kind. Registration must happen during package
// initialization; the registry is read concurrently by trial workers.
func RegisterWorkload(kind string, build WorkloadBuilder) {
	if kind == "" {
		panic("sim: RegisterWorkload with empty kind")
	}
	if _, dup := workloadRegistry[kind]; dup {
		panic(fmt.Sprintf("sim: workload kind %q registered twice", kind))
	}
	workloadRegistry[kind] = build
}

// BuildWorkload resolves a spec through the registry.
func BuildWorkload(spec WorkloadSpec) (Workload, error) {
	kind := spec.Kind
	if kind == "" {
		kind = WorkloadHoles
		spec.Kind = kind
	}
	build, ok := workloadRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("sim: unknown workload kind %q (registered: %s)",
			kind, strings.Join(WorkloadKinds(), ", "))
	}
	return build(spec)
}

// WorkloadKinds returns the registered kinds, sorted.
func WorkloadKinds() []string {
	kinds := make([]string, 0, len(workloadRegistry))
	for k := range workloadRegistry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func init() {
	RegisterWorkload(WorkloadHoles, buildHolesWorkload)
	RegisterWorkload(WorkloadJam, buildJamWorkload)
	RegisterWorkload(WorkloadChurn, buildChurnWorkload)
	RegisterWorkload(WorkloadDepletion, buildDepletionWorkload)
}

// rejectParams errors when any of the named spec fields is non-zero;
// builders use it so stray parameters fail loudly instead of being
// silently ignored.
func rejectParams(spec WorkloadSpec, fields map[string]bool) error {
	check := []struct {
		name string
		zero bool
	}{
		{"holes", spec.Holes == 0},
		{"every", spec.Every == 0},
		{"waves", spec.Waves == 0},
		{"radius", spec.Radius == 0},
		{"budget", spec.Budget == 0},
		{"per_meter", spec.PerMeter == 0},
		{"per_move", spec.PerMove == 0},
	}
	for _, c := range check {
		if !c.zero && !fields[c.name] {
			return fmt.Errorf("sim: workload %q does not take %q", spec.Kind, c.name)
		}
	}
	return nil
}

// holesWorkload is the paper's model: vacate random cells before round 0.
// Its deployment and damage are one act (the hole cells receive no nodes
// at all) and its random-stream discipline is byte-identical to the
// pre-workload FailHoles path.
type holesWorkload struct{ spec WorkloadSpec }

func buildHolesWorkload(spec WorkloadSpec) (Workload, error) {
	if err := rejectParams(spec, map[string]bool{"holes": true}); err != nil {
		return nil, err
	}
	return holesWorkload{spec}, nil
}

func (w holesWorkload) Kind() string { return WorkloadHoles }

func (w holesWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	spares, avoidAdjacent := cfg.Spares, !cfg.AdjacentHolesOK
	return Schedule{Deploy: func(net *network.Network, rng *randx.Rand) error {
		cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng.Split(1))
		if err != nil {
			return err
		}
		return deploy.Controlled(net, spares, cells, rng.Split(2))
	}}, nil
}

// jamWorkload deploys complete coverage and jams a disc at a random
// center; the hole count is emergent from the radius. Byte-identical to
// the pre-workload FailJam path.
type jamWorkload struct{ spec WorkloadSpec }

func buildJamWorkload(spec WorkloadSpec) (Workload, error) {
	if err := rejectParams(spec, map[string]bool{"radius": true}); err != nil {
		return nil, err
	}
	if spec.Radius < 0 {
		return nil, fmt.Errorf("sim: negative jam radius %g", spec.Radius)
	}
	return jamWorkload{spec}, nil
}

func (w jamWorkload) Kind() string { return WorkloadJam }

func (w jamWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	radius := w.spec.Radius
	if radius == 0 {
		radius = cfg.JamRadius
	}
	spares := cfg.Spares
	return Schedule{Deploy: func(net *network.Network, rng *randx.Rand) error {
		// The damage stream is split before the deployment stream, the
		// legacy ApplyDamage discipline the differential tests pin.
		damage := rng.Split(1)
		if err := deploy.Controlled(net, spares, nil, rng.Split(2)); err != nil {
			return err
		}
		r := radius
		if r == 0 {
			r = 1.5 * net.System().CellSize()
		}
		deploy.FailRegion(net, damage.InRect(net.System().Bounds()), r)
		return nil
	}}, nil
}

// churnWorkload deploys complete coverage and then delivers waves of
// fresh holes while recovery runs — the ongoing-mobility scenario the
// paper motivates but never evaluates. Wave i fires at round i*Every and
// vacates Holes cells (cells already vacant are left as they are).
type churnWorkload struct{ spec WorkloadSpec }

func buildChurnWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"holes": true, "every": true, "waves": true})
	if err != nil {
		return nil, err
	}
	if spec.Every < 0 || spec.Waves < 0 || spec.Holes < 0 {
		return nil, fmt.Errorf("sim: negative churn parameter in %+v", spec)
	}
	return churnWorkload{spec}, nil
}

func (w churnWorkload) Kind() string { return WorkloadChurn }

func (w churnWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	every := w.spec.Every
	if every == 0 {
		every = DefaultChurnEvery
	}
	waves := w.spec.Waves
	if waves == 0 {
		waves = DefaultChurnWaves
	}
	spares, avoidAdjacent := cfg.Spares, !cfg.AdjacentHolesOK
	sched := Schedule{Deploy: func(net *network.Network, rng *randx.Rand) error {
		return deploy.Controlled(net, spares, nil, rng.Split(2))
	}}
	for i := 0; i < waves; i++ {
		sched.Events = append(sched.Events, Event{
			Round:   i * every,
			Barrier: true,
			Apply: func(net *network.Network, rng *randx.Rand, round int) error {
				cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng)
				if err != nil {
					return err
				}
				deploy.FailCells(net, cells)
				return nil
			},
		})
	}
	return sched, nil
}

// depletionWorkload starts from the paper's hole configuration and
// periodically kills every node whose movement energy account exceeds
// the budget: recovery movement itself erodes the network, so the trial
// measures lifetime under repair, not just repair cost. The checks only
// observe energy spent by movement, so they are not convergence
// barriers; the trial's quiescence rule still guarantees one check
// after the last movement, so a node pushed over budget by its final
// move cannot escape.
type depletionWorkload struct{ spec WorkloadSpec }

func buildDepletionWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{
		"holes": true, "every": true, "budget": true, "per_meter": true, "per_move": true,
	})
	if err != nil {
		return nil, err
	}
	if spec.Every < 0 || spec.Budget < 0 || spec.PerMeter < 0 || spec.PerMove < 0 {
		return nil, fmt.Errorf("sim: negative depletion parameter in %+v", spec)
	}
	return depletionWorkload{spec}, nil
}

func (w depletionWorkload) Kind() string { return WorkloadDepletion }

func (w depletionWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	every := w.spec.Every
	if every == 0 {
		every = DefaultDepletionEvery
	}
	budget := w.spec.Budget
	if budget == 0 {
		budget = DefaultDepletionBudget
	}
	// Depletion needs an energy model to have anything to drain; install
	// the default linear one unless the trial configured its own.
	if cfg.EnergyModel == (node.EnergyModel{}) {
		perMeter := w.spec.PerMeter
		if perMeter == 0 {
			perMeter = 1
		}
		cfg.EnergyModel = node.EnergyModel{PerMeter: perMeter, PerMove: w.spec.PerMove}
	}
	spares, avoidAdjacent := cfg.Spares, !cfg.AdjacentHolesOK
	return Schedule{
		Deploy: func(net *network.Network, rng *randx.Rand) error {
			cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng.Split(1))
			if err != nil {
				return err
			}
			return deploy.Controlled(net, spares, cells, rng.Split(2))
		},
		Events: []Event{{
			Round: every,
			Every: every,
			Apply: func(net *network.Network, _ *randx.Rand, _ int) error {
				deploy.FailDepleted(net, budget)
				return nil
			},
		}},
	}, nil
}

// RunnerKind selects how a trial's controller is stepped: synchronous
// global rounds (the paper's system model) or the event-driven
// internal/async realization. The zero value is the synchronous runner,
// so legacy configurations are unchanged.
type RunnerKind int

const (
	// RunSync steps the scheme in global synchronous rounds.
	RunSync RunnerKind = iota
	// RunAsync drives the SR scheme with internal/async's timestamped
	// event queue (polls with jitter, message delays, travel times).
	// Schedule rounds map to nominal poll periods. SR only.
	RunAsync
)

// String implements fmt.Stringer.
func (k RunnerKind) String() string {
	switch k {
	case RunSync:
		return "sync"
	case RunAsync:
		return "async"
	default:
		return fmt.Sprintf("RunnerKind(%d)", int(k))
	}
}

// ParseRunnerKind inverts String ("" means sync).
func ParseRunnerKind(s string) (RunnerKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sync", "":
		return RunSync, nil
	case "async":
		return RunAsync, nil
	default:
		return 0, fmt.Errorf("sim: unknown runner %q (want sync or async)", s)
	}
}

// MarshalJSON renders the runner by name so spec files stay readable.
func (k RunnerKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a runner name.
func (k *RunnerKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseRunnerKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}
