// Workload API: damage models as first-class, composable campaign
// dimensions.
//
// A Workload owns a trial's damage timeline. It is constructed from a
// JSON-named WorkloadSpec ({"kind": "churn", "holes": 3, "every": 5}),
// resolves into a Schedule — a deployment plus round-indexed damage
// events — and round-trips through CampaignSpec, so every scenario is
// data in a spec file rather than a new code path. The registry lets
// later packages add kinds without touching trial assembly.
package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"wsncover/internal/deploy"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Built-in workload kinds. The two legacy kinds re-express the former
// FailureMode enum and are differential-tested byte-identical to it.
const (
	// WorkloadHoles vacates randomly chosen cells before round 0 (the
	// paper's Section 5 configuration).
	WorkloadHoles = "holes"
	// WorkloadJam deploys complete coverage, then disables every node
	// within a jammed disc at a random center (Xu et al. [8]).
	WorkloadJam = "jam"
	// WorkloadChurn delivers waves of fresh holes while recovery runs:
	// ongoing mobility control, the paper's premise, as a measurable
	// scenario.
	WorkloadChurn = "churn"
	// WorkloadDepletion drains the movement energy model until nodes die
	// (deploy.FailDepleted), turning recovery cost into network lifetime.
	WorkloadDepletion = "depletion"
	// WorkloadMover is an adaptive jammer: a regional jam that relocates
	// toward recently repaired cells each epoch, chasing the scheme's own
	// recovery work.
	WorkloadMover = "mover"
	// WorkloadByzantine corrupts a fraction of monitor heads: liars report
	// false vacancies, spawning phantom replacement processes whose stale
	// claims only the ClaimTTL expiry path can clear.
	WorkloadByzantine = "byzantine"
	// WorkloadResupply delivers batches of fresh spare nodes mid-run and
	// rallies the scheme to retry holes it had given up on.
	WorkloadResupply = "resupply"
	// WorkloadLossy runs the paper's hole scenario over a lossy radio,
	// sweeping the ClaimTTL recovery knob against the message-drop rate.
	WorkloadLossy = "lossy"
	// WorkloadSequence composes child workloads as phases: child i's
	// damage is shifted by i gap rounds.
	WorkloadSequence = "sequence"
	// WorkloadOverlay composes child workloads simultaneously: all damage
	// timelines overlap from round 0.
	WorkloadOverlay = "overlay"
	// WorkloadRandom generates a seeded random composition over the
	// registered kinds — the scenario-generator closure of the grammar.
	WorkloadRandom = "random"
)

// Default parameters of the recurring workloads.
const (
	// DefaultChurnEvery is the round period between churn waves.
	DefaultChurnEvery = 5
	// DefaultChurnWaves is the number of churn waves (the first fires at
	// round 0).
	DefaultChurnWaves = 3
	// DefaultDepletionEvery is the round period of depletion checks.
	DefaultDepletionEvery = 2
	// DefaultDepletionBudget is the per-node movement energy budget.
	DefaultDepletionBudget = 30
	// DefaultMoverEvery is the round period between mover strikes.
	DefaultMoverEvery = 6
	// DefaultMoverStrikes is the number of mover strikes (the first fires
	// at round 0).
	DefaultMoverStrikes = 3
	// DefaultByzantineFrac is the fraction of monitor cells corrupted by
	// the byzantine workload.
	DefaultByzantineFrac = 0.05
	// DefaultByzantineProb is the per-round probability a corrupted
	// monitor tells a lie.
	DefaultByzantineProb = 0.25
	// DefaultByzantineLies bounds the lies each corrupted monitor tells,
	// so byzantine trials still converge once the liars run dry.
	DefaultByzantineLies = 2
	// DefaultByzantineTTL is the claim expiry the byzantine workload
	// installs when neither the spec nor the campaign sets one: phantom
	// claims must be able to expire or the trial can only hit its round
	// budget.
	DefaultByzantineTTL = 8
	// DefaultLossyLoss is the message-drop probability of the lossy radio.
	DefaultLossyLoss = 0.15
	// DefaultLossyTTL is the claim expiry the lossy workload installs when
	// neither the spec nor the campaign sets one.
	DefaultLossyTTL = 8
	// DefaultResupplyAt is the round the first resupply batch arrives.
	DefaultResupplyAt = 8
	// DefaultResupplyBatch is the spare-node count per resupply arrival.
	DefaultResupplyBatch = 4
	// DefaultPhaseGap is the round offset between sequence phases.
	DefaultPhaseGap = 10
	// DefaultRandomCount is the child count of a random composition.
	DefaultRandomCount = 2
	// MaxCompositionDepth bounds combinator nesting so a recursive spec
	// (or a fuzzer) cannot build unbounded schedules.
	MaxCompositionDepth = 4
	// MaxChildren bounds the fan-out of one combinator node.
	MaxChildren = 6
)

// WorkloadSpec is the JSON-named description of a workload: Kind selects
// a registered builder, the remaining fields parameterize it and must
// stay zero when the kind does not use them (builders reject stray
// parameters, catching spec-file typos). The flat, value-semantics shape
// is what keeps campaign manifests mergeable and shardable: two jobs
// belong to the same curve iff their specs are (deeply) equal. Children
// makes the shape recursive: combinator kinds (sequence, overlay)
// compose the registered kinds into scenarios.
type WorkloadSpec struct {
	// Kind names the registered workload ("holes", "jam", "churn",
	// "depletion", ..., or an externally registered kind).
	Kind string `json:"kind"`
	// Holes pins the workload's hole count per injection (the initial
	// batch for holes/depletion, each wave for churn), overriding the
	// campaign's swept holes dimension.
	Holes int `json:"holes,omitempty"`
	// Every is the round period of recurring injections: churn waves,
	// depletion checks, mover strikes, resupply arrivals, and the phase
	// gap of a sequence composition.
	Every int `json:"every,omitempty"`
	// Waves is the churn wave count or the mover strike count; the first
	// wave fires at round 0.
	Waves int `json:"waves,omitempty"`
	// Radius is the jam or mover disc radius in meters (0 = the trial's
	// JamRadius, then 1.5 cell sizes).
	Radius float64 `json:"radius,omitempty"`
	// Budget is the depletion energy budget per node; a node whose
	// movement energy account exceeds it dies at the next check.
	Budget float64 `json:"budget,omitempty"`
	// PerMeter and PerMove configure the depletion energy model when the
	// trial does not set one (0 = 1 energy/meter, no per-move cost).
	PerMeter float64 `json:"per_meter,omitempty"`
	PerMove  float64 `json:"per_move,omitempty"`
	// TTL overrides the trial's ClaimTTL for the lossy and byzantine
	// workloads (0 = the campaign's claim_ttls value, then the kind's
	// default).
	TTL int `json:"ttl,omitempty"`
	// Loss is the lossy radio's message-drop probability.
	Loss float64 `json:"loss,omitempty"`
	// Frac is the byzantine workload's corrupted-monitor fraction.
	Frac float64 `json:"frac,omitempty"`
	// Prob is the per-round lie probability of a corrupted monitor.
	Prob float64 `json:"prob,omitempty"`
	// Batch is the spare-node count per resupply arrival.
	Batch int `json:"batch,omitempty"`
	// At is the round of the first resupply arrival.
	At int `json:"at,omitempty"`
	// Count is the resupply arrival count, the per-liar lie budget of the
	// byzantine workload, or the child count of a random composition.
	Count int `json:"count,omitempty"`
	// Pick seeds the random composition generator. It is a spec field,
	// not the trial seed, so every replicate of a campaign group runs the
	// same composition.
	Pick int64 `json:"pick,omitempty"`
	// Children are the sub-workloads of a combinator kind (sequence,
	// overlay), composed recursively.
	Children []WorkloadSpec `json:"children,omitempty"`
}

// IsZero reports whether the spec is entirely unset — the condition under
// which a trial falls back to the legacy Failure enum. (The struct is not
// comparable once Children exists, so this replaces == WorkloadSpec{}.)
func (w WorkloadSpec) IsZero() bool {
	return w.Kind == "" && w.Holes == 0 && w.Every == 0 && w.Waves == 0 &&
		w.Radius == 0 && w.Budget == 0 && w.PerMeter == 0 && w.PerMove == 0 &&
		w.TTL == 0 && w.Loss == 0 && w.Frac == 0 && w.Prob == 0 &&
		w.Batch == 0 && w.At == 0 && w.Count == 0 && w.Pick == 0 &&
		len(w.Children) == 0
}

// String renders the spec compactly: the kind plus its non-zero
// parameters. Distinct specs of one kind render distinctly, so the label
// is usable as a group-name component.
func (w WorkloadSpec) String() string {
	var b strings.Builder
	b.WriteString(w.Kind)
	if w.Holes != 0 {
		fmt.Fprintf(&b, " h=%d", w.Holes)
	}
	if w.Every != 0 {
		fmt.Fprintf(&b, " e=%d", w.Every)
	}
	if w.Waves != 0 {
		fmt.Fprintf(&b, " w=%d", w.Waves)
	}
	if w.Radius != 0 {
		fmt.Fprintf(&b, " r=%g", w.Radius)
	}
	if w.Budget != 0 {
		fmt.Fprintf(&b, " b=%g", w.Budget)
	}
	if w.PerMeter != 0 {
		fmt.Fprintf(&b, " pm=%g", w.PerMeter)
	}
	if w.PerMove != 0 {
		fmt.Fprintf(&b, " pv=%g", w.PerMove)
	}
	if w.TTL != 0 {
		fmt.Fprintf(&b, " t=%d", w.TTL)
	}
	if w.Loss != 0 {
		fmt.Fprintf(&b, " l=%g", w.Loss)
	}
	if w.Frac != 0 {
		fmt.Fprintf(&b, " f=%g", w.Frac)
	}
	if w.Prob != 0 {
		fmt.Fprintf(&b, " p=%g", w.Prob)
	}
	if w.Batch != 0 {
		fmt.Fprintf(&b, " n=%d", w.Batch)
	}
	if w.At != 0 {
		fmt.Fprintf(&b, " a=%d", w.At)
	}
	if w.Count != 0 {
		fmt.Fprintf(&b, " c=%d", w.Count)
	}
	if w.Pick != 0 {
		fmt.Fprintf(&b, " s=%d", w.Pick)
	}
	if len(w.Children) > 0 {
		b.WriteString(" [")
		for i, c := range w.Children {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(c.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

// groupLabel names the workload inside a job's group label; empty for
// the legacy default (random holes labeled by the holes dimension
// alone). holes is the job's resolved holes-dimension value.
func (w WorkloadSpec) groupLabel(holes int) string {
	switch w.Kind {
	case "", WorkloadHoles:
		// A pinned hole count must label the curve even though the swept
		// dimension collapsed to 1, or distinct holes workloads would
		// silently aggregate into one group.
		if w.Holes != 0 {
			return fmt.Sprintf("holes=%d", w.Holes)
		}
		if holes != 1 {
			return fmt.Sprintf("holes=%d", holes)
		}
		return ""
	default:
		s := w.String()
		if w.usesHolesDim() && holes != 1 {
			s += fmt.Sprintf(" holes=%d", holes)
		}
		return s
	}
}

// usesHolesDim reports whether the workload's damage scales with the
// campaign's swept holes dimension. Jam ignores it (the disc decides),
// and any workload that pins its own hole count opts out, so the
// campaign does not replicate identical (config, seed) jobs.
func (w WorkloadSpec) usesHolesDim() bool {
	switch w.Kind {
	case WorkloadJam, WorkloadMover, WorkloadSequence, WorkloadOverlay, WorkloadRandom:
		// Jam and mover damage is decided by the disc; compositions carry
		// their own hole counts in their children.
		return false
	}
	return w.Holes == 0
}

// Workload owns deterministic damage injection over a trial's timeline:
// it resolves a concrete TrialConfig into a Schedule. Implementations
// must draw randomness only from the streams their schedule functions
// are handed, so equal (spec, seed) pairs damage the network
// identically wherever the trial runs.
type Workload interface {
	// Kind returns the registered spec name.
	Kind() string
	// Schedule resolves the workload for one trial. It may adjust cfg
	// before the network is built (e.g. depletion installs its energy
	// model) and must validate its parameters.
	Schedule(cfg *TrialConfig) (Schedule, error)
}

// Schedule is a trial's resolved damage timeline.
type Schedule struct {
	// Deploy populates the empty network and applies the round-0 damage
	// that shapes the deployment itself (holes left vacant, jammed
	// discs). It is called exactly once, before the controller exists.
	Deploy func(net *network.Network, rng *randx.Rand) error
	// Events are the mid-run damage injections, ordered by round.
	Events []Event
}

// Event is one round-indexed damage injection of a schedule.
type Event struct {
	// Round is the controller round before whose step Apply fires;
	// round 0 fires before the first step.
	Round int
	// Every > 0 makes the event recurring: it re-fires at Round+Every,
	// Round+2*Every, ... for as long as the trial runs, at O(1) schedule
	// memory (depletion checks). Recurring events cannot be barriers —
	// they never drain.
	Every int
	// Barrier prevents trial convergence before the event has fired:
	// damage that arrives regardless of scheme state (churn waves) is a
	// barrier; probes that only observe state the scheme's own activity
	// changes (depletion checks reading energy spent by movement) are
	// not — the trial instead guarantees every recurring probe one
	// firing after the scheme's last activity, after which re-firing on
	// the idle network is a no-op.
	Barrier bool
	// Rally asks the trial to clear the scheme's given-up state after a
	// successful Apply (schemes exposing ResetFailed): damage that
	// restores resources (resupply) makes abandoned holes eligible for
	// repair again.
	Rally bool
	// Apply injects the damage. rng is a per-firing derived stream;
	// round is the current trial round.
	Apply func(net *network.Network, rng *randx.Rand, round int) error
}

// WorkloadBuilder constructs a workload from its validated spec.
type WorkloadBuilder func(WorkloadSpec) (Workload, error)

var workloadRegistry = map[string]WorkloadBuilder{}

// RegisterWorkload adds a workload kind to the registry. It panics on an
// empty or duplicate kind. Registration must happen during package
// initialization; the registry is read concurrently by trial workers.
func RegisterWorkload(kind string, build WorkloadBuilder) {
	if kind == "" {
		panic("sim: RegisterWorkload with empty kind")
	}
	if _, dup := workloadRegistry[kind]; dup {
		panic(fmt.Sprintf("sim: workload kind %q registered twice", kind))
	}
	workloadRegistry[kind] = build
}

// BuildWorkload resolves a spec through the registry.
func BuildWorkload(spec WorkloadSpec) (Workload, error) {
	kind := spec.Kind
	if kind == "" {
		kind = WorkloadHoles
		spec.Kind = kind
	}
	build, ok := workloadRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("sim: unknown workload kind %q (registered: %s)",
			kind, strings.Join(WorkloadKinds(), ", "))
	}
	return build(spec)
}

// WorkloadKinds returns the registered kinds, sorted.
func WorkloadKinds() []string {
	kinds := make([]string, 0, len(workloadRegistry))
	for k := range workloadRegistry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// WorkloadInfo documents one registered kind for discovery surfaces
// (cmd/sweep -list-workloads).
type WorkloadInfo struct {
	// Kind is the registered spec name.
	Kind string
	// Params are the spec fields the kind accepts, by JSON name.
	Params []string
	// Help is a one-line description.
	Help string
}

var workloadDocs = map[string]WorkloadInfo{}

// DescribeWorkload records the parameter list and help line of a
// registered kind; discovery surfaces render it verbatim. Kinds without a
// description still list, with empty params.
func DescribeWorkload(info WorkloadInfo) {
	workloadDocs[info.Kind] = info
}

// WorkloadInfos returns the registered kinds with their documentation,
// sorted by kind.
func WorkloadInfos() []WorkloadInfo {
	infos := make([]WorkloadInfo, 0, len(workloadRegistry))
	for _, k := range WorkloadKinds() {
		if info, ok := workloadDocs[k]; ok {
			infos = append(infos, info)
		} else {
			infos = append(infos, WorkloadInfo{Kind: k})
		}
	}
	return infos
}

func init() {
	RegisterWorkload(WorkloadHoles, buildHolesWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadHoles,
		Params: []string{"holes"},
		Help:   "vacate random cells before round 0 (the paper's Section 5 model)",
	})
	RegisterWorkload(WorkloadJam, buildJamWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadJam,
		Params: []string{"radius"},
		Help:   "deploy complete coverage, then disable every node in a jammed disc",
	})
	RegisterWorkload(WorkloadChurn, buildChurnWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadChurn,
		Params: []string{"holes", "every", "waves"},
		Help:   "waves of fresh holes while recovery runs",
	})
	RegisterWorkload(WorkloadDepletion, buildDepletionWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadDepletion,
		Params: []string{"holes", "every", "budget", "per_meter", "per_move"},
		Help:   "movement energy drains nodes until they die mid-run",
	})
	RegisterWorkload(WorkloadMover, buildMoverWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadMover,
		Params: []string{"every", "waves", "radius"},
		Help:   "adaptive jammer: each strike relocates toward recently repaired cells",
	})
	RegisterWorkload(WorkloadByzantine, buildByzantineWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadByzantine,
		Params: []string{"holes", "frac", "prob", "count", "ttl"},
		Help:   "lying monitors spawn phantom repairs; ClaimTTL expiry must clean up (SR, sync)",
	})
	RegisterWorkload(WorkloadResupply, buildResupplyWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadResupply,
		Params: []string{"holes", "at", "every", "batch", "count"},
		Help:   "spare nodes arrive mid-run; the scheme retries abandoned holes (sync)",
	})
	RegisterWorkload(WorkloadLossy, buildLossyWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadLossy,
		Params: []string{"holes", "loss", "ttl"},
		Help:   "holes scenario over a lossy radio; ClaimTTL recovers dropped messages (SR, sync)",
	})
	RegisterWorkload(WorkloadSequence, buildSequenceWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadSequence,
		Params: []string{"children", "every"},
		Help:   "compose children as phases, each shifted by the gap (every)",
	})
	RegisterWorkload(WorkloadOverlay, buildOverlayWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadOverlay,
		Params: []string{"children"},
		Help:   "compose children simultaneously from round 0",
	})
	RegisterWorkload(WorkloadRandom, buildRandomWorkload)
	DescribeWorkload(WorkloadInfo{
		Kind:   WorkloadRandom,
		Params: []string{"pick", "count"},
		Help:   "seeded random composition over the registered kinds",
	})
}

// rejectParams errors when any of the named spec fields is non-zero;
// builders use it so stray parameters fail loudly instead of being
// silently ignored.
func rejectParams(spec WorkloadSpec, fields map[string]bool) error {
	check := []struct {
		name string
		zero bool
	}{
		{"holes", spec.Holes == 0},
		{"every", spec.Every == 0},
		{"waves", spec.Waves == 0},
		{"radius", spec.Radius == 0},
		{"budget", spec.Budget == 0},
		{"per_meter", spec.PerMeter == 0},
		{"per_move", spec.PerMove == 0},
		{"ttl", spec.TTL == 0},
		{"loss", spec.Loss == 0},
		{"frac", spec.Frac == 0},
		{"prob", spec.Prob == 0},
		{"batch", spec.Batch == 0},
		{"at", spec.At == 0},
		{"count", spec.Count == 0},
		{"pick", spec.Pick == 0},
		{"children", len(spec.Children) == 0},
	}
	for _, c := range check {
		if !c.zero && !fields[c.name] {
			return fmt.Errorf("sim: workload %q does not take %q", spec.Kind, c.name)
		}
	}
	return nil
}

// holesWorkload is the paper's model: vacate random cells before round 0.
// Its deployment and damage are one act (the hole cells receive no nodes
// at all) and its random-stream discipline is byte-identical to the
// pre-workload FailHoles path.
type holesWorkload struct{ spec WorkloadSpec }

func buildHolesWorkload(spec WorkloadSpec) (Workload, error) {
	if err := rejectParams(spec, map[string]bool{"holes": true}); err != nil {
		return nil, err
	}
	return holesWorkload{spec}, nil
}

func (w holesWorkload) Kind() string { return WorkloadHoles }

func (w holesWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	spares, avoidAdjacent := cfg.Spares, !cfg.AdjacentHolesOK
	return Schedule{Deploy: func(net *network.Network, rng *randx.Rand) error {
		cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng.Split(1))
		if err != nil {
			return err
		}
		return deploy.Controlled(net, spares, cells, rng.Split(2))
	}}, nil
}

// jamWorkload deploys complete coverage and jams a disc at a random
// center; the hole count is emergent from the radius. Byte-identical to
// the pre-workload FailJam path.
type jamWorkload struct{ spec WorkloadSpec }

func buildJamWorkload(spec WorkloadSpec) (Workload, error) {
	if err := rejectParams(spec, map[string]bool{"radius": true}); err != nil {
		return nil, err
	}
	if spec.Radius < 0 {
		return nil, fmt.Errorf("sim: negative jam radius %g", spec.Radius)
	}
	return jamWorkload{spec}, nil
}

func (w jamWorkload) Kind() string { return WorkloadJam }

func (w jamWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	radius := w.spec.Radius
	if radius == 0 {
		radius = cfg.JamRadius
	}
	spares := cfg.Spares
	return Schedule{Deploy: func(net *network.Network, rng *randx.Rand) error {
		// The damage stream is split before the deployment stream, the
		// legacy ApplyDamage discipline the differential tests pin.
		damage := rng.Split(1)
		if err := deploy.Controlled(net, spares, nil, rng.Split(2)); err != nil {
			return err
		}
		r := radius
		if r == 0 {
			r = 1.5 * net.System().CellSize()
		}
		deploy.FailRegion(net, damage.InRect(net.System().Bounds()), r)
		return nil
	}}, nil
}

// churnWorkload deploys complete coverage and then delivers waves of
// fresh holes while recovery runs — the ongoing-mobility scenario the
// paper motivates but never evaluates. Wave i fires at round i*Every and
// vacates Holes cells (cells already vacant are left as they are).
type churnWorkload struct{ spec WorkloadSpec }

func buildChurnWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"holes": true, "every": true, "waves": true})
	if err != nil {
		return nil, err
	}
	if spec.Every < 0 || spec.Waves < 0 || spec.Holes < 0 {
		return nil, fmt.Errorf("sim: negative churn parameter in %+v", spec)
	}
	return churnWorkload{spec}, nil
}

func (w churnWorkload) Kind() string { return WorkloadChurn }

func (w churnWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	every := w.spec.Every
	if every == 0 {
		every = DefaultChurnEvery
	}
	waves := w.spec.Waves
	if waves == 0 {
		waves = DefaultChurnWaves
	}
	spares, avoidAdjacent := cfg.Spares, !cfg.AdjacentHolesOK
	sched := Schedule{Deploy: func(net *network.Network, rng *randx.Rand) error {
		return deploy.Controlled(net, spares, nil, rng.Split(2))
	}}
	for i := 0; i < waves; i++ {
		sched.Events = append(sched.Events, Event{
			Round:   i * every,
			Barrier: true,
			Apply: func(net *network.Network, rng *randx.Rand, round int) error {
				cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng)
				if err != nil {
					return err
				}
				deploy.FailCells(net, cells)
				return nil
			},
		})
	}
	return sched, nil
}

// depletionWorkload starts from the paper's hole configuration and
// periodically kills every node whose movement energy account exceeds
// the budget: recovery movement itself erodes the network, so the trial
// measures lifetime under repair, not just repair cost. The checks only
// observe energy spent by movement, so they are not convergence
// barriers; the trial's quiescence rule still guarantees one check
// after the last movement, so a node pushed over budget by its final
// move cannot escape.
type depletionWorkload struct{ spec WorkloadSpec }

func buildDepletionWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{
		"holes": true, "every": true, "budget": true, "per_meter": true, "per_move": true,
	})
	if err != nil {
		return nil, err
	}
	if spec.Every < 0 || spec.Budget < 0 || spec.PerMeter < 0 || spec.PerMove < 0 {
		return nil, fmt.Errorf("sim: negative depletion parameter in %+v", spec)
	}
	return depletionWorkload{spec}, nil
}

func (w depletionWorkload) Kind() string { return WorkloadDepletion }

func (w depletionWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	every := w.spec.Every
	if every == 0 {
		every = DefaultDepletionEvery
	}
	budget := w.spec.Budget
	if budget == 0 {
		budget = DefaultDepletionBudget
	}
	// Depletion needs an energy model to have anything to drain; install
	// the default linear one unless the trial configured its own.
	if cfg.EnergyModel == (node.EnergyModel{}) {
		perMeter := w.spec.PerMeter
		if perMeter == 0 {
			perMeter = 1
		}
		cfg.EnergyModel = node.EnergyModel{PerMeter: perMeter, PerMove: w.spec.PerMove}
	}
	spares, avoidAdjacent := cfg.Spares, !cfg.AdjacentHolesOK
	return Schedule{
		Deploy: func(net *network.Network, rng *randx.Rand) error {
			cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng.Split(1))
			if err != nil {
				return err
			}
			return deploy.Controlled(net, spares, cells, rng.Split(2))
		},
		Events: []Event{{
			Round: every,
			Every: every,
			Apply: func(net *network.Network, _ *randx.Rand, _ int) error {
				deploy.FailDepleted(net, budget)
				return nil
			},
		}},
	}, nil
}

// RunnerKind selects how a trial's controller is stepped: synchronous
// global rounds (the paper's system model) or the event-driven
// internal/async realization. The zero value is the synchronous runner,
// so legacy configurations are unchanged.
type RunnerKind int

const (
	// RunSync steps the scheme in global synchronous rounds.
	RunSync RunnerKind = iota
	// RunAsync drives the SR scheme with internal/async's timestamped
	// event queue (polls with jitter, message delays, travel times).
	// Schedule rounds map to nominal poll periods. SR only.
	RunAsync
)

// String implements fmt.Stringer.
func (k RunnerKind) String() string {
	switch k {
	case RunSync:
		return "sync"
	case RunAsync:
		return "async"
	default:
		return fmt.Sprintf("RunnerKind(%d)", int(k))
	}
}

// ParseRunnerKind inverts String ("" means sync).
func ParseRunnerKind(s string) (RunnerKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sync", "":
		return RunSync, nil
	case "async":
		return RunAsync, nil
	default:
		return 0, fmt.Errorf("sim: unknown runner %q (want sync or async)", s)
	}
}

// MarshalJSON renders the runner by name so spec files stay readable.
func (k RunnerKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a runner name.
func (k *RunnerKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseRunnerKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}
