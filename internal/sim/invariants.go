package sim

import (
	"fmt"
	"sort"
)

// claimAuditor is implemented by controllers that can audit their claim
// bookkeeping (core.Controller, ar.Controller). The async controller has
// no claims registry and is skipped.
type claimAuditor interface {
	AuditClaims() []string
}

// CheckInvariants audits a finished trial against the structural
// invariants every workload — built-in or composed — must preserve, and
// returns human-readable violations, sorted (empty = clean):
//
//   - the network's own audit is clean (registration, head uniqueness,
//     occupancy/vacancy counters, journal dirty bits);
//   - spare conservation: enabled nodes minus occupied cells equals the
//     network's spare count — damage and resupply change both sides
//     together, so a drifting difference means nodes leaked;
//   - move accounting: the metrics collector charged exactly one move
//     per network relocation, on either runner;
//   - the controller's claims registry leaks nothing and (event-driven
//     detection) its standing hole set agrees with a full vacancy scan —
//     the same oracle the differential tests trust.
//
// Call it after Run: mid-run the network is legitimately in flux (heads
// mid-departure, journal undrained) and several checks would misfire.
func CheckInvariants(t *Trial) []string {
	var bad []string
	bad = append(bad, t.net.Audit()...)
	occupied := t.net.System().NumCells() - t.net.VacantCount()
	if spares := t.net.EnabledCount() - occupied; spares != t.net.TotalSpares() {
		bad = append(bad, fmt.Sprintf(
			"sim: spare conservation: %d enabled - %d occupied = %d, but network counts %d spares",
			t.net.EnabledCount(), occupied, spares, t.net.TotalSpares()))
	}
	if moves := t.collector().Summarize().Moves; moves != t.net.TotalMoves() {
		bad = append(bad, fmt.Sprintf(
			"sim: move accounting: collector charged %d moves, network executed %d",
			moves, t.net.TotalMoves()))
	}
	if a, ok := t.scheme.(claimAuditor); ok {
		bad = append(bad, a.AuditClaims()...)
	}
	sort.Strings(bad)
	return bad
}
