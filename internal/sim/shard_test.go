package sim

import (
	"fmt"
	"testing"
)

func TestShardRange(t *testing.T) {
	// 10 replicates over 3 shards: blocks of 4, 3, 3.
	cases := []struct {
		i, n, reps   int
		first, count int
	}{
		{1, 3, 10, 0, 4},
		{2, 3, 10, 4, 3},
		{3, 3, 10, 7, 3},
		{1, 1, 10, 0, 10},
		{2, 5, 5, 1, 1},
	}
	for _, c := range cases {
		first, count, err := ShardRange(c.i, c.n, c.reps)
		if err != nil || first != c.first || count != c.count {
			t.Errorf("ShardRange(%d, %d, %d) = (%d, %d, %v), want (%d, %d)",
				c.i, c.n, c.reps, first, count, err, c.first, c.count)
		}
	}
	for _, bad := range [][3]int{{0, 3, 10}, {4, 3, 10}, {1, 0, 10}, {1, 20, 10}} {
		if _, _, err := ShardRange(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("ShardRange(%v) should fail", bad)
		}
	}
}

// TestSplitShardsTilesReplicates: the shard specs partition the full
// replicate range exactly and differ from the parent only in the range.
func TestSplitShardsTilesReplicates(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{8, 24},
		Replicates: 10,
		BaseSeed:   7,
	}
	shards, err := spec.SplitShards(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("got %d shards", len(shards))
	}
	next := 0
	for i, sh := range shards {
		if sh.ShardFirst != next {
			t.Errorf("shard %d starts at %d, want %d", i+1, sh.ShardFirst, next)
		}
		next = sh.ShardFirst + sh.ShardCount
		// Everything but the range matches the normalized parent.
		plain := sh
		plain.ShardFirst, plain.ShardCount = 0, 0
		if err := plain.Validate(); err != nil {
			t.Errorf("shard %d: %v", i+1, err)
		}
		if plain.Replicates != 10 || plain.BaseSeed != 7 || len(plain.Spares) != 2 {
			t.Errorf("shard %d drifted from parent: %+v", i+1, plain)
		}
	}
	if next != spec.Replicates {
		t.Errorf("shards cover [0, %d), want [0, %d)", next, spec.Replicates)
	}
}

// TestSplitShardsJobsEqualUnshardedJobs: the union of the shards'
// executed jobs is exactly the unsharded job list, seeds included — the
// property that makes dispatched shard manifests byte-identical slices.
func TestSplitShardsJobsEqualUnshardedJobs(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR, AR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{8},
		Replicates: 5,
		BaseSeed:   3,
	}
	shards, err := spec.SplitShards(2)
	if err != nil {
		t.Fatal(err)
	}
	// TrialJob is no longer comparable (its workload spec holds child
	// slices), so key the coverage count by its printed form.
	sharded := make(map[string]int)
	for _, sh := range shards {
		sh.ExecutedJobs(nil, func(j TrialJob) { sharded[fmt.Sprintf("%+v", j)]++ })
	}
	full := 0
	spec.Normalized().ExecutedJobs(nil, func(j TrialJob) {
		full++
		if sharded[fmt.Sprintf("%+v", j)] != 1 {
			t.Errorf("job %+v covered %d times, want exactly once", j, sharded[fmt.Sprintf("%+v", j)])
		}
	})
	if full != len(sharded) {
		t.Errorf("shards executed %d distinct jobs, unsharded campaign has %d", len(sharded), full)
	}
}

func TestSplitShardsErrors(t *testing.T) {
	spec := CampaignSpec{Replicates: 4}
	if _, err := spec.SplitShards(5); err == nil {
		t.Error("splitting 4 replicates into 5 shards should fail")
	}
	pinned := CampaignSpec{Replicates: 4, ShardFirst: 0, ShardCount: 2}
	if _, err := pinned.SplitShards(2); err == nil {
		t.Error("re-splitting a shard spec should fail")
	}
}
