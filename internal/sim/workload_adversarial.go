// Adversarial workloads: correlated, adaptive damage models that attack
// the scheme's recovery machinery rather than the deployment.
//
// The four kinds here each target one protocol mechanism: mover chases
// the scheme's own repairs, byzantine corrupts the monitors the detector
// trusts, resupply restores the spare pool mid-run (and rallies the
// scheme to retry holes it abandoned), and lossy drops messages so only
// the ClaimTTL expiry path keeps replacement cascades live.
package sim

import (
	"fmt"

	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/randx"
)

// holesDeploy is the paper's deployment: pick hole cells, then scatter
// spares over the rest. Shared by every workload whose round-0 state is
// the holes configuration.
func holesDeploy(holes, spares int, avoidAdjacent bool) func(*network.Network, *randx.Rand) error {
	return func(net *network.Network, rng *randx.Rand) error {
		cells, err := deploy.PickHoleCells(net.System(), holes, avoidAdjacent, rng.Split(1))
		if err != nil {
			return err
		}
		return deploy.Controlled(net, spares, cells, rng.Split(2))
	}
}

// moverWorkload is the adaptive jammer: complete coverage is deployed,
// then each strike jams a disc centered on the centroid of the cells the
// scheme repaired since the previous strike (a jammer tracking the
// defender's activity). With nothing repaired yet, the strike lands at a
// random center, like jam.
type moverWorkload struct{ spec WorkloadSpec }

func buildMoverWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"every": true, "waves": true, "radius": true})
	if err != nil {
		return nil, err
	}
	if spec.Every < 0 || spec.Waves < 0 || spec.Radius < 0 {
		return nil, fmt.Errorf("sim: negative mover parameter in %+v", spec)
	}
	return moverWorkload{spec}, nil
}

func (w moverWorkload) Kind() string { return WorkloadMover }

func (w moverWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	spares := cfg.Spares
	return Schedule{
		Deploy: func(net *network.Network, rng *randx.Rand) error {
			return deploy.Controlled(net, spares, nil, rng.Split(2))
		},
		Events: w.strikes(cfg, 0),
	}, nil
}

// strikes builds the mover's strike events, shifted by at rounds. The
// strikes share closure state: the vacant set recorded after each strike
// is what the next strike diffs against to find repaired cells.
func (w moverWorkload) strikes(cfg *TrialConfig, at int) []Event {
	every := w.spec.Every
	if every == 0 {
		every = DefaultMoverEvery
	}
	waves := w.spec.Waves
	if waves == 0 {
		waves = DefaultMoverStrikes
	}
	radius := w.spec.Radius
	if radius == 0 {
		radius = cfg.JamRadius
	}
	var prevVacant, cur []grid.Coord
	curSet := map[int]bool{}
	events := make([]Event, 0, waves)
	for i := 0; i < waves; i++ {
		events = append(events, Event{
			Round:   at + i*every,
			Barrier: true,
			Apply: func(net *network.Network, rng *randx.Rand, _ int) error {
				sys := net.System()
				cur = net.VacantCells(cur[:0])
				for k := range curSet {
					delete(curSet, k)
				}
				for _, c := range cur {
					curSet[sys.Index(c)] = true
				}
				// Centroid of repaired cells, iterating the recorded slice
				// (index order) so the float accumulation is deterministic.
				var sx, sy float64
				repaired := 0
				for _, c := range prevVacant {
					if !curSet[sys.Index(c)] {
						p := sys.Center(c)
						sx += p.X
						sy += p.Y
						repaired++
					}
				}
				var center geom.Point
				if repaired > 0 {
					center = geom.Point{X: sx / float64(repaired), Y: sy / float64(repaired)}
				} else {
					center = rng.InRect(sys.Bounds())
				}
				r := radius
				if r == 0 {
					r = 1.5 * sys.CellSize()
				}
				deploy.FailRegion(net, center, r)
				prevVacant = net.VacantCells(prevVacant[:0])
				return nil
			},
		})
	}
	return events
}

// byzantineWorkload corrupts a fraction of monitor heads: liars report
// false vacancies, spawning phantom replacement processes whose origin
// claims only the ClaimTTL expiry path can clear. It is pure
// configuration — the lying happens inside internal/core — so the
// damage composes with any event timeline. SR-family schemes, sync
// runner only.
type byzantineWorkload struct{ spec WorkloadSpec }

func buildByzantineWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{
		"holes": true, "frac": true, "prob": true, "count": true, "ttl": true,
	})
	if err != nil {
		return nil, err
	}
	if spec.Holes < 0 || spec.Count < 0 || spec.TTL < 0 {
		return nil, fmt.Errorf("sim: negative byzantine parameter in %+v", spec)
	}
	if spec.Frac < 0 || spec.Frac > 1 {
		return nil, fmt.Errorf("sim: byzantine frac %g outside [0,1]", spec.Frac)
	}
	if spec.Prob < 0 || spec.Prob > 1 {
		return nil, fmt.Errorf("sim: byzantine prob %g outside [0,1]", spec.Prob)
	}
	return byzantineWorkload{spec}, nil
}

func (w byzantineWorkload) Kind() string { return WorkloadByzantine }

// install writes the byzantine knobs into the trial config. A spec TTL
// overrides the campaign's claim_ttls value; with neither, the kind's
// default applies — phantom claims must be able to expire or the trial
// can only hit its round budget.
func (w byzantineWorkload) install(cfg *TrialConfig) {
	frac := w.spec.Frac
	if frac == 0 {
		frac = DefaultByzantineFrac
	}
	prob := w.spec.Prob
	if prob == 0 {
		prob = DefaultByzantineProb
	}
	lies := w.spec.Count
	if lies == 0 {
		lies = DefaultByzantineLies
	}
	cfg.ByzantineFrac, cfg.ByzantineProb, cfg.ByzantineLies = frac, prob, lies
	if w.spec.TTL != 0 {
		cfg.ClaimTTL = w.spec.TTL
	} else if cfg.ClaimTTL == 0 {
		cfg.ClaimTTL = DefaultByzantineTTL
	}
}

func (w byzantineWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	w.install(cfg)
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	return Schedule{Deploy: holesDeploy(holes, cfg.Spares, !cfg.AdjacentHolesOK)}, nil
}

// resupplyWorkload starts from the holes configuration and delivers
// batches of fresh spare nodes mid-run, rallying the scheme to retry
// holes it had written off when the spare pool ran dry.
type resupplyWorkload struct{ spec WorkloadSpec }

func buildResupplyWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{
		"holes": true, "at": true, "every": true, "batch": true, "count": true,
	})
	if err != nil {
		return nil, err
	}
	if spec.Holes < 0 || spec.At < 0 || spec.Every < 0 || spec.Batch < 0 || spec.Count < 0 {
		return nil, fmt.Errorf("sim: negative resupply parameter in %+v", spec)
	}
	return resupplyWorkload{spec}, nil
}

func (w resupplyWorkload) Kind() string { return WorkloadResupply }

func (w resupplyWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	if cfg.Runner == RunAsync {
		return Schedule{}, fmt.Errorf("sim: the resupply workload requires the sync runner")
	}
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	return Schedule{
		Deploy: holesDeploy(holes, cfg.Spares, !cfg.AdjacentHolesOK),
		Events: w.arrivals(0),
	}, nil
}

// arrivals builds the resupply events, shifted by at rounds. Arrivals
// are barriers (the trial must witness them) and rallies (the scheme's
// given-up holes become eligible again once spares exist).
func (w resupplyWorkload) arrivals(at int) []Event {
	first := w.spec.At
	if first == 0 {
		first = DefaultResupplyAt
	}
	every := w.spec.Every
	if every == 0 {
		every = DefaultResupplyAt
	}
	batch := w.spec.Batch
	if batch == 0 {
		batch = DefaultResupplyBatch
	}
	count := w.spec.Count
	if count == 0 {
		count = 1
	}
	events := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		events = append(events, Event{
			Round:   at + first + i*every,
			Barrier: true,
			Rally:   true,
			Apply: func(net *network.Network, rng *randx.Rand, _ int) error {
				return deploy.Resupply(net, batch, rng)
			},
		})
	}
	return events
}

// lossyWorkload runs the holes scenario over a lossy radio: every
// delivery drops with probability Loss, so replacement requests and
// acknowledgements vanish mid-cascade and only ClaimTTL expiry revives
// the repair. SR-family schemes, sync runner only.
type lossyWorkload struct{ spec WorkloadSpec }

func buildLossyWorkload(spec WorkloadSpec) (Workload, error) {
	err := rejectParams(spec, map[string]bool{"holes": true, "loss": true, "ttl": true})
	if err != nil {
		return nil, err
	}
	if spec.Holes < 0 || spec.TTL < 0 {
		return nil, fmt.Errorf("sim: negative lossy parameter in %+v", spec)
	}
	if spec.Loss < 0 || spec.Loss >= 1 {
		return nil, fmt.Errorf("sim: lossy loss %g outside [0,1)", spec.Loss)
	}
	return lossyWorkload{spec}, nil
}

func (w lossyWorkload) Kind() string { return WorkloadLossy }

// install writes the radio knobs into the trial config; TTL precedence
// matches byzantine.
func (w lossyWorkload) install(cfg *TrialConfig) {
	loss := w.spec.Loss
	if loss == 0 {
		loss = DefaultLossyLoss
	}
	cfg.MessageLoss = loss
	if w.spec.TTL != 0 {
		cfg.ClaimTTL = w.spec.TTL
	} else if cfg.ClaimTTL == 0 {
		cfg.ClaimTTL = DefaultLossyTTL
	}
}

func (w lossyWorkload) Schedule(cfg *TrialConfig) (Schedule, error) {
	w.install(cfg)
	holes := w.spec.Holes
	if holes == 0 {
		holes = cfg.Holes
	}
	return Schedule{Deploy: holesDeploy(holes, cfg.Spares, !cfg.AdjacentHolesOK)}, nil
}
