package sim

import (
	"strings"
	"testing"
)

// runChecked runs the config and fails on any invariant violation — the
// oracle contract every workload, built-in or adversarial, must honor.
func runChecked(t *testing.T, cfg TrialConfig) (*Trial, TrialResult) {
	t.Helper()
	tr, err := NewTrial(cfg)
	if err != nil {
		t.Fatalf("NewTrial(%+v): %v", cfg, err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	if bad := CheckInvariants(tr); len(bad) > 0 {
		t.Fatalf("invariants violated under %+v:\n  %s", cfg, strings.Join(bad, "\n  "))
	}
	return tr, res
}

// TestInvariantsBuiltinWorkloads: the oracle holds for every pre-existing
// workload kind across the schemes and runners that support it. This is
// the baseline the adversarial zoo is measured against — if the oracle
// misfires on benign scenarios it cannot referee hostile ones.
func TestInvariantsBuiltinWorkloads(t *testing.T) {
	workloads := []WorkloadSpec{
		{Kind: WorkloadHoles, Holes: 3},
		{Kind: WorkloadJam},
		{Kind: WorkloadChurn, Holes: 2, Every: 4, Waves: 3},
		{Kind: WorkloadDepletion, Budget: 15, Every: 2},
	}
	for _, wl := range workloads {
		for _, scheme := range []SchemeKind{SR, SRShortcut, AR} {
			cfg := TrialConfig{
				Cols: 8, Rows: 8, Scheme: scheme, Spares: 20, Seed: 5,
				AdjacentHolesOK: true, Workload: wl,
			}
			t.Run(wl.Kind+"/"+scheme.String(), func(t *testing.T) {
				runChecked(t, cfg)
			})
		}
	}
	// The async runner keeps its own claim-free controller; the oracle
	// still audits the network side.
	t.Run("holes/async", func(t *testing.T) {
		runChecked(t, TrialConfig{
			Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Holes: 2, Seed: 9,
			Runner: RunAsync,
		})
	})
}

// TestInvariantsSpareDrought: the oracle must hold even when the scheme
// gives up — exhausted spares leave holes standing, not leaked claims.
func TestInvariantsSpareDrought(t *testing.T) {
	_, res := runChecked(t, TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 0, Holes: 4, Seed: 21,
		AdjacentHolesOK: true,
	})
	if res.Complete || res.HolesAfter == 0 {
		t.Fatalf("0 spares cannot repair 4 holes: %+v", res)
	}
}

// TestMoverTrial: the adaptive jammer relocates toward repaired cells
// and keeps the trial busy across strikes; invariants hold throughout.
func TestMoverTrial(t *testing.T) {
	cfg := TrialConfig{
		Cols: 10, Rows: 10, Scheme: SR, Spares: 60, Seed: 13,
		Workload: WorkloadSpec{Kind: WorkloadMover, Every: 5, Waves: 3},
	}
	_, res := runChecked(t, cfg)
	if res.Summary.Initiated == 0 || res.Summary.Moves == 0 {
		t.Fatalf("mover strikes caused no recovery activity: %+v", res)
	}
	// The trial cannot converge before the last strike at round 10.
	if res.Rounds <= 2*5 {
		t.Errorf("converged at round %d, before the last strike", res.Rounds)
	}
	if !res.Complete || res.HolesAfter != 0 {
		t.Errorf("ample spares should absorb all strikes: %+v", res)
	}
}

// TestByzantineTrialPhantomsExpire is the ClaimTTL exercise: guaranteed
// liars (prob=1) spawn phantom processes whose claims only expiry can
// clear. Convergence plus a clean claims audit proves the TTL path both
// fired and left no stale claim behind.
func TestByzantineTrialPhantomsExpire(t *testing.T) {
	cfg := TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Seed: 17,
		Workload: WorkloadSpec{
			Kind: WorkloadByzantine, Holes: 2, Frac: 0.3, Prob: 1, Count: 1, TTL: 4,
		},
	}
	honest := cfg
	honest.Workload = WorkloadSpec{Kind: WorkloadHoles, Holes: 2}
	_, base := runChecked(t, honest)

	_, res := runChecked(t, cfg)
	// Phantom processes register with the collector, so the lied-to run
	// must initiate strictly more processes than the honest baseline.
	if res.Summary.Initiated <= base.Summary.Initiated {
		t.Errorf("liars spawned no phantoms: %d initiated vs honest %d",
			res.Summary.Initiated, base.Summary.Initiated)
	}
	if !res.Complete || res.HolesAfter != 0 {
		t.Errorf("byzantine trial did not recover the real holes: %+v", res)
	}

	// Without a TTL the phantoms can never expire; the trial must refuse
	// to start rather than run forever.
	noTTL := cfg
	noTTL.Workload.TTL = -1 // sentinel: install() keeps precedence order
	if _, err := NewTrial(noTTL); err == nil {
		t.Error("byzantine workload with negative ttl should fail")
	}
}

// TestResupplyTrialRecoversAbandonedHoles is the resupply story: a
// spare-starved network abandons its holes, fresh spares arrive mid-run,
// the rally makes the scheme retry, and the holes get repaired after all.
func TestResupplyTrialRecoversAbandonedHoles(t *testing.T) {
	starved := TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 0, Holes: 2, Seed: 31,
		AdjacentHolesOK: true,
	}
	_, abandoned := runChecked(t, starved)
	if abandoned.Complete {
		t.Fatalf("control run repaired holes with 0 spares: %+v", abandoned)
	}

	resupplied := starved
	resupplied.Workload = WorkloadSpec{
		Kind: WorkloadResupply, Holes: 2, At: 6, Batch: 6, Count: 1,
	}
	tr, res := runChecked(t, resupplied)
	if !res.Complete || res.HolesAfter != 0 {
		t.Fatalf("resupply did not rescue the abandoned holes: %+v", res)
	}
	if tr.Network().TotalSpares() != 6-2 {
		t.Errorf("spare ledger after resupply: %d, want 4", tr.Network().TotalSpares())
	}

	// Resupply needs the sync runner's rally path.
	async := resupplied
	async.Runner = RunAsync
	if _, err := NewTrial(async); err == nil {
		t.Error("resupply under the async runner should fail")
	}
}

// TestLossyTrialDropsAndRecovers: the lossy radio must actually drop
// messages, and ClaimTTL expiry must recover every repair the drops
// stalled — completion under loss is the paper's robustness claim.
func TestLossyTrialDropsAndRecovers(t *testing.T) {
	cfg := TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Seed: 41,
		Workload: WorkloadSpec{Kind: WorkloadLossy, Holes: 3, Loss: 0.3, TTL: 6},
	}
	tr, res := runChecked(t, cfg)
	if tr.Network().MessagesLost() == 0 {
		t.Error("lossy radio dropped no messages at loss=0.3")
	}
	if !res.Complete || res.HolesAfter != 0 {
		t.Errorf("lossy trial did not recover: %+v", res)
	}

	// Loss outside [0,1) is rejected at build time.
	bad := cfg
	bad.Workload.Loss = 1
	if _, err := NewTrial(bad); err == nil {
		t.Error("loss=1 should fail")
	}
}

// TestCombinatorTrials: composed scenarios run end-to-end and the oracle
// holds — sequence phases, overlay stacking, and the seeded generator.
func TestCombinatorTrials(t *testing.T) {
	cases := []WorkloadSpec{
		{Kind: WorkloadSequence, Every: 6, Children: []WorkloadSpec{
			{Kind: WorkloadHoles, Holes: 2},
			{Kind: WorkloadJam},
			{Kind: WorkloadLossy, Holes: 1, Loss: 0.2},
		}},
		{Kind: WorkloadOverlay, Children: []WorkloadSpec{
			{Kind: WorkloadChurn, Holes: 1, Every: 4, Waves: 2},
			{Kind: WorkloadDepletion, Holes: 1, Budget: 25},
		}},
		{Kind: WorkloadRandom, Pick: 99, Count: 3},
	}
	for _, wl := range cases {
		t.Run(wl.Kind, func(t *testing.T) {
			_, res := runChecked(t, TrialConfig{
				Cols: 9, Rows: 9, Scheme: SR, Spares: 40, Seed: 53,
				AdjacentHolesOK: true, Workload: wl,
			})
			if res.Summary.Initiated == 0 {
				t.Errorf("composed scenario caused no recovery: %+v", res)
			}
		})
	}

	// Grammar bounds: fan-out and nesting depth are hard limits.
	wide := WorkloadSpec{Kind: WorkloadOverlay}
	for i := 0; i < MaxChildren+1; i++ {
		wide.Children = append(wide.Children, WorkloadSpec{Kind: WorkloadHoles})
	}
	if _, err := BuildWorkload(wide); err == nil {
		t.Error("overlay beyond MaxChildren should fail")
	}
	deep := WorkloadSpec{Kind: WorkloadHoles}
	for i := 0; i < MaxCompositionDepth; i++ {
		deep = WorkloadSpec{Kind: WorkloadSequence, Children: []WorkloadSpec{deep}}
	}
	if _, err := BuildWorkload(deep); err == nil {
		t.Error("sequence beyond MaxCompositionDepth should fail")
	}
	if _, err := BuildWorkload(WorkloadSpec{Kind: WorkloadSequence}); err == nil {
		t.Error("sequence without children should fail")
	}
}
