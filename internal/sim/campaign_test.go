package sim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"wsncover/internal/experiment"
)

func TestRunTrialJamFailure(t *testing.T) {
	res, err := RunTrial(TrialConfig{
		Cols: 16, Rows: 16, Scheme: SR, Spares: 80, Failure: FailJam, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HolesBefore == 0 {
		t.Fatal("jam created no holes; radius should cover at least one cell center region")
	}
	if !res.Complete {
		t.Errorf("80 spares should repair a default jam: %+v", res)
	}
	if res.HolesAfter != 0 {
		t.Errorf("holes remain after recovery: %+v", res)
	}

	// A wider jam kills more cells.
	wide, err := RunTrial(TrialConfig{
		Cols: 16, Rows: 16, Scheme: SR, Spares: 80, Failure: FailJam,
		JamRadius: 15, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wide.HolesBefore <= res.HolesBefore {
		t.Errorf("radius 15 made %d holes vs default's %d", wide.HolesBefore, res.HolesBefore)
	}

	if _, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Failure: FailureMode(9),
	}); err == nil {
		t.Error("invalid failure mode should fail")
	}
	if _, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, JamRadius: -1,
	}); err == nil {
		t.Error("negative jam radius should fail")
	}
}

// TestRunSweepWorkerCountInvariance is the engine's core acceptance
// criterion at the sweep level: the same spec and seed must produce
// bit-identical points at any worker count.
func TestRunSweepWorkerCountInvariance(t *testing.T) {
	base := SweepConfig{
		Template: TrialConfig{Cols: 12, Rows: 12, Scheme: AR},
		Ns:       []int{5, 20, 60},
		Trials:   8,
		BaseSeed: 1234,
	}
	run := func(workers int) []SweepPoint {
		cfg := base
		cfg.Workers = workers
		pts, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d diverged:\n%+v\nwant\n%+v", workers, got, ref)
		}
	}
}

func TestRunSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweepContext(ctx, SweepConfig{
		Template: TrialConfig{Cols: 16, Rows: 16, Scheme: SR},
		Ns:       PaperNs(),
		Trials:   50,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCampaignJobsExpansion(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR, AR},
		Grids:      []GridSize{{8, 8}, {12, 12}},
		Spares:     []int{10, 30},
		Holes:      []int{1, 2},
		Failures:   []FailureMode{FailHoles, FailJam},
		Replicates: 3,
		BaseSeed:   77,
	}
	jobs := spec.Jobs()
	// FailHoles expands the holes dimension; FailJam ignores hole counts
	// (the disc decides), so it contributes a single holes value — no
	// duplicate (config, seed) jobs inflating the jam statistics.
	want := 2*2*2*2*3 + 2*2*1*2*3
	if len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	jamJobs := 0
	for _, j := range jobs {
		if j.Workload.Kind == WorkloadJam {
			jamJobs++
			if j.Holes != 1 {
				t.Fatalf("jam job carries holes=%d", j.Holes)
			}
		}
	}
	if jamJobs != 2*2*1*2*3 {
		t.Errorf("jam jobs = %d", jamJobs)
	}
	// Replicate r shares its seed across every cell (paired layouts).
	seeds := experiment.Seeds(77, 3)
	for _, j := range jobs {
		if j.Seed != seeds[j.Replicate] {
			t.Fatalf("job %+v seed mismatch", j)
		}
	}
	// Expansion is deterministic.
	if !reflect.DeepEqual(jobs, spec.Jobs()) {
		t.Error("Jobs() not reproducible")
	}
	// Group naming: scheme + grid, with non-default damage called out.
	if g := jobs[0].Group(); g != "SR 8x8" {
		t.Errorf("group = %q", g)
	}
	if g := (TrialJob{Scheme: AR, Grid: GridSize{16, 16}, Holes: 4}).Group(); g != "AR 16x16 holes=4" {
		t.Errorf("group = %q", g)
	}
	jam := TrialJob{Scheme: SR, Grid: GridSize{16, 16}, Holes: 1, Workload: WorkloadSpec{Kind: WorkloadJam}}
	if g := jam.Group(); g != "SR 16x16 jam" {
		t.Errorf("group = %q", g)
	}
	churn := TrialJob{Scheme: SR, Grid: GridSize{16, 16}, Holes: 1,
		Workload: WorkloadSpec{Kind: WorkloadChurn, Every: 5, Waves: 3}, Runner: RunAsync}
	if g := churn.Group(); g != "SR 16x16 churn e=5 w=3 async" {
		t.Errorf("group = %q", g)
	}
}

func TestRunCampaignAggregates(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR, AR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{8, 24},
		Replicates: 4,
		BaseSeed:   99,
	}
	samples, err := RunCampaignSamples(context.Background(), spec, experiment.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2*2*4 {
		t.Fatalf("samples = %d", len(samples))
	}
	pts := experiment.Aggregate(samples)
	if len(pts) != 4 { // 2 schemes x 2 spare counts
		t.Fatalf("points = %d: %+v", len(pts), pts)
	}
	for _, p := range pts {
		d, ok := p.Metrics["moves"]
		if !ok || d.N != 4 {
			t.Errorf("%s/%g: moves = %+v", p.Group, p.X, d)
		}
		if p.Metrics["success_rate"].Mean < 0 || p.Metrics["success_rate"].Mean > 100 {
			t.Errorf("%s/%g: success = %v", p.Group, p.X, p.Metrics["success_rate"])
		}
	}
	// SR initiates exactly one process per hole per trial.
	for _, p := range pts {
		if p.Group == "SR 8x8" && p.Metrics["initiated"].Mean != 1 {
			t.Errorf("SR initiated mean = %v, want 1", p.Metrics["initiated"].Mean)
		}
	}

	// Worker-count invariance holds across the whole campaign too.
	again, err := RunCampaignSamples(context.Background(), spec, experiment.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(samples, again) {
		t.Error("campaign results depend on worker count")
	}

	// The streaming aggregation path agrees with the batch reference on
	// every exact field and is itself worker-invariant.
	streamed, err := RunCampaign(context.Background(), spec, experiment.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(pts) {
		t.Fatalf("streamed points = %d, want %d", len(streamed), len(pts))
	}
	for i := range pts {
		b, s := pts[i], streamed[i]
		if b.Group != s.Group || b.X != s.X {
			t.Fatalf("streamed point %d is (%s, %g), want (%s, %g)", i, s.Group, s.X, b.Group, b.X)
		}
		for name, bd := range b.Metrics {
			sd := s.Metrics[name]
			if bd.N != sd.N || bd.Min != sd.Min || bd.Max != sd.Max {
				t.Errorf("%s/%g %s: %+v vs %+v", b.Group, b.X, name, bd, sd)
			}
			if diff := bd.Mean - sd.Mean; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s/%g %s: mean %v vs %v", b.Group, b.X, name, bd.Mean, sd.Mean)
			}
		}
	}
	streamedSeq, err := RunCampaign(context.Background(), spec, experiment.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, streamedSeq) {
		t.Error("streaming aggregation depends on worker count")
	}
}

func TestJobSpaceMatchesJobs(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR, AR, SRShortcut},
		Grids:      []GridSize{{8, 8}, {12, 12}},
		Spares:     []int{10, 30, 50},
		Holes:      []int{1, 2},
		Failures:   []FailureMode{FailHoles, FailJam},
		Replicates: 3,
		BaseSeed:   5,
	}
	jobs := spec.Jobs()
	js := spec.JobSpace()
	if js.Len() != len(jobs) || spec.NumJobs() != len(jobs) {
		t.Fatalf("Len = %d, NumJobs = %d, want %d", js.Len(), spec.NumJobs(), len(jobs))
	}
	for i, want := range jobs {
		if got := js.At(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
	for _, bad := range []int{-1, js.Len()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) should panic", bad)
				}
			}()
			js.At(bad)
		}()
	}
}

func TestCampaignSpecJSON(t *testing.T) {
	in := `{
		"schemes": ["SR", "sr+shortcut", "AR"],
		"grids": [{"cols": 16, "rows": 16}],
		"spares": [10, 55],
		"failures": ["holes", "jam"],
		"replicates": 5,
		"seed": 42
	}`
	var spec CampaignSpec
	if err := json.Unmarshal([]byte(in), &spec); err != nil {
		t.Fatal(err)
	}
	if len(spec.Schemes) != 3 || spec.Schemes[1] != SRShortcut {
		t.Errorf("schemes = %v", spec.Schemes)
	}
	if len(spec.Failures) != 2 || spec.Failures[1] != FailJam {
		t.Errorf("failures = %v", spec.Failures)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back CampaignSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip:\n%+v\n%+v", spec, back)
	}
	if err := json.Unmarshal([]byte(`{"schemes": ["XR"]}`), &spec); err == nil {
		t.Error("bad scheme name should fail")
	}
	if err := json.Unmarshal([]byte(`{"failures": ["flood"]}`), &spec); err == nil {
		t.Error("bad failure name should fail")
	}
}

func TestCampaignSpecNormalized(t *testing.T) {
	n := CampaignSpec{}.Normalized()
	if n.Replicates != 20 || len(n.Schemes) != 2 || len(n.Spares) == 0 ||
		len(n.Grids) != 1 || len(n.Holes) != 1 || len(n.Failures) != 1 {
		t.Errorf("defaults not filled: %+v", n)
	}
	// Set fields survive.
	n = CampaignSpec{Replicates: 7, Spares: []int{3}}.Normalized()
	if n.Replicates != 7 || len(n.Spares) != 1 {
		t.Errorf("explicit fields clobbered: %+v", n)
	}
}

func TestParseGridSize(t *testing.T) {
	g, err := ParseGridSize(" 16x16 ")
	if err != nil || g != (GridSize{16, 16}) {
		t.Errorf("ParseGridSize = %v, %v", g, err)
	}
	for _, bad := range []string{"16by16", "16x16x3", "8x8junk", "x8", "8x", ""} {
		if _, err := ParseGridSize(bad); err == nil {
			t.Errorf("ParseGridSize(%q) should fail", bad)
		}
	}
}

func TestParseSchemeKindAndFailureMode(t *testing.T) {
	for in, want := range map[string]SchemeKind{
		"SR": SR, "sr": SR, "SRS": SRShortcut, "SR+shortcut": SRShortcut, "ar": AR,
	} {
		got, err := ParseSchemeKind(in)
		if err != nil || got != want {
			t.Errorf("ParseSchemeKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSchemeKind("bogus"); err == nil {
		t.Error("bogus scheme should fail")
	}
	for in, want := range map[string]FailureMode{
		"holes": FailHoles, "": FailHoles, "JAM": FailJam,
	} {
		got, err := ParseFailureMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFailureMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFailureMode("flood"); err == nil {
		t.Error("bogus mode should fail")
	}
	if FailJam.String() != "jam" || FailHoles.String() != "holes" {
		t.Error("FailureMode strings")
	}
	if FailureMode(9).String() == "" {
		t.Error("invalid mode should render")
	}
}

// TestShardRangeIsSliceOfFullCampaign pins the sharding contract: a
// spec restricted to a replicate subrange computes exactly the trials
// of that subrange in the unsharded campaign, byte for byte — the
// property that makes cross-process shards stitchable.
func TestShardRangeIsSliceOfFullCampaign(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR, AR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{6, 18},
		Replicates: 5,
		BaseSeed:   77,
	}
	full, err := RunCampaignSamples(context.Background(), spec, experiment.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Collect the full run's samples keyed in job order per shard range.
	shards := []struct{ first, count int }{{0, 2}, {2, 2}, {4, 1}}
	var stitched []experiment.Sample
	for _, sh := range shards {
		s := spec
		s.ShardFirst, s.ShardCount = sh.first, sh.count
		part, err := RunCampaignSamples(context.Background(), s, experiment.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		stitched = append(stitched, part...)
	}
	if len(stitched) != len(full) {
		t.Fatalf("shards produced %d samples, full campaign %d", len(stitched), len(full))
	}
	// Shard delivery order is job order within each shard; regroup the
	// full run the same way for the comparison.
	var regrouped []experiment.Sample
	js := spec.JobSpace()
	for _, sh := range shards {
		for i := 0; i < js.Len(); i++ {
			r := js.At(i).Replicate
			if r >= sh.first && r < sh.first+sh.count {
				regrouped = append(regrouped, full[i])
			}
		}
	}
	for i := range regrouped {
		if !reflect.DeepEqual(stitched[i], regrouped[i]) {
			t.Fatalf("sample %d differs:\nshard: %+v\nfull:  %+v", i, stitched[i], regrouped[i])
		}
	}
}

// TestCampaignSpecShardValidation rejects malformed shard ranges.
func TestCampaignSpecShardValidation(t *testing.T) {
	base := CampaignSpec{Replicates: 10}
	bad := []CampaignSpec{
		{Replicates: 10, ShardFirst: -1, ShardCount: 2},
		{Replicates: 10, ShardFirst: 0, ShardCount: -2},
		{Replicates: 10, ShardFirst: 3, ShardCount: 0},
		{Replicates: 10, ShardFirst: 8, ShardCount: 3},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d (%+v) should fail validation", i, spec)
		}
	}
	base.ShardFirst, base.ShardCount = 8, 2
	if err := base.Validate(); err != nil {
		t.Errorf("valid shard range rejected: %v", err)
	}
}

// TestValidateUnsharded pins the service submission surface: a shard
// spec must not reach a whole-campaign cache or queue.
func TestValidateUnsharded(t *testing.T) {
	spec := CampaignSpec{Replicates: 10}
	if err := spec.ValidateUnsharded(); err != nil {
		t.Errorf("unsharded spec rejected: %v", err)
	}
	spec.ShardFirst, spec.ShardCount = 2, 4
	if err := spec.ValidateUnsharded(); err == nil {
		t.Error("shard-pinned spec must be rejected by ValidateUnsharded")
	}
	bad := CampaignSpec{Replicates: 10, Failures: []FailureMode{FailHoles}, Workloads: []WorkloadSpec{{Kind: "churn"}}}
	if err := bad.ValidateUnsharded(); err == nil {
		t.Error("ValidateUnsharded must still apply Validate")
	}
}
