package sim

import (
	"strings"
	"testing"
)

// FuzzScenario drives the seeded scenario generator with fuzzed inputs
// and holds every generated composition to the CheckInvariants oracle
// plus rerun determinism. The generator (randomWorkload) is the grammar's
// closure: whatever composition the fuzzer reaches, the trial must
// terminate inside its round budget, keep the claim/spares/coverage
// bookkeeping consistent, and reproduce byte-for-byte on a second run.
//
// The checked-in corpus (testdata/fuzz/FuzzScenario) pins one seed per
// interesting regime — lossy compositions, byzantine phantoms, resupply
// rallies, deep damage stacks — and runs in plain `go test` as a
// regression suite; CI additionally fuzzes fresh inputs for a smoke
// interval.
func FuzzScenario(f *testing.F) {
	f.Add(int64(1), int64(7), uint8(2), false)
	f.Add(int64(99), int64(53), uint8(3), true)
	f.Add(int64(7), int64(100), uint8(2), false)
	f.Add(int64(1234567), int64(-3), uint8(6), true)
	f.Add(int64(-1), int64(0), uint8(0), false)
	f.Add(int64(42), int64(42), uint8(255), true)
	f.Fuzz(func(t *testing.T, pick, seed int64, count uint8, adjacent bool) {
		cfg := TrialConfig{
			Cols: 8, Rows: 8, Scheme: SR, Spares: 16, Seed: seed,
			AdjacentHolesOK: adjacent,
			Workload: WorkloadSpec{
				Kind:  WorkloadRandom,
				Pick:  pick,
				Count: int(count)%MaxChildren + 1,
			},
		}
		tr, err := NewTrial(cfg)
		if err != nil {
			t.Fatalf("generated scenario failed to build: %v", err)
		}
		res, err := tr.Run()
		if err != nil {
			t.Fatalf("generated scenario failed to run: %v", err)
		}
		if bad := CheckInvariants(tr); len(bad) > 0 {
			t.Fatalf("invariants violated:\n  %s", strings.Join(bad, "\n  "))
		}
		// Determinism: the same inputs must reproduce the same trial.
		tr2, err := NewTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := tr2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res != res2 {
			t.Fatalf("scenario not deterministic: %+v vs %+v", res, res2)
		}
	})
}
