package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"wsncover/internal/experiment"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// assemblyManifestBytes runs the campaign through the chosen trial
// assembly (workload schedule vs the pre-redesign enum path) and
// serializes the aggregated manifest; any byte difference is an assembly
// divergence. Both arms marshal the same spec struct, so the comparison
// covers results only.
func assemblyManifestBytes(t *testing.T, spec CampaignSpec, legacyAssembly bool, workers int) []byte {
	t.Helper()
	spec.legacyAssembly = legacyAssembly
	samples, err := RunCampaignSamples(context.Background(), spec, experiment.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	points := experiment.Aggregate(samples)
	m, err := experiment.NewManifest("diff", spec, len(samples), 0, points)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLegacySpecBitIdenticalThroughWorkloadPath is the acceptance
// criterion of the workload redesign: a legacy CampaignSpec (schemes x
// grids x spares x holes x failures) must produce a byte-identical
// manifest through the new workload path as through the pre-redesign
// enum path (ApplyDamage + RunToConvergence), at any worker count.
func TestLegacySpecBitIdenticalThroughWorkloadPath(t *testing.T) {
	specs := []CampaignSpec{
		{
			Schemes:    []SchemeKind{SR, SRShortcut, AR},
			Grids:      []GridSize{{8, 8}, {9, 9}}, // cycle and dual path
			Spares:     []int{4, 20},
			Holes:      []int{1, 3},
			Failures:   []FailureMode{FailHoles, FailJam},
			Replicates: 3,
			BaseSeed:   311,
		},
		{
			Schemes:         []SchemeKind{SR, AR},
			Grids:           []GridSize{{12, 12}},
			Spares:          []int{0, 8}, // spare drought: exhausted walks
			Holes:           []int{4},
			AdjacentHolesOK: true,
			Failures:        []FailureMode{FailJam},
			JamRadius:       12,
			Replicates:      4,
			BaseSeed:        422,
		},
	}
	for i, spec := range specs {
		ref := assemblyManifestBytes(t, spec, true, 1)
		if got := assemblyManifestBytes(t, spec, false, 1); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: workload-path manifest differs from enum-path manifest (workers=1)", i)
		}
		if got := assemblyManifestBytes(t, spec, false, 8); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: workload-path manifest differs at workers=8", i)
		}
	}
}

// campaignManifestBytes serializes one aggregated campaign run of the
// spec as executed (streaming accumulator, the cmd/sweep path).
func campaignManifestBytes(t *testing.T, spec CampaignSpec, workers int) []byte {
	t.Helper()
	points, err := RunCampaign(context.Background(), spec, experiment.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	m, err := experiment.NewManifest("det", spec, spec.NumJobs(), 0, points)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkloadManifestDeterminism is the workload-coverage satellite:
// equal churn and depletion specs must produce byte-identical manifests
// at any worker count, including across the runner axis.
func TestWorkloadManifestDeterminism(t *testing.T) {
	specs := []CampaignSpec{
		{
			Schemes:    []SchemeKind{SR, AR},
			Grids:      []GridSize{{8, 8}},
			Spares:     []int{6, 24},
			Workloads:  []WorkloadSpec{{Kind: WorkloadChurn, Holes: 2, Every: 4, Waves: 3}},
			Replicates: 3,
			BaseSeed:   17,
		},
		{
			Schemes:    []SchemeKind{SR, AR},
			Grids:      []GridSize{{8, 8}},
			Spares:     []int{10},
			Workloads:  []WorkloadSpec{{Kind: WorkloadDepletion, Budget: 12, Every: 3}},
			Replicates: 3,
			BaseSeed:   29,
		},
		{
			Schemes:    []SchemeKind{SR},
			Grids:      []GridSize{{8, 8}},
			Spares:     []int{8},
			Workloads:  []WorkloadSpec{{Kind: WorkloadChurn, Every: 3, Waves: 2}},
			Runners:    []RunnerKind{RunSync, RunAsync},
			Replicates: 2,
			BaseSeed:   43,
		},
	}
	for i, spec := range specs {
		ref := campaignManifestBytes(t, spec, 1)
		if got := campaignManifestBytes(t, spec, 8); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: manifest differs at workers=8", i)
		}
		if got := campaignManifestBytes(t, spec, 1); !bytes.Equal(got, ref) {
			t.Errorf("spec %d: manifest not reproducible across runs", i)
		}
	}
}

func TestChurnTrialDeliversHolesUnderFire(t *testing.T) {
	cfg := TrialConfig{
		Cols: 10, Rows: 10, Scheme: SR, Spares: 60, Seed: 3,
		Workload: WorkloadSpec{Kind: WorkloadChurn, Holes: 2, Every: 4, Waves: 4},
	}
	res, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// HolesBefore counts only the round-0 wave; later waves arrive while
	// recovery runs, so the scheme must have repaired more holes than
	// were ever simultaneously visible at the start.
	if res.HolesBefore == 0 || res.HolesBefore > 2 {
		t.Errorf("HolesBefore = %d, want 1..2 (first wave only)", res.HolesBefore)
	}
	if !res.Complete || res.HolesAfter != 0 {
		t.Errorf("ample spares should repair all churn: %+v", res)
	}
	if res.Summary.Initiated < 3 {
		t.Errorf("expected processes across several waves, got %d", res.Summary.Initiated)
	}
	// The trial cannot converge before the last wave has fired.
	if res.Rounds <= 3*4 {
		t.Errorf("converged at round %d, before the last wave at round 12", res.Rounds)
	}

	// Determinism: equal configs, equal outcomes.
	again, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res != again {
		t.Errorf("churn trial not deterministic: %+v vs %+v", res, again)
	}
}

func TestDepletionTrialDrainsNodes(t *testing.T) {
	base := TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 30, Holes: 3,
		AdjacentHolesOK: true, Seed: 11,
	}
	ctrl, err := NewTrial(base)
	if err != nil {
		t.Fatal(err)
	}
	ctrlRes, err := ctrl.Run()
	if err != nil {
		t.Fatal(err)
	}

	depleted := base
	depleted.Workload = WorkloadSpec{Kind: WorkloadDepletion, Budget: 4, Every: 1}
	tr, err := NewTrial(depleted)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The workload installs the default energy model and the tiny budget
	// kills movers, so the depleted run must end with fewer enabled
	// nodes than the control run.
	if tr.Network().EnergyModel() == (node.EnergyModel{}) {
		t.Fatal("depletion workload did not install an energy model")
	}
	if tr.Network().EnabledCount() >= ctrl.Network().EnabledCount() {
		t.Errorf("depletion killed no one: %d enabled vs control %d",
			tr.Network().EnabledCount(), ctrl.Network().EnabledCount())
	}
	if res == ctrlRes {
		t.Error("depletion result identical to control result")
	}
}

func TestAsyncRunnerTrial(t *testing.T) {
	cfg := TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Holes: 2, Seed: 7,
		Runner: RunAsync,
	}
	res, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.HolesAfter != 0 {
		t.Errorf("async SR should repair 2 holes with 20 spares: %+v", res)
	}
	if res.Summary.Moves == 0 || res.Rounds == 0 {
		t.Errorf("async trial reported no activity: %+v", res)
	}
	again, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res != again {
		t.Errorf("async trial not deterministic: %+v vs %+v", res, again)
	}

	// The async runner is SR-only.
	for _, scheme := range []SchemeKind{AR, SRShortcut} {
		bad := cfg
		bad.Scheme = scheme
		if _, err := RunTrial(bad); err == nil {
			t.Errorf("async runner accepted scheme %v", scheme)
		}
	}
}

func TestWorkloadSpecValidation(t *testing.T) {
	// Stray parameters fail loudly instead of being silently ignored.
	if _, err := BuildWorkload(WorkloadSpec{Kind: WorkloadJam, Every: 3}); err == nil {
		t.Error("jam with every should fail")
	}
	if _, err := BuildWorkload(WorkloadSpec{Kind: WorkloadHoles, Budget: 2}); err == nil {
		t.Error("holes with budget should fail")
	}
	if _, err := BuildWorkload(WorkloadSpec{Kind: "meteor"}); err == nil {
		t.Error("unknown kind should fail")
	}
	// The empty kind resolves to the default holes workload.
	if w, err := BuildWorkload(WorkloadSpec{}); err != nil || w.Kind() != WorkloadHoles {
		t.Errorf("empty kind resolved to %v, %v", w, err)
	}
	kinds := WorkloadKinds()
	want := []string{
		WorkloadByzantine, WorkloadChurn, WorkloadDepletion, WorkloadHoles,
		WorkloadJam, WorkloadLossy, WorkloadMover, WorkloadOverlay,
		WorkloadRandom, WorkloadResupply, WorkloadSequence,
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("WorkloadKinds() = %v, want %v", kinds, want)
	}

	// Conflicting campaign dimensions are rejected.
	err := CampaignSpec{
		Failures:  []FailureMode{FailJam},
		Workloads: []WorkloadSpec{{Kind: WorkloadChurn}},
	}.Validate()
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Errorf("failures+workloads Validate() = %v", err)
	}
	// Async x non-SR scheme is rejected up front.
	err = CampaignSpec{
		Schemes: []SchemeKind{SR, AR},
		Runners: []RunnerKind{RunSync, RunAsync},
	}.Validate()
	if err == nil {
		t.Error("async runner with AR scheme should fail Validate")
	}
	// Trial-level conflict: Workload and a non-default Failure.
	if _, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Failure: FailJam,
		Workload: WorkloadSpec{Kind: WorkloadChurn},
	}); err == nil {
		t.Error("Workload+Failure trial should fail")
	}
}

// TestDistinctWorkloadSpecsGetDistinctGroups pins the curve-identity
// invariant: two jobs belong to the same curve iff their workload specs
// (and the rest of their group dimensions) are equal.
func TestDistinctWorkloadSpecsGetDistinctGroups(t *testing.T) {
	base := TrialJob{Scheme: SR, Grid: GridSize{16, 16}, Holes: 1}
	pinned := base
	pinned.Workload = WorkloadSpec{Kind: WorkloadHoles, Holes: 5}
	if base.Group() == pinned.Group() {
		t.Errorf("default and pinned-holes workloads share group %q", base.Group())
	}
	if g := pinned.Group(); g != "SR 16x16 holes=5" {
		t.Errorf("pinned group = %q", g)
	}
}

// TestScheduleEventValidation pins the event-loop contract: recurring
// events cannot be barriers, and malformed events fail at assembly.
func TestScheduleEventValidation(t *testing.T) {
	apply := func(*network.Network, *randx.Rand, int) error { return nil }
	cases := []Event{
		{Round: 2, Every: 2, Barrier: true, Apply: apply},
		{Round: -1, Apply: apply},
		{Round: 1, Every: -2, Apply: apply},
		{Round: 1},
	}
	for i, ev := range cases {
		if err := validateEvents([]Event{ev}); err == nil {
			t.Errorf("case %d: event %+v should be rejected", i, ev)
		}
	}
	// A depletion schedule is a single recurring event, not one event
	// per check round.
	var cfg TrialConfig
	cfg.Cols, cfg.Rows, cfg.Scheme = 8, 8, SR
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	wl, err := BuildWorkload(WorkloadSpec{Kind: WorkloadDepletion})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := wl.Schedule(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 1 || sched.Events[0].Every == 0 {
		t.Errorf("depletion schedule = %d events (want 1 recurring)", len(sched.Events))
	}
}

// TestDepletionCheckFiresAfterLastMove pins the quiescence rule: with a
// check period longer than the trial's idle grace, a node pushed over
// budget by its final movement must still be killed by one last check
// before the trial may converge — the sync runner must not report
// complete coverage the async runner would deny.
func TestDepletionCheckFiresAfterLastMove(t *testing.T) {
	cfg := TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 30, Holes: 3,
		AdjacentHolesOK: true, Seed: 11,
		// Budget so small every mover dies; checks every 9 rounds, far
		// past the idle grace of 3.
		Workload: WorkloadSpec{Kind: WorkloadDepletion, Budget: 0.5, Every: 9},
	}
	tr, err := NewTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Moves == 0 {
		t.Fatal("trial moved no one; scenario does not exercise the check")
	}
	// Every mover exceeded the budget, so no mover may survive: each
	// move's distance is positive and budget is 0.5 with PerMeter 1.
	for id := 0; id < tr.Network().NumNodes(); id++ {
		nd := tr.Network().Node(node.ID(id))
		if nd.Enabled() && nd.EnergySpent() > 0.5 {
			t.Fatalf("node %d over budget (%.2f) survived convergence at round %d",
				id, nd.EnergySpent(), res.Rounds)
		}
	}
	// The final kill leaves holes behind; the trial must report them.
	if res.Complete || res.HolesAfter == 0 {
		t.Errorf("trial reports complete coverage despite depleted movers: %+v", res)
	}
}

// TestTrialWorkloadWithoutKindFailsLoudly pins the forgotten-Kind
// safety net: parameters without a kind resolve to the default kind,
// whose builder rejects parameters it does not take.
func TestTrialWorkloadWithoutKindFailsLoudly(t *testing.T) {
	_, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 5,
		Workload: WorkloadSpec{Every: 5, Waves: 3},
	})
	if err == nil || !strings.Contains(err.Error(), "does not take") {
		t.Errorf("kind-less parameterized workload: err = %v", err)
	}
	// A kind-less spec with only the holes parameter is the default
	// workload with a pinned hole count — valid.
	res, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 10, Seed: 2,
		Workload: WorkloadSpec{Holes: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HolesBefore != 2 {
		t.Errorf("pinned holes = %d, want 2", res.HolesBefore)
	}
}

func TestCampaignSpecWorkloadJSONRoundTrip(t *testing.T) {
	in := `{
		"schemes": ["SR"],
		"grids": [{"cols": 8, "rows": 8}],
		"spares": [10],
		"workloads": [
			{"kind": "churn", "holes": 3, "every": 5},
			{"kind": "depletion", "budget": 40, "per_meter": 0.5}
		],
		"runners": ["sync", "async"],
		"replicates": 2,
		"seed": 9
	}`
	var spec CampaignSpec
	if err := json.Unmarshal([]byte(in), &spec); err != nil {
		t.Fatal(err)
	}
	if len(spec.Workloads) != 2 || spec.Workloads[0].Kind != WorkloadChurn ||
		spec.Workloads[0].Every != 5 || spec.Workloads[1].Budget != 40 {
		t.Errorf("workloads = %+v", spec.Workloads)
	}
	if len(spec.Runners) != 2 || spec.Runners[1] != RunAsync {
		t.Errorf("runners = %v", spec.Runners)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back CampaignSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip:\n%+v\n%+v", spec, back)
	}
	if err := json.Unmarshal([]byte(`{"runners": ["warp"]}`), &spec); err == nil {
		t.Error("bad runner name should fail")
	}

	// A legacy spec marshals without the new dimensions, so pre-redesign
	// manifests and freshly written ones stay mergeable.
	legacy := CampaignSpec{Failures: []FailureMode{FailJam}, Replicates: 2}
	raw, err := json.Marshal(legacy.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "workloads") || strings.Contains(string(raw), "runners") {
		t.Errorf("legacy spec marshals new dimensions: %s", raw)
	}
}

// TestJobSpaceWorkloadRunnerAxes pins the job indexing of the new axes:
// nested order (workload, runner, grid, holes, scheme, spares,
// replicate), holes-dimension collapse for workloads that pin their own
// hole count, and paired seeds across every cell.
func TestJobSpaceWorkloadRunnerAxes(t *testing.T) {
	spec := CampaignSpec{
		Schemes:    []SchemeKind{SR},
		Grids:      []GridSize{{8, 8}},
		Spares:     []int{5, 10},
		Holes:      []int{1, 2},
		Workloads:  []WorkloadSpec{{Kind: WorkloadChurn}, {Kind: WorkloadChurn, Holes: 3}},
		Runners:    []RunnerKind{RunSync, RunAsync},
		Replicates: 2,
		BaseSeed:   8,
	}
	jobs := spec.Jobs()
	// First churn sweeps the holes dimension; the pinned one collapses it.
	want := (1*2*1*2*2)*2 + (1*1*1*2*2)*2
	if len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	js := spec.JobSpace()
	if js.Len() != len(jobs) {
		t.Fatalf("JobSpace.Len = %d, want %d", js.Len(), len(jobs))
	}
	for i, j := range jobs {
		if !reflect.DeepEqual(js.At(i), j) {
			t.Fatalf("At(%d) = %+v, want %+v", i, js.At(i), j)
		}
		if j.Workload.Holes == 3 && j.Holes != 1 {
			t.Fatalf("pinned-holes workload sweeps holes dim: %+v", j)
		}
	}
	seeds := experiment.Seeds(8, 2)
	for _, j := range jobs {
		if j.Seed != seeds[j.Replicate] {
			t.Fatalf("job %+v seed mismatch", j)
		}
	}
	// Runner nests inside workload: the first half of each workload
	// block is sync, the second async.
	if jobs[0].Runner != RunSync || jobs[8].Runner != RunAsync {
		t.Errorf("runner nesting: jobs[0]=%v jobs[8]=%v", jobs[0].Runner, jobs[8].Runner)
	}
}
