package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"wsncover/internal/experiment"
)

// GridSize is one grid-system dimension of a campaign.
type GridSize struct {
	Cols int `json:"cols"`
	Rows int `json:"rows"`
}

// String implements fmt.Stringer.
func (g GridSize) String() string { return fmt.Sprintf("%dx%d", g.Cols, g.Rows) }

// ParseGridSize inverts String strictly: "CxR" with nothing else.
func ParseGridSize(s string) (GridSize, error) {
	c, r, ok := strings.Cut(strings.TrimSpace(s), "x")
	cols, errC := strconv.Atoi(c)
	rows, errR := strconv.Atoi(r)
	if !ok || errC != nil || errR != nil {
		return GridSize{}, fmt.Errorf("sim: bad grid size %q (want e.g. 16x16)", s)
	}
	return GridSize{Cols: cols, Rows: rows}, nil
}

// CampaignSpec describes a multi-dimensional Monte-Carlo campaign: the
// cross product of schemes, grid sizes, spare counts, hole counts,
// workloads, and runners, each cell replicated Replicates times. The
// JSON form is what cmd/sweep reads as a spec file.
type CampaignSpec struct {
	// Schemes to compare; empty means SR and AR (the paper's pairing).
	Schemes []SchemeKind `json:"schemes,omitempty"`
	// Grids to evaluate; empty means the paper's 16x16.
	Grids []GridSize `json:"grids,omitempty"`
	// Spares lists the swept spare counts N; empty means PaperNs.
	Spares []int `json:"spares,omitempty"`
	// Holes lists simultaneous hole counts; empty means {1}. Ignored by
	// workloads that do not scale with it (jam, or any workload pinning
	// its own hole count).
	Holes []int `json:"holes,omitempty"`
	// Failures lists damage models via the legacy enum; kept so existing
	// spec files keep working. A spec sets Failures or Workloads, never
	// both. Empty (with Workloads also empty) means {FailHoles}.
	Failures []FailureMode `json:"failures,omitempty"`
	// Workloads lists damage models as named workload specs — the
	// composable successor of Failures. Each entry is one value of the
	// campaign's damage dimension.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Runners lists trial runners (sync rounds, async event stepping);
	// empty means {sync}. The async runner supports SR only.
	Runners []RunnerKind `json:"runners,omitempty"`
	// ClaimTTLs sweeps the claim-expiry knob as a campaign dimension
	// (the lossy-radio robustness axis). Empty means {0}: claims never
	// expire, the paper's reliable-channel model. Non-zero TTLs require
	// SR-family schemes and the sync runner. A workload's own TTL field
	// overrides the swept value for its trials.
	ClaimTTLs []int `json:"claim_ttls,omitempty"`
	// Replicates is the trial count per cell; zero means 20.
	Replicates int `json:"replicates,omitempty"`
	// BaseSeed anchors the deterministic per-replicate seed derivation.
	BaseSeed int64 `json:"seed,omitempty"`
	// Workers sizes the worker pool; values below 1 mean GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// ShardFirst and ShardCount restrict execution to the replicate
	// subrange [ShardFirst, ShardFirst+ShardCount) of every cell, for
	// sharding one campaign across processes or machines. Replicate
	// seeds always derive from the full [0, Replicates) range, so a
	// shard's trials are byte-identical to the same replicates of the
	// unsharded campaign and disjoint shard manifests stitch back
	// together (cmd/sweep -merge). A zero ShardCount means the full
	// range.
	ShardFirst int `json:"shard_first,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// FreshBuild routes every trial through the fresh world-building
	// path instead of the pooled per-worker TrialArena. Results are
	// byte-identical either way (the differential tests compare whole
	// manifests); the knob exists for those tests and for debugging
	// suspected pooling issues in the field.
	FreshBuild bool `json:"fresh_build,omitempty"`
	// CommRange, JamRadius, AdjacentHolesOK, ARInitProb, and ARMaxHops
	// pass through to every trial (zero values mean the trial defaults).
	CommRange       float64 `json:"comm_range,omitempty"`
	JamRadius       float64 `json:"jam_radius,omitempty"`
	AdjacentHolesOK bool    `json:"adjacent_holes_ok,omitempty"`
	ARInitProb      float64 `json:"ar_init_prob,omitempty"`
	ARMaxHops       int     `json:"ar_max_hops,omitempty"`

	// legacyDetect forces every trial onto the reference full-scan
	// detectors; set only by the differential tests that prove the
	// event-driven detectors reproduce the seed's campaign output byte
	// for byte.
	legacyDetect bool
	// legacyAssembly routes every trial through the pre-workload
	// assembly path (ApplyDamage + RunToConvergence); set only by the
	// differential tests that prove the workload path reproduces the
	// enum path byte for byte.
	legacyAssembly bool
}

func (s *CampaignSpec) normalize() {
	if len(s.Schemes) == 0 {
		s.Schemes = []SchemeKind{SR, AR}
	}
	if len(s.Grids) == 0 {
		s.Grids = []GridSize{{16, 16}}
	}
	if len(s.Spares) == 0 {
		s.Spares = PaperNs()
	}
	if len(s.Holes) == 0 {
		s.Holes = []int{1}
	}
	if len(s.Failures) == 0 && len(s.Workloads) == 0 {
		s.Failures = []FailureMode{FailHoles}
	}
	if s.Replicates == 0 {
		s.Replicates = 20
	}
}

// Validate rejects specs the job space cannot execute: conflicting
// damage dimensions, unregistered workload kinds, and runner/scheme
// pairings the trial assembly would refuse. RunCampaignStream validates
// automatically; CLIs call it early for friendlier errors.
func (s CampaignSpec) Validate() error {
	s.normalize()
	if len(s.Failures) > 0 && len(s.Workloads) > 0 {
		return fmt.Errorf("sim: campaign sets both failures and workloads; use workloads")
	}
	for _, w := range s.workloadDim() {
		if _, err := BuildWorkload(w); err != nil {
			return err
		}
	}
	if s.ShardFirst < 0 || s.ShardCount < 0 {
		return fmt.Errorf("sim: negative shard range [%d, +%d)", s.ShardFirst, s.ShardCount)
	}
	if s.ShardCount == 0 && s.ShardFirst != 0 {
		return fmt.Errorf("sim: shard_first %d without shard_count", s.ShardFirst)
	}
	if s.ShardCount > 0 && s.ShardFirst+s.ShardCount > s.Replicates {
		return fmt.Errorf("sim: shard range [%d, %d) exceeds %d replicates",
			s.ShardFirst, s.ShardFirst+s.ShardCount, s.Replicates)
	}
	for _, r := range s.runnerDim() {
		if r != RunSync && r != RunAsync {
			return fmt.Errorf("sim: unknown runner %v", r)
		}
		if r != RunAsync {
			continue
		}
		for _, k := range s.Schemes {
			if k != SR {
				return fmt.Errorf("sim: the async runner supports the SR scheme only; "+
					"scheme %v cannot share a campaign with runner async", k)
			}
		}
	}
	for _, ttl := range s.ClaimTTLs {
		if ttl < 0 {
			return fmt.Errorf("sim: negative claim TTL %d", ttl)
		}
		if ttl == 0 {
			continue
		}
		for _, k := range s.Schemes {
			if k != SR && k != SRShortcut {
				return fmt.Errorf("sim: claim_ttls is an SR-family dimension; "+
					"scheme %v cannot share a campaign with claim TTL %d", k, ttl)
			}
		}
		for _, r := range s.runnerDim() {
			if r != RunSync {
				return fmt.Errorf("sim: claim_ttls requires the sync runner, not %v", r)
			}
		}
	}
	return nil
}

// ValidateUnsharded is the submission surface for services and caches
// that address whole campaigns: Validate plus a rejection of specs
// pinning a replicate shard range. A shard spec's manifest covers only
// a slice of the campaign, so content-addressing it under the full
// campaign's spec hash — which deliberately ignores shard layout —
// would poison the cache with partial results.
func (s CampaignSpec) ValidateUnsharded() error {
	if s.ShardFirst != 0 || s.ShardCount != 0 {
		return fmt.Errorf("sim: campaign pins the replicate shard range [%d, +%d); "+
			"submit the unsharded spec and let the service split it", s.ShardFirst, s.ShardCount)
	}
	return s.Validate()
}

// workloadDim resolves the campaign's damage dimension: the explicit
// Workloads list, or the legacy Failures enum mapped onto its workload
// re-expressions. The mapping preserves order, so legacy specs keep
// their job indexing.
func (s CampaignSpec) workloadDim() []WorkloadSpec {
	if len(s.Workloads) > 0 {
		return s.Workloads
	}
	out := make([]WorkloadSpec, len(s.Failures))
	for i, f := range s.Failures {
		out[i] = WorkloadSpec{Kind: f.String()}
	}
	return out
}

// ttlDim resolves the claim-TTL dimension; empty means {0} (claims
// never expire), so legacy specs keep their job indexing.
func (s CampaignSpec) ttlDim() []int {
	if len(s.ClaimTTLs) > 0 {
		return s.ClaimTTLs
	}
	return []int{0}
}

// runnerDim resolves the runner dimension; empty means sync only.
func (s CampaignSpec) runnerDim() []RunnerKind {
	if len(s.Runners) > 0 {
		return s.Runners
	}
	return []RunnerKind{RunSync}
}

// Normalized returns the spec with every empty dimension replaced by
// its default — the form Jobs and RunCampaign actually execute, and the
// one to echo into artifact labels and manifests.
func (s CampaignSpec) Normalized() CampaignSpec {
	s.normalize()
	return s
}

// UnmarshalSpecJSON decodes a campaign spec strictly: unknown fields are
// an error, so a typoed dimension name fails loudly instead of silently
// running the default campaign. cmd/sweep's -spec files and the
// dispatch driver's generated shard specs both decode through this.
func UnmarshalSpecJSON(data []byte, spec *CampaignSpec) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("sim: campaign spec: %w", err)
	}
	return nil
}

// TrialJob is one fully resolved cell replicate of a campaign: every
// sweep dimension pinned plus the pre-derived seed, so executing it is a
// pure function of the job itself. The job is a plain value; its
// workload is identified by its spec, not a constructed instance. (It
// stopped being comparable with == when workload specs grew recursive
// Children; compare jobs with reflect.DeepEqual.)
type TrialJob struct {
	Scheme    SchemeKind
	Grid      GridSize
	Spares    int
	Holes     int
	Workload  WorkloadSpec
	Runner    RunnerKind
	ClaimTTL  int
	Replicate int
	Seed      int64
}

// Group names the curve this job belongs to in aggregated output: every
// dimension except the X axis (spares) and the replicate. Legacy
// dimensions keep their historical labels ("SR 16x16", "... jam",
// "... holes=3"); workload parameters and the async runner extend them.
func (j TrialJob) Group() string {
	g := fmt.Sprintf("%s %s", j.Scheme, j.Grid)
	if lbl := j.Workload.groupLabel(j.Holes); lbl != "" {
		g += " " + lbl
	}
	if j.Runner != RunSync {
		g += " " + j.Runner.String()
	}
	if j.ClaimTTL != 0 {
		g += fmt.Sprintf(" ttl=%d", j.ClaimTTL)
	}
	return g
}

// config resolves the job into a runnable trial configuration.
func (j TrialJob) config(s CampaignSpec) TrialConfig {
	return TrialConfig{
		Cols:            j.Grid.Cols,
		Rows:            j.Grid.Rows,
		CommRange:       s.CommRange,
		Spares:          j.Spares,
		Holes:           j.Holes,
		AdjacentHolesOK: s.AdjacentHolesOK,
		Workload:        j.Workload,
		Runner:          j.Runner,
		ClaimTTL:        j.ClaimTTL,
		JamRadius:       s.JamRadius,
		Scheme:          j.Scheme,
		Seed:            j.Seed,
		ARInitProb:      s.ARInitProb,
		ARMaxHops:       s.ARMaxHops,
		LegacyDetect:    s.legacyDetect,
		LegacyAssembly:  s.legacyAssembly,
	}
}

// JobSpace is the lazily indexed job space of a normalized spec: job i is
// computed arithmetically from its index instead of materializing the
// whole cross product, so a 10^6-trial campaign costs O(replicates) setup
// memory (the shared seed table), not O(trials).
type JobSpace struct {
	spec   CampaignSpec
	seeds  []int64
	blocks []jobBlock
	total  int
}

// jobBlock is one (workload, runner, claim TTL) triple's contiguous
// index range.
type jobBlock struct {
	workload WorkloadSpec
	runner   RunnerKind
	ttl      int
	holes    []int
	start    int
	size     int
}

// JobSpace normalizes the spec and indexes its job list in the fixed
// nested order (workload, runner, ttl, grid, holes, scheme, spares,
// replicate); legacy specs — one sync runner, the {0} TTL dimension,
// workloads derived from Failures — keep the pre-redesign indexing
// exactly. Replicate r uses the r-th seed derived from BaseSeed across
// every cell, so all schemes and configurations face statistically
// paired layouts, mirroring the paper's methodology of comparing SR and
// AR on identical damage.
func (s CampaignSpec) JobSpace() JobSpace {
	s.normalize()
	js := JobSpace{spec: s, seeds: experiment.Seeds(s.BaseSeed, s.Replicates)}
	for _, wl := range s.workloadDim() {
		// A workload that does not scale with the holes dimension (jam's
		// disc decides; a pinned hole count overrides) collapses it, so
		// the campaign never replicates identical (config, seed) jobs
		// that would deflate the group's confidence intervals.
		holesDim := s.Holes
		if !wl.usesHolesDim() {
			holesDim = []int{1}
		}
		for _, runner := range s.runnerDim() {
			for _, ttl := range s.ttlDim() {
				size := len(s.Grids) * len(holesDim) * len(s.Schemes) * len(s.Spares) * s.Replicates
				js.blocks = append(js.blocks, jobBlock{
					workload: wl, runner: runner, ttl: ttl, holes: holesDim, start: js.total, size: size,
				})
				js.total += size
			}
		}
	}
	return js
}

// Len returns the total number of jobs.
func (js JobSpace) Len() int { return js.total }

// At returns job i. It panics when i is out of range.
func (js JobSpace) At(i int) TrialJob {
	if i < 0 || i >= js.total {
		panic(fmt.Sprintf("sim: job index %d outside [0, %d)", i, js.total))
	}
	var blk jobBlock
	for _, b := range js.blocks {
		if i < b.start+b.size {
			blk = b
			break
		}
	}
	s := js.spec
	j := i - blk.start
	r := j % s.Replicates
	j /= s.Replicates
	spares := s.Spares[j%len(s.Spares)]
	j /= len(s.Spares)
	scheme := s.Schemes[j%len(s.Schemes)]
	j /= len(s.Schemes)
	holes := blk.holes[j%len(blk.holes)]
	j /= len(blk.holes)
	return TrialJob{
		Scheme:    scheme,
		Grid:      s.Grids[j],
		Spares:    spares,
		Holes:     holes,
		Workload:  blk.workload,
		Runner:    blk.runner,
		ClaimTTL:  blk.ttl,
		Replicate: r,
		Seed:      js.seeds[r],
	}
}

// NumJobs returns the job count of the normalized spec without expanding
// it.
func (s CampaignSpec) NumJobs() int { return s.JobSpace().Len() }

// jobFilter wraps keep with the spec's replicate shard range. It is the
// single definition of "which jobs execute": RunCampaignSubset applies
// it, and ExecutedJobs exposes the same set to callers sizing progress
// displays, so the two can never drift apart.
func (s CampaignSpec) jobFilter(keep func(TrialJob) bool) func(TrialJob) bool {
	if s.ShardCount == 0 {
		return keep
	}
	lo, hi := s.ShardFirst, s.ShardFirst+s.ShardCount
	return func(j TrialJob) bool {
		return j.Replicate >= lo && j.Replicate < hi && (keep == nil || keep(j))
	}
}

// ExecutedJobs calls fn for every job RunCampaignSubset would execute
// under keep (nil keeps every job) — the shard range applied — in
// job-index order. cmd/sweep sizes its progress meter and shard
// manifests with it.
func (s CampaignSpec) ExecutedJobs(keep func(TrialJob) bool, fn func(TrialJob)) {
	s.normalize()
	js := s.JobSpace()
	admit := s.jobFilter(keep)
	for i := 0; i < js.Len(); i++ {
		j := js.At(i)
		if admit == nil || admit(j) {
			fn(j)
		}
	}
}

// Jobs materializes the spec's job list. Prefer JobSpace for large
// campaigns; Jobs exists for inspection and tests.
func (s CampaignSpec) Jobs() []TrialJob {
	js := s.JobSpace()
	jobs := make([]TrialJob, js.Len())
	for i := range jobs {
		jobs[i] = js.At(i)
	}
	return jobs
}

// SampleOf converts one trial outcome into the engine's aggregation
// currency: the job's curve identity, the spare count as X, and the
// per-trial metrics the paper's figures are built from.
func SampleOf(j TrialJob, res TrialResult) experiment.Sample {
	recovered := 0.0
	if res.Complete {
		recovered = 1
	}
	return experiment.Sample{
		Group: j.Group(),
		X:     float64(j.Spares),
		Values: map[string]float64{
			"initiated":    float64(res.Summary.Initiated),
			"moves":        float64(res.Summary.Moves),
			"distance":     res.Summary.Distance,
			"messages":     float64(res.Summary.Messages),
			"success_rate": res.Summary.SuccessRate(),
			"recovered":    recovered,
			"rounds":       float64(res.Rounds),
			"holes_before": float64(res.HolesBefore),
			"holes_after":  float64(res.HolesAfter),
		},
	}
}

// RunCampaignStream executes every job of the spec on the parallel engine
// and hands each trial's sample to sink in job-index order, never
// retaining a TrialResult: each result is converted to its Sample inside
// the worker and dropped once sunk. opts.Workers defaults to the spec's
// Workers field when unset; the sink sees a bit-identical stream for any
// worker count. A sink error aborts the campaign.
func RunCampaignStream(ctx context.Context, spec CampaignSpec, opts experiment.Options, sink func(TrialJob, experiment.Sample) error) error {
	return RunCampaignSubset(ctx, spec, opts, nil, sink)
}

// RunCampaignSubset is RunCampaignStream restricted to the jobs keep
// admits (nil keeps every job). Skipped jobs cost no work and do not
// reach the sink; the surviving jobs still execute and deliver in
// job-index order, so a subset campaign is bit-identical to the
// corresponding slice of the full stream — the property cmd/sweep
// -resume relies on when it merges a partial rerun into an existing
// manifest, and the spec's shard range relies on for cross-process
// stitching.
//
// Each worker goroutine runs its trials inside a pooled TrialArena
// (unless spec.FreshBuild), so consecutive replicates of a campaign
// group reuse the previous trial's memory instead of rebuilding the
// world; the differential tests pin that pooling never changes a byte
// of output.
func RunCampaignSubset(ctx context.Context, spec CampaignSpec, opts experiment.Options, keep func(TrialJob) bool, sink func(TrialJob, experiment.Sample) error) error {
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return err
	}
	jobs := spec.JobSpace()
	if opts.Workers == 0 {
		opts.Workers = spec.Workers
	}
	keep = spec.jobFilter(keep)
	index := func(i int) int { return i }
	total := jobs.Len()
	if keep != nil {
		included := make([]int, 0, total)
		for i := 0; i < total; i++ {
			if keep(jobs.At(i)) {
				included = append(included, i)
			}
		}
		index = func(i int) int { return included[i] }
		total = len(included)
	}
	arenas := make([]*TrialArena, opts.WorkerCount(total))
	return experiment.RunStreamWorkers(ctx, total, opts,
		func(_ context.Context, w, i int) (experiment.Sample, error) {
			j := jobs.At(index(i))
			var res TrialResult
			var err error
			if spec.FreshBuild {
				res, err = RunTrial(j.config(spec))
			} else {
				if arenas[w] == nil {
					arenas[w] = NewTrialArena()
				}
				res, err = arenas[w].RunTrial(j.config(spec))
			}
			if err != nil {
				return experiment.Sample{}, fmt.Errorf("%s N=%d replicate %d: %w",
					j.Group(), j.Spares, j.Replicate, err)
			}
			return SampleOf(j, res), nil
		},
		func(i int, s experiment.Sample) error { return sink(jobs.At(index(i)), s) })
}

// RunCampaign executes the spec and aggregates online: every trial's
// sample streams into per-(group, N) Welford accumulators, so memory is
// O(groups) no matter the replicate count — a million-trial campaign
// holds neither its TrialResults nor its Samples. The returned points are
// sorted like experiment.Aggregate's and bit-identical for any worker
// count. Callers needing the raw per-trial stream use RunCampaignStream
// (or RunCampaignSamples to collect it).
func RunCampaign(ctx context.Context, spec CampaignSpec, opts experiment.Options) ([]experiment.Point, error) {
	acc := experiment.NewAccumulator()
	err := RunCampaignStream(ctx, spec, opts, func(_ TrialJob, s experiment.Sample) error {
		acc.Add(s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc.Points(), nil
}

// RunCampaignSamples collects the campaign's per-trial samples in job
// order. Memory is O(trials); prefer RunCampaign unless the individual
// replicates are needed (exact-median aggregation, differential tests,
// custom statistics).
func RunCampaignSamples(ctx context.Context, spec CampaignSpec, opts experiment.Options) ([]experiment.Sample, error) {
	samples := make([]experiment.Sample, 0, spec.NumJobs())
	err := RunCampaignStream(ctx, spec, opts, func(_ TrialJob, s experiment.Sample) error {
		samples = append(samples, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}
