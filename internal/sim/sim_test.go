package sim

import (
	"testing"

	"wsncover/internal/analytic"
)

func TestTrialConfigValidation(t *testing.T) {
	bad := []TrialConfig{
		{Cols: 1, Rows: 5, Scheme: SR},
		{Cols: 16, Rows: 16}, // missing scheme
		{Cols: 16, Rows: 16, Scheme: SchemeKind(9)},
		{Cols: 16, Rows: 16, Scheme: SR, Spares: -1},
	}
	for i, cfg := range bad {
		if _, err := RunTrial(cfg); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestSchemeKindString(t *testing.T) {
	if SR.String() != "SR" || AR.String() != "AR" || SRShortcut.String() != "SR+shortcut" {
		t.Error("SchemeKind strings")
	}
	if SchemeKind(42).String() == "" {
		t.Error("invalid kind should render")
	}
}

func TestRunTrialSRBasics(t *testing.T) {
	res, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Holes: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HolesBefore != 2 {
		t.Errorf("HolesBefore = %d", res.HolesBefore)
	}
	if res.HolesAfter != 0 || !res.Complete || !res.Connected {
		t.Errorf("result = %+v", res)
	}
	if res.Summary.Initiated != 2 || res.Summary.Converged != 2 {
		t.Errorf("summary = %v", res.Summary)
	}
	if res.Rounds < 1 {
		t.Error("no rounds recorded")
	}
}

func TestRunTrialDeterministicPerSeed(t *testing.T) {
	cfg := TrialConfig{Cols: 8, Rows: 8, Scheme: AR, Spares: 15, Holes: 2, Seed: 11}
	a, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary || a.Rounds != b.Rounds {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 12
	c, err := RunTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary == c.Summary && a.Rounds == c.Rounds {
		t.Log("different seeds coincided (possible but suspicious)")
	}
}

func TestRunTrialDualPathGrid(t *testing.T) {
	// Odd x odd grid exercises Algorithm 2 end to end.
	res, err := RunTrial(TrialConfig{
		Cols: 5, Rows: 5, Scheme: SR, Spares: 4, Holes: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("dual-path recovery incomplete: %+v", res)
	}
	if res.Summary.SuccessRate() != 100 {
		t.Errorf("success = %v", res.Summary.SuccessRate())
	}
}

func TestRunTrialZeroSpares(t *testing.T) {
	res, err := RunTrial(TrialConfig{
		Cols: 6, Rows: 6, Scheme: SR, Spares: 0, Holes: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("cannot recover without spares")
	}
	if res.Summary.Failed != 1 {
		t.Errorf("summary = %v", res.Summary)
	}
}

func TestRunSweepShape(t *testing.T) {
	pts, err := RunSweep(SweepConfig{
		Template: TrialConfig{Cols: 8, Rows: 8, Scheme: SR},
		Ns:       []int{5, 20},
		Trials:   5,
		BaseSeed: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Trials != 5 {
			t.Errorf("N=%d trials = %d", p.N, p.Trials)
		}
		if p.Summary.Initiated != 5 {
			t.Errorf("N=%d initiated = %d, want 5 (one per trial)", p.N, p.Summary.Initiated)
		}
		if p.Recovered != 5 {
			t.Errorf("N=%d recovered = %d", p.N, p.Recovered)
		}
	}
	// More spares, fewer movements.
	if pts[0].MeanMovesPerTrial() < pts[1].MeanMovesPerTrial() {
		t.Errorf("moves should decrease with N: %v vs %v",
			pts[0].MeanMovesPerTrial(), pts[1].MeanMovesPerTrial())
	}
	if _, err := RunSweep(SweepConfig{Trials: 0}); err == nil {
		t.Error("zero trials should fail")
	}
}

func TestPaperNs(t *testing.T) {
	ns := PaperNs()
	if ns[0] != 10 || ns[len(ns)-1] != 1000 {
		t.Errorf("PaperNs = %v", ns)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Error("PaperNs must increase")
		}
	}
}

// TestPaperClaims is the calibration test: it verifies on the paper's
// 16x16 configuration that the reproduction exhibits the qualitative
// results of Section 5. Tolerances are generous because each point uses a
// modest trial budget.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	const trials = 40
	run := func(kind SchemeKind, n int) SweepPoint {
		pts, err := RunSweep(SweepConfig{
			Template: TrialConfig{Cols: 16, Rows: 16, Scheme: kind},
			Ns:       []int{n},
			Trials:   trials,
			BaseSeed: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0]
	}

	for _, n := range []int{10, 55, 200} {
		sr := run(SR, n)
		ar := run(AR, n)

		// Claim: SR initiates exactly one process per hole; AR more than
		// twice as many ("fewer than 50% replacement processes are
		// needed in SR").
		if sr.Summary.Initiated != trials {
			t.Errorf("N=%d: SR initiated %d, want %d", n, sr.Summary.Initiated, trials)
		}
		if ar.Summary.Initiated <= 2*sr.Summary.Initiated {
			t.Errorf("N=%d: AR initiated %d, want > 2x SR (%d)",
				n, ar.Summary.Initiated, sr.Summary.Initiated)
		}

		// Claim: the success rate is always 100%% in SR.
		if sr.Summary.SuccessRate() != 100 {
			t.Errorf("N=%d: SR success = %v", n, sr.Summary.SuccessRate())
		}
		if sr.Recovered != trials {
			t.Errorf("N=%d: SR recovered %d/%d", n, sr.Recovered, trials)
		}

		switch n {
		case 10:
			// Claim: when N < 55, SR needs more movements (long Hamilton
			// path) while AR gives up early.
			if sr.Summary.Moves <= ar.Summary.Moves {
				t.Errorf("N=10: SR moves %d should exceed AR %d",
					sr.Summary.Moves, ar.Summary.Moves)
			}
			if ar.Summary.SuccessRate() >= sr.Summary.SuccessRate() {
				t.Errorf("N=10: AR success %v should trail SR",
					ar.Summary.SuccessRate())
			}
		case 55:
			// Claim: around N=55 AR fails 10-20% of its processes.
			fail := 100 - ar.Summary.SuccessRate()
			if fail < 2 || fail > 30 {
				t.Errorf("N=55: AR failure rate %v%% outside the paper band", fail)
			}
		case 200:
			// Claim: when N >= 55 SR needs fewer movements and less
			// distance while keeping a higher success rate.
			if sr.Summary.Moves >= ar.Summary.Moves {
				t.Errorf("N=200: SR moves %d should be below AR %d",
					sr.Summary.Moves, ar.Summary.Moves)
			}
			if sr.Summary.Distance >= ar.Summary.Distance {
				t.Errorf("N=200: SR distance %v should be below AR %v",
					sr.Summary.Distance, ar.Summary.Distance)
			}
		}
	}
}

// TestSRMatchesAnalytic verifies Figure 7's claim that SR's experimental
// movement counts track the Theorem 2 prediction.
func TestSRMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep is slow")
	}
	const trials = 150
	for _, n := range []int{55, 200} {
		pts, err := RunSweep(SweepConfig{
			Template: TrialConfig{Cols: 16, Rows: 16, Scheme: SR},
			Ns:       []int{n},
			Trials:   trials,
			BaseSeed: 8000,
		})
		if err != nil {
			t.Fatal(err)
		}
		obs := pts[0].MeanMovesPerTrial()
		want, err := analytic.Moves(n, 255)
		if err != nil {
			t.Fatal(err)
		}
		ratio := obs / want
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("N=%d: observed %.2f moves/replacement vs analytic %.2f (ratio %.2f)",
				n, obs, want, ratio)
		}
	}
}

// TestSRDistanceMatchesEstimate verifies Figure 8's distance estimate:
// total distance ~ moves * 1.08 * r.
func TestSRDistanceMatchesEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep is slow")
	}
	pts, err := RunSweep(SweepConfig{
		Template: TrialConfig{Cols: 16, Rows: 16, Scheme: SR},
		Ns:       []int{100},
		Trials:   150,
		BaseSeed: 9000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := pts[0].Summary
	r := PaperCommRange / 2.2360679774997896
	perHop := s.Distance / float64(s.Moves)
	estimate := analytic.MeanHopDistanceFactor * r
	if perHop < 0.9*estimate || perHop > 1.1*estimate {
		t.Errorf("per-hop distance %.3f vs paper estimate %.3f", perHop, estimate)
	}
}

func TestBuildSchemeKinds(t *testing.T) {
	res, err := RunTrial(TrialConfig{Cols: 6, Rows: 6, Scheme: SRShortcut, Spares: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Error("shortcut scheme should also recover")
	}
}

func TestMultiHoleTrial(t *testing.T) {
	res, err := RunTrial(TrialConfig{
		Cols: 16, Rows: 16, Scheme: SR, Spares: 50, Holes: 8, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("8 simultaneous holes with 50 spares must recover: %+v", res)
	}
	if res.Summary.Initiated != 8 {
		t.Errorf("initiated = %d, want 8", res.Summary.Initiated)
	}
}

func TestAdjacentHolesTrial(t *testing.T) {
	res, err := RunTrial(TrialConfig{
		Cols: 8, Rows: 8, Scheme: SR, Spares: 20, Holes: 6,
		AdjacentHolesOK: true, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("adjacent holes must still recover: %+v", res)
	}
}
