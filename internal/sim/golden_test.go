package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// goldenCampaignHash pins the SHA-256 of the golden campaign's manifest
// bytes as produced by the pre-SoA (pointer-per-node, map-backed
// controller) substrate. The storage rewrite must reproduce it exactly:
// unlike the in-process differential tests, this constant crosses the
// refactor boundary, so "byte-identical to the previous substrate" is
// checkable long after the old code is gone. Regenerate (and justify in
// the PR) only when an intentional semantics change lands.
//
// The hash covers amd64/linux with the repo's pinned Go toolchain; the
// FNV/SplitMix RNG and float64 arithmetic used by trials are
// deterministic across conforming platforms, so a mismatch means a
// semantics change, not an environment difference.
const goldenCampaignHash = "390c2fc1946b13ffaec94c9196837f4f1b3a1cc8228e519c47705759b472dfff"

// goldenCampaignSpecs spans the axes the byte-identity contract promises:
// schemes x grids x workloads (legacy, adversarial, composed) x runners,
// with spare droughts and claim expiry in the mix.
func goldenCampaignSpecs() []CampaignSpec {
	return []CampaignSpec{
		{
			Schemes: []SchemeKind{SR, SRShortcut, AR},
			Grids:   []GridSize{{8, 8}, {9, 9}}, // cycle and dual path
			Spares:  []int{4, 20},
			Holes:   []int{1, 3},
			Workloads: []WorkloadSpec{
				{Kind: WorkloadHoles},
				{Kind: WorkloadJam},
				{Kind: WorkloadChurn, Every: 3, Waves: 2},
				{Kind: WorkloadDepletion, Budget: 20},
			},
			Replicates: 2,
			BaseSeed:   404,
		},
		{
			// Async runner alongside sync (SR only), plus a spare drought
			// so exhausted walks are in the golden image too.
			Schemes:    []SchemeKind{SR},
			Grids:      []GridSize{{8, 8}},
			Spares:     []int{0, 10},
			Runners:    []RunnerKind{RunSync, RunAsync},
			Replicates: 3,
			BaseSeed:   505,
		},
		{
			// The adversarial zoo: adaptive jamming, byzantine monitors
			// (claim expiry), lossy radio, resupply, and a composed phase
			// sequence.
			Schemes: []SchemeKind{SR},
			Grids:   []GridSize{{9, 9}},
			Spares:  []int{12},
			Workloads: []WorkloadSpec{
				{Kind: WorkloadMover, Every: 4, Waves: 2},
				{Kind: WorkloadByzantine, Frac: 0.2, Prob: 0.5, Count: 2},
				{Kind: WorkloadLossy, Loss: 0.2},
				{Kind: WorkloadResupply, Holes: 3, Batch: 5, At: 4},
				{Kind: WorkloadSequence, Every: 6, Children: []WorkloadSpec{
					{Kind: WorkloadJam},
					{Kind: WorkloadChurn, Every: 2, Waves: 2},
				}},
			},
			Replicates: 2,
			BaseSeed:   606,
		},
	}
}

// TestGoldenCampaignManifestHash is the cross-PR anchor of the SoA
// rewrite's "no observable change" contract. It runs the golden campaign
// pooled and fresh at workers {1,4}, requires all four byte-identical,
// and checks the shared image against the pinned pre-refactor hash.
func TestGoldenCampaignManifestHash(t *testing.T) {
	h := sha256.New()
	for i, spec := range goldenCampaignSpecs() {
		ref := pooledManifestBytes(t, spec, false, 1)
		for _, workers := range []int{4} {
			if got := pooledManifestBytes(t, spec, false, workers); !bytes.Equal(got, ref) {
				t.Errorf("spec %d: pooled manifest differs at workers=%d", i, workers)
			}
		}
		for _, workers := range []int{1, 4} {
			if got := pooledManifestBytes(t, spec, true, workers); !bytes.Equal(got, ref) {
				t.Errorf("spec %d: fresh manifest differs from pooled at workers=%d", i, workers)
			}
		}
		h.Write(ref)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	if sum != goldenCampaignHash {
		t.Errorf("golden campaign hash %s, want %s", sum, goldenCampaignHash)
	}
}
