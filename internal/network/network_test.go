package network

import (
	"math"
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

func newNet(t *testing.T, cols, rows int, cell float64) *Network {
	t.Helper()
	sys, err := grid.New(cols, rows, cell, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return New(sys, node.EnergyModel{})
}

func addAt(t *testing.T, w *Network, p geom.Point) node.ID {
	t.Helper()
	id, err := w.AddNodeAt(p)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAddNodeAt(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	id := addAt(t, w, geom.Pt(0.5, 0.5))
	if id != 0 {
		t.Errorf("first id = %d", id)
	}
	if w.NumNodes() != 1 || w.EnabledCount() != 1 {
		t.Error("counts wrong")
	}
	c, ok := w.CellOf(id)
	if !ok || c != grid.C(0, 0) {
		t.Errorf("CellOf = %v, %v", c, ok)
	}
	if _, err := w.AddNodeAt(geom.Pt(-1, 0)); err == nil {
		t.Error("off-field add should fail")
	}
	if w.Node(node.ID(99)).Valid() {
		t.Error("unknown id should yield an invalid ref")
	}
	if _, ok := w.CellOf(node.ID(99)); ok {
		t.Error("unknown id should have no cell")
	}
}

func TestElectHeadsPicksCenterClosest(t *testing.T) {
	w := newNet(t, 2, 2, 2)
	far := addAt(t, w, geom.Pt(0.1, 0.1))
	near := addAt(t, w, geom.Pt(1.1, 0.9)) // closer to center (1,1)
	w.ElectHeads()
	if got := w.HeadOf(grid.C(0, 0)); got != near {
		t.Errorf("head = %v, want %v (closest to center)", got, near)
	}
	if w.Node(near).Role() != node.Head {
		t.Error("elected node should carry Head role")
	}
	if w.Node(far).Role() != node.Spare {
		t.Error("other node should be spare")
	}
	if w.HeadOf(grid.C(1, 1)) != node.Invalid {
		t.Error("empty cell should have no head")
	}
}

func TestVacancyAndSpares(t *testing.T) {
	w := newNet(t, 3, 3, 1)
	h := addAt(t, w, geom.Pt(0.5, 0.5))
	s1 := addAt(t, w, geom.Pt(0.2, 0.2))
	s2 := addAt(t, w, geom.Pt(0.8, 0.8))
	w.ElectHeads()

	if w.IsVacant(grid.C(0, 0)) {
		t.Error("occupied cell reported vacant")
	}
	if !w.IsVacant(grid.C(2, 2)) {
		t.Error("empty cell not reported vacant")
	}
	if got := w.SpareCount(grid.C(0, 0)); got != 2 {
		t.Errorf("SpareCount = %d, want 2", got)
	}
	if !w.HasSpare(grid.C(0, 0)) {
		t.Error("HasSpare should be true")
	}
	spares := w.Spares(nil, grid.C(0, 0))
	if len(spares) != 2 {
		t.Fatalf("Spares = %v", spares)
	}
	for _, id := range spares {
		if id == w.HeadOf(grid.C(0, 0)) {
			t.Error("head listed among spares")
		}
	}
	if got := w.TotalSpares(); got != 2 {
		t.Errorf("TotalSpares = %d, want 2", got)
	}
	_ = h
	_ = s1
	_ = s2
}

func TestSpareNearest(t *testing.T) {
	w := newNet(t, 2, 1, 10)
	addAt(t, w, geom.Pt(5, 5)) // becomes head (center)
	far := addAt(t, w, geom.Pt(1, 1))
	near := addAt(t, w, geom.Pt(9, 9))
	w.ElectHeads()
	target := geom.Pt(15, 5)
	if got := w.SpareNearest(grid.C(0, 0), target); got != near {
		t.Errorf("SpareNearest = %v, want %v", got, near)
	}
	if got := w.SpareNearest(grid.C(1, 0), target); got != node.Invalid {
		t.Errorf("SpareNearest on empty cell = %v", got)
	}
	_ = far
}

func TestDisableNode(t *testing.T) {
	w := newNet(t, 2, 2, 1)
	h := addAt(t, w, geom.Pt(0.5, 0.5))
	s := addAt(t, w, geom.Pt(0.4, 0.4))
	w.ElectHeads()
	if w.HeadOf(grid.C(0, 0)) != h {
		t.Fatalf("unexpected head")
	}
	// Disabling the head promotes the spare immediately.
	if err := w.DisableNode(h); err != nil {
		t.Fatal(err)
	}
	if got := w.HeadOf(grid.C(0, 0)); got != s {
		t.Errorf("after disable head = %v, want %v", got, s)
	}
	if w.EnabledCount() != 1 {
		t.Errorf("EnabledCount = %d", w.EnabledCount())
	}
	// Disabling the last node leaves the cell vacant.
	if err := w.DisableNode(s); err != nil {
		t.Fatal(err)
	}
	if !w.IsVacant(grid.C(0, 0)) {
		t.Error("cell should be vacant")
	}
	// Idempotent on already-disabled nodes; error on unknown ids.
	if err := w.DisableNode(h); err != nil {
		t.Errorf("re-disable: %v", err)
	}
	if err := w.DisableNode(node.ID(42)); err == nil {
		t.Error("unknown id should error")
	}
}

func TestDisableAllInCell(t *testing.T) {
	w := newNet(t, 2, 2, 1)
	addAt(t, w, geom.Pt(0.5, 0.5))
	addAt(t, w, geom.Pt(0.2, 0.8))
	addAt(t, w, geom.Pt(1.5, 0.5))
	w.ElectHeads()
	if got := w.DisableAllInCell(grid.C(0, 0)); got != 2 {
		t.Errorf("disabled %d, want 2", got)
	}
	if !w.IsVacant(grid.C(0, 0)) {
		t.Error("cell should be vacant")
	}
	if w.IsVacant(grid.C(1, 0)) {
		t.Error("other cell untouched")
	}
	vac := w.VacantCells(nil)
	if len(vac) != 3 { // (0,0) plus the two never-populated cells
		t.Errorf("VacantCells = %v", vac)
	}
}

func TestRotateHead(t *testing.T) {
	w := newNet(t, 1, 1, 1)
	a := addAt(t, w, geom.Pt(0.5, 0.5))
	b := addAt(t, w, geom.Pt(0.1, 0.1))
	w.ElectHeads()
	first := w.HeadOf(grid.C(0, 0))
	next := w.RotateHead(grid.C(0, 0))
	if next == first {
		t.Error("rotation should change the head")
	}
	if w.Node(first).Role() != node.Spare || w.Node(next).Role() != node.Head {
		t.Error("roles not swapped")
	}
	_ = a
	_ = b

	// Rotation with a single node is a no-op.
	w2 := newNet(t, 1, 1, 1)
	only := addAt(t, w2, geom.Pt(0.5, 0.5))
	w2.ElectHeads()
	if got := w2.RotateHead(grid.C(0, 0)); got != only {
		t.Errorf("single-node rotation = %v", got)
	}
}

func TestMoveNodeBetweenCells(t *testing.T) {
	w := newNet(t, 2, 1, 10)
	h := addAt(t, w, geom.Pt(5, 5))
	s := addAt(t, w, geom.Pt(2, 5))
	w.ElectHeads()

	// Spare moves into the vacant cell and is promoted to head there.
	if err := w.MoveNode(s, geom.Pt(15, 5)); err != nil {
		t.Fatal(err)
	}
	if got := w.HeadOf(grid.C(1, 0)); got != s {
		t.Errorf("mover should head the vacant cell, head = %v", got)
	}
	if w.Node(s).Role() != node.Head {
		t.Error("mover role should be Head")
	}
	if w.HeadOf(grid.C(0, 0)) != h {
		t.Error("origin head should be unchanged")
	}
	if w.TotalMoves() != 1 {
		t.Errorf("TotalMoves = %d", w.TotalMoves())
	}
	if math.Abs(w.TotalDistance()-13) > 1e-12 {
		t.Errorf("TotalDistance = %v, want 13", w.TotalDistance())
	}

	// Moving into an occupied cell demotes the mover to spare.
	if err := w.MoveNode(h, geom.Pt(14, 5)); err != nil {
		t.Fatal(err)
	}
	if w.Node(h).Role() != node.Spare {
		t.Error("mover into occupied cell should be spare")
	}
	if !w.IsVacant(grid.C(0, 0)) {
		t.Error("origin should now be vacant")
	}
}

func TestMoveHeadElectsReplacement(t *testing.T) {
	w := newNet(t, 2, 1, 10)
	addAt(t, w, geom.Pt(5, 5))
	spare := addAt(t, w, geom.Pt(2, 2))
	w.ElectHeads()
	head := w.HeadOf(grid.C(0, 0))
	if err := w.MoveNode(head, geom.Pt(15, 5)); err != nil {
		t.Fatal(err)
	}
	if got := w.HeadOf(grid.C(0, 0)); got != spare {
		t.Errorf("replacement head = %v, want %v", got, spare)
	}
}

func TestMoveNodeErrors(t *testing.T) {
	w := newNet(t, 2, 1, 10)
	id := addAt(t, w, geom.Pt(5, 5))
	w.ElectHeads()
	if err := w.MoveNode(node.ID(9), geom.Pt(1, 1)); err == nil {
		t.Error("unknown node should fail")
	}
	if err := w.MoveNode(id, geom.Pt(100, 100)); err == nil {
		t.Error("off-field target should fail")
	}
	w.Node(id).Disable()
	if err := w.MoveNode(id, geom.Pt(1, 1)); err == nil {
		t.Error("disabled node should fail to move")
	}
}

func TestMessaging(t *testing.T) {
	w := newNet(t, 3, 3, 1)
	msg := Message{From: grid.C(0, 0), To: grid.C(0, 1), Kind: 7, Process: 3}
	if err := w.Send(msg); err != nil {
		t.Fatal(err)
	}
	if len(w.Inbox()) != 0 {
		t.Error("message must not arrive in the sending round")
	}
	w.StepRound()
	in := w.Inbox()
	if len(in) != 1 || in[0] != msg {
		t.Errorf("Inbox = %v", in)
	}
	w.StepRound()
	if len(w.Inbox()) != 0 {
		t.Error("inbox should drain after the round")
	}
	if w.MessagesSent() != 1 {
		t.Errorf("MessagesSent = %d", w.MessagesSent())
	}
	if w.Round() != 2 {
		t.Errorf("Round = %d", w.Round())
	}
}

func TestSendValidation(t *testing.T) {
	w := newNet(t, 3, 3, 1)
	if err := w.Send(Message{From: grid.C(0, 0), To: grid.C(2, 2)}); err == nil {
		t.Error("non-adjacent send should fail")
	}
	if err := w.Send(Message{From: grid.C(0, 0), To: grid.C(0, -1)}); err == nil {
		t.Error("off-grid send should fail")
	}
	if err := w.Send(Message{From: grid.C(1, 1), To: grid.C(1, 1)}); err != nil {
		t.Errorf("self send should be allowed: %v", err)
	}
}

func TestRequeueMessage(t *testing.T) {
	w := newNet(t, 3, 3, 1)
	msg := Message{From: grid.C(0, 0), To: grid.C(0, 1)}
	if err := w.Send(msg); err != nil {
		t.Fatal(err)
	}
	w.StepRound()
	w.RequeueMessage(w.Inbox()[0])
	w.StepRound()
	if len(w.Inbox()) != 1 {
		t.Error("requeued message should arrive next round")
	}
	if w.MessagesSent() != 1 {
		t.Error("requeue must not recount the message")
	}
}

func TestHeadGraphConnected(t *testing.T) {
	w := newNet(t, 3, 1, 1)
	if w.HeadGraphConnected() {
		t.Error("no heads: disconnected")
	}
	addAt(t, w, geom.Pt(0.5, 0.5))
	w.ElectHeads()
	if !w.HeadGraphConnected() {
		t.Error("single head: connected")
	}
	addAt(t, w, geom.Pt(2.5, 0.5))
	w.ElectHeads()
	if w.HeadGraphConnected() {
		t.Error("heads in cells 0 and 2 with a gap: disconnected")
	}
	addAt(t, w, geom.Pt(1.5, 0.5))
	w.ElectHeads()
	if !w.HeadGraphConnected() {
		t.Error("full row of heads: connected")
	}
	if !w.AllHeadsPresent() {
		t.Error("all heads present")
	}
}

func TestAllHeadsPresent(t *testing.T) {
	w := newNet(t, 2, 1, 1)
	addAt(t, w, geom.Pt(0.5, 0.5))
	w.ElectHeads()
	if w.AllHeadsPresent() {
		t.Error("one vacant cell: not all heads")
	}
}

func TestNodesWithin(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	a := addAt(t, w, geom.Pt(0.5, 0.5))
	b := addAt(t, w, geom.Pt(1.2, 0.5))
	c := addAt(t, w, geom.Pt(3.5, 3.5))
	got := w.NodesWithin(nil, geom.Pt(0.5, 0.5), 1.0)
	if len(got) != 2 {
		t.Fatalf("NodesWithin = %v", got)
	}
	seen := map[node.ID]bool{}
	for _, id := range got {
		seen[id] = true
	}
	if !seen[a] || !seen[b] || seen[c] {
		t.Errorf("NodesWithin = %v", got)
	}
	// Disabled nodes are invisible.
	w.Node(b).Disable()
	w.removeTestHelper(b)
	got = w.NodesWithin(nil, geom.Pt(0.5, 0.5), 1.0)
	if len(got) != 1 {
		t.Errorf("after disable NodesWithin = %v", got)
	}
}

// removeTestHelper performs registry removal for a node disabled directly
// through the node API in tests.
func (w *Network) removeTestHelper(id node.ID) {
	c, _ := w.System().CoordOf(w.Node(id).Location())
	w.removeFromCell(id, c)
}

func TestPhysicallyConnected(t *testing.T) {
	w := newNet(t, 4, 1, 1)
	if w.PhysicallyConnected(10) {
		t.Error("empty network: disconnected")
	}
	addAt(t, w, geom.Pt(0.5, 0.5))
	addAt(t, w, geom.Pt(1.5, 0.5))
	addAt(t, w, geom.Pt(3.5, 0.5))
	if w.PhysicallyConnected(1.2) {
		t.Error("gap of 2 cells should disconnect at range 1.2")
	}
	if !w.PhysicallyConnected(2.5) {
		t.Error("range 2.5 should connect all three")
	}
}

// TestHeadConnectivityUnderCommRange cross-checks the virtual-grid claim:
// if every cell has a head, physical connectivity at R = sqrt(5)*r holds
// regardless of where nodes sit inside their cells.
func TestHeadConnectivityUnderCommRange(t *testing.T) {
	w := newNet(t, 5, 4, 2)
	rng := randx.New(42)
	for _, c := range w.System().AllCoords() {
		p := rng.InRect(w.System().CellRect(c))
		addAt(t, w, p)
	}
	w.ElectHeads()
	if !w.AllHeadsPresent() {
		t.Fatal("setup: all cells should have heads")
	}
	if !w.PhysicallyConnected(w.System().CommRange()) {
		t.Error("full head occupancy must imply physical connectivity at R=sqrt(5)r")
	}
	if !w.HeadGraphConnected() {
		t.Error("head graph should be connected")
	}
}

func TestCentralTargetStaysInCentralArea(t *testing.T) {
	w := newNet(t, 3, 3, 4)
	rng := randx.New(7)
	ca := w.System().CentralArea(grid.C(1, 2))
	for i := 0; i < 200; i++ {
		p := w.CentralTarget(grid.C(1, 2), rng)
		if !ca.ContainsClosed(p) {
			t.Fatalf("target %v outside central area %v", p, ca)
		}
	}
}
