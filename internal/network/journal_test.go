package network

import (
	"reflect"
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/node"
)

func drain(w *Network) []grid.Coord { return w.DrainVacancyEvents(nil) }

// TestVacancyJournalTransitions covers every mutation that can flip a
// cell's emptiness: first node added, last node removed, node moved in and
// out, and verifies the drain is index-sorted, deduplicated, and reset.
func TestVacancyJournalTransitions(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	if got := drain(w); got != nil {
		t.Fatalf("fresh network has events %v", got)
	}
	if w.VacantCount() != 16 {
		t.Fatalf("VacantCount = %d, want 16", w.VacantCount())
	}

	// Populate two cells out of order: events come back index-sorted.
	b := addAt(t, w, geom.Pt(2.5, 2.5)) // cell (2,2), index 10
	addAt(t, w, geom.Pt(0.5, 0.5))      // cell (0,0), index 0
	if got, want := drain(w), []grid.Coord{grid.C(0, 0), grid.C(2, 2)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	if got := drain(w); got != nil {
		t.Fatalf("journal not reset: %v", got)
	}
	if w.VacantCount() != 14 {
		t.Fatalf("VacantCount = %d, want 14", w.VacantCount())
	}

	// A second node in an occupied cell is not a transition.
	addAt(t, w, geom.Pt(2.4, 2.4))
	if got := drain(w); got != nil {
		t.Fatalf("non-transition recorded: %v", got)
	}

	// Moving the head out of (2,2) leaves the spare behind (no
	// transition); the destination (3,3) flips to occupied.
	w.ElectHeads()
	drain(w) // elections do not touch emptiness, but clear defensively
	if err := w.MoveNode(b, geom.Pt(3.5, 3.5)); err != nil {
		t.Fatal(err)
	}
	if got, want := drain(w), []grid.Coord{grid.C(3, 3)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("move events = %v, want %v", got, want)
	}

	// Disabling the last node of a cell vacates it.
	if err := w.DisableNode(b); err != nil {
		t.Fatal(err)
	}
	if got, want := drain(w), []grid.Coord{grid.C(3, 3)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("disable events = %v, want %v", got, want)
	}
	if w.VacantCount() != 14 {
		t.Fatalf("VacantCount = %d, want 14", w.VacantCount())
	}

	// A flip-and-flip-back cell is reported once; consumers resync against
	// IsVacant, which is back to vacant=false here.
	c := addAt(t, w, geom.Pt(1.5, 1.5))
	if err := w.DisableNode(c); err != nil {
		t.Fatal(err)
	}
	addAt(t, w, geom.Pt(1.5, 1.5))
	if got, want := drain(w), []grid.Coord{grid.C(1, 1)}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flip-flip-back events = %v, want %v", got, want)
	}
	if w.IsVacant(grid.C(1, 1)) {
		t.Error("cell (1,1) should be occupied after resync")
	}

	w.ElectHeads() // restore the election invariant before auditing
	if bad := w.Audit(); len(bad) > 0 {
		t.Fatalf("audit: %v", bad)
	}
}

// TestIncrementalCountersMatchRecount drives a chaotic schedule and checks
// the O(1) counters against brute-force recounts after every step.
func TestIncrementalCountersMatchRecount(t *testing.T) {
	w := newNet(t, 5, 5, 1)
	check := func(stage string) {
		t.Helper()
		enabled, vacant := 0, 0
		for idx := range w.cellFirst {
			n := 0
			for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
				n++
			}
			enabled += n
			if n == 0 {
				vacant++
			}
		}
		spares := 0
		for idx := range w.cellFirst {
			spares += w.SpareCount(w.sys.CoordAt(idx))
		}
		if w.EnabledCount() != enabled {
			t.Errorf("%s: EnabledCount = %d, recount %d", stage, w.EnabledCount(), enabled)
		}
		if w.VacantCount() != vacant {
			t.Errorf("%s: VacantCount = %d, recount %d", stage, w.VacantCount(), vacant)
		}
		if w.TotalSpares() != spares {
			t.Errorf("%s: TotalSpares = %d, recount %d", stage, w.TotalSpares(), spares)
		}
		if bad := w.Audit(); len(bad) > 0 {
			t.Errorf("%s: audit: %v", stage, bad)
		}
	}

	var ids []int
	for i := 0; i < 40; i++ {
		x := float64(i%5) + 0.5
		y := float64((i/5)%5) + 0.3
		ids = append(ids, int(addAt(t, w, geom.Pt(x, y))))
	}
	w.ElectHeads()
	check("deployed")

	w.DisableAllInCell(grid.C(2, 2))
	check("cell jammed")

	for _, id := range ids[:10] {
		nd := w.Node(node.ID(id))
		if !nd.Valid() || !nd.Enabled() {
			continue
		}
		if err := w.MoveNode(node.ID(id), geom.Pt(4.5, 4.5)); err != nil {
			t.Fatal(err)
		}
		check("moved")
	}
	for _, id := range ids[10:20] {
		if err := w.DisableNode(node.ID(id)); err != nil {
			t.Fatal(err)
		}
		check("disabled")
	}
	w.RotateHead(grid.C(4, 4))
	check("rotated")
}

// TestDisableAllInCellScratchReuse proves repeated bulk disables reuse the
// network-owned buffer instead of allocating per call.
func TestDisableAllInCellScratchReuse(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	for i := 0; i < 8; i++ {
		addAt(t, w, geom.Pt(1.5, 1.5))
	}
	w.ElectHeads()
	w.DisableAllInCell(grid.C(1, 1)) // warm the scratch buffer
	for i := 0; i < 8; i++ {
		addAt(t, w, geom.Pt(2.5, 2.5))
	}
	allocs := testing.AllocsPerRun(1, func() {
		w.DisableAllInCell(grid.C(2, 2))
		w.DisableAllInCell(grid.C(2, 2)) // second call is a no-op scan
	})
	// The only tolerated allocations are journal growth, not the id
	// snapshot (8 ids would force a fresh slice each call otherwise).
	if allocs > 1 {
		t.Errorf("DisableAllInCell allocates %.0f times per run", allocs)
	}
}
