package network

import (
	"fmt"
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// exercise drives a network through a representative slice of its API —
// deployment, elections, messaging, rounds, moves, failures — so a Reset
// afterwards has every piece of state to restore.
func exercise(t *testing.T, w *Network, seed int64) {
	t.Helper()
	rng := randx.New(seed)
	sys := w.System()
	bounds := sys.Bounds()
	for i := 0; i < 40; i++ {
		if _, err := w.AddNodeAt(rng.InRect(bounds)); err != nil {
			t.Fatal(err)
		}
	}
	w.ElectHeads()
	if err := w.SetMessageLoss(0.2, randx.New(seed+1)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		from := sys.CoordAt(rng.Intn(sys.NumCells()))
		var to grid.Coord
		nbrs := sys.Neighbors(nil, from)
		to = nbrs[rng.Intn(len(nbrs))]
		_ = w.Send(Message{From: from, To: to, Kind: 1})
		w.StepRound()
		id := node.ID(rng.Intn(w.NumNodes()))
		if w.Node(id).Enabled() {
			if err := w.MoveNode(id, rng.InRect(bounds)); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.DisableAllInCell(sys.CoordAt(rng.Intn(sys.NumCells())))
}

// stateFingerprint captures the externally observable network state.
func stateFingerprint(w *Network) string {
	s := fmt.Sprintf("nodes=%d enabled=%d spares=%d vacant=%d round=%d moves=%d dist=%.12g sent=%d lost=%d\n",
		w.NumNodes(), w.EnabledCount(), w.TotalSpares(), w.VacantCount(),
		w.Round(), w.TotalMoves(), w.TotalDistance(), w.MessagesSent(), w.MessagesLost())
	for id := 0; id < w.NumNodes(); id++ {
		nd := w.Node(node.ID(id))
		s += fmt.Sprintf("n%d %v %v %v %d %.12g %.12g\n",
			id, nd.Location(), nd.Status(), nd.Role(), nd.Moves(), nd.Traveled(), nd.EnergySpent())
	}
	sys := w.System()
	for idx := 0; idx < sys.NumCells(); idx++ {
		c := sys.CoordAt(idx)
		s += fmt.Sprintf("c%d head=%d vac=%v spares=%d\n", idx, w.HeadOf(c), w.IsVacant(c), w.SpareCount(c))
	}
	s += fmt.Sprintf("journal=%v inbox=%d\n", w.DrainVacancyEvents(nil), len(w.Inbox()))
	return s
}

// TestResetEquivalentToFresh is the Reset contract: after any usage
// history, Reset followed by a deterministic redeploy must be observably
// identical to the same deploy on a freshly constructed network.
func TestResetEquivalentToFresh(t *testing.T) {
	sys, err := grid.New(6, 7, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	em := node.EnergyModel{PerMeter: 1}
	for seed := int64(1); seed <= 4; seed++ {
		pooled := New(sys, em)
		exercise(t, pooled, seed)
		pooled.Reset()

		fresh := New(sys, em)
		if a, b := stateFingerprint(pooled), stateFingerprint(fresh); a != b {
			t.Fatalf("seed %d: reset state differs from pristine:\n%s\nvs\n%s", seed, a, b)
		}

		// Redeploy both from the same stream: every observable must agree,
		// including journal contents and election results.
		exercise(t, pooled, seed+100)
		exercise(t, fresh, seed+100)
		if a, b := stateFingerprint(pooled), stateFingerprint(fresh); a != b {
			t.Fatalf("seed %d: redeploy after reset diverged:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestResetDoesNotAllocate pins the tentpole claim: restoring a used
// network costs zero allocations, and redeploying the same population
// into it allocates nothing once the pool is warm.
func TestResetDoesNotAllocate(t *testing.T) {
	sys, err := grid.New(8, 8, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	w := New(sys, node.EnergyModel{})
	exercise(t, w, 9)
	if allocs := testing.AllocsPerRun(20, w.Reset); allocs > 0 {
		t.Errorf("Reset allocates %.1f times", allocs)
	}

	// Warm the node pool and cell lists, then check a reset+redeploy
	// cycle of a fixed population stays allocation-free. The points are
	// pre-drawn so the measurement sees only network work, not the RNG.
	rng := randx.New(17)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = rng.InRect(sys.Bounds())
	}
	deployAll := func() {
		for _, p := range pts {
			if _, err := w.AddNodeAt(p); err != nil {
				t.Fatal(err)
			}
		}
		w.ElectHeads()
	}
	w.Reset()
	deployAll()
	allocs := testing.AllocsPerRun(20, func() {
		w.Reset()
		deployAll()
	})
	if allocs > 0 {
		t.Errorf("reset+redeploy allocates %.1f times", allocs)
	}
}
