// Package network is the wireless-sensor-network substrate: a grid-indexed
// registry of mobile nodes with head election, vacancy tracking, a
// round-based synchronous engine, and 1-hop head-to-head messaging.
//
// The communication model follows the paper: with R = sqrt(5)*r every node
// can reach every node of the four edge-adjacent cells, so messages between
// heads of neighboring grids are delivered reliably, one round later.
//
// Storage is struct-of-arrays throughout. Node attributes live in a
// node.Store (one dense array per attribute, indexed by id); cell
// membership is an intrusive linked list threaded through a single
// per-node next array, with per-cell first pointers; occupancy and the
// vacancy journal's dedup marks are bitset words, so vacant-cell counts
// and scans are word-parallel popcounts instead of per-cell loops. All
// list and head references are stored biased by one (0 means none), which
// makes Reset a handful of memclrs rather than sentinel-fill loops.
package network

import (
	"fmt"
	"math/bits"
	"slices"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Message is a 1-hop control message between grid heads. Kind and Process
// are interpreted by the control scheme; the network only routes and
// counts.
type Message struct {
	// From and To are grid addresses; To must be From itself or an
	// edge-adjacent grid (1-hop constraint).
	From grid.Coord
	To   grid.Coord
	// Kind tags the message type for the receiving scheme.
	Kind int
	// Process carries the replacement-process identity.
	Process int
	// Hops carries the accumulated hop count of a cascading process.
	Hops int
	// Origin carries the grid the process was started for.
	Origin grid.Coord
}

// Observer receives network events as they happen: node movements,
// message sends, status changes, and head elections. Observers must not
// mutate the network. A nil observer disables tracing with no overhead.
type Observer interface {
	// NodeMoved fires after a node relocates.
	NodeMoved(id node.ID, from, to geom.Point, fromCell, toCell grid.Coord)
	// MessageSent fires after a control message is enqueued.
	MessageSent(m Message)
	// NodeDisabled fires after a node leaves the collaboration.
	NodeDisabled(id node.ID, cell grid.Coord)
	// HeadElected fires after a cell gains a head.
	HeadElected(id node.ID, cell grid.Coord)
	// RoundStarted fires when the synchronous clock advances.
	RoundStarted(round int)
}

// Network is the simulated WSN. It is not safe for concurrent use; the
// round engine is strictly sequential, mirroring the paper's round-based
// system model.
type Network struct {
	sys    *grid.System
	energy node.EnergyModel

	// store holds every node attribute as a dense parallel array.
	store node.Store
	// Cell membership as intrusive singly linked lists: cellFirst[idx] is
	// the biased id (id+1, 0 = empty) of one enabled node of the cell,
	// nextInCell[id] the biased id of the next member. New members are
	// pushed at the front; every consumer of a cell's membership is an
	// order-independent reduction (min-distance election, min-id rotation,
	// counts), so list order is unobservable.
	cellFirst  []int32
	nextInCell []int32
	// cellCount[idx] is the enabled-node count of the cell.
	cellCount []int32
	// heads[idx] is the biased id of the cell's head, 0 when vacant.
	heads []int32
	// occ is the occupancy bitset: bit idx set iff cell idx has at least
	// one enabled node. VacantCount and VacantCells derive from it by
	// popcount over the complement.
	occ []uint64
	// occTailMask masks the last occ word's bits beyond NumCells.
	occTailMask uint64

	obs Observer

	// lossProb drops each sent message with this probability at delivery
	// time; lossRNG must be set when lossProb > 0. Held (requeued)
	// messages are local state, not radio traffic, and never drop.
	lossProb float64
	lossRNG  *randx.Rand

	round      int
	inbox      []Message
	outbox     []Message
	requeued   []Message
	msgsSent   int
	msgsLost   int
	totalMoves int
	totalDist  float64

	// headCount is maintained incrementally: AllHeadsPresent and
	// TotalSpares are O(1) against it.
	headCount int

	// Vacancy journal: cells whose emptiness flipped since the last
	// DrainVacancyEvents, recorded once each (the dirty bitset dedups).
	// Event-driven hole detection consumes this instead of scanning every
	// cell per round.
	vacancyDirty  []uint64
	vacancyEvents []int32

	// idScratch backs DisableAllInCell so bulk failure injection does not
	// allocate a fresh id slice per call.
	idScratch []node.ID
	// bfsVisited/bfsQueue/bfsNbr back HeadGraphConnected's search so the
	// per-trial connectivity check does not allocate O(cells) each call.
	bfsVisited []uint64
	bfsQueue   []int32
	bfsNbr     []grid.Coord
}

// wordsFor returns the number of 64-bit words covering n bits.
func wordsFor(n int) int { return (n + 63) / 64 }

// New creates an empty network over the grid system.
func New(sys *grid.System, energy node.EnergyModel) *Network {
	n := sys.NumCells()
	tail := uint64(1)<<(uint(n)&63) - 1
	if n&63 == 0 {
		tail = ^uint64(0)
	}
	return &Network{
		sys:          sys,
		energy:       energy,
		cellFirst:    make([]int32, n),
		cellCount:    make([]int32, n),
		heads:        make([]int32, n),
		occ:          make([]uint64, wordsFor(n)),
		occTailMask:  tail,
		vacancyDirty: make([]uint64, wordsFor(n)),
	}
}

// noteVacancyFlip records that cell idx transitioned between vacant and
// occupied. Each cell appears at most once per drain; consumers resync
// against IsVacant, so transitions that cancel out are harmless.
func (w *Network) noteVacancyFlip(idx int) {
	bit := uint64(1) << (uint(idx) & 63)
	if w.vacancyDirty[idx>>6]&bit == 0 {
		w.vacancyDirty[idx>>6] |= bit
		w.vacancyEvents = append(w.vacancyEvents, int32(idx))
	}
}

// DiscardVacancyEvents resets the vacancy journal without materializing
// the flipped cells. Controllers taking over a freshly deployed network
// use it to retire the deployment's events — one per cell, so a drain
// into a coord buffer would be the largest allocation of a pooled trial
// — before seeding their hole sets from VacantCells directly. When most
// cells flipped (the post-deployment case), the dirty bitset is cleared
// whole instead of bit by bit.
func (w *Network) DiscardVacancyEvents() {
	if len(w.vacancyEvents) >= len(w.vacancyDirty) {
		clear(w.vacancyDirty)
	} else {
		for _, idx := range w.vacancyEvents {
			w.vacancyDirty[idx>>6] &^= 1 << (uint32(idx) & 63)
		}
	}
	w.vacancyEvents = w.vacancyEvents[:0]
}

// VacancyFlipPending reports whether cell c has a journal event not yet
// drained. Auditors use it to recognize legitimately stale consumer
// state: a hole filled after the consumer's last drain is resynced at
// the next one, so a pending flip is lag, not disagreement.
func (w *Network) VacancyFlipPending(c grid.Coord) bool {
	idx := w.sys.Index(c)
	return w.vacancyDirty[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// DrainVacancyEvents appends to dst the cells whose vacancy state changed
// since the last drain, sorted by cell index for deterministic
// consumption, resets the journal, and returns the extended slice. A cell
// is reported at most once per drain even after several flips; callers
// must check IsVacant for its current state.
func (w *Network) DrainVacancyEvents(dst []grid.Coord) []grid.Coord {
	if len(w.vacancyEvents) == 0 {
		return dst
	}
	slices.Sort(w.vacancyEvents)
	for _, idx := range w.vacancyEvents {
		w.vacancyDirty[idx>>6] &^= 1 << (uint32(idx) & 63)
		dst = append(dst, w.sys.CoordAt(int(idx)))
	}
	w.vacancyEvents = w.vacancyEvents[:0]
	return dst
}

// Reset restores the network in place to the pristine state New would
// produce — no nodes, every cell vacant, clocks, queues, counters, and
// the vacancy journal zeroed — without allocating. The observer and the
// lossy-radio configuration are cleared too (New leaves both unset);
// re-attach them after Reset when needed. Every buffer keeps its
// capacity, and thanks to the biased-reference storage the per-cell state
// clears by memclr, so a Reset-then-redeploy cycle of the same population
// reuses all of the previous trial's memory. Pooled replicate engines
// (sim.TrialArena) call this between trials instead of rebuilding the
// world.
func (w *Network) Reset() {
	clear(w.cellFirst)
	clear(w.cellCount)
	clear(w.heads)
	clear(w.occ)
	clear(w.vacancyDirty)
	w.vacancyEvents = w.vacancyEvents[:0]
	w.store.Reset()
	w.nextInCell = w.nextInCell[:0]
	w.obs = nil
	w.lossProb = 0
	w.lossRNG = nil
	w.round = 0
	w.inbox = w.inbox[:0]
	w.outbox = w.outbox[:0]
	w.requeued = w.requeued[:0]
	w.msgsSent = 0
	w.msgsLost = 0
	w.totalMoves = 0
	w.totalDist = 0
	w.headCount = 0
}

// System returns the underlying grid system.
func (w *Network) System() *grid.System { return w.sys }

// EnergyModel returns the movement energy model.
func (w *Network) EnergyModel() node.EnergyModel { return w.energy }

// SetObserver attaches an event observer (nil detaches). Typically set
// before the simulation starts; see the trace package.
func (w *Network) SetObserver(o Observer) { w.obs = o }

// SetMessageLoss makes the radio lossy: every sent message is dropped
// with probability p at delivery time. rng is required when p > 0.
func (w *Network) SetMessageLoss(p float64, rng *randx.Rand) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("network: loss probability %v outside [0, 1)", p)
	}
	if p > 0 && rng == nil {
		return fmt.Errorf("network: loss probability %v needs an RNG", p)
	}
	w.lossProb = p
	w.lossRNG = rng
	return nil
}

// MessagesLost returns the number of messages dropped by the lossy radio.
func (w *Network) MessagesLost() int { return w.msgsLost }

// AddNodeAt creates an enabled spare node at p and registers it. It
// returns an error when p lies outside the surveillance field. The
// store's arrays and the membership list grow by appends, so redeploying
// a pooled network allocates only when it grows past its high-water mark.
func (w *Network) AddNodeAt(p geom.Point) (node.ID, error) {
	c, ok := w.sys.CoordOf(p)
	if !ok {
		return node.Invalid, fmt.Errorf("network: point %v outside field %v", p, w.sys.Bounds())
	}
	id := w.store.Add(p)
	idx := w.sys.Index(c)
	w.nextInCell = append(w.nextInCell, w.cellFirst[idx])
	w.cellFirst[idx] = int32(id) + 1
	if w.cellCount[idx] == 0 {
		w.occ[idx>>6] |= 1 << (uint(idx) & 63)
		w.noteVacancyFlip(idx)
	}
	w.cellCount[idx]++
	return id, nil
}

// Node returns the handle of the node with the given id; the handle of an
// out-of-range id reports !Valid().
func (w *Network) Node(id node.ID) node.Ref { return w.store.Ref(id) }

// NumNodes returns the total number of nodes ever added, enabled or not.
func (w *Network) NumNodes() int { return w.store.Len() }

// EnabledCount returns the number of enabled nodes, popcounted from the
// store's enabled bitset words.
func (w *Network) EnabledCount() int { return w.store.EnabledCount() }

// EnabledIDs appends the ids of all enabled nodes to dst in ascending id
// order, scanning the enabled bitset word-parallel.
func (w *Network) EnabledIDs(dst []node.ID) []node.ID {
	for wi, word := range w.store.EnabledWords() {
		for word != 0 {
			dst = append(dst, node.ID(wi<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// CellOf returns the cell currently containing node id.
func (w *Network) CellOf(id node.ID) (grid.Coord, bool) {
	nd := w.Node(id)
	if !nd.Valid() {
		return grid.Coord{}, false
	}
	return w.sys.CoordOf(nd.Location())
}

// removeFromCell unlinks id from the cell's membership list.
func (w *Network) removeFromCell(id node.ID, c grid.Coord) {
	idx := w.sys.Index(c)
	b := int32(id) + 1
	if w.cellFirst[idx] == b {
		w.cellFirst[idx] = w.nextInCell[id]
	} else {
		prev := w.cellFirst[idx]
		for prev != 0 && w.nextInCell[prev-1] != b {
			prev = w.nextInCell[prev-1]
		}
		if prev != 0 {
			w.nextInCell[prev-1] = w.nextInCell[id]
		}
	}
	w.cellCount[idx]--
	if w.cellCount[idx] == 0 {
		w.occ[idx>>6] &^= 1 << (uint(idx) & 63)
		w.noteVacancyFlip(idx)
	}
	if w.heads[idx] == b {
		w.heads[idx] = 0
		w.headCount--
		w.electLocked(c)
	}
}

// DisableNode removes a node from the collaboration (failure or
// misbehavior). If it was a head, a remaining enabled node of the cell is
// elected in its place; if none exists the cell becomes vacant.
func (w *Network) DisableNode(id node.ID) error {
	nd := w.Node(id)
	if !nd.Valid() {
		return fmt.Errorf("network: unknown node %d", id)
	}
	if !nd.Enabled() {
		return nil
	}
	c, _ := w.sys.CoordOf(nd.Location())
	nd.Disable()
	nd.SetRole(node.Spare)
	w.removeFromCell(id, c)
	if w.obs != nil {
		w.obs.NodeDisabled(id, c)
	}
	return nil
}

// DisableAllInCell disables every enabled node of cell c, creating a hole.
// It returns the number of nodes disabled. The iteration snapshot lives in
// a network-owned scratch buffer, so repeated failure injection does not
// allocate.
func (w *Network) DisableAllInCell(c grid.Coord) int {
	idx := w.sys.Index(c)
	w.idScratch = w.idScratch[:0]
	for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
		w.idScratch = append(w.idScratch, node.ID(cur-1))
	}
	for _, id := range w.idScratch {
		// Error impossible: ids come from the enabled registry.
		_ = w.DisableNode(id)
	}
	return len(w.idScratch)
}

// electLocked promotes one enabled node of c to head when the cell has
// none. The node closest to the cell center is chosen, the natural
// candidate for the surveillance duty; ties break on the lower id for
// determinism.
func (w *Network) electLocked(c grid.Coord) node.ID {
	idx := w.sys.Index(c)
	if h := w.heads[idx]; h != 0 {
		return node.ID(h - 1)
	}
	center := w.sys.Center(c)
	best := node.Invalid
	bestD := 0.0
	for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
		id := node.ID(cur - 1)
		d := w.store.Ref(id).Location().Dist2(center)
		if best == node.Invalid || d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	if best != node.Invalid {
		w.heads[idx] = int32(best) + 1
		w.headCount++
		w.store.Ref(best).SetRole(node.Head)
		for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
			if id := node.ID(cur - 1); id != best {
				w.store.Ref(id).SetRole(node.Spare)
			}
		}
		if w.obs != nil {
			w.obs.HeadElected(best, c)
		}
	}
	return best
}

// ElectHeads runs head election in every cell that lacks a head,
// establishing the invariant that a cell is vacant iff it has no enabled
// nodes.
func (w *Network) ElectHeads() {
	for idx := range w.cellFirst {
		w.electLocked(w.sys.CoordAt(idx))
	}
}

// RotateHead hands the head role of cell c to another enabled node of the
// cell, if one exists, and returns the new head. The paper notes the head
// role can be rotated within the grid to balance energy.
func (w *Network) RotateHead(c grid.Coord) node.ID {
	idx := w.sys.Index(c)
	curHead := node.ID(w.heads[idx] - 1)
	if w.heads[idx] == 0 || w.cellCount[idx] < 2 {
		return curHead
	}
	next := node.Invalid
	for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
		id := node.ID(cur - 1)
		if id == curHead {
			continue
		}
		if next == node.Invalid || id < next {
			next = id
		}
	}
	w.store.Ref(curHead).SetRole(node.Spare)
	w.store.Ref(next).SetRole(node.Head)
	w.heads[idx] = int32(next) + 1
	return next
}

// HeadOf returns the head of cell c, or node.Invalid when vacant.
func (w *Network) HeadOf(c grid.Coord) node.ID {
	return node.ID(w.heads[w.sys.Index(c)] - 1)
}

// IsVacant reports whether cell c has no enabled nodes. Under the election
// invariant this coincides with having no head.
func (w *Network) IsVacant(c grid.Coord) bool {
	idx := w.sys.Index(c)
	return w.occ[idx>>6]&(1<<(uint(idx)&63)) == 0
}

// Spares appends the enabled non-head nodes of cell c to dst.
func (w *Network) Spares(dst []node.ID, c grid.Coord) []node.ID {
	idx := w.sys.Index(c)
	for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
		if cur != w.heads[idx] {
			dst = append(dst, node.ID(cur-1))
		}
	}
	return dst
}

// SpareCount returns the number of spare nodes in cell c.
func (w *Network) SpareCount(c grid.Coord) int {
	idx := w.sys.Index(c)
	if w.heads[idx] == 0 {
		return int(w.cellCount[idx])
	}
	return int(w.cellCount[idx]) - 1
}

// HasSpare reports whether cell c holds at least one spare node.
func (w *Network) HasSpare(c grid.Coord) bool { return w.SpareCount(c) > 0 }

// TotalSpares returns the number of spare nodes in the whole network (the
// paper's N). Every enabled node that is not a cell head is a spare.
func (w *Network) TotalSpares() int { return w.EnabledCount() - w.headCount }

// SpareNearest returns the spare of cell c whose location is closest to
// target, or node.Invalid when the cell has no spare. Ties break on the
// lower id.
func (w *Network) SpareNearest(c grid.Coord, target geom.Point) node.ID {
	idx := w.sys.Index(c)
	best := node.Invalid
	bestD := 0.0
	for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
		if cur == w.heads[idx] {
			continue
		}
		id := node.ID(cur - 1)
		d := w.store.Ref(id).Location().Dist2(target)
		if best == node.Invalid || d < bestD || (d == bestD && id < best) {
			best, bestD = id, d
		}
	}
	return best
}

// VacantCells appends the addresses of all vacant cells to dst in index
// order and returns the extended slice, scanning the complement of the
// occupancy bitset word by word. Pass nil for a fresh slice or a recycled
// buffer to avoid the allocation.
func (w *Network) VacantCells(dst []grid.Coord) []grid.Coord {
	last := len(w.occ) - 1
	for wi, word := range w.occ {
		inv := ^word
		if wi == last {
			inv &= w.occTailMask
		}
		for inv != 0 {
			idx := wi<<6 + bits.TrailingZeros64(inv)
			dst = append(dst, w.sys.CoordAt(idx))
			inv &= inv - 1
		}
	}
	return dst
}

// VacantCount returns the number of vacant cells, popcounted from the
// occupancy bitset words.
func (w *Network) VacantCount() int {
	occupied := 0
	for _, word := range w.occ {
		occupied += bits.OnesCount64(word)
	}
	return w.sys.NumCells() - occupied
}

// CentralTarget draws a uniform random point in the central area of cell
// c, the destination rule of the paper's mobility control.
func (w *Network) CentralTarget(c grid.Coord, rng *randx.Rand) geom.Point {
	return rng.InRect(w.sys.CentralArea(c))
}

// MoveNode relocates an enabled node to target, maintaining the cell
// registry, head roles, and the movement accounting. If the destination
// cell has no head the mover is promoted on arrival; if the origin cell
// retains enabled nodes a new head is elected there.
func (w *Network) MoveNode(id node.ID, target geom.Point) error {
	_, err := w.MoveNodeDist(id, target)
	return err
}

// MoveNodeDist is MoveNode returning the distance moved. The distance is
// computed exactly once (inside the node's odometer) and shared with the
// caller, so controllers charging per-move metrics do not redo the
// square root.
func (w *Network) MoveNodeDist(id node.ID, target geom.Point) (float64, error) {
	nd := w.Node(id)
	if !nd.Valid() {
		return 0, fmt.Errorf("network: unknown node %d", id)
	}
	from, ok := w.sys.CoordOf(nd.Location())
	if !ok {
		return 0, fmt.Errorf("network: node %d off-field at %v", id, nd.Location())
	}
	to, ok := w.sys.CoordOf(target)
	if !ok {
		return 0, fmt.Errorf("network: move target %v outside field", target)
	}
	before := nd.Location()
	dist, err := nd.MoveTo(target, w.energy)
	if err != nil {
		return 0, err
	}
	w.totalMoves++
	w.totalDist += dist
	if from != to {
		w.removeFromCell(id, from)
		idx := w.sys.Index(to)
		w.nextInCell[id] = w.cellFirst[idx]
		w.cellFirst[idx] = int32(id) + 1
		if w.cellCount[idx] == 0 {
			w.occ[idx>>6] |= 1 << (uint(idx) & 63)
			w.noteVacancyFlip(idx)
		}
		w.cellCount[idx]++
		if w.heads[idx] == 0 {
			w.heads[idx] = int32(id) + 1
			w.headCount++
			nd.SetRole(node.Head)
			if w.obs != nil {
				w.obs.HeadElected(id, to)
			}
		} else {
			nd.SetRole(node.Spare)
		}
	}
	if w.obs != nil {
		w.obs.NodeMoved(id, before, target, from, to)
	}
	return dist, nil
}

// TotalMoves returns the number of node movements performed so far.
func (w *Network) TotalMoves() int { return w.totalMoves }

// TotalDistance returns the total moving distance accumulated so far.
func (w *Network) TotalDistance() float64 { return w.totalDist }

// Round returns the current round number, starting at 0.
func (w *Network) Round() int { return w.round }

// Send enqueues a 1-hop message for delivery at the start of the next
// round. Sending to a non-adjacent grid is a programming error of the
// scheme and is rejected.
func (w *Network) Send(m Message) error {
	if m.From != m.To && !m.From.IsNeighbor(m.To) {
		return fmt.Errorf("network: message %v -> %v exceeds 1-hop range", m.From, m.To)
	}
	if !w.sys.Contains(m.From) || !w.sys.Contains(m.To) {
		return fmt.Errorf("network: message %v -> %v off-grid", m.From, m.To)
	}
	w.outbox = append(w.outbox, m)
	w.msgsSent++
	if w.obs != nil {
		w.obs.MessageSent(m)
	}
	return nil
}

// MessagesSent returns the total number of control messages sent.
func (w *Network) MessagesSent() int { return w.msgsSent }

// StepRound advances the synchronous clock: messages sent during the
// previous round become deliverable now.
func (w *Network) StepRound() {
	w.round++
	w.inbox = w.inbox[:0]
	for _, m := range w.outbox {
		if w.lossProb > 0 && w.lossRNG.Bool(w.lossProb) {
			w.msgsLost++
			continue
		}
		w.inbox = append(w.inbox, m)
	}
	w.outbox = w.outbox[:0]
	w.inbox = append(w.inbox, w.requeued...)
	w.requeued = w.requeued[:0]
	if w.obs != nil {
		w.obs.RoundStarted(w.round)
	}
}

// Inbox returns the messages deliverable in the current round. The slice
// is owned by the network and valid until the next StepRound; schemes must
// not retain it.
func (w *Network) Inbox() []Message { return w.inbox }

// RequeueMessage re-enqueues a message for the next round without charging
// the message counter, modelling a head that holds a notification because
// the addressee grid is still vacant. Held messages are local state and
// are never subject to radio loss.
func (w *Network) RequeueMessage(m Message) {
	w.requeued = append(w.requeued, m)
}

// HeadGraphConnected reports whether the cells with heads form a single
// connected component under grid adjacency. With R = sqrt(5)*r this is
// exactly the connectivity of the head overlay network. A network with no
// heads at all is trivially disconnected; a single head is connected.
func (w *Network) HeadGraphConnected() bool {
	total := w.headCount
	if total == 0 {
		return false
	}
	start := -1
	for idx, h := range w.heads {
		if h != 0 {
			start = idx
			break
		}
	}
	if cap(w.bfsVisited) < wordsFor(len(w.heads)) {
		w.bfsVisited = make([]uint64, wordsFor(len(w.heads)))
	}
	visited := w.bfsVisited[:wordsFor(len(w.heads))]
	clear(visited)
	queue := append(w.bfsQueue[:0], int32(start))
	visited[start>>6] |= 1 << (uint(start) & 63)
	reached := 1
	buf := w.bfsNbr
	for head := 0; head < len(queue); head++ {
		idx := int(queue[head])
		buf = w.sys.Neighbors(buf[:0], w.sys.CoordAt(idx))
		for _, nb := range buf {
			nidx := w.sys.Index(nb)
			bit := uint64(1) << (uint(nidx) & 63)
			if w.heads[nidx] != 0 && visited[nidx>>6]&bit == 0 {
				visited[nidx>>6] |= bit
				reached++
				queue = append(queue, int32(nidx))
			}
		}
	}
	w.bfsQueue = queue[:0]
	w.bfsNbr = buf
	return reached == total
}

// AllHeadsPresent reports whether every cell has a head, the paper's
// complete-coverage condition. O(1) against the head counter.
func (w *Network) AllHeadsPresent() bool { return w.headCount == w.sys.NumCells() }

// NodesWithin appends to dst the ids of enabled nodes within radius of p,
// using the cell index to restrict the search.
func (w *Network) NodesWithin(dst []node.ID, p geom.Point, radius float64) []node.ID {
	r2 := radius * radius
	cells := int(radius/w.sys.CellSize()) + 1
	center, ok := w.sys.CoordOf(w.sys.Bounds().Clamp(p))
	if !ok {
		return dst
	}
	for dx := -cells; dx <= cells; dx++ {
		for dy := -cells; dy <= cells; dy++ {
			c := grid.C(center.X+dx, center.Y+dy)
			if !w.sys.Contains(c) {
				continue
			}
			idx := w.sys.Index(c)
			for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
				id := node.ID(cur - 1)
				if w.store.Ref(id).Location().Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// PhysicallyConnected reports whether the enabled nodes form a single
// connected component under the disc communication model with the given
// range. It is O(V * neighborhood) via the cell index and intended for
// validation and tests, not hot paths.
func (w *Network) PhysicallyConnected(commRange float64) bool {
	enabled := w.EnabledIDs(nil)
	if len(enabled) == 0 {
		return false
	}
	visited := make(map[node.ID]bool, len(enabled))
	queue := []node.ID{enabled[0]}
	visited[enabled[0]] = true
	var buf []node.ID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		buf = w.NodesWithin(buf[:0], w.store.Ref(id).Location(), commRange)
		for _, other := range buf {
			if !visited[other] {
				visited[other] = true
				queue = append(queue, other)
			}
		}
	}
	return len(visited) == len(enabled)
}
