package network

import (
	"testing"
	"testing/quick"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

func TestAuditCleanNetwork(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	rng := randx.New(1)
	for i := 0; i < 30; i++ {
		addAt(t, w, rng.InRect(w.System().Bounds()))
	}
	w.ElectHeads()
	if bad := w.Audit(); len(bad) != 0 {
		t.Errorf("clean network audit: %v", bad)
	}
}

func TestAuditSurvivesChurn(t *testing.T) {
	// Random interleavings of add / disable / move must never corrupt the
	// registries.
	f := func(seed int64, opsU uint8) bool {
		rng := randx.New(seed)
		sys, err := grid.New(5, 5, 2, geom.Pt(0, 0))
		if err != nil {
			return false
		}
		w := New(sys, node.EnergyModel{})
		ops := int(opsU)%120 + 30
		var ids []node.ID
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0, 1: // add
				id, err := w.AddNodeAt(rng.InRect(sys.Bounds()))
				if err != nil {
					return false
				}
				ids = append(ids, id)
				w.ElectHeads()
			case 2: // disable random
				if len(ids) > 0 {
					_ = w.DisableNode(ids[rng.Intn(len(ids))])
				}
			case 3: // move random enabled node
				if len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if w.Node(id).Enabled() {
						if err := w.MoveNode(id, rng.InRect(sys.Bounds())); err != nil {
							return false
						}
					}
				}
			}
		}
		return len(w.Audit()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPopcountCountsMatchBruteForce drives the same random add /
// disable / move churn as the audit test above, but after every single
// operation cross-checks the popcount-derived EnabledCount and
// VacantCount against brute-force scans of the node store and the
// grid, and checks VacantCells/IsVacant agree with both. This pins the
// bitset bookkeeping (occupancy words, enabled words, tail masks) the
// counts are derived from.
func TestPopcountCountsMatchBruteForce(t *testing.T) {
	f := func(seed int64, opsU uint8) bool {
		rng := randx.New(seed)
		sys, err := grid.New(5, 5, 2, geom.Pt(0, 0))
		if err != nil {
			return false
		}
		w := New(sys, node.EnergyModel{})
		check := func() bool {
			enabled := 0
			occupied := make(map[int]bool)
			for i := 0; i < w.NumNodes(); i++ {
				id := node.ID(i)
				if !w.Node(id).Enabled() {
					continue
				}
				enabled++
				c, ok := w.CellOf(id)
				if !ok {
					return false
				}
				occupied[sys.Index(c)] = true
			}
			if w.EnabledCount() != enabled {
				return false
			}
			if w.VacantCount() != sys.NumCells()-len(occupied) {
				return false
			}
			vac := w.VacantCells(nil)
			if len(vac) != w.VacantCount() {
				return false
			}
			for _, c := range vac {
				if occupied[sys.Index(c)] || !w.IsVacant(c) {
					return false
				}
			}
			return true
		}
		ops := int(opsU)%120 + 30
		var ids []node.ID
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0, 1: // add
				id, err := w.AddNodeAt(rng.InRect(sys.Bounds()))
				if err != nil {
					return false
				}
				ids = append(ids, id)
				w.ElectHeads()
			case 2: // disable random
				if len(ids) > 0 {
					_ = w.DisableNode(ids[rng.Intn(len(ids))])
				}
			case 3: // move random enabled node
				if len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if w.Node(id).Enabled() {
						if err := w.MoveNode(id, rng.InRect(sys.Bounds())); err != nil {
							return false
						}
					}
				}
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAuditDetectsCorruption(t *testing.T) {
	w := newNet(t, 2, 2, 1)
	id := addAt(t, w, geom.Pt(0.5, 0.5))
	w.ElectHeads()
	// Corrupt: teleport the node out of its registered cell behind the
	// registry's back.
	w.Node(id).Teleport(geom.Pt(1.5, 1.5))
	bad := w.Audit()
	if len(bad) == 0 {
		t.Error("audit should flag a node outside its registered cell")
	}
	// Corrupt: strip the head role directly.
	w2 := newNet(t, 1, 1, 1)
	h := addAt(t, w2, geom.Pt(0.5, 0.5))
	w2.ElectHeads()
	w2.Node(h).SetRole(node.Spare)
	if len(w2.Audit()) == 0 {
		t.Error("audit should flag a head without the Head role")
	}
}
