package network

import (
	"fmt"

	"wsncover/internal/node"
)

// Audit verifies the internal consistency of the network's registries and
// role assignments. It returns a list of violations (empty when the
// network is consistent). Tests call it after chaotic schedules — failure
// injection mid-cascade, concurrent processes — to prove the substrate
// never corrupts:
//
//   - every enabled node is registered in exactly the cell containing it;
//   - no disabled node is registered anywhere;
//   - each cell's head is a member of that cell and carries the Head role;
//   - cells with enabled nodes have a head (election invariant);
//   - exactly one node per occupied cell carries the Head role;
//   - the incremental enabled/head/vacant counters match a recount;
//   - the vacancy journal's dirty bits agree with its event list.
func (w *Network) Audit() []string {
	var bad []string

	registered := make(map[node.ID]int, len(w.nodes)) // id -> cell index
	for idx, list := range w.cellNodes {
		for _, id := range list {
			if prev, dup := registered[id]; dup {
				bad = append(bad, fmt.Sprintf("node %d registered in cells %v and %v",
					id, w.sys.CoordAt(prev), w.sys.CoordAt(idx)))
			}
			registered[id] = idx
		}
	}

	for _, nd := range w.nodes {
		idx, ok := registered[nd.ID()]
		switch {
		case nd.Enabled() && !ok:
			bad = append(bad, fmt.Sprintf("enabled node %d not registered", nd.ID()))
		case !nd.Enabled() && ok:
			bad = append(bad, fmt.Sprintf("disabled node %d still registered in %v",
				nd.ID(), w.sys.CoordAt(idx)))
		case nd.Enabled():
			c, in := w.sys.CoordOf(nd.Location())
			if !in {
				bad = append(bad, fmt.Sprintf("node %d located off-field at %v",
					nd.ID(), nd.Location()))
			} else if w.sys.Index(c) != idx {
				bad = append(bad, fmt.Sprintf("node %d at %v registered in %v but located in %v",
					nd.ID(), nd.Location(), w.sys.CoordAt(idx), c))
			}
		}
	}

	for idx, h := range w.heads {
		c := w.sys.CoordAt(idx)
		if h == node.Invalid {
			if len(w.cellNodes[idx]) > 0 {
				bad = append(bad, fmt.Sprintf("cell %v has %d enabled nodes but no head",
					c, len(w.cellNodes[idx])))
			}
			continue
		}
		member := false
		for _, id := range w.cellNodes[idx] {
			if id == h {
				member = true
				break
			}
		}
		if !member {
			bad = append(bad, fmt.Sprintf("head %d of cell %v is not a member", h, c))
		}
		if !w.nodes[h].IsHead() {
			bad = append(bad, fmt.Sprintf("head %d of cell %v lacks Head role", h, c))
		}
		heads := 0
		for _, id := range w.cellNodes[idx] {
			if w.nodes[id].Role() == node.Head {
				heads++
			}
		}
		if heads != 1 {
			bad = append(bad, fmt.Sprintf("cell %v has %d nodes with Head role", c, heads))
		}
	}

	enabled, headed, vacant := 0, 0, 0
	for idx, list := range w.cellNodes {
		enabled += len(list)
		if w.heads[idx] != node.Invalid {
			headed++
		}
		if len(list) == 0 {
			vacant++
		}
	}
	if enabled != w.enabledCount {
		bad = append(bad, fmt.Sprintf("enabledCount = %d, recount = %d", w.enabledCount, enabled))
	}
	if headed != w.headCount {
		bad = append(bad, fmt.Sprintf("headCount = %d, recount = %d", w.headCount, headed))
	}
	if vacant != w.vacantCount {
		bad = append(bad, fmt.Sprintf("vacantCount = %d, recount = %d", w.vacantCount, vacant))
	}

	dirty := 0
	for idx, d := range w.vacancyDirty {
		if d {
			dirty++
			found := false
			for _, e := range w.vacancyEvents {
				if e == idx {
					found = true
					break
				}
			}
			if !found {
				bad = append(bad, fmt.Sprintf("cell %v dirty but missing from the vacancy journal", w.sys.CoordAt(idx)))
			}
		}
	}
	if dirty != len(w.vacancyEvents) {
		bad = append(bad, fmt.Sprintf("vacancy journal holds %d events but %d cells are dirty",
			len(w.vacancyEvents), dirty))
	}
	return bad
}
