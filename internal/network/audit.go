package network

import (
	"fmt"
	"math/bits"

	"wsncover/internal/node"
)

// Audit verifies the internal consistency of the network's registries and
// role assignments. It returns a list of violations (empty when the
// network is consistent). Tests call it after chaotic schedules — failure
// injection mid-cascade, concurrent processes — to prove the substrate
// never corrupts:
//
//   - every enabled node is registered in exactly the cell containing it;
//   - no disabled node is registered anywhere;
//   - each cell's head is a member of that cell and carries the Head role;
//   - cells with enabled nodes have a head (election invariant);
//   - exactly one node per occupied cell carries the Head role;
//   - the per-cell counts, the occupancy bitset, the store's enabled
//     bitset, and the head counter all match a brute-force recount, so the
//     popcount-derived VacantCount/EnabledCount agree with a full scan;
//   - the vacancy journal's dirty bits agree with its event list.
func (w *Network) Audit() []string {
	var bad []string

	registered := make(map[node.ID]int, w.store.Len()) // id -> cell index
	for idx := range w.cellFirst {
		n := 0
		for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
			id := node.ID(cur - 1)
			if prev, dup := registered[id]; dup {
				bad = append(bad, fmt.Sprintf("node %d registered in cells %v and %v",
					id, w.sys.CoordAt(prev), w.sys.CoordAt(idx)))
				break // a cross-cell duplicate may also be a list cycle; stop walking
			}
			registered[id] = idx
			n++
		}
		if n != int(w.cellCount[idx]) {
			bad = append(bad, fmt.Sprintf("cell %v count = %d, list walk = %d",
				w.sys.CoordAt(idx), w.cellCount[idx], n))
		}
		occBit := w.occ[idx>>6]&(1<<(uint(idx)&63)) != 0
		if occBit != (n > 0) {
			bad = append(bad, fmt.Sprintf("cell %v occupancy bit = %v with %d members",
				w.sys.CoordAt(idx), occBit, n))
		}
	}

	for id := node.ID(0); int(id) < w.store.Len(); id++ {
		nd := w.store.Ref(id)
		idx, ok := registered[id]
		switch {
		case nd.Enabled() && !ok:
			bad = append(bad, fmt.Sprintf("enabled node %d not registered", id))
		case !nd.Enabled() && ok:
			bad = append(bad, fmt.Sprintf("disabled node %d still registered in %v",
				id, w.sys.CoordAt(idx)))
		case nd.Enabled():
			c, in := w.sys.CoordOf(nd.Location())
			if !in {
				bad = append(bad, fmt.Sprintf("node %d located off-field at %v",
					id, nd.Location()))
			} else if w.sys.Index(c) != idx {
				bad = append(bad, fmt.Sprintf("node %d at %v registered in %v but located in %v",
					id, nd.Location(), w.sys.CoordAt(idx), c))
			}
		}
		enBit := w.store.EnabledWords()[int(id)>>6]&(1<<(uint(id)&63)) != 0
		if enBit != nd.Enabled() {
			bad = append(bad, fmt.Sprintf("node %d enabled bit = %v but status %v",
				id, enBit, nd.Status()))
		}
	}
	if words := w.store.EnabledWords(); len(words) > 0 {
		if tail := uint(w.store.Len()) & 63; tail != 0 {
			if extra := words[len(words)-1] &^ (1<<tail - 1); extra != 0 {
				bad = append(bad, fmt.Sprintf("enabled bitset has stale bits %#x beyond node %d",
					extra, w.store.Len()-1))
			}
		}
	}

	for idx, h := range w.heads {
		c := w.sys.CoordAt(idx)
		if h == 0 {
			if w.cellCount[idx] > 0 {
				bad = append(bad, fmt.Sprintf("cell %v has %d enabled nodes but no head",
					c, w.cellCount[idx]))
			}
			continue
		}
		headID := node.ID(h - 1)
		member := false
		headRoles := 0
		for cur := w.cellFirst[idx]; cur != 0; cur = w.nextInCell[cur-1] {
			id := node.ID(cur - 1)
			if id == headID {
				member = true
			}
			if w.store.Ref(id).Role() == node.Head {
				headRoles++
			}
		}
		if !member {
			bad = append(bad, fmt.Sprintf("head %d of cell %v is not a member", headID, c))
		}
		if !w.store.Ref(headID).IsHead() {
			bad = append(bad, fmt.Sprintf("head %d of cell %v lacks Head role", headID, c))
		}
		if headRoles != 1 {
			bad = append(bad, fmt.Sprintf("cell %v has %d nodes with Head role", c, headRoles))
		}
	}

	// Brute-force recounts against the word-parallel derivations: this is
	// where "popcount agrees with a full scan" is enforced.
	enabled, headed, vacant := 0, 0, 0
	for idx := range w.cellFirst {
		enabled += int(w.cellCount[idx])
		if w.heads[idx] != 0 {
			headed++
		}
		if w.cellCount[idx] == 0 {
			vacant++
		}
	}
	if got := w.EnabledCount(); got != enabled {
		bad = append(bad, fmt.Sprintf("EnabledCount popcount = %d, recount = %d", got, enabled))
	}
	if headed != w.headCount {
		bad = append(bad, fmt.Sprintf("headCount = %d, recount = %d", w.headCount, headed))
	}
	if got := w.VacantCount(); got != vacant {
		bad = append(bad, fmt.Sprintf("VacantCount popcount = %d, recount = %d", got, vacant))
	}
	if last := len(w.occ) - 1; last >= 0 {
		if extra := w.occ[last] &^ w.occTailMask; extra != 0 {
			bad = append(bad, fmt.Sprintf("occupancy bitset has stale bits %#x beyond the grid", extra))
		}
	}

	dirty := 0
	for _, word := range w.vacancyDirty {
		dirty += bits.OnesCount64(word)
	}
	for idx := range w.cellFirst {
		if w.vacancyDirty[idx>>6]&(1<<(uint(idx)&63)) == 0 {
			continue
		}
		found := false
		for _, e := range w.vacancyEvents {
			if int(e) == idx {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("cell %v dirty but missing from the vacancy journal", w.sys.CoordAt(idx)))
		}
	}
	if dirty != len(w.vacancyEvents) {
		bad = append(bad, fmt.Sprintf("vacancy journal holds %d events but %d cells are dirty",
			len(w.vacancyEvents), dirty))
	}
	return bad
}
