// Package async is the event-driven (asynchronous) realization of the SR
// scheme. The paper presents its algorithms in a round-based system and
// notes they "can be extended easily to an asynchronous system"; this
// package is that extension.
//
// Instead of global rounds, the simulation advances a timestamped event
// queue:
//
//   - heads poll their monitored grids periodically (with jitter),
//   - cascade notifications are delivered after a transmission delay,
//   - movements take distance/speed seconds, and take effect on arrival.
//
// The synchronization argument of Algorithm 1 carries over: a departing
// head's notification is delivered before (or exactly when) it starts to
// move, so the successor along the walk always learns about the travelling
// vacancy before it could mistake it for a fresh hole; the claims registry
// models the same 1-hop hand-off announcement as the synchronous
// controller.
//
// Controller state is struct-of-arrays like the sync controllers:
// processes in a dense pid-indexed table, claims/departing/failed as
// per-cell columns and bitsets, and the event queue as a hand-rolled
// binary heap over a plain slice (container/heap would box every event
// into an interface). A Scratch pools all of it across trials.
package async

import (
	"fmt"

	"wsncover/internal/dense"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Config parameterizes the asynchronous controller.
type Config struct {
	// Topology is the Hamilton structure over the network's grid system.
	Topology *hamilton.Topology
	// RNG drives jitter and destination sampling.
	RNG *randx.Rand
	// MsgDelay is the base notification latency in seconds; MsgJitter
	// adds a uniform extra in [0, MsgJitter). Zero delay means 1 ms.
	MsgDelay  float64
	MsgJitter float64
	// MoveSpeed is the node movement speed in m/s. Zero means 1 m/s.
	MoveSpeed float64
	// PollInterval is the period of each head's vacancy check;
	// PollJitter adds uniform jitter. Zero interval means 0.5 s.
	PollInterval float64
	PollJitter   float64
	// Collector, when non-nil, is adopted as the metrics store after
	// being Reset; nil allocates a fresh one. Pooled trial arenas pass
	// their per-worker collector so replicates reuse its capacity.
	Collector *metrics.Collector
	// Scratch, when non-nil, supplies the controller's pooled state: New
	// reuses the scratch-held tables (cleared) instead of allocating, and
	// the returned controller aliases the scratch. At most one live
	// controller per scratch; building a new one invalidates the old.
	Scratch *Scratch
}

// Scratch pools one controller's dense state across trials. The zero
// value is ready to use.
type Scratch struct{ ctrl Controller }

func (c *Config) normalize() {
	if c.MsgDelay == 0 {
		c.MsgDelay = 0.001
	}
	if c.MoveSpeed == 0 {
		c.MoveSpeed = 1
	}
	if c.PollInterval == 0 {
		c.PollInterval = 0.5
	}
	if c.PollJitter == 0 {
		c.PollJitter = c.PollInterval / 4
	}
}

// MsgCascade is the asynchronous cascade notification kind, distinct from
// the synchronous SR (1) and AR (2) tags so traces can interleave.
const MsgCascade = 3

// event kinds (internal).
const (
	evPoll = iota + 1
	evDeliver
	evArrive
)

type event struct {
	at   float64
	seq  int // tie-break for determinism
	kind int

	cell grid.Coord      // evPoll
	msg  network.Message // evDeliver

	// evArrive fields.
	pid     int
	nodeID  node.ID
	vacancy grid.Coord
	final   bool // true when the arriving node is the donated spare
	// target is the sampled destination point; set when the movement
	// starts so that travel time and the landing point agree.
	target    geom.Point
	traveling bool
}

// eventLess orders events by (timestamp, sequence number): a strict total
// order, so the dispatch sequence is independent of heap layout.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

type proc struct {
	id   int
	walk hamilton.Walk
	done bool
}

// Controller runs asynchronous SR over a network. It is not safe for
// concurrent use.
type Controller struct {
	net  *network.Network
	topo *hamilton.Topology
	sys  *grid.System
	rng  *randx.Rand
	cfg  Config
	col  *metrics.Collector

	// queue is a binary min-heap over (at, seq), stored flat.
	queue []event
	seq   int
	now   float64

	// procs is the dense process table, indexed by pid (collector pids
	// are dense from zero per trial); active counts unfinished entries.
	procs  []proc
	active int

	// claimPID holds per cell the pid+1 of the process whose travelling
	// vacancy or target the cell is (0 = unclaimed); departing marks
	// heads committed to a move, failed the origins of failed processes.
	claimPID  []int32
	departing []uint64
	failed    []uint64

	watchBuf []grid.Coord
}

// New creates an asynchronous SR controller and schedules the initial
// polls of every grid with random phase.
func New(net *network.Network, cfg Config) (*Controller, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("async: missing topology")
	}
	ts, ns := cfg.Topology.System(), net.System()
	if ts.Cols() != ns.Cols() || ts.Rows() != ns.Rows() || ts.CellSize() != ns.CellSize() {
		return nil, fmt.Errorf("async: topology grid %v differs from network grid %v", ts, ns)
	}
	cfg.normalize()
	rng := cfg.RNG
	if rng == nil {
		rng = randx.New(1)
	}
	col := cfg.Collector
	if col == nil {
		col = metrics.NewCollector()
	} else {
		col.Reset()
	}
	var c *Controller
	if cfg.Scratch != nil {
		c = &cfg.Scratch.ctrl
	} else {
		c = new(Controller)
	}
	n := ns.NumCells()
	// Field-by-field reinit: slices keep their backing arrays (truncated
	// or cleared), everything else is overwritten, so a pooled controller
	// starts byte-identical to a fresh one.
	*c = Controller{
		net:  net,
		topo: cfg.Topology,
		sys:  ns,
		rng:  rng,
		cfg:  cfg,
		col:  col,

		queue: c.queue[:0],
		procs: c.procs[:0],

		claimPID:  dense.Int32s(c.claimPID, n),
		departing: dense.Bits(c.departing, n),
		failed:    dense.Bits(c.failed, n),

		watchBuf: c.watchBuf[:0],
	}
	// The scratch-held Config's own Scratch pointer is dropped so the
	// pooled controller does not keep itself alive transitively.
	c.cfg.Scratch = nil
	for _, g := range ns.AllCoords() {
		c.schedule(event{
			at:   rng.Float64() * cfg.PollInterval, // random phase
			kind: evPoll,
			cell: g,
		})
	}
	return c, nil
}

// Name identifies the scheme in experiment output.
func (c *Controller) Name() string { return "SR-async" }

// Collector exposes the metrics collected so far.
func (c *Controller) Collector() *metrics.Collector { return c.col }

// Now returns the current simulation time in seconds.
func (c *Controller) Now() float64 { return c.now }

// Done reports whether no replacement process is active.
func (c *Controller) Done() bool { return c.active == 0 }

// alive reports whether pid names a still-running process.
func (c *Controller) alive(pid int) bool {
	return pid >= 0 && pid < len(c.procs) && !c.procs[pid].done
}

// liveProc returns the record of a still-running process.
func (c *Controller) liveProc(pid int) (*proc, bool) {
	if !c.alive(pid) {
		return nil, false
	}
	return &c.procs[pid], true
}

// schedule stamps the event with the next sequence number and pushes it
// onto the queue.
func (c *Controller) schedule(e event) {
	e.seq = c.seq
	c.seq++
	c.queue = append(c.queue, e)
	c.siftUp(len(c.queue) - 1)
}

// popMin removes and returns the earliest event.
func (c *Controller) popMin() event {
	last := len(c.queue) - 1
	c.queue[0], c.queue[last] = c.queue[last], c.queue[0]
	e := c.queue[last]
	c.queue = c.queue[:last]
	c.siftDown(0)
	return e
}

func (c *Controller) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&c.queue[i], &c.queue[parent]) {
			break
		}
		c.queue[i], c.queue[parent] = c.queue[parent], c.queue[i]
		i = parent
	}
}

func (c *Controller) siftDown(i int) {
	n := len(c.queue)
	for {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < n && eventLess(&c.queue[left], &c.queue[min]) {
			min = left
		}
		if right < n && eventLess(&c.queue[right], &c.queue[min]) {
			min = right
		}
		if min == i {
			return
		}
		c.queue[i], c.queue[min] = c.queue[min], c.queue[i]
		i = min
	}
}

// RunUntil processes events in timestamp order until the deadline (in
// seconds) or until the network is fully covered and no process is
// active. It returns the number of events processed.
func (c *Controller) RunUntil(deadline float64) (int, error) {
	processed := 0
	for len(c.queue) > 0 {
		if c.queue[0].at > deadline {
			break
		}
		next := c.popMin()
		c.now = next.at
		if err := c.dispatch(next); err != nil {
			return processed, err
		}
		processed++
		if c.Done() && c.net.AllHeadsPresent() {
			break
		}
	}
	return processed, nil
}

func (c *Controller) dispatch(e event) error {
	switch e.kind {
	case evPoll:
		return c.poll(e.cell)
	case evDeliver:
		return c.deliver(e.msg)
	case evArrive:
		return c.arrive(e)
	default:
		return fmt.Errorf("async: unknown event kind %d", e.kind)
	}
}

// isDeparting reports whether the head of g is committed to a move.
func (c *Controller) isDeparting(g grid.Coord) bool { return dense.Has(c.departing, c.sys.Index(g)) }

// poll lets the head of g (if any) check its monitored grids for fresh
// holes, then reschedules itself.
func (c *Controller) poll(g grid.Coord) error {
	defer c.schedule(event{
		at:   c.now + c.cfg.PollInterval + c.rng.Float64()*c.cfg.PollJitter,
		kind: evPoll,
		cell: g,
	})
	if c.net.HeadOf(g) == node.Invalid || c.isDeparting(g) {
		return nil
	}
	c.watchBuf = c.topo.Monitored(c.watchBuf[:0], g)
	for _, s := range c.watchBuf {
		sidx := c.sys.Index(s)
		if !c.net.IsVacant(s) || dense.Has(c.failed, sidx) {
			continue
		}
		if c.claimPID[sidx] != 0 {
			continue
		}
		pid := c.col.StartProcess(s, int(c.now*1000))
		c.procs = append(c.procs, proc{id: pid, walk: c.topo.WalkFrom(s)})
		c.active++
		p := &c.procs[pid]
		c.claimPID[sidx] = int32(pid) + 1
		c.col.RecordHop(pid)
		if err := c.serveRequest(p, g, s); err != nil {
			return err
		}
		if c.isDeparting(g) {
			break
		}
	}
	return nil
}

// deliver hands a cascade notification to its addressee; if the grid has
// no head yet (a travelling vacancy), the delivery is retried later.
func (c *Controller) deliver(m network.Message) error {
	p, ok := c.liveProc(m.Process)
	if !ok {
		return nil
	}
	cur := m.To
	if c.net.HeadOf(cur) == node.Invalid || c.isDeparting(cur) {
		retry := m
		c.schedule(event{
			at:   c.now + c.cfg.PollInterval,
			kind: evDeliver,
			msg:  retry,
		})
		return nil
	}
	c.col.RecordHop(p.id)
	return c.serveRequest(p, cur, m.From)
}

// serveRequest lets grid cur supply a node for the process's vacancy.
func (c *Controller) serveRequest(p *proc, cur, vacancy grid.Coord) error {
	target := c.sys.Center(vacancy)
	if donor := c.net.SpareNearest(cur, target); donor != node.Invalid {
		c.beginMove(p.id, donor, vacancy, true)
		return nil
	}
	probe := func(g grid.Coord) bool { return c.net.HasSpare(g) }
	if !p.walk.Advance(probe) {
		c.finish(p, metrics.Failed)
		return nil
	}
	next := p.walk.Current()
	head := c.net.HeadOf(cur)
	if head == node.Invalid {
		return fmt.Errorf("async: cascade at vacant grid %v", cur)
	}
	// Notification first; the head begins its own move only at delivery
	// time (Algorithm 1's wait-then-move), modelled by scheduling the
	// departure with the same latency as the message.
	delay := c.cfg.MsgDelay + c.rng.Float64()*c.cfg.MsgJitter
	msg := network.Message{
		From: cur, To: next, Kind: MsgCascade, Process: p.id,
		Hops: p.walk.Hops(), Origin: p.walk.Origin(),
	}
	c.schedule(event{at: c.now + delay, kind: evDeliver, msg: msg})
	c.col.RecordMessage()
	dense.Set(c.departing, c.sys.Index(cur))
	c.schedule(event{
		at:      c.now + delay,
		kind:    evArrive,
		pid:     p.id,
		nodeID:  head,
		vacancy: vacancy,
		final:   false,
	})
	return nil
}

// beginMove schedules the physical relocation of a donated spare.
func (c *Controller) beginMove(pid int, id node.ID, vacancy grid.Coord, final bool) {
	c.schedule(event{
		at:      c.now, // spare starts immediately; travel time applies below
		kind:    evArrive,
		pid:     pid,
		nodeID:  id,
		vacancy: vacancy,
		final:   final,
	})
}

// arrive executes a scheduled movement in two phases: the first visit
// samples the destination and re-schedules itself at the true arrival
// instant (distance/speed later); the second visit applies the move.
func (c *Controller) arrive(e event) error {
	nd := c.net.Node(e.nodeID)
	if !nd.Valid() {
		return fmt.Errorf("async: process %d references unknown node %d", e.pid, e.nodeID)
	}
	if !nd.Enabled() {
		// The committed node died before arriving (mid-run damage, e.g.
		// depletion between events); the process fails. A departing head
		// releases its grid's commitment so a successor can be served,
		// and the outstanding vacancy's claim and failed mark are
		// cleared so a later poll serves it with a fresh process — the
		// hole is repairable, unlike a spare-drought failure.
		if !e.final {
			from, _ := c.sys.CoordOf(nd.Location())
			dense.Clear(c.departing, c.sys.Index(from))
		}
		vidx := c.sys.Index(e.vacancy)
		if owner := c.claimPID[vidx]; owner != 0 && int(owner-1) == e.pid {
			c.claimPID[vidx] = 0
		}
		if p, ok := c.liveProc(e.pid); ok {
			c.finish(p, metrics.Failed)
			dense.Clear(c.failed, c.sys.Index(p.walk.Origin()))
		}
		return nil
	}
	if !e.traveling {
		e.target = c.net.CentralTarget(e.vacancy, c.rng)
		travel := nd.Location().Dist(e.target) / c.cfg.MoveSpeed
		e.traveling = true
		e.at = c.now + travel
		c.schedule(e)
		return nil
	}

	from, _ := c.sys.CoordOf(nd.Location())
	dist, err := c.net.MoveNodeDist(e.nodeID, e.target)
	if err != nil {
		return fmt.Errorf("async: process %d move: %w", e.pid, err)
	}
	c.col.RecordMove(e.pid, dist)
	dense.Clear(c.departing, c.sys.Index(from))
	c.claimPID[c.sys.Index(e.vacancy)] = 0
	if !e.final {
		// A cascading head vacated its grid; the claim travels there.
		c.claimPID[c.sys.Index(from)] = int32(e.pid) + 1
	}
	if e.final {
		if p, ok := c.liveProc(e.pid); ok {
			c.finish(p, metrics.Converged)
		}
	}
	return nil
}

func (c *Controller) finish(p *proc, outcome metrics.Outcome) {
	if outcome == metrics.Failed {
		dense.Set(c.failed, c.sys.Index(p.walk.Origin()))
	}
	c.col.Finish(p.id, outcome, int(c.now*1000))
	p.done = true
	c.active--
}

// Finalize marks all still-active processes failed; call it at a deadline.
func (c *Controller) Finalize() {
	for i := range c.procs {
		if p := &c.procs[i]; !p.done {
			c.finish(p, metrics.Failed)
		}
	}
}
