package async

import (
	"math"
	"testing"

	"wsncover/internal/coverage"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// scenario builds a network with one head per cell except holes, plus one
// spare per listed cell.
func scenario(t *testing.T, cols, rows int, holes, spares []grid.Coord) (*network.Network, *hamilton.Topology) {
	t.Helper()
	sys, err := grid.New(cols, rows, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(sys, node.EnergyModel{})
	holeSet := map[grid.Coord]bool{}
	for _, h := range holes {
		holeSet[h] = true
	}
	for _, c := range sys.AllCoords() {
		if !holeSet[c] {
			if _, err := net.AddNodeAt(sys.Center(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := randx.New(17)
	for _, c := range spares {
		if _, err := net.AddNodeAt(rng.InRect(sys.CellRect(c))); err != nil {
			t.Fatal(err)
		}
	}
	net.ElectHeads()
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return net, topo
}

func newCtrl(t *testing.T, net *network.Network, topo *hamilton.Topology, seed int64) *Controller {
	t.Helper()
	c, err := New(net, Config{Topology: topo, RNG: randx.New(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	net, topo := scenario(t, 4, 4, nil, nil)
	if _, err := New(net, Config{}); err == nil {
		t.Error("missing topology should fail")
	}
	otherSys, err := grid.New(6, 4, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	otherTopo, err := hamilton.Build(otherSys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, Config{Topology: otherTopo}); err == nil {
		t.Error("mismatched grids should fail")
	}
	c := newCtrl(t, net, topo, 1)
	if c.Name() != "SR-async" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestNoHolesNoProcesses(t *testing.T) {
	net, topo := scenario(t, 4, 4, nil, nil)
	c := newCtrl(t, net, topo, 1)
	if _, err := c.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if got := c.Collector().Summarize().Initiated; got != 0 {
		t.Errorf("initiated = %d", got)
	}
}

func TestSingleHoleRecovered(t *testing.T) {
	net, topo := scenario(t, 6, 6, []grid.Coord{grid.C(3, 3)}, []grid.Coord{grid.C(0, 0)})
	c := newCtrl(t, net, topo, 2)
	if _, err := c.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	s := c.Collector().Summarize()
	if s.Initiated != 1 || s.Converged != 1 {
		t.Fatalf("summary = %v", s)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
	if c.Now() <= 0 {
		t.Error("simulation time should advance")
	}
}

func TestExactlyOneProcessPerHoleAsync(t *testing.T) {
	// The synchronization property must survive asynchrony: jittered
	// polls from different monitors never double-initiate.
	holes := []grid.Coord{grid.C(1, 1), grid.C(6, 6), grid.C(1, 6), grid.C(6, 1)}
	spares := []grid.Coord{grid.C(0, 0), grid.C(7, 7), grid.C(0, 7), grid.C(7, 0)}
	for seed := int64(0); seed < 10; seed++ {
		net, topo := scenario(t, 8, 8, holes, spares)
		c := newCtrl(t, net, topo, seed)
		if _, err := c.RunUntil(1e6); err != nil {
			t.Fatal(err)
		}
		s := c.Collector().Summarize()
		if s.Initiated != len(holes) {
			t.Fatalf("seed %d: initiated = %d, want %d", seed, s.Initiated, len(holes))
		}
		if s.Converged != len(holes) {
			t.Fatalf("seed %d: converged = %d: %v", seed, s.Converged, s)
		}
		if !coverage.Complete(net) {
			t.Fatalf("seed %d: coverage incomplete", seed)
		}
	}
}

func TestCascadeMovesMatchWalkAsync(t *testing.T) {
	// Spare k hops back along the walk: still exactly k movements.
	sys, err := grid.New(4, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole := grid.C(1, 3)
	w := topo.NewWalk(hole)
	const k = 4
	for i := 1; i < k; i++ {
		w.Advance(nil)
	}
	spareCell := w.Current()
	net, _ := scenario(t, 4, 5, []grid.Coord{hole}, []grid.Coord{spareCell})
	c := newCtrl(t, net, topo, 3)
	if _, err := c.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	s := c.Collector().Summarize()
	if s.Moves != k {
		t.Errorf("moves = %d, want %d", s.Moves, k)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
}

func TestZeroSparesFails(t *testing.T) {
	net, topo := scenario(t, 4, 4, []grid.Coord{grid.C(2, 2)}, nil)
	c := newCtrl(t, net, topo, 4)
	if _, err := c.RunUntil(1e5); err != nil {
		t.Fatal(err)
	}
	c.Finalize()
	s := c.Collector().Summarize()
	if s.Initiated != 1 || s.Failed != 1 {
		t.Errorf("summary = %v", s)
	}
	// No re-initiation storm after failure.
	if _, err := c.RunUntil(c.Now() + 100); err != nil {
		t.Fatal(err)
	}
	if got := c.Collector().Summarize().Initiated; got != 1 {
		t.Errorf("initiated grew to %d", got)
	}
}

func TestDualPathAsync(t *testing.T) {
	sys, err := grid.New(5, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	a, b, cc, d, _ := topo.ABCD()
	for _, hole := range []grid.Coord{a, b, cc, d, grid.C(0, 0)} {
		spare := grid.C(2, 0)
		if hole == spare {
			spare = grid.C(0, 2)
		}
		net, _ := scenario(t, 5, 5, []grid.Coord{hole}, []grid.Coord{spare})
		c := newCtrl(t, net, topo, 5)
		if _, err := c.RunUntil(1e6); err != nil {
			t.Fatal(err)
		}
		if !coverage.Complete(net) {
			t.Errorf("hole at %v not recovered", hole)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) metrics.Summary {
		net, topo := scenario(t, 6, 6, []grid.Coord{grid.C(2, 4)}, []grid.Coord{grid.C(5, 0)})
		c := newCtrl(t, net, topo, seed)
		if _, err := c.RunUntil(1e6); err != nil {
			t.Fatal(err)
		}
		return c.Collector().Summarize()
	}
	if run(9) != run(9) {
		t.Error("same seed must reproduce")
	}
}

func TestTimingRealism(t *testing.T) {
	// With 1 m/s movement and cells of 10 m, a k-hop cascade takes at
	// least k * (minimum hop distance) seconds.
	sys, err := grid.New(4, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole := grid.C(1, 3)
	w := topo.NewWalk(hole)
	const k = 5
	for i := 1; i < k; i++ {
		w.Advance(nil)
	}
	net, _ := scenario(t, 4, 5, []grid.Coord{hole}, []grid.Coord{w.Current()})
	c := newCtrl(t, net, topo, 6)
	if _, err := c.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	if !coverage.Complete(net) {
		t.Fatal("not recovered")
	}
	minTime := float64(k) * 2.5 // k hops, min r/4 = 2.5 m each at 1 m/s
	if c.Now() < minTime {
		t.Errorf("recovery at t=%.2f s faster than physically possible %.2f s", c.Now(), minTime)
	}
}

func TestMovementDistanceBoundsAsync(t *testing.T) {
	net, topo := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(0, 0)})
	c := newCtrl(t, net, topo, 7)
	if _, err := c.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	s := c.Collector().Summarize()
	r := 10.0
	lo := float64(s.Moves) * r / 4
	hi := float64(s.Moves) * math.Sqrt(58) / 4 * r
	if s.Distance < lo-1e-9 || s.Distance > hi+1e-9 {
		t.Errorf("distance %v outside [%v, %v]", s.Distance, lo, hi)
	}
}

func TestRunUntilDeadlineStopsEarly(t *testing.T) {
	net, topo := scenario(t, 16, 16, []grid.Coord{grid.C(8, 8)}, []grid.Coord{grid.C(0, 15)})
	c := newCtrl(t, net, topo, 8)
	// A tiny deadline cannot finish a long cascade.
	if _, err := c.RunUntil(0.01); err != nil {
		t.Fatal(err)
	}
	if coverage.Complete(net) {
		t.Skip("recovered implausibly fast")
	}
	if c.Now() > 0.011 {
		t.Errorf("time overshot deadline: %v", c.Now())
	}
	// Resume and finish.
	if _, err := c.RunUntil(1e6); err != nil {
		t.Fatal(err)
	}
	if !coverage.Complete(net) {
		t.Error("resumed run should recover")
	}
}
