// Package deploy populates a network with sensor nodes and injects the
// failures that create coverage holes.
//
// Deployment strategies cover the paper's uniform random placement plus
// the clustered and per-grid layouts used by the examples and ablation
// benches. Failure injectors model random node failure, the region-wide
// jamming attack of Xu et al. cited in the paper's introduction, and
// battery depletion proportional to distance traveled.
package deploy

import (
	"fmt"
	"math"
	"sync"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// deployScratch is the pooled working set of the deployment hot path:
// the permutation buffer of PickHoleCells and the hole marks and
// occupied-cell list of Controlled. On large grids these dominated
// per-trial allocation (a 256x256 permutation alone is 512 KB), so the
// replicate engine's steady state recycles them through a sync.Pool.
// Scratch is returned to the pool with hole marks cleared; slice
// contents are garbage and re-truncated on every use.
type deployScratch struct {
	perm     []int
	occupied []grid.Coord
	hole     []bool
}

var scratchPool = sync.Pool{New: func() any { return new(deployScratch) }}

// Uniform scatters count nodes uniformly at random over the whole field.
// This is the paper's deployment model.
func Uniform(w *network.Network, count int, rng *randx.Rand) error {
	bounds := w.System().Bounds()
	for i := 0; i < count; i++ {
		if _, err := w.AddNodeAt(rng.InRect(bounds)); err != nil {
			return fmt.Errorf("uniform deploy: %w", err)
		}
	}
	return nil
}

// PerGrid places exactly perCell nodes uniformly inside every cell,
// producing a perfectly balanced deployment (the idealized layout the
// density arguments of [3] and [6] assume).
func PerGrid(w *network.Network, perCell int, rng *randx.Rand) error {
	sys := w.System()
	for _, c := range sys.AllCoords() {
		rect := sys.CellRect(c)
		for i := 0; i < perCell; i++ {
			if _, err := w.AddNodeAt(rng.InRect(rect)); err != nil {
				return fmt.Errorf("per-grid deploy: %w", err)
			}
		}
	}
	return nil
}

// Clustered drops count nodes around k cluster centers with a Gaussian
// spread of sigma, clamped to the field. It models air-dropped
// deployments whose density is uneven, the situation in which holes are
// most likely.
func Clustered(w *network.Network, count, k int, sigma float64, rng *randx.Rand) error {
	if k < 1 {
		return fmt.Errorf("clustered deploy: k=%d clusters", k)
	}
	bounds := w.System().Bounds()
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = rng.InRect(bounds)
	}
	for i := 0; i < count; i++ {
		c := centers[rng.Intn(k)]
		p := geom.Pt(
			c.X+rng.NormFloat64()*sigma,
			c.Y+rng.NormFloat64()*sigma,
		)
		p = bounds.Clamp(p)
		// Clamp can land on the exclusive north/east boundary; nudge in.
		p.X = math.Min(p.X, bounds.Max.X-1e-9)
		p.Y = math.Min(p.Y, bounds.Max.Y-1e-9)
		if _, err := w.AddNodeAt(p); err != nil {
			return fmt.Errorf("clustered deploy: %w", err)
		}
	}
	return nil
}

// Controlled builds the experimental configuration of Section 5 with an
// exact spare budget: every cell outside holeCells receives one node (the
// future head) at a uniform position, then spares additional nodes are
// scattered uniformly over the non-hole cells. The cells in holeCells stay
// empty, so after ElectHeads the network has exactly len(holeCells)
// simultaneous holes and exactly spares spare nodes (the paper's N).
func Controlled(w *network.Network, spares int, holeCells []grid.Coord, rng *randx.Rand) error {
	sys := w.System()
	for _, h := range holeCells {
		if !sys.Contains(h) {
			return fmt.Errorf("controlled deploy: hole %v off-grid", h)
		}
	}
	sc := scratchPool.Get().(*deployScratch)
	defer scratchPool.Put(sc)
	n := sys.NumCells()
	if cap(sc.hole) < n {
		sc.hole = make([]bool, n)
	}
	hole := sc.hole[:n]
	for _, h := range holeCells {
		hole[sys.Index(h)] = true
	}
	occupied := sc.occupied[:0]
	for idx := 0; idx < n; idx++ {
		if !hole[idx] {
			occupied = append(occupied, sys.CoordAt(idx))
		}
	}
	sc.occupied = occupied
	// Clear the marks immediately so the scratch returns to the pool
	// clean on every exit path.
	for _, h := range holeCells {
		hole[sys.Index(h)] = false
	}
	if len(occupied) == 0 && spares > 0 {
		return fmt.Errorf("controlled deploy: no non-hole cells for %d spares", spares)
	}
	for _, c := range occupied {
		if _, err := w.AddNodeAt(rng.InRect(sys.CellRect(c))); err != nil {
			return fmt.Errorf("controlled deploy: %w", err)
		}
	}
	for i := 0; i < spares; i++ {
		c := occupied[rng.Intn(len(occupied))]
		if _, err := w.AddNodeAt(rng.InRect(sys.CellRect(c))); err != nil {
			return fmt.Errorf("controlled deploy: %w", err)
		}
	}
	w.ElectHeads()
	return nil
}

// Resupply scatters count fresh spare nodes uniformly over the occupied
// (non-vacant) cells, modelling a mid-run delivery of replacement
// hardware. Landing only in occupied cells keeps the arrivals spares —
// each cell already has a head, so no election is needed and no vacancy
// is repaired for free; the replacement scheme still has to move them.
// When every cell is vacant (the damage wiped the network out), the
// batch scatters over all cells instead and the landed nodes are elected
// heads — a delivery into a dead field restarts surveillance where it
// lands rather than being lost.
func Resupply(w *network.Network, count int, rng *randx.Rand) error {
	if count <= 0 {
		return nil
	}
	sys := w.System()
	sc := scratchPool.Get().(*deployScratch)
	defer scratchPool.Put(sc)
	occupied := sc.occupied[:0]
	for idx := 0; idx < sys.NumCells(); idx++ {
		c := sys.CoordAt(idx)
		if !w.IsVacant(c) {
			occupied = append(occupied, c)
		}
	}
	sc.occupied = occupied
	wipeout := len(occupied) == 0
	for i := 0; i < count; i++ {
		var c grid.Coord
		if wipeout {
			c = sys.CoordAt(rng.Intn(sys.NumCells()))
		} else {
			c = occupied[rng.Intn(len(occupied))]
		}
		if _, err := w.AddNodeAt(rng.InRect(sys.CellRect(c))); err != nil {
			return fmt.Errorf("resupply: %w", err)
		}
	}
	if wipeout {
		// Arrivals in vacant cells have no head to join; stand them up.
		w.ElectHeads()
	}
	return nil
}

// FailRandom disables count enabled nodes chosen uniformly at random,
// returning how many were actually disabled (fewer when the network has
// fewer enabled nodes).
func FailRandom(w *network.Network, count int, rng *randx.Rand) int {
	var enabled []node.ID
	for id := node.ID(0); int(id) < w.NumNodes(); id++ {
		if w.Node(id).Enabled() {
			enabled = append(enabled, id)
		}
	}
	picks := rng.Sample(len(enabled), count)
	for _, i := range picks {
		// Error impossible: ids come from the enabled scan.
		_ = w.DisableNode(enabled[i])
	}
	return len(picks)
}

// FailRegion disables every enabled node within radius of center,
// modelling the jamming attack of Xu et al. [8] that depletes node density
// in an area. It returns the number of nodes disabled.
func FailRegion(w *network.Network, center geom.Point, radius float64) int {
	hit := w.NodesWithin(nil, center, radius)
	for _, id := range hit {
		_ = w.DisableNode(id)
	}
	return len(hit)
}

// FailCells empties the given cells entirely, the direct way to create a
// deterministic set of holes. It returns the number of nodes disabled.
func FailCells(w *network.Network, cells []grid.Coord) int {
	n := 0
	for _, c := range cells {
		n += w.DisableAllInCell(c)
	}
	return n
}

// FailDepleted disables every enabled node whose movement energy account
// exceeds budget, modelling battery depletion after extended mobility. It
// returns the number of nodes disabled.
func FailDepleted(w *network.Network, budget float64) int {
	n := 0
	for id := node.ID(0); int(id) < w.NumNodes(); id++ {
		nd := w.Node(id)
		if nd.Enabled() && nd.EnergySpent() > budget {
			_ = w.DisableNode(id)
			n++
		}
	}
	return n
}

// PickHoleCells chooses count distinct cells uniformly at random to become
// holes. When avoidAdjacent is set, no two chosen cells are edge-adjacent,
// which keeps each hole's replacement walk initially independent.
func PickHoleCells(sys *grid.System, count int, avoidAdjacent bool, rng *randx.Rand) ([]grid.Coord, error) {
	if count < 0 || count > sys.NumCells() {
		return nil, fmt.Errorf("deploy: cannot pick %d holes from %d cells", count, sys.NumCells())
	}
	sc := scratchPool.Get().(*deployScratch)
	defer scratchPool.Put(sc)
	sc.perm = rng.PermInto(sc.perm, sys.NumCells())
	perm := sc.perm
	var out []grid.Coord
	for _, idx := range perm {
		if len(out) == count {
			break
		}
		c := sys.CoordAt(idx)
		if avoidAdjacent {
			conflict := false
			for _, prev := range out {
				if c.IsNeighbor(prev) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
		}
		out = append(out, c)
	}
	if len(out) < count {
		return nil, fmt.Errorf("deploy: only %d/%d non-adjacent holes fit", len(out), count)
	}
	return out, nil
}
