package deploy

import (
	"testing"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

func newNet(t *testing.T, cols, rows int, cell float64) *network.Network {
	t.Helper()
	sys, err := grid.New(cols, rows, cell, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return network.New(sys, node.EnergyModel{})
}

func TestUniform(t *testing.T) {
	w := newNet(t, 8, 8, 2)
	if err := Uniform(w, 500, randx.New(1)); err != nil {
		t.Fatal(err)
	}
	if w.NumNodes() != 500 {
		t.Errorf("NumNodes = %d", w.NumNodes())
	}
	// All nodes inside the field.
	bounds := w.System().Bounds()
	for id := node.ID(0); int(id) < w.NumNodes(); id++ {
		if !bounds.Contains(w.Node(id).Location()) {
			t.Fatalf("node %d at %v outside field", id, w.Node(id).Location())
		}
	}
	// With 500 nodes over 64 cells almost certainly every cell is hit;
	// check the deployment is reasonably spread instead of exact.
	w.ElectHeads()
	occupied := 0
	for _, c := range w.System().AllCoords() {
		if !w.IsVacant(c) {
			occupied++
		}
	}
	if occupied < 55 {
		t.Errorf("only %d/64 cells occupied; uniform spread suspect", occupied)
	}
}

func TestPerGrid(t *testing.T) {
	w := newNet(t, 4, 3, 1)
	if err := PerGrid(w, 3, randx.New(2)); err != nil {
		t.Fatal(err)
	}
	if w.NumNodes() != 36 {
		t.Errorf("NumNodes = %d, want 36", w.NumNodes())
	}
	w.ElectHeads()
	for _, c := range w.System().AllCoords() {
		if got := w.SpareCount(c); got != 2 {
			t.Errorf("cell %v spare count = %d, want 2", c, got)
		}
	}
}

func TestClustered(t *testing.T) {
	w := newNet(t, 10, 10, 1)
	if err := Clustered(w, 300, 3, 1.5, randx.New(3)); err != nil {
		t.Fatal(err)
	}
	if w.NumNodes() != 300 {
		t.Errorf("NumNodes = %d", w.NumNodes())
	}
	bounds := w.System().Bounds()
	for id := node.ID(0); int(id) < w.NumNodes(); id++ {
		if !bounds.Contains(w.Node(id).Location()) {
			t.Fatalf("node %d outside field", id)
		}
	}
	// Clustering should leave some cells empty (3 tight clusters cannot
	// blanket 100 cells with 300 points of sigma 1.5).
	w.ElectHeads()
	if len(w.VacantCells(nil)) == 0 {
		t.Error("clustered deployment left no holes; distribution suspect")
	}
	if err := Clustered(w, 10, 0, 1, randx.New(1)); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestControlled(t *testing.T) {
	w := newNet(t, 16, 16, 4.4721)
	holes := []grid.Coord{grid.C(3, 3), grid.C(10, 12)}
	if err := Controlled(w, 55, holes, randx.New(4)); err != nil {
		t.Fatal(err)
	}
	// Exactly N spares, exactly the requested holes.
	if got := w.TotalSpares(); got != 55 {
		t.Errorf("TotalSpares = %d, want 55", got)
	}
	vac := w.VacantCells(nil)
	if len(vac) != 2 {
		t.Fatalf("VacantCells = %v", vac)
	}
	for _, h := range holes {
		if !w.IsVacant(h) {
			t.Errorf("hole %v not vacant", h)
		}
	}
	// 254 occupied cells each have a head.
	heads := 0
	for _, c := range w.System().AllCoords() {
		if w.HeadOf(c) != node.Invalid {
			heads++
		}
	}
	if heads != 254 {
		t.Errorf("heads = %d, want 254", heads)
	}
	if w.EnabledCount() != 254+55 {
		t.Errorf("enabled = %d, want %d", w.EnabledCount(), 254+55)
	}
}

func TestControlledValidation(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	if err := Controlled(w, 1, []grid.Coord{grid.C(9, 9)}, randx.New(1)); err == nil {
		t.Error("off-grid hole should fail")
	}
	w2 := newNet(t, 2, 1, 1)
	allHoles := []grid.Coord{grid.C(0, 0), grid.C(1, 0)}
	if err := Controlled(w2, 1, allHoles, randx.New(1)); err == nil {
		t.Error("no non-hole cells with spares should fail")
	}
	// Zero spares with all holes is acceptable (degenerate but valid).
	w3 := newNet(t, 2, 1, 1)
	if err := Controlled(w3, 0, allHoles, randx.New(1)); err != nil {
		t.Errorf("zero-spare all-hole deploy: %v", err)
	}
}

func TestFailRandom(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	if err := Uniform(w, 100, randx.New(5)); err != nil {
		t.Fatal(err)
	}
	got := FailRandom(w, 30, randx.New(6))
	if got != 30 {
		t.Errorf("disabled %d, want 30", got)
	}
	if w.EnabledCount() != 70 {
		t.Errorf("enabled = %d, want 70", w.EnabledCount())
	}
	// Requesting more than available disables everything.
	got = FailRandom(w, 1000, randx.New(7))
	if got != 70 || w.EnabledCount() != 0 {
		t.Errorf("disabled %d, enabled %d", got, w.EnabledCount())
	}
}

func TestFailRegion(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	a, err := w.AddNodeAt(geom.Pt(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddNodeAt(geom.Pt(3.5, 3.5))
	if err != nil {
		t.Fatal(err)
	}
	got := FailRegion(w, geom.Pt(0.5, 0.5), 1.0)
	if got != 1 {
		t.Errorf("jammed %d, want 1", got)
	}
	if w.Node(a).Enabled() {
		t.Error("node in jam radius should be disabled")
	}
	if !w.Node(b).Enabled() {
		t.Error("node outside jam radius should survive")
	}
}

func TestFailCells(t *testing.T) {
	w := newNet(t, 3, 1, 1)
	if err := PerGrid(w, 2, randx.New(8)); err != nil {
		t.Fatal(err)
	}
	got := FailCells(w, []grid.Coord{grid.C(0, 0), grid.C(2, 0)})
	if got != 4 {
		t.Errorf("disabled %d, want 4", got)
	}
	if !w.IsVacant(grid.C(0, 0)) || !w.IsVacant(grid.C(2, 0)) || w.IsVacant(grid.C(1, 0)) {
		t.Error("wrong cells vacated")
	}
}

func TestFailDepleted(t *testing.T) {
	sys, err := grid.New(2, 1, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	w := network.New(sys, node.EnergyModel{PerMeter: 1})
	mover, err := w.AddNodeAt(geom.Pt(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	idle, err := w.AddNodeAt(geom.Pt(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	w.ElectHeads()
	if err := w.MoveNode(mover, geom.Pt(14, 5)); err != nil {
		t.Fatal(err)
	}
	got := FailDepleted(w, 5)
	if got != 1 {
		t.Errorf("depleted %d, want 1", got)
	}
	if w.Node(mover).Enabled() {
		t.Error("heavy mover should be depleted")
	}
	if !w.Node(idle).Enabled() {
		t.Error("idle node should survive")
	}
}

func TestPickHoleCells(t *testing.T) {
	sys, err := grid.New(6, 6, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	holes, err := PickHoleCells(sys, 5, false, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(holes) != 5 {
		t.Fatalf("picked %d", len(holes))
	}
	seen := map[grid.Coord]bool{}
	for _, h := range holes {
		if seen[h] {
			t.Error("duplicate hole")
		}
		seen[h] = true
		if !sys.Contains(h) {
			t.Error("hole off grid")
		}
	}
}

func TestPickHoleCellsAvoidAdjacent(t *testing.T) {
	sys, err := grid.New(8, 8, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		holes, err := PickHoleCells(sys, 6, true, randx.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := range holes {
			for j := i + 1; j < len(holes); j++ {
				if holes[i].IsNeighbor(holes[j]) {
					t.Fatalf("seed %d: adjacent holes %v, %v", seed, holes[i], holes[j])
				}
			}
		}
	}
}

func TestPickHoleCellsErrors(t *testing.T) {
	sys, err := grid.New(2, 2, 1, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PickHoleCells(sys, 5, false, randx.New(1)); err == nil {
		t.Error("too many holes should fail")
	}
	// 2x2 grid admits at most 2 mutually non-adjacent cells.
	if _, err := PickHoleCells(sys, 3, true, randx.New(1)); err == nil {
		t.Error("infeasible non-adjacent request should fail")
	}
	if got, err := PickHoleCells(sys, 0, false, randx.New(1)); err != nil || len(got) != 0 {
		t.Errorf("zero holes: %v, %v", got, err)
	}
}
