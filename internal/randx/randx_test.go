package randx

import (
	"math"
	"testing"

	"wsncover/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	equal := 0
	for i := 0; i < 50; i++ {
		if c1.Int63() == c2.Int63() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("%d/50 collisions between split streams", equal)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 20; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same parent+label must give same child stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("only %d/7 values seen", len(seen))
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.03 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) should never hit")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestInRect(t *testing.T) {
	r := New(5)
	rect := geom.RectFromSize(geom.Pt(2, 3), 4, 5)
	for i := 0; i < 500; i++ {
		p := r.InRect(rect)
		if !rect.Contains(p) {
			t.Fatalf("InRect point %v outside %v", p, rect)
		}
	}
}

func TestInRectCoversArea(t *testing.T) {
	// Quadrant counts should be roughly balanced.
	r := New(6)
	rect := geom.RectFromSize(geom.Pt(0, 0), 2, 2)
	var q [4]int
	const n = 4000
	for i := 0; i < n; i++ {
		p := r.InRect(rect)
		idx := 0
		if p.X >= 1 {
			idx++
		}
		if p.Y >= 1 {
			idx += 2
		}
		q[idx]++
	}
	for i, c := range q {
		if c < n/4-300 || c > n/4+300 {
			t.Errorf("quadrant %d count = %d, expected ~%d", i, c, n/4)
		}
	}
}

func TestPick(t *testing.T) {
	r := New(7)
	if r.Pick(0) != -1 {
		t.Error("Pick(0) should be -1")
	}
	for i := 0; i < 100; i++ {
		v := r.Pick(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Pick(5) = %d", v)
		}
	}
}

func TestSample(t *testing.T) {
	r := New(8)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample = %v", s)
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
	// k >= n returns all n.
	all := r.Sample(3, 10)
	if len(all) != 3 {
		t.Errorf("Sample(3, 10) = %v", all)
	}
}

func TestShuffle(t *testing.T) {
	r := New(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		if seen[v] {
			t.Fatal("shuffle lost elements")
		}
		seen[v] = true
	}
}

func TestNormFloat64(t *testing.T) {
	r := New(10)
	sum, sum2 := 0.0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(sd-1) > 0.05 {
		t.Errorf("normal sample mean=%v sd=%v", mean, sd)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a := New(42)
		b := New(42)
		var buf []int
		got := b.PermInto(buf, n)
		want := a.Perm(n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto diverges from Perm at %d: %v vs %v", n, i, got, want)
			}
		}
		// The streams must have advanced identically.
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: stream state diverged after permutation", n)
		}
	}
}

func TestPermIntoReusesCapacity(t *testing.T) {
	r := New(7)
	buf := make([]int, 0, 128)
	allocs := testing.AllocsPerRun(10, func() {
		buf = r.PermInto(buf[:0], 100)
	})
	if allocs > 0 {
		t.Errorf("PermInto with sufficient capacity allocates %.1f times", allocs)
	}
}
