// Package randx supplies the deterministic pseudo-random infrastructure for
// the simulator. Every stochastic component receives an explicit *Rand so
// that trials are reproducible from a single seed and sub-streams can be
// split without correlation (each trial, deployment, and scheme draws from
// its own derived stream).
package randx

import (
	"math/rand"

	"wsncover/internal/geom"
)

// Rand is a seeded pseudo-random stream. It wraps math/rand.Rand and adds
// the geometry-aware helpers the simulator needs.
type Rand struct {
	src *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The child's seed mixes the
// parent stream state with the supplied label so that distinct labels give
// distinct streams even when requested in a different order across runs of
// the same code path.
func (r *Rand) Split(label int64) *Rand {
	const golden = int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)
	mix := r.src.Int63() ^ (label * golden)
	return New(mix)
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// NormFloat64 returns a standard normal variate.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// PermInto writes a random permutation of [0, n) into dst, reusing its
// capacity, and returns it. It draws exactly the variates math/rand's
// Perm draws, in the same order, so Perm and PermInto advance the stream
// identically and produce identical permutations from equal states —
// PermInto is the allocation-free form hot deployment paths use.
func (r *Rand) PermInto(dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	// The i=0 iteration is a self-swap but still consumes one Intn(1)
	// draw, mirroring math/rand.Perm's Go 1 stream compatibility.
	for i := 0; i < n; i++ {
		j := r.src.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// InRect returns a point uniformly distributed in rect.
func (r *Rand) InRect(rect geom.Rect) geom.Point {
	return geom.Point{
		X: rect.Min.X + r.src.Float64()*rect.Width(),
		Y: rect.Min.Y + r.src.Float64()*rect.Height(),
	}
}

// Pick returns a uniformly chosen index of a slice of length n, or -1 when
// n == 0.
func (r *Rand) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.src.Intn(n)
}

// Sample picks k distinct integers from [0, n) uniformly at random. When
// k >= n it returns a permutation of all n integers.
func (r *Rand) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	perm := r.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
