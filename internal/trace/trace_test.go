package trace

import (
	"strings"
	"testing"

	"wsncover/internal/core"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

func TestRecorderDirectEvents(t *testing.T) {
	r := NewRecorder()
	r.RoundStarted(1)
	r.NodeMoved(3, geom.Pt(0, 0), geom.Pt(3, 4), grid.C(0, 0), grid.C(1, 0))
	r.MessageSent(network.Message{From: grid.C(1, 0), To: grid.C(0, 0), Process: 7})
	r.NodeDisabled(5, grid.C(2, 2))
	r.HeadElected(6, grid.C(2, 2))

	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}
	events := r.Events()
	if events[0].Kind != Round || events[0].Round != 1 {
		t.Errorf("event 0 = %+v", events[0])
	}
	mv := events[1]
	if mv.Kind != Move || mv.Node != 3 || mv.Distance != 5 || mv.Round != 1 {
		t.Errorf("move event = %+v", mv)
	}
	if events[2].Process != 7 {
		t.Errorf("send event = %+v", events[2])
	}
	if r.Count(Move) != 1 || r.Count(Send) != 1 || r.Count(Disable) != 1 || r.Count(Elect) != 1 {
		t.Error("counts wrong")
	}
	if r.TotalDistance() != 5 {
		t.Errorf("TotalDistance = %v", r.TotalDistance())
	}
	if len(r.MovesOf(3)) != 1 || len(r.MovesOf(9)) != 0 {
		t.Error("MovesOf wrong")
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatal("Seq not sequential")
		}
	}
}

func TestEventStrings(t *testing.T) {
	r := NewRecorder()
	r.RoundStarted(2)
	r.NodeMoved(1, geom.Pt(0, 0), geom.Pt(1, 0), grid.C(0, 0), grid.C(1, 0))
	r.MessageSent(network.Message{From: grid.C(1, 0), To: grid.C(0, 0)})
	r.NodeDisabled(2, grid.C(0, 0))
	r.HeadElected(3, grid.C(0, 0))
	for _, e := range r.Events() {
		if e.String() == "" {
			t.Errorf("empty String for %v", e.Kind)
		}
	}
	if Kind(42).String() == "" || Move.String() != "move" {
		t.Error("Kind strings")
	}
}

func TestMaxEventsRing(t *testing.T) {
	r := NewRecorder()
	r.MaxEvents = 3
	for i := 0; i < 10; i++ {
		r.RoundStarted(i)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", r.Dropped())
	}
	events := r.Events()
	if events[0].Round != 7 || events[2].Round != 9 {
		t.Errorf("retained rounds = %v", events)
	}
	if !strings.Contains(r.Summary(), "dropped=7") {
		t.Errorf("Summary = %q", r.Summary())
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.RoundStarted(1)
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder()
	r.RoundStarted(1)
	r.HeadElected(2, grid.C(1, 1))
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Errorf("lines = %v", lines)
	}
}

// TestRecorderOnLiveRecovery attaches the recorder to an SR run and
// cross-checks the trace against the controller's metrics.
func TestRecorderOnLiveRecovery(t *testing.T) {
	sys, err := grid.New(6, 6, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(sys, node.EnergyModel{})
	for _, c := range sys.AllCoords() {
		if c == grid.C(3, 3) {
			continue // the hole
		}
		if _, err := net.AddNodeAt(sys.Center(c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.AddNodeAt(geom.Pt(5, 5)); err != nil { // spare in (0,0)
		t.Fatal(err)
	}
	net.ElectHeads()

	rec := NewRecorder()
	net.SetObserver(rec)

	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(net, core.Config{Topology: topo, RNG: randx.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	idle := 0
	for r := 0; r < 200 && idle < 3; r++ {
		if err := ctrl.Step(); err != nil {
			t.Fatal(err)
		}
		if ctrl.Done() {
			idle++
		} else {
			idle = 0
		}
	}

	s := ctrl.Collector().Summarize()
	if got := rec.Count(Move); got != s.Moves {
		t.Errorf("trace moves = %d, metrics = %d", got, s.Moves)
	}
	if got := rec.Count(Send); got != s.Messages {
		t.Errorf("trace sends = %d, metrics = %d", got, s.Messages)
	}
	if d := rec.TotalDistance(); d < s.Distance-1e-9 || d > s.Distance+1e-9 {
		t.Errorf("trace distance = %v, metrics = %v", d, s.Distance)
	}
	// Every mover's hops are between adjacent cells.
	for _, e := range rec.Events() {
		if e.Kind == Move && !e.FromCell.IsNeighbor(e.ToCell) {
			t.Errorf("movement across non-adjacent cells: %v", e)
		}
	}
	if !strings.Contains(rec.Summary(), "move=") {
		t.Errorf("Summary = %q", rec.Summary())
	}
}
