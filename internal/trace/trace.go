// Package trace records network events (movements, messages, failures,
// elections, rounds) into a structured, queryable log. Attach a Recorder
// to a network via SetObserver to capture the full history of a recovery
// run; write it out as text for debugging or feed it to assertions in
// tests.
package trace

import (
	"fmt"
	"io"
	"strings"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
)

// Kind is the event type.
type Kind int

// Event kinds. Enums start at 1 so the zero value is invalid.
const (
	// Move is a node relocation.
	Move Kind = iota + 1
	// Send is a control-message transmission.
	Send
	// Disable is a node leaving the collaboration.
	Disable
	// Elect is a cell gaining a head.
	Elect
	// Round is the synchronous clock advancing.
	Round
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Move:
		return "move"
	case Send:
		return "send"
	case Disable:
		return "disable"
	case Elect:
		return "elect"
	case Round:
		return "round"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence. Unused fields are zero.
type Event struct {
	// Seq is the global sequence number, starting at 0.
	Seq int
	// Round is the network round the event happened in.
	Round int
	// Kind discriminates the payload fields.
	Kind Kind
	// Node is the acting node (Move, Disable, Elect).
	Node node.ID
	// From and To are locations for Move.
	From, To geom.Point
	// FromCell and ToCell are grid addresses (Move, Send); Disable and
	// Elect use FromCell as the subject cell.
	FromCell, ToCell grid.Coord
	// Process is the replacement-process id for Send.
	Process int
	// Distance is the movement length for Move.
	Distance float64
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case Move:
		return fmt.Sprintf("#%d r%d move node %d %v->%v (%.2f)",
			e.Seq, e.Round, e.Node, e.FromCell, e.ToCell, e.Distance)
	case Send:
		return fmt.Sprintf("#%d r%d send p%d %v->%v",
			e.Seq, e.Round, e.Process, e.FromCell, e.ToCell)
	case Disable:
		return fmt.Sprintf("#%d r%d disable node %d in %v", e.Seq, e.Round, e.Node, e.FromCell)
	case Elect:
		return fmt.Sprintf("#%d r%d elect node %d in %v", e.Seq, e.Round, e.Node, e.FromCell)
	case Round:
		return fmt.Sprintf("#%d round %d", e.Seq, e.Round)
	default:
		return fmt.Sprintf("#%d r%d %v", e.Seq, e.Round, e.Kind)
	}
}

// Recorder is a network.Observer that appends every event to memory. It
// is not safe for concurrent use, matching the network's model.
type Recorder struct {
	events []Event
	round  int
	// MaxEvents bounds memory; once exceeded, oldest events are dropped.
	// Zero means unbounded.
	MaxEvents int
	dropped   int
}

// Compile-time interface check.
var _ network.Observer = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) push(e Event) {
	e.Seq = len(r.events) + r.dropped
	e.Round = r.round
	r.events = append(r.events, e)
	if r.MaxEvents > 0 && len(r.events) > r.MaxEvents {
		over := len(r.events) - r.MaxEvents
		r.events = append(r.events[:0], r.events[over:]...)
		r.dropped += over
	}
}

// NodeMoved implements network.Observer.
func (r *Recorder) NodeMoved(id node.ID, from, to geom.Point, fromCell, toCell grid.Coord) {
	r.push(Event{
		Kind: Move, Node: id,
		From: from, To: to,
		FromCell: fromCell, ToCell: toCell,
		Distance: from.Dist(to),
	})
}

// MessageSent implements network.Observer.
func (r *Recorder) MessageSent(m network.Message) {
	r.push(Event{Kind: Send, FromCell: m.From, ToCell: m.To, Process: m.Process})
}

// NodeDisabled implements network.Observer.
func (r *Recorder) NodeDisabled(id node.ID, cell grid.Coord) {
	r.push(Event{Kind: Disable, Node: id, FromCell: cell})
}

// HeadElected implements network.Observer.
func (r *Recorder) HeadElected(id node.ID, cell grid.Coord) {
	r.push(Event{Kind: Elect, Node: id, FromCell: cell})
}

// RoundStarted implements network.Observer.
func (r *Recorder) RoundStarted(round int) {
	r.round = round
	r.push(Event{Kind: Round})
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns the number of events discarded under MaxEvents.
func (r *Recorder) Dropped() int { return r.dropped }

// Count returns how many retained events have the given kind.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for i := range r.events {
		if r.events[i].Kind == k {
			n++
		}
	}
	return n
}

// MovesOf returns the movement events of one node in order.
func (r *Recorder) MovesOf(id node.ID) []Event {
	var out []Event
	for _, e := range r.events {
		if e.Kind == Move && e.Node == id {
			out = append(out, e)
		}
	}
	return out
}

// TotalDistance sums the distance of all recorded movements.
func (r *Recorder) TotalDistance() float64 {
	d := 0.0
	for i := range r.events {
		if r.events[i].Kind == Move {
			d += r.events[i].Distance
		}
	}
	return d
}

// Reset clears the log.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.dropped = 0
	r.round = 0
}

// WriteText writes the log, one event per line.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts on one line.
func (r *Recorder) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d events", len(r.events))
	for _, k := range []Kind{Move, Send, Disable, Elect, Round} {
		if n := r.Count(k); n > 0 {
			fmt.Fprintf(&b, " %s=%d", k, n)
		}
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, " dropped=%d", r.dropped)
	}
	return b.String()
}
