package core

import (
	"fmt"
	"reflect"
	"testing"

	"wsncover/internal/coverage"
	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// diffScenario describes one lockstep comparison between the event-driven
// detector and the reference full scan.
type diffScenario struct {
	cols, rows int
	holes      int
	adjacent   bool
	spares     int
	shortcut   bool
	claimTTL   int
	loss       float64
	// jamRound > 0 injects a mid-run jam at that round, exercising
	// journal-driven detection of holes that appear while cascades run.
	jamRound int
	jamCell  grid.Coord
}

// buildDiffNet deploys one network for the scenario with the given seed.
// Both arms call it with equal seeds, so they face identical layouts.
func buildDiffNet(t *testing.T, sc diffScenario, seed int64) (*network.Network, *hamilton.Topology) {
	t.Helper()
	sys, err := grid.New(sc.cols, sc.rows, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(sys, node.EnergyModel{})
	rng := randx.New(seed)
	holes, err := deploy.PickHoleCells(sys, sc.holes, !sc.adjacent, rng.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := deploy.Controlled(net, sc.spares, holes, rng.Split(2)); err != nil {
		t.Fatal(err)
	}
	if sc.loss > 0 {
		if err := net.SetMessageLoss(sc.loss, randx.New(seed+7)); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return net, topo
}

// netFingerprint summarizes the externally observable network state; any
// behavioral divergence between the two detectors changes it within a
// round or two (positions feed off the shared RNG stream).
func netFingerprint(net *network.Network) string {
	sum := 0.0
	for id := 0; id < net.NumNodes(); id++ {
		nd := net.Node(node.ID(id))
		p := nd.Location()
		sum += p.X*1e-3 + p.Y
		if nd.Enabled() {
			sum += 17
		}
	}
	return fmt.Sprintf("moves=%d dist=%.9g msgs=%d lost=%d vacant=%d heads=%v pos=%.9g",
		net.TotalMoves(), net.TotalDistance(), net.MessagesSent(), net.MessagesLost(),
		net.VacantCount(), net.AllHeadsPresent(), sum)
}

// TestDetectorsBitIdentical drives both detectors in lockstep over a grid
// of scenarios — cycle and dual-path topologies, adjacent and scattered
// holes, spare droughts, the shortcut extension, ClaimTTL expiry on a
// lossy radio, and mid-run jamming — and requires identical observable
// state after every single round, plus identical process accounting at
// the end.
func TestDetectorsBitIdentical(t *testing.T) {
	scenarios := []diffScenario{
		{cols: 4, rows: 4, holes: 1, spares: 3},
		{cols: 8, rows: 8, holes: 4, spares: 10},
		{cols: 8, rows: 8, holes: 6, adjacent: true, spares: 4},
		{cols: 8, rows: 8, holes: 3, spares: 0},                 // no spares: walks exhaust
		{cols: 5, rows: 5, holes: 3, adjacent: true, spares: 5}, // dual path
		{cols: 7, rows: 5, holes: 4, spares: 6, shortcut: true}, // dual path + shortcut
		{cols: 16, rows: 16, holes: 8, spares: 40},
		{cols: 8, rows: 8, holes: 2, spares: 12, claimTTL: 6, loss: 0.3},
		{cols: 8, rows: 8, holes: 3, spares: 12, claimTTL: 4, loss: 0.15, adjacent: true},
		{cols: 8, rows: 8, holes: 2, spares: 20, jamRound: 3, jamCell: grid.C(6, 6)},
		{cols: 5, rows: 5, holes: 1, spares: 8, jamRound: 2, jamCell: grid.C(4, 4)}, // jam at dual-path A
	}
	for i, sc := range scenarios {
		sc := sc
		t.Run(fmt.Sprintf("scenario%02d_%dx%d", i, sc.cols, sc.rows), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				runDiff(t, sc, seed)
			}
		})
	}
}

func runDiff(t *testing.T, sc diffScenario, seed int64) {
	t.Helper()
	netEvent, topo := buildDiffNet(t, sc, seed)
	netScan, _ := buildDiffNet(t, sc, seed)

	mk := func(net *network.Network, fullScan bool) *Controller {
		cfg := Config{
			Topology:         topo,
			RNG:              randx.New(seed * 31),
			NeighborShortcut: sc.shortcut,
			ClaimTTL:         sc.claimTTL,
			FullScanDetect:   fullScan,
		}
		c, err := New(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	event := mk(netEvent, false)
	scan := mk(netScan, true)

	maxRounds := 2*sc.cols*sc.rows + 16
	if sc.loss > 0 {
		maxRounds *= 4 // expiry and retries take extra rounds
	}
	idle := 0
	for r := 0; r < maxRounds; r++ {
		if sc.jamRound > 0 && r == sc.jamRound {
			netEvent.DisableAllInCell(sc.jamCell)
			netScan.DisableAllInCell(sc.jamCell)
		}
		if err := event.Step(); err != nil {
			t.Fatalf("seed %d round %d: event: %v", seed, r, err)
		}
		if err := scan.Step(); err != nil {
			t.Fatalf("seed %d round %d: scan: %v", seed, r, err)
		}
		if a, b := netFingerprint(netEvent), netFingerprint(netScan); a != b {
			t.Fatalf("seed %d: diverged at round %d:\nevent: %s\nscan:  %s", seed, r, a, b)
		}
		if event.ActiveProcesses() != scan.ActiveProcesses() {
			t.Fatalf("seed %d round %d: procs %d vs %d",
				seed, r, event.ActiveProcesses(), scan.ActiveProcesses())
		}
		if event.Done() && scan.Done() {
			idle++
			if idle >= 3 {
				break
			}
		} else {
			idle = 0
		}
	}

	if !reflect.DeepEqual(event.Collector().Processes(), scan.Collector().Processes()) {
		t.Fatalf("seed %d: process logs differ:\n%+v\nvs\n%+v",
			seed, event.Collector().Processes(), scan.Collector().Processes())
	}
	if a, b := event.Collector().Summarize(), scan.Collector().Summarize(); a != b {
		t.Fatalf("seed %d: summaries differ: %+v vs %+v", seed, a, b)
	}
	if a, b := coverage.Complete(netEvent), coverage.Complete(netScan); a != b {
		t.Fatalf("seed %d: completion differs: %v vs %v", seed, a, b)
	}
	if bad := netEvent.Audit(); len(bad) > 0 {
		t.Fatalf("seed %d: event-arm audit: %v", seed, bad)
	}
}

// TestEventDetectRoundIsAllocationFree pins the satellite claim: once the
// buffers are warm, steady-state idle rounds allocate nothing.
func TestEventDetectRoundIsAllocationFree(t *testing.T) {
	net, topo := buildDiffNet(t, diffScenario{cols: 16, rows: 16, holes: 2, spares: 30}, 3)
	c, err := New(net, Config{Topology: topo, RNG: randx.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // run to convergence, warm every buffer
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("idle round allocates %.1f times", allocs)
	}
}
