// Package core implements the paper's contribution: the synchronized
// snake-like cascading replacement scheme (SR) driven by a directed
// Hamilton cycle (Algorithm 1) or, on odd x odd grids, by the dual-path
// Hamilton cycle (Algorithm 2).
//
// Every grid is monitored by exactly one head, the predecessor along the
// Hamilton structure. When a monitored grid becomes vacant, that head — and
// only that head — initiates a replacement process:
//
//  1. If the initiator's grid holds a spare node, the spare moves into the
//     vacant grid before the next round and the process converges.
//  2. Otherwise the initiator notifies its own predecessor along the walk
//     and, once the notification is received, moves itself into the vacant
//     grid, leaving its grid vacant for the cascading replacement.
//
// The cascade repeats backward along the Hamilton path until a grid with a
// spare is found. Because the structure is directed and each grid has one
// monitor, exactly one replacement process serves each hole and processes
// for simultaneous holes are conflict-free.
//
// Departing heads announce the hand-off to their 1-hop neighborhood, so a
// grid vacated by a cascade is never mistaken for a fresh hole; the
// controller models this with a claims registry keyed by grid.
//
// The controller's state is struct-of-arrays: processes live in a dense
// pid-indexed table (collector pids are handed out from zero per trial),
// and the claim, departing, failed-origin, and standing-hole registries
// are per-cell columns and bitsets instead of maps. A Scratch pools all
// of it across trials, so a steady-state replicate allocates nothing in
// the controller.
package core

import (
	"fmt"
	"slices"

	"wsncover/internal/dense"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// MsgCascade is the message kind of the cascade notification: "I am about
// to move into my successor's vacancy; refill my grid for process P".
const MsgCascade = 1

// Config parameterizes the SR controller.
type Config struct {
	// Topology is the Hamilton structure over the network's grid system.
	Topology *hamilton.Topology
	// RNG drives destination sampling inside central areas.
	RNG *randx.Rand
	// NeighborShortcut enables the paper's future-work extension: before
	// cascading further, the asked head also checks its other 1-hop
	// neighbor grids for spares and pulls from one directly when found,
	// shortening the stretch path.
	NeighborShortcut bool
	// ClaimTTL makes the scheme tolerate a lossy radio: a vacancy claim
	// or a process that makes no progress for ClaimTTL rounds expires, so
	// the vacancy is re-detected as a fresh hole and served by a new
	// process. Zero disables expiry (the paper's reliable-channel model).
	ClaimTTL int
	// ByzantineFrac corrupts that fraction of cells (at least one when
	// positive): their heads are liars that report false vacancies among
	// the grids they monitor, spawning phantom replacement processes
	// whose claims sit on occupied cells until the ClaimTTL expiry clears
	// them. Requires ClaimTTL > 0 — without expiry a phantom process
	// would never terminate. ByzantineProb is each liar's per-round lie
	// probability; ByzantineLies bounds the lies each liar tells (0 =
	// unlimited, which prevents convergence before the round budget).
	ByzantineFrac float64
	ByzantineProb float64
	ByzantineLies int
	// FullScanDetect selects the reference O(cells) per-round hole scan
	// instead of the event-driven detector fed by the network's vacancy
	// journal. The two are bit-identical (enforced by differential tests);
	// the full scan exists as the executable specification and for
	// benchmarking the win.
	FullScanDetect bool
	// Collector, when non-nil, is adopted as the metrics store after
	// being Reset; nil allocates a fresh one. Pooled trial arenas pass
	// their per-worker collector so replicates reuse its capacity.
	Collector *metrics.Collector
	// Scratch, when non-nil, supplies the controller's pooled state: New
	// reuses the scratch-held tables (cleared) instead of allocating, and
	// the returned controller aliases the scratch. At most one live
	// controller per scratch; building a new one invalidates the old.
	Scratch *Scratch
}

// Scratch pools one controller's dense state across trials. The zero
// value is ready to use.
type Scratch struct{ ctrl Controller }

// proc is the controller-side record of one replacement process. Records
// live in a dense pid-indexed table and are never removed mid-trial;
// done marks finished processes.
type proc struct {
	id   int
	walk hamilton.Walk
	// lastRound is the last round with progress (a served request or a
	// held notification), used by the ClaimTTL expiry.
	lastRound int
	// phantom marks a process spawned by a byzantine monitor's false
	// vacancy report: it is never served, makes no progress, and only the
	// ClaimTTL expiry ends it. Its origin claim is dropped on finish and
	// it never enters failedOrigins — the origin was never a real hole.
	phantom bool
	done    bool
}

// claim marks a vacant grid as owned by a process since a given round.
type claim struct {
	pid   int
	round int
}

// departure is a head movement scheduled for the start of the next round,
// after its cascade notification has been received (Algorithm 1, steps b
// and c).
type departure struct {
	pid     int
	nodeID  node.ID
	from    grid.Coord
	vacancy grid.Coord
}

// Controller runs the SR scheme over a network. It is not safe for
// concurrent use.
type Controller struct {
	net  *network.Network
	topo *hamilton.Topology
	sys  *grid.System
	rng  *randx.Rand
	col  *metrics.Collector

	shortcut bool
	claimTTL int

	// Byzantine state: the sorted liar cells, their per-liar remaining
	// lie budgets (parallel slice; -1 = unlimited), and the lie
	// probability.
	liars     []grid.Coord
	lieBudget []int
	byzProb   float64

	// procs is the dense process table, indexed by pid. The collector
	// hands out pids sequentially from zero per trial and the controller
	// is its only caller, so pid == len(procs) at every StartProcess.
	// active counts the not-yet-finished entries.
	procs  []proc
	active int

	// claimPID/claimRound are the per-cell claims registry: claimPID
	// holds pid+1 of the owning process (0 = unclaimed), claimRound the
	// round the claim was placed. Vacant grids with a live claim are
	// never treated as fresh holes.
	claimPID   []int32
	claimRound []int32
	// failedOrigins marks holes whose process exhausted the walk without
	// finding a spare; they stay claimed so detection does not re-fire
	// every round. ResetFailed clears them for dynamic scenarios.
	failedOrigins []uint64
	// departing marks heads already committed to a move this round.
	departing []uint64
	pending   []departure

	// fullScan selects the reference O(cells) detector.
	fullScan bool
	// holeList/holePos are the event-driven detector's standing set of
	// vacant cells awaiting a live claim: holeList the members (unordered;
	// detection sorts a copy), holePos each cell's position+1 in it (0 =
	// absent). Seeded from a one-time scan at construction, then
	// maintained from the network's vacancy journal, so per-round
	// detection is O(holes), not O(cells).
	holeList []grid.Coord
	holePos  []int32

	// Scratch buffers reused across rounds so the round loop does not
	// allocate: inbox snapshot, journal drain, detection candidates, and
	// the shortcut's neighbor probe.
	inboxBuf []network.Message
	eventBuf []grid.Coord
	candBuf  []grid.Coord
	nbrBuf   []grid.Coord
	watchBuf []grid.Coord
}

// New creates an SR controller for the network. The topology must be built
// over the same grid system.
func New(net *network.Network, cfg Config) (*Controller, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: missing topology")
	}
	ts, ns := cfg.Topology.System(), net.System()
	if ts.Cols() != ns.Cols() || ts.Rows() != ns.Rows() ||
		ts.CellSize() != ns.CellSize() || ts.Origin() != ns.Origin() {
		return nil, fmt.Errorf("core: topology grid %v differs from network grid %v", ts, ns)
	}
	if cfg.ByzantineFrac < 0 || cfg.ByzantineFrac > 1 {
		return nil, fmt.Errorf("core: byzantine fraction %g outside [0,1]", cfg.ByzantineFrac)
	}
	if cfg.ByzantineFrac > 0 && cfg.ClaimTTL <= 0 {
		return nil, fmt.Errorf("core: byzantine monitors require ClaimTTL > 0 to expire phantom processes")
	}
	rng := cfg.RNG
	if rng == nil {
		rng = randx.New(1)
	}
	col := cfg.Collector
	if col == nil {
		col = metrics.NewCollector()
	} else {
		col.Reset()
	}
	var c *Controller
	if cfg.Scratch != nil {
		c = &cfg.Scratch.ctrl
	} else {
		c = new(Controller)
	}
	n := ns.NumCells()
	// Field-by-field reinit: slices keep their backing arrays (truncated
	// or cleared), everything else is overwritten, so a pooled controller
	// starts byte-identical to a fresh one.
	*c = Controller{
		net:      net,
		topo:     cfg.Topology,
		sys:      ns,
		rng:      rng,
		col:      col,
		shortcut: cfg.NeighborShortcut,
		claimTTL: cfg.ClaimTTL,
		byzProb:  cfg.ByzantineProb,
		fullScan: cfg.FullScanDetect,

		liars:     c.liars[:0],
		lieBudget: c.lieBudget[:0],
		procs:     c.procs[:0],

		claimPID:      dense.Int32s(c.claimPID, n),
		claimRound:    dense.Int32s(c.claimRound, n),
		failedOrigins: dense.Bits(c.failedOrigins, n),
		departing:     dense.Bits(c.departing, n),
		pending:       c.pending[:0],

		holeList: c.holeList[:0],
		holePos:  dense.Int32s(c.holePos, n),

		inboxBuf: c.inboxBuf[:0],
		eventBuf: c.eventBuf[:0],
		candBuf:  c.candBuf[:0],
		nbrBuf:   c.nbrBuf[:0],
		watchBuf: c.watchBuf[:0],
	}
	if cfg.ByzantineFrac > 0 {
		k := int(cfg.ByzantineFrac*float64(n) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		// The liar draw consumes rng state only on byzantine trials, so
		// legacy configurations keep their stream shape. Sample returns an
		// unsorted permutation prefix; sort so the per-round lie pass
		// visits liars in cell-index order (determinism contract).
		idx := rng.Sample(n, k)
		slices.Sort(idx)
		for _, cell := range idx {
			c.liars = append(c.liars, ns.CoordAt(cell))
			if cfg.ByzantineLies > 0 {
				c.lieBudget = append(c.lieBudget, cfg.ByzantineLies)
			} else {
				c.lieBudget = append(c.lieBudget, -1)
			}
		}
	}
	if !c.fullScan {
		// Seed the standing hole set from the network as handed over:
		// damage injected before the controller existed never produced
		// journal events this consumer saw. Stale pre-construction events
		// are discarded unseen (deployment journals one event per cell —
		// materializing them would dominate a pooled trial's allocation);
		// from here on the journal is authoritative.
		c.net.DiscardVacancyEvents()
		c.eventBuf = c.net.VacantCells(c.eventBuf[:0])
		for _, g := range c.eventBuf {
			c.holeAdd(g)
		}
	}
	return c, nil
}

// Name identifies the scheme in experiment output.
func (c *Controller) Name() string {
	if c.shortcut {
		return "SR+shortcut"
	}
	return "SR"
}

// Collector exposes the metrics collected so far.
func (c *Controller) Collector() *metrics.Collector { return c.col }

// Done reports whether no replacement process is active.
func (c *Controller) Done() bool { return c.active == 0 }

// ActiveProcesses returns the number of processes still cascading.
func (c *Controller) ActiveProcesses() int { return c.active }

// alive reports whether pid names a still-running process.
func (c *Controller) alive(pid int) bool {
	return pid >= 0 && pid < len(c.procs) && !c.procs[pid].done
}

// liveProc returns the record of a still-running process.
func (c *Controller) liveProc(pid int) (*proc, bool) {
	if !c.alive(pid) {
		return nil, false
	}
	return &c.procs[pid], true
}

// startProc appends the record for a freshly started process. pid must be
// the value the collector just handed out; pids are dense from zero, so
// it always equals len(procs).
func (c *Controller) startProc(p proc) *proc {
	c.procs = append(c.procs, p)
	c.active++
	return &c.procs[len(c.procs)-1]
}

// claimAt reads the claims registry for cell s.
func (c *Controller) claimAt(s grid.Coord) (claim, bool) {
	idx := c.sys.Index(s)
	if c.claimPID[idx] == 0 {
		return claim{}, false
	}
	return claim{pid: int(c.claimPID[idx] - 1), round: int(c.claimRound[idx])}, true
}

// setClaim records a claim on cell s.
func (c *Controller) setClaim(s grid.Coord, cl claim) {
	idx := c.sys.Index(s)
	c.claimPID[idx] = int32(cl.pid) + 1
	c.claimRound[idx] = int32(cl.round)
}

// dropClaim removes any claim on cell s.
func (c *Controller) dropClaim(s grid.Coord) { c.claimPID[c.sys.Index(s)] = 0 }

// isDeparting reports whether the head of g is committed to a move.
func (c *Controller) isDeparting(g grid.Coord) bool { return dense.Has(c.departing, c.sys.Index(g)) }

// holeAdd inserts g into the standing hole set (no-op when present).
func (c *Controller) holeAdd(g grid.Coord) {
	idx := c.sys.Index(g)
	if c.holePos[idx] != 0 {
		return
	}
	c.holeList = append(c.holeList, g)
	c.holePos[idx] = int32(len(c.holeList))
}

// holeRemove deletes g from the standing hole set by swap-removal.
func (c *Controller) holeRemove(g grid.Coord) {
	idx := c.sys.Index(g)
	pos := c.holePos[idx]
	if pos == 0 {
		return
	}
	last := len(c.holeList) - 1
	moved := c.holeList[last]
	c.holeList[int(pos)-1] = moved
	c.holePos[c.sys.Index(moved)] = pos
	c.holeList = c.holeList[:last]
	c.holePos[idx] = 0
}

// ResetFailed clears the failed-origin registry and every claim left by a
// dead process so that holes that could not be repaired earlier (no
// spares) are re-detected, e.g. after new nodes arrive in a dynamic
// scenario.
func (c *Controller) ResetFailed() {
	for idx, pid := range c.claimPID {
		if pid != 0 && !c.alive(int(pid-1)) {
			c.claimPID[idx] = 0
		}
	}
	clear(c.failedOrigins)
}

// Step runs one synchronous round: deliver messages, execute announced
// head departures, serve cascade notifications, expire stalled state (when
// ClaimTTL is set), then detect fresh holes.
func (c *Controller) Step() error {
	c.net.StepRound()
	if err := c.executeDepartures(); err != nil {
		return err
	}
	if err := c.serveInbox(); err != nil {
		return err
	}
	c.expireStalled()
	c.tellLies()
	return c.detect()
}

// tellLies lets each byzantine monitor report a false vacancy: a phantom
// replacement process is registered for an occupied, unclaimed grid the
// liar watches. The phantom is never served (no message ever references
// it), so it makes no progress and the ClaimTTL expiry is the only thing
// that ends it — while it lives, its claim masks genuine vacancies of
// that grid from detection. Lying runs between expiry and detection, and
// touches neither detector's inputs for vacant cells, so the full-scan
// and event-driven detectors stay bit-identical under it.
func (c *Controller) tellLies() {
	if len(c.liars) == 0 {
		return
	}
	round := c.net.Round()
	for i, g := range c.liars {
		if c.lieBudget[i] == 0 {
			continue
		}
		if c.net.HeadOf(g) == node.Invalid || c.isDeparting(g) {
			continue // a lie needs a live, uncommitted head to tell it
		}
		if !c.rng.Bool(c.byzProb) {
			continue
		}
		// Lie about an occupied, unclaimed watched grid: claimed grids
		// already have a process (real or phantom) attached, and a vacant
		// grid would make the report true.
		c.watchBuf = c.topo.Monitored(c.watchBuf[:0], g)
		target := grid.Coord{}
		found := false
		for _, s := range c.watchBuf {
			if c.net.IsVacant(s) {
				continue
			}
			if _, claimed := c.claimAt(s); claimed {
				continue
			}
			target, found = s, true
			break
		}
		if !found {
			continue
		}
		if c.lieBudget[i] > 0 {
			c.lieBudget[i]--
		}
		pid := c.col.StartProcess(target, round)
		c.startProc(proc{
			id:        pid,
			walk:      c.topo.WalkFrom(target),
			lastRound: round,
			phantom:   true,
		})
		c.setClaim(target, claim{pid: pid, round: round})
	}
}

// expireStalled fails processes that made no progress for ClaimTTL rounds
// (their cascade notification was lost on the radio). Their claims are
// dropped by detect's liveness check, so the abandoned vacancy is
// re-detected and served by a fresh process.
func (c *Controller) expireStalled() {
	if c.claimTTL <= 0 {
		return
	}
	round := c.net.Round()
	for i := range c.procs {
		p := &c.procs[i]
		if p.done {
			continue
		}
		if round-p.lastRound > c.claimTTL {
			c.finish(p, metrics.Failed)
			// Allow the hole to be retried by a fresh process.
			dense.Clear(c.failedOrigins, c.sys.Index(p.walk.Origin()))
		}
	}
}

// executeDepartures moves the heads that announced a cascade hand-off last
// round into their target vacancies (Algorithm 1 step c).
func (c *Controller) executeDepartures() error {
	pending := c.pending
	c.pending = c.pending[:0]
	for _, d := range pending {
		dense.Clear(c.departing, c.sys.Index(d.from))
		if nd := c.net.Node(d.nodeID); !nd.Valid() || !nd.Enabled() {
			// The committed head died before its scheduled move (mid-run
			// damage: a churn wave, depletion); the cascade cannot
			// continue and the process fails. Unlike a spare-drought
			// failure, the outstanding vacancy is repairable — release
			// its claim so detection serves it with a fresh process.
			if cl, claimed := c.claimAt(d.vacancy); claimed && cl.pid == d.pid {
				c.dropClaim(d.vacancy)
			}
			if p, ok := c.liveProc(d.pid); ok {
				c.finish(p, metrics.Failed)
				dense.Clear(c.failedOrigins, c.sys.Index(p.walk.Origin()))
			}
			continue
		}
		if err := c.moveInto(d.pid, d.nodeID, d.vacancy); err != nil {
			return err
		}
		if !c.net.IsVacant(d.from) {
			// The departed grid re-elected a head on the spot: a node that
			// arrived after the hand-off was committed (resupply) got
			// promoted when the old head left. Nothing is left to refill,
			// so the cascade completes here; the in-flight notification
			// finds no live process and is dropped. Claiming the occupied
			// grid instead would leak the claim if the cascade stalled.
			if p, ok := c.liveProc(d.pid); ok {
				c.finish(p, metrics.Converged)
			}
			continue
		}
		// The departed grid is now this process's vacancy.
		c.setClaim(d.from, claim{pid: d.pid, round: c.net.Round()})
	}
	return nil
}

// moveInto relocates a node into the claimed vacancy cell, charging the
// process metrics and releasing the claim.
func (c *Controller) moveInto(pid int, id node.ID, vacancy grid.Coord) error {
	nd := c.net.Node(id)
	if !nd.Valid() {
		return fmt.Errorf("core: process %d references unknown node %d", pid, id)
	}
	target := c.net.CentralTarget(vacancy, c.rng)
	dist, err := c.net.MoveNodeDist(id, target)
	if err != nil {
		return fmt.Errorf("core: process %d move: %w", pid, err)
	}
	c.col.RecordMove(pid, dist)
	c.dropClaim(vacancy)
	return nil
}

// serveInbox handles cascade notifications delivered this round.
func (c *Controller) serveInbox() error {
	// Snapshot into a controller-owned scratch buffer: serving may enqueue
	// (requeue) into the network's queues, and a fresh copy per round is
	// exactly the allocation the hot loop must not make.
	c.inboxBuf = append(c.inboxBuf[:0], c.net.Inbox()...)
	for _, m := range c.inboxBuf {
		if m.Kind != MsgCascade {
			continue
		}
		p, ok := c.liveProc(m.Process)
		if !ok {
			continue
		}
		cur := m.To
		if c.net.HeadOf(cur) == node.Invalid || c.isDeparting(cur) {
			// The asked grid is itself vacant (another travelling
			// vacancy) or its head is already committed; hold the
			// notification until a head is available.
			p.lastRound = c.net.Round()
			c.net.RequeueMessage(m)
			continue
		}
		p.lastRound = c.net.Round()
		c.col.RecordHop(p.id)
		if err := c.serveRequest(p, cur, m.From); err != nil {
			return err
		}
	}
	return nil
}

// serveRequest lets grid cur supply a node for the process's vacancy: a
// spare if available, otherwise the head cascades onward. vacancy is the
// grid to refill.
func (c *Controller) serveRequest(p *proc, cur, vacancy grid.Coord) error {
	if donor := c.pickSpare(cur, vacancy); donor != node.Invalid {
		if err := c.moveInto(p.id, donor, vacancy); err != nil {
			return err
		}
		c.finish(p, metrics.Converged)
		return nil
	}
	return c.cascade(p, cur, vacancy)
}

// pickSpare selects a spare to donate: one of cur's own spares, or — with
// the shortcut extension — a spare from any 1-hop neighbor grid of the
// vacancy, preferring cur's own.
func (c *Controller) pickSpare(cur, vacancy grid.Coord) node.ID {
	target := c.sys.Center(vacancy)
	if id := c.net.SpareNearest(cur, target); id != node.Invalid {
		return id
	}
	if !c.shortcut {
		return node.Invalid
	}
	// Future-work shortcut: the asked head also knows its own 1-hop
	// neighborhood; pull a spare from a neighboring grid of the vacancy
	// directly if one exists (the mover still crosses one cell boundary).
	c.nbrBuf = c.sys.Neighbors(c.nbrBuf[:0], vacancy)
	for _, nb := range c.nbrBuf {
		if nb == cur {
			continue
		}
		if id := c.net.SpareNearest(nb, target); id != node.Invalid {
			return id
		}
	}
	return node.Invalid
}

// cascade advances the process's walk: cur notifies the next grid backward
// and schedules its own head's departure into the vacancy.
func (c *Controller) cascade(p *proc, cur, vacancy grid.Coord) error {
	probe := func(g grid.Coord) bool { return c.net.HasSpare(g) }
	if !p.walk.Advance(probe) {
		// Walk exhausted: no spare reachable; the vacancy stays and the
		// process fails (possible only when the network is out of
		// spares, per Theorem 1 / Corollary 1).
		c.finish(p, metrics.Failed)
		return nil
	}
	next := p.walk.Current()
	head := c.net.HeadOf(cur)
	if head == node.Invalid {
		return fmt.Errorf("core: cascade at vacant grid %v", cur)
	}
	msg := network.Message{
		From:    cur,
		To:      next,
		Kind:    MsgCascade,
		Process: p.id,
		Hops:    p.walk.Hops(),
		Origin:  p.walk.Origin(),
	}
	if err := c.net.Send(msg); err != nil {
		return fmt.Errorf("core: cascade notify: %w", err)
	}
	c.col.RecordMessage()
	dense.Set(c.departing, c.sys.Index(cur))
	c.pending = append(c.pending, departure{
		pid:     p.id,
		nodeID:  head,
		from:    cur,
		vacancy: vacancy,
	})
	return nil
}

// detect lets every monitoring head check its watched grids and initiate
// replacement processes for fresh, unclaimed holes.
//
// The event-driven detector consumes the network's vacancy journal into a
// standing hole set and visits only current holes, ordered by their
// monitor's cell index (rank-ordered within a monitor). That is exactly
// the order the reference full scan discovers them in, and every
// eligibility condition is evaluated lazily at visit time, so mid-pass
// state changes (a donor filling a hole whose new head then detects its
// own watched grid this same round; a monitor committing to a cascade) are
// observed identically. Differential tests enforce bit-identical behavior.
func (c *Controller) detect() error {
	if c.fullScan {
		return c.detectFullScan()
	}
	c.eventBuf = c.net.DrainVacancyEvents(c.eventBuf[:0])
	for _, g := range c.eventBuf {
		if c.net.IsVacant(g) {
			c.holeAdd(g)
		} else {
			c.holeRemove(g)
		}
	}
	c.candBuf = append(c.candBuf[:0], c.holeList...)
	// Sort by the monitor scan key. Keys are unique: a monitor watches at
	// most two grids and ranks split that tie.
	slices.SortFunc(c.candBuf, func(a, b grid.Coord) int {
		return c.detectKey(a) - c.detectKey(b)
	})
	for _, s := range c.candBuf {
		g := c.topo.MonitorOf(s)
		if c.net.HeadOf(g) == node.Invalid || c.isDeparting(g) {
			continue
		}
		if !c.net.IsVacant(s) {
			continue // filled earlier this pass by a donated spare
		}
		if !c.admitClaimed(s) {
			continue
		}
		if err := c.initiate(g, s); err != nil {
			return err
		}
	}
	return nil
}

// detectKey orders hole s by (monitor cell index, rank within the
// monitor's watch list), the visit order of the reference full scan.
func (c *Controller) detectKey(s grid.Coord) int {
	return c.sys.Index(c.topo.MonitorOf(s))*2 + c.topo.MonitorRank(s)
}

// admitClaimed applies the claim-liveness rule shared by both detectors:
// a vacancy with a live, fresh claim is not a fresh hole; a stalled or
// orphaned claim is expired (claims of dead processes are kept when no
// TTL is configured — failed origins must not re-fire every round).
func (c *Controller) admitClaimed(s grid.Coord) bool {
	cl, claimed := c.claimAt(s)
	if !claimed {
		return true
	}
	alive := c.alive(cl.pid)
	fresh := c.claimTTL <= 0 || c.net.Round()-cl.round <= c.claimTTL
	if alive && fresh {
		return false
	}
	if c.claimTTL <= 0 {
		return false
	}
	c.dropClaim(s)
	return true
}

// detectFullScan is the reference detector exactly as the seed wrote it:
// every monitoring head checks its watched grids in cell-index order,
// O(cells) work and allocation per round. It is kept as the executable
// specification the event-driven path is verified against and as the
// baseline the large-trial benchmarks compare to.
func (c *Controller) detectFullScan() error {
	var watched []grid.Coord
	for _, g := range c.sys.AllCoords() {
		if c.net.HeadOf(g) == node.Invalid || c.isDeparting(g) {
			continue
		}
		watched = c.topo.Monitored(watched[:0], g)
		for _, s := range watched {
			if !c.net.IsVacant(s) {
				continue
			}
			if !c.admitClaimed(s) {
				continue
			}
			if err := c.initiate(g, s); err != nil {
				return err
			}
			if c.isDeparting(g) {
				break // this head is committed now
			}
		}
	}
	return nil
}

// initiate starts the unique replacement process for the hole at s,
// detected by the head of grid g (its monitor).
func (c *Controller) initiate(g, s grid.Coord) error {
	pid := c.col.StartProcess(s, c.net.Round())
	p := c.startProc(proc{id: pid, walk: c.topo.WalkFrom(s), lastRound: c.net.Round()})
	c.setClaim(s, claim{pid: pid, round: c.net.Round()})
	c.col.RecordHop(pid)
	if p.walk.Current() != g {
		return fmt.Errorf("core: monitor mismatch: %v detected hole %v but walk starts at %v",
			g, s, p.walk.Current())
	}
	return c.serveRequest(p, g, s)
}

// finish closes a process.
func (c *Controller) finish(p *proc, outcome metrics.Outcome) {
	if p.phantom {
		// The phantom repaired nothing. Drop its lie claim so the grid is
		// observable again, and skip failedOrigins — the origin was never
		// a real hole, so nothing there needs to stay suppressed.
		if cl, ok := c.claimAt(p.walk.Origin()); ok && cl.pid == p.id {
			c.dropClaim(p.walk.Origin())
		}
		c.col.Finish(p.id, outcome, c.net.Round())
		p.done = true
		c.active--
		return
	}
	if outcome == metrics.Failed {
		dense.Set(c.failedOrigins, c.sys.Index(p.walk.Origin()))
		// Keep the origin claim so detection does not re-fire; the
		// travelling vacancy claim (if any) stays too, since nothing
		// will fill it.
	}
	c.col.Finish(p.id, outcome, c.net.Round())
	p.done = true
	c.active--
}

// Finalize marks all still-active processes failed; call it when a run
// hits its round budget.
func (c *Controller) Finalize() {
	for i := range c.procs {
		if p := &c.procs[i]; !p.done {
			c.finish(p, metrics.Failed)
		}
	}
}

// AuditClaims checks the controller's bookkeeping invariants and returns
// human-readable violations, sorted (empty = clean). It is meant for a
// converged controller: every claim owned by a dead process must sit on
// a vacant cell (a failed origin or an unfillable travelling vacancy —
// a dead-process claim on an occupied cell is a leak that would mask a
// future hole there forever), and the event-driven detector's standing
// hole set must agree with a full vacancy scan once the journal has been
// drained by the last Step.
func (c *Controller) AuditClaims() []string {
	var bad []string
	for idx, pid := range c.claimPID {
		if pid == 0 {
			continue
		}
		if g := c.sys.CoordAt(idx); !c.alive(int(pid-1)) && !c.net.IsVacant(g) {
			bad = append(bad, fmt.Sprintf(
				"core: claim on occupied cell %v owned by dead process %d", g, int(pid-1)))
		}
	}
	if !c.fullScan {
		// A cell with an undrained journal flip is lag, not disagreement:
		// a donor filled it during the final detect pass, after that
		// pass's drain, and the next drain would resync it. That is the
		// only post-drain mutation a Step performs, so at rest the two
		// views must agree everywhere else.
		for _, g := range c.holeList {
			if !c.net.IsVacant(g) && !c.net.VacancyFlipPending(g) {
				bad = append(bad, fmt.Sprintf(
					"core: standing hole set contains occupied cell %v", g))
			}
		}
		for _, g := range c.net.VacantCells(nil) {
			if c.holePos[c.sys.Index(g)] != 0 || c.net.VacancyFlipPending(g) {
				continue
			}
			bad = append(bad, fmt.Sprintf(
				"core: vacant cell %v missing from standing hole set", g))
		}
	}
	slices.Sort(bad)
	return bad
}
