package core

import (
	"math"
	"testing"
	"testing/quick"

	"wsncover/internal/coverage"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// scenario builds a network with one head per cell except the given holes,
// plus spares in the named cells (one per occurrence).
func scenario(t *testing.T, cols, rows int, holes, spares []grid.Coord) (*network.Network, *hamilton.Topology) {
	t.Helper()
	sys, err := grid.New(cols, rows, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	net := network.New(sys, node.EnergyModel{})
	holeSet := make(map[grid.Coord]bool)
	for _, h := range holes {
		holeSet[h] = true
	}
	for _, c := range sys.AllCoords() {
		if holeSet[c] {
			continue
		}
		if _, err := net.AddNodeAt(sys.Center(c)); err != nil {
			t.Fatal(err)
		}
	}
	rng := randx.New(99)
	for _, c := range spares {
		if holeSet[c] {
			t.Fatalf("spare requested in hole cell %v", c)
		}
		if _, err := net.AddNodeAt(rng.InRect(sys.CellRect(c))); err != nil {
			t.Fatal(err)
		}
	}
	net.ElectHeads()
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	return net, topo
}

func newSR(t *testing.T, net *network.Network, topo *hamilton.Topology) *Controller {
	t.Helper()
	c, err := New(net, Config{Topology: topo, RNG: randx.New(5)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// run steps the controller until idle for three rounds or the budget runs
// out, returning rounds executed.
func run(t *testing.T, c *Controller, maxRounds int) int {
	t.Helper()
	idle := 0
	for r := 0; r < maxRounds; r++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.Done() {
			idle++
			if idle >= 3 {
				return r + 1
			}
		} else {
			idle = 0
		}
	}
	c.Finalize()
	return maxRounds
}

func TestNewValidation(t *testing.T) {
	net, topo := scenario(t, 4, 4, nil, nil)
	if _, err := New(net, Config{}); err == nil {
		t.Error("missing topology should fail")
	}
	otherSys, err := grid.New(6, 4, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	otherTopo, err := hamilton.Build(otherSys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, Config{Topology: otherTopo}); err == nil {
		t.Error("mismatched grid system should fail")
	}
	c, err := New(net, Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "SR" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestNoHolesNoProcesses(t *testing.T) {
	net, topo := scenario(t, 4, 4, nil, nil)
	c := newSR(t, net, topo)
	run(t, c, 10)
	s := c.Collector().Summarize()
	if s.Initiated != 0 {
		t.Errorf("initiated %d processes with no holes", s.Initiated)
	}
	if net.TotalMoves() != 0 {
		t.Error("no movements expected")
	}
}

func TestInitiatorSpareFillsHoleImmediately(t *testing.T) {
	// Place the spare in the hole's monitor grid: one movement suffices.
	sys, err := grid.New(4, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole := grid.C(2, 2)
	mon := topo.MonitorOf(hole)
	net, topo2 := scenario(t, 4, 5, []grid.Coord{hole}, []grid.Coord{mon})
	c := newSR(t, net, topo2)
	rounds := run(t, c, 50)
	s := c.Collector().Summarize()
	if s.Initiated != 1 || s.Converged != 1 {
		t.Fatalf("summary = %v", s)
	}
	if s.Moves != 1 {
		t.Errorf("moves = %d, want 1", s.Moves)
	}
	if s.Messages != 0 {
		t.Errorf("messages = %d, want 0 (no cascade needed)", s.Messages)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
	if rounds > 5 {
		t.Errorf("took %d rounds for a 1-move repair", rounds)
	}
}

func TestCascadeReachesDistantSpare(t *testing.T) {
	// Put the only spare k hops back along the walk; the snake must make
	// exactly k movements (k-1 cascading heads + the spare).
	sys, err := grid.New(4, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole := grid.C(1, 3)
	w := topo.NewWalk(hole)
	const k = 5
	for i := 1; i < k; i++ {
		if !w.Advance(nil) {
			t.Fatal("walk too short")
		}
	}
	spareCell := w.Current()

	net, _ := scenario(t, 4, 5, []grid.Coord{hole}, []grid.Coord{spareCell})
	c := newSR(t, net, topo)
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Converged != 1 {
		t.Fatalf("summary = %v", s)
	}
	if s.Moves != k {
		t.Errorf("moves = %d, want %d", s.Moves, k)
	}
	if s.MaxHops != k {
		t.Errorf("hops = %d, want %d", s.MaxHops, k)
	}
	if s.Messages != k-1 {
		t.Errorf("messages = %d, want %d", s.Messages, k-1)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
	// Every intermediate walk grid still has a head (refilled by the
	// cascade), and the spare cell's head remains.
	for _, g := range net.System().AllCoords() {
		if net.HeadOf(g) == node.Invalid {
			t.Errorf("grid %v left vacant", g)
		}
	}
}

func TestExactlyOneProcessPerHole(t *testing.T) {
	// The paper's headline synchronization claim: one and only one
	// replacement process per hole, even with several simultaneous holes.
	holes := []grid.Coord{grid.C(0, 0), grid.C(5, 5), grid.C(10, 3), grid.C(15, 15), grid.C(7, 12)}
	spares := []grid.Coord{grid.C(1, 1), grid.C(6, 6), grid.C(11, 4), grid.C(14, 14), grid.C(8, 13)}
	net, topo := scenario(t, 16, 16, holes, spares)
	c := newSR(t, net, topo)
	run(t, c, 600)
	s := c.Collector().Summarize()
	if s.Initiated != len(holes) {
		t.Errorf("initiated = %d, want %d (one per hole)", s.Initiated, len(holes))
	}
	if s.Converged != len(holes) {
		t.Errorf("converged = %d, want %d", s.Converged, len(holes))
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
	// Origins must be exactly the holes, no duplicates.
	seen := map[grid.Coord]int{}
	for _, p := range c.Collector().Processes() {
		seen[p.Origin]++
	}
	for _, h := range holes {
		if seen[h] != 1 {
			t.Errorf("hole %v served by %d processes", h, seen[h])
		}
	}
}

func TestAdjacentHolesRecovered(t *testing.T) {
	// A hole whose monitor grid is also a hole: detection must wait until
	// the monitor is refilled, then fire exactly once.
	sys, err := grid.New(4, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole1 := grid.C(2, 2)
	hole2 := topo.MonitorOf(hole1) // adjacent on the cycle
	net, _ := scenario(t, 4, 5, []grid.Coord{hole1, hole2},
		[]grid.Coord{grid.C(0, 0), grid.C(0, 0)})
	c := newSR(t, net, topo)
	run(t, c, 200)
	if !coverage.Complete(net) {
		t.Errorf("coverage incomplete; vacant: %v", net.VacantCells(nil))
	}
	s := c.Collector().Summarize()
	if s.Initiated != 2 || s.Converged != 2 {
		t.Errorf("summary = %v", s)
	}
}

func TestDualPathAllHoleLocations(t *testing.T) {
	// Algorithm 2: recovery must work for holes at the special grids A,
	// B, C, D and at a shared grid, with a single spare far away.
	sys, err := grid.New(5, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	a, b, cGrid, d, _ := topo.ABCD()
	cases := map[string]grid.Coord{
		"A": a, "B": b, "C": cGrid, "D": d, "shared": grid.C(0, 2),
	}
	for name, hole := range cases {
		t.Run(name, func(t *testing.T) {
			// Single spare in the far corner (0,0) unless that's the hole.
			spare := grid.C(0, 0)
			if hole == spare {
				spare = grid.C(2, 0)
			}
			net, topo := scenario(t, 5, 5, []grid.Coord{hole}, []grid.Coord{spare})
			c := newSR(t, net, topo)
			run(t, c, 200)
			if !coverage.Complete(net) {
				t.Errorf("hole at %s not recovered; vacant: %v", name, net.VacantCells(nil))
			}
			s := c.Collector().Summarize()
			if s.Initiated != 1 || s.Converged != 1 {
				t.Errorf("summary = %v", s)
			}
		})
	}
}

func TestDualPathPrefersSpareAtAForHoleAtD(t *testing.T) {
	// Algorithm 2 case two: hole at D, spares at A: the cascade should
	// finish after B, C, A — three movements — instead of walking the
	// shared part.
	sys, err := grid.New(5, 5, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	a, _, _, d, _ := topo.ABCD()
	net, _ := scenario(t, 5, 5, []grid.Coord{d}, []grid.Coord{a})
	c := newSR(t, net, topo)
	run(t, c, 100)
	s := c.Collector().Summarize()
	if s.Converged != 1 {
		t.Fatalf("summary = %v", s)
	}
	if s.Moves != 3 {
		t.Errorf("moves = %d, want 3 (B, C, then A's spare)", s.Moves)
	}
	if !coverage.Complete(net) {
		t.Error("coverage should be complete")
	}
}

func TestFailureOnlyWhenNoSpares(t *testing.T) {
	// Theorem 1 / Corollary 1 contrapositive: with zero spares the
	// process must fail after exhausting the walk; the hole remains.
	net, topo := scenario(t, 4, 4, []grid.Coord{grid.C(2, 2)}, nil)
	c := newSR(t, net, topo)
	run(t, c, 200)
	s := c.Collector().Summarize()
	if s.Initiated != 1 || s.Failed != 1 {
		t.Errorf("summary = %v", s)
	}
	if coverage.HoleCount(net) != 1 {
		t.Errorf("holes = %d, want exactly 1 travelling vacancy", coverage.HoleCount(net))
	}
	// No re-initiation storm: initiated stays 1 even after more rounds.
	run(t, c, 20)
	if got := c.Collector().Summarize().Initiated; got != 1 {
		t.Errorf("initiated grew to %d after failure", got)
	}
}

func TestResetFailedAllowsRetry(t *testing.T) {
	net, topo := scenario(t, 4, 4, []grid.Coord{grid.C(2, 2)}, nil)
	c := newSR(t, net, topo)
	run(t, c, 200)
	if coverage.Complete(net) {
		t.Fatal("setup: recovery should have failed")
	}
	// New spare arrives; the failed hole must be retried after reset.
	if _, err := net.AddNodeAt(net.System().Center(grid.C(0, 0))); err != nil {
		t.Fatal(err)
	}
	net.ElectHeads()
	c.ResetFailed()
	run(t, c, 200)
	if !coverage.Complete(net) {
		t.Errorf("retry failed; vacant: %v", net.VacantCells(nil))
	}
}

func TestTheorem1Property(t *testing.T) {
	// Theorem 1: every vacant grid gains a head whenever enough spares
	// exist, across random grid sizes, hole sets, and spare placements —
	// including dual-path (odd x odd) systems.
	f := func(colsU, rowsU, holesU, seed uint8) bool {
		cols := int(colsU%6) + 2 // 2..7
		rows := int(rowsU%6) + 2
		if cols*rows < 6 {
			cols = 3
			rows = 3
		}
		rng := randx.New(int64(seed) + 1)
		nHoles := int(holesU)%3 + 1
		// Random distinct holes.
		perm := rng.Perm(cols * rows)
		holes := make([]grid.Coord, 0, nHoles)
		sys, err := grid.New(cols, rows, 10, geom.Pt(0, 0))
		if err != nil {
			return false
		}
		for _, idx := range perm[:nHoles] {
			holes = append(holes, sys.CoordAt(idx))
		}
		// As many spares as holes, in random non-hole cells.
		holeSet := map[grid.Coord]bool{}
		for _, h := range holes {
			holeSet[h] = true
		}
		var spares []grid.Coord
		for len(spares) < nHoles {
			c := sys.CoordAt(rng.Intn(cols * rows))
			if !holeSet[c] {
				spares = append(spares, c)
			}
		}
		net, topo := scenarioQuick(sys, holes, spares, rng)
		ctrl, err := New(net, Config{Topology: topo, RNG: rng.Split(7)})
		if err != nil {
			return false
		}
		idle := 0
		for r := 0; r < 4*cols*rows+40; r++ {
			if err := ctrl.Step(); err != nil {
				return false
			}
			if ctrl.Done() {
				idle++
				if idle >= 3 {
					break
				}
			} else {
				idle = 0
			}
		}
		s := ctrl.Collector().Summarize()
		return coverage.Complete(net) && s.Initiated == nHoles && s.Converged == nHoles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// scenarioQuick is the non-failing variant of scenario for property tests.
func scenarioQuick(sys *grid.System, holes, spares []grid.Coord, rng *randx.Rand) (*network.Network, *hamilton.Topology) {
	net := network.New(sys, node.EnergyModel{})
	holeSet := map[grid.Coord]bool{}
	for _, h := range holes {
		holeSet[h] = true
	}
	for _, c := range sys.AllCoords() {
		if !holeSet[c] {
			_, _ = net.AddNodeAt(sys.Center(c))
		}
	}
	for _, c := range spares {
		_, _ = net.AddNodeAt(rng.InRect(sys.CellRect(c)))
	}
	net.ElectHeads()
	topo, _ := hamilton.Build(sys)
	return net, topo
}

func TestMovementDistanceWithinBounds(t *testing.T) {
	// Every movement goes to a neighboring cell's central area, so the
	// total distance is bounded by moves * [r/4, sqrt(58)/4*r].
	holes := []grid.Coord{grid.C(3, 3), grid.C(12, 12)}
	spares := []grid.Coord{grid.C(0, 0), grid.C(15, 0)}
	net, topo := scenario(t, 16, 16, holes, spares)
	c := newSR(t, net, topo)
	run(t, c, 700)
	s := c.Collector().Summarize()
	if s.Converged != 2 {
		t.Fatalf("summary = %v", s)
	}
	r := net.System().CellSize()
	lo := float64(s.Moves) * r / 4
	hi := float64(s.Moves) * math.Sqrt(58) / 4 * r
	if s.Distance < lo || s.Distance > hi {
		t.Errorf("distance %v outside [%v, %v] for %d moves", s.Distance, lo, hi, s.Moves)
	}
}

func TestConvergedMovesEqualHops(t *testing.T) {
	// For a converged process, movements equal grids asked: hops-1 head
	// moves plus the final spare move.
	net, topo := scenario(t, 16, 16, []grid.Coord{grid.C(8, 8)}, []grid.Coord{grid.C(0, 15)})
	c := newSR(t, net, topo)
	run(t, c, 700)
	for _, p := range c.Collector().Processes() {
		if p.Outcome != metrics.Converged {
			t.Fatalf("process %d: %v", p.ID, p.Outcome)
		}
		if p.Moves != p.Hops {
			t.Errorf("process %d: moves %d != hops %d", p.ID, p.Moves, p.Hops)
		}
	}
}

func TestNeighborShortcutReducesMoves(t *testing.T) {
	// Spare sits in a grid adjacent to the hole but far along the
	// Hamilton walk: plain SR must cascade, SR+shortcut pulls directly.
	sys, err := grid.New(16, 16, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole := grid.C(8, 8)
	// Find the hole's neighbor that is farthest back along the walk.
	w := topo.NewWalk(hole)
	dist := map[grid.Coord]int{}
	for i := 1; ; i++ {
		dist[w.Current()] = i
		if !w.Advance(nil) {
			break
		}
	}
	var spareCell grid.Coord
	best := -1
	var buf []grid.Coord
	for _, nb := range sys.Neighbors(buf, hole) {
		if d := dist[nb]; d > best {
			best = d
			spareCell = nb
		}
	}
	if best < 3 {
		t.Skip("no distant neighbor on this topology")
	}

	runWith := func(shortcut bool) metrics.Summary {
		net, _ := scenario(t, 16, 16, []grid.Coord{hole}, []grid.Coord{spareCell})
		ctrl, err := New(net, Config{Topology: topo, RNG: randx.New(5), NeighborShortcut: shortcut})
		if err != nil {
			t.Fatal(err)
		}
		run(t, ctrl, 700)
		if !coverage.Complete(net) {
			t.Fatalf("shortcut=%v: coverage incomplete", shortcut)
		}
		return ctrl.Collector().Summarize()
	}
	plain := runWith(false)
	short := runWith(true)
	if short.Moves >= plain.Moves {
		t.Errorf("shortcut moves %d should beat plain %d", short.Moves, plain.Moves)
	}
	if short.Moves != 1 {
		t.Errorf("shortcut should repair in 1 move, got %d", short.Moves)
	}
}

func TestShortcutName(t *testing.T) {
	net, topo := scenario(t, 4, 4, nil, nil)
	c, err := New(net, Config{Topology: topo, NeighborShortcut: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "SR+shortcut" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestConnectivityMaintainedThroughout(t *testing.T) {
	// The paper's guarantee: connectivity and coverage hold once each
	// grid regains a head; during the cascade the head overlay may have
	// a single travelling vacancy but must re-converge.
	net, topo := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(0, 0)})
	c := newSR(t, net, topo)
	run(t, c, 300)
	if !coverage.Complete(net) || !net.HeadGraphConnected() {
		t.Error("network must end complete and connected")
	}
	if !net.PhysicallyConnected(net.System().CommRange()) {
		t.Error("physical connectivity at R=sqrt(5)r must hold")
	}
}

func TestConvergenceSpeedTracksHops(t *testing.T) {
	// The paper: SR "has the same bound of converging speed as AR" — a
	// cascade that finds its spare at hop k converges within k + O(1)
	// rounds (one hop advances per round after the initial handshake).
	sys, err := grid.New(16, 16, 10, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	hole := grid.C(8, 8)
	for _, k := range []int{2, 5, 10, 25} {
		w := topo.NewWalk(hole)
		for i := 1; i < k; i++ {
			if !w.Advance(nil) {
				t.Fatal("walk too short")
			}
		}
		net, _ := scenario(t, 16, 16, []grid.Coord{hole}, []grid.Coord{w.Current()})
		c := newSR(t, net, topo)
		rounds := run(t, c, 700) - 3 // subtract the idle-grace rounds
		s := c.Collector().Summarize()
		if s.Converged != 1 {
			t.Fatalf("k=%d: %v", k, s)
		}
		if rounds < k-2 || rounds > k+4 {
			t.Errorf("k=%d hops converged in %d rounds, want within [k-2, k+4]", k, rounds)
		}
	}
}

func TestActiveProcessesAccounting(t *testing.T) {
	net, topo := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(0, 0)})
	c := newSR(t, net, topo)
	if c.ActiveProcesses() != 0 {
		t.Error("no processes before start")
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.ActiveProcesses() != 1 {
		t.Errorf("ActiveProcesses = %d, want 1", c.ActiveProcesses())
	}
	run(t, c, 300)
	if c.ActiveProcesses() != 0 {
		t.Error("processes should drain")
	}
}

// TestDeadCommittedHeadReleasesClaim pins the mid-run-damage failure
// path: when a head already committed to a cascade move dies before
// executing it (a churn wave or depletion check), its process fails —
// but the outstanding vacancy's claim must be released so a fresh
// process repairs the hole from the remaining spares, instead of the
// cell staying shielded from detection forever.
func TestDeadCommittedHeadReleasesClaim(t *testing.T) {
	hole := grid.C(2, 2)
	spareCell := grid.C(0, 0)
	net, topo := scenario(t, 5, 5, []grid.Coord{hole},
		[]grid.Coord{spareCell, spareCell, spareCell})
	monitor := topo.MonitorOf(hole)
	if monitor == spareCell || monitor == hole {
		t.Fatalf("fixture broken: monitor %v collides with spare cell or hole", monitor)
	}
	c := newSR(t, net, topo)
	// Round 1: the hole's monitor detects it and, having no spare of its
	// own, commits to a cascade departure for the next round.
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.ActiveProcesses() != 1 {
		t.Fatalf("processes = %d, want 1", c.ActiveProcesses())
	}
	head := net.HeadOf(monitor)
	if head == node.Invalid {
		t.Fatalf("monitor %v has no head", monitor)
	}
	if err := net.DisableNode(head); err != nil {
		t.Fatal(err)
	}
	idle := 0
	for r := 0; r < 200 && idle < 3; r++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		if c.Done() {
			idle++
		} else {
			idle = 0
		}
	}
	if !net.AllHeadsPresent() {
		t.Fatalf("coverage not restored after committed head died: %d vacant cells",
			net.VacantCount())
	}
}
