package core

import (
	"testing"

	"wsncover/internal/coverage"
	"wsncover/internal/grid"
	"wsncover/internal/metrics"
	"wsncover/internal/randx"
)

// TestLossyRadioRecoversWithClaimTTL puts the SR controller on a lossy
// radio: without expiry a dropped cascade notification stalls recovery
// forever; with ClaimTTL the stalled vacancy is re-detected and a fresh
// process finishes the repair.
func TestLossyRadioRecoversWithClaimTTL(t *testing.T) {
	for _, loss := range []float64{0.1, 0.3} {
		recovered := 0
		const trials = 10
		for seed := int64(0); seed < trials; seed++ {
			net, topo := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(0, 0)})
			if err := net.SetMessageLoss(loss, randx.New(seed+100)); err != nil {
				t.Fatal(err)
			}
			c, err := New(net, Config{Topology: topo, RNG: randx.New(seed), ClaimTTL: 6})
			if err != nil {
				t.Fatal(err)
			}
			// Longer budget: expiry plus retries take extra rounds.
			run(t, c, 1500)
			if coverage.Complete(net) {
				recovered++
			}
		}
		if recovered != trials {
			t.Errorf("loss=%v: recovered %d/%d trials", loss, recovered, trials)
		}
	}
}

// TestLossyRadioStallsWithoutTTL documents the contrast: the paper's
// reliable-channel protocol cannot survive a lost notification.
func TestLossyRadioStallsWithoutTTL(t *testing.T) {
	stalled := 0
	const trials = 12
	for seed := int64(0); seed < trials; seed++ {
		net, topo := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(0, 0)})
		// Heavy loss makes a drop along the walk very likely.
		if err := net.SetMessageLoss(0.5, randx.New(seed+200)); err != nil {
			t.Fatal(err)
		}
		c, err := New(net, Config{Topology: topo, RNG: randx.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		run(t, c, 400)
		if !coverage.Complete(net) {
			stalled++
		}
	}
	if stalled == 0 {
		t.Error("expected at least one stalled recovery at 50% loss without TTL")
	}
}

// TestClaimTTLCountsExtraProcesses verifies the accounting: recoveries
// through expiry show up as failed processes plus a converged successor.
func TestClaimTTLCountsExtraProcesses(t *testing.T) {
	var sawRetry bool
	for seed := int64(0); seed < 30 && !sawRetry; seed++ {
		net, topo := scenario(t, 8, 8, []grid.Coord{grid.C(4, 4)}, []grid.Coord{grid.C(0, 0)})
		if err := net.SetMessageLoss(0.35, randx.New(seed+300)); err != nil {
			t.Fatal(err)
		}
		c, err := New(net, Config{Topology: topo, RNG: randx.New(seed), ClaimTTL: 6})
		if err != nil {
			t.Fatal(err)
		}
		run(t, c, 1500)
		if !coverage.Complete(net) {
			t.Fatalf("seed %d: not recovered", seed)
		}
		s := c.Collector().Summarize()
		if s.Initiated > s.Converged {
			sawRetry = true
			// The last process converged; earlier ones failed by expiry.
			var converged int
			for _, p := range c.Collector().Processes() {
				if p.Outcome == metrics.Converged {
					converged++
				}
			}
			if converged == 0 {
				t.Error("no converged process despite recovery")
			}
		}
	}
	if !sawRetry {
		t.Error("no trial exercised the expiry path at 35% loss; tune the test")
	}
}

// TestTTLDoesNotDisturbReliableRuns ensures ClaimTTL changes nothing when
// the radio is perfect and walks are shorter than the TTL allows.
func TestTTLDoesNotDisturbReliableRuns(t *testing.T) {
	holes := []grid.Coord{grid.C(2, 2), grid.C(6, 6)}
	spares := []grid.Coord{grid.C(1, 1), grid.C(5, 5)}
	netA, topo := scenario(t, 8, 8, holes, spares)
	a, err := New(netA, Config{Topology: topo, RNG: randx.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	run(t, a, 300)

	netB, _ := scenario(t, 8, 8, holes, spares)
	b, err := New(netB, Config{Topology: topo, RNG: randx.New(4), ClaimTTL: 50})
	if err != nil {
		t.Fatal(err)
	}
	run(t, b, 300)

	sa, sb := a.Collector().Summarize(), b.Collector().Summarize()
	if sa != sb {
		t.Errorf("reliable-channel runs diverge: %v vs %v", sa, sb)
	}
}
