package dispatch

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock drives the queue deterministically: tests advance it by
// hand, so lease expiry and backoff gates are exact, not sleep-based.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestQueueLifecycle(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(2, time.Minute, -1, 2, clk.now)
	a1, wait := q.next(1)
	if a1 == nil || wait != 0 || a1.shard != 0 || a1.slot != 1 || a1.speculative {
		t.Fatalf("first lend = %+v, wait %v", a1, wait)
	}
	a2, _ := q.next(2)
	if a2 == nil || a2.shard != 1 {
		t.Fatalf("second lend = %+v", a2)
	}
	// Fleet busy: a third slot polls rather than retiring.
	if a, wait := q.next(3); a != nil || wait <= 0 {
		t.Fatalf("busy queue lent %+v, wait %v; want nil with a poll hint", a, wait)
	}
	a1.manifest = "m1"
	if won, w := q.complete(a1); !won || w != "m1" {
		t.Fatalf("complete = %v, %q", won, w)
	}
	a2.manifest = "m2"
	q.complete(a2)
	if !q.terminal() {
		t.Fatal("queue not terminal after both shards completed")
	}
	if a, wait := q.next(3); a != nil || wait != 0 {
		t.Fatalf("terminal queue lent %+v, wait %v; want nil, 0 (retire)", a, wait)
	}
	paths, err := q.winners()
	if err != nil || paths[0] != "m1" || paths[1] != "m2" {
		t.Fatalf("winners = %v, %v", paths, err)
	}
}

func TestQueueHeartbeatExpiry(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Second, -1, 2, clk.now)
	a, _ := q.next(1)
	killed := false
	q.bind(a, func() { killed = true })
	// A beat pushes the deadline out; silence past the lease expires it.
	clk.advance(900 * time.Millisecond)
	q.beat(a)
	clk.advance(900 * time.Millisecond)
	if stale := q.expireStale(); len(stale) != 0 {
		t.Fatalf("expired %d attempts with a fresh heartbeat", len(stale))
	}
	clk.advance(200 * time.Millisecond)
	stale := q.expireStale()
	if len(stale) != 1 || stale[0] != a || !killed {
		t.Fatalf("expiry = %v (killed=%v), want the bound attempt cancelled", stale, killed)
	}
	// Idempotent: an expired lease is not re-reported.
	if stale := q.expireStale(); len(stale) != 0 {
		t.Fatalf("re-expired %d attempts", len(stale))
	}
	// The supervisor reaps the process, finishes the attempt, and the
	// shard is immediately re-issuable (first failure has no backoff).
	if out := q.finish(a, context.Canceled); out != finishRequeued {
		t.Fatalf("finish(expired) = %v, want requeue despite the cancel echo", out)
	}
	if b, wait := q.next(2); b == nil || wait != 0 || b.shard != 0 {
		t.Fatalf("re-issue = %+v, wait %v", b, wait)
	}
}

func TestQueueBindAfterExpiry(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Second, -1, 2, clk.now)
	a, _ := q.next(1)
	clk.advance(2 * time.Second)
	if stale := q.expireStale(); len(stale) != 1 {
		t.Fatalf("expired %d attempts", len(stale))
	}
	killed := false
	q.bind(a, func() { killed = true })
	if !killed {
		t.Fatal("bind after expiry must fire the kill switch immediately")
	}
}

func TestQueueBackoffGate(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Minute, -1, 5, clk.now)
	boom := errors.New("boom")
	a, _ := q.next(1)
	if out := q.finish(a, boom); out != finishRequeued {
		t.Fatalf("first failure = %v", out)
	}
	// First failure requeues immediately.
	a, wait := q.next(1)
	if a == nil || wait != 0 {
		t.Fatalf("after first failure: %+v, wait %v", a, wait)
	}
	q.finish(a, boom)
	// Second failure sits behind the jittered backoff gate (≥ base/2).
	if a, wait := q.next(1); a != nil || wait <= 0 {
		t.Fatalf("after second failure: %+v, wait %v; want a backoff hint", a, wait)
	}
	clk.advance(q.backoffMax + q.backoffMax/2)
	if a, _ := q.next(1); a == nil {
		t.Fatal("backoff gate never reopened")
	}
}

func TestQueueExhaustionIsFatal(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Minute, -1, 1, clk.now)
	boom := errors.New("boom")
	a, _ := q.next(1)
	q.finish(a, boom)
	a, _ = q.next(1)
	if out := q.finish(a, boom); out != finishFatal {
		t.Fatalf("second failure with retries=1 = %v, want fatal", out)
	}
	if !q.terminal() {
		t.Fatal("failed shard must be terminal")
	}
	errs := q.failures()
	if len(errs) != 1 || !errors.Is(errs[0], errShardExhausted) {
		t.Fatalf("failures = %v", errs)
	}
	if _, err := q.winners(); err == nil {
		t.Fatal("winners() must refuse a failed shard")
	}
}

func TestQueueStealAndDuplicateResolution(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(2, time.Minute, 500*time.Millisecond, 2, clk.now)
	p1, _ := q.next(1)
	p2, _ := q.next(2)
	p1.manifest = "m1"
	q.complete(p1)
	// Slot 1 is idle but shard 2's attempt is too young to duplicate.
	if a, wait := q.next(1); a != nil || wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("premature steal: %+v, wait %v", a, wait)
	}
	clk.advance(600 * time.Millisecond)
	q.beat(p2) // heartbeating does not protect a straggler from duplication
	s, wait := q.next(1)
	if s == nil || wait != 0 || !s.speculative || s.shard != p2.shard || s.slot != 1 {
		t.Fatalf("steal = %+v, wait %v", s, wait)
	}
	if v := q.view(p2.shard); v.Live != 2 {
		t.Fatalf("straggler view = %+v, want two live attempts", v)
	}
	// Cap: no third attempt on the same shard.
	if a, _ := q.next(3); a != nil {
		t.Fatalf("third concurrent attempt lent: %+v", a)
	}
	// The speculative copy completes first and wins; the straggler is
	// killed and its echo discarded.
	strangled := false
	q.bind(p2, func() { strangled = true })
	s.manifest = "spare/m2"
	if won, _ := q.complete(s); !won || !strangled {
		t.Fatalf("speculative completion: won=%v strangled=%v", won, strangled)
	}
	if out := q.finish(p2, context.Canceled); out != finishDiscarded {
		t.Fatalf("loser finish = %v, want discarded", out)
	}
	paths, err := q.winners()
	if err != nil || paths[1] != "spare/m2" {
		t.Fatalf("winners = %v, %v", paths, err)
	}
}

func TestQueueLateDuplicateCompletionLoses(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Minute, 0, 2, clk.now)
	p, _ := q.next(1)
	s, _ := q.next(2)
	if s == nil || !s.speculative {
		t.Fatalf("immediate steal with stealAfter=0 = %+v", s)
	}
	p.manifest = "primary"
	s.manifest = "spare"
	if won, _ := q.complete(p); !won {
		t.Fatal("primary completion must win")
	}
	won, winner := q.complete(s)
	if won || winner != "primary" {
		t.Fatalf("duplicate completion = %v, %q; want loss against primary", won, winner)
	}
}

func TestQueueShadowedFailure(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Minute, 0, 2, clk.now)
	p, _ := q.next(1)
	s, _ := q.next(2)
	if out := q.finish(p, errors.New("boom")); out != finishShadowed {
		t.Fatalf("failure with a live sibling = %v, want shadowed", out)
	}
	if v := q.view(0); v.State != ShardRunning || v.Live != 1 {
		t.Fatalf("view after shadowed failure = %+v", v)
	}
	s.manifest = "m"
	if won, _ := q.complete(s); !won {
		t.Fatal("surviving sibling must still win")
	}
}

func TestQueueReleaseOnShutdown(t *testing.T) {
	clk := newFakeClock()
	q := newShardQueue(1, time.Minute, -1, 0, clk.now)
	a, _ := q.next(1)
	if out := q.finish(a, context.Canceled); out != finishReleased {
		t.Fatalf("shutdown echo = %v, want released", out)
	}
	// No budget burned: with retries=0 a real failure would be fatal,
	// but the released shard re-issues cleanly.
	if v := q.view(0); v.State != ShardPending || v.Fails != 0 {
		t.Fatalf("released view = %+v", v)
	}
	if b, _ := q.next(1); b == nil {
		t.Fatal("released shard must re-issue")
	}
}

func TestParseFleetInventory(t *testing.T) {
	slots, err := ParseFleetInventory([]byte(
		"# two local slots, one remote\nlocal\n-\n\nssh box{slot} -- # trailing comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 || slots[0] != nil || slots[1] != nil {
		t.Fatalf("slots = %v", slots)
	}
	if len(slots[2]) != 3 || slots[2][0] != "ssh" {
		t.Fatalf("remote slot = %v", slots[2])
	}
	if _, err := ParseFleetInventory([]byte("# only comments\n")); err == nil {
		t.Fatal("empty inventory must be rejected")
	}
	if _, err := ParseFleetInventory([]byte("ssh local --\n")); err == nil {
		t.Fatal("embedded 'local' token must be rejected")
	}
}
