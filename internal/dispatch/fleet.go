package dispatch

import (
	"fmt"
	"os"
	"strings"
)

// ParseFleetInventory reads a fleet inventory file: one worker slot per
// line, each line a command prefix in the -exec template language
// ("ssh box{slot} --"; "{shard}" is accepted as an alias). The literal
// token "local" (or "-") declares a slot that runs the worker binary
// directly; blank lines and #-comments are skipped. The driver appends
// the worker binary and the standard sweep arguments to each prefix, so
// a heterogeneous fleet — two local slots and three ssh boxes — is five
// lines:
//
//	# big box runs two slots
//	local
//	local
//	ssh box1 --
//	ssh box2 --
//	ssh box3 --
func ParseFleetInventory(data []byte) ([][]string, error) {
	var slots [][]string
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) == 1 && (fields[0] == "local" || fields[0] == "-") {
			slots = append(slots, nil)
			continue
		}
		for _, f := range fields {
			if f == "local" || f == "-" {
				return nil, fmt.Errorf("fleet inventory line %d: %q must stand alone on its line", ln+1, f)
			}
		}
		slots = append(slots, fields)
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("fleet inventory declares no worker slots")
	}
	return slots, nil
}

// LoadFleetInventory reads and parses the inventory file at path.
func LoadFleetInventory(path string) ([][]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	slots, err := ParseFleetInventory(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return slots, nil
}
