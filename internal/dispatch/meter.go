package dispatch

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// meterThrottle is the minimum interval between non-final redraws; it
// keeps a meter from ever slowing the worker pool or a fleet's event
// stream.
const meterThrottle = 200 * time.Millisecond

// Meter renders completed/total with the trial rate and an ETA on one
// self-overwriting line; on wide campaigns (more than one curve) it adds
// a per-group breakdown — completed groups out of total plus the cell
// currently being filled — so a day-long multi-dimensional run shows
// where it is, not just how much is left. It is the progress display of
// a single campaign process (cmd/sweep without -dispatch); fleets of
// shard workers aggregate into a FleetMeter instead.
//
// JobDone is called from the engine's serialized sink, so no locking is
// needed. The total must be the count of trials the run will actually
// execute — after shard and resume filtering — never the full campaign's
// replicate range; cmd/sweep sizes it with CampaignSpec.ExecutedJobs and
// the regression tests pin that a sharded meter renders the shard's own
// totals.
type Meter struct {
	w     io.Writer
	now   func() time.Time
	start time.Time
	last  time.Time

	done  int
	total int

	// Per-group accounting, enabled when the campaign has > 1 group.
	groupTotal map[string]int
	groupDone  map[string]int
	groupsDone int
	cur        string
}

// NewMeter sizes the meter for total trials; groupTotal (the per-group
// trial counts of the jobs that will actually run) enables the breakdown
// and may be nil for single-group campaigns.
func NewMeter(w io.Writer, total int, groupTotal map[string]int) *Meter {
	m := &Meter{w: w, now: time.Now, total: total}
	m.start = m.now()
	m.last = m.start
	if len(groupTotal) > 1 {
		m.groupTotal = groupTotal
		m.groupDone = make(map[string]int, len(groupTotal))
	}
	return m
}

// SetClock replaces the meter's time source (tests); call it before the
// first JobDone. It resets the start and throttle anchors through the
// new clock.
func (m *Meter) SetClock(now func() time.Time) {
	m.now = now
	m.start = now()
	m.last = m.start
}

// Done returns the number of completed trials recorded so far.
func (m *Meter) Done() int { return m.done }

// JobDone records one finished trial of the given group and redraws.
func (m *Meter) JobDone(group string) {
	m.done++
	if m.groupTotal != nil {
		m.groupDone[group]++
		m.cur = group
		if m.groupDone[group] == m.groupTotal[group] {
			m.groupsDone++
		}
	}
	m.report()
}

func (m *Meter) report() {
	done, total := m.done, m.total
	now := m.now()
	if done < total && now.Sub(m.last) < meterThrottle {
		return
	}
	m.last = now
	elapsed := now.Sub(m.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	groups := ""
	if m.groupTotal != nil {
		groups = fmt.Sprintf("  groups %d/%d", m.groupsDone, len(m.groupTotal))
		if m.cur != "" && done < total {
			groups += fmt.Sprintf("  [%s %d/%d]", m.cur, m.groupDone[m.cur], m.groupTotal[m.cur])
		}
	}
	if done == total {
		fmt.Fprintf(m.w, "\r%d/%d trials  %.0f trials/s%s  in %s   \n",
			done, total, rate, groups, FormatETA(now.Sub(m.start)))
		return
	}
	eta := "--"
	if rate > 0 {
		eta = FormatETA(time.Duration(float64(total-done) / rate * float64(time.Second)))
	}
	fmt.Fprintf(m.w, "\r%d/%d trials  %.0f trials/s  ETA %s%s   ", done, total, rate, eta, groups)
}

// FormatETA renders a duration as s / m+s / h+m. The duration is rounded
// to whole seconds first so boundary values roll into the larger unit
// ("60s" never appears; 59.7s renders as 1m00s).
func FormatETA(d time.Duration) string {
	if d < time.Second {
		return "<1s"
	}
	s := int(d.Seconds() + 0.5)
	switch {
	case s < 60:
		return fmt.Sprintf("%ds", s)
	case s < 3600:
		return fmt.Sprintf("%dm%02ds", s/60, s%60)
	default:
		return fmt.Sprintf("%dh%02dm", s/3600, s/60%60)
	}
}

// FleetMeter folds the progress streams of every shard worker into one
// self-overwriting fleet line: aggregate done/total, trials/s, ETA, the
// live slot count, and a per-shard state list —
//
//	fleet 34/160 trials  12 trials/s  ETA 11s  slots 3/4  shards [1:ok 2:42%x2 3:retry2 4:wait]
//
// Shards render as ok (finished), FAIL (exhausted retries), wait (not
// yet started), or a completion percentage while a lease is live —
// suffixed with retryN after relaunches, x2 while a speculative
// duplicate races a straggler, and ~age when the newest heartbeat is
// stale enough to matter (10s+). "slots a/b" appears once a retired
// slot shrinks the fleet. Update is throttled like Meter; the final
// update (every shard terminal) always renders and reports elapsed
// time.
type FleetMeter struct {
	w     io.Writer
	now   func() time.Time
	start time.Time
	last  time.Time
}

// NewFleetMeter returns a fleet meter writing to w.
func NewFleetMeter(w io.Writer) *FleetMeter {
	f := &FleetMeter{w: w, now: time.Now}
	f.start = f.now()
	f.last = f.start
	return f
}

// SetClock replaces the time source (tests); call before the first
// Update.
func (f *FleetMeter) SetClock(now func() time.Time) {
	f.now = now
	f.start = now()
	f.last = f.start
}

// Update redraws the fleet line from a snapshot. Snapshots arrive from
// the dispatcher's serialized progress callback, so no locking is
// needed.
func (f *FleetMeter) Update(snap FleetSnapshot) {
	final := snap.Terminal()
	now := f.now()
	if !final && now.Sub(f.last) < meterThrottle {
		return
	}
	f.last = now
	agg := snap.Fleet
	elapsed := now.Sub(f.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(agg.Done) / elapsed
	}
	slots := ""
	if snap.Retired > 0 {
		slots = fmt.Sprintf("  slots %d/%d", snap.Slots-snap.Retired, snap.Slots)
	}
	if final {
		fmt.Fprintf(f.w, "\rfleet %d/%d trials  %.0f trials/s  in %s%s  shards %s   \n",
			agg.Done, agg.Total, rate, FormatETA(now.Sub(f.start)), slots, shardList(snap.Shards, now))
		return
	}
	eta := "--"
	if rate > 0 && agg.Total > agg.Done {
		eta = FormatETA(time.Duration(float64(agg.Total-agg.Done) / rate * float64(time.Second)))
	}
	fmt.Fprintf(f.w, "\rfleet %d/%d trials  %.0f trials/s  ETA %s%s  shards %s   ",
		agg.Done, agg.Total, rate, eta, slots, shardList(snap.Shards, now))
}

// staleBeat is the heartbeat age past which a running shard's cell
// shows it: young enough to never clutter a healthy fleet, old enough
// to finger the straggler long before its lease expires.
const staleBeat = 10 * time.Second

// shardList renders the compact per-shard state vector in shard order.
func shardList(shards []ShardStatus, now time.Time) string {
	ordered := make([]ShardStatus, len(shards))
	copy(ordered, shards)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Shard < ordered[j].Shard })
	parts := make([]string, 0, len(ordered))
	for _, s := range ordered {
		parts = append(parts, fmt.Sprintf("%d:%s", s.Shard, shardCell(s, now)))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func shardCell(s ShardStatus, now time.Time) string {
	switch s.State {
	case ShardDone:
		return "ok"
	case ShardFailed:
		return "FAIL"
	case ShardPending:
		if s.Attempts > 0 {
			return fmt.Sprintf("retry%d", s.Attempts)
		}
		return "wait"
	}
	cell := fmt.Sprintf("%.0f%%", 100*s.Progress.Fraction())
	if s.Attempts > 1 {
		cell += fmt.Sprintf(" retry%d", s.Attempts)
	}
	if s.Leases > 1 {
		cell += fmt.Sprintf("x%d", s.Leases)
	}
	if !s.LastBeat.IsZero() {
		if age := now.Sub(s.LastBeat); age >= staleBeat {
			cell += "~" + FormatETA(age)
		}
	}
	return cell
}
