// Package dispatch runs one Monte-Carlo campaign as an elastic fleet of
// worker subprocesses over a replicate-granular work queue and merges
// the results automatically — the scale-past-one-box driver on top of
// cmd/sweep's -shard/-merge plumbing.
//
// Run splits a campaign spec into shards (replicate blocks, more of
// them than worker slots) with sim.CampaignSpec.SplitShards; replicate
// seeds derive from the full range, so every shard computes
// byte-identical slices of the unsharded campaign no matter which slot
// runs it, or how many times. Worker slots lease shards from the queue
// one at a time; a lease is renewed by heartbeats — valid events on the
// worker's newline-delimited JSON progress stream (experiment.Progress,
// cmd/sweep -progress=json) — and a worker that goes silent past the
// lease timeout is killed, reaped, and its shard re-queued. Failed
// attempts retry with capped exponential backoff and jitter, resuming
// from the checkpoint manifest the dead worker left behind; idle slots
// steal stragglers by racing a speculative duplicate attempt, with the
// first validated completion winning. A slot that fails repeatedly
// retires, shrinking the fleet instead of failing the campaign; the
// campaign fails only when a shard burns its whole relaunch budget or
// every slot retires. When every shard finishes, the winning shard
// manifests merge through MergeShardManifests into the final campaign
// manifest.
//
// The worker command is a template, so the fleet is not tied to the
// local box: Options.Worker{"ssh", "box{slot}", "--", "sweep"} runs
// slot i's attempts on host box<i>, and Options.Fleet gives each slot
// its own template for heterogeneous fleets (see ParseFleetInventory).
// The default template re-executes the current binary, which is what
// cmd/sweep -dispatch uses.
package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"maps"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

// ShardState is the lifecycle of one shard (replicate block) in the
// work queue.
type ShardState int

const (
	// ShardPending: in the queue, waiting for a slot (possibly behind a
	// retry backoff gate).
	ShardPending ShardState = iota
	// ShardRunning: at least one worker attempt holds a lease on it.
	ShardRunning
	// ShardDone: a validated manifest is complete on disk.
	ShardDone
	// ShardFailed: the relaunch budget is exhausted; Err holds the last
	// error.
	ShardFailed
)

// String implements fmt.Stringer.
func (s ShardState) String() string {
	switch s {
	case ShardPending:
		return "pending"
	case ShardRunning:
		return "running"
	case ShardDone:
		return "done"
	case ShardFailed:
		return "failed"
	}
	return fmt.Sprintf("ShardState(%d)", int(s))
}

// ShardStatus is the live state of one shard: queue state, lease
// holder, and folded progress.
type ShardStatus struct {
	// Shard is the 1-based shard number.
	Shard int
	State ShardState
	// Progress counts the shard's trials: Total is the shard's full
	// trial count (computed from the spec, not trusted from the worker),
	// and Done folds the live attempts' reports on top of whatever a
	// resumed attempt skipped. A retry's first report resyncs Done to the
	// checkpointed prefix, so trials of partially completed cells — which
	// the resume recomputes — honestly drop off the meter rather than
	// being counted twice.
	Progress experiment.Progress
	// Attempts counts worker launches against this shard, first try and
	// speculative duplicates included.
	Attempts int
	// Slot is the worker slot holding the newest live lease (0 = none).
	Slot int
	// Leases is the number of live attempts: 0 when idle, 1 normally,
	// 2 while a speculative duplicate races a straggler.
	Leases int
	// LastBeat is the freshest heartbeat across the live attempts — the
	// time of the last valid progress event. Zero until the current
	// leaseholders' first event.
	LastBeat time.Time
	// ManifestPath is the shard manifest's canonical location.
	ManifestPath string
	// Err is the terminal error of a failed shard.
	Err error
}

// GroupProgress counts one campaign group's completed trials across the
// whole fleet, against the group's campaign-wide total.
type GroupProgress struct {
	Group string
	Done  int
	Total int
}

// FleetSnapshot is one serialized observation of the whole fleet,
// delivered to Options.OnProgress after every state change.
type FleetSnapshot struct {
	// Fleet is the merged progress of every shard (experiment.MergeProgress).
	Fleet experiment.Progress
	// Shards holds a copy of every shard's status, in shard order.
	Shards []ShardStatus
	// Groups breaks the fleet's progress down by campaign group, in job
	// order, folding the workers' per-group counts (Progress.GroupDone)
	// across shards. Completion is exact — a finished shard counts its
	// full per-group totals — while in-flight counts are a lower bound,
	// since a resumed attempt reports only the work it recomputes.
	Groups []GroupProgress
	// Slots is the fleet size; Retired counts the slots that hit their
	// failure budget and withdrew from the queue.
	Slots   int
	Retired int
}

// Terminal reports whether every shard has finished, successfully or
// not.
func (s FleetSnapshot) Terminal() bool {
	for _, sh := range s.Shards {
		if sh.State != ShardDone && sh.State != ShardFailed {
			return false
		}
	}
	return len(s.Shards) > 0
}

// Options configures a fleet run.
type Options struct {
	// Slots is the fleet size: how many worker subprocesses run
	// concurrently. Ignored when Fleet is set (each inventory line is a
	// slot).
	Slots int
	// Blocks is the work-queue granularity: the campaign's replicate
	// dimension splits into this many shards. Zero picks twice the slot
	// count (capped at the replicate count), so a straggling shard holds
	// at most half a slot's share of the campaign hostage and idle slots
	// have queue left to drain.
	Blocks int
	// Worker is the argv template invoked for each attempt before the
	// standard sweep arguments (-spec, -out, -name, -progress=json, ...)
	// are appended. The literal "{slot}" (or the legacy "{shard}") in
	// any element is replaced by the 1-based slot number, so
	// {"ssh", "box{slot}", "--", "sweep"} reaches one remote host per
	// slot. Empty means the current executable — every attempt a local
	// subprocess.
	Worker []string
	// Fleet gives each slot its own argv template (heterogeneous
	// fleets); a nil entry means the default local template. Overrides
	// Slots and Worker.
	Fleet [][]string
	// OutDir receives the shard spec files, shard manifests, and
	// checkpoints. With a remote Worker template it must name a
	// directory the workers and the driver share (NFS or equivalent).
	OutDir string
	// Name is the campaign name; shard artifacts are <Name>-b<i>.
	Name string
	// Retries is how many times a failed shard is relaunched (with
	// -resume, so checkpointed cells are not recomputed). Negative means
	// none; zero means the default of 2.
	Retries int
	// SlotFailures is the consecutive-failure budget per slot: a slot
	// whose attempts fail this many times in a row retires, shrinking
	// the fleet instead of failing the campaign. Zero means the default
	// of 3; negative means a single failure retires the slot.
	SlotFailures int
	// LeaseTimeout is the heartbeat deadline: a worker producing no
	// valid progress event for this long is presumed hung, killed, and
	// its shard re-queued. Zero means the default of 2 minutes. Set it
	// comfortably above the slowest single trial — progress events only
	// flow when trials complete.
	LeaseTimeout time.Duration
	// StealAfter is how long a shard's only attempt must have been
	// running before an idle slot may race a speculative duplicate
	// against it. Zero means half the lease timeout; negative disables
	// stealing.
	StealAfter time.Duration
	// Resume passes -resume to first attempts too, so a rerun of the
	// whole fleet picks up surviving shard manifests from a previous
	// dispatch instead of starting over.
	Resume bool
	// Env lists extra environment variables (KEY=VALUE) for workers, on
	// top of the driver's environment.
	Env []string
	// Stderr receives the workers' stderr, each line prefixed with its
	// shard ("shard 2: ..."); nil means the driver's stderr.
	Stderr io.Writer
	// OnProgress, when non-nil, observes every fleet state change.
	// Calls are serialized; keep it fast (a meter redraw).
	OnProgress func(FleetSnapshot)
	// Logger receives structured lifecycle events: launches and clean
	// exits at debug; retries, lease expiries, steals, malformed
	// progress lines, and slot retirements at warn; terminal shard
	// failures at error. Nil discards them.
	Logger *slog.Logger
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(slog.DiscardHandler)
}

func (o Options) retries() int {
	switch {
	case o.Retries < 0:
		return 0
	case o.Retries == 0:
		return 2
	}
	return o.Retries
}

func (o Options) slotFailures() int {
	switch {
	case o.SlotFailures < 0:
		return 1
	case o.SlotFailures == 0:
		return 3
	}
	return o.SlotFailures
}

func (o Options) leaseTimeout() time.Duration {
	if o.LeaseTimeout <= 0 {
		return 2 * time.Minute
	}
	return o.LeaseTimeout
}

func (o Options) stealAfter() time.Duration {
	switch {
	case o.StealAfter < 0:
		return -1
	case o.StealAfter == 0:
		return o.leaseTimeout() / 2
	}
	return o.StealAfter
}

// Run executes the campaign as an elastic fleet over a shard work queue
// and returns the merged manifest (not yet written to disk) plus the
// merged spec. The spec must not already pin a shard range. On failure
// — a shard exhausting its relaunch budget cancels the remaining
// workers; every slot retiring strands the queue — the error lists the
// root causes; surviving checkpoints and shard manifests stay in
// OutDir, so rerunning with Resume set picks up where the fleet
// stopped. Cancelling ctx drains the fleet: workers get SIGTERM (they
// flush checkpoints on the way down), shards release their leases, and
// Run returns ctx's error.
func Run(ctx context.Context, spec sim.CampaignSpec, opts Options) (*experiment.Manifest, sim.CampaignSpec, error) {
	var none sim.CampaignSpec
	slots := opts.Slots
	if len(opts.Fleet) > 0 {
		slots = len(opts.Fleet)
	}
	if slots < 1 {
		return nil, none, fmt.Errorf("dispatch: fleet needs at least one worker slot, got %d", slots)
	}
	if opts.Name == "" {
		opts.Name = "sweep"
	}
	if opts.OutDir == "" {
		opts.OutDir = "out"
	}
	spec = spec.Normalized()
	blocks := opts.Blocks
	if blocks <= 0 {
		blocks = 2 * slots
	}
	if blocks > spec.Replicates {
		blocks = spec.Replicates
	}
	shardSpecs, err := spec.SplitShards(blocks)
	if err != nil {
		return nil, none, fmt.Errorf("dispatch: %w", err)
	}

	f := &fleet{
		opts:       opts,
		slots:      slots,
		log:        opts.logger(),
		specs:      make([]string, blocks),
		names:      make([]string, blocks),
		canonical:  make([]string, blocks),
		blockTotal: make([]int, blocks),
		progress:   make([]experiment.Progress, blocks),
		attDone:    make([]map[int]int, blocks),
		launched:   make([]bool, blocks),
		groupTotal: make(map[string]int),
		groupDone:  make([]map[string]int, blocks),
		shardGroup: make([]map[string]int, blocks),
	}
	f.q = newShardQueue(blocks, opts.leaseTimeout(), opts.stealAfter(), opts.retries(), nil)
	if err := f.resolveTemplates(&spec, shardSpecs); err != nil {
		return nil, none, err
	}
	if f.opts.Stderr == nil {
		f.opts.Stderr = os.Stderr
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, none, fmt.Errorf("dispatch: %w", err)
	}

	// Campaign-wide group totals come from the unsharded spec, in job
	// order — the heatmap's rows and denominators.
	spec.ExecutedJobs(nil, func(j sim.TrialJob) {
		g := j.Group()
		if _, ok := f.groupTotal[g]; !ok {
			f.groupOrder = append(f.groupOrder, g)
		}
		f.groupTotal[g]++
	})
	for i, shSpec := range shardSpecs {
		n := i + 1
		// Each shard's full trial count is computed here, not trusted from
		// worker reports: a resumed attempt reports only its remaining
		// work, and the fleet totals must not shrink when that happens.
		f.attDone[i] = make(map[int]int)
		f.groupDone[i] = make(map[string]int)
		f.shardGroup[i] = make(map[string]int)
		shSpec.ExecutedJobs(nil, func(j sim.TrialJob) {
			f.blockTotal[i]++
			f.shardGroup[i][j.Group()]++
		})
		f.progress[i] = experiment.Progress{Total: f.blockTotal[i]}
		f.names[i] = blockName(opts.Name, n)
		f.canonical[i] = filepath.Join(opts.OutDir, f.names[i]+".json")
		specPath := filepath.Join(opts.OutDir, f.names[i]+".spec.json")
		data, err := json.MarshalIndent(shSpec, "", "  ")
		if err != nil {
			return nil, none, fmt.Errorf("dispatch: marshal shard %d spec: %w", n, err)
		}
		// Atomic like every other artifact: a driver killed mid-write
		// must never leave a torn spec for a resume rerun to trip on.
		if err := writeFileAtomic(specPath, append(data, '\n')); err != nil {
			return nil, none, fmt.Errorf("dispatch: %w", err)
		}
		f.specs[i] = specPath
	}

	// A shard out of retries dooms the merge; cancel the siblings
	// instead of burning their remaining work. Checkpoints survive for a
	// Resume rerun.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.cancel = cancel

	// The lease watchdog: ticks well inside the lease timeout so a hung
	// worker is detected within lease + tick, killed, and its shard
	// re-queued as soon as the supervising slot reaps the corpse.
	watchdogDone := make(chan struct{})
	go f.watchdog(runCtx, watchdogDone)

	var wg sync.WaitGroup
	for slot := 1; slot <= slots; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			f.slotLoop(runCtx, slot)
		}(slot)
	}
	wg.Wait()
	cancel()
	<-watchdogDone

	if failures := f.q.failures(); len(failures) > 0 {
		return nil, none, fmt.Errorf("dispatch: %w", errors.Join(failures...))
	}
	if err := ctx.Err(); err != nil {
		return nil, none, fmt.Errorf("dispatch: campaign aborted: %w", err)
	}
	if !f.q.terminal() {
		return nil, none, fmt.Errorf("dispatch: fleet exhausted: all %d worker slot(s) retired after repeated failures; "+
			"checkpoints in %s survive for a -resume rerun", slots, opts.OutDir)
	}

	// Every shard is done. Promote speculative winners to the canonical
	// paths (all workers are reaped, so nothing races the rename) and
	// clear their spare directories.
	winners, err := f.q.winners()
	if err != nil {
		return nil, none, fmt.Errorf("dispatch: %w", err)
	}
	for i, w := range winners {
		if w == f.canonical[i] {
			continue
		}
		if err := os.Rename(w, f.canonical[i]); err != nil {
			return nil, none, fmt.Errorf("dispatch: promoting stolen shard manifest: %w", err)
		}
		os.RemoveAll(filepath.Dir(w))
	}
	manifest, mergedSpec, err := MergeShardManifests(f.canonical, opts.Name)
	if err != nil {
		return nil, none, fmt.Errorf("dispatch: merging fleet manifests: %w", err)
	}
	return manifest, mergedSpec, nil
}

// writeFileAtomic lands data at path via temp-file-and-rename, so a
// reader (or a killed writer) sees the old content or the new, never a
// prefix.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// blockName labels shard i's artifacts.
func blockName(name string, shard int) string {
	return fmt.Sprintf("%s-b%d", name, shard)
}

// fleet is the shared state of one Run: the work queue, the per-shard
// progress bookkeeping every slot goroutine mutates under mu, and the
// resolved worker templates.
type fleet struct {
	opts       Options
	slots      int
	q          *shardQueue
	log        *slog.Logger
	cancel     context.CancelFunc
	templates  [][]string // per-slot argv templates
	specs      []string   // shard spec file paths
	names      []string   // shard artifact base names
	canonical  []string   // canonical shard manifest paths
	blockTotal []int

	// The group ledger for fleet snapshots: campaign-wide totals in job
	// order, each shard's per-group totals, and the per-(shard, group)
	// high-water mark of reported GroupDone counts.
	groupOrder []string
	groupTotal map[string]int
	shardGroup []map[string]int

	mu        sync.Mutex
	progress  []experiment.Progress
	attDone   []map[int]int // per shard: attempt id → absolute done count
	launched  []bool        // a primary attempt has run (later primaries resume)
	groupDone []map[string]int
	retired   int
}

// resolveTemplates fills f.templates (one argv template per slot) and,
// for the all-local default fleet, splits the box's cores across the
// slots so concurrent workers do not oversubscribe the CPU n-fold.
// Worker counts change wall clock only, never results.
func (f *fleet) resolveTemplates(spec *sim.CampaignSpec, shardSpecs []sim.CampaignSpec) error {
	exe := func() (string, error) {
		e, err := os.Executable()
		if err != nil {
			return "", fmt.Errorf("dispatch: no worker template and no current executable: %w", err)
		}
		return e, nil
	}
	f.templates = make([][]string, f.slots)
	allLocal := true
	for slot := 0; slot < f.slots; slot++ {
		var tmpl []string
		switch {
		case len(f.opts.Fleet) > 0:
			tmpl = f.opts.Fleet[slot]
		default:
			tmpl = f.opts.Worker
		}
		if len(tmpl) == 0 {
			e, err := exe()
			if err != nil {
				return err
			}
			tmpl = []string{e}
		} else {
			allLocal = false
		}
		f.templates[slot] = tmpl
	}
	if allLocal && spec.Workers == 0 {
		per := runtime.GOMAXPROCS(0) / f.slots
		if per < 1 {
			per = 1
		}
		for i := range shardSpecs {
			shardSpecs[i].Workers = per
		}
	}
	return nil
}

// watchdog enforces lease deadlines: every tick it kills the attempts
// whose heartbeats went silent past the lease timeout. The shard is
// re-queued by the supervising slot once the corpse is reaped, so a
// zombie can never write over its successor's checkpoint.
func (f *fleet) watchdog(ctx context.Context, done chan<- struct{}) {
	defer close(done)
	tick := f.opts.leaseTimeout() / 8
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, a := range f.q.expireStale() {
			f.log.Warn("lease expired: no heartbeat within deadline, killing worker",
				"shard", a.shard+1, "slot", a.slot, "attempt", a.id,
				"lease", f.opts.leaseTimeout(), "speculative", a.speculative)
			f.emit()
		}
	}
}

// slotLoop is one worker slot: lease a shard, supervise an attempt,
// report the outcome, repeat. The slot retires — without failing the
// campaign — after SlotFailures consecutive failed attempts, or when
// the queue is terminal, or when the fleet is cancelled.
func (f *fleet) slotLoop(ctx context.Context, slot int) {
	budget := f.opts.slotFailures()
	fails := 0
	for {
		if ctx.Err() != nil {
			return
		}
		att, wait := f.q.next(slot)
		if att == nil {
			if wait == 0 {
				return // queue terminal
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
			continue
		}
		err := f.runAttempt(ctx, att)
		if err == nil {
			won, winner := f.q.complete(att)
			if !won {
				f.discardDuplicate(att, winner)
			}
			f.finishShard(att, won)
			fails = 0
			continue
		}
		expired := f.q.isExpired(att)
		if ctx.Err() != nil && !expired {
			// The worker died of SIGTERM because the fleet is shutting
			// down; make the error recognizably a cancellation echo so the
			// queue releases the lease instead of burning retry budget.
			err = fmt.Errorf("%w (worker: %v)", ctx.Err(), err)
		}
		outcome := f.q.finish(att, err)
		f.emit()
		switch outcome {
		case finishFatal:
			f.log.Error("shard failed terminally", "shard", att.shard+1, "slot", slot, "err", err)
			f.cancel()
			return
		case finishRequeued, finishShadowed:
			f.log.Warn("worker attempt failed; shard re-queued",
				"shard", att.shard+1, "slot", slot, "attempt", att.id,
				"expired", expired, "err", err)
		case finishDiscarded:
			f.log.Debug("duplicate attempt discarded", "shard", att.shard+1, "slot", slot)
		case finishReleased:
			f.log.Debug("lease released on shutdown", "shard", att.shard+1, "slot", slot)
		}
		if att.speculative && outcome != finishFatal {
			os.RemoveAll(filepath.Dir(att.manifest))
		}
		if outcome == finishRequeued || outcome == finishShadowed {
			fails++
			if fails >= budget {
				f.mu.Lock()
				f.retired++
				f.mu.Unlock()
				f.log.Warn("worker slot retired after repeated failures; fleet degrades gracefully",
					"slot", slot, "consecutive_failures", fails)
				f.emit()
				return
			}
		}
	}
}

// finishShard folds a completed shard into the fleet state.
func (f *fleet) finishShard(att *attempt, won bool) {
	i := att.shard
	f.mu.Lock()
	if won {
		f.progress[i].Done = f.progress[i].Total
		f.progress[i].Group = ""
		clear(f.attDone[i])
		// The shard's manifest is complete, so its groups are too,
		// whatever fraction of them this attempt recomputed.
		f.groupDone[i] = maps.Clone(f.shardGroup[i])
	}
	f.mu.Unlock()
	f.log.Debug("shard done", "shard", i+1, "slot", att.slot, "speculative", att.speculative, "won", won)
	f.emit()
}

// discardDuplicate byte-compares a late duplicate completion against
// the winning manifest — under deterministic seeding they must be
// identical, so a mismatch is a reproducibility bug worth shouting
// about — then removes the duplicate.
func (f *fleet) discardDuplicate(att *attempt, winner string) {
	mine, errA := os.ReadFile(att.manifest)
	theirs, errB := os.ReadFile(winner)
	switch {
	case errA != nil || errB != nil:
		f.log.Warn("duplicate completion: cannot byte-compare", "shard", att.shard+1, "errs",
			errors.Join(errA, errB))
	case !bytes.Equal(mine, theirs):
		f.log.Error("determinism violation: duplicate shard manifests differ",
			"shard", att.shard+1, "winner", winner, "duplicate", att.manifest)
	default:
		f.log.Debug("duplicate shard manifest is byte-identical; discarding",
			"shard", att.shard+1, "duplicate", att.manifest)
	}
	if att.speculative {
		os.RemoveAll(filepath.Dir(att.manifest))
	}
}

// emit broadcasts a fleet snapshot to OnProgress (serialized under mu).
func (f *fleet) emit() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.opts.OnProgress == nil {
		return
	}
	f.opts.OnProgress(f.snapshotLocked())
}

func (f *fleet) snapshotLocked() FleetSnapshot {
	shards := make([]ShardStatus, len(f.progress))
	events := make([]experiment.Progress, len(f.progress))
	for i := range f.progress {
		v := f.q.view(i)
		shards[i] = ShardStatus{
			Shard:        i + 1,
			State:        v.State,
			Progress:     f.progress[i],
			Attempts:     v.Attempts,
			Slot:         v.Slot,
			Leases:       v.Live,
			LastBeat:     v.LastBeat,
			ManifestPath: f.canonical[i],
			Err:          v.Err,
		}
		events[i] = f.progress[i]
	}
	groups := make([]GroupProgress, len(f.groupOrder))
	for gi, g := range f.groupOrder {
		done := 0
		for i := range f.groupDone {
			d := f.groupDone[i][g]
			if max := f.shardGroup[i][g]; d > max {
				d = max
			}
			done += d
		}
		groups[gi] = GroupProgress{Group: g, Done: done, Total: f.groupTotal[g]}
	}
	return FleetSnapshot{
		Fleet:   experiment.MergeProgress(events...),
		Shards:  shards,
		Groups:  groups,
		Slots:   f.slots,
		Retired: f.retired,
	}
}

// observeEvent folds one valid progress event from an attempt into the
// fleet state and broadcasts a snapshot. The event has already beaten
// the attempt's lease.
func (f *fleet) observeEvent(att *attempt, ev experiment.Progress) {
	i := att.shard
	f.mu.Lock()
	// A resumed attempt reports done/total of its remaining work only;
	// the skipped prefix stays counted as done.
	skipped := f.blockTotal[i] - ev.Total
	if skipped < 0 {
		skipped = 0
	}
	done := skipped + ev.Done
	if done > f.blockTotal[i] {
		done = f.blockTotal[i]
	}
	f.attDone[i][att.id] = done
	// The shard's displayed count is the best live attempt's — so a
	// speculative duplicate starting from zero never drags a straggler's
	// meter backwards, while a sequential retry honestly resyncs down to
	// its checkpointed prefix.
	best := 0
	for _, d := range f.attDone[i] {
		if d > best {
			best = d
		}
	}
	f.progress[i].Done = best
	f.progress[i].Group = ev.Group
	// Per-group counts fold as high-water marks: workers force an
	// event at every group boundary, so each group's final count
	// lands even under throttling, and a resumed attempt restarting
	// a group from its remaining work cannot regress the ledger.
	if ev.Group != "" && ev.GroupDone > f.groupDone[i][ev.Group] {
		f.groupDone[i][ev.Group] = ev.GroupDone
	}
	if f.opts.OnProgress != nil {
		f.opts.OnProgress(f.snapshotLocked())
	}
	f.mu.Unlock()
}

// dropAttempt forgets a dead attempt's progress contribution. The
// shard's displayed count keeps its last value until a successor
// reports (and resyncs it honestly).
func (f *fleet) dropAttempt(att *attempt) {
	f.mu.Lock()
	delete(f.attDone[att.shard], att.id)
	f.mu.Unlock()
}

// runAttempt launches and supervises one worker attempt: it streams the
// worker's stdout through the progress-as-heartbeat contract (valid
// events beat the lease; malformed lines are logged and burn the
// deadline; chatter is ignored), waits for the process, and validates
// the manifest a clean exit must leave behind. A nil return means the
// attempt's manifest is complete and validated at att.manifest.
func (f *fleet) runAttempt(ctx context.Context, att *attempt) error {
	defer f.dropAttempt(att)
	i := att.shard
	outDir := f.opts.OutDir
	resume := false
	if att.speculative {
		// A speculative duplicate races the straggler from scratch in its
		// own spare directory — same artifact name, so the manifests are
		// byte-comparable, but never the straggler's checkpoint file.
		outDir = filepath.Join(f.opts.OutDir, fmt.Sprintf(".spare-%s-a%d", f.names[i], att.id))
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	} else {
		f.mu.Lock()
		resume = f.opts.Resume || f.launched[i]
		f.launched[i] = true
		f.mu.Unlock()
	}
	att.manifest = filepath.Join(outDir, f.names[i]+".json")

	argv := expandWorker(f.templates[att.slot-1], att.slot)
	argv = append(argv, workerArgs(f.specs[i], outDir, f.names[i], resume)...)
	f.log.Debug("worker launch", "shard", i+1, "slot", att.slot, "attempt", att.id,
		"resume", resume, "speculative", att.speculative, "argv", strings.Join(argv, " "))
	attCtx, attCancel := context.WithCancel(ctx)
	defer attCancel()
	cmd := exec.CommandContext(attCtx, argv[0], argv[1:]...)
	// Drain gracefully: on cancellation the worker gets SIGTERM first —
	// it flushes its checkpoint and ledger record on the way down — and
	// WaitDelay bounds how long we humor it (and any grandchildren
	// holding the pipes) before SIGKILL. The bound also caps how long an
	// expired lease's shard waits to be re-queued.
	cmd.Cancel = func() error {
		err := cmd.Process.Signal(syscall.SIGTERM)
		if errors.Is(err, os.ErrProcessDone) {
			return nil
		}
		return err
	}
	cmd.WaitDelay = f.opts.leaseTimeout() / 2
	if cmd.WaitDelay < 200*time.Millisecond {
		cmd.WaitDelay = 200 * time.Millisecond
	}
	if cmd.WaitDelay > 5*time.Second {
		cmd.WaitDelay = 5 * time.Second
	}
	if len(f.opts.Env) > 0 {
		cmd.Env = append(os.Environ(), f.opts.Env...)
	}
	stderr := &lineWriter{mu: &stderrMu, w: f.opts.Stderr, prefix: fmt.Sprintf("shard %d: ", i+1)}
	defer stderr.flush()
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	// The watchdog can now kill this attempt; a pre-bind expiry fires
	// immediately. Closing the pipe on cancellation unblocks the reader.
	f.q.bind(att, attCancel)
	go func() {
		<-attCtx.Done()
		stdout.Close()
	}()

	f.superviseStream(att, stdout)
	if err := cmd.Wait(); err != nil {
		if f.q.isExpired(att) {
			return fmt.Errorf("worker %s: %w", strings.Join(argv, " "), errLeaseExpired)
		}
		return fmt.Errorf("worker %s: %w", strings.Join(argv, " "), err)
	}
	if err := validateShardManifest(att.manifest, f.blockTotal[i]); err != nil {
		// An invalid manifest cannot seed a -resume; clear it so the
		// retry starts from the last good checkpoint state (or scratch).
		os.Remove(att.manifest)
		return fmt.Errorf("worker %s: %w", strings.Join(argv, " "), err)
	}
	return nil
}

// superviseStream reads the worker's stdout line by line, enforcing the
// progress-as-heartbeat contract. Overlong lines (>1MB without a
// newline) are treated as malformed rather than buffered without bound.
func (f *fleet) superviseStream(att *attempt, r io.Reader) {
	const maxLine = 1 << 20
	br := bufio.NewReaderSize(r, 64*1024)
	var line []byte
	overlong := false
	handle := func(line []byte) {
		ev, kind := experiment.ClassifyProgressLine(line)
		switch kind {
		case experiment.LineEvent:
			f.q.beat(att)
			f.observeEvent(att, ev)
		case experiment.LineMalformed:
			snippet := line
			if len(snippet) > 120 {
				snippet = snippet[:120]
			}
			f.log.Warn("malformed progress line from worker: skipping (no heartbeat credit)",
				"shard", att.shard+1, "slot", att.slot, "len", len(line),
				"line", string(snippet))
		}
	}
	for {
		chunk, isPrefix, err := br.ReadLine()
		if len(chunk) > 0 {
			switch {
			case overlong:
				// Discarding the tail of a line already ruled malformed.
			case len(line)+len(chunk) > maxLine:
				overlong = true
				f.log.Warn("overlong progress line from worker: skipping (no heartbeat credit)",
					"shard", att.shard+1, "slot", att.slot)
			default:
				line = append(line, chunk...)
			}
		}
		if err != nil {
			if len(line) > 0 && !overlong {
				handle(line)
			}
			return
		}
		if !isPrefix {
			if !overlong {
				handle(line)
			}
			line, overlong = line[:0], false
		}
	}
}

// validateShardManifest accepts only a complete shard manifest: it must
// parse, and its job count must equal the shard's full trial count. A
// checkpoint (always a strict prefix of the shard) or a truncated write
// fails, so a worker that exits cleanly without finishing cannot pass a
// partial manifest off as done.
func validateShardManifest(path string, wantJobs int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("worker exited cleanly but left no manifest: %w", err)
	}
	var m experiment.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("manifest %s is corrupt: %w", path, err)
	}
	if m.Jobs != wantJobs {
		return fmt.Errorf("manifest %s is incomplete: records %d of %d jobs", path, m.Jobs, wantJobs)
	}
	return nil
}

// workerArgs is the standard sweep argument list appended to the worker
// template: run this spec file, write the shard manifest into outDir,
// speak the JSON progress protocol, checkpoint completed cells so a
// retry can resume, and skip per-metric tables (the merged campaign
// exports those once) and ledger records (the driver appends one record
// for the whole fleet).
func workerArgs(specPath, outDir, name string, resume bool) []string {
	args := []string{
		"-spec", specPath,
		"-out", outDir,
		"-name", name,
		"-metrics", "",
		"-progress", "json",
		"-checkpoint",
		"-ledger", "none",
	}
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// expandWorker substitutes the 1-based slot number for "{slot}" (and
// the legacy "{shard}") in every template element.
func expandWorker(tmpl []string, slot int) []string {
	out := make([]string, len(tmpl))
	n := strconv.Itoa(slot)
	for i, t := range tmpl {
		t = strings.ReplaceAll(t, "{slot}", n)
		out[i] = strings.ReplaceAll(t, "{shard}", n)
	}
	return out
}

// stderrMu serializes whole lines from concurrent workers onto the
// shared stderr destination.
var stderrMu sync.Mutex

// lineWriter buffers writes until a full line is available, then emits
// prefix+line under the shared mutex, so concurrent workers' stderr
// interleaves whole lines instead of fragments.
type lineWriter struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string
	buf    []byte
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.buf = append(lw.buf, p...)
	for {
		nl := bytes.IndexByte(lw.buf, '\n')
		if nl < 0 {
			return len(p), nil
		}
		line := lw.buf[:nl+1]
		lw.mu.Lock()
		_, err := fmt.Fprintf(lw.w, "%s%s", lw.prefix, line)
		lw.mu.Unlock()
		lw.buf = lw.buf[nl+1:]
		if err != nil {
			return len(p), err
		}
	}
}

// flush emits any buffered unterminated tail — a worker killed
// mid-write often leaves its most important diagnostic without a
// trailing newline.
func (lw *lineWriter) flush() {
	if len(lw.buf) == 0 {
		return
	}
	lw.mu.Lock()
	fmt.Fprintf(lw.w, "%s%s\n", lw.prefix, lw.buf)
	lw.mu.Unlock()
	lw.buf = nil
}
