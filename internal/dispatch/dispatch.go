// Package dispatch runs one Monte-Carlo campaign as a fleet of shard
// worker subprocesses and merges the results automatically — the
// scale-past-one-box driver on top of cmd/sweep's -shard/-merge
// plumbing.
//
// Run splits a campaign spec into n shard specs with
// sim.CampaignSpec.SplitShards (replicate seeds derive from the full
// range, so every shard computes byte-identical slices of the unsharded
// campaign), launches one supervised worker subprocess per shard, and
// folds the workers' newline-delimited JSON progress streams
// (experiment.Progress events, cmd/sweep -progress=json) into live
// fleet snapshots. A worker that dies is retried with -resume, picking
// up from the checkpoint manifest it wrote as cells completed; when
// every shard finishes, the shard manifests merge through
// MergeShardManifests into the final campaign manifest.
//
// The worker command is a template, so the fleet is not tied to the
// local box: Options.Worker{"ssh", "box{shard}", "--", "sweep"} runs
// shard i on host box<i>. The default template re-executes the current
// binary, which is what cmd/sweep -dispatch uses.
package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"maps"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

// ShardState is the lifecycle of one shard in the fleet.
type ShardState int

const (
	// ShardPending: the worker has not been launched yet.
	ShardPending ShardState = iota
	// ShardRunning: a worker attempt is executing (Attempts > 1 means a
	// retry after a failure).
	ShardRunning
	// ShardDone: the shard's manifest is complete on disk.
	ShardDone
	// ShardFailed: every attempt failed; Err holds the last error.
	ShardFailed
)

// String implements fmt.Stringer.
func (s ShardState) String() string {
	switch s {
	case ShardPending:
		return "pending"
	case ShardRunning:
		return "running"
	case ShardDone:
		return "done"
	case ShardFailed:
		return "failed"
	}
	return fmt.Sprintf("ShardState(%d)", int(s))
}

// ShardStatus is the live state of one shard worker.
type ShardStatus struct {
	// Shard is the 1-based shard number.
	Shard int
	State ShardState
	// Progress counts the shard's trials: Total is the shard's full
	// trial count (computed from the spec, not trusted from the worker),
	// and Done folds the worker's reports on top of whatever a resumed
	// attempt skipped. A retry's first report resyncs Done to the
	// checkpointed prefix, so trials of partially completed cells —
	// which the resume recomputes — honestly drop off the meter rather
	// than being counted twice.
	Progress experiment.Progress
	// Attempts counts worker launches, first try included.
	Attempts int
	// ManifestPath is where the shard's manifest lands.
	ManifestPath string
	// Err is the terminal error of a failed shard.
	Err error
}

// GroupProgress counts one campaign group's completed trials across the
// whole fleet, against the group's campaign-wide total.
type GroupProgress struct {
	Group string
	Done  int
	Total int
}

// FleetSnapshot is one serialized observation of the whole fleet,
// delivered to Options.OnProgress after every state change.
type FleetSnapshot struct {
	// Fleet is the merged progress of every shard (experiment.MergeProgress).
	Fleet experiment.Progress
	// Shards holds a copy of every shard's status, in shard order.
	Shards []ShardStatus
	// Groups breaks the fleet's progress down by campaign group, in job
	// order, folding the workers' per-group counts (Progress.GroupDone)
	// across shards. Completion is exact — a finished shard counts its
	// full per-group totals — while in-flight counts are a lower bound,
	// since a resumed attempt reports only the work it recomputes.
	Groups []GroupProgress
}

// Terminal reports whether every shard has finished, successfully or
// not.
func (s FleetSnapshot) Terminal() bool {
	for _, sh := range s.Shards {
		if sh.State != ShardDone && sh.State != ShardFailed {
			return false
		}
	}
	return len(s.Shards) > 0
}

// Options configures a fleet run.
type Options struct {
	// Shards is the fleet size; the campaign's replicate dimension is
	// split into this many even blocks.
	Shards int
	// Worker is the argv template invoked for each shard before the
	// standard sweep arguments (-spec, -out, -name, -progress=json, ...)
	// are appended. The literal "{shard}" in any element is replaced by
	// the 1-based shard number, so {"ssh", "box{shard}", "--", "sweep"}
	// reaches one remote host per shard. Empty means the current
	// executable — every shard a local subprocess.
	Worker []string
	// OutDir receives the shard spec files, shard manifests, and
	// checkpoints. With a remote Worker template it must name a
	// directory the workers and the driver share (NFS or equivalent).
	OutDir string
	// Name is the campaign name; shard artifacts are <Name>-shard<i>.
	Name string
	// Retries is how many times a failed shard is relaunched (with
	// -resume, so completed cells are not recomputed). Negative means
	// none; zero means the default of 2.
	Retries int
	// Resume passes -resume to first attempts too, so a rerun of the
	// whole fleet picks up surviving shard manifests from a previous
	// dispatch instead of starting over.
	Resume bool
	// Env lists extra environment variables (KEY=VALUE) for workers, on
	// top of the driver's environment.
	Env []string
	// Stderr receives the workers' stderr, each line prefixed with its
	// shard ("shard 2: ..."); nil means the driver's stderr.
	Stderr io.Writer
	// OnProgress, when non-nil, observes every fleet state change.
	// Calls are serialized; keep it fast (a meter redraw).
	OnProgress func(FleetSnapshot)
	// Logger receives structured lifecycle events: worker launches and
	// clean exits at debug, retries at warn (shard/attempt/err attrs),
	// terminal shard failures at error. Nil discards them.
	Logger *slog.Logger
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(slog.DiscardHandler)
}

func (o Options) retries() int {
	switch {
	case o.Retries < 0:
		return 0
	case o.Retries == 0:
		return 2
	}
	return o.Retries
}

// Run executes the campaign as a fleet of opts.Shards shard workers and
// returns the merged manifest (not yet written to disk) plus the merged
// spec. The spec must not already pin a shard range. On failure —
// a shard exhausting its retries cancels the remaining workers — the
// error lists every root-cause shard failure; surviving checkpoints and
// shard manifests stay in OutDir, so rerunning with Resume set picks up
// where the fleet stopped.
func Run(ctx context.Context, spec sim.CampaignSpec, opts Options) (*experiment.Manifest, sim.CampaignSpec, error) {
	var none sim.CampaignSpec
	if opts.Shards < 1 {
		return nil, none, fmt.Errorf("dispatch: fleet needs at least one shard, got %d", opts.Shards)
	}
	if opts.Name == "" {
		opts.Name = "sweep"
	}
	if opts.OutDir == "" {
		opts.OutDir = "out"
	}
	spec = spec.Normalized()
	shardSpecs, err := spec.SplitShards(opts.Shards)
	if err != nil {
		return nil, none, fmt.Errorf("dispatch: %w", err)
	}
	worker := opts.Worker
	if len(worker) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, none, fmt.Errorf("dispatch: no worker template and no current executable: %w", err)
		}
		worker = []string{exe}
		// Local fleet: every worker is a subprocess of this box, so an
		// unpinned Workers (0 = all cores) would oversubscribe the CPU
		// n-fold. Split the cores across the shards instead; an explicit
		// spec.Workers is respected verbatim (remote templates are too —
		// each remote box owns its own cores). Worker counts change wall
		// clock only, never results.
		if spec.Workers == 0 {
			per := runtime.GOMAXPROCS(0) / opts.Shards
			if per < 1 {
				per = 1
			}
			for i := range shardSpecs {
				shardSpecs[i].Workers = per
			}
		}
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, none, fmt.Errorf("dispatch: %w", err)
	}

	f := &fleet{
		opts:       opts,
		worker:     worker,
		log:        opts.logger(),
		statuses:   make([]ShardStatus, len(shardSpecs)),
		specs:      make([]string, len(shardSpecs)),
		groupTotal: make(map[string]int),
		groupDone:  make([]map[string]int, len(shardSpecs)),
		shardGroup: make([]map[string]int, len(shardSpecs)),
	}
	if f.opts.Stderr == nil {
		f.opts.Stderr = os.Stderr
	}
	// Campaign-wide group totals come from the unsharded spec, in job
	// order — the heatmap's rows and denominators.
	spec.ExecutedJobs(nil, func(j sim.TrialJob) {
		g := j.Group()
		if _, ok := f.groupTotal[g]; !ok {
			f.groupOrder = append(f.groupOrder, g)
		}
		f.groupTotal[g]++
	})
	for i, shSpec := range shardSpecs {
		n := i + 1
		// The shard's full trial count is computed here, not trusted from
		// worker reports: a resumed attempt reports only its remaining
		// work, and the fleet totals must not shrink when that happens.
		total := 0
		f.groupDone[i] = make(map[string]int)
		f.shardGroup[i] = make(map[string]int)
		shSpec.ExecutedJobs(nil, func(j sim.TrialJob) {
			total++
			f.shardGroup[i][j.Group()]++
		})
		f.statuses[i] = ShardStatus{
			Shard:        n,
			State:        ShardPending,
			Progress:     experiment.Progress{Total: total},
			ManifestPath: filepath.Join(opts.OutDir, fmt.Sprintf("%s-shard%d.json", opts.Name, n)),
		}
		specPath := filepath.Join(opts.OutDir, fmt.Sprintf("%s-shard%d.spec.json", opts.Name, n))
		data, err := json.MarshalIndent(shSpec, "", "  ")
		if err != nil {
			return nil, none, fmt.Errorf("dispatch: marshal shard %d spec: %w", n, err)
		}
		if err := os.WriteFile(specPath, append(data, '\n'), 0o644); err != nil {
			return nil, none, fmt.Errorf("dispatch: %w", err)
		}
		f.specs[i] = specPath
	}

	// A shard out of retries dooms the merge; cancel the siblings
	// instead of burning their remaining work. Checkpoints survive for a
	// Resume rerun.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range f.statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := f.runShard(ctx, i); err != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()

	// Cancellation echoes — shards killed because a sibling failed first
	// or the parent context ended — are casualties, not causes; report
	// them only when no root cause exists (pure parent cancellation).
	var failures, echoes []error
	for i := range f.statuses {
		st := &f.statuses[i]
		if st.State != ShardFailed {
			continue
		}
		e := fmt.Errorf("shard %d: %w", st.Shard, st.Err)
		if errors.Is(st.Err, context.Canceled) || errors.Is(st.Err, context.DeadlineExceeded) {
			echoes = append(echoes, e)
		} else {
			failures = append(failures, e)
		}
	}
	if len(failures) == 0 {
		failures = echoes
	}
	if len(failures) > 0 {
		return nil, none, fmt.Errorf("dispatch: %w", errors.Join(failures...))
	}

	paths := make([]string, len(f.statuses))
	for i, st := range f.statuses {
		paths[i] = st.ManifestPath
	}
	manifest, mergedSpec, err := MergeShardManifests(paths, opts.Name)
	if err != nil {
		return nil, none, fmt.Errorf("dispatch: merging fleet manifests: %w", err)
	}
	return manifest, mergedSpec, nil
}

// fleet is the shared state of one Run: the shard statuses every worker
// goroutine mutates under mu, and the written shard spec paths.
type fleet struct {
	opts   Options
	worker []string
	log    *slog.Logger

	// The group ledger for fleet snapshots: campaign-wide totals in job
	// order, each shard's per-group totals, and the per-(shard, group)
	// high-water mark of reported GroupDone counts.
	groupOrder []string
	groupTotal map[string]int
	shardGroup []map[string]int

	mu        sync.Mutex
	statuses  []ShardStatus
	specs     []string
	groupDone []map[string]int
}

// update mutates shard i's status under the lock and broadcasts a
// snapshot.
func (f *fleet) update(i int, mutate func(*ShardStatus)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mutate(&f.statuses[i])
	if f.opts.OnProgress == nil {
		return
	}
	f.opts.OnProgress(f.snapshotLocked())
}

func (f *fleet) snapshotLocked() FleetSnapshot {
	shards := make([]ShardStatus, len(f.statuses))
	copy(shards, f.statuses)
	events := make([]experiment.Progress, len(shards))
	for i, s := range shards {
		events[i] = s.Progress
	}
	groups := make([]GroupProgress, len(f.groupOrder))
	for gi, g := range f.groupOrder {
		done := 0
		for i := range f.groupDone {
			d := f.groupDone[i][g]
			if max := f.shardGroup[i][g]; d > max {
				d = max
			}
			done += d
		}
		groups[gi] = GroupProgress{Group: g, Done: done, Total: f.groupTotal[g]}
	}
	return FleetSnapshot{Fleet: experiment.MergeProgress(events...), Shards: shards, Groups: groups}
}

// runShard supervises one shard through its retry budget. It returns a
// non-nil error only when the shard is terminally failed.
func (f *fleet) runShard(ctx context.Context, i int) error {
	attempts := 1 + f.opts.retries()
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		if ctx.Err() != nil {
			last = ctx.Err()
			break
		}
		resume := f.opts.Resume || attempt > 1
		if attempt > 1 {
			f.log.Warn("shard retry", "shard", i+1, "attempt", attempt, "err", last)
		}
		f.update(i, func(st *ShardStatus) {
			st.State = ShardRunning
			st.Attempts = attempt
		})
		last = f.runWorker(ctx, i, resume)
		if last != nil && ctx.Err() != nil {
			// The worker died because the fleet is shutting down; make
			// the error recognizably a cancellation echo so the fleet
			// error reports root causes, not casualties.
			last = fmt.Errorf("%w (worker: %v)", ctx.Err(), last)
		}
		if last == nil {
			f.log.Debug("shard done", "shard", i+1, "attempt", attempt)
			f.update(i, func(st *ShardStatus) {
				st.State = ShardDone
				st.Progress.Done = st.Progress.Total
				st.Progress.Group = ""
				// The shard's manifest is complete, so its groups are too,
				// whatever fraction of them this attempt recomputed.
				f.groupDone[i] = maps.Clone(f.shardGroup[i])
			})
			return nil
		}
	}
	f.log.Error("shard failed", "shard", i+1, "attempts", attempts, "err", last)
	f.update(i, func(st *ShardStatus) {
		st.State = ShardFailed
		st.Err = last
	})
	return last
}

// runWorker launches one worker attempt for shard i, streams its
// progress events into the fleet state, and returns the process error
// (nil on a clean exit that left a manifest behind).
func (f *fleet) runWorker(ctx context.Context, i int, resume bool) error {
	f.mu.Lock()
	st := f.statuses[i]
	specPath := f.specs[i]
	f.mu.Unlock()

	argv := expandWorker(f.worker, st.Shard)
	argv = append(argv, workerArgs(specPath, f.opts.OutDir, shardName(f.opts.Name, st.Shard), resume)...)
	f.log.Debug("shard launch", "shard", st.Shard, "attempt", st.Attempts, "resume", resume, "argv", strings.Join(argv, " "))
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	// A killed worker can leave grandchildren holding its pipes open;
	// WaitDelay bounds how long Wait humors them, and the watcher below
	// unblocks the progress scanner the same way.
	cmd.WaitDelay = 5 * time.Second
	if len(f.opts.Env) > 0 {
		cmd.Env = append(os.Environ(), f.opts.Env...)
	}
	stderr := &lineWriter{mu: &stderrMu, w: f.opts.Stderr, prefix: fmt.Sprintf("shard %d: ", st.Shard)}
	defer stderr.flush()
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		<-watchCtx.Done()
		stdout.Close()
	}()
	scanner := bufio.NewScanner(stdout)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scanner.Scan() {
		ev, ok := experiment.ParseProgressLine(scanner.Bytes())
		if !ok {
			continue
		}
		f.update(i, func(s *ShardStatus) {
			// A resumed attempt reports done/total of its remaining work
			// only; the skipped prefix stays counted as done.
			skipped := s.Progress.Total - ev.Total
			if skipped < 0 {
				skipped = 0
			}
			done := skipped + ev.Done
			if done > s.Progress.Total {
				done = s.Progress.Total
			}
			if done > s.Progress.Done || ev.Done == 0 {
				s.Progress.Done = done
			}
			s.Progress.Group = ev.Group
			// Per-group counts fold as high-water marks: workers force an
			// event at every group boundary, so each group's final count
			// lands even under throttling, and a resumed attempt restarting
			// a group from its remaining work cannot regress the ledger.
			if ev.Group != "" && ev.GroupDone > f.groupDone[i][ev.Group] {
				f.groupDone[i][ev.Group] = ev.GroupDone
			}
		})
	}
	scanErr := scanner.Err()
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("worker %s: %w", strings.Join(argv, " "), err)
	}
	if scanErr != nil {
		return fmt.Errorf("worker %s: reading progress: %w", strings.Join(argv, " "), scanErr)
	}
	if _, err := os.Stat(st.ManifestPath); err != nil {
		return fmt.Errorf("worker exited cleanly but left no manifest at %s", st.ManifestPath)
	}
	return nil
}

// shardName labels shard i's artifacts.
func shardName(name string, shard int) string {
	return fmt.Sprintf("%s-shard%d", name, shard)
}

// workerArgs is the standard sweep argument list appended to the worker
// template: run this spec file, write the shard manifest into the fleet
// directory, speak the JSON progress protocol, checkpoint completed
// cells so a retry can resume, and skip per-metric tables (the merged
// campaign exports those once) and ledger records (the driver appends
// one record for the whole fleet).
func workerArgs(specPath, outDir, name string, resume bool) []string {
	args := []string{
		"-spec", specPath,
		"-out", outDir,
		"-name", name,
		"-metrics", "",
		"-progress", "json",
		"-checkpoint",
		"-ledger", "none",
	}
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// expandWorker substitutes the 1-based shard number for "{shard}" in
// every template element.
func expandWorker(tmpl []string, shard int) []string {
	out := make([]string, len(tmpl))
	for i, t := range tmpl {
		out[i] = strings.ReplaceAll(t, "{shard}", strconv.Itoa(shard))
	}
	return out
}

// stderrMu serializes whole lines from concurrent workers onto the
// shared stderr destination.
var stderrMu sync.Mutex

// lineWriter buffers writes until a full line is available, then emits
// prefix+line under the shared mutex, so concurrent workers' stderr
// interleaves whole lines instead of fragments.
type lineWriter struct {
	mu     *sync.Mutex
	w      io.Writer
	prefix string
	buf    []byte
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.buf = append(lw.buf, p...)
	for {
		nl := bytes.IndexByte(lw.buf, '\n')
		if nl < 0 {
			return len(p), nil
		}
		line := lw.buf[:nl+1]
		lw.mu.Lock()
		_, err := fmt.Fprintf(lw.w, "%s%s", lw.prefix, line)
		lw.mu.Unlock()
		lw.buf = lw.buf[nl+1:]
		if err != nil {
			return len(p), err
		}
	}
}

// flush emits any buffered unterminated tail — a worker killed
// mid-write often leaves its most important diagnostic without a
// trailing newline.
func (lw *lineWriter) flush() {
	if len(lw.buf) == 0 {
		return
	}
	lw.mu.Lock()
	fmt.Fprintf(lw.w, "%s%s\n", lw.prefix, lw.buf)
	lw.mu.Unlock()
	lw.buf = nil
}
