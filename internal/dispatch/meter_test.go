package dispatch

import (
	"strings"
	"testing"
	"time"

	"wsncover/internal/experiment"
)

// testClock is a manually advanced time source.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestMeter(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	m := NewMeter(&buf, 400, nil)
	m.SetClock(clock.now)
	m.done = 99
	clock.advance(2 * time.Second)
	m.JobDone("only")
	out := buf.String()
	if !strings.Contains(out, "100/400 trials") {
		t.Errorf("meter output %q lacks completed/total", out)
	}
	if !strings.Contains(out, "trials/s") || !strings.Contains(out, "ETA") {
		t.Errorf("meter output %q lacks rate or ETA", out)
	}
	if strings.Contains(out, "groups") {
		t.Errorf("single-group meter %q must not render a group breakdown", out)
	}
	if m.Done() != 100 {
		t.Errorf("Done() = %d", m.Done())
	}

	// Rapid updates are throttled; the final update always renders and
	// reports the elapsed time instead of an ETA.
	buf.Reset()
	clock.advance(50 * time.Millisecond)
	m.JobDone("only")
	if buf.Len() != 0 {
		t.Errorf("throttled update rendered %q", buf.String())
	}
	m.done = 399
	m.JobDone("only")
	if out := buf.String(); !strings.Contains(out, "400/400 trials") || !strings.Contains(out, "in ") {
		t.Errorf("final output %q", out)
	}
}

// TestMeterGroupBreakdown exercises the wide-campaign path: the meter
// tracks per-group completion, names the advancing group, and counts
// fully finished groups.
func TestMeterGroupBreakdown(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	totals := map[string]int{"SR 16x16": 2, "AR 16x16": 2}
	m := NewMeter(&buf, 4, totals)
	m.SetClock(clock.now)

	clock.advance(2 * time.Second)
	m.JobDone("SR 16x16")
	out := buf.String()
	if !strings.Contains(out, "groups 0/2") || !strings.Contains(out, "[SR 16x16 1/2]") {
		t.Errorf("meter output %q lacks the group breakdown", out)
	}

	buf.Reset()
	clock.advance(time.Second)
	m.JobDone("SR 16x16")
	if out := buf.String(); !strings.Contains(out, "groups 1/2") {
		t.Errorf("meter output %q should count the finished group", out)
	}

	clock.advance(time.Second)
	m.JobDone("AR 16x16")
	buf.Reset()
	clock.advance(time.Second)
	m.JobDone("AR 16x16")
	if out := buf.String(); !strings.Contains(out, "4/4 trials") || !strings.Contains(out, "groups 2/2") {
		t.Errorf("final output %q", out)
	}
}

// TestMeterShardTotals pins the sharded-meter contract: a meter sized
// from a shard's executed jobs renders the shard's own trial count as
// the denominator, never the full campaign's replicate range. (cmd/sweep
// feeds ExecutedJobs counts; its CLI-level regression test covers the
// wiring, this covers the rendering.)
func TestMeterShardTotals(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	// Campaign: 20 replicates; this shard owns 5 trials.
	m := NewMeter(&buf, 5, nil)
	m.SetClock(clock.now)
	clock.advance(time.Second)
	m.JobDone("SR 8x8")
	out := buf.String()
	if !strings.Contains(out, "1/5 trials") {
		t.Errorf("shard meter rendered %q, want the shard's own total 1/5", out)
	}
	if strings.Contains(out, "/20") {
		t.Errorf("shard meter %q leaked the full campaign total", out)
	}
	// ETA derives from the shard total too: 1 trial/s, 4 left -> 4s.
	if !strings.Contains(out, "ETA 4s") {
		t.Errorf("shard meter %q: ETA must be computed from the shard's remaining trials", out)
	}
}

func TestFormatETA(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Millisecond:                                 "<1s",
		42 * time.Second:                                       "42s",
		59*time.Second + 700*time.Millisecond:                  "1m00s", // rounds across the unit boundary
		3*time.Minute + 7*time.Second:                          "3m07s",
		59*time.Minute + 59*time.Second + 800*time.Millisecond: "1h00m",
		2*time.Hour + 5*time.Minute:                            "2h05m",
		26*time.Hour + 30*time.Minute:                          "26h30m",
	}
	for d, want := range cases {
		if got := FormatETA(d); got != want {
			t.Errorf("FormatETA(%v) = %q, want %q", d, got, want)
		}
	}
}

func snap(shards ...ShardStatus) FleetSnapshot {
	events := make([]experiment.Progress, len(shards))
	for i, s := range shards {
		events[i] = s.Progress
	}
	return FleetSnapshot{Fleet: experiment.MergeProgress(events...), Shards: shards}
}

func TestFleetMeterRendering(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	f := NewFleetMeter(&buf)
	f.SetClock(clock.now)

	clock.advance(2 * time.Second)
	s := snap(
		ShardStatus{Shard: 1, State: ShardDone, Progress: experiment.Progress{Done: 10, Total: 10}},
		ShardStatus{Shard: 2, State: ShardRunning, Attempts: 1, Slot: 2, Leases: 1,
			LastBeat: clock.now().Add(-time.Second), Progress: experiment.Progress{Done: 4, Total: 10}},
		ShardStatus{Shard: 3, State: ShardRunning, Attempts: 2, Slot: 1, Leases: 1,
			Progress: experiment.Progress{Done: 2, Total: 10}},
		ShardStatus{Shard: 4, State: ShardPending, Progress: experiment.Progress{Total: 10}},
	)
	s.Slots = 2
	f.Update(s)
	out := buf.String()
	for _, want := range []string{"fleet 16/40 trials", "trials/s", "ETA", "[1:ok 2:40% 3:20% retry2 4:wait]"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet line %q lacks %q", out, want)
		}
	}
	if strings.Contains(out, "slots ") {
		t.Errorf("healthy fleet line %q shows a slot count", out)
	}

	// Lease-state cells: a speculative race renders x2, a stale
	// heartbeat its age, and a retired slot shrinks the slots summary.
	buf.Reset()
	clock.advance(time.Second)
	s = snap(
		ShardStatus{Shard: 1, State: ShardRunning, Attempts: 3, Slot: 1, Leases: 2,
			LastBeat: clock.now().Add(-30 * time.Second), Progress: experiment.Progress{Done: 4, Total: 10}},
		ShardStatus{Shard: 2, State: ShardPending, Attempts: 1, Progress: experiment.Progress{Total: 10}},
	)
	s.Slots, s.Retired = 3, 1
	f.Update(s)
	out = buf.String()
	for _, want := range []string{"slots 2/3", "1:40% retry3x2~30s", "2:retry1"} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded fleet line %q lacks %q", out, want)
		}
	}

	// Throttled mid-run, but a terminal snapshot always renders with
	// elapsed time and per-shard outcomes.
	buf.Reset()
	clock.advance(50 * time.Millisecond)
	f.Update(snap(
		ShardStatus{Shard: 1, State: ShardRunning, Attempts: 1, Progress: experiment.Progress{Done: 5, Total: 10}},
		ShardStatus{Shard: 2, State: ShardRunning, Attempts: 1, Progress: experiment.Progress{Done: 5, Total: 10}},
	))
	if buf.Len() != 0 {
		t.Errorf("throttled fleet update rendered %q", buf.String())
	}
	f.Update(snap(
		ShardStatus{Shard: 1, State: ShardDone, Progress: experiment.Progress{Done: 10, Total: 10}},
		ShardStatus{Shard: 2, State: ShardFailed, Progress: experiment.Progress{Done: 3, Total: 10}},
	))
	out = buf.String()
	for _, want := range []string{"fleet 13/20 trials", "in ", "[1:ok 2:FAIL]"} {
		if !strings.Contains(out, want) {
			t.Errorf("terminal fleet line %q lacks %q", out, want)
		}
	}
}

// TestFleetMeterZeroTotalShards: before any shard reports, every total
// is zero — the meter must render without dividing by zero and show an
// unknown ETA, not a bogus one.
func TestFleetMeterZeroTotalShards(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	f := NewFleetMeter(&buf)
	f.SetClock(clock.now)
	clock.advance(time.Second)
	f.Update(snap(
		ShardStatus{Shard: 1, State: ShardPending},
		ShardStatus{Shard: 2, State: ShardPending},
	))
	out := buf.String()
	for _, want := range []string{"fleet 0/0 trials", "0 trials/s", "ETA --", "[1:wait 2:wait]"} {
		if !strings.Contains(out, want) {
			t.Errorf("cold-fleet line %q lacks %q", out, want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("cold-fleet line %q leaked a division by zero", out)
	}
}

// TestFleetMeterNeverReportingShard: a shard that launches but emits no
// progress events holds 0/0 while its peers advance; the aggregate and
// ETA come from the reporting shards alone and never go non-finite.
func TestFleetMeterNeverReportingShard(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	f := NewFleetMeter(&buf)
	f.SetClock(clock.now)
	clock.advance(2 * time.Second)
	f.Update(snap(
		ShardStatus{Shard: 1, State: ShardRunning, Attempts: 1, Progress: experiment.Progress{Done: 8, Total: 16}},
		ShardStatus{Shard: 2, State: ShardRunning, Attempts: 1}, // silent: no event yet
	))
	out := buf.String()
	if !strings.Contains(out, "fleet 8/16 trials") {
		t.Errorf("fleet line %q should aggregate only reporting shards", out)
	}
	// 4 trials/s, 8 remaining -> 2s; the silent shard must not poison it.
	if !strings.Contains(out, "ETA 2s") {
		t.Errorf("fleet line %q: ETA must come from known totals", out)
	}
	if !strings.Contains(out, "2:0%") {
		t.Errorf("fleet line %q should show the silent shard at 0%%", out)
	}
}

// TestFleetMeterLateInitialEvents: totals grow as shards report in; the
// ETA must track the known total without regressing to a shorter
// estimate when a late shard's total lands.
func TestFleetMeterLateInitialEvents(t *testing.T) {
	var buf strings.Builder
	clock := newTestClock()
	f := NewFleetMeter(&buf)
	f.SetClock(clock.now)

	clock.advance(time.Second)
	f.Update(snap(
		ShardStatus{Shard: 1, State: ShardRunning, Attempts: 1, Progress: experiment.Progress{Done: 4, Total: 8}},
		ShardStatus{Shard: 2, State: ShardPending},
	))
	if out := buf.String(); !strings.Contains(out, "fleet 4/8 trials") || !strings.Contains(out, "ETA 1s") {
		t.Errorf("early line %q", out)
	}

	// Shard 2's initial 0/8 arrives late: the denominator jumps from 8
	// to 16 and the ETA covers the new work (4 trials/s, 8 left -> 2s),
	// not the stale single-shard total.
	buf.Reset()
	clock.advance(time.Second)
	f.Update(snap(
		ShardStatus{Shard: 1, State: ShardRunning, Attempts: 1, Progress: experiment.Progress{Done: 8, Total: 8}},
		ShardStatus{Shard: 2, State: ShardRunning, Attempts: 1, Progress: experiment.Progress{Done: 0, Total: 8}},
	))
	if out := buf.String(); !strings.Contains(out, "fleet 8/16 trials") || !strings.Contains(out, "ETA 2s") {
		t.Errorf("late-total line %q, want denominator 16 and ETA 2s", out)
	}
}

func TestFleetSnapshotTerminal(t *testing.T) {
	if (FleetSnapshot{}).Terminal() {
		t.Error("empty snapshot is not terminal")
	}
	running := snap(ShardStatus{Shard: 1, State: ShardRunning})
	if running.Terminal() {
		t.Error("running fleet is not terminal")
	}
	ended := snap(ShardStatus{Shard: 1, State: ShardDone}, ShardStatus{Shard: 2, State: ShardFailed})
	if !ended.Terminal() {
		t.Error("done+failed fleet is terminal")
	}
}

func TestShardStateString(t *testing.T) {
	for s, want := range map[ShardState]string{
		ShardPending: "pending", ShardRunning: "running",
		ShardDone: "done", ShardFailed: "failed", ShardState(9): "ShardState(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}
