package dispatch

import (
	"path/filepath"
	"strings"
	"testing"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/stats"
)

// shardSpec builds the canonical small campaign restricted to one
// replicate block.
func shardSpec(first, count, replicates int) sim.CampaignSpec {
	return sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR},
		Grids:      []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares:     []int{8},
		Replicates: replicates,
		BaseSeed:   1,
		ShardFirst: first,
		ShardCount: count,
	}.Normalized()
}

// writeManifest persists a one-cell manifest for the given spec and
// returns its path.
func writeManifest(t *testing.T, dir, name string, spec sim.CampaignSpec, n int, mean float64) string {
	t.Helper()
	points := []experiment.Point{{
		Group: "SR 8x8", X: 8,
		Metrics: map[string]stats.Description{
			"moves": {N: n, Mean: mean, Min: mean - 1, Max: mean + 1, Median: mean},
		},
	}}
	m, err := experiment.NewManifest(name, spec, n, 0, points)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, name+".json")
}

func TestMergeShardManifests(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a", shardSpec(0, 2, 4), 2, 3)
	b := writeManifest(t, dir, "b", shardSpec(2, 2, 4), 2, 5)
	bCopy := writeManifest(t, dir, "bcopy", shardSpec(2, 2, 4), 2, 5)
	whole := writeManifest(t, dir, "whole", shardSpec(0, 4, 4), 4, 4)
	full := writeManifest(t, dir, "full", sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR},
		Grids:      []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares:     []int{8},
		Replicates: 4,
		BaseSeed:   1,
	}.Normalized(), 4, 4)
	drift := writeManifest(t, dir, "drift", func() sim.CampaignSpec {
		s := shardSpec(2, 2, 4)
		s.BaseSeed = 99
		return s
	}(), 2, 5)

	cases := []struct {
		name    string
		paths   []string
		wantErr string // empty = success
	}{
		{"two-shards", []string{a, b}, ""},
		{"order-independent", []string{b, a}, ""},
		{"single-shard-full-range", []string{whole}, ""},
		{"single-shard-partial", []string{a}, "missing"},
		{"same-path-twice", []string{a, a}, "passed twice"},
		{"same-range-two-files", []string{a, b, bCopy}, "same shard"},
		{"gap", []string{b}, "missing"},
		{"not-a-shard", []string{a, full}, "not a shard manifest"},
		{"spec-drift", []string{a, drift}, "different campaign specs"},
		{"empty", nil, "no shard manifests"},
	}
	for _, c := range cases {
		m, spec, err := MergeShardManifests(c.paths, "merged")
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if spec.ShardCount != 0 || spec.ShardFirst != 0 {
			t.Errorf("%s: merged spec keeps shard range [%d, +%d)", c.name, spec.ShardFirst, spec.ShardCount)
		}
		if m.Jobs != 4 || len(m.Points) != 1 {
			t.Errorf("%s: jobs=%d points=%d, want 4 jobs 1 point", c.name, m.Jobs, len(m.Points))
		}
		d := m.Points[0].Metrics["moves"]
		if d.N != 4 {
			t.Errorf("%s: merged N = %d, want 4", c.name, d.N)
		}
	}
}

// TestMergeShardManifestsMedianHonesty: a true multi-shard merge cannot
// know the pooled median and must say so; the degenerate single-shard
// merge passes the exact median through untouched.
func TestMergeShardManifestsMedianHonesty(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a", shardSpec(0, 2, 4), 2, 3)
	b := writeManifest(t, dir, "b", shardSpec(2, 2, 4), 2, 5)
	m, _, err := MergeShardManifests([]string{a, b}, "merged")
	if err != nil {
		t.Fatal(err)
	}
	d := m.Points[0].Metrics["moves"]
	if !d.MedianApprox {
		t.Errorf("multi-shard merged median %+v must be marked approximate", d)
	}

	whole := writeManifest(t, dir, "whole", shardSpec(0, 4, 4), 4, 4)
	single, _, err := MergeShardManifests([]string{whole}, "merged1")
	if err != nil {
		t.Fatal(err)
	}
	if d := single.Points[0].Metrics["moves"]; d.MedianApprox || d.Median != 4 {
		t.Errorf("single-shard merge must keep the exact median: %+v", d)
	}
}
