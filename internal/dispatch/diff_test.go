package dispatch

import (
	"path/filepath"
	"strings"
	"testing"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
	"wsncover/internal/stats"
)

func saveManifest(t *testing.T, dir, name string, spec sim.CampaignSpec, points []experiment.Point) string {
	t.Helper()
	m, err := experiment.NewManifest(name, spec, 4, 0, points)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(dir); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, name+".json")
}

func onePoint(mean, median float64, approx bool) []experiment.Point {
	return []experiment.Point{{
		Group: "SR 8x8", X: 8,
		Metrics: map[string]stats.Description{
			"moves": {N: 4, Mean: mean, Min: 1, Max: 9, Median: median, MedianApprox: approx},
		},
	}}
}

func TestDiffManifests(t *testing.T) {
	dir := t.TempDir()
	spec := sim.CampaignSpec{
		Schemes: []sim.SchemeKind{sim.SR}, Grids: []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares: []int{8}, Replicates: 4, BaseSeed: 1,
	}.Normalized()
	shardSpec := spec
	shardSpec.ShardFirst, shardSpec.ShardCount, shardSpec.Workers = 0, 4, 8

	a := saveManifest(t, dir, "a", spec, onePoint(5, 4, false))
	// Same statistics modulo: float wobble on the mean, an estimated
	// median, and execution metadata in the spec.
	b := saveManifest(t, dir, "a2", shardSpec, onePoint(5+1e-13, 99, true))
	diffs, err := DiffManifests(a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Only the name differs (a vs a2): everything else is equivalent
	// under the contract.
	if len(diffs) != 1 || !strings.Contains(diffs[0], "name") {
		t.Errorf("diffs = %v, want only the name difference", diffs)
	}

	// A genuinely different mean is flagged.
	c := saveManifest(t, dir, "a", spec, onePoint(6, 4, false))
	diffs, err = DiffManifests(c, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diffs {
		found = found || strings.Contains(d, "mean")
	}
	if !found {
		t.Errorf("diffs = %v, want a mean difference", diffs)
	}

	// Exact-vs-exact medians do compare.
	d1 := saveManifest(t, dir, "m1", spec, onePoint(5, 4, false))
	d2 := saveManifest(t, dir, "m2", spec, onePoint(5, 3, false))
	diffs, err = DiffManifests(d1, d2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	foundMedian := false
	for _, d := range diffs {
		foundMedian = foundMedian || strings.Contains(d, "median")
	}
	if !foundMedian {
		t.Errorf("diffs = %v, want a median difference (both sides exact)", diffs)
	}

	if _, err := DiffManifests(filepath.Join(dir, "missing.json"), a, 1e-9); err == nil {
		t.Error("missing file should error")
	}
}
