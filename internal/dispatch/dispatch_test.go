package dispatch

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wsncover/internal/sim"
)

// fullSpec is the unsharded campaign the stub-worker fleets dispatch:
// one cell, four replicates, so two shards own two trials each.
func fullSpec() sim.CampaignSpec {
	return sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR},
		Grids:      []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares:     []int{8},
		Replicates: 4,
		BaseSeed:   1,
	}.Normalized()
}

// collector gathers fleet snapshots thread-safely.
type collector struct {
	mu    sync.Mutex
	snaps []FleetSnapshot
}

func (c *collector) add(s FleetSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps = append(c.snaps, s)
}

func (c *collector) all() []FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FleetSnapshot(nil), c.snaps...)
}

// TestRunStubFleet drives the whole orchestration loop with /bin/sh
// stand-ins for cmd/sweep: workers emit the JSON progress protocol and
// "produce" pre-written shard manifests, and the driver must fold the
// streams into fleet snapshots and auto-merge the manifests.
func TestRunStubFleet(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, "camp-shard1", shardSpec(0, 2, 4), 2, 3)
	writeManifest(t, dir, "camp-shard2", shardSpec(2, 2, 4), 2, 5)

	var col collector
	script := `printf '{"done":0,"total":2}\n{"done":2,"total":2,"group":"SR 8x8"}\n'`
	manifest, spec, err := Run(context.Background(), fullSpec(), Options{
		Shards:     2,
		Worker:     []string{"/bin/sh", "-c", script, "stub-shard{shard}"},
		OutDir:     dir,
		Name:       "camp",
		OnProgress: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 || len(manifest.Points) != 1 {
		t.Errorf("merged manifest jobs=%d points=%d", manifest.Jobs, len(manifest.Points))
	}
	d := manifest.Points[0].Metrics["moves"]
	if d.N != 4 || d.Mean != 4 || !d.MedianApprox {
		t.Errorf("merged cell = %+v, want N=4 mean=4 approx median", d)
	}
	if spec.ShardCount != 0 {
		t.Errorf("merged spec keeps a shard range: %+v", spec)
	}

	// The driver wrote each shard's spec file with its replicate block.
	for i, wantFirst := range []int{0, 2} {
		path := filepath.Join(dir, "camp-shard"+string(rune('1'+i))+".spec.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("shard spec file: %v", err)
		}
		var sh sim.CampaignSpec
		if err := sim.UnmarshalSpecJSON(data, &sh); err != nil {
			t.Fatal(err)
		}
		if sh.ShardFirst != wantFirst || sh.ShardCount != 2 {
			t.Errorf("shard %d spec range [%d, +%d), want [%d, +2)", i+1, sh.ShardFirst, sh.ShardCount, wantFirst)
		}
	}

	// Snapshots: the fleet total is 4 from the start (computed from the
	// spec, not worker reports), and some snapshot saw both shards done
	// with the full fleet complete.
	snaps := col.all()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	for _, s := range snaps {
		if s.Fleet.Total != 4 {
			t.Fatalf("snapshot fleet total = %d, want 4 throughout: %+v", s.Fleet.Total, s)
		}
	}
	last := snaps[len(snaps)-1]
	if !last.Terminal() || last.Fleet.Done != 4 {
		t.Errorf("final snapshot %+v, want terminal 4/4", last)
	}
	for _, sh := range last.Shards {
		if sh.State != ShardDone || sh.Progress.Done != 2 {
			t.Errorf("shard %d final status %+v, want done 2/2", sh.Shard, sh)
		}
	}
}

// TestRunRetriesFailedWorker: a worker that dies is relaunched with
// -resume and the fleet still converges; the worker's stderr reaches the
// driver's sink with a shard prefix.
func TestRunRetriesFailedWorker(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, "camp-shard1", shardSpec(0, 2, 4), 2, 3)
	writeManifest(t, dir, "camp-shard2", shardSpec(2, 2, 4), 2, 5)
	sent := filepath.Join(dir, "died-once")
	resumed := filepath.Join(dir, "saw-resume")

	// Shard 1 dies mid-run on its first attempt; its retry must carry
	// -resume. Shard 2 succeeds immediately.
	script := `
if [ "$1" = "1" ] && [ ! -e "` + sent + `" ]; then
  touch "` + sent + `"
  printf '{"done":1,"total":2}\n'
  echo "boom" >&2
  exit 1
fi
if [ "$1" = "1" ]; then
  case "$*" in *-resume*) touch "` + resumed + `" ;; esac
fi
printf '{"done":2,"total":2}\n'`
	var col collector
	var errBuf bytes.Buffer
	manifest, _, err := Run(context.Background(), fullSpec(), Options{
		Shards:     2,
		Worker:     []string{"/bin/sh", "-c", script, "stub", "{shard}"},
		OutDir:     dir,
		Name:       "camp",
		Retries:    2,
		Stderr:     &errBuf,
		OnProgress: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 {
		t.Errorf("merged jobs = %d", manifest.Jobs)
	}
	if _, err := os.Stat(resumed); err != nil {
		t.Error("retry attempt did not pass -resume to the worker")
	}
	if got := errBuf.String(); !strings.Contains(got, "shard 1: boom") {
		t.Errorf("driver stderr %q lacks the prefixed worker line", got)
	}
	sawRetry := false
	for _, s := range col.all() {
		for _, sh := range s.Shards {
			if sh.Shard == 1 && sh.Attempts == 2 {
				sawRetry = true
			}
			// The first attempt reported 1/2 before dying; the fleet
			// must never lose that trial's credit except on the retry's
			// own resync.
			if sh.Progress.Done > sh.Progress.Total {
				t.Errorf("shard %d over-counts: %+v", sh.Shard, sh.Progress)
			}
		}
	}
	if !sawRetry {
		t.Error("no snapshot observed shard 1 on attempt 2")
	}
}

// TestRunFailsAfterRetries: a shard that keeps dying fails the fleet
// with its own error and cancels the long-running sibling instead of
// waiting it out.
func TestRunFailsAfterRetries(t *testing.T) {
	dir := t.TempDir()
	script := `if [ "$1" = "1" ]; then echo "shard1 giving up" >&2; exit 3; fi; exec sleep 60`
	start := time.Now()
	_, _, err := Run(context.Background(), fullSpec(), Options{
		Shards:  2,
		Worker:  []string{"/bin/sh", "-c", script, "stub", "{shard}"},
		OutDir:  dir,
		Name:    "camp",
		Retries: -1,
		Stderr:  io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want shard 1 failure", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("fleet failure took %v; the sleeping sibling was not cancelled", elapsed)
	}
}

// TestRunCleanExitWithoutManifestIsFailure: exit status 0 with no
// manifest on disk is a worker bug (or a lost shared filesystem), not a
// success.
func TestRunCleanExitWithoutManifestIsFailure(t *testing.T) {
	dir := t.TempDir()
	writeManifest(t, dir, "camp-shard1", shardSpec(0, 2, 4), 2, 3)
	// Shard 2 never writes camp-shard2.json.
	_, _, err := Run(context.Background(), fullSpec(), Options{
		Shards:  2,
		Worker:  []string{"/bin/sh", "-c", "exit 0", "stub"},
		OutDir:  dir,
		Name:    "camp",
		Retries: -1,
	})
	if err == nil || !strings.Contains(err.Error(), "no manifest") {
		t.Fatalf("err = %v, want no-manifest failure", err)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, _, err := Run(context.Background(), fullSpec(), Options{Shards: 0}); err == nil {
		t.Error("zero shards should fail")
	}
	if _, _, err := Run(context.Background(), fullSpec(), Options{Shards: 99, OutDir: t.TempDir()}); err == nil {
		t.Error("more shards than replicates should fail")
	}
	pinned := fullSpec()
	pinned.ShardFirst, pinned.ShardCount = 0, 2
	if _, _, err := Run(context.Background(), pinned, Options{Shards: 2, OutDir: t.TempDir()}); err == nil {
		t.Error("dispatching an already sharded spec should fail")
	}
}

func TestExpandWorkerAndArgs(t *testing.T) {
	got := expandWorker([]string{"ssh", "box{shard}", "--", "sweep"}, 3)
	want := []string{"ssh", "box3", "--", "sweep"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("expandWorker = %v, want %v", got, want)
		}
	}
	args := workerArgs("s.json", "out", "camp-shard2", false)
	joined := strings.Join(args, " ")
	for _, want := range []string{"-spec s.json", "-name camp-shard2", "-progress json", "-checkpoint", "-metrics "} {
		if !strings.Contains(joined, want) {
			t.Errorf("workerArgs %q lacks %q", joined, want)
		}
	}
	if strings.Contains(joined, "-resume") {
		t.Errorf("first attempt %q must not resume", joined)
	}
	if r := strings.Join(workerArgs("s.json", "out", "n", true), " "); !strings.Contains(r, "-resume") {
		t.Errorf("retry args %q lack -resume", r)
	}
}

func TestLineWriter(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lw := &lineWriter{mu: &mu, w: &buf, prefix: "shard 7: "}
	lw.Write([]byte("partial"))
	if buf.Len() != 0 {
		t.Errorf("incomplete line flushed early: %q", buf.String())
	}
	lw.Write([]byte(" line\nsecond\n"))
	want := "shard 7: partial line\nshard 7: second\n"
	if buf.String() != want {
		t.Errorf("lineWriter output %q, want %q", buf.String(), want)
	}
}
