package dispatch

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wsncover/internal/sim"
)

// fullSpec is the unsharded campaign the stub-worker fleets dispatch:
// one cell, four replicates, so with Blocks=2 each shard owns two
// trials.
func fullSpec() sim.CampaignSpec {
	return sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR},
		Grids:      []sim.GridSize{{Cols: 8, Rows: 8}},
		Spares:     []int{8},
		Replicates: 4,
		BaseSeed:   1,
	}.Normalized()
}

// collector gathers fleet snapshots thread-safely.
type collector struct {
	mu    sync.Mutex
	snaps []FleetSnapshot
}

func (c *collector) add(s FleetSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps = append(c.snaps, s)
}

func (c *collector) all() []FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FleetSnapshot(nil), c.snaps...)
}

// stubWorker builds a /bin/sh stand-in for cmd/sweep. The driver
// appends the standard worker args, so inside the script $2 is the spec
// path, $4 the -out directory, and $6 the shard artifact name
// (camp-b1, camp-b2, ...) — behavior keys on $6 because which slot runs
// which shard is the queue's business, not the test's.
func stubWorker(script string) []string {
	return []string{"/bin/sh", "-c", script, "stub"}
}

// premade writes the two shard manifests a stub fleet "computes" and
// returns the directory: scripts deliver by copying premade/$6.json
// into their requested -out.
func premade(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeManifest(t, dir, "camp-b1", shardSpec(0, 2, 4), 2, 3)
	writeManifest(t, dir, "camp-b2", shardSpec(2, 2, 4), 2, 5)
	return dir
}

// TestRunStubFleet drives the whole orchestration loop with /bin/sh
// stand-ins for cmd/sweep: workers emit the JSON progress protocol and
// deliver pre-computed shard manifests, and the driver must fold the
// streams into fleet snapshots and auto-merge the manifests.
func TestRunStubFleet(t *testing.T) {
	dir := t.TempDir()
	pre := premade(t)
	script := `printf '{"done":0,"total":2}\n{"done":2,"total":2,"group":"SR 8x8"}\n'
cp "` + pre + `/$6.json" "$4/$6.json"`
	var col collector
	manifest, spec, err := Run(context.Background(), fullSpec(), Options{
		Slots:      2,
		Blocks:     2,
		Worker:     stubWorker(script),
		OutDir:     dir,
		Name:       "camp",
		OnProgress: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 || len(manifest.Points) != 1 {
		t.Errorf("merged manifest jobs=%d points=%d", manifest.Jobs, len(manifest.Points))
	}
	d := manifest.Points[0].Metrics["moves"]
	if d.N != 4 || d.Mean != 4 || !d.MedianApprox {
		t.Errorf("merged cell = %+v, want N=4 mean=4 approx median", d)
	}
	if spec.ShardCount != 0 {
		t.Errorf("merged spec keeps a shard range: %+v", spec)
	}

	// The driver wrote each shard's spec file with its replicate block.
	for i, wantFirst := range []int{0, 2} {
		path := filepath.Join(dir, "camp-b"+string(rune('1'+i))+".spec.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("shard spec file: %v", err)
		}
		var sh sim.CampaignSpec
		if err := sim.UnmarshalSpecJSON(data, &sh); err != nil {
			t.Fatal(err)
		}
		if sh.ShardFirst != wantFirst || sh.ShardCount != 2 {
			t.Errorf("shard %d spec range [%d, +%d), want [%d, +2)", i+1, sh.ShardFirst, sh.ShardCount, wantFirst)
		}
	}

	// Snapshots: the fleet total is 4 from the start (computed from the
	// spec, not worker reports), and the final snapshot saw both shards
	// done with the full fleet complete.
	snaps := col.all()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	for _, s := range snaps {
		if s.Fleet.Total != 4 {
			t.Fatalf("snapshot fleet total = %d, want 4 throughout: %+v", s.Fleet.Total, s)
		}
		if s.Slots != 2 {
			t.Fatalf("snapshot slots = %d, want 2", s.Slots)
		}
	}
	last := snaps[len(snaps)-1]
	if !last.Terminal() || last.Fleet.Done != 4 {
		t.Errorf("final snapshot %+v, want terminal 4/4", last)
	}
	for _, sh := range last.Shards {
		if sh.State != ShardDone || sh.Progress.Done != 2 {
			t.Errorf("shard %d final status %+v, want done 2/2", sh.Shard, sh)
		}
	}
}

// TestRunRetriesFailedWorker: a worker that dies is relaunched with
// -resume and the fleet still converges; the worker's stderr reaches the
// driver's sink with a shard prefix.
func TestRunRetriesFailedWorker(t *testing.T) {
	dir := t.TempDir()
	pre := premade(t)
	died := filepath.Join(dir, "died-once")
	resumed := filepath.Join(dir, "saw-resume")

	// Shard 1 dies mid-run on its first attempt; its retry must carry
	// -resume. Shard 2 succeeds immediately.
	script := `
if [ "$6" = "camp-b1" ] && [ ! -e "` + died + `" ]; then
  touch "` + died + `"
  printf '{"done":1,"total":2}\n'
  echo "boom" >&2
  exit 1
fi
if [ "$6" = "camp-b1" ]; then
  case "$*" in *-resume*) touch "` + resumed + `" ;; esac
fi
printf '{"done":2,"total":2}\n'
cp "` + pre + `/$6.json" "$4/$6.json"`
	var col collector
	var errBuf bytes.Buffer
	manifest, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:      2,
		Blocks:     2,
		Worker:     stubWorker(script),
		OutDir:     dir,
		Name:       "camp",
		Retries:    2,
		Stderr:     &errBuf,
		OnProgress: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 {
		t.Errorf("merged jobs = %d", manifest.Jobs)
	}
	if _, err := os.Stat(resumed); err != nil {
		t.Error("retry attempt did not pass -resume to the worker")
	}
	if got := errBuf.String(); !strings.Contains(got, "shard 1: boom") {
		t.Errorf("driver stderr %q lacks the prefixed worker line", got)
	}
	sawRetry := false
	for _, s := range col.all() {
		for _, sh := range s.Shards {
			if sh.Shard == 1 && sh.Attempts == 2 {
				sawRetry = true
			}
			if sh.Progress.Done > sh.Progress.Total {
				t.Errorf("shard %d over-counts: %+v", sh.Shard, sh.Progress)
			}
		}
	}
	if !sawRetry {
		t.Error("no snapshot observed shard 1 on attempt 2")
	}
}

// TestRunFailsAfterRetries: a shard that keeps dying fails the fleet
// with its own error and cancels the long-running sibling instead of
// waiting it out.
func TestRunFailsAfterRetries(t *testing.T) {
	dir := t.TempDir()
	script := `if [ "$6" = "camp-b1" ]; then echo "shard1 giving up" >&2; exit 3; fi
printf '{"done":0,"total":2}\n'
exec sleep 60`
	start := time.Now()
	_, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:   2,
		Blocks:  2,
		Worker:  stubWorker(script),
		OutDir:  dir,
		Name:    "camp",
		Retries: -1,
		Stderr:  io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want shard 1 failure", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("fleet failure took %v; the sleeping sibling was not cancelled", elapsed)
	}
}

// TestRunCleanExitWithoutManifestIsFailure: exit status 0 with no
// manifest on disk is a worker bug (or a lost shared filesystem), not a
// success.
func TestRunCleanExitWithoutManifestIsFailure(t *testing.T) {
	dir := t.TempDir()
	// Shard 1's manifest "appears" (pre-written); shard 2's never does.
	writeManifest(t, dir, "camp-b1", shardSpec(0, 2, 4), 2, 3)
	_, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:   2,
		Blocks:  2,
		Worker:  stubWorker("exit 0"),
		OutDir:  dir,
		Name:    "camp",
		Retries: -1,
		Stderr:  io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "no manifest") {
		t.Fatalf("err = %v, want no-manifest failure", err)
	}
}

// TestRunRejectsIncompleteManifest: a clean exit that leaves a partial
// manifest (a checkpoint posing as a result) must not count as done —
// the driver validates the job count and requeues.
func TestRunRejectsIncompleteManifest(t *testing.T) {
	dir := t.TempDir()
	// Jobs=1 of 2: a checkpoint, not a complete shard.
	writeManifest(t, dir, "camp-b1", shardSpec(0, 2, 4), 1, 3)
	writeManifest(t, dir, "camp-b2", shardSpec(2, 2, 4), 2, 5)
	_, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:   1,
		Blocks:  2,
		Worker:  stubWorker("exit 0"),
		OutDir:  dir,
		Name:    "camp",
		Retries: -1,
		Stderr:  io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("err = %v, want incomplete-manifest failure", err)
	}
	// The invalid manifest was cleared so a -resume retry cannot choke.
	if _, statErr := os.Stat(filepath.Join(dir, "camp-b1.json")); !os.IsNotExist(statErr) {
		t.Errorf("incomplete manifest left in place: %v", statErr)
	}
}

// TestRunHungWorkerReissued: a worker that stops heartbeating is killed
// by the lease watchdog and its shard re-issued promptly — the campaign
// converges instead of waiting forever, well inside the 2× lease budget
// (plus process-churn slack).
func TestRunHungWorkerReissued(t *testing.T) {
	dir := t.TempDir()
	pre := t.TempDir()
	writeManifest(t, pre, "camp-b1", shardSpec(0, 4, 4), 4, 3)
	hung := filepath.Join(dir, "hung-once")
	script := `
if [ ! -e "` + hung + `" ]; then
  touch "` + hung + `"
  printf '{"done":0,"total":4}\n'
  exec sleep 60
fi
printf '{"done":4,"total":4}\n'
cp "` + pre + `/$6.json" "$4/$6.json"`
	var col collector
	lease := 400 * time.Millisecond
	start := time.Now()
	manifest, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:        1,
		Blocks:       1,
		Worker:       stubWorker(script),
		OutDir:       dir,
		Name:         "camp",
		LeaseTimeout: lease,
		Retries:      2,
		Stderr:       io.Discard,
		OnProgress:   col.add,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 {
		t.Errorf("merged jobs = %d", manifest.Jobs)
	}
	if elapsed > 10*time.Second {
		t.Errorf("hung worker took %v to recover; lease watchdog asleep?", elapsed)
	}
	sawRetry := false
	for _, s := range col.all() {
		if len(s.Shards) > 0 && s.Shards[0].Attempts >= 2 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("no snapshot observed the re-issued attempt")
	}
}

// TestRunStealsStraggler: with the queue drained, an idle slot races a
// speculative duplicate against the straggling shard; the duplicate
// wins, the straggler is killed, and the stolen manifest is promoted to
// the canonical path.
func TestRunStealsStraggler(t *testing.T) {
	dir := t.TempDir()
	pre := premade(t)
	straggling := filepath.Join(dir, "straggler-claimed")
	script := `
if [ "$6" = "camp-b2" ] && [ ! -e "` + straggling + `" ]; then
  touch "` + straggling + `"
  printf '{"done":0,"total":2}\n'
  exec sleep 60
fi
printf '{"done":2,"total":2}\n'
cp "` + pre + `/$6.json" "$4/$6.json"`
	var col collector
	manifest, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:      2,
		Blocks:     2,
		Worker:     stubWorker(script),
		OutDir:     dir,
		Name:       "camp",
		StealAfter: time.Millisecond,
		Stderr:     io.Discard,
		OnProgress: col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 {
		t.Errorf("merged jobs = %d", manifest.Jobs)
	}
	if _, err := os.Stat(filepath.Join(dir, "camp-b2.json")); err != nil {
		t.Errorf("stolen shard manifest was not promoted to its canonical path: %v", err)
	}
	sawRace := false
	for _, s := range col.all() {
		for _, sh := range s.Shards {
			if sh.Leases == 2 {
				sawRace = true
			}
		}
	}
	if !sawRace {
		t.Error("no snapshot observed a speculative duplicate racing the straggler")
	}
	// Spare directories are cleaned up after promotion.
	entries, _ := filepath.Glob(filepath.Join(dir, ".spare-*"))
	if len(entries) != 0 {
		t.Errorf("spare directories left behind: %v", entries)
	}
}

// TestRunSlotRetirement: a slot that keeps failing retires and the
// surviving slot finishes the whole queue — a dead box degrades the
// fleet, it does not fail the campaign.
func TestRunSlotRetirement(t *testing.T) {
	dir := t.TempDir()
	pre := premade(t)
	// Slot 2 is a dead box: every attempt exits 1 instantly. Slot 1 is
	// healthy. The campaign must converge on slot 1 alone.
	script := `
if [ "$0" = "slot2" ]; then echo "dead box" >&2; exit 1; fi
printf '{"done":2,"total":2}\n'
cp "` + pre + `/$6.json" "$4/$6.json"`
	var col collector
	manifest, _, err := Run(context.Background(), fullSpec(), Options{
		Fleet: [][]string{
			{"/bin/sh", "-c", script, "slot1"},
			{"/bin/sh", "-c", script, "slot2"},
		},
		Blocks:       2,
		OutDir:       dir,
		Name:         "camp",
		Retries:      20, // the shard budget must survive the dead box's failures
		SlotFailures: 2,
		Stderr:       io.Discard,
		OnProgress:   col.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Jobs != 4 {
		t.Errorf("merged jobs = %d", manifest.Jobs)
	}
	retired := false
	for _, s := range col.all() {
		if s.Retired == 1 {
			retired = true
		}
	}
	if !retired {
		t.Error("no snapshot observed the dead slot's retirement")
	}
}

// TestRunAllSlotsRetiredFailsLoudly: when every slot is a dead box the
// campaign fails with the fleet-exhausted diagnosis rather than hanging.
func TestRunAllSlotsRetiredFailsLoudly(t *testing.T) {
	_, _, err := Run(context.Background(), fullSpec(), Options{
		Slots:        2,
		Blocks:       2,
		Worker:       stubWorker("exit 1"),
		OutDir:       t.TempDir(),
		Name:         "camp",
		Retries:      50,
		SlotFailures: 2,
		Stderr:       io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "fleet exhausted") {
		t.Fatalf("err = %v, want fleet-exhausted failure", err)
	}
}

// TestRunDrainsOnCancel: cancelling the context mid-campaign kills the
// workers and returns the abort error instead of hanging or reporting a
// phantom worker failure.
func TestRunDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := Run(ctx, fullSpec(), Options{
		Slots:  2,
		Blocks: 2,
		Worker: stubWorker(`printf '{"done":0,"total":2}\n'; exec sleep 60`),
		OutDir: t.TempDir(),
		Name:   "camp",
		Stderr: io.Discard,
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("err = %v, want campaign-aborted", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("drain took %v", elapsed)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	if _, _, err := Run(context.Background(), fullSpec(), Options{Slots: 0}); err == nil {
		t.Error("zero slots should fail")
	}
	pinned := fullSpec()
	pinned.ShardFirst, pinned.ShardCount = 0, 2
	if _, _, err := Run(context.Background(), pinned, Options{Slots: 2, OutDir: t.TempDir()}); err == nil {
		t.Error("dispatching an already sharded spec should fail")
	}
}

func TestExpandWorkerAndArgs(t *testing.T) {
	got := expandWorker([]string{"ssh", "box{slot}", "--", "sweep{shard}"}, 3)
	want := []string{"ssh", "box3", "--", "sweep3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("expandWorker = %v, want %v", got, want)
		}
	}
	args := workerArgs("s.json", "out", "camp-b2", false)
	joined := strings.Join(args, " ")
	for _, want := range []string{"-spec s.json", "-name camp-b2", "-progress json", "-checkpoint", "-metrics "} {
		if !strings.Contains(joined, want) {
			t.Errorf("workerArgs %q lacks %q", joined, want)
		}
	}
	if strings.Contains(joined, "-resume") {
		t.Errorf("first attempt %q must not resume", joined)
	}
	if r := strings.Join(workerArgs("s.json", "out", "n", true), " "); !strings.Contains(r, "-resume") {
		t.Errorf("retry args %q lack -resume", r)
	}
}

func TestLineWriter(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lw := &lineWriter{mu: &mu, w: &buf, prefix: "shard 7: "}
	lw.Write([]byte("partial"))
	if buf.Len() != 0 {
		t.Errorf("incomplete line flushed early: %q", buf.String())
	}
	lw.Write([]byte(" line\nsecond\n"))
	want := "shard 7: partial line\nshard 7: second\n"
	if buf.String() != want {
		t.Errorf("lineWriter output %q, want %q", buf.String(), want)
	}
}
