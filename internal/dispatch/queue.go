package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// errLeaseExpired marks an attempt killed by the heartbeat watchdog: the
// worker produced no valid progress event within the lease deadline.
var errLeaseExpired = errors.New("lease expired: no progress heartbeat within the deadline")

// errShardExhausted marks a shard whose relaunch budget ran out.
var errShardExhausted = errors.New("shard out of retries")

// attempt is one worker launch against one shard — the unit the lease
// table tracks. A shard normally has one live attempt; an idle slot may
// open a second, speculative one against a straggler (work stealing),
// and the first attempt to complete wins. Fields below the comment are
// guarded by the owning queue's mutex.
type attempt struct {
	id          int
	shard       int // 0-based queue index
	slot        int // 1-based slot that holds the lease
	speculative bool
	// manifest is where this attempt's worker writes its manifest; the
	// driver fills it in (speculative attempts write into a spare
	// directory so they cannot clobber the primary's checkpoint).
	manifest string

	started  time.Time
	lastBeat time.Time
	deadline time.Time
	cancel   context.CancelFunc
	expired  bool
}

// finishOutcome is what the queue decided about a finished attempt.
type finishOutcome int

const (
	// finishRequeued: the attempt failed; the shard went back to pending
	// behind its backoff gate.
	finishRequeued finishOutcome = iota
	// finishFatal: the shard burned its whole relaunch budget; it is
	// terminally failed and the campaign cannot complete.
	finishFatal
	// finishDiscarded: a sibling attempt already completed the shard;
	// this one was a duplicate and its failure is irrelevant.
	finishDiscarded
	// finishReleased: a cancellation echo (fleet shutting down); the
	// shard returns to pending without burning budget or backoff.
	finishReleased
	// finishShadowed: this attempt failed but another live attempt is
	// still running the shard, so nothing was requeued.
	finishShadowed
)

// shardEntry is the queue's record of one shard (one replicate block).
type shardEntry struct {
	state     ShardState
	attempts  int // worker launches, steals included
	fails     int // failed launches (burns the relaunch budget)
	notBefore time.Time
	live      []*attempt
	winner    string // manifest path of the completed attempt
	err       error
}

// shardQueue is the replicate-granular work queue at the heart of the
// elastic scheduler: shards (replicate blocks) move pending → running →
// done/failed, slots lease them one attempt at a time, heartbeats
// (valid progress events) renew leases, the watchdog expires silent
// ones, and idle slots open speculative duplicates of stragglers.
// Determinism makes the duplication safe: every attempt at a shard
// computes byte-identical results, so the first completion wins and the
// rest are discarded.
type shardQueue struct {
	lease       time.Duration // heartbeat deadline per attempt
	stealAfter  time.Duration // attempt age before a straggler may be duplicated; <0 disables
	retries     int           // relaunches allowed per shard after failures
	backoffBase time.Duration
	backoffMax  time.Duration
	now         func() time.Time

	mu     sync.Mutex
	shards []shardEntry
	nextID int
}

func newShardQueue(n int, lease, stealAfter time.Duration, retries int, now func() time.Time) *shardQueue {
	if now == nil {
		now = time.Now
	}
	return &shardQueue{
		lease:       lease,
		stealAfter:  stealAfter,
		retries:     retries,
		backoffBase: 200 * time.Millisecond,
		backoffMax:  10 * time.Second,
		now:         now,
		shards:      make([]shardEntry, n),
	}
}

// backoff is the requeue delay after the n-th failure of a shard: the
// first failure requeues immediately (a crashed box should not stall
// the campaign), later ones back off exponentially with jitter in
// [0.5, 1.5) so a fleet of failing workers does not relaunch in
// lockstep.
func (q *shardQueue) backoff(fails int) time.Duration {
	if fails <= 1 {
		return 0
	}
	d := q.backoffBase << (fails - 2)
	if d > q.backoffMax || d <= 0 {
		d = q.backoffMax
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// next hands slot its next attempt: the lowest pending shard whose
// backoff gate has passed, else a speculative duplicate of the stalest
// eligible straggler. A nil attempt with wait > 0 means "ask again in
// wait"; nil with wait == 0 means the queue is terminal (every shard
// done or failed) and the slot can retire.
func (q *shardQueue) next(slot int) (*attempt, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	const poll = 100 * time.Millisecond
	wait := time.Duration(0)
	terminal := true
	for i := range q.shards {
		e := &q.shards[i]
		switch e.state {
		case ShardDone, ShardFailed:
			continue
		case ShardPending:
			terminal = false
			if d := e.notBefore.Sub(now); d > 0 {
				if wait == 0 || d < wait {
					wait = d
				}
				continue
			}
			return q.lendLocked(i, slot, false), 0
		case ShardRunning:
			terminal = false
		}
	}
	// Nothing pending: look for a straggler to duplicate. Eligible means
	// exactly one live attempt (duplication is capped at two) that has
	// been running at least stealAfter; the stalest heartbeat goes first.
	if q.stealAfter >= 0 {
		best, bestBeat := -1, time.Time{}
		for i := range q.shards {
			e := &q.shards[i]
			if e.state != ShardRunning || len(e.live) != 1 {
				continue
			}
			a := e.live[0]
			if age := now.Sub(a.started); age < q.stealAfter {
				if d := q.stealAfter - age; wait == 0 || d < wait {
					wait = d
				}
				continue
			}
			beat := a.lastBeat
			if beat.IsZero() {
				beat = a.started
			}
			if best < 0 || beat.Before(bestBeat) {
				best, bestBeat = i, beat
			}
		}
		if best >= 0 {
			return q.lendLocked(best, slot, true), 0
		}
	}
	if terminal {
		return nil, 0
	}
	if wait <= 0 || wait > poll {
		wait = poll
	}
	return nil, wait
}

// lendLocked opens a new attempt on shard i for slot.
func (q *shardQueue) lendLocked(i, slot int, speculative bool) *attempt {
	q.nextID++
	now := q.now()
	a := &attempt{
		id:          q.nextID,
		shard:       i,
		slot:        slot,
		speculative: speculative,
		started:     now,
		deadline:    now.Add(q.lease),
	}
	e := &q.shards[i]
	e.state = ShardRunning
	e.attempts++
	e.live = append(e.live, a)
	return a
}

// bind attaches the kill switch for the attempt's worker process, so
// the watchdog can enforce an expired lease.
func (q *shardQueue) bind(a *attempt, cancel context.CancelFunc) {
	q.mu.Lock()
	defer q.mu.Unlock()
	a.cancel = cancel
	if a.expired {
		// The watchdog fired between launch and bind; enforce it now.
		cancel()
	}
}

// beat renews the attempt's lease. Only valid progress events beat —
// malformed lines and chatter never reach here, so a worker emitting
// garbage burns its deadline.
func (q *shardQueue) beat(a *attempt) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	a.lastBeat = now
	a.deadline = now.Add(q.lease)
}

// expireStale kills every live attempt whose lease deadline has passed
// and returns them (for logging). The shard is NOT requeued here: the
// slot's supervision loop observes the killed process, reaps it, and
// calls finish — requeueing only after the worker is dead, so a zombie
// cannot corrupt its successor's checkpoint.
func (q *shardQueue) expireStale() []*attempt {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	var stale []*attempt
	for i := range q.shards {
		for _, a := range q.shards[i].live {
			if a.expired || now.Before(a.deadline) {
				continue
			}
			a.expired = true
			if a.cancel != nil {
				a.cancel()
			}
			stale = append(stale, a)
		}
	}
	return stale
}

// isExpired reports whether the watchdog expired the attempt's lease
// (safe against the watchdog's concurrent write).
func (q *shardQueue) isExpired(a *attempt) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return a.expired
}

// complete records a finished, validated manifest for the attempt's
// shard. The first completion wins: it installs the winner manifest and
// kills any sibling attempt. A later completion returns won=false with
// the winner's path so the caller can byte-compare the duplicate before
// discarding it — under deterministic seeding the two must be
// identical, and a mismatch is a reproducibility bug worth shouting
// about.
func (q *shardQueue) complete(a *attempt) (won bool, winner string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := &q.shards[a.shard]
	q.dropLocked(e, a)
	if e.state == ShardDone {
		return false, e.winner
	}
	e.state = ShardDone
	e.winner = a.manifest
	e.err = nil
	for _, sib := range e.live {
		if sib.cancel != nil {
			sib.cancel()
		}
	}
	return true, a.manifest
}

// finish retires a failed attempt and decides the shard's fate; err is
// the worker error (used only for the terminal record). Cancellation
// echoes — the fleet shutting down, or a sibling's win killing this
// attempt — never burn the relaunch budget.
func (q *shardQueue) finish(a *attempt, err error) finishOutcome {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := &q.shards[a.shard]
	q.dropLocked(e, a)
	if e.state == ShardDone {
		return finishDiscarded
	}
	if !a.expired && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Shut-down echo: requeue without penalty (nobody will take it if
		// the campaign is over; a Resume rerun will).
		if len(e.live) == 0 {
			e.state = ShardPending
		}
		return finishReleased
	}
	e.fails++
	if len(e.live) > 0 {
		return finishShadowed
	}
	if e.fails > q.retries {
		e.state = ShardFailed
		e.err = fmt.Errorf("%w (%d attempts): %v", errShardExhausted, e.attempts, err)
		return finishFatal
	}
	e.state = ShardPending
	e.notBefore = q.now().Add(q.backoff(e.fails))
	return finishRequeued
}

func (q *shardQueue) dropLocked(e *shardEntry, a *attempt) {
	for i, sib := range e.live {
		if sib == a {
			e.live = append(e.live[:i], e.live[i+1:]...)
			return
		}
	}
}

// LeaseView is the observable lease state of one shard, exported into
// fleet snapshots for the meter, dashboard, and telemetry.
type LeaseView struct {
	State    ShardState
	Attempts int // worker launches, steals included
	Fails    int
	Live     int // running attempts (2 = a steal is in flight)
	Slot     int // slot of the most recent live attempt, 0 when idle
	// LastBeat is the freshest heartbeat over the live attempts (zero
	// until the first valid progress event of the current leases).
	LastBeat time.Time
	Err      error
	Winner   string
}

// view snapshots shard i's lease state.
func (q *shardQueue) view(i int) LeaseView {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := &q.shards[i]
	v := LeaseView{
		State:    e.state,
		Attempts: e.attempts,
		Fails:    e.fails,
		Live:     len(e.live),
		Err:      e.err,
		Winner:   e.winner,
	}
	for _, a := range e.live {
		v.Slot = a.slot
		if a.lastBeat.After(v.LastBeat) {
			v.LastBeat = a.lastBeat
		}
	}
	return v
}

// terminal reports whether every shard is done or failed.
func (q *shardQueue) terminal() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.shards {
		if s := q.shards[i].state; s != ShardDone && s != ShardFailed {
			return false
		}
	}
	return true
}

// failures collects the terminal shard errors, in shard order.
func (q *shardQueue) failures() []error {
	q.mu.Lock()
	defer q.mu.Unlock()
	var errs []error
	for i := range q.shards {
		if q.shards[i].state == ShardFailed {
			errs = append(errs, fmt.Errorf("shard %d: %w", i+1, q.shards[i].err))
		}
	}
	return errs
}

// winners returns each shard's winning manifest path, or an error if
// any shard is not done.
func (q *shardQueue) winners() ([]string, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, len(q.shards))
	for i := range q.shards {
		if q.shards[i].state != ShardDone {
			return nil, fmt.Errorf("shard %d is %s, not done", i+1, q.shards[i].state)
		}
		out[i] = q.shards[i].winner
	}
	return out, nil
}
