package dispatch

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

// LoadManifest reads a manifest and its spec with execution metadata
// cleared — worker counts, fresh-build and shard-range fields change
// wall clock, never results, so the merge contract ignores them.
func LoadManifest(path string) (experiment.Manifest, sim.CampaignSpec, error) {
	var m experiment.Manifest
	var spec sim.CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return m, spec, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, spec, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Spec) > 0 {
		if err := json.Unmarshal(m.Spec, &spec); err != nil {
			return m, spec, fmt.Errorf("%s: unreadable spec: %w", path, err)
		}
	}
	spec.Workers, spec.FreshBuild = 0, false
	spec.ShardFirst, spec.ShardCount = 0, 0
	return m, spec, nil
}

// DiffManifests compares two campaign manifests under the shard merge
// contract and returns a human-readable list of violations (empty means
// equivalent). Structural fields — name, job counts, point identities,
// metric names, and the exactly-merged statistics (N, min, max) — must
// match byte-for-byte. Mean, standard deviation, and CI95 must agree
// within the relative tolerance tol: the pooled-variance merge
// reassociates floating-point sums, so the last bits legitimately
// wobble. Medians are compared only when both sides are exact; a median
// marked median_approx is an estimate and is skipped.
//
// cmd/manifestdiff is the command-line face of this contract;
// cmd/runlog diff applies it to the manifests of two ledger records.
func DiffManifests(pathA, pathB string, tol float64) ([]string, error) {
	a, specA, err := LoadManifest(pathA)
	if err != nil {
		return nil, err
	}
	b, specB, err := LoadManifest(pathB)
	if err != nil {
		return nil, err
	}
	var diffs []string
	add := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }

	sa, _ := json.Marshal(specA)
	sb, _ := json.Marshal(specB)
	if string(sa) != string(sb) {
		add("spec: %s vs %s", sa, sb)
	}
	if a.Name != b.Name {
		add("name: %q vs %q", a.Name, b.Name)
	}
	if a.Jobs != b.Jobs {
		add("jobs: %d vs %d", a.Jobs, b.Jobs)
	}
	if len(a.Points) != len(b.Points) {
		add("points: %d vs %d", len(a.Points), len(b.Points))
		return diffs, nil
	}
	close := func(x, y float64) bool { return math.Abs(x-y) <= tol*(1+math.Abs(y)) }
	for i, pb := range b.Points {
		pa := a.Points[i]
		cell := fmt.Sprintf("(%s, %g)", pb.Group, pb.X)
		if pa.Group != pb.Group || pa.X != pb.X {
			add("point %d: (%s, %g) vs %s", i, pa.Group, pa.X, cell)
			continue
		}
		if len(pa.Metrics) != len(pb.Metrics) {
			add("%s: %d metrics vs %d", cell, len(pa.Metrics), len(pb.Metrics))
			continue
		}
		for name, db := range pb.Metrics {
			da, ok := pa.Metrics[name]
			if !ok {
				add("%s: metric %q missing", cell, name)
				continue
			}
			if da.N != db.N {
				add("%s/%s: N %d vs %d", cell, name, da.N, db.N)
			}
			if da.Min != db.Min || da.Max != db.Max {
				add("%s/%s: min/max (%g, %g) vs (%g, %g)", cell, name, da.Min, da.Max, db.Min, db.Max)
			}
			if !close(da.Mean, db.Mean) {
				add("%s/%s: mean %g vs %g", cell, name, da.Mean, db.Mean)
			}
			if !close(da.StdDev, db.StdDev) {
				add("%s/%s: stddev %g vs %g", cell, name, da.StdDev, db.StdDev)
			}
			if !close(da.CI95, db.CI95) {
				add("%s/%s: ci95 %g vs %g", cell, name, da.CI95, db.CI95)
			}
			// Medians compare only exact-to-exact; an estimate carries
			// its own health warning instead.
			if !da.MedianApprox && !db.MedianApprox && !close(da.Median, db.Median) {
				add("%s/%s: median %g vs %g", cell, name, da.Median, db.Median)
			}
		}
	}
	return diffs, nil
}
