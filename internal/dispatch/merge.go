package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"wsncover/internal/experiment"
	"wsncover/internal/sim"
)

// MergeShardManifests stitches shard manifests (same spec, disjoint
// replicate ranges produced with -shard or a dispatched fleet) into one
// campaign manifest named name. Overlapping or gapped ranges, diverging
// specs, asymmetric point sets, and the same shard passed twice all fail
// loudly — a silent bad merge would corrupt the paired-seed methodology
// the campaign layer guarantees. The degenerate single-shard merge (one
// manifest covering the whole replicate range, e.g. -shard 1/1) is
// valid and simply strips the shard range; its statistics pass through
// untouched, so medians stay exact. Merges of two or more shards combine
// per-cell statistics with stats.Description.Merge — exact for
// count/mean/min/max, pooled variance, and an estimated median marked
// median_approx in the output manifest.
//
// The returned manifest is not written to disk; callers persist it with
// Manifest.Save. The merged spec is returned alongside for callers that
// label artifacts with campaign parameters (table titles, replicate
// counts).
func MergeShardManifests(paths []string, name string) (*experiment.Manifest, sim.CampaignSpec, error) {
	var none sim.CampaignSpec
	if len(paths) == 0 {
		return nil, none, fmt.Errorf("no shard manifests to merge")
	}
	// The same file listed twice is always a mistake: the range check
	// below would flag it as an overlap, but the operator pasting one
	// path twice deserves the direct diagnosis.
	seenPath := make(map[string]string, len(paths))
	for _, path := range paths {
		abs, err := filepath.Abs(filepath.Clean(path))
		if err != nil {
			abs = filepath.Clean(path)
		}
		if prev, dup := seenPath[abs]; dup {
			return nil, none, fmt.Errorf("shard manifest %s passed twice (as %s and %s); "+
				"each shard merges exactly once", abs, prev, path)
		}
		seenPath[abs] = path
	}

	type shard struct {
		path     string
		spec     sim.CampaignSpec
		manifest experiment.Manifest
	}
	shards := make([]shard, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, none, err
		}
		var m experiment.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, none, fmt.Errorf("shard manifest %s: %w", path, err)
		}
		var spec sim.CampaignSpec
		if err := json.Unmarshal(m.Spec, &spec); err != nil {
			return nil, none, fmt.Errorf("shard manifest %s: unreadable spec: %w", path, err)
		}
		spec = spec.Normalized()
		if spec.ShardCount == 0 {
			return nil, none, fmt.Errorf("%s is not a shard manifest (no shard range in its spec)", path)
		}
		if err := spec.Validate(); err != nil {
			return nil, none, fmt.Errorf("shard manifest %s: %w", path, err)
		}
		shards = append(shards, shard{path: path, spec: spec, manifest: m})
	}

	// All shards must be the same campaign apart from the shard range
	// (and execution metadata).
	common := func(s sim.CampaignSpec) ([]byte, error) {
		s.ShardFirst, s.ShardCount, s.Workers, s.FreshBuild = 0, 0, 0, false
		return json.Marshal(s)
	}
	ref, err := common(shards[0].spec)
	if err != nil {
		return nil, none, err
	}
	for _, sh := range shards[1:] {
		got, err := common(sh.spec)
		if err != nil {
			return nil, none, err
		}
		if string(got) != string(ref) {
			return nil, none, fmt.Errorf("%s and %s were produced by different campaign specs; "+
				"shards must share everything but the shard range", shards[0].path, sh.path)
		}
	}

	// Two distinct files covering the same replicate range are the same
	// shard run twice (rerun under a different -name, a copied manifest):
	// merging both would double-count every trial of the range.
	byRange := make(map[int]string, len(shards))
	for _, sh := range shards {
		if prev, dup := byRange[sh.spec.ShardFirst]; dup {
			return nil, none, fmt.Errorf("%s and %s cover the same shard (replicates [%d, %d)); "+
				"the same shard manifest was passed twice", prev, sh.path,
				sh.spec.ShardFirst, sh.spec.ShardFirst+sh.spec.ShardCount)
		}
		byRange[sh.spec.ShardFirst] = sh.path
	}

	// The ranges must tile [0, Replicates) exactly: merge in replicate
	// order, rejecting overlap, gaps, and missing shards.
	sort.Slice(shards, func(i, j int) bool { return shards[i].spec.ShardFirst < shards[j].spec.ShardFirst })
	next := 0
	pointSets := make([][]experiment.Point, 0, len(shards))
	jobs := 0
	for _, sh := range shards {
		switch {
		case sh.spec.ShardFirst > next:
			return nil, none, fmt.Errorf("replicates [%d, %d) missing: no shard covers them", next, sh.spec.ShardFirst)
		case sh.spec.ShardFirst < next:
			return nil, none, fmt.Errorf("%s overlaps the preceding shard at replicate %d", sh.path, sh.spec.ShardFirst)
		}
		next += sh.spec.ShardCount
		pointSets = append(pointSets, sh.manifest.Points)
		jobs += sh.manifest.Jobs
	}
	if next != shards[0].spec.Replicates {
		return nil, none, fmt.Errorf("replicates [%d, %d) missing: no shard covers them", next, shards[0].spec.Replicates)
	}

	points, err := experiment.MergeShardPoints(pointSets...)
	if err != nil {
		return nil, none, err
	}
	mergedSpec := shards[0].spec
	mergedSpec.ShardFirst, mergedSpec.ShardCount, mergedSpec.Workers, mergedSpec.FreshBuild = 0, 0, 0, false
	manifest, err := experiment.NewManifest(name, mergedSpec, jobs, 0, points)
	if err != nil {
		return nil, none, err
	}
	return manifest, mergedSpec, nil
}
