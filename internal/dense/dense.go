// Package dense holds the tiny resize-and-clear helpers behind the
// pooled controllers' per-cell scratch tables: int32 columns (biased by
// one so the zero value means "none") and bitsets. Every helper reuses
// the backing array when it is large enough, so a trial arena's tables
// settle at the largest grid they have seen and subsequent trials cost
// one memclr instead of an allocation.
package dense

import "math/bits"

// Words returns the number of 64-bit words needed to hold n bits.
func Words(n int) int { return (n + 63) / 64 }

// Bits returns b resized to hold n bits, all cleared, reusing capacity.
func Bits(b []uint64, n int) []uint64 {
	w := Words(n)
	if cap(b) < w {
		return make([]uint64, w)
	}
	b = b[:w]
	clear(b)
	return b
}

// Set sets bit i.
func Set(b []uint64, i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func Clear(b []uint64, i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func Has(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func Count(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Int32s returns s resized to n elements, all zero, reusing capacity.
func Int32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}
