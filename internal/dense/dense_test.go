package dense

import "testing"

func TestBitsReuseAndClear(t *testing.T) {
	b := Bits(nil, 130)
	if len(b) != 3 {
		t.Fatalf("Words(130) gave %d words, want 3", len(b))
	}
	Set(b, 0)
	Set(b, 64)
	Set(b, 129)
	if Count(b) != 3 || !Has(b, 64) || Has(b, 65) {
		t.Fatalf("bit ops inconsistent: count=%d", Count(b))
	}
	Clear(b, 64)
	if Count(b) != 2 || Has(b, 64) {
		t.Fatalf("Clear left bit set")
	}
	old := &b[0]
	b = Bits(b, 100)
	if &b[0] != old {
		t.Error("shrinking resize reallocated")
	}
	if Count(b) != 0 {
		t.Errorf("resize left %d stale bits", Count(b))
	}
}

func TestInt32sReuseAndClear(t *testing.T) {
	s := Int32s(nil, 10)
	for i := range s {
		s[i] = int32(i + 1)
	}
	old := &s[0]
	s = Int32s(s, 8)
	if &s[0] != old {
		t.Error("shrinking resize reallocated")
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("element %d not cleared: %d", i, v)
		}
	}
	if len(Int32s(s, 100)) != 100 {
		t.Error("growing resize wrong length")
	}
}
