package metrics

import (
	"math"
	"testing"

	"wsncover/internal/grid"
)

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector()
	id := c.StartProcess(grid.C(2, 3), 5)
	if id != 0 {
		t.Errorf("first id = %d", id)
	}
	id2 := c.StartProcess(grid.C(1, 1), 6)
	if id2 != 1 {
		t.Errorf("second id = %d", id2)
	}

	c.RecordHop(id)
	c.RecordHop(id)
	c.RecordMove(id, 4.5)
	c.RecordMove(id, 5.5)
	c.RecordMessage()
	c.Finish(id, Converged, 9)

	p := c.Process(id)
	if p == nil {
		t.Fatal("Process returned nil")
	}
	if p.Hops != 2 || p.Moves != 2 || math.Abs(p.Distance-10) > 1e-12 {
		t.Errorf("record = %+v", p)
	}
	if p.Outcome != Converged || p.EndRound != 9 || p.StartRound != 5 {
		t.Errorf("record = %+v", p)
	}
	if p.Origin != grid.C(2, 3) {
		t.Errorf("origin = %v", p.Origin)
	}
}

func TestFinishIdempotent(t *testing.T) {
	c := NewCollector()
	id := c.StartProcess(grid.C(0, 0), 1)
	c.Finish(id, Converged, 3)
	c.Finish(id, Failed, 7) // must not overwrite
	if p := c.Process(id); p.Outcome != Converged || p.EndRound != 3 {
		t.Errorf("record = %+v", p)
	}
}

func TestUnknownProcessSafe(t *testing.T) {
	c := NewCollector()
	if c.Process(-1) != nil || c.Process(5) != nil {
		t.Error("unknown ids should yield nil")
	}
	// These must not panic.
	c.RecordHop(9)
	c.RecordMove(9, 1)
	c.Finish(9, Failed, 1)
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	a := c.StartProcess(grid.C(0, 0), 0)
	b := c.StartProcess(grid.C(1, 0), 0)
	d := c.StartProcess(grid.C(2, 0), 0)
	for i := 0; i < 3; i++ {
		c.RecordHop(a)
		c.RecordMove(a, 2)
	}
	c.RecordHop(b)
	c.RecordMove(b, 3)
	c.RecordMessage()
	c.RecordMessage()
	c.Finish(a, Converged, 4)
	c.Finish(b, Failed, 2)
	// d stays active.
	_ = d

	s := c.Summarize()
	if s.Initiated != 3 || s.Converged != 1 || s.Failed != 1 || s.Active != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Moves != 4 || math.Abs(s.Distance-9) > 1e-12 {
		t.Errorf("summary = %+v", s)
	}
	if s.Messages != 2 || s.MaxHops != 3 || s.Rounds != 4 {
		t.Errorf("summary = %+v", s)
	}
	want := 100.0 / 3
	if math.Abs(s.SuccessRate()-want) > 1e-9 {
		t.Errorf("SuccessRate = %v, want %v", s.SuccessRate(), want)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSuccessRateNoProcesses(t *testing.T) {
	var s Summary
	if s.SuccessRate() != 100 {
		t.Errorf("no processes needed should read 100%%, got %v", s.SuccessRate())
	}
}

func TestSummaryAdd(t *testing.T) {
	a := Summary{Initiated: 2, Converged: 1, Failed: 1, Moves: 5, Distance: 7, Messages: 3, MaxHops: 4, Rounds: 9}
	b := Summary{Initiated: 3, Converged: 3, Moves: 2, Distance: 1, Messages: 1, MaxHops: 6, Rounds: 2}
	s := a.Add(b)
	if s.Initiated != 5 || s.Converged != 4 || s.Failed != 1 {
		t.Errorf("sum = %+v", s)
	}
	if s.Moves != 7 || s.Distance != 8 || s.Messages != 4 {
		t.Errorf("sum = %+v", s)
	}
	if s.MaxHops != 6 || s.Rounds != 9 {
		t.Errorf("sum = %+v", s)
	}
}

func TestProcessesCopy(t *testing.T) {
	c := NewCollector()
	c.StartProcess(grid.C(0, 0), 0)
	procs := c.Processes()
	procs[0].Moves = 99
	if c.Process(0).Moves == 99 {
		t.Error("Processes must return a copy")
	}
}

func TestOutcomeString(t *testing.T) {
	if Active.String() != "active" || Converged.String() != "converged" || Failed.String() != "failed" {
		t.Error("Outcome strings")
	}
	if Outcome(9).String() == "" {
		t.Error("invalid outcome should render")
	}
}
