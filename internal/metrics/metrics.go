// Package metrics tracks the cost measures the paper evaluates: the
// number of replacement processes initiated, their success rate, the
// number of node movements, and the total moving distance.
package metrics

import (
	"fmt"

	"wsncover/internal/grid"
)

// Outcome is the final state of a replacement process.
type Outcome int

// Process outcomes. Enums start at 1 so the zero value is invalid.
const (
	// Active processes are still cascading.
	Active Outcome = iota + 1
	// Converged processes found a spare node and filled their hole.
	Converged
	// Failed processes exhausted their search without finding a spare.
	Failed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Active:
		return "active"
	case Converged:
		return "converged"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Replacement records the life of one replacement process.
type Replacement struct {
	// ID is the process identity, unique within a collector.
	ID int
	// Origin is the hole grid the process serves.
	Origin grid.Coord
	// StartRound and EndRound bracket the process in simulation rounds;
	// EndRound is -1 while Active.
	StartRound int
	EndRound   int
	// Hops counts the grids the cascade visited.
	Hops int
	// Moves counts the node movements performed by this process.
	Moves int
	// Distance is the total moving distance of this process.
	Distance float64
	// Outcome is the process's current state.
	Outcome Outcome
}

// Collector accumulates per-process records and scheme-wide counters
// during one simulation run.
type Collector struct {
	procs    []Replacement
	messages int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Reset empties the collector in place, keeping the process-record
// capacity, so pooled trial arenas reuse one collector across
// replicates instead of reallocating the record slice every trial.
func (c *Collector) Reset() {
	c.procs = c.procs[:0]
	c.messages = 0
}

// StartProcess registers a new replacement process and returns its id.
func (c *Collector) StartProcess(origin grid.Coord, round int) int {
	id := len(c.procs)
	c.procs = append(c.procs, Replacement{
		ID:         id,
		Origin:     origin,
		StartRound: round,
		EndRound:   -1,
		Outcome:    Active,
	})
	return id
}

// Process returns a pointer to the record of process id, or nil when
// unknown. The pointer stays valid until the next StartProcess.
func (c *Collector) Process(id int) *Replacement {
	if id < 0 || id >= len(c.procs) {
		return nil
	}
	return &c.procs[id]
}

// RecordHop charges one cascade hop to process id.
func (c *Collector) RecordHop(id int) {
	if p := c.Process(id); p != nil {
		p.Hops++
	}
}

// RecordMove charges one node movement of the given distance to process
// id.
func (c *Collector) RecordMove(id int, distance float64) {
	if p := c.Process(id); p != nil {
		p.Moves++
		p.Distance += distance
	}
}

// RecordMessage counts one control message.
func (c *Collector) RecordMessage() { c.messages++ }

// Finish marks process id converged or failed at the given round.
func (c *Collector) Finish(id int, outcome Outcome, round int) {
	if p := c.Process(id); p != nil && p.Outcome == Active {
		p.Outcome = outcome
		p.EndRound = round
	}
}

// Processes returns a copy of all process records.
func (c *Collector) Processes() []Replacement {
	out := make([]Replacement, len(c.procs))
	copy(out, c.procs)
	return out
}

// Summary aggregates a run's cost measures, in the units the paper's
// figures use.
type Summary struct {
	// Initiated is the number of replacement processes started (Fig 6a).
	Initiated int
	// Converged and Failed partition the finished processes; the success
	// rate of Fig 6b is Converged/Initiated.
	Converged int
	Failed    int
	// Active is the number of processes still running (0 after a
	// converged simulation).
	Active int
	// Moves is the total number of node movements (Fig 7).
	Moves int
	// Distance is the total moving distance (Fig 8).
	Distance float64
	// Messages is the number of control messages sent.
	Messages int
	// MaxHops is the longest cascade observed.
	MaxHops int
	// Rounds is the last round at which any process finished.
	Rounds int
}

// SuccessRate returns the percentage of initiated processes that
// converged, or 100 when none were needed (complete coverage needs no
// repair).
func (s Summary) SuccessRate() float64 {
	if s.Initiated == 0 {
		return 100
	}
	return 100 * float64(s.Converged) / float64(s.Initiated)
}

// Summarize folds the collector into a Summary.
func (c *Collector) Summarize() Summary {
	var s Summary
	s.Initiated = len(c.procs)
	s.Messages = c.messages
	for i := range c.procs {
		p := &c.procs[i]
		switch p.Outcome {
		case Converged:
			s.Converged++
		case Failed:
			s.Failed++
		default:
			s.Active++
		}
		s.Moves += p.Moves
		s.Distance += p.Distance
		if p.Hops > s.MaxHops {
			s.MaxHops = p.Hops
		}
		if p.EndRound > s.Rounds {
			s.Rounds = p.EndRound
		}
	}
	return s
}

// Add merges another summary into s (for aggregating trials).
func (s Summary) Add(o Summary) Summary {
	s.Initiated += o.Initiated
	s.Converged += o.Converged
	s.Failed += o.Failed
	s.Active += o.Active
	s.Moves += o.Moves
	s.Distance += o.Distance
	s.Messages += o.Messages
	if o.MaxHops > s.MaxHops {
		s.MaxHops = o.MaxHops
	}
	if o.Rounds > s.Rounds {
		s.Rounds = o.Rounds
	}
	return s
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("procs=%d ok=%d fail=%d moves=%d dist=%.1f msgs=%d success=%.1f%%",
		s.Initiated, s.Converged, s.Failed, s.Moves, s.Distance, s.Messages, s.SuccessRate())
}
