package coverage

import (
	"math"
	"testing"

	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

func newNet(t *testing.T, cols, rows int, cell float64) *network.Network {
	t.Helper()
	sys, err := grid.New(cols, rows, cell, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return network.New(sys, node.EnergyModel{})
}

func TestHolesAndComplete(t *testing.T) {
	w := newNet(t, 2, 2, 1)
	if _, err := w.AddNodeAt(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	w.ElectHeads()
	if got := HoleCount(w); got != 3 {
		t.Errorf("HoleCount = %d, want 3", got)
	}
	if Complete(w) {
		t.Error("coverage should be incomplete")
	}
	if got := GridFraction(w); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("GridFraction = %v, want 0.25", got)
	}
	holes := Holes(w)
	if len(holes) != 3 {
		t.Errorf("Holes = %v", holes)
	}
	for _, h := range holes {
		if h == grid.C(0, 0) {
			t.Error("occupied cell listed as hole")
		}
	}
}

func TestCompleteAfterFullDeploy(t *testing.T) {
	w := newNet(t, 3, 3, 1)
	if err := deploy.PerGrid(w, 1, randx.New(1)); err != nil {
		t.Fatal(err)
	}
	w.ElectHeads()
	if !Complete(w) {
		t.Error("per-grid deployment should be complete")
	}
	if GridFraction(w) != 1 {
		t.Error("GridFraction should be 1")
	}
}

func TestAreaFractionEmptyNetwork(t *testing.T) {
	w := newNet(t, 4, 4, 1)
	got, err := AreaFraction(w, Options{SensingRange: 1}, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty network coverage = %v, want 0", got)
	}
}

func TestAreaFractionValidation(t *testing.T) {
	w := newNet(t, 2, 2, 1)
	if _, err := AreaFraction(w, Options{SensingRange: 0}, randx.New(1)); err == nil {
		t.Error("zero sensing range should fail")
	}
}

func TestAreaFractionFullWhenHeadsEverywhereWithDiagonalRange(t *testing.T) {
	// With a head in every cell and sensing range >= the cell diagonal,
	// coverage is complete no matter where heads sit in their cells.
	w := newNet(t, 5, 5, 2)
	rng := randx.New(3)
	for _, c := range w.System().AllCoords() {
		if _, err := w.AddNodeAt(rng.InRect(w.System().CellRect(c))); err != nil {
			t.Fatal(err)
		}
	}
	w.ElectHeads()
	got, err := AreaFraction(w, Options{
		SensingRange:   MinHeadSensingRange(w.System()),
		SamplesPerCell: 32,
		HeadsOnly:      true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("full-head coverage = %v, want 1", got)
	}
}

func TestAreaFractionDropsWithHole(t *testing.T) {
	w := newNet(t, 4, 4, 2)
	rng := randx.New(4)
	for _, c := range w.System().AllCoords() {
		if _, err := w.AddNodeAt(rng.InRect(w.System().CellRect(c))); err != nil {
			t.Fatal(err)
		}
	}
	w.ElectHeads()
	full, err := AreaFraction(w, Options{SensingRange: 2.2, SamplesPerCell: 64}, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	w.DisableAllInCell(grid.C(0, 0)) // corner hole hurts most
	holed, err := AreaFraction(w, Options{SensingRange: 2.2, SamplesPerCell: 64}, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if holed >= full {
		t.Errorf("coverage should drop with a hole: %v -> %v", full, holed)
	}
}

func TestHeadsOnlyOption(t *testing.T) {
	// A spare in an otherwise uncovered corner counts only when
	// HeadsOnly is false.
	w := newNet(t, 4, 1, 10)
	if _, err := w.AddNodeAt(geom.Pt(5, 5)); err != nil { // head cell 0
		t.Fatal(err)
	}
	if _, err := w.AddNodeAt(geom.Pt(6, 5)); err != nil { // spare cell 0
		t.Fatal(err)
	}
	w.ElectHeads()
	all, err := AreaFraction(w, Options{SensingRange: 4, SamplesPerCell: 64}, randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	headsOnly, err := AreaFraction(w, Options{SensingRange: 4, SamplesPerCell: 64, HeadsOnly: true}, randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if all < headsOnly {
		t.Errorf("all-node coverage %v should be >= heads-only %v", all, headsOnly)
	}
}

func TestMinHeadSensingRange(t *testing.T) {
	sys, err := grid.New(2, 2, 3, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Sqrt2
	if got := MinHeadSensingRange(sys); math.Abs(got-want) > 1e-9 {
		t.Errorf("MinHeadSensingRange = %v, want %v", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	w := newNet(t, 2, 1, 1)
	if _, err := w.AddNodeAt(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	w.ElectHeads()
	rep := Snapshot(w)
	if rep.Holes != 1 || rep.Complete || rep.GridFraction != 0.5 {
		t.Errorf("Snapshot = %+v", rep)
	}
	if !rep.HeadConnected {
		t.Error("single head should count as connected")
	}
}
