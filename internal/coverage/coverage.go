// Package coverage evaluates how completely the enabled nodes blanket the
// surveillance field: per-grid occupancy (the paper's hole criterion) and
// disc-model area coverage estimated by stratified Monte Carlo sampling.
package coverage

import (
	"fmt"

	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
)

// Holes returns the vacant cells of the network: the grids with no enabled
// node, which under the virtual grid model are exactly the surveillance
// holes.
func Holes(w *network.Network) []grid.Coord { return w.VacantCells(nil) }

// HoleCount returns the number of vacant cells in O(1).
func HoleCount(w *network.Network) int { return w.VacantCount() }

// Complete reports the paper's complete-coverage condition: every grid has
// its own head.
func Complete(w *network.Network) bool { return w.AllHeadsPresent() }

// GridFraction returns the fraction of cells that are occupied, a cheap
// coverage proxy in [0, 1].
func GridFraction(w *network.Network) float64 {
	total := w.System().NumCells()
	return float64(total-HoleCount(w)) / float64(total)
}

// Options configures area-coverage estimation.
type Options struct {
	// SensingRange is the disc radius of each sensor.
	SensingRange float64
	// SamplesPerCell is the number of stratified sample points per cell;
	// values below 1 default to 16.
	SamplesPerCell int
	// HeadsOnly restricts sensing duty to grid heads, the paper's duty
	// cycle (spares sleep to save energy).
	HeadsOnly bool
}

// AreaFraction estimates the fraction of the field's area sensed by at
// least one eligible node, by stratified uniform sampling per cell.
func AreaFraction(w *network.Network, opt Options, rng *randx.Rand) (float64, error) {
	if opt.SensingRange <= 0 {
		return 0, fmt.Errorf("coverage: sensing range %v must be positive", opt.SensingRange)
	}
	samples := opt.SamplesPerCell
	if samples < 1 {
		samples = 16
	}
	sys := w.System()
	covered, total := 0, 0
	var buf []node.ID
	for _, c := range sys.AllCoords() {
		rect := sys.CellRect(c)
		for i := 0; i < samples; i++ {
			p := rng.InRect(rect)
			total++
			if pointCovered(w, p, opt, &buf) {
				covered++
			}
		}
	}
	return float64(covered) / float64(total), nil
}

// pointCovered reports whether any eligible node senses p.
func pointCovered(w *network.Network, p geom.Point, opt Options, buf *[]node.ID) bool {
	*buf = w.NodesWithin((*buf)[:0], p, opt.SensingRange)
	for _, id := range *buf {
		if !opt.HeadsOnly || w.Node(id).IsHead() {
			return true
		}
	}
	return false
}

// MinHeadSensingRange returns the sensing radius at which a head anywhere
// in its cell is guaranteed to cover the whole cell: the cell diagonal
// sqrt(2)*r (worst case: head in one corner, target point in the opposite
// corner).
func MinHeadSensingRange(sys *grid.System) float64 {
	return sys.CellSize() * 1.4142135623730951
}

// Report is a coverage snapshot used by examples and experiment logs.
type Report struct {
	// Holes is the number of vacant cells.
	Holes int
	// GridFraction is the occupied-cell fraction.
	GridFraction float64
	// HeadConnected reports head-overlay connectivity.
	HeadConnected bool
	// Complete reports whether every cell has a head.
	Complete bool
}

// Snapshot gathers a Report from the network's current state.
func Snapshot(w *network.Network) Report {
	return Report{
		Holes:         HoleCount(w),
		GridFraction:  GridFraction(w),
		HeadConnected: w.HeadGraphConnected(),
		Complete:      Complete(w),
	}
}
