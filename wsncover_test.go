package wsncover

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"wsncover/internal/grid"
	"wsncover/internal/node"
)

func TestNewScenarioDefaults(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 8, Rows: 8, Spares: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.SchemeName() != "SR" {
		t.Errorf("default scheme = %q", sc.SchemeName())
	}
	if got := sc.Spares(); got != 10 {
		t.Errorf("Spares = %d", got)
	}
	if len(sc.Holes()) != 0 {
		t.Error("fresh scenario should have no holes")
	}
	if sc.GridSystem().CellSize() < 4.47 || sc.GridSystem().CellSize() > 4.48 {
		t.Errorf("cell size = %v, want ~4.4721", sc.GridSystem().CellSize())
	}
}

func TestNewScenarioValidation(t *testing.T) {
	if _, err := NewScenario(Options{Cols: 0, Rows: 8}); err == nil {
		t.Error("invalid grid should fail")
	}
	if _, err := NewScenario(Options{Cols: 8, Rows: 8, Scheme: Scheme(42)}); err == nil {
		t.Error("invalid scheme should fail")
	}
}

func TestSchemeString(t *testing.T) {
	if SR.String() != "SR" || AR.String() != "AR" || SRShortcut.String() != "SR+shortcut" {
		t.Error("scheme strings")
	}
	if Scheme(9).String() == "" {
		t.Error("invalid scheme should render")
	}
}

func TestQuickstartFlow(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 8, Rows: 8, Spares: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	holes, err := sc.CreateHoles(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(holes) != 3 || len(sc.Holes()) != 3 {
		t.Fatalf("holes = %v", holes)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Holes != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Summary.Initiated != 3 || res.Summary.SuccessRate() != 100 {
		t.Errorf("summary = %v", res.Summary)
	}
	if sc.TotalMoves() == 0 || sc.TotalDistance() == 0 {
		t.Error("movement accounting missing")
	}
}

func TestRepeatedDamageAndRecovery(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 8, Rows: 8, Spares: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := sc.CreateHoles(2); err != nil {
			t.Fatal(err)
		}
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("round %d: coverage incomplete: %+v", round, res)
		}
	}
}

func TestFailRegionAndRecovery(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 10, Rows: 10, Spares: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := sc.GridSystem().Bounds()
	hit := sc.FailRegion(b.Center().X, b.Center().Y, 8)
	if hit == 0 {
		t.Fatal("jamming hit nothing")
	}
	if len(sc.Holes()) == 0 {
		t.Skip("jam did not create holes on this seed")
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("recovery incomplete: %+v (holes %v)", res, sc.Holes())
	}
}

func TestFailRandomAPI(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 6, Rows: 6, Spares: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.FailRandom(10); got != 10 {
		t.Errorf("FailRandom = %d", got)
	}
}

func TestCreateHoleAt(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 6, Rows: 6, Spares: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.CreateHoleAt(grid.C(3, 3)); err != nil {
		t.Fatal(err)
	}
	if len(sc.Holes()) != 1 {
		t.Error("hole not created")
	}
	if err := sc.CreateHoleAt(grid.C(9, 9)); err == nil {
		t.Error("off-grid hole should fail")
	}
}

func TestARScenario(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 8, Rows: 8, Spares: 40, Scheme: AR, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sc.SchemeName() != "AR" {
		t.Errorf("scheme = %q", sc.SchemeName())
	}
	if _, err := sc.CreateHoles(2); err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Initiated <= 2 {
		t.Errorf("AR should initiate redundant processes, got %d", res.Summary.Initiated)
	}
	if sc.RenderTopology() != "" {
		t.Error("AR has no Hamilton topology to render")
	}
}

func TestRenderOutputs(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 5, Rows: 5, Spares: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sc.Render(), "holes=0") {
		t.Error("Render missing summary")
	}
	if !strings.Contains(sc.RenderTopology(), "dual-path") {
		t.Error("5x5 should render a dual-path topology")
	}
}

func TestEnergyAccounting(t *testing.T) {
	sc, err := NewScenario(Options{
		Cols: 6, Rows: 6, Spares: 10, Seed: 9, EnergyPerMeter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.CreateHoles(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
	// Some node must have spent energy equal to its traveled distance.
	total := 0.0
	for id := 0; id < sc.Network().NumNodes(); id++ {
		total += sc.Network().Node(node.ID(id)).EnergySpent()
	}
	if total == 0 {
		t.Error("no energy accounted")
	}
}

func TestStepAPI(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 6, Rows: 6, Spares: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.CreateHoles(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30 && len(sc.Holes()) > 0; i++ {
		if err := sc.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sc.Holes()) != 0 {
		t.Error("single repair should finish within 30 manual rounds")
	}
}

func TestRunScheduleChurn(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 10, Rows: 10, Spares: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunSchedule(Workload{Kind: "churn", Holes: 2, Every: 4, Waves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Holes != 0 {
		t.Errorf("churn schedule not repaired: %+v", res)
	}
	// Three waves of up to two holes each, repaired under fire.
	if res.Summary.Initiated < 3 {
		t.Errorf("expected processes across waves, got %d", res.Summary.Initiated)
	}
	if res.Rounds <= 2*4 {
		t.Errorf("converged at round %d, before the last wave at round 8", res.Rounds)
	}
}

func TestRunScheduleDepletion(t *testing.T) {
	// Without an energy model depletion has nothing to drain; the facade
	// says so instead of silently doing nothing.
	plain, err := NewScenario(Options{Cols: 8, Rows: 8, Spares: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.RunSchedule(Workload{Kind: "depletion", Budget: 5}); err == nil ||
		!strings.Contains(err.Error(), "energy model") {
		t.Errorf("depletion without energy model: err = %v", err)
	}

	sc, err := NewScenario(Options{
		Cols: 8, Rows: 8, Spares: 20, Seed: 2, EnergyPerMeter: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.CreateHoles(3); err != nil {
		t.Fatal(err)
	}
	before := sc.Network().EnabledCount()
	res, err := sc.RunSchedule(Workload{Kind: "depletion", Budget: 2, Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Network().EnabledCount() >= before {
		t.Errorf("depletion killed no mover: %d -> %d enabled (result %+v)",
			before, sc.Network().EnabledCount(), res)
	}
}

func TestRunScheduleValidation(t *testing.T) {
	sc, err := NewScenario(Options{Cols: 6, Rows: 6, Spares: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunSchedule(Workload{Kind: "meteor"}); err == nil {
		t.Error("unknown workload kind should fail")
	}
	if _, err := sc.RunSchedule(Workload{Kind: "jam", Every: 2}); err == nil {
		t.Error("stray workload parameter should fail")
	}
	// Deploy-time parameters cannot act on a deployed scenario and are
	// rejected instead of being silently ignored.
	if _, err := sc.RunSchedule(Workload{Kind: "holes", Holes: 3}); err == nil {
		t.Error("deploy-time holes parameter should fail on a scenario")
	}
	if _, err := sc.RunSchedule(Workload{Kind: "jam", Radius: 9}); err == nil {
		t.Error("deploy-time jam radius should fail on a scenario")
	}
	if _, err := sc.RunSchedule(Workload{Kind: "depletion", Budget: 5, PerMeter: 2}); err == nil {
		t.Error("scenario-fixed energy parameters should fail")
	}
	// A no-event workload behaves like Run over existing damage.
	if _, err := sc.CreateHoles(1); err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunSchedule(Workload{Kind: "holes"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("hole not repaired: %+v", res)
	}
}

func TestSweepFacadeWorkload(t *testing.T) {
	opts := SweepOptions{
		Schemes: []Scheme{SR, AR},
		Cols:    8, Rows: 8,
		Spares:   []int{20},
		Workload: Workload{Kind: "churn", Holes: 1, Every: 3, Waves: 2},
		Trials:   3,
		Seed:     5,
	}
	series, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Points[0].Trials != 3 {
			t.Errorf("%s trials = %d", s.Scheme, s.Points[0].Trials)
		}
		// Two waves per trial mean at least two processes per trial.
		if s.Points[0].MeanMoves == 0 {
			t.Errorf("%s churn sweep recorded no movement", s.Scheme)
		}
	}
	again, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(series, again) {
		t.Error("workload sweep not reproducible")
	}

	// A workload with parameters but no Kind must error, not silently
	// sweep the default scenario.
	_, err = Sweep(context.Background(), SweepOptions{
		Spares: []int{5}, Trials: 1,
		Workload: Workload{Every: 5, Waves: 3},
	})
	if err == nil {
		t.Error("kind-less parameterized workload should fail")
	}
}

func TestSweepFacade(t *testing.T) {
	opts := SweepOptions{
		Schemes: []Scheme{SR, AR},
		Cols:    8, Rows: 8,
		Spares: []int{8, 24},
		Trials: 6,
		Seed:   31,
	}
	series, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Scheme != SR || series[1].Scheme != AR {
		t.Fatalf("series = %+v", series)
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("%s points = %d", s.Scheme, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Trials != 6 {
				t.Errorf("%s N=%d trials = %d", s.Scheme, p.N, p.Trials)
			}
			if p.RecoveryRate < 0 || p.RecoveryRate > 100 || p.SuccessRate < 0 || p.SuccessRate > 100 {
				t.Errorf("%s N=%d rates out of range: %+v", s.Scheme, p.N, p)
			}
		}
		// SR repairs the single default hole every time.
		if s.Scheme == SR && s.Points[0].RecoveryRate != 100 {
			t.Errorf("SR recovery = %v", s.Points[0].RecoveryRate)
		}
	}

	// Bit-identical rerun at a different worker count.
	opts.Workers = 1
	again, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(series, again) {
		t.Error("facade sweep depends on worker count")
	}

	if _, err := Sweep(context.Background(), SweepOptions{
		Schemes: []Scheme{Scheme(9)}, Spares: []int{5}, Trials: 1,
	}); err == nil {
		t.Error("invalid scheme should fail")
	}
}
