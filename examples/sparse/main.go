// Sparse: the low-density regime (N < 55 on a 16x16 grid) where the
// paper's Section 5 contrasts the schemes most sharply — AR's localized
// search fails 10-20% of the time while SR, walking the whole Hamilton
// path, always finds the spare when one exists.
//
// Run with: go run ./examples/sparse
package main

import (
	"fmt"
	"log"

	"wsncover"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		spares = 25 // sparse: ~0.1 spares per grid
		trials = 30
	)
	fmt.Printf("16x16 grid, N=%d spares, %d independent trials per scheme\n\n", spares, trials)

	for _, scheme := range []wsncover.Scheme{wsncover.SR, wsncover.AR} {
		var (
			initiated, converged, moves int
			distance                    float64
			recovered                   int
		)
		for trial := 0; trial < trials; trial++ {
			sc, err := wsncover.NewScenario(wsncover.Options{
				Cols:   16,
				Rows:   16,
				Spares: spares,
				Scheme: scheme,
				Seed:   int64(1000 + trial),
			})
			if err != nil {
				return err
			}
			if _, err := sc.CreateHoles(1); err != nil {
				return err
			}
			res, err := sc.Run()
			if err != nil {
				return err
			}
			initiated += res.Summary.Initiated
			converged += res.Summary.Converged
			moves += res.Summary.Moves
			distance += res.Summary.Distance
			if res.Complete {
				recovered++
			}
		}
		fmt.Printf("%-3s: processes=%3d  success=%5.1f%%  holes repaired=%d/%d  moves=%4d  distance=%7.1f m\n",
			scheme, initiated,
			100*float64(converged)/float64(initiated),
			recovered, trials, moves, distance)
	}

	fmt.Println("\nExpected shape (paper Section 5): SR converges in 100% of trials at the")
	fmt.Println("price of longer walks; AR spends less movement but fails a nontrivial")
	fmt.Println("fraction of its redundant processes and can leave displaced holes.")
	return nil
}
