// Asynchronous: the paper's schemes described in a round-based system
// "can be extended easily to an asynchronous system" (Section 2). This
// example runs the event-driven SR controller: heads poll with jitter,
// notifications have transmission latency, and movements take real travel
// time at a configured speed — then compares the movement cost with the
// synchronous controller on the same layout.
//
// Run with: go run ./examples/asynchronous
package main

import (
	"fmt"
	"log"

	"wsncover/internal/async"
	"wsncover/internal/core"
	"wsncover/internal/coverage"
	"wsncover/internal/deploy"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/metrics"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
	"wsncover/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// build creates the damaged test network: 10x10 grid, 40 spares, 4 holes.
func build(seed int64) (*network.Network, *hamilton.Topology, error) {
	rng := randx.New(seed)
	sys, err := grid.NewForCommRange(10, 10, 10, geom.Pt(0, 0))
	if err != nil {
		return nil, nil, err
	}
	net := network.New(sys, node.EnergyModel{})
	holes, err := deploy.PickHoleCells(sys, 4, true, rng.Split(1))
	if err != nil {
		return nil, nil, err
	}
	if err := deploy.Controlled(net, 40, holes, rng.Split(2)); err != nil {
		return nil, nil, err
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		return nil, nil, err
	}
	return net, topo, nil
}

func run() error {
	const seed = 99

	// Asynchronous run: slow radios (50 ms +/- jitter), 1.5 m/s movers,
	// heads polling every 2 s.
	netA, topoA, err := build(seed)
	if err != nil {
		return err
	}
	actrl, err := async.New(netA, async.Config{
		Topology:     topoA,
		RNG:          randx.New(seed),
		MsgDelay:     0.05,
		MsgJitter:    0.02,
		MoveSpeed:    1.5,
		PollInterval: 2.0,
	})
	if err != nil {
		return err
	}
	events, err := actrl.RunUntil(3600) // one simulated hour is plenty
	if err != nil {
		return err
	}
	sA := actrl.Collector().Summarize()
	fmt.Printf("asynchronous SR: recovered in %.1f simulated seconds (%d events)\n",
		actrl.Now(), events)
	printSummary(sA, coverage.Complete(netA))

	// Synchronous run on the identical layout for comparison.
	netS, topoS, err := build(seed)
	if err != nil {
		return err
	}
	sctrl, err := core.New(netS, core.Config{Topology: topoS, RNG: randx.New(seed)})
	if err != nil {
		return err
	}
	rounds, err := sim.RunToConvergence(sctrl, 500)
	if err != nil {
		return err
	}
	sS := sctrl.Collector().Summarize()
	fmt.Printf("\nsynchronous SR: recovered in %d rounds\n", rounds)
	printSummary(sS, coverage.Complete(netS))

	fmt.Println("\nBoth controllers make the same kind of walk; asynchrony changes")
	fmt.Println("timing (polling latency, travel time) but not the movement economics")
	fmt.Println("or the one-process-per-hole guarantee.")
	return nil
}

func printSummary(s metrics.Summary, complete bool) {
	fmt.Printf("  processes=%d converged=%d moves=%d distance=%.1f m complete=%v\n",
		s.Initiated, s.Converged, s.Moves, s.Distance, complete)
}
