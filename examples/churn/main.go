// Churn: holes arriving while recovery runs — the paper evaluates SR vs
// AR on static pre-placed holes, but its premise is ongoing mobility
// control. This example drives both schemes through the churn workload:
// waves of fresh holes land every few rounds and the controllers repair
// under fire.
//
// Part 1 watches a single SR scenario live via the facade's RunSchedule.
// Part 2 compares SR and AR on the same churn workload with a paired
// Monte-Carlo sweep.
//
// Run with: go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"

	"wsncover"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: one live scenario under churn -------------------------
	sc, err := wsncover.NewScenario(wsncover.Options{
		Cols: 10, Rows: 10, Spares: 40, Seed: 42,
	})
	if err != nil {
		return err
	}
	churn := wsncover.Workload{Kind: "churn", Holes: 2, Every: 5, Waves: 4}
	fmt.Printf("SR under churn: %d waves of %d holes every %d rounds\n",
		churn.Waves, churn.Holes, churn.Every)
	res, err := sc.RunSchedule(churn)
	if err != nil {
		return err
	}
	fmt.Printf("  rounds=%d processes=%d moves=%d success=%.0f%% complete=%v\n\n",
		res.Rounds, res.Summary.Initiated, res.Summary.Moves,
		res.Summary.SuccessRate(), res.Complete)

	// --- Part 2: SR vs AR on the same workload, paired trials ----------
	series, err := wsncover.Sweep(context.Background(), wsncover.SweepOptions{
		Schemes:  []wsncover.Scheme{wsncover.SR, wsncover.AR},
		Cols:     12,
		Rows:     12,
		Spares:   []int{15, 60},
		Workload: churn,
		Trials:   20,
		Seed:     2008,
	})
	if err != nil {
		return err
	}
	fmt.Println("scheme    N  recovery  success  moves/trial")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Printf("%-6s %4d  %7.0f%%  %6.1f%%  %11.2f\n",
				s.Scheme, p.N, p.RecoveryRate, p.SuccessRate, p.MeanMoves)
		}
	}

	// Under churn the gap widens: every wave multiplies AR's redundant
	// processes, while SR still runs exactly one process per fresh hole.
	return nil
}
