// Quickstart: deploy a small sensor network, knock out a few grids, and
// watch the synchronized replacement (SR) restore complete coverage.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wsncover"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An 8x8 virtual grid with R = 10 m radios (cells of 4.4721 m) and
	// 20 spare nodes beyond the one-head-per-grid minimum.
	sc, err := wsncover.NewScenario(wsncover.Options{
		Cols:   8,
		Rows:   8,
		Spares: 20,
		Seed:   42,
	})
	if err != nil {
		return err
	}

	fmt.Println("Hamilton structure driving the synchronization:")
	fmt.Println(sc.RenderTopology())

	holes, err := sc.CreateHoles(3)
	if err != nil {
		return err
	}
	fmt.Printf("disabled all nodes in %v\n\n", holes)
	fmt.Println("damaged network (numbers = enabled nodes per grid, '.' = hole):")
	fmt.Println(sc.Render())

	res, err := sc.Run()
	if err != nil {
		return err
	}

	fmt.Println("after recovery:")
	fmt.Println(sc.Render())
	fmt.Printf("scheme: %s\n", sc.SchemeName())
	fmt.Printf("processes: %d initiated, %d converged (success %.0f%%)\n",
		res.Summary.Initiated, res.Summary.Converged, res.Summary.SuccessRate())
	fmt.Printf("cost: %d node movements, %.1f m total, %d control messages, %d rounds\n",
		res.Summary.Moves, res.Summary.Distance, res.Summary.Messages, res.Rounds)
	fmt.Printf("coverage complete: %v, head network connected: %v\n",
		res.Complete, res.Connected)
	return nil
}
