// Dualpath: Algorithm 2 on an odd x odd grid, where no Hamilton cycle
// exists and the paper builds a dual-path structure with special grids A,
// B, C, D. The example damages each special grid in turn and shows the
// replacement routing each case takes.
//
// Run with: go run ./examples/dualpath
package main

import (
	"fmt"
	"log"

	"wsncover"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Show the structure first.
	sc, err := wsncover.NewScenario(wsncover.Options{
		Cols: 5, Rows: 5, Spares: 6, Seed: 11,
	})
	if err != nil {
		return err
	}
	fmt.Println("5x5 dual-path Hamilton structure (paper Figure 4):")
	fmt.Println(sc.RenderTopology())

	topo, err := hamilton.Build(sc.GridSystem())
	if err != nil {
		return err
	}
	a, b, c, d, _ := topo.ABCD()
	fmt.Printf("A=%v B=%v C=%v D=%v\n", a, b, c, d)
	fmt.Println("path one: A -> D -> ...shared... -> C -> B")
	fmt.Println("path two: B -> D -> ...shared... -> C -> A")

	// Damage each special grid in a fresh scenario and recover.
	cases := []struct {
		name string
		cell grid.Coord
	}{
		{"A", a}, {"B", b}, {"C", c}, {"D", d}, {"shared (0,0)", grid.C(0, 0)},
	}
	for i, tc := range cases {
		sc, err := wsncover.NewScenario(wsncover.Options{
			Cols: 5, Rows: 5, Spares: 6, Seed: int64(100 + i),
		})
		if err != nil {
			return err
		}
		if err := sc.CreateHoleAt(tc.cell); err != nil {
			return err
		}
		res, err := sc.Run()
		if err != nil {
			return err
		}
		fmt.Printf("hole at %-12s -> initiator %v, %d moves, %d rounds, complete=%v\n",
			tc.name, topo.MonitorOf(tc.cell), res.Summary.Moves, res.Rounds, res.Complete)
	}

	// Walk preview for a hole at D: B initiates; at C, grid A with spare
	// nodes is preferred (Algorithm 2 case two).
	fmt.Println("\nreplacement walk for a hole at D (no spares anywhere):")
	w := topo.NewWalk(d)
	fmt.Printf("  %v", w.Current())
	for w.Advance(nil) {
		fmt.Printf(" <- %v", w.Current())
	}
	fmt.Println()
	return nil
}
