// Surveillance: a long-running monitoring deployment under attack. A
// jammer repeatedly knocks out every node in a region (the attack model of
// Xu et al. cited in the paper's introduction), and the SR scheme repairs
// the resulting holes round after round while the spare pool drains.
//
// Run with: go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"wsncover"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := wsncover.NewScenario(wsncover.Options{
		Cols:           12,
		Rows:           12,
		Spares:         80,
		Seed:           7,
		EnergyPerMeter: 1, // track movement energy
	})
	if err != nil {
		return err
	}
	bounds := sc.GridSystem().Bounds()

	// Jam three successive areas: center, north-east, south-west.
	attacks := []struct {
		x, y, radius float64
		name         string
	}{
		{bounds.Center().X, bounds.Center().Y, 8, "center"},
		{bounds.Max.X * 0.8, bounds.Max.Y * 0.8, 7, "north-east"},
		{bounds.Max.X * 0.2, bounds.Max.Y * 0.2, 7, "south-west"},
	}

	for i, a := range attacks {
		hit := sc.FailRegion(a.x, a.y, a.radius)
		holes := len(sc.Holes())
		fmt.Printf("== attack %d (%s): jammed %d nodes, %d holes, %d spares left ==\n",
			i+1, a.name, hit, holes, sc.Spares())
		fmt.Println(sc.Render())

		res, err := sc.Run()
		if err != nil {
			return err
		}
		fmt.Printf("recovery: %d processes, %d moves, %.1f m, complete=%v\n\n",
			res.Summary.Initiated, res.Summary.Moves, res.Summary.Distance, res.Complete)
	}

	fmt.Println("final network:")
	fmt.Println(sc.Render())
	fmt.Printf("lifetime cost: %d movements, %.1f m total distance\n",
		sc.TotalMoves(), sc.TotalDistance())
	fmt.Printf("spares remaining: %d\n", sc.Spares())
	return nil
}
