// Sweep: compare the SR and AR schemes over a range of spare counts
// using the facade's parallel sweep API. All trials run concurrently on
// the experiment engine, yet the numbers below are bit-identical on any
// machine and worker count — every trial's seed is fixed before
// dispatch.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"

	"wsncover"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 12x12 grid, three spare budgets, both schemes of the paper's
	// evaluation, 25 seeded trials per point. Each scheme faces the same
	// damage layouts, so the comparison is paired.
	series, err := wsncover.Sweep(context.Background(), wsncover.SweepOptions{
		Schemes: []wsncover.Scheme{wsncover.SR, wsncover.AR},
		Cols:    12,
		Rows:    12,
		Spares:  []int{10, 40, 120},
		Holes:   2,
		Trials:  25,
		Seed:    2008,
	})
	if err != nil {
		return err
	}

	fmt.Println("scheme    N  recovery  success  moves/trial  dist/trial")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Printf("%-6s %4d  %7.0f%%  %6.1f%%  %11.2f  %9.2f m\n",
				s.Scheme, p.N, p.RecoveryRate, p.SuccessRate, p.MeanMoves, p.MeanDistance)
		}
	}

	// The paper's headline: SR recovers every hole with fewer movements
	// once spares are plentiful, while AR's redundant processes waste
	// moves and sometimes strand a hole.
	return nil
}
