package wsncover_test

import (
	"fmt"

	"wsncover"
	"wsncover/internal/analytic"
	"wsncover/internal/grid"
)

// The simplest recovery: damage a grid cell and let SR repair it.
func Example() {
	sc, err := wsncover.NewScenario(wsncover.Options{
		Cols: 8, Rows: 8, Spares: 20, Seed: 42,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sc.CreateHoleAt(grid.C(4, 4)); err != nil {
		fmt.Println(err)
		return
	}
	res, err := sc.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("complete:", res.Complete)
	fmt.Println("processes:", res.Summary.Initiated)
	fmt.Printf("success: %.0f%%\n", res.Summary.SuccessRate())
	// Output:
	// complete: true
	// processes: 1
	// success: 100%
}

// Theorem 2's analytical model: the paper's quoted anchor value.
func ExampleScenario_analyticAnchor() {
	m, err := analytic.Moves(12, 19)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("M(N=12, L=19) = %.4f\n", m)
	// Output:
	// M(N=12, L=19) = 2.0139
}

// Comparing schemes on the same damage.
func ExampleOptions_schemes() {
	for _, scheme := range []wsncover.Scheme{wsncover.SR, wsncover.AR} {
		sc, err := wsncover.NewScenario(wsncover.Options{
			Cols: 10, Rows: 10, Spares: 60, Scheme: scheme, Seed: 7,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		if _, err := sc.CreateHoles(2); err != nil {
			fmt.Println(err)
			return
		}
		res, err := sc.Run()
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: one process per hole = %v\n",
			scheme, res.Summary.Initiated == 2)
	}
	// Output:
	// SR: one process per hole = true
	// AR: one process per hole = false
}
