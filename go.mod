module wsncover

go 1.24
