package wsncover

import (
	"context"
	"fmt"

	"wsncover/internal/sim"
)

// SweepOptions configures a Monte-Carlo comparison sweep over the spare
// count N, the evaluation of Section 5 exposed through the facade.
type SweepOptions struct {
	// Schemes to compare; empty means SR and AR (the paper's pairing).
	Schemes []Scheme
	// Cols and Rows size the grid; zero means the paper's 16x16.
	Cols, Rows int
	// Spares lists the swept spare counts N; empty means the paper's
	// x axis (10..1000).
	Spares []int
	// Holes per trial; zero means 1.
	Holes int
	// Workload selects the damage model over the trial timeline; the
	// zero value is the paper's random pre-placed holes. See Workload
	// for the available kinds and parameters.
	Workload Workload
	// Trials per (scheme, N) point; zero means 20.
	Trials int
	// Seed anchors all trials. Trial t uses the same derived layout for
	// every scheme, so the schemes face identical damage.
	Seed int64
	// Workers sizes the parallel trial pool; values below 1 mean
	// GOMAXPROCS. Results are bit-identical for any worker count.
	Workers int
}

// SweepPoint aggregates the trials of one scheme at one spare count.
type SweepPoint struct {
	// N is the spare count.
	N int
	// Trials is the number of trials aggregated.
	Trials int
	// RecoveryRate is the percentage of trials that ended with complete
	// coverage.
	RecoveryRate float64
	// SuccessRate is the percentage of replacement processes that
	// converged (Figure 6b).
	SuccessRate float64
	// MeanMoves and MeanDistance are per-trial averages (Figures 7, 8).
	MeanMoves    float64
	MeanDistance float64
}

// SweepSeries is one scheme's curve over the swept spare counts.
type SweepSeries struct {
	Scheme Scheme
	Points []SweepPoint
}

func (s Scheme) kind() (sim.SchemeKind, error) {
	switch s {
	case SR:
		return sim.SR, nil
	case SRShortcut:
		return sim.SRShortcut, nil
	case AR:
		return sim.AR, nil
	default:
		return 0, fmt.Errorf("wsncover: unknown scheme %v", s)
	}
}

// Sweep runs seeded recovery trials for every scheme and spare count on
// the parallel experiment engine and returns one aggregated curve per
// scheme. Equal options produce bit-identical curves regardless of the
// worker count or core count.
func Sweep(ctx context.Context, opts SweepOptions) ([]SweepSeries, error) {
	if len(opts.Schemes) == 0 {
		opts.Schemes = []Scheme{SR, AR}
	}
	if opts.Cols == 0 {
		opts.Cols = 16
	}
	if opts.Rows == 0 {
		opts.Rows = 16
	}
	if len(opts.Spares) == 0 {
		opts.Spares = sim.PaperNs()
	}
	if opts.Trials == 0 {
		opts.Trials = 20
	}
	out := make([]SweepSeries, 0, len(opts.Schemes))
	for _, scheme := range opts.Schemes {
		kind, err := scheme.kind()
		if err != nil {
			return nil, err
		}
		template := sim.TrialConfig{
			Cols: opts.Cols, Rows: opts.Rows, Scheme: kind, Holes: opts.Holes,
		}
		// Pass a non-zero workload through even without a Kind: the trial
		// assembly resolves the default kind and rejects parameters it
		// does not take, so a forgotten Kind errors instead of silently
		// sweeping the wrong scenario.
		if opts.Workload != (Workload{}) {
			template.Workload = opts.Workload.spec()
		}
		pts, err := sim.RunSweepContext(ctx, sim.SweepConfig{
			Template: template,
			Ns:       opts.Spares,
			Trials:   opts.Trials,
			BaseSeed: opts.Seed,
			Workers:  opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("wsncover: %s sweep: %w", scheme, err)
		}
		series := SweepSeries{Scheme: scheme, Points: make([]SweepPoint, len(pts))}
		for i, p := range pts {
			series.Points[i] = SweepPoint{
				N:            p.N,
				Trials:       p.Trials,
				RecoveryRate: 100 * float64(p.Recovered) / float64(p.Trials),
				SuccessRate:  p.Summary.SuccessRate(),
				MeanMoves:    p.MeanMovesPerTrial(),
				MeanDistance: p.Summary.Distance / float64(p.Trials),
			}
		}
		out = append(out, series)
	}
	return out, nil
}
