// Benchmarks regenerating every evaluation artifact of the paper, one per
// figure panel (the paper has no tables). Each benchmark times the
// generation of the corresponding data series at a reduced trial budget
// and reports the headline quantity of that figure as a custom metric so
// `go test -bench` output can be eyeballed against the paper:
//
//	Fig 3: analytical #moves per replacement vs N (4x5 and 16x16)
//	Fig 5: estimated moving distance per replacement vs N (r=10)
//	Fig 6: processes initiated and success rate, AR vs SR
//	Fig 7: #node movements, experimental vs analytical
//	Fig 8: total moving distance, experimental vs analytical
//
// The full-resolution series (100 trials/point, the paper's x axis) are
// produced by `go run ./cmd/figures`; see EXPERIMENTS.md.
package wsncover_test

import (
	"context"
	"runtime"
	"testing"

	"wsncover/internal/analytic"
	"wsncover/internal/core"
	"wsncover/internal/deploy"
	"wsncover/internal/experiment"
	"wsncover/internal/figures"
	"wsncover/internal/geom"
	"wsncover/internal/grid"
	"wsncover/internal/hamilton"
	"wsncover/internal/network"
	"wsncover/internal/node"
	"wsncover/internal/randx"
	"wsncover/internal/sim"
	"wsncover/internal/telemetry"
)

// benchNs is the reduced sweep used by the experimental benchmarks.
var benchNs = []int{10, 55, 200, 1000}

const benchTrials = 5

func sweepFor(b *testing.B, kind sim.SchemeKind) []sim.SweepPoint {
	b.Helper()
	pts, err := sim.RunSweep(sim.SweepConfig{
		Template: sim.TrialConfig{Cols: 16, Rows: 16, Scheme: kind},
		Ns:       benchNs,
		Trials:   benchTrials,
		BaseSeed: 777,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

func BenchmarkFig3AnalyticMoves45(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 140; n++ {
			m, err := analytic.Moves(n, 19)
			if err != nil {
				b.Fatal(err)
			}
			last = m
		}
	}
	b.ReportMetric(last, "moves@N=140")
}

func BenchmarkFig3AnalyticMoves1616(b *testing.B) {
	var anchor float64
	for i := 0; i < b.N; i++ {
		for n := 10; n <= 1400; n += 10 {
			m, err := analytic.Moves(n, 255)
			if err != nil {
				b.Fatal(err)
			}
			if n == 430 {
				anchor = m // ~2 at density 1.68/grid per the paper
			}
		}
	}
	b.ReportMetric(anchor, "moves@N=430")
}

func BenchmarkFig5Distance45(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 140; n++ {
			d, err := analytic.Distance(n, 19, 10)
			if err != nil {
				b.Fatal(err)
			}
			last = d
		}
	}
	b.ReportMetric(last, "dist@N=140")
}

func BenchmarkFig5Distance1616(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for n := 10; n <= 1000; n += 10 {
			d, err := analytic.Distance(n, 255, 10)
			if err != nil {
				b.Fatal(err)
			}
			last = d
		}
	}
	b.ReportMetric(last, "dist@N=1000")
}

func BenchmarkFig6Processes(b *testing.B) {
	var srProcs, arProcs int
	for i := 0; i < b.N; i++ {
		sr := sweepFor(b, sim.SR)
		ar := sweepFor(b, sim.AR)
		srProcs, arProcs = 0, 0
		for j := range sr {
			srProcs += sr[j].Summary.Initiated
			arProcs += ar[j].Summary.Initiated
		}
	}
	b.ReportMetric(float64(arProcs)/float64(srProcs), "AR/SR-procs")
}

func BenchmarkFig6SuccessRate(b *testing.B) {
	var srOK, arOK float64
	for i := 0; i < b.N; i++ {
		sr := sweepFor(b, sim.SR)
		ar := sweepFor(b, sim.AR)
		srOK = sr[0].Summary.SuccessRate() // N=10, the stress point
		arOK = ar[0].Summary.SuccessRate()
	}
	b.ReportMetric(srOK, "SR-success@N=10")
	b.ReportMetric(arOK, "AR-success@N=10")
}

func BenchmarkFig7MovesExperimental(b *testing.B) {
	var srLow, srHigh, arLow, arHigh int
	for i := 0; i < b.N; i++ {
		sr := sweepFor(b, sim.SR)
		ar := sweepFor(b, sim.AR)
		srLow, srHigh = sr[0].Summary.Moves, sr[len(sr)-1].Summary.Moves
		arLow, arHigh = ar[0].Summary.Moves, ar[len(ar)-1].Summary.Moves
	}
	// The paper's crossover: SR above AR at N=10, below at N=1000.
	b.ReportMetric(float64(srLow)/float64(arLow+1), "SR/AR-moves@N=10")
	b.ReportMetric(float64(srHigh)/float64(arHigh+1), "SR/AR-moves@N=1000")
}

func BenchmarkFig7MovesAnalytical(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		for _, n := range sim.PaperNs() {
			v, err := analytic.Moves(n, 255)
			if err != nil {
				b.Fatal(err)
			}
			m = v
		}
	}
	b.ReportMetric(m, "moves@N=1000")
}

func BenchmarkFig8DistanceExperimental(b *testing.B) {
	var srDist, arDist float64
	for i := 0; i < b.N; i++ {
		sr := sweepFor(b, sim.SR)
		ar := sweepFor(b, sim.AR)
		srDist = sr[len(sr)-1].Summary.Distance
		arDist = ar[len(ar)-1].Summary.Distance
	}
	b.ReportMetric(srDist, "SR-dist@N=1000")
	b.ReportMetric(arDist, "AR-dist@N=1000")
}

func BenchmarkFig8DistanceAnalytical(b *testing.B) {
	r := sim.PaperCommRange / grid.Sqrt5
	var d float64
	for i := 0; i < b.N; i++ {
		for _, n := range sim.PaperNs() {
			v, err := analytic.Distance(n, 255, r)
			if err != nil {
				b.Fatal(err)
			}
			d = v
		}
	}
	b.ReportMetric(d, "dist@N=1000")
}

// BenchmarkFiguresAll times the full figure bundle at smoke resolution,
// the end-to-end path of cmd/figures.
func BenchmarkFiguresAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.All(figures.Config{
			Trials: 2, Seed: 9, Ns: []int{10, 200},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationShortcut compares SR against the future-work shortcut
// extension on identical layouts.
func BenchmarkAblationShortcut(b *testing.B) {
	for _, kind := range []sim.SchemeKind{sim.SR, sim.SRShortcut} {
		b.Run(kind.String(), func(b *testing.B) {
			var moves int
			for i := 0; i < b.N; i++ {
				pts, err := sim.RunSweep(sim.SweepConfig{
					Template: sim.TrialConfig{Cols: 16, Rows: 16, Scheme: kind},
					Ns:       []int{55},
					Trials:   benchTrials,
					BaseSeed: 555,
				})
				if err != nil {
					b.Fatal(err)
				}
				moves = pts[0].Summary.Moves
			}
			b.ReportMetric(float64(moves)/benchTrials, "moves/trial")
		})
	}
}

// BenchmarkAblationDualPath contrasts an even grid (single cycle) with an
// odd x odd grid (dual-path) of nearly equal size, validating Corollary 2's
// claim that the dual-path costs about the same.
func BenchmarkAblationDualPath(b *testing.B) {
	dims := []struct {
		name       string
		cols, rows int
	}{
		{"cycle-16x16", 16, 16},
		{"dualpath-15x17", 15, 17},
	}
	for _, d := range dims {
		b.Run(d.name, func(b *testing.B) {
			var moves int
			for i := 0; i < b.N; i++ {
				pts, err := sim.RunSweep(sim.SweepConfig{
					Template: sim.TrialConfig{Cols: d.cols, Rows: d.rows, Scheme: sim.SR},
					Ns:       []int{100},
					Trials:   benchTrials,
					BaseSeed: 321,
				})
				if err != nil {
					b.Fatal(err)
				}
				moves = pts[0].Summary.Moves
			}
			b.ReportMetric(float64(moves)/benchTrials, "moves/trial")
		})
	}
}

// BenchmarkAblationARMaxHops sweeps AR's search horizon, the knob that
// trades movement cost against success rate.
func BenchmarkAblationARMaxHops(b *testing.B) {
	for _, hops := range []int{3, 6, 12} {
		b.Run(map[int]string{3: "hops3", 6: "hops6", 12: "hops12"}[hops], func(b *testing.B) {
			var success float64
			for i := 0; i < b.N; i++ {
				pts, err := sim.RunSweep(sim.SweepConfig{
					Template: sim.TrialConfig{
						Cols: 16, Rows: 16, Scheme: sim.AR, ARMaxHops: hops,
					},
					Ns:       []int{40},
					Trials:   benchTrials,
					BaseSeed: 654,
				})
				if err != nil {
					b.Fatal(err)
				}
				success = pts[0].Summary.SuccessRate()
			}
			b.ReportMetric(success, "success%@N=40")
		})
	}
}

// BenchmarkExtScalability runs the extension grid-size sweep: at constant
// spare density SR's per-replacement cost stays flat as the field grows.
func BenchmarkExtScalability(b *testing.B) {
	var tableRows int
	for i := 0; i < b.N; i++ {
		tb, err := figures.Scalability(figures.ScalabilityConfig{
			Sizes: []int{8, 16}, Trials: 4, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		tableRows = len(tb.X)
	}
	b.ReportMetric(float64(tableRows), "points")
}

// BenchmarkExtMultiHole runs the extension simultaneous-holes sweep.
func BenchmarkExtMultiHole(b *testing.B) {
	var srRecovery float64
	for i := 0; i < b.N; i++ {
		tb, err := figures.MultiHole(figures.MultiHoleConfig{
			Holes: []int{1, 6}, Spares: 40, Trials: 4, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		srRecovery = tb.Series[0].Y[1]
	}
	b.ReportMetric(srRecovery, "SR-recovery%@6holes")
}

// --- Experiment engine benches (sequential vs parallel sweep) ---

// sweepBenchConfig is the shared workload of the engine comparison: a
// figure-style sweep on the paper's grid, sized so one iteration runs a
// few hundred milliseconds of trial work.
func sweepBenchConfig(workers int) sim.SweepConfig {
	return sim.SweepConfig{
		Template: sim.TrialConfig{Cols: 16, Rows: 16, Scheme: sim.SR},
		Ns:       []int{10, 55, 200, 1000},
		Trials:   10,
		BaseSeed: 777,
		Workers:  workers,
	}
}

// BenchmarkSweepSequential pins the engine to one worker, the old
// sequential-loop behavior.
func BenchmarkSweepSequential(b *testing.B) {
	var moves int
	for i := 0; i < b.N; i++ {
		pts, err := sim.RunSweep(sweepBenchConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		moves = pts[0].Summary.Moves
	}
	b.ReportMetric(float64(moves), "moves@N=10")
}

// BenchmarkSweepParallel lets the engine use every core. The two
// benchmarks must report identical custom metrics (bit-identical sweep
// results); only the wall clock may differ.
func BenchmarkSweepParallel(b *testing.B) {
	var moves int
	for i := 0; i < b.N; i++ {
		pts, err := sim.RunSweep(sweepBenchConfig(0))
		if err != nil {
			b.Fatal(err)
		}
		moves = pts[0].Summary.Moves
	}
	b.ReportMetric(float64(moves), "moves@N=10")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkCampaign16Cells times a small multi-dimensional campaign
// (scheme x spares x failure mode) end to end through the streaming
// aggregation.
func BenchmarkCampaign16Cells(b *testing.B) {
	spec := sim.CampaignSpec{
		Schemes:    []sim.SchemeKind{sim.SR, sim.AR},
		Grids:      []sim.GridSize{{Cols: 16, Rows: 16}},
		Spares:     []int{40, 200},
		Failures:   []sim.FailureMode{sim.FailHoles, sim.FailJam},
		Replicates: 4,
		BaseSeed:   31,
	}
	var points int
	for i := 0; i < b.N; i++ {
		pts, err := sim.RunCampaign(context.Background(), spec, experiment.Options{})
		if err != nil {
			b.Fatal(err)
		}
		points = len(pts)
	}
	b.ReportMetric(float64(points), "points")
}

// BenchmarkCampaignAggregation contrasts the aggregation layer's memory
// residency at high replicate counts: the batch path must hold every
// sample until the final Aggregate (O(trials) retained bytes), the
// streaming Accumulator folds each sample on arrival and retains only
// per-(group, X) state (O(groups)). Each variant reports the heap bytes
// still live at the point batch aggregation would run, measured across a
// forced GC — the number that decides whether a 10^6-trial campaign fits
// in memory.
func BenchmarkCampaignAggregation(b *testing.B) {
	const groups, xs, replicates = 6, 16, 200
	mkSample := func(i int) experiment.Sample {
		return experiment.Sample{
			Group: [groups]string{"SR", "AR", "SRS", "SR jam", "AR jam", "SRS jam"}[i%groups],
			X:     float64(10 * ((i / groups) % xs)),
			Values: map[string]float64{
				"moves": float64(i % 97), "distance": float64(i%31) * 1.7,
				"success_rate": float64(i % 101), "rounds": float64(i % 53),
			},
		}
	}
	total := groups * xs * replicates
	heapLive := func() float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	}
	b.Run("batch", func(b *testing.B) {
		var retained float64
		for i := 0; i < b.N; i++ {
			before := heapLive()
			samples := make([]experiment.Sample, 0, total)
			for j := 0; j < total; j++ {
				samples = append(samples, mkSample(j))
			}
			retained = heapLive() - before // every sample still live here
			if pts := experiment.Aggregate(samples); len(pts) != groups*xs {
				b.Fatalf("points = %d", len(pts))
			}
		}
		b.ReportMetric(retained, "retained-B")
		b.ReportMetric(retained/float64(total), "retained-B/trial")
	})
	b.Run("streaming", func(b *testing.B) {
		var retained float64
		for i := 0; i < b.N; i++ {
			before := heapLive()
			acc := experiment.NewAccumulator()
			for j := 0; j < total; j++ {
				acc.Add(mkSample(j))
			}
			retained = heapLive() - before // only the accumulator is live
			if pts := acc.Points(); len(pts) != groups*xs {
				b.Fatalf("points = %d", len(pts))
			}
		}
		b.ReportMetric(retained, "retained-B")
		b.ReportMetric(retained/float64(total), "retained-B/trial")
	})
}

// BenchmarkDetectRound isolates the per-round cost of hole detection on a
// 64x64 grid in the dominant steady-state regime (no fresh holes): the
// reference full scan walks and allocates O(cells) every round, the
// event-driven detector drains an empty journal. allocs/op here is the
// "allocs per round" figure of the performance notes.
func BenchmarkDetectRound(b *testing.B) {
	for _, legacy := range []bool{false, true} {
		name := "event"
		if legacy {
			name = "fullscan"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := grid.New(64, 64, 10, geom.Pt(0, 0))
			if err != nil {
				b.Fatal(err)
			}
			net := network.New(sys, node.EnergyModel{})
			rng := randx.New(7)
			holes, err := deploy.PickHoleCells(sys, 8, true, rng.Split(1))
			if err != nil {
				b.Fatal(err)
			}
			if err := deploy.Controlled(net, 200, holes, rng.Split(2)); err != nil {
				b.Fatal(err)
			}
			topo, err := hamilton.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			ctrl, err := core.New(net, core.Config{
				Topology: topo, RNG: rng.Split(3), FullScanDetect: legacy,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 200; i++ { // converge and warm every buffer
				if err := ctrl.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctrl.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrialLarge exercises the single-trial hot path on big grids,
// where per-round O(cells) scans dominate. The "fullscan" variants run
// the seed's reference detector (kept behind TrialConfig.LegacyDetect);
// the default variants run the event-driven detector with the
// allocation-free round loop. Both produce bit-identical results — only
// ns/op and allocs/op may differ.
func BenchmarkTrialLarge(b *testing.B) {
	dims := []struct {
		name          string
		cols, rows    int
		spares, holes int
		fullScanToo   bool
	}{
		{"64x64", 64, 64, 300, 16, true},
		{"128x128", 128, 128, 600, 32, true},
		{"256x256", 256, 256, 1200, 64, true},
		// The O(cells)-per-round fullscan reference is too slow to be a
		// useful comparison on the largest tiers; only the event-driven
		// path runs there.
		{"512x512", 512, 512, 2400, 128, false},
		{"1024x1024", 1024, 1024, 4800, 256, false},
	}
	for _, d := range dims {
		for _, legacy := range []bool{false, true} {
			if legacy && !d.fullScanToo {
				continue
			}
			name := d.name
			if legacy {
				name += "-fullscan"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := sim.RunTrial(sim.TrialConfig{
						Cols: d.cols, Rows: d.rows, Scheme: sim.SR,
						Spares: d.spares, Holes: d.holes,
						AdjacentHolesOK: true, Seed: int64(i % 8),
						LegacyDetect: legacy,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Complete {
						b.Fatalf("trial did not recover: %+v", res)
					}
				}
			})
		}
	}
}

// BenchmarkReplicateSteadyState measures the pooled replicate engine in
// its campaign steady state: one arena running trial after trial of the
// same cell, the regime every Monte-Carlo campaign spends nearly all
// its time in. The arena is warmed before the clock starts, so bytes/op
// and allocs/op are the true per-replicate cost after the pool's
// high-water marks settle; the "fresh" variants rebuild the world per
// trial (the executable spec) and are the baseline the ≥5x bytes/op
// acceptance criterion compares against. Seeds rotate so the steady
// state covers varied layouts, exactly as a campaign's replicates do.
func BenchmarkReplicateSteadyState(b *testing.B) {
	dims := []struct {
		name          string
		cols, rows    int
		spares, holes int
	}{
		{"64x64", 64, 64, 300, 16},
		{"256x256", 256, 256, 1200, 64},
		{"512x512", 512, 512, 2400, 128},
		{"1024x1024", 1024, 1024, 4800, 256},
	}
	for _, d := range dims {
		cfg := sim.TrialConfig{
			Cols: d.cols, Rows: d.rows, Scheme: sim.SR,
			Spares: d.spares, Holes: d.holes, AdjacentHolesOK: true,
		}
		b.Run("pooled-"+d.name, func(b *testing.B) {
			arena := sim.NewTrialArena()
			for s := int64(0); s < 4; s++ { // warm the pool across layouts
				cfg.Seed = s
				if _, err := arena.RunTrial(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i % 8)
				if _, err := arena.RunTrial(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("fresh-"+d.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i % 8)
				if _, err := sim.RunTrial(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetrySteadyState reruns the pooled 64x64 steady state
// with the full observability pipeline live — hub, a draining SSE-style
// subscriber, publisher, and the per-trial Tracker hook — pinning that
// telemetry adds zero allocations to the trial hot path: between
// throttled publishes a trial costs two map updates and a clock read,
// so allocs/op must match ReplicateSteadyState/pooled-64x64. The total
// is oversized so no trial hits the group-boundary or final paths,
// exactly like a long campaign's interior.
func BenchmarkTelemetrySteadyState(b *testing.B) {
	cfg := sim.TrialConfig{
		Cols: 64, Rows: 64, Scheme: sim.SR,
		Spares: 300, Holes: 16, AdjacentHolesOK: true,
	}
	const group = "SR 64x64"
	hub := telemetry.NewHub()
	sub := hub.Subscribe()
	drained := make(chan struct{})
	go func() {
		for range sub.Events() {
		}
		close(drained)
	}()
	pub := telemetry.NewPublisher(hub)
	tracker := telemetry.NewTracker(pub, 1<<30, []string{group}, map[string]int{group: 1 << 30})
	arena := sim.NewTrialArena()
	for s := int64(0); s < 4; s++ {
		cfg.Seed = s
		if _, err := arena.RunTrial(cfg); err != nil {
			b.Fatal(err)
		}
		tracker.TrialDone(group)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i % 8)
		if _, err := arena.RunTrial(cfg); err != nil {
			b.Fatal(err)
		}
		tracker.TrialDone(group)
	}
	b.StopTimer()
	hub.Close()
	<-drained
}

// --- Micro benches for the hot substrate paths ---

func BenchmarkHamiltonBuildCycle(b *testing.B) {
	sys, err := grid.New(64, 64, 1, geom.Pt(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hamilton.Build(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHamiltonBuildDualPath(b *testing.B) {
	sys, err := grid.New(63, 63, 1, geom.Pt(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hamilton.Build(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkFullCycle(b *testing.B) {
	sys, err := grid.New(32, 32, 1, geom.Pt(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	topo, err := hamilton.Build(sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := topo.NewWalk(grid.C(10, 10))
		for w.Advance(nil) {
		}
	}
}

func BenchmarkSingleTrialSR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrial(sim.TrialConfig{
			Cols: 16, Rows: 16, Scheme: sim.SR, Spares: 100, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleTrialAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrial(sim.TrialConfig{
			Cols: 16, Rows: 16, Scheme: sim.AR, Spares: 100, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticMoves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analytic.Moves(100, 255); err != nil {
			b.Fatal(err)
		}
	}
}
