package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkReplicateSteadyState/pooled-64x64-4         	     100	    512345 ns/op	   61234 B/op	      90 allocs/op
BenchmarkReplicateSteadyState/fresh-64x64            	      50	   1400000 ns/op	 1440000 B/op	    9000 allocs/op
BenchmarkTrialLarge/128x128-4                        	      10	   4786799 ns/op
PASS
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	pooled, ok := got["ReplicateSteadyState/pooled-64x64"]
	if !ok {
		t.Fatalf("pooled benchmark missing from %v", got)
	}
	if pooled["bytes_op"] != 61234 || pooled["allocs_op"] != 90 || pooled["ns_op"] != 512345 {
		t.Errorf("pooled metrics = %v", pooled)
	}
	// A name without a -N suffix parses too.
	if got["ReplicateSteadyState/fresh-64x64"]["allocs_op"] != 9000 {
		t.Errorf("fresh metrics = %v", got["ReplicateSteadyState/fresh-64x64"])
	}
	// ns-only lines keep just ns_op.
	if m := got["TrialLarge/128x128"]; m["ns_op"] != 4786799 || len(m) != 1 {
		t.Errorf("TrialLarge metrics = %v", m)
	}
}

func TestCheckListParsing(t *testing.T) {
	var c checkList
	if err := c.Set("ReplicateSteadyState/pooled-64x64:bytes_op:1.5"); err != nil {
		t.Fatal(err)
	}
	if len(c) != 1 || c[0].metric != "bytes_op" || c[0].maxRatio != 1.5 {
		t.Errorf("checkList = %+v", c)
	}
	for _, bad := range []string{"", "a:b", "a:watts:2", "a:ns_op:0", "a:ns_op:x"} {
		var cl checkList
		if err := cl.Set(bad); err == nil {
			t.Errorf("Set(%q) should fail", bad)
		}
	}
}

func TestTrendListParsing(t *testing.T) {
	var tr trendList
	if err := tr.Set("ReplicateSteadyState/pooled-64x64:ns_op"); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 || tr[0].name != "ReplicateSteadyState/pooled-64x64" || tr[0].metric != "ns_op" {
		t.Errorf("trendList = %+v", tr)
	}
	// Trends never carry a ratio and reject the same junk checks do.
	for _, bad := range []string{"", "name-only", ":ns_op", "a:watts"} {
		var tl trendList
		if err := tl.Set(bad); err == nil {
			t.Errorf("Set(%q) should fail", bad)
		}
	}
}
